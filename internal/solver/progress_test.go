package solver

import (
	"context"
	"sync"
	"testing"

	"repro/internal/duration"
)

// collector gathers ProgressEvents under a lock: solvers may deliver from
// worker goroutines.
type collector struct {
	mu     sync.Mutex
	events []ProgressEvent
}

func (c *collector) fn(ev ProgressEvent) {
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

func (c *collector) snapshot() []ProgressEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]ProgressEvent(nil), c.events...)
}

// TestExactProgressTrajectory checks the exact search's anytime stream:
// a bound-established event arrives before any incumbent, delivered
// incumbents strictly decrease, bounds never decrease, and the final
// event agrees with the returned report.
func TestExactProgressTrajectory(t *testing.T) {
	inst := bridgeInstance(t, func() duration.Func { return stepFunc(t) })
	var col collector
	rep, err := Solve(context.Background(), "exact", inst, WithBudget(4), WithProgress(col.fn))
	if err != nil {
		t.Fatal(err)
	}
	events := col.snapshot()
	if len(events) < 2 {
		t.Fatalf("got %d progress events, want at least the bound event and one incumbent", len(events))
	}
	if events[0].Incumbent != -1 {
		t.Fatalf("first event has incumbent %v, want -1 (bound established before any solution)", events[0].Incumbent)
	}
	if events[0].Bound <= 0 {
		t.Fatalf("first event has bound %v, want a positive makespan floor", events[0].Bound)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Incumbent >= events[i-1].Incumbent && events[i-1].Incumbent != -1 {
			t.Fatalf("incumbent did not strictly decrease: events[%d]=%v events[%d]=%v", i-1, events[i-1], i, events[i])
		}
		if events[i].Bound < events[i-1].Bound {
			t.Fatalf("bound decreased: events[%d]=%v events[%d]=%v", i-1, events[i-1], i, events[i])
		}
	}
	last := events[len(events)-1]
	if got, want := last.Incumbent, float64(rep.Sol.Makespan); got != want {
		t.Fatalf("final event incumbent %v, want the report's makespan %v", got, want)
	}
	if last.Incumbent < last.Bound {
		t.Fatalf("final incumbent %v below the certified bound %v", last.Incumbent, last.Bound)
	}
}

// TestFrankWolfeProgressTrajectory checks the relaxation's stream: the
// objective never increases, the certified bound never decreases, and the
// gap at the final event is no wider than at the first.
func TestFrankWolfeProgressTrajectory(t *testing.T) {
	inst := bridgeInstance(t, func() duration.Func { return stepFunc(t) })
	var col collector
	if _, err := Solve(context.Background(), "frankwolfe", inst, WithBudget(4), WithProgress(col.fn)); err != nil {
		t.Fatal(err)
	}
	events := col.snapshot()
	if len(events) == 0 {
		t.Fatal("frankwolfe delivered no progress events")
	}
	for i := 1; i < len(events); i++ {
		if events[i].Incumbent > events[i-1].Incumbent {
			t.Fatalf("objective increased: events[%d]=%v events[%d]=%v", i-1, events[i-1], i, events[i])
		}
		if events[i].Bound < events[i-1].Bound {
			t.Fatalf("bound decreased: events[%d]=%v events[%d]=%v", i-1, events[i-1], i, events[i])
		}
	}
	first, last := events[0], events[len(events)-1]
	if last.Incumbent-last.Bound > first.Incumbent-first.Bound {
		t.Fatalf("gap widened from %v to %v", first.Incumbent-first.Bound, last.Incumbent-last.Bound)
	}
}

// TestMinResourceFrankWolfeStaysSilent pins that target-mode frankwolfe
// emits nothing: its binary-search probes run at many budgets whose
// interleaved trajectories would not be monotone.
func TestMinResourceFrankWolfeStaysSilent(t *testing.T) {
	inst := bridgeInstance(t, func() duration.Func { return stepFunc(t) })
	var col collector
	if _, err := Solve(context.Background(), "frankwolfe", inst, WithTarget(10), WithProgress(col.fn)); err != nil {
		t.Fatal(err)
	}
	if events := col.snapshot(); len(events) != 0 {
		t.Fatalf("target-mode frankwolfe delivered %d events, want 0: %v", len(events), events)
	}
}

package solver

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/duration"
	"repro/internal/scenario"
)

// raceFakes registers a pair of probe solvers once: "test-race-fast"
// completes immediately, "test-race-slow" blocks until its context is
// canceled and records that it saw the cancellation.
var (
	raceFakesOnce sync.Once
	slowCanceled  chan struct{}
)

func registerRaceFakes() {
	raceFakesOnce.Do(func() {
		slowCanceled = make(chan struct{}, 16)
		Register(&funcSolver{
			name: "test-race-fast",
			caps: Caps{Budget: true, Target: true},
			solve: func(ctx context.Context, c *core.Compiled, o Options) (*Report, error) {
				return &Report{Complete: true, Sol: core.Solution{Makespan: 42}}, nil
			},
		})
		Register(&funcSolver{
			name: "test-race-slow",
			caps: Caps{Budget: true, Target: true},
			solve: func(ctx context.Context, c *core.Compiled, o Options) (*Report, error) {
				<-ctx.Done()
				// Non-blocking: repeated test runs must never fill the
				// buffer and wedge raceSolve on an unread probe signal.
				select {
				case slowCanceled <- struct{}{}:
				default:
				}
				return nil, ctx.Err()
			},
		})
	})
}

// TestRaceFirstCompleteWinsAndLoserIsCanceled pins the two racing
// invariants: the first complete result is returned as-is, and the loser's
// context is canceled rather than left running.
func TestRaceFirstCompleteWinsAndLoserIsCanceled(t *testing.T) {
	registerRaceFakes()
	inst := bridgeInstance(t, func() duration.Func { return stepFunc(t) })
	rep, winner, err := raceSolve(context.Background(), core.Compile(inst), NewOptions(WithBudget(3)),
		"test-race-slow", "test-race-fast")
	if err != nil {
		t.Fatal(err)
	}
	if winner != "test-race-fast" {
		t.Fatalf("winner = %q; want the completing solver", winner)
	}
	if rep.Sol.Makespan != 42 || !rep.Complete {
		t.Fatalf("winning report = %+v; want the fast solver's", rep)
	}
	select {
	case <-slowCanceled:
	case <-time.After(5 * time.Second):
		t.Fatal("the losing solver never saw its context canceled")
	}
}

// TestRaceNoWinnerReturnsBestFallback: when nobody completes, the race
// must surface the most useful partial outcome, not invent success.
func TestRaceNoWinnerReturnsBestFallback(t *testing.T) {
	registerRaceFakes()
	inst := bridgeInstance(t, func() duration.Func { return stepFunc(t) })
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // both racers are born canceled
	_, _, err := raceSolve(ctx, core.Compile(inst), NewOptions(WithBudget(3)), "test-race-slow", "test-race-slow")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v; want context.Canceled from the fallback outcome", err)
	}
}

// raceBandInstance returns an instance whose assignment space falls in
// (autoExactSpace, autoRaceSpace]: too big for the plain exact route, small
// enough to race.
func raceBandInstance(t *testing.T) *core.Instance {
	t.Helper()
	for seed := int64(1); seed < 40; seed++ {
		inst := scenario.NewGen(seed).StepInstance(4, 4, 2, 4, 12, 3)
		if space := core.Compile(inst).AssignmentSpace; space > autoExactSpace && space <= autoRaceSpace {
			return inst
		}
	}
	t.Fatal("no generator seed produced an instance in the race band")
	return nil
}

// TestAutoRacingRoute is the table-driven check of auto's new route: with
// parallelism, near-threshold instances race in both objectives; without
// it, or far past the threshold, they fall back to the rounding solvers.
func TestAutoRacingRoute(t *testing.T) {
	inst := raceBandInstance(t)
	big := scenario.NewGen(3).StepInstance(8, 8, 6, 5, 200, 3) // beyond autoRaceSpace
	if space := core.Compile(big).AssignmentSpace; space <= autoRaceSpace {
		t.Fatalf("assignment space %d; want beyond the race band", space)
	}
	tests := []struct {
		name    string
		inst    *core.Instance
		opts    []Option
		routing string
		winners []string
	}{
		{"race-budget", inst, []Option{WithBudget(6), WithParallelism(2)},
			"auto -> race(exact vs bicriteria):", []string{"exact", "bicriteria"}},
		{"race-target", inst, []Option{WithTarget(40), WithParallelism(2)},
			"auto -> race(exact vs bicriteria-resource):", []string{"exact", "bicriteria-resource"}},
		{"sequential-no-race", inst, []Option{WithBudget(6), WithParallelism(1)},
			"auto -> bicriteria:", []string{"bicriteria"}},
		{"beyond-band-no-race", big, []Option{WithBudget(10), WithParallelism(4)},
			"auto -> bicriteria:", []string{"bicriteria"}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := Solve(context.Background(), "auto", tc.inst, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(rep.Routing, tc.routing) {
				t.Fatalf("Routing = %q; want prefix %q", rep.Routing, tc.routing)
			}
			okWinner := false
			for _, w := range tc.winners {
				if rep.Solver == w {
					okWinner = true
				}
			}
			if !okWinner {
				t.Fatalf("Solver = %q; want one of %v", rep.Solver, tc.winners)
			}
			if rep.Sol.Makespan <= 0 && rep.Sol.Value < 0 {
				t.Fatalf("degenerate solution %+v", rep.Sol)
			}
		})
	}
}

// TestAutoRaceNeverWorseThanExactAlone: when the exact racer completes, the
// racing route must report its (optimal) value, so racing with enough node
// budget costs no solution quality on race-band instances.
func TestAutoRaceNeverWorseThanExactAlone(t *testing.T) {
	inst := raceBandInstance(t)
	const budget = 5
	ex, err := Solve(context.Background(), "exact", inst, WithBudget(budget))
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Complete {
		t.Skip("exact could not finish this instance; nothing to compare")
	}
	rep, err := Solve(context.Background(), "auto", inst, WithBudget(budget), WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Solver == "exact" && rep.Sol.Makespan != ex.Sol.Makespan {
		t.Fatalf("racing exact returned %d; solo exact %d", rep.Sol.Makespan, ex.Sol.Makespan)
	}
	// No assertion against ex.Sol.Makespan when bicriteria wins: its
	// guarantee lets it overspend the budget, so it may legitimately land
	// below the budget-constrained optimum.
}

// TestParallelismCapabilityChecked: single-threaded solvers must reject
// explicit parallelism instead of silently ignoring it.
func TestParallelismCapabilityChecked(t *testing.T) {
	inst := bridgeInstance(t, func() duration.Func { return stepFunc(t) })
	for _, name := range []string{"bicriteria", "kway5", "binary4", "binarybi", "spdp"} {
		_, err := Solve(context.Background(), name, inst, WithBudget(3), WithParallelism(4))
		if err == nil || !strings.Contains(err.Error(), "single-threaded") {
			t.Fatalf("%s: err = %v; want capability error", name, err)
		}
	}
	// Parallel-capable solvers accept it; 0 and 1 are always accepted.
	if _, err := Solve(context.Background(), "exact", inst, WithBudget(3), WithParallelism(4)); err != nil {
		t.Fatalf("exact with parallelism: %v", err)
	}
	if _, err := Solve(context.Background(), "bicriteria", inst, WithBudget(3), WithParallelism(1)); err != nil {
		t.Fatalf("bicriteria with parallelism 1: %v", err)
	}
	// Negative parallelism is a mistake, not a request for all cores.
	if _, err := Solve(context.Background(), "exact", inst, WithBudget(3), WithParallelism(-1)); err == nil ||
		!strings.Contains(err.Error(), "negative parallelism") {
		t.Fatalf("parallelism -1: err = %v; want rejection", err)
	}
}

// TestExactParallelDeterministicThroughSolver re-checks the determinism
// contract end to end through the registry API.
func TestExactParallelDeterministicThroughSolver(t *testing.T) {
	inst := bridgeInstance(t, func() duration.Func { return stepFunc(t) })
	want := int64(-1)
	for par := 1; par <= 8; par++ {
		rep, err := Solve(context.Background(), "exact", inst, WithBudget(4), WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Complete {
			t.Fatalf("parallelism %d: incomplete", par)
		}
		if want < 0 {
			want = rep.Sol.Makespan
		} else if rep.Sol.Makespan != want {
			t.Fatalf("parallelism %d: makespan %d != %d at parallelism 1", par, rep.Sol.Makespan, want)
		}
	}
}

// TestIncompleteMinResourceReportsLowerBound locks the satellite bugfix:
// a truncated min-resource run must carry the slack-induced min-flow
// bound instead of leaving LowerBound at 0.
func TestIncompleteMinResourceReportsLowerBound(t *testing.T) {
	// A chain of jobs each needing 3 units to meet the target (see
	// exact.TestResourceLowerBound): the bound is 3 even when the search
	// is cut off after the root.
	inst := chainInstance4x7()
	rep, err := Solve(context.Background(), "exact", inst, WithTarget(8), WithMaxNodes(1))
	if errors.Is(err, context.Canceled) {
		t.Fatal("unexpected cancellation")
	}
	if err != nil {
		// A truncated run that found nothing returns ErrTruncated with no
		// usable report; widen the cap slightly so the root records one.
		rep, err = Solve(context.Background(), "exact", inst, WithTarget(8), WithMaxNodes(6))
		if err != nil {
			t.Fatalf("even 6 nodes found nothing: %v", err)
		}
	}
	if rep.Complete {
		t.Skip("search completed; the incomplete path was not exercised")
	}
	if rep.LowerBound != 3 {
		t.Fatalf("LowerBound = %v; want the min-flow bound 3", rep.LowerBound)
	}
}

func chainInstance4x7() *core.Instance {
	g := dag.New()
	prev := g.AddNode("s")
	var fns []duration.Func
	for i := 0; i < 4; i++ {
		v := g.AddNode("v")
		g.AddEdge(prev, v)
		fns = append(fns, duration.MustStep(
			duration.Tuple{R: 0, T: 7},
			duration.Tuple{R: 3, T: 2},
		))
		prev = v
	}
	return core.MustInstance(g, fns)
}

package solver

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/duration"
	"repro/internal/exact"
	"repro/internal/sp"
)

// ErrNotSeriesParallel is returned by the spdp solver when the instance's
// DAG is not two-terminal series-parallel.
var ErrNotSeriesParallel = errors.New("solver: instance is not two-terminal series-parallel")

// funcSolver adapts a solve function plus static metadata to the Solver
// interface; all built-ins are funcSolvers.
type funcSolver struct {
	name  string
	caps  Caps
	solve func(ctx context.Context, c *core.Compiled, o Options) (*Report, error)
}

func (f *funcSolver) Name() string       { return f.name }
func (f *funcSolver) Capabilities() Caps { return f.caps }
func (f *funcSolver) Solve(ctx context.Context, c *core.Compiled, o Options) (*Report, error) {
	rep, err := f.solve(ctx, c, o)
	if rep != nil {
		rep.Solver = f.name
		rep.Objective = o.Objective()
		if rep.Guarantee == "" {
			rep.Guarantee = f.caps.Guarantee
		}
		if f.caps.Approximate {
			rep.ApproxRatioUpperBound = ratioUpperBound(rep)
		}
	}
	return rep, err
}

// ratioUpperBound divides the solution's objective metric by the
// relaxation-certified lower bound: since LPLowerBound <= OPT, the result
// bounds the true approximation ratio from above.  A zero or absent bound
// claims nothing (ratio 0) unless the metric itself is zero, which is
// trivially optimal.
func ratioUpperBound(rep *Report) float64 {
	metric := rep.Sol.Makespan
	if rep.Objective == MinResource {
		metric = rep.Sol.Value
	}
	if metric == 0 {
		return 1
	}
	if rep.LPLowerBound <= 0 {
		return 0
	}
	return float64(metric) / rep.LPLowerBound
}

func init() {
	Register(&funcSolver{
		name: "exact",
		caps: Caps{Budget: true, Target: true, Exact: true, Parallel: true,
			Guarantee: "optimal when the search completes"},
		solve: solveExact,
	})
	Register(&funcSolver{
		name: "bicriteria",
		caps: Caps{Budget: true, Approximate: true,
			Guarantee: "makespan <= OPT/alpha using <= B/(1-alpha) resources (Thm 3.4)"},
		solve: func(ctx context.Context, c *core.Compiled, o Options) (*Report, error) {
			return fromApprox(approx.BiCriteriaCtx(ctx, c, o.Budget, o.Alpha))
		},
	})
	Register(&funcSolver{
		name: "bicriteria-resource",
		caps: Caps{Target: true, Approximate: true,
			Guarantee: "resources <= OPT/(1-alpha) reaching makespan <= T/alpha (Thm 3.4)"},
		solve: func(ctx context.Context, c *core.Compiled, o Options) (*Report, error) {
			return fromApprox(approx.BiCriteriaResourceCtx(ctx, c, o.Target, o.Alpha))
		},
	})
	Register(&funcSolver{
		name: "kway5",
		caps: Caps{Budget: true, Approximate: true, Classes: []string{duration.KindKWay},
			Guarantee: "makespan <= 5 OPT within budget (Thm 3.9)"},
		solve: func(ctx context.Context, c *core.Compiled, o Options) (*Report, error) {
			return fromApprox(approx.KWay5Ctx(ctx, c, o.Budget))
		},
	})
	Register(&funcSolver{
		name: "binary4",
		caps: Caps{Budget: true, Approximate: true, Classes: []string{duration.KindBinary},
			Guarantee: "makespan <= 4 OPT within budget (Thm 3.10)"},
		solve: func(ctx context.Context, c *core.Compiled, o Options) (*Report, error) {
			return fromApprox(approx.Binary4Ctx(ctx, c, o.Budget))
		},
	})
	Register(&funcSolver{
		name: "binarybi",
		caps: Caps{Budget: true, Approximate: true, Classes: []string{duration.KindBinary},
			Guarantee: "makespan <= 14/5 OPT using <= 4B/3 resources (Thm 3.16)"},
		solve: func(ctx context.Context, c *core.Compiled, o Options) (*Report, error) {
			return fromApprox(approx.BinaryBiCriteriaCtx(ctx, c, o.Budget))
		},
	})
	Register(&funcSolver{
		name: "spdp",
		caps: Caps{Budget: true, Target: true, Exact: true, SeriesParallelOnly: true,
			Guarantee: "optimal on series-parallel DAGs (Sec 3.4 DP)"},
		solve: solveSPDP,
	})
	Register(&funcSolver{
		name: "frankwolfe",
		caps: Caps{Budget: true, Target: true, Approximate: true, Parallel: true,
			Guarantee: "makespan <= relax/alpha using <= B/(1-alpha) resources; certified relaxation bound (scale tier)"},
		solve: solveFrankWolfe,
	})
	Register(newAutoSolver())
}

// fromApprox converts an approximation Result into a Report.
func fromApprox(res *approx.Result, err error) (*Report, error) {
	if err != nil {
		return nil, err
	}
	return &Report{Sol: res.Sol, LowerBound: res.LPObjective, LPLowerBound: res.LPObjective, Complete: true}, nil
}

// solveExact runs the branch-and-bound search in either mode.  On context
// cancellation with a solution already in hand, the partial Report is
// returned together with the context error.
func solveExact(ctx context.Context, c *core.Compiled, o Options) (*Report, error) {
	eopts := &exact.Options{MaxNodes: o.MaxNodes, Parallelism: o.Parallelism, Incumbent: o.Incumbent, FlowPool: o.FlowPool}
	if o.Progress != nil {
		// Adapt the search's (incumbent, floor, nodes) stream to the
		// package-neutral ProgressEvent (exact cannot import solver).
		progress := o.Progress
		eopts.Progress = func(incumbent, bound float64, nodes int64) {
			progress(ProgressEvent{Incumbent: incumbent, Bound: bound, Nodes: nodes})
		}
	}
	var (
		sol   core.Solution
		stats exact.Stats
		err   error
	)
	if o.Objective() == MinResource {
		sol, stats, err = exact.MinResourceCompiled(ctx, c, o.Target, eopts)
	} else {
		sol, stats, err = exact.MinMakespanCompiled(ctx, c, o.Budget, eopts)
	}
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Sol:      sol,
		Exact:    stats.Complete,
		Complete: stats.Complete,
		Nodes:    stats.Nodes,
	}
	if stats.Complete {
		// A complete run is optimal: its own metric is the tight bound.
		if o.Objective() == MinResource {
			rep.LowerBound = float64(sol.Value)
		} else {
			rep.LowerBound = float64(sol.Makespan)
		}
	} else if o.Objective() == MinResource {
		// Incomplete min-resource runs used to leave LowerBound at 0,
		// which read as "no bound"; the slack-induced min-flow bound is
		// always available and sound.
		rep.LowerBound = float64(exact.ResourceLowerBound(c.Inst, o.Target))
	} else {
		rep.LowerBound = float64(exact.BudgetedMakespanLowerBoundCompiled(c, o.Budget))
	}
	if stats.Interrupted != nil {
		return rep, stats.Interrupted
	}
	return rep, nil
}

// solveSPDP recognizes the instance as series-parallel, runs the
// pseudo-polynomial DP, and materializes the optimal table entry as a
// validated flow on the original instance.
func solveSPDP(ctx context.Context, c *core.Compiled, o Options) (*Report, error) {
	tree, leafArc := o.spTree, o.spLeafArc
	if tree == nil {
		var ok bool
		tree, leafArc, ok = sp.RecognizeCompiled(c)
		if !ok {
			return nil, ErrNotSeriesParallel
		}
	}
	solveTo := o.Budget
	if o.Objective() == MinResource {
		solveTo = c.MaxUsefulBudget
	}
	tables, err := sp.SolveCtx(ctx, tree, solveTo)
	if err != nil {
		return nil, err
	}
	use := solveTo
	if o.Objective() == MinResource {
		l, ok := tables.MinResource(o.Target)
		if !ok {
			return nil, fmt.Errorf("solver: spdp: makespan target %d unreachable even with %d units", o.Target, solveTo)
		}
		use = l
	}
	f, err := tables.Flow(c.Inst, leafArc, use)
	if err != nil {
		return nil, err
	}
	sol, err := c.Inst.NewSolution(f)
	if err != nil {
		return nil, err
	}
	rep := &Report{Sol: sol, Exact: true, Complete: true}
	if o.Objective() == MinResource {
		rep.LowerBound = float64(sol.Value)
	} else {
		rep.LowerBound = float64(sol.Makespan)
	}
	return rep, nil
}

package solver

import (
	"fmt"
	"math"
	"reflect"
	"testing"
)

// TestCacheKeyFormat pins appendCacheKey to the historical
// fmt.Sprintf("b%d.t%d.a%g.n%d.p%d", ...) rendering byte for byte, so
// the allocation-free rewrite can never silently re-key a persisted
// cache.  Alpha exercises %g's corners: exponent switchover, shortest
// round-trip decimals, zero, and subnormal.
func TestCacheKeyFormat(t *testing.T) {
	cases := []Options{
		NewOptions(),
		{Budget: 0, Target: -1, Alpha: 0.5, MaxNodes: 0, Parallelism: 0},
		{Budget: 42, Target: 7, Alpha: 1.0 / 3.0, MaxNodes: 1 << 20, Parallelism: 8},
		{Budget: -1, Target: 1 << 40, Alpha: 0.1, MaxNodes: -1, Parallelism: 1},
		{Alpha: 1e-9},
		{Alpha: 0.12345678901234567},
		{Alpha: 0},
		{Alpha: math.SmallestNonzeroFloat64},
	}
	for _, o := range cases {
		want := fmt.Sprintf("b%d.t%d.a%g.n%d.p%d",
			o.Budget, o.Target, o.Alpha, o.MaxNodes, o.Parallelism)
		if got := o.CacheKey(); got != want {
			t.Errorf("CacheKey() = %q, want %q", got, want)
		}
	}
}

// TestCacheKeyCoversOptions is the runtime twin of the rtlint cachekey
// analyzer: every Options field must either change the cache key when
// perturbed or be justified in cacheKeyExcluded, and every exclusion
// must name a real field the key ignores.  An unkeyed option would let
// two different requests collapse onto one cached result.
func TestCacheKeyCoversOptions(t *testing.T) {
	rt := reflect.TypeOf(Options{})
	fields := make(map[string]bool, rt.NumField())
	for i := 0; i < rt.NumField(); i++ {
		fields[rt.Field(i).Name] = true
	}
	for name := range cacheKeyExcluded {
		if !fields[name] {
			t.Errorf("cacheKeyExcluded entry %q names no Options field", name)
		}
	}

	base := NewOptions()
	baseKey := base.CacheKey()
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		_, excluded := cacheKeyExcluded[f.Name]
		if !f.IsExported() {
			// Unexported fields cannot be set through reflection; the
			// analyzer still checks them statically, and they must be
			// excluded here because CacheKey cannot render internal
			// routing hints.
			if !excluded {
				t.Errorf("unexported Options.%s is not in cacheKeyExcluded", f.Name)
			}
			continue
		}
		o := base
		fv := reflect.ValueOf(&o).Elem().Field(i)
		switch f.Type.Kind() {
		case reflect.Int, reflect.Int64:
			fv.SetInt(fv.Int() + 1)
		case reflect.Float64:
			fv.SetFloat(fv.Float() + 0.125)
		case reflect.Struct: // time.Time (Deadline)
			if !excluded {
				t.Errorf("Options.%s: no perturbation strategy; extend the test", f.Name)
			}
			continue
		case reflect.Slice, reflect.Ptr, reflect.Func:
			// Incumbent / FlowPool / Progress: reference-typed hints and
			// callbacks cannot be rendered into a canonical key, so they
			// must be excluded.
			if !excluded {
				t.Errorf("Options.%s: reference-typed field must be in cacheKeyExcluded", f.Name)
			}
			continue
		default:
			t.Errorf("Options.%s: no perturbation strategy for kind %v; extend the test", f.Name, f.Type.Kind())
			continue
		}
		changed := o.CacheKey() != baseKey
		switch {
		case changed && excluded:
			t.Errorf("Options.%s changes CacheKey but is listed in cacheKeyExcluded; drop the stale exclusion", f.Name)
		case !changed && !excluded:
			t.Errorf("Options.%s does not change CacheKey and is not excluded; it would poison the result cache", f.Name)
		}
	}
}

package solver

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
)

// parallelWireBytes renders a report for cross-parallelism byte
// comparison.  Wall time is always zeroed (measured, not computed).  When
// dropScheduleDependent is set — the exact solver — two more fields are
// normalized out, for reasons the exact package documents:
//
//   - nodes: a parallel branch-and-bound's pruning depends on WHEN the
//     incumbent improves, so the work done is schedule-dependent even
//     though the result is not; the count is effort accounting, like
//     wall_ms, not part of the answer.
//   - flow: when several flows are optimal, which witness the strictly-
//     improving incumbent ends up holding depends on visit order ("the
//     witness flow may differ when several flows are optimal" — the
//     package contract, and the reason Parallelism is part of the result
//     cache key).  The witness is checked separately for validity and
//     optimality instead; the VALUE fields it certifies are compared.
func parallelWireBytes(t *testing.T, rep *Report, dropScheduleDependent bool) []byte {
	t.Helper()
	w := rep.Wire()
	w.WallMS = 0
	if dropScheduleDependent {
		w.Nodes = 0
		w.Flow = nil
	}
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestParallelismInvariantWireReports is the corpus-wide determinism
// property behind the "parallelism changes when, never what" contract,
// checked at Parallelism 1, 2 and 8 for the two solvers that honor the
// option:
//
//   - frankwolfe reports must be byte-identical IN FULL, iteration count
//     included: the level-parallel sweep partitions each level's
//     max-reductions, which are order-independent, so the iterates — and
//     hence every downstream field — are identical at every worker count.
//   - exact reports must be byte-identical in every answer field
//     (optimum, resources, bounds, guarantee, exactness, completeness),
//     and every run's witness flow must be a valid budget-feasible
//     optimal solution; the witness bytes and node count themselves are
//     schedule-dependent (see parallelWireBytes) and are normalized out.
//     Exact runs that hit the node cap are skipped, not compared: a
//     truncated search's best-so-far legitimately depends on which
//     subtrees the budget covered.
func TestParallelismInvariantWireReports(t *testing.T) {
	levels := []int{1, 2, 8}
	for _, spec := range scenario.DefaultCorpus() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			inst, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			warm := core.Compile(inst)
			opts := NewOptions()
			if spec.Budget != nil {
				opts.Budget = *spec.Budget
			} else {
				opts.Target = *spec.Target
			}
			opts.MaxNodes = 20000

			// frankwolfe: full byte equality across worker counts.
			var fwWant []byte
			for _, par := range levels {
				o := opts
				o.Parallelism = par
				rep, err := SolveCompiledOptions(context.Background(), "frankwolfe", warm, o)
				if err != nil {
					t.Fatalf("frankwolfe p=%d: %v", par, err)
				}
				got := parallelWireBytes(t, rep, false)
				if fwWant == nil {
					fwWant = got
				} else if string(got) != string(fwWant) {
					t.Fatalf("frankwolfe report changed at parallelism %d:\np=1: %s\np=%d: %s",
						par, fwWant, par, got)
				}
			}

			// exact: answer-field byte equality plus per-run witness
			// optimality, complete runs only.
			var exWant []byte
			for _, par := range levels {
				o := opts
				o.Parallelism = par
				rep, err := SolveCompiledOptions(context.Background(), "exact", warm, o)
				if err != nil {
					t.Fatalf("exact p=%d: %v", par, err)
				}
				if !rep.Complete {
					t.Logf("exact p=%d truncated at the node cap; skipping the exact comparison", par)
					break
				}
				budget := int64(-1)
				if spec.Budget != nil {
					budget = *spec.Budget
				}
				if err := inst.ValidateFlow(rep.Sol.Flow, budget); err != nil {
					t.Fatalf("exact p=%d: witness flow invalid: %v", par, err)
				}
				if spec.Target != nil && rep.Sol.Makespan > *spec.Target {
					t.Fatalf("exact p=%d: witness makespan %d misses target %d",
						par, rep.Sol.Makespan, *spec.Target)
				}
				got := parallelWireBytes(t, rep, true)
				if exWant == nil {
					exWant = got
				} else if string(got) != string(exWant) {
					t.Fatalf("exact report changed at parallelism %d:\np=1: %s\np=%d: %s",
						par, exWant, par, got)
				}
			}
		})
	}
}

// TestParallelismRejectedOrInvariant closes the quantifier over the
// registry: every solver either honors parallelism with invariant results
// (exact, frankwolfe — covered above), is the documented exception (auto,
// whose opt-in racing mode makes the ROUTING schedule-dependent: the
// winner's name and guarantee reach the report, which is exactly why
// Parallelism sits in the result cache key), or must refuse
// Parallelism > 1 so "identical across parallelism levels" holds by
// explicit rejection rather than silently ignoring the option.
func TestParallelismRejectedOrInvariant(t *testing.T) {
	covered := map[string]bool{"exact": true, "frankwolfe": true, "auto": true}
	opts := NewOptions()
	opts.Budget = 2
	opts.Parallelism = 4
	for _, s := range List() {
		name := s.Name()
		if covered[name] || strings.HasPrefix(name, "test-") {
			continue
		}
		if s.Capabilities().Parallel {
			t.Errorf("%s declares Parallel but has no cross-parallelism invariance coverage; extend TestParallelismInvariantWireReports", name)
			continue
		}
		if err := ValidateOptions(s, opts); err == nil {
			t.Errorf("%s is single-threaded yet accepted Parallelism 4", name)
		}
	}
}

package solver

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/duration"
	"repro/internal/sp"
)

// Auto-dispatch thresholds.
const (
	// autoSPCost caps m*(B+1)^2, the series-parallel DP work, before auto
	// prefers an approximation over the exact DP.
	autoSPCost = int64(1) << 26
	// autoSPMaxBudget is sqrt(autoSPCost): any larger budget exceeds
	// autoSPCost on its own, and squaring it first could overflow int64.
	autoSPMaxBudget = int64(1) << 13
	// autoExactSpace caps the tuple-assignment search space before auto
	// considers an instance small enough for branch-and-bound.
	autoExactSpace = int64(1) << 20
	// autoExactNodes is the node budget auto gives the exact search, so a
	// misjudged instance degrades to a truncated (but reported) search
	// instead of hanging.
	autoExactNodes = 1 << 18
)

// autoSolver is the portfolio solver: it inspects the instance and routes
// to the registered solver whose guarantee applies, recording the
// decision in Report.Routing.
type autoSolver struct{}

func newAutoSolver() Solver { return autoSolver{} }

func (autoSolver) Name() string { return "auto" }

func (autoSolver) Capabilities() Caps {
	return Caps{Budget: true, Target: true,
		Guarantee: "inherited from the routed solver"}
}

// route picks the solver name for the instance and explains why.  The
// rules, in order: a series-parallel DAG with affordable DP cost goes to
// the exact spdp; a recognized k-way or recursive-binary duration class
// goes to the matching approximation (budget mode only - those solvers
// have no min-resource variant); a small assignment space goes to exact
// branch-and-bound under a node budget; everything else takes the
// general bi-criteria rounding.
func (autoSolver) route(inst *core.Instance, o Options) (name, reason string, opts Options) {
	obj := o.Objective()
	if tree, leafArc, ok := sp.RecognizeMap(inst); ok {
		b := o.Budget
		if obj == MinResource {
			b = inst.MaxUsefulBudget()
		}
		if bp := b + 1; bp <= autoSPMaxBudget {
			if cost := int64(tree.Nodes()) * bp * bp; cost <= autoSPCost {
				// Hand the recognized decomposition to spdp so it does
				// not repeat the reduction.
				o.spTree, o.spLeafArc = tree, leafArc
				return "spdp", fmt.Sprintf("series-parallel DAG (%d jobs, DP cost %d)", tree.Leaves(), cost), o
			}
		}
	}
	if obj == MinMakespan {
		switch class := duration.Classify(inst.Fns); class {
		case duration.KindKWay:
			return "kway5", "all jobs k-way splitting (Eq 2)", o
		case duration.KindBinary:
			return "binary4", "all jobs recursive binary splitting (Eq 3)", o
		}
	}
	if space := assignmentSpace(inst); space <= autoExactSpace {
		if o.MaxNodes == 0 {
			o.MaxNodes = autoExactNodes
		}
		return "exact", fmt.Sprintf("small instance (assignment space %d)", space), o
	}
	if obj == MinResource {
		return "bicriteria-resource", "general step functions, large instance", o
	}
	return "bicriteria", "general step functions, large instance", o
}

func (a autoSolver) Solve(ctx context.Context, inst *core.Instance, o Options) (*Report, error) {
	name, reason, routed := a.route(inst, o)
	s, err := Get(name)
	if err != nil {
		return nil, err
	}
	rep, err := s.Solve(ctx, inst, routed)
	if rep != nil {
		rep.Routing = fmt.Sprintf("auto -> %s: %s", name, reason)
	}
	return rep, err
}

// assignmentSpace is the product of per-arc breakpoint counts - the size
// of the exact search's tuple-assignment space - saturating at one past
// autoExactSpace.
func assignmentSpace(inst *core.Instance) int64 {
	space := int64(1)
	for _, fn := range inst.Fns {
		space *= int64(len(fn.Tuples()))
		if space > autoExactSpace {
			return autoExactSpace + 1
		}
	}
	return space
}

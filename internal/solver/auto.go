package solver

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/duration"
	"repro/internal/sp"
)

// Auto-dispatch thresholds.
const (
	// autoSPCost caps m*(B+1)^2, the series-parallel DP work, before auto
	// prefers an approximation over the exact DP.
	autoSPCost = int64(1) << 26
	// autoSPMaxBudget is sqrt(autoSPCost): any larger budget exceeds
	// autoSPCost on its own, and squaring it first could overflow int64.
	autoSPMaxBudget = int64(1) << 13
	// autoExactSpace caps the tuple-assignment search space before auto
	// considers an instance small enough for branch-and-bound.
	autoExactSpace = int64(1) << 20
	// autoExactNodes is the node budget auto gives the exact search, so a
	// misjudged instance degrades to a truncated (but reported) search
	// instead of hanging.
	autoExactNodes = 1 << 18
	// autoRaceSpace is the assignment-space ceiling for racing: past the
	// exact threshold but below this, the exact search often still
	// finishes quickly (pruning collapses most trees), so with spare
	// parallelism auto races it against the bi-criteria rounding instead
	// of writing it off.
	autoRaceSpace = int64(1) << 26
	// autoRaceNodes caps the exact racer; the rounding rival is the
	// safety net, so the cap only bounds wasted work.
	autoRaceNodes = 1 << 20
	// autoDenseLPArcs caps the EXPANDED arc count (sum of per-arc chain
	// arcs) fed to the dense-simplex solvers (bicriteria*, kway5, binary4,
	// binarybi), whose tableau is quadratic in that size.  Past it, auto
	// routes to the frankwolfe scale tier, which is linear per iteration.
	autoDenseLPArcs = 768
)

// raceRoute is the sentinel route name for the exact-vs-rounding race.
const raceRoute = "race"

// autoSolver is the portfolio solver: it inspects the instance and routes
// to the registered solver whose guarantee applies, recording the
// decision in Report.Routing.
type autoSolver struct{}

func newAutoSolver() Solver { return autoSolver{} }

func (autoSolver) Name() string { return "auto" }

func (autoSolver) Capabilities() Caps {
	return Caps{Budget: true, Target: true, Parallel: true,
		Guarantee: "inherited from the routed solver"}
}

// route picks the solver name for the instance and explains why.  All
// instance facts it dispatches on - series-parallel recognition, the
// duration class, the expansion size and the assignment space - come off
// the compiled form, where they are derived (and memoized) once instead of
// recomputed per routing decision.  The rules, in order: a series-parallel
// DAG (recognition is near-linear and memoized, so it runs at every size)
// with affordable DP cost goes to the exact spdp; a recognized k-way or
// recursive-binary duration class goes to the matching approximation
// (budget mode only - those solvers have no min-resource variant) when its
// dense LP is affordable; a small assignment space goes to exact
// branch-and-bound under a node budget; an assignment space near that
// threshold, when the caller explicitly asked for two or more workers,
// races exact against a rounding rival (route name "race"); everything
// else takes an LP-rounding approximation, size-routed: the dense
// bi-criteria LP while the expansion stays small, the frankwolfe scale
// tier beyond it.
func (autoSolver) route(c *core.Compiled, o Options) (name, reason string, opts Options) {
	obj := o.Objective()
	m := c.Inst.G.NumEdges()
	if tree, leafArc, ok := sp.RecognizeCompiled(c); ok {
		b := o.Budget
		if obj == MinResource {
			b = c.MaxUsefulBudget
		}
		if bp := b + 1; bp <= autoSPMaxBudget {
			if cost := int64(tree.Nodes()) * bp * bp; cost <= autoSPCost {
				// Hand the recognized decomposition to spdp so it does
				// not repeat the reduction.
				o.spTree, o.spLeafArc = tree, leafArc
				return "spdp", fmt.Sprintf("series-parallel DAG (%d jobs, DP cost %d)", tree.Leaves(), cost), o
			}
		}
	}
	denseOK := c.ExpandedArcs <= autoDenseLPArcs
	if obj == MinMakespan && denseOK {
		switch c.Class() {
		case duration.KindKWay:
			return "kway5", "all jobs k-way splitting (Eq 2)", o
		case duration.KindBinary:
			return "binary4", "all jobs recursive binary splitting (Eq 3)", o
		}
	}
	space := c.AssignmentSpace
	if space <= autoExactSpace {
		if o.MaxNodes == 0 {
			o.MaxNodes = autoExactNodes
		}
		return "exact", fmt.Sprintf("small instance (assignment space %d)", space), o
	}
	// The rounding fallback (and racing rival) is size-routed: the dense
	// simplex while the expansion stays affordable, the scale tier beyond.
	rounder := "frankwolfe"
	if denseOK {
		if obj == MinResource {
			rounder = "bicriteria-resource"
		} else {
			rounder = "bicriteria"
		}
	}
	// Racing is opt-in: it requires an explicit WithParallelism(>=2), not
	// the GOMAXPROCS default, so that plain auto solves route (and hence
	// reproduce) identically on every machine.
	if space <= autoRaceSpace && o.Parallelism >= 2 {
		if o.MaxNodes == 0 {
			o.MaxNodes = autoRaceNodes
		}
		o.raceRival = rounder
		return raceRoute, fmt.Sprintf("assignment space %d near the exact threshold", space), o
	}
	if rounder == "frankwolfe" {
		return rounder, fmt.Sprintf("large general DAG (%d arcs, expansion > %d): envelope relaxation + rounding", m, autoDenseLPArcs), o
	}
	return rounder, "general step functions, large instance", o
}

func (a autoSolver) Solve(ctx context.Context, c *core.Compiled, o Options) (*Report, error) {
	name, reason, routed := a.route(c, o)
	if name == raceRoute {
		rival := routed.raceRival
		rep, winner, err := raceSolve(ctx, c, routed, "exact", rival)
		if rep != nil {
			rep.Routing = fmt.Sprintf("auto -> race(exact vs %s): %s; winner %s", rival, reason, winner)
		}
		return rep, err
	}
	s, err := Get(name)
	if err != nil {
		return nil, err
	}
	rep, err := s.Solve(ctx, c, routed)
	if rep != nil {
		rep.Routing = fmt.Sprintf("auto -> %s: %s", name, reason)
	}
	return rep, err
}

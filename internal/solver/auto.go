package solver

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/duration"
	"repro/internal/sp"
)

// Auto-dispatch thresholds.
const (
	// autoSPCost caps m*(B+1)^2, the series-parallel DP work, before auto
	// prefers an approximation over the exact DP.
	autoSPCost = int64(1) << 26
	// autoSPMaxBudget is sqrt(autoSPCost): any larger budget exceeds
	// autoSPCost on its own, and squaring it first could overflow int64.
	autoSPMaxBudget = int64(1) << 13
	// autoExactSpace caps the tuple-assignment search space before auto
	// considers an instance small enough for branch-and-bound.
	autoExactSpace = int64(1) << 20
	// autoExactNodes is the node budget auto gives the exact search, so a
	// misjudged instance degrades to a truncated (but reported) search
	// instead of hanging.
	autoExactNodes = 1 << 18
	// autoRaceSpace is the assignment-space ceiling for racing: past the
	// exact threshold but below this, the exact search often still
	// finishes quickly (pruning collapses most trees), so with spare
	// parallelism auto races it against the bi-criteria rounding instead
	// of writing it off.
	autoRaceSpace = int64(1) << 26
	// autoRaceNodes caps the exact racer; the rounding rival is the
	// safety net, so the cap only bounds wasted work.
	autoRaceNodes = 1 << 20
)

// raceRoute is the sentinel route name for the exact-vs-rounding race.
const raceRoute = "race"

// autoSolver is the portfolio solver: it inspects the instance and routes
// to the registered solver whose guarantee applies, recording the
// decision in Report.Routing.
type autoSolver struct{}

func newAutoSolver() Solver { return autoSolver{} }

func (autoSolver) Name() string { return "auto" }

func (autoSolver) Capabilities() Caps {
	return Caps{Budget: true, Target: true, Parallel: true,
		Guarantee: "inherited from the routed solver"}
}

// route picks the solver name for the instance and explains why.  The
// rules, in order: a series-parallel DAG with affordable DP cost goes to
// the exact spdp; a recognized k-way or recursive-binary duration class
// goes to the matching approximation (budget mode only - those solvers
// have no min-resource variant); a small assignment space goes to exact
// branch-and-bound under a node budget; an assignment space near that
// threshold, when the caller explicitly asked for two or more workers,
// races exact against the bi-criteria rounding (route name "race");
// everything else takes the general bi-criteria rounding.
func (autoSolver) route(inst *core.Instance, o Options) (name, reason string, opts Options) {
	obj := o.Objective()
	if tree, leafArc, ok := sp.RecognizeMap(inst); ok {
		b := o.Budget
		if obj == MinResource {
			b = inst.MaxUsefulBudget()
		}
		if bp := b + 1; bp <= autoSPMaxBudget {
			if cost := int64(tree.Nodes()) * bp * bp; cost <= autoSPCost {
				// Hand the recognized decomposition to spdp so it does
				// not repeat the reduction.
				o.spTree, o.spLeafArc = tree, leafArc
				return "spdp", fmt.Sprintf("series-parallel DAG (%d jobs, DP cost %d)", tree.Leaves(), cost), o
			}
		}
	}
	if obj == MinMakespan {
		switch class := duration.Classify(inst.Fns); class {
		case duration.KindKWay:
			return "kway5", "all jobs k-way splitting (Eq 2)", o
		case duration.KindBinary:
			return "binary4", "all jobs recursive binary splitting (Eq 3)", o
		}
	}
	space := assignmentSpace(inst)
	if space <= autoExactSpace {
		if o.MaxNodes == 0 {
			o.MaxNodes = autoExactNodes
		}
		return "exact", fmt.Sprintf("small instance (assignment space %d)", space), o
	}
	// Racing is opt-in: it requires an explicit WithParallelism(>=2), not
	// the GOMAXPROCS default, so that plain auto solves route (and hence
	// reproduce) identically on every machine.
	if space <= autoRaceSpace && o.Parallelism >= 2 {
		if o.MaxNodes == 0 {
			o.MaxNodes = autoRaceNodes
		}
		return raceRoute, fmt.Sprintf("assignment space %d near the exact threshold", space), o
	}
	if obj == MinResource {
		return "bicriteria-resource", "general step functions, large instance", o
	}
	return "bicriteria", "general step functions, large instance", o
}

func (a autoSolver) Solve(ctx context.Context, inst *core.Instance, o Options) (*Report, error) {
	name, reason, routed := a.route(inst, o)
	if name == raceRoute {
		rival := "bicriteria"
		if routed.Objective() == MinResource {
			rival = "bicriteria-resource"
		}
		rep, winner, err := raceSolve(ctx, inst, routed, "exact", rival)
		if rep != nil {
			rep.Routing = fmt.Sprintf("auto -> race(exact vs %s): %s; winner %s", rival, reason, winner)
		}
		return rep, err
	}
	s, err := Get(name)
	if err != nil {
		return nil, err
	}
	rep, err := s.Solve(ctx, inst, routed)
	if rep != nil {
		rep.Routing = fmt.Sprintf("auto -> %s: %s", name, reason)
	}
	return rep, err
}

// assignmentSpace is the product of per-arc breakpoint counts - the size
// of the exact search's tuple-assignment space - saturating at one past
// autoRaceSpace (the largest threshold any routing rule compares against).
func assignmentSpace(inst *core.Instance) int64 {
	space := int64(1)
	for _, fn := range inst.Fns {
		space *= int64(len(fn.Tuples()))
		if space > autoRaceSpace {
			return autoRaceSpace + 1
		}
	}
	return space
}

package solver

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func int64p(v int64) *int64       { return &v }
func float64p(v float64) *float64 { return &v }

func TestWireOptionsResolve(t *testing.T) {
	now := time.Unix(1000, 0)

	o, err := WireOptions{}.Resolve(now)
	if err != nil {
		t.Fatal(err)
	}
	if o.Budget != -1 || o.Target != -1 || o.Alpha != 0.5 || !o.Deadline.IsZero() {
		t.Fatalf("empty wire options must resolve to the defaults, got %+v", o)
	}

	o, err = WireOptions{Budget: int64p(0), Alpha: float64p(0.25),
		MaxNodes: 99, Parallelism: 2, DeadlineMS: 1500}.Resolve(now)
	if err != nil {
		t.Fatal(err)
	}
	if o.Budget != 0 {
		t.Fatal("budget 0 is a meaningful value and must survive decoding")
	}
	if o.Objective() != MinMakespan {
		t.Fatal("budget 0 must select min-makespan mode")
	}
	if o.Alpha != 0.25 || o.MaxNodes != 99 || o.Parallelism != 2 {
		t.Fatalf("knobs lost in decoding: %+v", o)
	}
	if want := now.Add(1500 * time.Millisecond); !o.Deadline.Equal(want) {
		t.Fatalf("Deadline = %v; want %v", o.Deadline, want)
	}

	bad := []WireOptions{
		{Budget: int64p(-3)},
		{Target: int64p(-1)},
		{Alpha: float64p(0)},
		{Alpha: float64p(1)},
		{Alpha: float64p(-0.5)},
		{MaxNodes: -1},
		{DeadlineMS: -20},
	}
	for i, w := range bad {
		if _, err := w.Resolve(now); err == nil {
			t.Fatalf("bad wire options %d (%+v) resolved without error", i, w)
		}
	}
}

func TestOptionsCacheKeyExcludesDeadlineOnly(t *testing.T) {
	base := NewOptions(WithBudget(4), WithAlpha(0.5))
	sameButLater := base
	sameButLater.Deadline = time.Now().Add(time.Hour)
	if base.CacheKey() != sameButLater.CacheKey() {
		t.Fatal("deadline must not enter the cache key")
	}
	for name, other := range map[string]Options{
		"budget":      NewOptions(WithBudget(5), WithAlpha(0.5)),
		"mode":        NewOptions(WithTarget(4), WithAlpha(0.5)),
		"alpha":       NewOptions(WithBudget(4), WithAlpha(0.75)),
		"maxnodes":    NewOptions(WithBudget(4), WithAlpha(0.5), WithMaxNodes(7)),
		"parallelism": NewOptions(WithBudget(4), WithAlpha(0.5), WithParallelism(3)),
	} {
		if base.CacheKey() == other.CacheKey() {
			t.Fatalf("%s change did not change the cache key", name)
		}
	}
}

func TestInfosCoverRegistry(t *testing.T) {
	infos := Infos()
	byName := make(map[string]Info, len(infos))
	for _, in := range infos {
		byName[in.Name] = in
	}
	ex, ok := byName["exact"]
	if !ok {
		t.Fatal("Infos missing the exact solver")
	}
	if !ex.Budget || !ex.Target || !ex.Exact || !ex.Parallel {
		t.Fatalf("exact info lost capabilities: %+v", ex)
	}
	kw, ok := byName["kway5"]
	if !ok {
		t.Fatal("Infos missing kway5")
	}
	if kw.Target {
		t.Fatal("kway5 must not advertise min-resource mode")
	}
	if len(kw.Classes) != 1 {
		t.Fatalf("kway5 classes = %v; want the kway class", kw.Classes)
	}
	data, err := json.Marshal(infos)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"guarantee"`) {
		t.Fatal("marshaled infos must carry the guarantees")
	}
}

func TestReportWire(t *testing.T) {
	rep := &Report{
		Solver:    "exact",
		Objective: MinResource,
		Exact:     true,
		Complete:  true,
		Nodes:     42,
		Wall:      1500 * time.Microsecond,
	}
	rep.Sol.Makespan = 7
	rep.Sol.Value = 3
	rep.Sol.Flow = []int64{1, 2}
	w := rep.Wire()
	if w.Solver != "exact" || w.Objective != "min-resource" || w.Makespan != 7 ||
		w.Resources != 3 || !w.Exact || !w.Complete || w.Nodes != 42 {
		t.Fatalf("Wire() lost fields: %+v", w)
	}
	if w.WallMS != 1.5 {
		t.Fatalf("WallMS = %v; want 1.5", w.WallMS)
	}
	if len(w.Flow) != 2 {
		t.Fatalf("Flow = %v; want the witness flow", w.Flow)
	}
}

package solver

// This file holds the wire forms of the solver API: JSON-decodable
// options, registry introspection records, and a JSON-encodable Report.
// They are the vocabulary of cmd/rtserve's HTTP endpoints, kept here so
// any transport (HTTP today, a queue consumer tomorrow) decodes options
// and encodes reports identically.

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/core"
)

// WireOptions is the JSON wire form of the solve options.  Pointer fields
// distinguish "absent" from zero: a budget of 0 is a meaningful request
// (no resources at all), so it must not collapse into "no budget".
type WireOptions struct {
	// Budget selects min-makespan mode under a resource budget.
	Budget *int64 `json:"budget,omitempty"`
	// Target selects min-resource mode under a makespan target.
	Target *int64 `json:"target,omitempty"`
	// Alpha is the bi-criteria rounding parameter in (0,1); absent means
	// the 0.5 default.
	Alpha *float64 `json:"alpha,omitempty"`
	// MaxNodes caps the exact search; 0 uses the search's default.
	MaxNodes int `json:"max_nodes,omitempty"`
	// Parallelism sizes the worker pool of parallel solvers.
	Parallelism int `json:"parallelism,omitempty"`
	// DeadlineMS bounds the solve wall time, in milliseconds from the
	// moment the request is resolved; 0 means no deadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// Resolve converts the wire form into resolved Options, anchoring the
// relative deadline at now.  Values that no solver could accept are
// rejected here; capability-dependent checks (mode support, parallelism)
// stay in ValidateOptions.
func (w WireOptions) Resolve(now time.Time) (Options, error) {
	o := NewOptions()
	if w.Budget != nil {
		if *w.Budget < 0 {
			return o, fmt.Errorf("solver: negative budget %d", *w.Budget)
		}
		o.Budget = *w.Budget
	}
	if w.Target != nil {
		if *w.Target < 0 {
			return o, fmt.Errorf("solver: negative target %d", *w.Target)
		}
		o.Target = *w.Target
	}
	if w.Alpha != nil {
		if !(*w.Alpha > 0 && *w.Alpha < 1) { // also rejects NaN
			return o, fmt.Errorf("solver: alpha %v outside (0,1)", *w.Alpha)
		}
		o.Alpha = *w.Alpha
	}
	if w.MaxNodes < 0 {
		return o, fmt.Errorf("solver: negative max_nodes %d", w.MaxNodes)
	}
	o.MaxNodes = w.MaxNodes
	o.Parallelism = w.Parallelism
	if w.DeadlineMS < 0 {
		return o, fmt.Errorf("solver: negative deadline_ms %d", w.DeadlineMS)
	}
	if w.DeadlineMS > 0 {
		o.Deadline = now.Add(time.Duration(w.DeadlineMS) * time.Millisecond)
	}
	return o, nil
}

// cacheKeyExcluded lists the Options fields deliberately absent from
// CacheKey, with the reason each cannot affect a cacheable result.  The
// cachekey analyzer (and its runtime twin TestCacheKeyCoversOptions)
// enforces that every field is rendered by CacheKey or listed here, so a
// future option can never silently poison the result cache.
var cacheKeyExcluded = map[string]string{
	"Deadline":  "selects whether a result arrives in time, never what it is; interrupted results are not cached",
	"spTree":    "routing hint derived from the instance, already keyed by the instance hash",
	"spLeafArc": "routing hint derived from the instance, already keyed by the instance hash",
	"raceRival": "auto-router internals; the raced result is keyed under the winning solver's own name",
	"Incumbent": "warm-start hint; validated and certificate-recomputed, it can change wall time but never a complete result, and repeats stay byte-stable because the first-computed report is what every later hit returns",
	"FlowPool":  "allocation plumbing; pooled networks are fully rewritten per solve, so results never depend on which pool (if any) served them",
	"Progress":  "observational callback; it receives the trajectory but never steers the search, so results never depend on it",
}

// CacheKey renders the result-relevant options canonically, for use in
// result-cache keys alongside the instance hash and solver name.  Fields
// left out are justified in cacheKeyExcluded.  Parallelism IS included:
// the optimum value is parallelism-independent, but the witness flow of a
// parallel search need not be, and a cache must return byte-identical
// reports.
func (o Options) CacheKey() string {
	var buf [64]byte
	return string(o.appendCacheKey(buf[:0]))
}

// appendCacheKey renders the key into dst.  The format is the historical
// fmt.Sprintf("b%d.t%d.a%g.n%d.p%d", ...) rendering byte for byte
// (strconv's 'g'/-1 float formatting is what %g uses), kept stable so
// persisted caches survive this function's allocation-free rewrite.
//
//rt:hotpath — runs per service request on the result-cache lookup path.
func (o Options) appendCacheKey(dst []byte) []byte {
	dst = append(dst, 'b')
	dst = strconv.AppendInt(dst, o.Budget, 10)
	dst = append(dst, ".t"...)
	dst = strconv.AppendInt(dst, o.Target, 10)
	dst = append(dst, ".a"...)
	dst = strconv.AppendFloat(dst, o.Alpha, 'g', -1, 64)
	dst = append(dst, ".n"...)
	dst = strconv.AppendInt(dst, int64(o.MaxNodes), 10)
	dst = append(dst, ".p"...)
	dst = strconv.AppendInt(dst, int64(o.Parallelism), 10)
	return dst
}

// ResultCacheKey is the full identity of one solve outcome: the solver
// name, the compiled instance's canonical hash, and the result-relevant
// options.  Keying on the precomputed canonical hash makes cache hits
// insensitive to node naming and arc order end-to-end - two isomorphic
// JSON encodings of the same DAG share one key - and costs nothing on a
// hot compiled instance, where the hash was computed exactly once.
func ResultCacheKey(name string, c *core.Compiled, o Options) string {
	return name + "|" + c.Hash() + "|" + o.CacheKey()
}

// Info is the JSON-encodable description of one registered solver: its
// name plus its declared capabilities, the registry introspection record
// behind rtserve's /v1/solvers.
type Info struct {
	Name               string   `json:"name"`
	Budget             bool     `json:"budget"`
	Target             bool     `json:"target"`
	Exact              bool     `json:"exact"`
	Approximate        bool     `json:"approximate,omitempty"`
	SeriesParallelOnly bool     `json:"series_parallel_only,omitempty"`
	Parallel           bool     `json:"parallel,omitempty"`
	Classes            []string `json:"classes,omitempty"`
	Guarantee          string   `json:"guarantee"`
}

// NewInfo captures a solver's name and capabilities.
func NewInfo(s Solver) Info {
	caps := s.Capabilities()
	return Info{
		Name:               s.Name(),
		Budget:             caps.Budget,
		Target:             caps.Target,
		Exact:              caps.Exact,
		Approximate:        caps.Approximate,
		SeriesParallelOnly: caps.SeriesParallelOnly,
		Parallel:           caps.Parallel,
		Classes:            caps.Classes,
		Guarantee:          caps.Guarantee,
	}
}

// Infos describes every registered solver, sorted by name.
func Infos() []Info {
	solvers := List()
	infos := make([]Info, len(solvers))
	for i, s := range solvers {
		infos[i] = NewInfo(s)
	}
	return infos
}

// WireReport is the JSON wire form of a Report.
type WireReport struct {
	Solver     string  `json:"solver"`
	Routing    string  `json:"routing,omitempty"`
	Objective  string  `json:"objective"`
	Makespan   int64   `json:"makespan"`
	Resources  int64   `json:"resources"`
	Flow       []int64 `json:"flow,omitempty"`
	LowerBound float64 `json:"lower_bound,omitempty"`
	// LPLowerBound and ApproxRatioUpperBound mirror the Report fields of
	// the same names: the relaxation-certified bound and the resulting
	// upper bound on the true approximation ratio (absent for exact
	// solvers).
	LPLowerBound          float64 `json:"lp_lower_bound,omitempty"`
	ApproxRatioUpperBound float64 `json:"approx_ratio_upper_bound,omitempty"`
	Guarantee             string  `json:"guarantee,omitempty"`
	Exact                 bool    `json:"exact"`
	Complete              bool    `json:"complete"`
	// Nodes counts units of search work (branch-and-bound nodes,
	// Frank-Wolfe iterations; 0 for the dense-LP solvers).
	Nodes int `json:"nodes,omitempty"`
	// WallMS is the wall time of the solve that produced this report; a
	// cache hit carries the original compute time, not the lookup time.
	WallMS float64 `json:"wall_ms"`
}

// Wire converts the report for JSON transport.
func (r *Report) Wire() WireReport {
	return WireReport{
		Solver:                r.Solver,
		Routing:               r.Routing,
		Objective:             r.Objective.String(),
		Makespan:              r.Sol.Makespan,
		Resources:             r.Sol.Value,
		Flow:                  r.Sol.Flow,
		LowerBound:            r.LowerBound,
		LPLowerBound:          r.LPLowerBound,
		ApproxRatioUpperBound: r.ApproxRatioUpperBound,
		Guarantee:             r.Guarantee,
		Exact:                 r.Exact,
		Complete:              r.Complete,
		Nodes:                 r.Nodes,
		WallMS:                float64(r.Wall) / float64(time.Millisecond),
	}
}

package solver

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/duration"
	"repro/internal/scenario"
)

// provenRatioCap returns the theorem-backed makespan-vs-relaxation cap a
// solver must honor on instances inside its duration class, or 0 when no
// single-criteria cap applies.  The bi-criteria solvers prove makespan <=
// relax/alpha (alpha defaults to 1/2 here), kway5 and binary4 prove their
// constants against the LP bound (Theorems 3.9 and 3.10 bound the rounded
// makespan by 5 resp. 4 times the LP optimum), and binarybi proves 14/5
// (Theorem 3.16).
func provenRatioCap(name string) float64 {
	switch name {
	case "bicriteria", "bicriteria-resource", "frankwolfe":
		return 2 // 1/alpha at the 0.5 default
	case "kway5":
		return 5
	case "binary4":
		return 4
	case "binarybi":
		return 14.0 / 5
	}
	return 0
}

// TestApproximationSolverProperties is the randomized quality property of
// the scale tier: across scenario draws from every family, every solver
// with Caps.Approximate must report a consistent certificate -
//
//   - the reported ratio equals metric / LPLowerBound;
//   - metric <= LPLowerBound * ApproxRatioUpperBound (the recorded bound
//     really bounds the solution);
//   - a budget-RESPECTING solution's makespan is >= LPLowerBound (the
//     certificate is sound; overspending bi-criteria solutions may beat
//     the budget-B bound, so the check is conditional);
//   - on instances inside the solver's duration class, the reported
//     makespan respects the proven theorem cap relative to the
//     relaxation bound.
func TestApproximationSolverProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(20260729))
	famNames := []string{"layered", "forkjoin", "randomsp", "pipeline", "diamondmesh", "racetrace", "adversarial"}
	const draws = 18
	for i := 0; i < draws; i++ {
		spec := scenario.Spec{
			Name:   "prop",
			Family: famNames[i%len(famNames)],
			Seed:   rng.Int63n(1 << 30),
		}
		budget := 1 + rng.Int63n(12)
		spec.Budget = &budget
		inst, err := spec.Build()
		if err != nil {
			t.Fatalf("draw %d (%s): %v", i, spec.Family, err)
		}
		class := duration.Classify(inst.Fns)
		for _, s := range List() {
			caps := s.Capabilities()
			if !caps.Approximate || !caps.Budget {
				continue
			}
			// The dense-LP class solvers are exercised only in class (out
			// of class their guarantee is void and their LP can still be
			// big); bicriteria and frankwolfe run on everything small
			// enough.
			if caps.Classes != nil && !caps.SupportsClass(class) {
				continue
			}
			if s.Name() != "frankwolfe" && inst.G.NumEdges() > 80 {
				continue // keep the dense simplex off the big draws
			}
			rep, err := Solve(context.Background(), s.Name(), inst, WithBudget(budget))
			if err != nil {
				t.Fatalf("draw %d (%s) %s: %v", i, spec.Family, s.Name(), err)
			}
			lb, ratio := rep.LPLowerBound, rep.ApproxRatioUpperBound
			metric := float64(rep.Sol.Makespan)
			if metric == 0 {
				if ratio != 1 {
					t.Errorf("draw %d %s: zero makespan with ratio %v", i, s.Name(), ratio)
				}
				continue
			}
			if lb <= 0 {
				// No certificate claimed; nothing to verify, but the report
				// must not fabricate a ratio.
				if ratio != 0 {
					t.Errorf("draw %d %s: ratio %v without a bound", i, s.Name(), ratio)
				}
				continue
			}
			if math.Abs(ratio*lb-metric) > 1e-6*math.Max(1, metric) {
				t.Errorf("draw %d %s: ratio %v inconsistent with makespan %v / bound %v",
					i, s.Name(), ratio, metric, lb)
			}
			if metric > lb*ratio+1e-6 {
				t.Errorf("draw %d %s: makespan %v exceeds bound*ratio %v", i, s.Name(), metric, lb*ratio)
			}
			if rep.Sol.Value <= budget && metric < lb-1e-6 {
				t.Errorf("draw %d %s: budget-respecting makespan %v beats the certified bound %v (unsound certificate)",
					i, s.Name(), metric, lb)
			}
			// The theorem caps compare against the solver's own LP
			// optimum, which for the dense-LP solvers is exactly
			// LPLowerBound.  frankwolfe is excluded: its LowerBound folds
			// in the combinatorial budget floor, which can exceed its
			// relaxation value, so the 1/alpha cap is not checkable from
			// the report alone (the relax package tests it directly).
			if ratioCap := provenRatioCap(s.Name()); ratioCap > 0 && s.Name() != "frankwolfe" {
				if metric > ratioCap*lb*(1+1e-9)+1e-6 {
					t.Errorf("draw %d %s: makespan %v breaks the proven %.2fx cap against the LP bound %v",
						i, s.Name(), metric, ratioCap, lb)
				}
			}
		}
	}
}

package solver

import (
	"fmt"
	"sort"
	"sync"
)

// The registry maps solver names to implementations.  Built-in solvers
// register at init; callers may add their own with Register, following
// the registered-function pattern of pluggable-engine systems.
var (
	regMu    sync.RWMutex
	registry = make(map[string]Solver)
)

// Register adds s under s.Name().  It panics on an empty name or a
// duplicate registration: both are programming errors that must surface
// at init time, not at first dispatch.
func Register(s Solver) {
	name := s.Name()
	if name == "" {
		panic("solver: Register with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("solver: Register called twice for %q", name))
	}
	registry[name] = s
}

// Get resolves a solver by name; the error lists the known names.
func Get(name string) (Solver, error) {
	regMu.RLock()
	s, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("solver: unknown solver %q (registered: %v)", name, Names())
	}
	return s, nil
}

// List returns all registered solvers sorted by name.
func List() []Solver {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Solver, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Names returns the sorted registered solver names.
func Names() []string {
	solvers := List()
	names := make([]string, len(solvers))
	for i, s := range solvers {
		names[i] = s.Name()
	}
	return names
}

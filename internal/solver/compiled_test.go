package solver

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/duration"
	"repro/internal/scenario"
)

// wireBytes renders a report for byte comparison, with the wall time (the
// only legitimately nondeterministic field) zeroed.
func wireBytes(t *testing.T, rep *Report) []byte {
	t.Helper()
	w := rep.Wire()
	w.WallMS = 0
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSolversFreshVsMemoizedCompiled asserts that every registered solver
// returns a byte-identical Report whether it is handed a freshly compiled
// instance or one whose lazy derivations (hash, class, envelopes,
// expansion, series-parallel recognition) were already forced by earlier
// solves: memoization must be invisible to results.  It runs over the full
// corpus catalog; solvers are skipped only where their own contract skips
// them (unsupported objective, non-series-parallel input) or where their
// dense LP would not fit (the same expansion-size gate the auto router
// applies).  Parallelism is pinned to 1: a parallel exact search's witness
// flow is legitimately schedule-dependent, and this test is about
// memoization, not scheduling.
func TestSolversFreshVsMemoizedCompiled(t *testing.T) {
	for _, spec := range scenario.DefaultCorpus() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			inst, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			opts := NewOptions()
			if spec.Budget != nil {
				opts.Budget = *spec.Budget
			} else {
				opts.Target = *spec.Target
			}
			opts.Parallelism = 1
			// Cap the exact search so the big corpus entries stay fast
			// (also under -race); a truncated search is still
			// deterministic at parallelism 1.
			opts.MaxNodes = 1024

			// The memoized compiled form: solve once with auto and
			// frankwolfe first, which forces recognition, class detection,
			// envelopes and (on dense routes) the expansion.
			warm := core.Compile(inst)
			for _, prime := range []string{"auto", "frankwolfe"} {
				if _, err := SolveCompiledOptions(context.Background(), prime, warm, opts); err != nil {
					t.Fatalf("priming %s: %v", prime, err)
				}
			}

			denseOK := warm.ExpandedArcs <= autoDenseLPArcs
			for _, s := range List() {
				if strings.HasPrefix(s.Name(), "test-") {
					continue
				}
				if ValidateOptions(s, opts) != nil {
					continue // objective unsupported; not this test's concern
				}
				if s.Capabilities().Approximate && !s.Capabilities().Parallel && !denseOK && s.Name() != "frankwolfe" {
					continue // dense simplex would not fit this instance
				}
				fresh, ferr := SolveCompiledOptions(context.Background(), s.Name(), core.Compile(inst), opts)
				memo, merr := SolveCompiledOptions(context.Background(), s.Name(), warm, opts)
				if (ferr == nil) != (merr == nil) {
					t.Fatalf("%s: fresh err %v, memoized err %v", s.Name(), ferr, merr)
				}
				if ferr != nil {
					if errors.Is(ferr, ErrNotSeriesParallel) && errors.Is(merr, ErrNotSeriesParallel) {
						continue
					}
					if ferr.Error() != merr.Error() {
						t.Fatalf("%s: fresh err %q, memoized err %q", s.Name(), ferr, merr)
					}
					continue
				}
				if a, b := wireBytes(t, fresh), wireBytes(t, memo); string(a) != string(b) {
					t.Fatalf("%s: fresh and memoized reports differ:\n%s\n%s", s.Name(), a, b)
				}
			}
		})
	}
}

// TestSolveCompiledMatchesSolve pins the convenience wrappers to each
// other: Solve (which compiles internally) and SolveCompiled (on a caller
// compiled instance) must agree byte for byte.
func TestSolveCompiledMatchesSolve(t *testing.T) {
	inst := bridgeInstance(t, func() duration.Func { return stepFunc(t) })
	c := core.Compile(inst)
	via, err := Solve(context.Background(), "auto", inst, WithBudget(4))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := SolveCompiled(context.Background(), "auto", c, WithBudget(4))
	if err != nil {
		t.Fatal(err)
	}
	if a, b := wireBytes(t, via), wireBytes(t, direct); string(a) != string(b) {
		t.Fatalf("Solve and SolveCompiled disagree:\n%s\n%s", a, b)
	}
}

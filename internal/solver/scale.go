package solver

import (
	"context"

	"repro/internal/core"
	"repro/internal/relax"
)

// solveFrankWolfe is the scale tier's solver: the envelope relaxation of
// internal/relax (Frank-Wolfe with a certified duality-gap bound) plus
// Theorem 3.4 threshold rounding, running in O(iterations * m) time and
// O(m) memory where the dense-LP pipeline needs a tableau quadratic in the
// expanded size.  It handles both objectives: budget mode solves the
// relaxation once; target mode binary-searches the budget using certified
// relaxation infeasibility for the resource lower bound.
//
// The relax.Solver holds every scratch buffer (flows, event times, oracle
// DP arrays, the integral min-flow network) for the whole solve - including
// all Frank-Wolfe iterations and every probe of a target-mode budget
// search - so one solve call allocates a constant number of slices
// regardless of iteration count, the same per-worker state-reuse pattern
// as exact's MinFlowSolver.
func solveFrankWolfe(ctx context.Context, c *core.Compiled, o Options) (*Report, error) {
	s := relax.NewSolverCompiled(c)
	opt := relax.Options{Alpha: o.Alpha, WarmFlow: o.Incumbent, Parallelism: o.Parallelism}
	if o.Progress != nil {
		// Adapt the Frank-Wolfe (objective, bound, iters) stream to the
		// package-neutral ProgressEvent (relax cannot import solver).  The
		// fractional objective plays the incumbent role: it upper-bounds
		// what the rounded solution's certificate is measured against and
		// decreases monotonically, so the streamed gap shrinks exactly like
		// the exact search's.
		progress := o.Progress
		opt.Progress = func(objective, bound float64, iters int64) {
			progress(ProgressEvent{Incumbent: objective, Bound: bound, Nodes: iters})
		}
	}
	var (
		res *relax.Result
		err error
	)
	if o.Objective() == MinResource {
		res, err = s.MinResource(ctx, o.Target, opt)
	} else {
		res, err = s.MinMakespan(ctx, o.Budget, opt)
	}
	if res == nil {
		return nil, err
	}
	// A context interruption mid-iteration still yields a rounded
	// solution from the best iterate so far; it rides along as a partial
	// (Complete=false) Report, the same contract as the exact search.
	return &Report{
		Sol:          res.Sol,
		LowerBound:   res.LowerBound,
		LPLowerBound: res.LowerBound,
		Complete:     err == nil,
		Nodes:        res.Iters,
		Sweep:        res.Sweep,
	}, err
}

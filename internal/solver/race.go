package solver

import (
	"context"
	"fmt"

	"repro/internal/core"
)

// raceSolve runs the named solvers concurrently on the same instance and
// options, all under one child context.  The first solver to return a
// complete, error-free Report wins and the shared context is canceled so
// every loser stops at its next cooperative poll.  When nobody completes
// (deadline, node caps, pre-canceled parent), the most useful outcome is
// returned instead: a partial Report without error beats a partial Report
// with the context error, which beats a bare error.
//
// The racers share the process, not just the context, so auto only routes
// here when the caller explicitly opted in with Options.Parallelism >= 2.
func raceSolve(ctx context.Context, c *core.Compiled, o Options, names ...string) (rep *Report, winner string, err error) {
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		name string
		rep  *Report
		err  error
	}
	// Buffered so losers finishing after the verdict never block or leak.
	results := make(chan outcome, len(names))
	for _, name := range names {
		go func(name string) {
			s, err := Get(name)
			if err != nil {
				results <- outcome{name: name, err: err}
				return
			}
			rep, err := s.Solve(rctx, c, o)
			results <- outcome{name: name, rep: rep, err: err}
		}(name)
	}
	score := func(out outcome) int {
		switch {
		case out.rep != nil && out.err == nil:
			return 2
		case out.rep != nil:
			return 1
		}
		return 0
	}
	var fallback outcome
	haveFallback := false
	for range names {
		out := <-results
		if out.err == nil && out.rep != nil && out.rep.Complete {
			cancel() // first complete result wins; stop the losers
			return out.rep, out.name, nil
		}
		if !haveFallback || score(out) > score(fallback) {
			fallback, haveFallback = out, true
		}
	}
	if !haveFallback {
		return nil, "", fmt.Errorf("solver: race with no entrants")
	}
	return fallback.rep, fallback.name, fallback.err
}

// Package solver defines the unified solve API over the algorithms of
// Das et al. (SPAA 2019): a Solver interface with declarative
// capabilities, functional options, a named registry, and a structured
// Report, so that commands, benchmarks and library callers dispatch
// through one surface instead of hand-rolled per-algorithm switches.
//
// The built-in solvers (registered at init) are:
//
//	exact               branch-and-bound optimum (budget and target modes)
//	bicriteria          (1/a, 1/(1-a)) bi-criteria LP rounding, Thm 3.4
//	bicriteria-resource its minimum-resource twin
//	kway5               5-approximation for k-way splitting, Thm 3.9
//	binary4             4-approximation for recursive binary, Thm 3.10
//	binarybi            (4/3, 14/5) bi-criteria for recursive binary, Thm 3.16
//	spdp                exact O(m B^2) DP on series-parallel DAGs, Sec 3.4
//	auto                portfolio: inspects the instance and routes to the
//	                    solver above whose guarantee applies
//
// All solvers accept a context.Context; the exact search and the LP
// relaxations poll it cooperatively, so long solves are interruptible and
// deadline-bounded (WithDeadline).  On interruption Solve may return a
// non-nil partial Report together with the context error.
//
// WithParallelism sizes the exact search's worker pool (Caps.Parallel
// marks the solvers that honor it) and additionally arms auto's racing
// mode: on instances whose assignment space sits just past the exact
// threshold, auto runs exact and the bi-criteria rounding concurrently
// under one context, keeps the first complete result, and cancels the
// loser.
package solver

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/duration"
	"repro/internal/exact"
	"repro/internal/flow"
	"repro/internal/sp"
)

// Objective distinguishes the two optimization directions of the paper.
type Objective int

// Objectives.
const (
	// MinMakespan minimizes makespan under a resource budget.
	MinMakespan Objective = iota
	// MinResource minimizes resource usage under a makespan target.
	MinResource
)

// String names the objective for reports and wire forms.
func (o Objective) String() string {
	if o == MinResource {
		return "min-resource"
	}
	return "min-makespan"
}

// Caps declares what an individual solver supports, so dispatch errors
// surface before any work starts instead of as silent fallthroughs.
type Caps struct {
	// Budget: supports min-makespan mode (a resource budget).
	Budget bool
	// Target: supports min-resource mode (a makespan target).
	Target bool
	// Exact: the solution is optimal when the run completes.
	Exact bool
	// Approximate: the solver carries a proven multiplicative bound and
	// fills Report.LPLowerBound / Report.ApproxRatioUpperBound, so its
	// quality is checkable per solve (the corpus gate relies on this).
	Approximate bool
	// SeriesParallelOnly: requires a two-terminal series-parallel DAG.
	SeriesParallelOnly bool
	// Parallel: honors Options.Parallelism (a multicore search).  Asking
	// a non-parallel solver for parallelism is a capability error, not a
	// silent ignore.
	Parallel bool
	// Classes lists the duration-function kinds (duration.Kind*) whose
	// approximation guarantee the solver carries; nil means any
	// non-increasing step function.
	Classes []string
	// Guarantee describes the proven bound in human-readable form.
	Guarantee string
}

// Supports reports whether the solver handles the given objective.
func (c Caps) Supports(obj Objective) bool {
	if obj == MinResource {
		return c.Target
	}
	return c.Budget
}

// SupportsClass reports whether the solver's guarantee covers the given
// duration class kind.  Constant functions belong to every class.
func (c Caps) SupportsClass(kind string) bool {
	if c.Classes == nil || kind == duration.KindConst {
		return true
	}
	for _, k := range c.Classes {
		if k == kind {
			return true
		}
	}
	return false
}

// Options carries the resolved knobs of one solve call.  Build it with
// the With* functional options; the zero value is not valid (use
// NewOptions or Solve).
type Options struct {
	// Budget is the resource budget; >= 0 selects min-makespan mode.
	Budget int64
	// Target is the makespan target; >= 0 selects min-resource mode.
	Target int64
	// Alpha is the bi-criteria rounding parameter in (0,1).
	Alpha float64
	// MaxNodes caps the exact search; 0 uses the search's default.
	MaxNodes int
	// Parallelism sizes the worker pool of parallel solvers: 0 uses
	// GOMAXPROCS, 1 forces sequential search.  Explicit values of 2 or
	// more also arm auto's exact-vs-approximation racing.  Only solvers
	// whose Caps declare Parallel accept values above 1.
	Parallelism int
	// Deadline bounds the wall time; zero means none.  Solve derives a
	// context deadline from it.
	Deadline time.Time
	// Incumbent optionally seeds warm-startable solvers with a
	// known-feasible flow, typically a stored neighbor's solution: the
	// exact search starts with it as the incumbent and prunes from node
	// one, the Frank-Wolfe relaxation starts iterating from it.  It is a
	// HINT, not an input: solvers validate it (conservation, budget,
	// target) and silently ignore anything unusable, certificates are
	// always recomputed rather than inherited, and a complete solve's
	// optimal VALUE never depends on it.  Solvers without a warm-start
	// path ignore it entirely.
	Incumbent []int64
	// FlowPool optionally shares min-flow networks across solves (see
	// flow.SolverPool): topology-matched instances reuse one transformed
	// network instead of rebuilding it.  Purely an allocation/latency
	// knob; results never depend on it.
	FlowPool *flow.SolverPool
	// Progress, when non-nil, receives anytime-trajectory events from
	// solvers that support them: the exact search emits on every incumbent
	// improvement and the Frank-Wolfe relaxation on bound tightening, both
	// rate-limited by construction (improvements are monotone) so the
	// callback never sits on a per-node hot path.  It may be invoked from
	// solver worker goroutines concurrently with the solve; implementations
	// must be safe for concurrent use and must not block.  Purely
	// observational: results never depend on it.
	Progress ProgressFunc

	// spTree and spLeafArc carry an already-recognized series-parallel
	// decomposition from the auto router to the spdp solver, saving a
	// second recognition pass.  Unexported: an internal hint, not API.
	spTree    *sp.Tree
	spLeafArc map[*sp.Tree]int
	// raceRival carries auto's size-routed choice of rounding rival into
	// the racing path.  Unexported: an internal hint, not API.
	raceRival string
}

// Objective returns the optimization direction the options select.
func (o Options) Objective() Objective {
	if o.Target >= 0 {
		return MinResource
	}
	return MinMakespan
}

// Option mutates Options; pass them to Solve or NewOptions.
type Option func(*Options)

// WithBudget selects min-makespan mode under a resource budget.
func WithBudget(b int64) Option { return func(o *Options) { o.Budget = b } }

// WithTarget selects min-resource mode under a makespan target.
func WithTarget(t int64) Option { return func(o *Options) { o.Target = t } }

// WithAlpha sets the bi-criteria rounding parameter (default 0.5).
func WithAlpha(a float64) Option { return func(o *Options) { o.Alpha = a } }

// WithMaxNodes caps the exact branch-and-bound search.
func WithMaxNodes(n int) Option { return func(o *Options) { o.MaxNodes = n } }

// WithParallelism sizes the branch-and-bound worker pool (0: GOMAXPROCS,
// 1: sequential) and lets auto race exact against the bi-criteria rounding
// when the instance sits near the exact-search threshold.
func WithParallelism(n int) Option { return func(o *Options) { o.Parallelism = n } }

// WithDeadline bounds the solve's wall time via a context deadline.
func WithDeadline(d time.Time) Option { return func(o *Options) { o.Deadline = d } }

// WithIncumbent seeds warm-startable solvers with a known-feasible flow
// (see Options.Incumbent).  The slice is not copied; callers must not
// mutate it during the solve.
func WithIncumbent(f []int64) Option { return func(o *Options) { o.Incumbent = f } }

// WithFlowPool shares min-flow networks across solves (see
// Options.FlowPool).
func WithFlowPool(p *flow.SolverPool) Option { return func(o *Options) { o.FlowPool = p } }

// WithProgress subscribes fn to the solve's anytime trajectory (see
// Options.Progress).  fn may be called from solver goroutines and must be
// safe for concurrent use.
func WithProgress(fn ProgressFunc) Option { return func(o *Options) { o.Progress = fn } }

// ProgressEvent is one point of a solve's anytime trajectory: the best
// feasible objective found so far and the best certified lower bound, in
// the units of the active objective (makespan for min-makespan solves,
// resources for min-resource).  Incumbent is -1 until a first feasible
// solution exists; Bound is 0 until a first certificate exists.  Within
// one solve, Incumbent never increases and Bound never decreases across
// the delivered events, so the optimality gap shrinks monotonically.
type ProgressEvent struct {
	// Incumbent is the objective value of the best feasible solution found
	// so far, or -1 when none exists yet.
	Incumbent float64
	// Bound is the best certified lower bound on the optimum so far; 0
	// when no certificate exists yet.
	Bound float64
	// Nodes counts the search work done when the event was emitted
	// (branch-and-bound nodes, Frank-Wolfe iterations).
	Nodes int64
}

// ProgressFunc receives ProgressEvents during a solve.  Implementations
// must be safe for concurrent use and must return quickly: solvers invoke
// it inline (on improvement paths, never per node), so a blocking callback
// stalls the search.
type ProgressFunc func(ProgressEvent)

// NewOptions resolves functional options onto the defaults
// (no budget, no target, alpha 1/2, unlimited nodes, no deadline).
func NewOptions(opts ...Option) Options {
	o := Options{Budget: -1, Target: -1, Alpha: 0.5}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// Report is the structured outcome of one solve.
type Report struct {
	// Solver is the name of the solver that produced the solution.
	Solver string
	// Routing records a portfolio solver's dispatch decision; empty for
	// direct solves.
	Routing string
	// Objective is the optimization direction that was run.
	Objective Objective
	// Sol is the integral solution on the instance.
	Sol core.Solution
	// LowerBound bounds the optimum from below (LP optimum for the
	// approximation algorithms, the solution's own metric for complete
	// exact runs); 0 when no bound is available.
	LowerBound float64
	// LPLowerBound is the relaxation-certified lower bound on the optimum
	// (the LP optimum for the dense-LP solvers, the Frank-Wolfe
	// certificate for the scale tier); 0 for solvers that do not solve a
	// relaxation.  Unlike LowerBound it is never back-filled from the
	// solution itself, so it is the honest denominator for approximation
	// ratios.
	LPLowerBound float64
	// ApproxRatioUpperBound bounds the true approximation ratio of Sol
	// from above: the solution's objective metric divided by
	// LPLowerBound.  0 when no relaxation bound is available (then
	// nothing is claimed).  Values below 1 are legitimate for bi-criteria
	// solvers: the bound is relative to the stated budget while the
	// solution may spend up to B/(1-alpha), so it can beat the budget-B
	// optimum.
	ApproxRatioUpperBound float64
	// Guarantee is the proven approximation bound that applies.
	Guarantee string
	// Exact reports that the solution is optimal (requires Complete).
	Exact bool
	// Complete is false when the search was truncated by MaxNodes or by
	// context cancellation; the solution is then best-so-far.
	Complete bool
	// Nodes counts units of search work: branch-and-bound nodes expanded
	// for exact, Frank-Wolfe iterations for the scale tier, 0 for the
	// dense-LP solvers.
	Nodes int
	// Sweep names the scale tier's sweep execution mode ("seq", or
	// "level-par p=N" for an N-worker gang); empty for other solvers.
	// Diagnostic only - it describes HOW the solve ran, not what it
	// found - so it stays off the wire report, whose bytes are identical
	// across parallelism levels.
	Sweep string
	// Wall is the measured wall-clock solve time.
	Wall time.Duration
}

// String renders the report compactly for logs and CLI output.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: makespan %d, resources %d", r.Solver, r.Sol.Makespan, r.Sol.Value)
	if r.Exact && r.Complete {
		b.WriteString(" (optimal)")
	} else if r.LowerBound > 0 {
		fmt.Fprintf(&b, " (lower bound %.2f)", r.LowerBound)
	}
	if r.ApproxRatioUpperBound > 0 {
		fmt.Fprintf(&b, " (ratio <= %.3f)", r.ApproxRatioUpperBound)
	}
	if !r.Complete {
		b.WriteString(" [incomplete]")
	}
	if r.Routing != "" {
		fmt.Fprintf(&b, " via %s", r.Routing)
	}
	fmt.Fprintf(&b, " in %v", r.Wall)
	return b.String()
}

// Solver is one algorithm behind the unified API.  Every solver consumes
// the compiled-instance form (core.Compiled): the topological order,
// breakpoint tables, canonical hash, envelopes, expansion and recognition
// results are derived once per instance and shared across solvers instead
// of re-derived per solve.
type Solver interface {
	// Name is the registry key.
	Name() string
	// Capabilities declares the supported modes and duration classes.
	Capabilities() Caps
	// Solve runs the algorithm.  Implementations poll ctx cooperatively;
	// an interrupted run may return a non-nil partial Report (best
	// solution so far, Complete=false) together with ctx's error.
	Solve(ctx context.Context, c *core.Compiled, opts Options) (*Report, error)
}

// Solve resolves name in the registry, validates the options against the
// solver's capabilities, applies the deadline, runs the solver and stamps
// the wall time.  It is the single entry point commands and examples use;
// it compiles the instance first, so callers that solve the same instance
// repeatedly should compile once themselves and use SolveCompiledOptions.
func Solve(ctx context.Context, name string, inst *core.Instance, opts ...Option) (*Report, error) {
	return SolveOptions(ctx, name, inst, NewOptions(opts...))
}

// SolveOptions is Solve with an already-resolved Options value: the entry
// point for callers that decode options from a wire form (WireOptions)
// instead of composing functional options.
func SolveOptions(ctx context.Context, name string, inst *core.Instance, o Options) (*Report, error) {
	// Fail fast on an unknown solver or invalid options before paying the
	// O(m) compilation; SolveCompiledOptions re-checks, which is cheap.
	s, err := Get(name)
	if err != nil {
		return nil, err
	}
	if err := checkOptions(s, o); err != nil {
		return nil, err
	}
	return SolveCompiledOptions(ctx, name, core.Compile(inst), o)
}

// SolveCompiled is Solve on an already-compiled instance: compile once
// with core.Compile, then solve under as many solvers, budgets and targets
// as needed without repeating the preprocessing.
func SolveCompiled(ctx context.Context, name string, c *core.Compiled, opts ...Option) (*Report, error) {
	return SolveCompiledOptions(ctx, name, c, NewOptions(opts...))
}

// SolveCompiledOptions runs a registered solver on an already-compiled
// instance: the hot path of the solving service, where a cached
// core.Compiled skips every per-solve re-derivation.
func SolveCompiledOptions(ctx context.Context, name string, c *core.Compiled, o Options) (*Report, error) {
	s, err := Get(name)
	if err != nil {
		return nil, err
	}
	if err := checkOptions(s, o); err != nil {
		return nil, err
	}
	if !o.Deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, o.Deadline)
		defer cancel()
	}
	start := time.Now()
	// A context that is dead on arrival (a past deadline, or a parent that
	// was already canceled) must not burn a scheduling round-trip through
	// the solver: return the context error immediately, carrying a
	// lower-bound-only Report so the caller still learns something sound
	// about the optimum.
	if err := ctx.Err(); err != nil {
		rep := &Report{Solver: s.Name(), Objective: o.Objective()}
		if o.Objective() == MinResource {
			rep.LowerBound = float64(exact.ResourceLowerBound(c.Inst, o.Target))
		} else {
			rep.LowerBound = float64(exact.BudgetedMakespanLowerBoundCompiled(c, o.Budget))
		}
		rep.Wall = time.Since(start)
		return rep, err
	}
	rep, err := s.Solve(ctx, c, o)
	if rep != nil {
		rep.Wall = time.Since(start)
		if rep.Solver == "" {
			rep.Solver = s.Name()
		}
		// A class-restricted solver still runs on out-of-class instances
		// (the rounding pipeline is well-defined on any step function),
		// but its proven bound does not apply - say so in the Report
		// rather than advertising a guarantee that does not hold.
		if caps := s.Capabilities(); caps.Classes != nil {
			if class := c.Class(); !caps.SupportsClass(class) {
				rep.Guarantee = fmt.Sprintf("none: duration class %q is outside this solver's classes %v", class, caps.Classes)
			}
		}
	}
	return rep, err
}

// ValidateOptions rejects option/capability mismatches up front with an
// actionable error, without running anything.  Services use it to fail
// requests before they are queued.
func ValidateOptions(s Solver, o Options) error { return checkOptions(s, o) }

// checkOptions rejects option/capability mismatches up front with an
// actionable error.
func checkOptions(s Solver, o Options) error {
	caps := s.Capabilities()
	switch {
	case o.Budget >= 0 && o.Target >= 0:
		return fmt.Errorf("solver: exactly one of budget and target must be set (got budget %d and target %d)", o.Budget, o.Target)
	case o.Budget < 0 && o.Target < 0:
		return fmt.Errorf("solver: one of budget and target is required")
	}
	obj := o.Objective()
	if !caps.Supports(obj) {
		other := MinMakespan
		if obj == MinMakespan {
			other = MinResource
		}
		return fmt.Errorf("solver: %q does not support %v mode, only %v (solvers supporting %v: %s)",
			s.Name(), obj, other, obj, strings.Join(namesSupporting(obj), ", "))
	}
	if o.Parallelism < 0 {
		return fmt.Errorf("solver: negative parallelism %d (0 means GOMAXPROCS, 1 sequential)", o.Parallelism)
	}
	if o.Parallelism > 1 && !caps.Parallel {
		return fmt.Errorf("solver: %q is single-threaded and ignores parallelism %d (parallel solvers: %s)",
			s.Name(), o.Parallelism, strings.Join(namesParallel(), ", "))
	}
	return nil
}

// namesParallel lists registered solvers that honor Options.Parallelism.
func namesParallel() []string {
	var names []string
	for _, s := range List() {
		if s.Capabilities().Parallel {
			names = append(names, s.Name())
		}
	}
	return names
}

// namesSupporting lists registered solvers that handle obj, for error
// messages.
func namesSupporting(obj Objective) []string {
	var names []string
	for _, s := range List() {
		if s.Capabilities().Supports(obj) {
			names = append(names, s.Name())
		}
	}
	return names
}

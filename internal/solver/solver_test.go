package solver

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/duration"
	"repro/internal/exact"
	"repro/internal/scenario"
	"repro/internal/sp"
)

// bridgeInstance builds the Wheatstone bridge - the forbidden subgraph of
// two-terminal series-parallel DAGs - with one duration function class on
// every arc, so class-based routing can be tested in isolation from the
// series-parallel rule.
func bridgeInstance(t *testing.T, mk func() duration.Func) *core.Instance {
	t.Helper()
	g := dag.New()
	s, a, b, snk := g.AddNode("s"), g.AddNode("a"), g.AddNode("b"), g.AddNode("t")
	fns := make([]duration.Func, 0, 5)
	for _, arc := range [][2]int{{s, a}, {s, b}, {a, b}, {a, snk}, {b, snk}} {
		g.AddEdge(arc[0], arc[1])
		fns = append(fns, mk())
	}
	inst, err := core.NewInstance(g, fns)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func stepFunc(t *testing.T) duration.Func {
	t.Helper()
	fn, err := duration.NewStep([]duration.Tuple{{R: 0, T: 9}, {R: 1, T: 5}, {R: 3, T: 2}})
	if err != nil {
		t.Fatal(err)
	}
	return fn
}

func TestRegistryResolvesAllBuiltins(t *testing.T) {
	want := []string{"auto", "bicriteria", "bicriteria-resource", "binary4", "binarybi", "exact", "frankwolfe", "kway5", "spdp"}
	for _, name := range want {
		s, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("Get(%q).Name() = %q", name, s.Name())
		}
	}
	// Other tests may register "test-"-prefixed probe solvers; ignore them.
	var names []string
	for _, name := range Names() {
		if !strings.HasPrefix(name, "test-") {
			names = append(names, name)
		}
	}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v; want the %d built-ins %v", names, len(want), want)
	}
	for i, name := range want {
		if names[i] != name {
			t.Fatalf("Names()[%d] = %q; want %q (sorted)", i, names[i], name)
		}
	}
	if _, err := Get("nope"); err == nil || !strings.Contains(err.Error(), "unknown solver") {
		t.Fatalf("Get(nope) = %v; want unknown-solver error", err)
	}
}

func TestCapabilitiesRejectUnsupportedMode(t *testing.T) {
	inst := bridgeInstance(t, func() duration.Func { return duration.NewKWay(30) })
	for _, name := range []string{"kway5", "binary4", "binarybi", "bicriteria"} {
		_, err := Solve(context.Background(), name, inst, WithTarget(5))
		if err == nil || !strings.Contains(err.Error(), "does not support min-resource") {
			t.Fatalf("%s with target: err = %v; want unsupported-mode error", name, err)
		}
	}
	if _, err := Solve(context.Background(), "bicriteria-resource", inst, WithBudget(5)); err == nil ||
		!strings.Contains(err.Error(), "does not support min-makespan") {
		t.Fatalf("bicriteria-resource with budget: err = %v; want unsupported-mode error", err)
	}
	if _, err := Solve(context.Background(), "exact", inst); err == nil {
		t.Fatal("no budget and no target should be rejected")
	}
	if _, err := Solve(context.Background(), "exact", inst, WithBudget(2), WithTarget(2)); err == nil {
		t.Fatal("both budget and target should be rejected")
	}
}

func TestAutoRouting(t *testing.T) {
	spInst, _, err := sp.Series(
		sp.Leaf(duration.NewKWay(40)),
		sp.Parallel(sp.Leaf(duration.NewKWay(25)), sp.Leaf(duration.NewRecursiveBinary(32))),
	).ToInstance()
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		inst   *core.Instance
		opts   []Option
		routed string
	}{
		{"sp-budget", spInst, []Option{WithBudget(6)}, "spdp"},
		{"sp-target", spInst, []Option{WithTarget(30)}, "spdp"},
		{"kway", bridgeInstance(t, func() duration.Func { return duration.NewKWay(30) }),
			[]Option{WithBudget(4)}, "kway5"},
		{"binary", bridgeInstance(t, func() duration.Func { return duration.NewRecursiveBinary(32) }),
			[]Option{WithBudget(4)}, "binary4"},
		{"step-small", bridgeInstance(t, func() duration.Func { return stepFunc(t) }),
			[]Option{WithBudget(4)}, "exact"},
		{"step-small-target", bridgeInstance(t, func() duration.Func { return stepFunc(t) }),
			[]Option{WithTarget(20)}, "exact"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := Solve(context.Background(), "auto", tc.inst, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(rep.Routing, "auto -> "+tc.routed) {
				t.Fatalf("Routing = %q; want dispatch to %q", rep.Routing, tc.routed)
			}
			if rep.Solver != tc.routed {
				t.Fatalf("Solver = %q; want %q", rep.Solver, tc.routed)
			}
			if rep.Wall <= 0 {
				t.Fatal("Wall time not recorded")
			}
		})
	}
}

func TestAutoRoutesLargeStepToBiCriteria(t *testing.T) {
	// 128 arcs with up to 5 breakpoints each: far beyond the exact
	// search's assignment-space threshold, not series-parallel, and not a
	// recognized special class.
	inst := scenario.NewGen(3).StepInstance(8, 8, 6, 5, 200, 3)
	rep, err := Solve(context.Background(), "auto", inst, WithBudget(10))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Routing, "auto -> bicriteria:") {
		t.Fatalf("Routing = %q; want bicriteria", rep.Routing)
	}
	if rep.LowerBound <= 0 {
		t.Fatalf("LowerBound = %v; want the LP bound", rep.LowerBound)
	}
}

func TestAutoAgreesWithExactOnSP(t *testing.T) {
	// On a series-parallel instance auto must route to the exact DP, so
	// its makespan must match branch-and-bound.
	tree := sp.Series(sp.Leaf(duration.NewKWay(60)),
		sp.Parallel(sp.Leaf(duration.NewKWay(40)), sp.Leaf(duration.NewKWay(50))))
	inst, _, err := tree.ToInstance()
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{0, 2, 5, 9} {
		auto, err := Solve(context.Background(), "auto", inst, WithBudget(budget))
		if err != nil {
			t.Fatal(err)
		}
		ex, err := Solve(context.Background(), "exact", inst, WithBudget(budget))
		if err != nil {
			t.Fatal(err)
		}
		if !ex.Complete {
			t.Fatalf("budget %d: exact incomplete", budget)
		}
		if auto.Sol.Makespan != ex.Sol.Makespan {
			t.Fatalf("budget %d: auto(spdp) makespan %d != exact %d", budget, auto.Sol.Makespan, ex.Sol.Makespan)
		}
	}
}

func TestCanceledContextAbortsExactWithPartialReport(t *testing.T) {
	// This instance takes several seconds of branch-and-bound
	// uninterrupted (~150k nodes/3s); the deadline must cut it off after
	// a few nodes, keeping the best solution found so far.
	inst := scenario.NewGen(7).KWayInstance(5, 5, 3, 400)
	start := time.Now()
	rep, err := Solve(context.Background(), "exact", inst,
		WithBudget(40), WithDeadline(time.Now().Add(150*time.Millisecond)))
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v; want context.DeadlineExceeded", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("solve took %v after a 150ms deadline; cancellation is not prompt", elapsed)
	}
	if rep == nil {
		t.Fatal("want a partial Report alongside the context error")
	}
	if rep.Complete {
		t.Fatal("interrupted run must report Complete=false")
	}
	if rep.Nodes == 0 {
		t.Fatal("want at least one search node before interruption")
	}
	if rep.Sol.Makespan <= 0 || rep.Sol.Value > 40 {
		t.Fatalf("partial solution (makespan %d, resources %d) is not usable", rep.Sol.Makespan, rep.Sol.Value)
	}
}

func TestPastDeadlineReturnsImmediateLowerBoundReport(t *testing.T) {
	// Regression test: a deadline already in the past used to burn a full
	// scheduling round-trip (spinning up the branch-and-bound frontier and
	// worker pool) before the first cooperative poll noticed the dead
	// context.  Solve must now return the context error immediately, with
	// a lower-bound-only Report and zero search nodes.
	inst := scenario.NewGen(7).KWayInstance(5, 5, 3, 400)
	for name, opt := range map[string]Option{
		"budget": WithBudget(40),
		// The tightest possible target forces resources onto every
		// critical-path arc, so the slack-based resource bound is positive.
		"target": WithTarget(inst.MakespanLowerBound()),
	} {
		t.Run(name, func(t *testing.T) {
			start := time.Now()
			rep, err := Solve(context.Background(), "exact", inst,
				opt, WithDeadline(time.Now().Add(-time.Second)))
			elapsed := time.Since(start)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v; want context.DeadlineExceeded", err)
			}
			if rep == nil {
				t.Fatal("want a lower-bound-only Report alongside the error")
			}
			if rep.Nodes != 0 {
				t.Fatalf("Nodes = %d; a dead-on-arrival solve must not search", rep.Nodes)
			}
			if rep.Complete || rep.Exact {
				t.Fatal("a dead-on-arrival solve must not claim completeness")
			}
			if rep.Sol.Flow != nil {
				t.Fatal("no solution can exist; Report must be lower-bound-only")
			}
			if rep.LowerBound <= 0 {
				t.Fatalf("LowerBound = %v; want a positive sound bound", rep.LowerBound)
			}
			if rep.Solver != "exact" {
				t.Fatalf("Solver = %q; want %q", rep.Solver, "exact")
			}
			// The instance needs seconds of uninterrupted search; anywhere
			// near that means the round-trip was burned after all.
			if elapsed > time.Second {
				t.Fatalf("dead-on-arrival solve took %v; want an immediate return", elapsed)
			}
		})
	}
}

func TestPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	inst := bridgeInstance(t, func() duration.Func { return stepFunc(t) })
	if _, err := Solve(ctx, "exact", inst, WithBudget(3)); !errors.Is(err, context.Canceled) {
		t.Fatalf("exact: err = %v; want context.Canceled", err)
	}
	if _, err := Solve(ctx, "bicriteria", inst, WithBudget(3)); !errors.Is(err, context.Canceled) {
		t.Fatalf("bicriteria: err = %v; want context.Canceled (LP iteration must poll ctx)", err)
	}
}

func TestSPDPRejectsNonSeriesParallel(t *testing.T) {
	inst := bridgeInstance(t, func() duration.Func { return stepFunc(t) })
	if _, err := Solve(context.Background(), "spdp", inst, WithBudget(3)); !errors.Is(err, ErrNotSeriesParallel) {
		t.Fatalf("err = %v; want ErrNotSeriesParallel", err)
	}
}

func TestSPDPFlowMatchesTables(t *testing.T) {
	g := scenario.NewGen(11)
	for trial := 0; trial < 10; trial++ {
		tree := g.SPTree(6, 3, 20, 3)
		inst, _, err := tree.ToInstance()
		if err != nil {
			t.Fatal(err)
		}
		const budget = 5
		tables, err := sp.Solve(tree, budget)
		if err != nil {
			t.Fatal(err)
		}
		want, err := tables.Makespan(budget)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Solve(context.Background(), "spdp", inst, WithBudget(budget))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Sol.Makespan != want {
			t.Fatalf("trial %d: spdp solution makespan %d != DP table %d", trial, rep.Sol.Makespan, want)
		}
		if rep.Sol.Value > budget {
			t.Fatalf("trial %d: flow value %d exceeds budget %d", trial, rep.Sol.Value, budget)
		}
	}
}

func TestSPDPTargetMode(t *testing.T) {
	tree := sp.Series(sp.Leaf(duration.NewKWay(36)), sp.Leaf(duration.NewKWay(36)))
	inst, _, err := tree.ToInstance()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Solve(context.Background(), "spdp", inst, WithTarget(30))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sol.Makespan > 30 {
		t.Fatalf("makespan %d exceeds target 30", rep.Sol.Makespan)
	}
	ex, err := Solve(context.Background(), "exact", inst, WithTarget(30))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sol.Value != ex.Sol.Value {
		t.Fatalf("spdp min resources %d != exact %d", rep.Sol.Value, ex.Sol.Value)
	}
	if _, err := Solve(context.Background(), "spdp", inst, WithTarget(0)); err == nil {
		t.Fatal("unreachable target should error")
	}
}

func TestAutoSPBudgetGuardDoesNotOverflow(t *testing.T) {
	// A huge budget must not overflow the DP cost estimate and sneak a
	// series-parallel instance into spdp (which would allocate O(m*B)
	// table rows); auto has to fall back to another solver.
	inst, _, err := sp.Series(sp.Leaf(stepFunc(t)), sp.Leaf(stepFunc(t))).ToInstance()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Solve(context.Background(), "auto", inst, WithBudget(4_000_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(rep.Routing, "spdp") {
		t.Fatalf("Routing = %q; the budget guard must keep huge budgets away from the DP", rep.Routing)
	}
}

func TestSupportsClass(t *testing.T) {
	restricted := Caps{Classes: []string{duration.KindKWay}}
	if !restricted.SupportsClass(duration.KindKWay) || restricted.SupportsClass(duration.KindBinary) {
		t.Fatal("restricted caps must accept exactly their classes")
	}
	if !restricted.SupportsClass(duration.KindConst) {
		t.Fatal("constant functions belong to every class")
	}
	if !(Caps{Classes: []string{}}).SupportsClass(duration.KindConst) {
		t.Fatal("constant functions must pass even an empty class list")
	}
	if !(Caps{}).SupportsClass(duration.KindStep) {
		t.Fatal("nil Classes means any class")
	}
}

func TestOutOfClassGuaranteeIsVoided(t *testing.T) {
	// binary4 runs fine on general step functions, but Thm 3.10 does not
	// apply; the Report must not advertise the 4-approximation.
	inst := bridgeInstance(t, func() duration.Func { return stepFunc(t) })
	rep, err := Solve(context.Background(), "binary4", inst, WithBudget(3))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Guarantee, "none") || !strings.Contains(rep.Guarantee, "step") {
		t.Fatalf("Guarantee = %q; want it voided for out-of-class input", rep.Guarantee)
	}
	// In-class input keeps the proven bound.
	kway := bridgeInstance(t, func() duration.Func { return duration.NewKWay(30) })
	rep, err = Solve(context.Background(), "kway5", kway, WithBudget(3))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Guarantee, "5 OPT") {
		t.Fatalf("Guarantee = %q; want the Thm 3.9 bound on in-class input", rep.Guarantee)
	}
}

func TestTruncatedMinResourceIsNotNoSolution(t *testing.T) {
	// A node-capped search that found nothing must say "unknown", not
	// assert infeasibility: the target here is reachable.
	inst := bridgeInstance(t, func() duration.Func { return stepFunc(t) })
	full, err := Solve(context.Background(), "exact", inst, WithTarget(10))
	if err != nil {
		t.Fatalf("target 10 should be reachable: %v", err)
	}
	_, err = Solve(context.Background(), "exact", inst, WithTarget(10), WithMaxNodes(1))
	if !errors.Is(err, exact.ErrTruncated) {
		t.Fatalf("err = %v; want ErrTruncated (target is reachable with %d units)", err, full.Sol.Value)
	}
}

func TestConstantInstanceKeepsGuarantee(t *testing.T) {
	// Constant functions belong to every class; a class-restricted
	// solver's guarantee must not be voided on them.
	inst := bridgeInstance(t, func() duration.Func { return duration.Constant(5) })
	rep, err := Solve(context.Background(), "kway5", inst, WithBudget(3))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(rep.Guarantee, "none") {
		t.Fatalf("Guarantee = %q; constants are in-class for every solver", rep.Guarantee)
	}
}

func TestSPDPHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tree := sp.Series(sp.Leaf(duration.NewKWay(36)), sp.Leaf(duration.NewKWay(25)))
	inst, _, err := tree.ToInstance()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(ctx, "spdp", inst, WithBudget(4)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v; want context.Canceled (DP must poll ctx)", err)
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register must panic")
		}
	}()
	Register(&funcSolver{name: "exact"})
}

// TestAutoRoutesHugeToFrankWolfe checks the scale tier's size-based
// routing: once the expansion outgrows the dense simplex, auto dispatches
// to frankwolfe in both objectives — including for instances whose
// duration class would otherwise pick a dense-LP class solver — and the
// report carries a certified bound with its ratio.
func TestAutoRoutesHugeToFrankWolfe(t *testing.T) {
	g := scenario.NewGen(9)
	tests := []struct {
		name   string
		inst   *core.Instance
		opts   []Option
		budget bool
	}{
		{"step-budget", g.StepInstance(24, 24, 12, 4, 60, 5), []Option{WithBudget(40)}, true},
		{"step-target", g.StepInstance(24, 24, 12, 4, 60, 5), []Option{WithTarget(700)}, false},
		{"kway-budget", g.KWayInstance(24, 24, 12, 400), []Option{WithBudget(40)}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := Solve(context.Background(), "auto", tc.inst, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Solver != "frankwolfe" || !strings.Contains(rep.Routing, "auto -> frankwolfe") {
				t.Fatalf("Solver = %q, Routing = %q; want frankwolfe", rep.Solver, rep.Routing)
			}
			if tc.budget {
				// Min-makespan: the optimum is positive (constant-free
				// critical paths), so the certified bound must be too.
				if rep.LPLowerBound <= 0 {
					t.Fatalf("LPLowerBound = %v; want a certified positive bound", rep.LPLowerBound)
				}
				if rep.ApproxRatioUpperBound <= 0 {
					t.Fatalf("ApproxRatioUpperBound = %v; want > 0", rep.ApproxRatioUpperBound)
				}
			} else {
				// Min-resource: the target must be met; a zero bound is
				// legitimate (zero resources may suffice for loose
				// targets), but any claimed ratio must be consistent.
				if rep.Sol.Makespan > 700 {
					t.Fatalf("makespan %d misses the 700 target", rep.Sol.Makespan)
				}
				if rep.ApproxRatioUpperBound != 0 && rep.ApproxRatioUpperBound < 1 {
					t.Fatalf("ApproxRatioUpperBound = %v; want 0 or >= 1", rep.ApproxRatioUpperBound)
				}
			}
		})
	}
}

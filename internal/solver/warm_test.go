package solver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/duration"
	"repro/internal/scenario"
)

// warmWireBytes renders a report for warm-vs-cold byte comparison: wall
// time and the node count are zeroed, because a warm-started search
// legitimately expands fewer nodes while certifying the same result.
func warmWireBytes(t *testing.T, rep *Report) []byte {
	t.Helper()
	w := rep.Wire()
	w.WallMS = 0
	w.Nodes = 0
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// usesFrankWolfe reports whether the report came through the Frank-Wolfe
// relaxation, whose warm start is a genuinely different (still certified)
// iteration trajectory rather than a pruning hint.
func usesFrankWolfe(rep *Report) bool {
	return rep.Solver == "frankwolfe" || strings.Contains(rep.Routing, "frankwolfe")
}

// TestWarmStartedReportsMatchCold is the system-wide warm-start property
// over the scenario corpus: for every registered solver, re-solving with
// the cold solve's own flow as the incumbent must yield a byte-identical
// report (modulo wall time and node counts).  Frank-Wolfe-routed reports
// are the documented exception — seeding moves the iterate sequence, so
// the warm result is a different certified point, not the same bytes —
// and are instead held to determinism (two warm runs identical) and to
// completing whenever the cold run completed.
func TestWarmStartedReportsMatchCold(t *testing.T) {
	for _, spec := range scenario.DefaultCorpus() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			inst, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			opts := NewOptions()
			if spec.Budget != nil {
				opts.Budget = *spec.Budget
			} else {
				opts.Target = *spec.Target
			}
			// Parallelism 1 and a node cap keep every corpus entry fast and
			// schedule-independent (same pinning as the memoization test).
			opts.Parallelism = 1
			opts.MaxNodes = 1024

			c := core.Compile(inst)
			denseOK := c.ExpandedArcs <= autoDenseLPArcs
			for _, s := range List() {
				if strings.HasPrefix(s.Name(), "test-") {
					continue
				}
				if ValidateOptions(s, opts) != nil {
					continue
				}
				if s.Capabilities().Approximate && !s.Capabilities().Parallel && !denseOK && s.Name() != "frankwolfe" {
					continue // dense simplex would not fit this instance
				}
				cold, err := SolveCompiledOptions(context.Background(), s.Name(), c, opts)
				if err != nil {
					if errors.Is(err, ErrNotSeriesParallel) {
						continue
					}
					t.Fatalf("%s cold: %v", s.Name(), err)
				}
				if len(cold.Sol.Flow) == 0 {
					continue // nothing to seed with
				}
				wopts := opts
				wopts.Incumbent = cold.Sol.Flow
				warm, err := SolveCompiledOptions(context.Background(), s.Name(), c, wopts)
				if err != nil {
					t.Fatalf("%s warm: %v", s.Name(), err)
				}
				if usesFrankWolfe(cold) || usesFrankWolfe(warm) {
					if cold.Complete && !warm.Complete {
						t.Fatalf("%s: warm start lost completeness", s.Name())
					}
					warm2, err := SolveCompiledOptions(context.Background(), s.Name(), c, wopts)
					if err != nil {
						t.Fatal(err)
					}
					if a, b := warmWireBytes(t, warm), warmWireBytes(t, warm2); string(a) != string(b) {
						t.Fatalf("%s: identical warm runs differ:\n%s\n%s", s.Name(), a, b)
					}
					continue
				}
				if a, b := warmWireBytes(t, cold), warmWireBytes(t, warm); string(a) != string(b) {
					t.Fatalf("%s: warm-started report differs from cold:\n%s\n%s", s.Name(), a, b)
				}
			}
		})
	}
}

// benchWarmInstance builds a layered DAG of roughly 300 arcs, almost all
// constant-duration, with a handful of 2-tuple step arcs so the exact
// search has real (but bounded) branching.  delta perturbs the first k
// constant arcs by +1, producing a same-topology k-arc neighbor.
func benchWarmInstance(k int) *core.Instance {
	g := dag.New()
	const width, layers = 8, 5
	s := g.AddNode("s")
	prev := []int{s}
	n := 0
	for l := 0; l < layers; l++ {
		var cur []int
		for w := 0; w < width; w++ {
			cur = append(cur, g.AddNode(fmt.Sprintf("n%d", n)))
			n++
		}
		for _, u := range prev {
			for _, v := range cur {
				g.AddEdge(u, v)
			}
		}
		prev = cur
	}
	snk := g.AddNode("t")
	for _, u := range prev {
		g.AddEdge(u, snk)
	}
	m := g.NumEdges()
	fns := make([]duration.Func, m)
	perturbed := 0
	for e := range fns {
		base := int64(6 + e%7)
		if perturbed < k {
			base++
			perturbed++
		}
		if e%17 == 0 {
			fns[e] = duration.MustStep(
				duration.Tuple{R: 0, T: base + 12},
				duration.Tuple{R: 1 + int64(e%3), T: base + 6},
			)
		} else {
			fns[e] = duration.Constant(base)
		}
	}
	return core.MustInstance(g, fns)
}

// BenchmarkWarmVsColdResolve measures re-solving a k-arc neighbor of an
// already-solved instance, cold versus warm-started from the stored
// solution, for k in {1, 16, 256}.  The acceptance bar for the warm-start
// subsystem is warm <= 50% of cold at k=1; the spread across k shows the
// benefit degrading as the neighbor drifts.
func BenchmarkWarmVsColdResolve(b *testing.B) {
	const budget = 8
	base := core.Compile(benchWarmInstance(0))
	opts := NewOptions()
	opts.Budget = budget
	opts.Parallelism = 1
	seedRep, err := SolveCompiledOptions(context.Background(), "exact", base, opts)
	if err != nil || !seedRep.Complete {
		b.Fatalf("base solve failed: %v (complete=%v)", err, seedRep != nil && seedRep.Complete)
	}
	seed := seedRep.Sol.Flow

	for _, k := range []int{1, 16, 256} {
		nc := core.Compile(benchWarmInstance(k))
		ref, err := SolveCompiledOptions(context.Background(), "exact", nc, opts)
		if err != nil || !ref.Complete {
			b.Fatalf("neighbor k=%d solve failed: %v", k, err)
		}
		for _, mode := range []string{"cold", "warm"} {
			o := opts
			if mode == "warm" {
				o.Incumbent = seed
			}
			b.Run(fmt.Sprintf("delta%d/%s", k, mode), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					rep, err := SolveCompiledOptions(context.Background(), "exact", nc, o)
					if err != nil {
						b.Fatal(err)
					}
					if rep.Sol.Makespan != ref.Sol.Makespan {
						b.Fatalf("%s k=%d: makespan %d != certified %d", mode, k, rep.Sol.Makespan, ref.Sol.Makespan)
					}
				}
			})
		}
	}
}

// Package exact solves the discrete resource-time tradeoff problem with
// resource reuse over paths *exactly* on small instances.
//
// The paper proves both optimization directions strongly NP-hard
// (Theorems 4.1-4.4), so no polynomial algorithm is expected; this package
// provides the optimum oracle that the reproduction needs in two places:
// measuring the true approximation ratios of Section 3's algorithms on
// random instances (Table 1), and machine-verifying the hardness gadgets of
// Section 4 in both directions.
//
// The search works on the space of tuple assignments rather than flows.  A
// tuple assignment picks, for every arc, one breakpoint of its duration
// function; the assignment is realizable iff some integral flow meets every
// picked breakpoint's resource requirement, and the cheapest such flow is a
// minimum flow with lower bounds (computed exactly by internal/flow).  Any
// flow induces the assignment of the breakpoints it reaches, so searching
// assignments loses nothing.  The branching rule is path repair: if the
// current critical path is too long, some arc on it must be raised to a
// higher breakpoint; children raise each candidate arc in turn, freezing
// the arcs tried before it (the classical hitting-set enumeration, which
// visits every minimal repair exactly once).
//
// # Parallel search
//
// The branch-and-bound runs on a work-stealing worker pool
// (Options.Parallelism; the default is GOMAXPROCS).  Every worker owns a
// Chase-Lev deque of frontier tasks: the root's children are dealt
// round-robin to seed the deques, after which parallelism spreads by
// DEMAND-DRIVEN SHEDDING — a worker counts as hungry while it hunts for
// work, and any worker expanding a node with several branching candidates
// sheds the trailing siblings into its own deque the moment somebody is
// hungry.  Owners pop their own deque LIFO (diving back into the subtree
// they just shed, caches warm); hungry workers steal FIFO from the top,
// taking the oldest — shallowest, biggest — subtrees.  A search with no
// hungry workers sheds nothing and runs each subtree by pure recursion,
// so the steady state does the same work as the sequential search.
// Termination is a single atomic count of live tasks (queued plus
// executing): shedding increments it before the push, finishing a task's
// subtree decrements it, and a hungry worker exits when it reads zero.
//
// Workers share one incumbent: the best objective value lives in an
// atomic integer that pruning reads lock-free on every node, while
// improvements take a mutex to install the value and its witness flow
// together.  Node accounting, the node budget, early-exit ("done") and
// cancellation flags are all atomics, so the search is safe under the
// race detector and the returned *optimum value* is deterministic across
// worker counts (the witness flow may differ when several flows are
// optimal; stealing reorders only WHEN subtrees run, never what they
// contain).  Each worker owns a flow.MinFlowSolver, so the per-node
// min-flow reuses one transformed network instead of rebuilding it; the
// workers themselves, their task buffers, and (absent Options.FlowPool)
// the flow networks are recycled through package-level pools, so a solve
// allocates no per-worker state in steady state no matter the
// parallelism.
package exact

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/duration"
	"repro/internal/flow"
)

// Options tunes the search.
type Options struct {
	// MaxNodes bounds the number of search nodes expanded; 0 means the
	// default of 1<<20.  When exceeded the result carries Complete=false.
	MaxNodes int
	// Parallelism is the number of branch-and-bound workers: 0 uses
	// GOMAXPROCS, 1 forces the sequential search, larger values size the
	// worker pool.  The optimum value returned by a complete search does
	// not depend on it.
	Parallelism int
	// Incumbent optionally seeds the search with a known-feasible flow
	// (typically a stored neighbor's solution): if it is a conserved flow
	// within the budget (and, in target mode, meeting the target), its
	// objective value becomes the starting incumbent and prunes the search
	// from node one.  An invalid or infeasible seed is silently ignored —
	// it is a hint, never an assumption.  Seeding cannot change the
	// optimum a complete search returns: the incumbent is only ever
	// REPLACED by strictly better solutions, and every prune it enables
	// discards only subtrees that cannot beat it.
	Incumbent []int64
	// FlowPool optionally supplies the min-flow networks the search
	// workers use, so topology-matched networks are reused across solves
	// instead of rebuilt (see flow.SolverPool).  Reuse never changes any
	// result; nil draws from a small package-level pool, so repeated
	// solves reuse networks even without explicit pooling.
	FlowPool *flow.SolverPool
	// Progress, when non-nil, receives the search's anytime trajectory:
	// one event when the global lower bound (the floor) is established and
	// one per incumbent improvement, each carrying the incumbent objective
	// (-1 before the first solution), the floor (0 before it exists) and
	// the nodes expanded so far.  Improvements are monotone and finite, so
	// the callback never rides the per-node hot path; it is invoked under
	// the incumbent mutex from whichever worker improved, so it must be
	// quick, non-blocking, and safe for concurrent memory access.  Purely
	// observational: it never steers the search.
	Progress func(incumbent, bound float64, nodes int64)
}

// Stats reports how the search went.
type Stats struct {
	Nodes    int  // search nodes expanded
	Complete bool // false if MaxNodes was exhausted or the context fired (result may be suboptimal)
	// Interrupted carries the context error when the search was stopped
	// by cancellation or a deadline; the best solution found so far (if
	// any) is still returned, so callers get a usable partial result.
	Interrupted error
}

// ErrNoSolution is returned by MinResource when no assignment meets the
// makespan target even with unlimited resources.
var ErrNoSolution = errors.New("exact: no solution meets the target")

// ErrTruncated is returned when the search ran out of its node budget
// before finding any solution: unlike ErrNoSolution it asserts nothing
// about feasibility, only that the answer is unknown at this MaxNodes.
var ErrTruncated = errors.New("exact: node budget exhausted before any solution was found (feasibility unknown)")

const defaultMaxNodes = 1 << 20

// shared is the state all search workers see.  Immutable fields are set
// before any worker starts; mutable fields are atomics, or are guarded by
// mu (the incumbent witness and the first-interruption error).
type shared struct {
	c      *core.Compiled
	inst   *core.Instance
	ctx    context.Context
	tuples [][]duration.Tuple
	topo   []int // topological order of inst.G, from the compiled form

	budget int64 // resource cap (-1: none)
	target int64 // makespan cap (-1: none)

	// minimizeResource selects the objective: resource value (true) or
	// makespan (false).
	minimizeResource bool
	stopAt           int64 // early-exit threshold for decision runs (-1: none)

	// floor is a global lower bound on the objective: in makespan mode the
	// makespan when every arc runs at its budget-feasible fastest duration
	// (set up front), in resource mode the min-flow value of the root
	// assignment (set by the root visit, before workers exist).  An
	// incumbent at the floor is provably optimal, so the search stops.
	floor atomic.Int64

	// budgetMin[e] is the fastest duration arc e can realize under any
	// flow of value at most budget (no arc can carry more than the whole
	// budget on a DAG); set in makespan mode only.  It feeds the subtree
	// prune in visit.
	budgetMin []int64

	maxNodes int64
	nodes    atomic.Int64
	stopped  atomic.Bool // node budget exhausted or context fired
	done     atomic.Bool // incumbent provably optimal (or stopAt reached)

	mu          sync.Mutex
	bestVal     atomic.Int64 // math.MaxInt64 until a solution is found
	found       atomic.Bool
	bestFlow    []int64 // guarded by mu
	interrupted error   // guarded by mu

	// pool supplies worker min-flow networks: Options.FlowPool when set,
	// otherwise the package-level defaultFlowPool.
	pool *flow.SolverPool

	// progress mirrors Options.Progress; nil when nobody is listening.
	progress func(incumbent, bound float64, nodes int64)

	// Work-stealing scheduler state (parallel runs only).  dqs[i] is
	// worker i's Chase-Lev deque; pending counts live tasks (queued plus
	// executing) and reaching zero terminates hungry workers; hungry
	// counts workers currently hunting for work — the signal that makes
	// busy workers shed subtrees.
	dqs     []deque
	pending atomic.Int64
	hungry  atomic.Int32
}

// defaultFlowPool backs searches whose Options carry no FlowPool: the
// branch-and-bound workers park their Dinic networks here between solves,
// so back-to-back solves of topology-matched instances (benchmarks, the
// approximation-ratio harness) stop rebuilding networks per worker per
// solve.  Pooling never changes results (see flow.SolverPool).
var defaultFlowPool = flow.NewSolverPool(0)

func newShared(ctx context.Context, c *core.Compiled, opts *Options) *shared {
	if ctx == nil {
		ctx = context.Background()
	}
	// The topological order and the per-arc breakpoint tables come straight
	// off the compiled form: they were derived once at Compile time instead
	// of once per solve.
	sh := &shared{
		c:        c,
		inst:     c.Inst,
		ctx:      ctx,
		topo:     c.Topo,
		tuples:   c.Tuples,
		budget:   -1,
		target:   -1,
		stopAt:   -1,
		maxNodes: defaultMaxNodes,
	}
	sh.floor.Store(-1)
	sh.bestVal.Store(math.MaxInt64)
	if opts != nil && opts.MaxNodes > 0 {
		sh.maxNodes = int64(opts.MaxNodes)
	}
	if opts != nil {
		sh.pool = opts.FlowPool
		sh.progress = opts.Progress
	}
	if sh.pool == nil {
		sh.pool = defaultFlowPool
	}
	return sh
}

// emitProgress delivers the current trajectory point to Options.Progress.
// Callers invoke it only on improvement events (a new floor, a better
// incumbent), never per node, so its cost is bounded by the number of
// improvements — at most the objective's value range — not by tree size.
func (sh *shared) emitProgress() {
	if sh.progress == nil {
		return
	}
	incumbent := float64(-1)
	if sh.found.Load() {
		incumbent = float64(sh.bestVal.Load())
	}
	var bound float64
	if f := sh.floor.Load(); f >= 0 {
		bound = float64(f)
	}
	sh.progress(incumbent, bound, sh.nodes.Load())
}

// seedIncumbent installs Options.Incumbent as the starting incumbent when
// it is a valid flow feasible for this solve's constraints.  Callers run
// it after the mode fields (budget, target, floor) are set and before the
// search starts.  Soundness: record only ever replaces the incumbent with
// strictly better solutions, so a seed can change which optimal witness a
// search reports and how many nodes it expands, never the optimal VALUE —
// and a seed that already meets the floor (or a decision run's stopAt)
// legitimately ends the search before a single node is expanded.
func (sh *shared) seedIncumbent(opts *Options) {
	if opts == nil || len(opts.Incumbent) == 0 {
		return
	}
	f := opts.Incumbent
	value, err := flow.Conserved(sh.inst.G, f, sh.inst.Source, sh.inst.Sink)
	if err != nil {
		return // not a flow on this instance: ignore the hint
	}
	if sh.budget >= 0 && value > sh.budget {
		return
	}
	durs := make([]int64, len(f))
	for e, fn := range sh.inst.Fns {
		durs[e] = fn.Eval(f[e])
	}
	makespan := sh.c.MakespanUnder(durs)
	if sh.minimizeResource {
		if sh.target >= 0 && makespan > sh.target {
			return
		}
		sh.record(value, f)
	} else {
		sh.record(makespan, f)
	}
}

// record offers a feasible objective value and its witness flow as the new
// incumbent.  It also raises the done flag when the value reaches the
// decision threshold or the global floor, at which point no descendant
// anywhere can do better.
func (sh *shared) record(value int64, edgeFlow []int64) {
	// Lock-free fast path: most visited nodes do not improve the
	// incumbent, and a non-improving value can never newly reach the
	// stopAt/floor thresholds (the smaller incumbent reached them first),
	// so skipping the mutex here loses nothing.  bestVal only decreases,
	// making a stale read conservative: it can only send us into the
	// locked path, which re-checks.
	if sh.found.Load() && value >= sh.bestVal.Load() {
		return
	}
	sh.mu.Lock()
	if !sh.found.Load() || value < sh.bestVal.Load() {
		sh.bestFlow = append(sh.bestFlow[:0], edgeFlow...)
		sh.bestVal.Store(value)
		sh.found.Store(true)
		// Emit inside the improvement branch, still under mu: delivered
		// incumbents are strictly decreasing even when several workers
		// improve concurrently.
		sh.emitProgress()
	}
	sh.mu.Unlock()
	if (sh.stopAt >= 0 && value <= sh.stopAt) || (sh.floor.Load() >= 0 && value <= sh.floor.Load()) {
		sh.done.Store(true)
	}
}

func (sh *shared) setInterrupted(err error) {
	sh.mu.Lock()
	if sh.interrupted == nil {
		sh.interrupted = err
	}
	sh.mu.Unlock()
	sh.stopped.Store(true)
}

func (sh *shared) stats() Stats {
	sh.mu.Lock()
	interrupted := sh.interrupted
	sh.mu.Unlock()
	return Stats{
		Nodes:       int(sh.nodes.Load()),
		Complete:    !sh.stopped.Load(),
		Interrupted: interrupted,
	}
}

// worker is one search thread's private state: the current assignment, the
// hitting-set freeze marks, a reusable min-flow network, and scratch
// buffers so the hot path performs no allocation.  Workers are recycled
// through workerPool across solves, so the buffers only ever allocate the
// first time a size is seen.
type worker struct {
	sh     *shared
	level  []int
	frozen []bool
	mf     *flow.MinFlowSolver

	// dq is this worker's own work-stealing deque (nil in the sequential
	// search); self is its index into sh.dqs, where steals start.
	dq   *deque
	self int

	lb    []int64 // per-arc lower bounds of the current assignment
	durs  []int64 // per-arc assigned durations
	rdurs []int64 // per-arc realized durations under the min-flow
	et    []int64 // per-node event times
	path  []int   // critical-path walk buffer
	cand  []int   // branching candidates buffer

	// candStack pins each recursion level's candidates (w.cand is
	// overwritten by deeper visits); one backing array serves the whole
	// search, so expansion stays allocation-free once it has grown.
	candStack []int
}

// workerPool recycles worker scratch state across solves (the min-flow
// network is pooled separately through shared.pool): with it, a solve's
// per-worker setup is a handful of slice header writes instead of seven
// allocations per worker, which is what kept the parallel benchmark's
// allocs/op from scaling with worker count.
var workerPool sync.Pool

// intSlice returns s resized to n and zeroed, reusing its backing array
// when it is big enough.
func intSlice(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func int64Slice(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func boolSlice(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

func newWorker(sh *shared) *worker {
	m := sh.inst.G.NumEdges()
	n := sh.inst.G.NumNodes()
	w, _ := workerPool.Get().(*worker)
	if w == nil {
		w = &worker{}
	}
	w.sh = sh
	w.mf = sh.pool.Get(sh.inst.G, sh.inst.Source, sh.inst.Sink)
	w.dq = nil
	w.self = 0
	w.level = intSlice(w.level, m)
	w.frozen = boolSlice(w.frozen, m)
	w.lb = int64Slice(w.lb, m)
	w.durs = int64Slice(w.durs, m)
	w.rdurs = int64Slice(w.rdurs, m)
	w.et = int64Slice(w.et, n)
	w.path = w.path[:0]
	w.cand = w.cand[:0]
	w.candStack = w.candStack[:0]
	return w
}

// release parks the worker's network in the flow pool and the scratch
// state in workerPool for the next solve.  The worker must not be used
// afterwards.
func (w *worker) release() {
	w.sh.pool.Put(w.mf)
	w.mf = nil
	w.sh = nil
	w.dq = nil
	workerPool.Put(w)
}

// makespan fills w.et with longest-path event times under the durations d
// and returns the sink's time (the makespan).  It is the allocation-free
// twin of dag.Graph.Makespan, sweeping the compiled CSR adjacency in the
// shared topological order.
//
//rt:hotpath — runs up to three times per search node.
func (w *worker) makespan(d []int64) int64 {
	c := w.sh.c
	for i := range w.et {
		w.et[i] = 0
	}
	for _, v := range w.sh.topo {
		tv := w.et[v]
		for i := c.OutStart[v]; i < c.OutStart[v+1]; i++ {
			e := c.OutArcs[i]
			if cand := tv + d[e]; cand > w.et[c.ArcTo[e]] {
				w.et[c.ArcTo[e]] = cand
			}
		}
	}
	return w.et[w.sh.inst.Sink]
}

// candidates walks one critical path back from the sink (w.et must hold
// the event times of d) and collects, in source-to-sink order, the arcs on
// it that are neither frozen nor at their last breakpoint.
//
//rt:hotpath — per-node; appends reuse w.path and w.cand.
func (w *worker) candidates(d []int64) []int {
	c := w.sh.c
	w.path = w.path[:0]
	v := w.sh.inst.Sink
	for w.et[v] != 0 {
		pick := -1
		for i := c.InStart[v]; i < c.InStart[v+1]; i++ {
			e := int(c.InArcs[i])
			if w.et[c.ArcFrom[e]]+d[e] == w.et[v] {
				pick = e
				break
			}
		}
		if pick == -1 {
			panic("exact: inconsistent event times")
		}
		w.path = append(w.path, pick)
		v = int(c.ArcFrom[pick])
	}
	w.cand = w.cand[:0]
	for i := len(w.path) - 1; i >= 0; i-- {
		e := w.path[i]
		if !w.frozen[e] && w.level[e]+1 < len(w.sh.tuples[e]) {
			w.cand = append(w.cand, e)
		}
	}
	return w.cand
}

// visit expands the current node: it accounts the node, computes the
// assignment's min-flow, applies the sound prunes, records any solution,
// and returns the path-repair branching candidates.  ok=false means the
// subtree is closed (pruned, solved, or the search is stopping).  The
// returned slice aliases w.cand and is invalidated by the next visit.
//
//rt:hotpath — the per-node body of the branch-and-bound.
func (w *worker) visit() (candidates []int, ok bool) {
	sh := w.sh
	if sh.done.Load() || sh.stopped.Load() {
		return nil, false
	}
	if sh.nodes.Add(1) > sh.maxNodes {
		sh.stopped.Store(true)
		return nil, false
	}
	// Cancellation check: one ctx.Err() per node is cheap next to the
	// min-flow each node computes, and keeps interruption latency at a
	// single node expansion.
	if err := sh.ctx.Err(); err != nil {
		sh.setInterrupted(err)
		return nil, false
	}

	for e, l := range w.level {
		w.lb[e] = sh.tuples[e][l].R
	}
	res, err := w.mf.Solve(w.lb)
	if err != nil {
		// Lower bounds on a validated instance are always feasible; treat
		// a failure as a pruned branch but record nothing.
		return nil, false
	}
	if sh.minimizeResource {
		// The root assignment's min-flow value bounds every node's from
		// below (lower bounds only grow down the tree), so it is the
		// resource floor.  The root is visited first and alone, before the
		// pool starts, which makes this CAS effectively a write-once — and
		// the one-time bound-established progress event rides its success.
		if sh.floor.CompareAndSwap(-1, res.Value) {
			sh.emitProgress()
		}
	}
	if sh.budget >= 0 && res.Value > sh.budget {
		return nil, false
	}
	if sh.minimizeResource && res.Value >= sh.bestVal.Load() {
		return nil, false // resource usage only grows deeper in this subtree
	}

	for e, l := range w.level {
		w.durs[e] = sh.tuples[e][l].T
	}

	if sh.minimizeResource {
		if w.makespan(w.durs) <= sh.target {
			sh.record(res.Value, res.EdgeFlow)
			return nil, false // deeper assignments only cost more resource
		}
	} else {
		// Record the realized solution: the min-flow may exceed some lower
		// bounds, so evaluate the true durations under it.
		for e, fn := range sh.inst.Fns {
			w.rdurs[e] = fn.Eval(res.EdgeFlow[e])
		}
		sh.record(w.makespan(w.rdurs), res.EdgeFlow)
		if sh.done.Load() {
			return nil, false
		}
		// Subtree prune (audited): frozen arcs keep their assigned
		// duration, all others drop to their budget-feasible minimum
		// Eval(budget); prune when even that optimistic makespan cannot
		// beat the incumbent.
		//
		// This bound does NOT lower-bound the realized makespans inside
		// this subtree: a frozen arc's realized duration falls below its
		// assigned one whenever the min-flow overshoots its requirement,
		// which resource reuse over paths makes common.  The prune is
		// nevertheless sound for the search as a whole, by a coverage
		// argument: any realized flow f beating the bound must overshoot
		// some frozen arc past its next breakpoint, so the assignment
		// induced by f raises a frozen arc and lives in a sibling branch
		// of the hitting-set enumeration, not here.  Concretely, let f* be
		// an optimal flow and A* its induced assignment; on the unique
		// branch path toward A*, frozen arcs sit exactly at A*'s levels
		// and every arc's bound duration is at most its duration under A*
		// (frozen: equal; others: Eval(budget) <= t_e(f*_e) since
		// f*_e <= budget).  The bound there is therefore at most OPT, and
		// the prune can only fire once the incumbent already equals OPT -
		// the optimum is never lost.  The old bound dropped non-frozen
		// arcs to their unbudgeted minima, which is the same argument with
		// a needlessly weaker bound; the budget-feasible minima prune
		// strictly more.  TestMinMakespanMatchesAssignmentEnumeration
		// locks this against exhaustive assignment enumeration.
		for e := range w.rdurs {
			if w.frozen[e] {
				w.rdurs[e] = sh.tuples[e][w.level[e]].T
			} else {
				w.rdurs[e] = sh.budgetMin[e]
			}
		}
		if w.makespan(w.rdurs) >= sh.bestVal.Load() {
			return nil, false // this subtree cannot beat the incumbent
		}
		w.makespan(w.durs) // refill w.et for the critical-path walk
	}

	// Path repair: raise arcs on the current critical path.
	return w.candidates(w.durs), true
}

// expand runs the hitting-set loop over the candidates, recursing into
// each child.  In a parallel search it additionally SHEDS work on demand:
// whenever some worker is hungry and more than one sibling remains, the
// trailing siblings are materialized as frontier tasks on this worker's
// own deque (whence thieves steal them from the top) and only the current
// child is recursed into directly.  Shed tasks carry their own
// level/frozen snapshots with the hitting-set freeze marks applied, so
// the enumeration still visits every minimal repair exactly once no
// matter which worker runs which sibling.
func (w *worker) expand(candidates []int) {
	base := len(w.candStack)
	w.candStack = append(w.candStack, candidates...)
	n := len(candidates)
	own := n // siblings this worker still runs itself
	for i := 0; i < own; i++ {
		if w.dq != nil && i+1 < own && w.sh.hungry.Load() > 0 {
			w.shed(base, i, own)
			own = i + 1
		}
		// Index through w.candStack rather than a saved sub-slice: deeper
		// recursion may grow (and so move) the backing array.
		e := w.candStack[base+i]
		w.level[e]++
		w.recurse()
		w.level[e]--
		if w.sh.done.Load() || w.sh.stopped.Load() {
			break
		}
		w.frozen[e] = true
	}
	// Candidates are never frozen at entry, so unfreezing all of them
	// (including any the early break skipped, and the shed ones — which
	// were frozen only inside their task snapshots) restores the entry
	// state.
	for i := 0; i < n; i++ {
		w.frozen[w.candStack[base+i]] = false
	}
	w.candStack = w.candStack[:base]
}

// shed turns the siblings after position i (up to n, exclusive) into
// frontier tasks on this worker's deque.  Sibling j's subtree raises
// candidate j with candidates 0..j-1 frozen; w.frozen already carries the
// marks for 0..i-1, so each snapshot adds the marks for i..j-1 on top.
// pending is incremented before each push so a hungry worker can never
// observe a moment where live work exists but the count reads zero.
func (w *worker) shed(base, i, n int) {
	sh := w.sh
	for j := i + 1; j < n; j++ {
		tk := getTask(len(w.level))
		copy(tk.level, w.level)
		copy(tk.frozen, w.frozen)
		for k := i; k < j; k++ {
			tk.frozen[w.candStack[base+k]] = true
		}
		tk.level[w.candStack[base+j]]++
		sh.pending.Add(1)
		w.dq.push(tk)
	}
}

func (w *worker) recurse() {
	if cand, ok := w.visit(); ok && len(cand) > 0 {
		w.expand(cand)
	}
}

// task is a frontier node: an assignment plus freeze marks whose subtree
// is still unexplored.  Tasks are recycled through taskPool — the buffers
// are copied into the executing worker's state and returned to the pool
// before the subtree runs.
type task struct {
	level  []int
	frozen []bool
}

var taskPool sync.Pool

func getTask(m int) *task {
	tk, _ := taskPool.Get().(*task)
	if tk == nil {
		tk = &task{}
	}
	if cap(tk.level) < m {
		tk.level = make([]int, m)
		tk.frozen = make([]bool, m)
	}
	tk.level = tk.level[:m]
	tk.frozen = tk.frozen[:m]
	return tk
}

// loop is one parallel worker's scheduling loop: drain the own deque
// LIFO, then go hungry and steal FIFO from the others until either work
// turns up or no live task remains anywhere.
func (w *worker) loop() {
	sh := w.sh
	for {
		if sh.done.Load() || sh.stopped.Load() {
			return
		}
		tk := w.dq.pop()
		if tk == nil {
			tk = w.stealWork()
			if tk == nil {
				return
			}
		}
		copy(w.level, tk.level)
		copy(w.frozen, tk.frozen)
		taskPool.Put(tk)
		w.recurse()
		sh.pending.Add(-1)
	}
}

// stealWork hunts the other deques for a task, counting this worker as
// hungry while it looks (the signal that makes busy workers shed).  It
// returns nil when the search is over: every live task finished, or a
// stop flag fired.  The spin is cheap — a failed round is a few atomic
// loads per victim — and bounded, because executing workers either shed
// (feeding the thief) or finish (draining pending toward zero).
func (w *worker) stealWork() *task {
	sh := w.sh
	sh.hungry.Add(1)
	defer sh.hungry.Add(-1)
	for {
		if sh.done.Load() || sh.stopped.Load() || sh.pending.Load() == 0 {
			return nil
		}
		for i := 1; i < len(sh.dqs); i++ {
			if tk := sh.dqs[(w.self+i)%len(sh.dqs)].steal(); tk != nil {
				return tk
			}
		}
		runtime.Gosched()
	}
}

// run drives the search with the given worker-pool size.
func (sh *shared) run(parallelism int) {
	par := parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if sh.done.Load() {
		return // a seeded incumbent already proved optimal
	}
	root := newWorker(sh)
	if par <= 1 {
		root.recurse()
		root.release()
		return
	}

	// Visit the root alone (it establishes the resource floor) and deal
	// its children round-robin across the workers' deques.  That is the
	// whole static split: from here on, demand-driven shedding and
	// stealing balance the tree however lopsided it turns out to be.
	cand, ok := root.visit()
	if !ok || len(cand) == 0 {
		root.release()
		return
	}
	sh.dqs = make([]deque, par)
	for i, e := range cand {
		tk := getTask(len(root.level))
		copy(tk.level, root.level)
		copy(tk.frozen, root.frozen)
		for _, prev := range cand[:i] {
			tk.frozen[prev] = true
		}
		tk.level[e]++
		sh.pending.Add(1)
		sh.dqs[i%par].push(tk)
	}
	root.release()

	var wg sync.WaitGroup
	for i := 0; i < par; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := newWorker(sh)
			w.dq = &sh.dqs[i]
			w.self = i
			w.loop()
			w.release()
		}(i)
	}
	wg.Wait()
}

func (sh *shared) solution() (core.Solution, Stats, error) {
	stats := sh.stats()
	if !sh.found.Load() {
		switch {
		case stats.Interrupted != nil:
			return core.Solution{}, stats, stats.Interrupted
		case !stats.Complete:
			return core.Solution{}, stats, ErrTruncated
		}
		return core.Solution{}, stats, ErrNoSolution
	}
	sol, err := sh.inst.NewSolution(sh.bestFlow)
	if err != nil {
		return core.Solution{}, stats, fmt.Errorf("exact: internal solution invalid: %w", err)
	}
	return sol, stats, nil
}

// BudgetedMakespanLowerBound returns the makespan when every arc runs at
// the fastest duration any flow of value at most budget can give it.  On a
// DAG every unit of flow follows a source-to-sink path, so no arc can
// carry more than the whole budget; the bound is therefore sound for every
// feasible flow, and tighter than Instance.MakespanLowerBound whenever the
// budget stops some arc short of its last breakpoint.
func BudgetedMakespanLowerBound(inst *core.Instance, budget int64) int64 {
	d := make([]int64, inst.G.NumEdges())
	for e, fn := range inst.Fns {
		d[e] = fn.Eval(budget)
	}
	m, err := inst.G.Makespan(d)
	if err != nil {
		panic(err) // instance was validated
	}
	return m
}

// BudgetedMakespanLowerBoundCompiled is BudgetedMakespanLowerBound on an
// already-compiled instance: the longest-path sweep reuses the compiled
// topological order and CSR adjacency instead of re-deriving them.
func BudgetedMakespanLowerBoundCompiled(c *core.Compiled, budget int64) int64 {
	d := make([]int64, len(c.MinDur))
	for e, fn := range c.Inst.Fns {
		d[e] = fn.Eval(budget)
	}
	return c.MakespanUnder(d)
}

// ResourceLowerBound returns a lower bound on the resource usage of every
// flow whose makespan is at most target.  For each arc e, the longest
// source-to-sink path through e with every *other* arc at its fastest
// duration must still fit in the target, which caps e's duration and hence
// floors its flow at the cheapest breakpoint meeting that cap; the minimum
// flow satisfying all those per-arc floors bounds OPT from below.  With a
// generous target every floor is the first breakpoint (R = 0) and the
// bound degenerates to the trivial min-flow at all-minimum levels.
func ResourceLowerBound(inst *core.Instance, target int64) int64 {
	g := inst.G
	m := g.NumEdges()
	minD := make([]int64, m)
	for e, fn := range inst.Fns {
		minD[e] = duration.MinTime(fn)
	}
	tf, err := g.EventTimes(minD)
	if err != nil {
		panic(err) // instance was validated
	}
	tb, err := g.ReverseEventTimes(minD)
	if err != nil {
		panic(err)
	}
	lower := make([]int64, m)
	for e := 0; e < m; e++ {
		ed := g.Edge(e)
		slack := target - tf[ed.From] - tb[ed.To]
		tuples := inst.Fns[e].Tuples()
		// The tuples are sorted by strictly decreasing T, so the first one
		// fitting the slack has the minimal requirement.
		r := tuples[len(tuples)-1].R // unreachable target: fastest level (still sound)
		for _, tp := range tuples {
			if tp.T <= slack {
				r = tp.R
				break
			}
		}
		lower[e] = r
	}
	res, err := flow.MinFlow(g, lower, inst.Source, inst.Sink)
	if err != nil {
		return 0 // malformed bounds cannot happen on a validated instance
	}
	return res.Value
}

// MinMakespan finds an optimal flow of value at most budget minimizing the
// makespan.
func MinMakespan(inst *core.Instance, budget int64, opts *Options) (core.Solution, Stats, error) {
	return MinMakespanCtx(context.Background(), inst, budget, opts)
}

// MinMakespanCtx is MinMakespan with cooperative cancellation: when ctx is
// canceled or its deadline fires, the search stops after the current node
// and the best solution found so far is returned with
// Stats{Complete: false, Interrupted: ctx.Err()}.  If no solution was
// found yet, the context error itself is returned.
func MinMakespanCtx(ctx context.Context, inst *core.Instance, budget int64, opts *Options) (core.Solution, Stats, error) {
	if budget < 0 {
		return core.Solution{}, Stats{}, fmt.Errorf("exact: negative budget %d", budget)
	}
	return MinMakespanCompiled(ctx, core.Compile(inst), budget, opts)
}

// MinMakespanCompiled is MinMakespanCtx on an already-compiled instance:
// callers solving the same instance repeatedly (the solver registry, the
// service) compile once and skip the per-solve preprocessing.
func MinMakespanCompiled(ctx context.Context, c *core.Compiled, budget int64, opts *Options) (core.Solution, Stats, error) {
	if budget < 0 {
		return core.Solution{}, Stats{}, fmt.Errorf("exact: negative budget %d", budget)
	}
	sh := newShared(ctx, c, opts)
	sh.budget = budget
	sh.minimizeResource = false
	sh.budgetMin = make([]int64, c.Inst.G.NumEdges())
	for e, fn := range c.Inst.Fns {
		sh.budgetMin[e] = fn.Eval(budget)
	}
	sh.floor.Store(c.MakespanUnder(sh.budgetMin))
	sh.emitProgress() // bound established, before any incumbent exists
	sh.seedIncumbent(opts)
	sh.run(optParallelism(opts))
	return sh.solution()
}

// MinResource finds a flow of minimum value whose makespan is at most
// target.  It returns ErrNoSolution if the target is unreachable.
func MinResource(inst *core.Instance, target int64, opts *Options) (core.Solution, Stats, error) {
	return MinResourceCtx(context.Background(), inst, target, opts)
}

// MinResourceCtx is MinResource with cooperative cancellation; see
// MinMakespanCtx for the interruption contract.
func MinResourceCtx(ctx context.Context, inst *core.Instance, target int64, opts *Options) (core.Solution, Stats, error) {
	return MinResourceCompiled(ctx, core.Compile(inst), target, opts)
}

// MinResourceCompiled is MinResourceCtx on an already-compiled instance.
func MinResourceCompiled(ctx context.Context, c *core.Compiled, target int64, opts *Options) (core.Solution, Stats, error) {
	if target < c.MinMakespan {
		return core.Solution{}, Stats{Complete: true}, ErrNoSolution
	}
	sh := newShared(ctx, c, opts)
	sh.target = target
	sh.minimizeResource = true
	sh.seedIncumbent(opts)
	sh.run(optParallelism(opts))
	return sh.solution()
}

// Feasible decides whether some flow of value at most budget achieves
// makespan at most target; when it does, a witness solution is returned.
func Feasible(inst *core.Instance, budget, target int64, opts *Options) (bool, core.Solution, Stats, error) {
	return FeasibleCtx(context.Background(), inst, budget, target, opts)
}

// FeasibleCtx is Feasible with cooperative cancellation.  Its answer is
// three-valued: (true, nil) proves feasibility with a witness, (false,
// nil) proves infeasibility, and an interrupted or node-capped run that
// proved neither returns false together with the context error or
// ErrTruncated, so callers can no longer mistake "ran out of time" for
// "proven infeasible".
func FeasibleCtx(ctx context.Context, inst *core.Instance, budget, target int64, opts *Options) (bool, core.Solution, Stats, error) {
	return FeasibleCompiled(ctx, core.Compile(inst), budget, target, opts)
}

// FeasibleCompiled is FeasibleCtx on an already-compiled instance.
func FeasibleCompiled(ctx context.Context, c *core.Compiled, budget, target int64, opts *Options) (bool, core.Solution, Stats, error) {
	if target < c.MinMakespan {
		return false, core.Solution{}, Stats{Complete: true}, nil
	}
	sh := newShared(ctx, c, opts)
	sh.target = target
	sh.budget = budget
	sh.minimizeResource = true
	sh.stopAt = budget
	sh.seedIncumbent(opts)
	sh.run(optParallelism(opts))
	stats := sh.stats()
	if sh.found.Load() && sh.bestVal.Load() <= budget {
		sol, err := sh.inst.NewSolution(sh.bestFlow)
		if err != nil {
			return false, core.Solution{}, stats, err
		}
		return true, sol, stats, nil
	}
	if stats.Interrupted != nil {
		return false, core.Solution{}, stats, stats.Interrupted
	}
	if !stats.Complete {
		return false, core.Solution{}, stats, ErrTruncated
	}
	return false, core.Solution{}, stats, nil
}

func optParallelism(opts *Options) int {
	if opts == nil {
		return 0
	}
	return opts.Parallelism
}

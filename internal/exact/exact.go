// Package exact solves the discrete resource-time tradeoff problem with
// resource reuse over paths *exactly* on small instances.
//
// The paper proves both optimization directions strongly NP-hard
// (Theorems 4.1-4.4), so no polynomial algorithm is expected; this package
// provides the optimum oracle that the reproduction needs in two places:
// measuring the true approximation ratios of Section 3's algorithms on
// random instances (Table 1), and machine-verifying the hardness gadgets of
// Section 4 in both directions.
//
// The search works on the space of tuple assignments rather than flows.  A
// tuple assignment picks, for every arc, one breakpoint of its duration
// function; the assignment is realizable iff some integral flow meets every
// picked breakpoint's resource requirement, and the cheapest such flow is a
// minimum flow with lower bounds (computed exactly by internal/flow).  Any
// flow induces the assignment of the breakpoints it reaches, so searching
// assignments loses nothing.  The branching rule is path repair: if the
// current critical path is too long, some arc on it must be raised to a
// higher breakpoint; children raise each candidate arc in turn, freezing
// the arcs tried before it (the classical hitting-set enumeration, which
// visits every minimal repair exactly once).
package exact

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/duration"
	"repro/internal/flow"
)

// Options tunes the search.
type Options struct {
	// MaxNodes bounds the number of search nodes expanded; 0 means the
	// default of 1<<20.  When exceeded the result carries Complete=false.
	MaxNodes int
}

// Stats reports how the search went.
type Stats struct {
	Nodes    int  // search nodes expanded
	Complete bool // false if MaxNodes was exhausted or the context fired (result may be suboptimal)
	// Interrupted carries the context error when the search was stopped
	// by cancellation or a deadline; the best solution found so far (if
	// any) is still returned, so callers get a usable partial result.
	Interrupted error
}

// ErrNoSolution is returned by MinResource when no assignment meets the
// makespan target even with unlimited resources.
var ErrNoSolution = errors.New("exact: no solution meets the target")

// ErrTruncated is returned when the search ran out of its node budget
// before finding any solution: unlike ErrNoSolution it asserts nothing
// about feasibility, only that the answer is unknown at this MaxNodes.
var ErrTruncated = errors.New("exact: node budget exhausted before any solution was found (feasibility unknown)")

const defaultMaxNodes = 1 << 20

type searcher struct {
	inst     *core.Instance
	ctx      context.Context
	tuples   [][]duration.Tuple
	minTimes []int64

	budget int64 // resource cap (-1: none)
	target int64 // makespan cap (-1: none)

	// minimizeResource selects the objective: resource value (true) or
	// makespan (false).
	minimizeResource bool
	stopAt           int64 // early-exit threshold for decision runs (-1: none)

	level  []int
	frozen []bool

	bestVal  int64
	bestFlow []int64
	found    bool

	nodes       int
	maxNodes    int
	stopped     bool
	done        bool
	interrupted error
}

func newSearcher(ctx context.Context, inst *core.Instance, opts *Options) *searcher {
	s := &searcher{
		inst:     inst,
		ctx:      ctx,
		level:    make([]int, inst.G.NumEdges()),
		frozen:   make([]bool, inst.G.NumEdges()),
		budget:   -1,
		target:   -1,
		stopAt:   -1,
		maxNodes: defaultMaxNodes,
	}
	if opts != nil && opts.MaxNodes > 0 {
		s.maxNodes = opts.MaxNodes
	}
	for e := 0; e < inst.G.NumEdges(); e++ {
		ts := inst.Fns[e].Tuples()
		s.tuples = append(s.tuples, ts)
		s.minTimes = append(s.minTimes, ts[len(ts)-1].T)
	}
	return s
}

func (s *searcher) lowerBounds() []int64 {
	lb := make([]int64, len(s.level))
	for e, l := range s.level {
		lb[e] = s.tuples[e][l].R
	}
	return lb
}

func (s *searcher) durations() []int64 {
	d := make([]int64, len(s.level))
	for e, l := range s.level {
		d[e] = s.tuples[e][l].T
	}
	return d
}

// optimisticMakespan is a subtree lower bound on the makespan: frozen arcs
// keep their current duration, all others drop to their best possible.
func (s *searcher) optimisticMakespan() int64 {
	d := make([]int64, len(s.level))
	for e := range d {
		if s.frozen[e] {
			d[e] = s.tuples[e][s.level[e]].T
		} else {
			d[e] = s.minTimes[e]
		}
	}
	m, err := s.inst.G.Makespan(d)
	if err != nil {
		panic(err) // instance was validated
	}
	return m
}

func (s *searcher) recurse() {
	if s.done || s.stopped {
		return
	}
	s.nodes++
	if s.nodes > s.maxNodes {
		s.stopped = true
		return
	}
	// Cancellation check: one ctx.Err() per node is cheap next to the
	// min-flow each node computes, and keeps interruption latency at a
	// single node expansion.
	if s.ctx != nil {
		if err := s.ctx.Err(); err != nil {
			s.interrupted = err
			s.stopped = true
			return
		}
	}

	res, err := flow.MinFlow(s.inst.G, s.lowerBounds(), s.inst.Source, s.inst.Sink)
	if err != nil {
		// Lower bounds on a validated instance are always feasible; treat
		// a failure as a pruned branch but record nothing.
		return
	}
	if s.budget >= 0 && res.Value > s.budget {
		return
	}
	if s.minimizeResource && s.found && res.Value >= s.bestVal {
		return // resource usage only grows deeper in this subtree
	}

	d := s.durations()
	assignMakespan, err := s.inst.G.Makespan(d)
	if err != nil {
		panic(err)
	}

	if s.minimizeResource {
		if assignMakespan <= s.target {
			if !s.found || res.Value < s.bestVal {
				s.found = true
				s.bestVal = res.Value
				s.bestFlow = res.EdgeFlow
				if s.stopAt >= 0 && s.bestVal <= s.stopAt {
					s.done = true
				}
			}
			return // deeper assignments only cost more resource
		}
	} else {
		// Record the realized solution: the min-flow may exceed some lower
		// bounds, so evaluate the true durations under it.
		realized, err := s.inst.Makespan(res.EdgeFlow)
		if err != nil {
			panic(err)
		}
		if !s.found || realized < s.bestVal {
			s.found = true
			s.bestVal = realized
			s.bestFlow = res.EdgeFlow
			if s.stopAt >= 0 && s.bestVal <= s.stopAt {
				s.done = true
				return
			}
		}
		if s.optimisticMakespan() >= s.bestVal {
			return // this subtree cannot beat the incumbent
		}
	}

	// Path repair: raise arcs on the current critical path.
	path, _, err := s.inst.G.CriticalPath(d)
	if err != nil {
		panic(err)
	}
	var candidates []int
	for _, e := range path {
		if !s.frozen[e] && s.level[e]+1 < len(s.tuples[e]) {
			candidates = append(candidates, e)
		}
	}
	var thawed []int
	for _, e := range candidates {
		s.level[e]++
		s.recurse()
		s.level[e]--
		if s.done || s.stopped {
			break
		}
		if !s.frozen[e] {
			s.frozen[e] = true
			thawed = append(thawed, e)
		}
	}
	for _, e := range thawed {
		s.frozen[e] = false
	}
}

func (s *searcher) solution() (core.Solution, Stats, error) {
	stats := Stats{Nodes: s.nodes, Complete: !s.stopped, Interrupted: s.interrupted}
	if !s.found {
		switch {
		case s.interrupted != nil:
			return core.Solution{}, stats, s.interrupted
		case s.stopped:
			return core.Solution{}, stats, ErrTruncated
		}
		return core.Solution{}, stats, ErrNoSolution
	}
	sol, err := s.inst.NewSolution(s.bestFlow)
	if err != nil {
		return core.Solution{}, stats, fmt.Errorf("exact: internal solution invalid: %w", err)
	}
	return sol, stats, nil
}

// MinMakespan finds an optimal flow of value at most budget minimizing the
// makespan.
func MinMakespan(inst *core.Instance, budget int64, opts *Options) (core.Solution, Stats, error) {
	return MinMakespanCtx(context.Background(), inst, budget, opts)
}

// MinMakespanCtx is MinMakespan with cooperative cancellation: when ctx is
// canceled or its deadline fires, the search stops after the current node
// and the best solution found so far is returned with
// Stats{Complete: false, Interrupted: ctx.Err()}.  If no solution was
// found yet, the context error itself is returned.
func MinMakespanCtx(ctx context.Context, inst *core.Instance, budget int64, opts *Options) (core.Solution, Stats, error) {
	if budget < 0 {
		return core.Solution{}, Stats{}, fmt.Errorf("exact: negative budget %d", budget)
	}
	s := newSearcher(ctx, inst, opts)
	s.budget = budget
	s.minimizeResource = false
	s.recurse()
	return s.solution()
}

// MinResource finds a flow of minimum value whose makespan is at most
// target.  It returns ErrNoSolution if the target is unreachable.
func MinResource(inst *core.Instance, target int64, opts *Options) (core.Solution, Stats, error) {
	return MinResourceCtx(context.Background(), inst, target, opts)
}

// MinResourceCtx is MinResource with cooperative cancellation; see
// MinMakespanCtx for the interruption contract.
func MinResourceCtx(ctx context.Context, inst *core.Instance, target int64, opts *Options) (core.Solution, Stats, error) {
	if target < inst.MakespanLowerBound() {
		return core.Solution{}, Stats{Complete: true}, ErrNoSolution
	}
	s := newSearcher(ctx, inst, opts)
	s.target = target
	s.minimizeResource = true
	s.recurse()
	return s.solution()
}

// Feasible decides whether some flow of value at most budget achieves
// makespan at most target; when it does, a witness solution is returned.
func Feasible(inst *core.Instance, budget, target int64, opts *Options) (bool, core.Solution, Stats, error) {
	return FeasibleCtx(context.Background(), inst, budget, target, opts)
}

// FeasibleCtx is Feasible with cooperative cancellation; an interrupted
// run reports infeasible with Stats.Interrupted set, so callers must
// treat the answer as "not proven feasible" rather than "infeasible".
func FeasibleCtx(ctx context.Context, inst *core.Instance, budget, target int64, opts *Options) (bool, core.Solution, Stats, error) {
	if target < inst.MakespanLowerBound() {
		return false, core.Solution{}, Stats{Complete: true}, nil
	}
	s := newSearcher(ctx, inst, opts)
	s.target = target
	s.budget = budget
	s.minimizeResource = true
	s.stopAt = budget
	s.recurse()
	stats := Stats{Nodes: s.nodes, Complete: !s.stopped, Interrupted: s.interrupted}
	if !s.found || s.bestVal > budget {
		return false, core.Solution{}, stats, nil
	}
	sol, err := s.inst.NewSolution(s.bestFlow)
	if err != nil {
		return false, core.Solution{}, stats, err
	}
	return true, sol, stats, nil
}

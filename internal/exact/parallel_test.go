package exact

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/duration"
)

// tinyInstance builds a random instance with at most 6 arcs whose flows
// overlap heavily (chains hanging off a diamond), the shape on which the
// min-flow overshoots lower bounds - the regime where the subtree prune's
// bound stops lower-bounding realized descendants and only the coverage
// argument keeps the search exact.
func tinyInstance(rng *rand.Rand) *core.Instance {
	g := dag.New()
	s := g.AddNode("s")
	mid := g.AddNode("m")
	t := g.AddNode("t")
	var fns []duration.Func
	addJob := func(u, v int) {
		g.AddEdge(u, v)
		t0 := int64(1 + rng.Intn(9))
		tuples := []duration.Tuple{{R: 0, T: t0}}
		steps := rng.Intn(3)
		for i := 0; i < steps; i++ {
			last := tuples[len(tuples)-1]
			if last.T == 0 {
				break
			}
			tuples = append(tuples, duration.Tuple{
				R: last.R + 1 + int64(rng.Intn(2)),
				T: rng.Int63n(last.T),
			})
		}
		fn, err := duration.NewStep(tuples)
		if err != nil {
			panic(err)
		}
		fns = append(fns, fn)
	}
	// s -> m -> t spine plus up to four extra arcs in {s->m, m->t, s->t}.
	addJob(s, mid)
	addJob(mid, t)
	extra := 1 + rng.Intn(4)
	for i := 0; i < extra; i++ {
		switch rng.Intn(3) {
		case 0:
			addJob(s, mid)
		case 1:
			addJob(mid, t)
		default:
			addJob(s, t)
		}
	}
	return core.MustInstance(g, fns)
}

// TestMinMakespanMatchesAssignmentEnumeration locks the audited subtree
// prune (see the coverage argument in visit): on random <= 6-arc instances
// the branch-and-bound optimum must equal the exhaustive minimum over ALL
// tuple assignments of the realized min-flow makespan.  The oracle shares
// nothing with the searcher's branching or pruning, so any future prune
// that silently over-prunes (the bound genuinely does not lower-bound
// realized descendants; only the coverage argument saves it) fails here.
func TestMinMakespanMatchesAssignmentEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	checked := 0
	for trial := 0; trial < 400; trial++ {
		inst := tinyInstance(rng)
		budget := int64(rng.Intn(6))
		brute, ok := BruteForceAssignmentsMinMakespan(inst, budget, 1<<12)
		if !ok || brute.Makespan < 0 {
			continue
		}
		checked++
		sol, stats, err := MinMakespan(inst, budget, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !stats.Complete {
			t.Fatalf("trial %d: incomplete", trial)
		}
		if sol.Makespan != brute.Makespan {
			t.Fatalf("trial %d (budget %d): B&B makespan %d != assignment enumeration %d\ninstance: %v",
				trial, budget, sol.Makespan, brute.Makespan, inst.Fns)
		}
	}
	if checked < 200 {
		t.Fatalf("only %d trials were checked; widen the assignment cap", checked)
	}
}

// TestParallelDeterministicOptimum asserts the core tentpole contract: the
// optimum value of a complete search is identical across worker counts
// 1..8, in both objectives.
func TestParallelDeterministicOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 25; trial++ {
		inst := randomInstance(rng)
		budget := int64(rng.Intn(6))
		target := inst.MakespanLowerBound() + rng.Int63n(1+inst.ZeroFlowMakespan()-inst.MakespanLowerBound())

		wantMk, wantRes := int64(-1), int64(-1)
		for par := 1; par <= 8; par++ {
			opts := &Options{Parallelism: par}
			sol, stats, err := MinMakespan(inst, budget, opts)
			if err != nil {
				t.Fatalf("trial %d par %d: %v", trial, par, err)
			}
			if !stats.Complete {
				t.Fatalf("trial %d par %d: incomplete", trial, par)
			}
			if err := inst.ValidateFlow(sol.Flow, budget); err != nil {
				t.Fatalf("trial %d par %d: invalid flow: %v", trial, par, err)
			}
			if wantMk < 0 {
				wantMk = sol.Makespan
			} else if sol.Makespan != wantMk {
				t.Fatalf("trial %d: makespan %d at parallelism %d != %d at parallelism 1",
					trial, sol.Makespan, par, wantMk)
			}

			rsol, rstats, err := MinResource(inst, target, opts)
			if err != nil {
				t.Fatalf("trial %d par %d (target %d): %v", trial, par, target, err)
			}
			if !rstats.Complete {
				t.Fatalf("trial %d par %d: min-resource incomplete", trial, par)
			}
			if rsol.Makespan > target {
				t.Fatalf("trial %d par %d: makespan %d exceeds target %d", trial, par, rsol.Makespan, target)
			}
			if wantRes < 0 {
				wantRes = rsol.Value
			} else if rsol.Value != wantRes {
				t.Fatalf("trial %d: resource %d at parallelism %d != %d at parallelism 1",
					trial, rsol.Value, par, wantRes)
			}
		}
	}
}

// TestParallelFeasibleAgrees pins the decision variant across worker
// counts.
func TestParallelFeasibleAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 20; trial++ {
		inst := randomInstance(rng)
		budget := int64(rng.Intn(5))
		target := inst.MakespanLowerBound() + rng.Int63n(1+inst.ZeroFlowMakespan()-inst.MakespanLowerBound())
		var want bool
		for par := 1; par <= 4; par++ {
			ok, sol, _, err := Feasible(inst, budget, target, &Options{Parallelism: par})
			if err != nil {
				t.Fatalf("trial %d par %d: %v", trial, par, err)
			}
			if ok && (sol.Value > budget || sol.Makespan > target) {
				t.Fatalf("trial %d par %d: witness (%d, %d) violates (%d, %d)",
					trial, par, sol.Value, sol.Makespan, budget, target)
			}
			if par == 1 {
				want = ok
			} else if ok != want {
				t.Fatalf("trial %d: feasible=%v at parallelism %d, %v at parallelism 1", trial, ok, par, want)
			}
		}
	}
}

// TestFeasibleInterruptedReturnsError locks the bugfix: an interrupted
// decision run must return the context error, not a silent "infeasible".
func TestFeasibleInterruptedReturnsError(t *testing.T) {
	inst := chainInstance(5, 10, 1, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ok, _, stats, err := FeasibleCtx(ctx, inst, 2, 5, nil)
	if ok {
		t.Fatal("canceled run must not claim feasibility")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v; want context.Canceled", err)
	}
	if stats.Interrupted == nil {
		t.Fatal("Stats.Interrupted must carry the context error")
	}
	// The same budget/target pair is genuinely feasible when allowed to run.
	ok, _, _, err = Feasible(inst, 2, 5, nil)
	if err != nil || !ok {
		t.Fatalf("uninterrupted run: ok=%v err=%v; want feasible", ok, err)
	}
}

// TestFeasibleTruncatedReturnsError: a node-capped run that proved nothing
// must say so instead of reporting "infeasible".
func TestFeasibleTruncatedReturnsError(t *testing.T) {
	inst := chainInstance(5, 10, 1, 2)
	ok, _, stats, err := Feasible(inst, 2, 5, &Options{MaxNodes: 1})
	if ok {
		t.Fatal("root alone cannot prove this budget/target pair feasible")
	}
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v; want ErrTruncated", err)
	}
	if stats.Complete {
		t.Fatal("truncated run must report Complete=false")
	}
}

// TestParallelInterruption checks that a deadline stops the pool promptly
// and still hands back a usable partial result.
func TestParallelInterruption(t *testing.T) {
	// A 5x5 layered k-way instance takes far longer than the deadline.
	inst := hardInstance()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	sol, stats, err := MinMakespanCtx(ctx, inst, 40, &Options{Parallelism: 4})
	elapsed := time.Since(start)
	if elapsed > 10*time.Second {
		t.Fatalf("parallel search ran %v past a 100ms deadline", elapsed)
	}
	if !errors.Is(stats.Interrupted, context.DeadlineExceeded) {
		t.Fatalf("Stats.Interrupted = %v; want context.DeadlineExceeded", stats.Interrupted)
	}
	if stats.Complete {
		t.Fatal("interrupted search must report Complete=false")
	}
	if err == nil {
		// A partial solution was found before the deadline; it must be valid.
		if verr := inst.ValidateFlow(sol.Flow, 40); verr != nil {
			t.Fatalf("partial solution invalid: %v", verr)
		}
	} else if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v; want context.DeadlineExceeded or a partial solution", err)
	}
}

// hardInstance builds a layered instance big enough that the full search
// cannot finish within test deadlines.
func hardInstance() *core.Instance {
	g := dag.New()
	prev := []int{g.AddNode("s")}
	var fns []duration.Func
	const width, layers = 5, 5
	for l := 0; l < layers; l++ {
		var cur []int
		for w := 0; w < width; w++ {
			cur = append(cur, g.AddNode("v"))
		}
		for i, u := range prev {
			for j, v := range cur {
				if l > 0 && i != j && (i+j)%2 == 0 {
					continue
				}
				g.AddEdge(u, v)
				fns = append(fns, duration.NewKWay(100+int64(7*i+j)))
			}
		}
		prev = cur
	}
	t := g.AddNode("t")
	for _, u := range prev {
		g.AddEdge(u, t)
		fns = append(fns, duration.NewKWay(90))
	}
	return core.MustInstance(g, fns)
}

// TestBudgetedMakespanLowerBound checks the budget-aware floor on the
// chain: 5 jobs of 10 dropping to 1 for 2 units reused along the path.
func TestBudgetedMakespanLowerBound(t *testing.T) {
	inst := chainInstance(5, 10, 1, 2)
	if got := BudgetedMakespanLowerBound(inst, 0); got != 50 {
		t.Fatalf("budget 0: bound = %d; want 50", got)
	}
	if got := BudgetedMakespanLowerBound(inst, 2); got != 5 {
		t.Fatalf("budget 2: bound = %d; want 5", got)
	}
	// The bound must never exceed the true optimum.
	rng := rand.New(rand.NewSource(74))
	for trial := 0; trial < 20; trial++ {
		inst := randomInstance(rng)
		for b := int64(0); b <= 4; b++ {
			sol, stats, err := MinMakespan(inst, b, nil)
			if err != nil || !stats.Complete {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if lb := BudgetedMakespanLowerBound(inst, b); lb > sol.Makespan {
				t.Fatalf("trial %d budget %d: bound %d exceeds optimum %d", trial, b, lb, sol.Makespan)
			}
		}
	}
}

// TestResourceLowerBound checks soundness (never above OPT) and usefulness
// (positive on a chain whose target forces every job to its paid level).
func TestResourceLowerBound(t *testing.T) {
	inst := chainInstance(4, 7, 2, 3)
	// Target 8 forces all four jobs to duration 2, each needing 3 units
	// reused over the path: the bound should see the full 3.
	if got := ResourceLowerBound(inst, 8); got != 3 {
		t.Fatalf("bound = %d; want 3", got)
	}
	// A generous target needs nothing.
	if got := ResourceLowerBound(inst, 28); got != 0 {
		t.Fatalf("generous target: bound = %d; want 0", got)
	}
	rng := rand.New(rand.NewSource(75))
	for trial := 0; trial < 20; trial++ {
		inst := randomInstance(rng)
		lo, hi := inst.MakespanLowerBound(), inst.ZeroFlowMakespan()
		target := lo + rng.Int63n(hi-lo+1)
		sol, stats, err := MinResource(inst, target, nil)
		if err != nil || !stats.Complete {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if lb := ResourceLowerBound(inst, target); lb > sol.Value {
			t.Fatalf("trial %d (target %d): bound %d exceeds optimum %d", trial, target, lb, sol.Value)
		}
	}
}

// TestParallelNodeBudget: the node cap must stop the pool and be reported.
func TestParallelNodeBudget(t *testing.T) {
	inst := hardInstance()
	_, stats, err := MinMakespan(inst, 40, &Options{MaxNodes: 200, Parallelism: 4})
	if stats.Complete {
		t.Fatal("want incomplete search under a 200-node cap")
	}
	// Workers may overshoot the cap by at most one node each.
	if stats.Nodes > 200+8 {
		t.Fatalf("expanded %d nodes under a 200-node cap", stats.Nodes)
	}
	if err != nil && !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v; want nil (partial solution) or ErrTruncated", err)
	}
}

func ExampleOptions_parallelism() {
	inst := chainInstance(5, 10, 1, 2)
	sol, _, err := MinMakespan(inst, 2, &Options{Parallelism: 4})
	if err != nil {
		panic(err)
	}
	fmt.Println(sol.Makespan)
	// Output: 5
}

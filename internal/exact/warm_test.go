package exact

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/duration"
	"repro/internal/flow"
)

// warmInstance builds a two-path instance with enough step arcs that the
// budget-constrained search has real work to do.
func warmInstance(t *testing.T, bump int64) *core.Instance {
	t.Helper()
	g := dag.New()
	s := g.AddNode("s")
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	snk := g.AddNode("t")
	g.AddEdge(s, a)
	g.AddEdge(a, b)
	g.AddEdge(b, snk)
	g.AddEdge(s, c)
	g.AddEdge(c, snk)
	g.AddEdge(a, c)
	step := func(t0, t1, r int64) duration.Func {
		return duration.MustStep(duration.Tuple{R: 0, T: t0}, duration.Tuple{R: r, T: t1})
	}
	fns := []duration.Func{
		step(10, 4, 2),
		step(9, 3, 2),
		step(8+bump, 2, 3),
		step(12, 5, 2),
		step(11, 6, 2),
		duration.Constant(1),
	}
	inst, err := core.NewInstance(g, fns)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestIncumbentSeedingPreservesOptimum checks the warm-start soundness
// contract in both modes: a seeded search returns the same optimal value
// as a cold one, expands no more nodes, and a warm-SELF search (seeded
// with the instance's own optimal flow) returns that very flow.
func TestIncumbentSeedingPreservesOptimum(t *testing.T) {
	inst := warmInstance(t, 0)
	c := core.Compile(inst)
	const budget = 5

	cold, coldStats, err := MinMakespanCompiled(nil, c, budget, &Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !coldStats.Complete {
		t.Fatal("cold search did not complete")
	}

	// Warm-self: seed with the cold optimum's own flow.
	warm, warmStats, err := MinMakespanCompiled(nil, c, budget,
		&Options{Parallelism: 1, Incumbent: cold.Flow})
	if err != nil {
		t.Fatal(err)
	}
	if !warmStats.Complete {
		t.Fatal("warm search did not complete")
	}
	if warm.Makespan != cold.Makespan || warm.Value != cold.Value {
		t.Fatalf("warm optimum (%d,%d) != cold (%d,%d)", warm.Makespan, warm.Value, cold.Makespan, cold.Value)
	}
	for e := range cold.Flow {
		if warm.Flow[e] != cold.Flow[e] {
			t.Fatalf("warm-self witness differs on arc %d: %d vs %d", e, warm.Flow[e], cold.Flow[e])
		}
	}
	if warmStats.Nodes > coldStats.Nodes {
		t.Fatalf("warm search expanded %d nodes, cold only %d", warmStats.Nodes, coldStats.Nodes)
	}

	// Warm-neighbor: seed the perturbed instance with the base optimum.
	ninst := warmInstance(t, 3)
	nc := core.Compile(ninst)
	ncold, ncoldStats, err := MinMakespanCompiled(nil, nc, budget, &Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	nwarm, nwarmStats, err := MinMakespanCompiled(nil, nc, budget,
		&Options{Parallelism: 1, Incumbent: cold.Flow})
	if err != nil {
		t.Fatal(err)
	}
	if nwarm.Makespan != ncold.Makespan {
		t.Fatalf("neighbor warm optimum %d != cold %d", nwarm.Makespan, ncold.Makespan)
	}
	if nwarmStats.Nodes > ncoldStats.Nodes {
		t.Fatalf("neighbor warm expanded %d nodes, cold only %d", nwarmStats.Nodes, ncoldStats.Nodes)
	}

	// Min-resource mode, warm-self.
	target := cold.Makespan
	rcold, _, err := MinResourceCompiled(nil, c, target, &Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	rwarm, _, err := MinResourceCompiled(nil, c, target,
		&Options{Parallelism: 1, Incumbent: rcold.Flow})
	if err != nil {
		t.Fatal(err)
	}
	if rwarm.Value != rcold.Value {
		t.Fatalf("min-resource warm optimum %d != cold %d", rwarm.Value, rcold.Value)
	}
	for e := range rcold.Flow {
		if rwarm.Flow[e] != rcold.Flow[e] {
			t.Fatalf("min-resource warm-self witness differs on arc %d", e)
		}
	}
}

// TestIncumbentSeedingIgnoresBadSeeds feeds every flavor of invalid hint
// and checks the search is unaffected.
func TestIncumbentSeedingIgnoresBadSeeds(t *testing.T) {
	inst := warmInstance(t, 0)
	c := core.Compile(inst)
	const budget = 5
	cold, _, err := MinMakespanCompiled(nil, c, budget, &Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	bads := map[string][]int64{
		"wrong length":   {1, 2, 3},
		"negative":       {-1, 0, 0, 0, 0, 0},
		"not conserved":  {3, 1, 1, 0, 0, 0},
		"over budget":    {4, 4, 4, 4, 4, 0},
		"nil (no seed)":  nil,
		"all zero value": {0, 0, 0, 0, 0, 0},
	}
	for name, seed := range bads {
		sol, stats, err := MinMakespanCompiled(nil, c, budget,
			&Options{Parallelism: 1, Incumbent: seed})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !stats.Complete || sol.Makespan != cold.Makespan {
			t.Fatalf("%s: got makespan %d (complete=%v), want %d", name, sol.Makespan, stats.Complete, cold.Makespan)
		}
	}
	// The zero flow IS conserved with value 0 <= budget; it seeds the
	// slowest makespan, which is sound (just useless) — covered above.

	// An infeasible-for-target seed in resource mode is ignored too.
	if _, _, err := MinResourceCompiled(nil, c, c.MinMakespan,
		&Options{Parallelism: 1, Incumbent: []int64{0, 0, 0, 0, 0, 0}}); err != nil {
		t.Fatal(err)
	}
}

// TestFlowPoolAcrossSolves runs two solves on topology-identical
// instances through one pool and checks the second reuses the first's
// networks without changing the optimum.
func TestFlowPoolAcrossSolves(t *testing.T) {
	pool := flow.NewSolverPool(4)
	base := core.Compile(warmInstance(t, 0))
	neighbor := core.Compile(warmInstance(t, 3))
	const budget = 5

	s1, _, err := MinMakespanCompiled(nil, base, budget, &Options{Parallelism: 1, FlowPool: pool})
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := MinMakespanCompiled(nil, neighbor, budget, &Options{Parallelism: 1, FlowPool: pool})
	if err != nil {
		t.Fatal(err)
	}
	hits, _, _ := pool.Stats()
	if hits == 0 {
		t.Fatal("second solve did not reuse the pooled network")
	}
	ref1, _, err := MinMakespanCompiled(nil, base, budget, &Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	ref2, _, err := MinMakespanCompiled(nil, neighbor, budget, &Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Makespan != ref1.Makespan || s2.Makespan != ref2.Makespan {
		t.Fatalf("pooled optima (%d,%d) != unpooled (%d,%d)", s1.Makespan, s2.Makespan, ref1.Makespan, ref2.Makespan)
	}
}

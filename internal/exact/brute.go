package exact

import (
	"repro/internal/core"
	"repro/internal/flow"
)

// BruteForceMinMakespan minimizes the makespan over all integral flows of
// value exactly budget by enumerating multisets of source-to-sink paths
// (every integral flow decomposes into unit path flows, and makespan is
// non-increasing in budget, so value-exactly-budget enumeration is
// complete).  It reports ok=false when the instance has more than maxPaths
// source-sink paths, in which case nothing is computed.
//
// This is the reference oracle used to validate the branch-and-bound
// searcher on tiny instances; it is exponential and should never be called
// on anything larger.
func BruteForceMinMakespan(inst *core.Instance, budget int64, maxPaths int) (core.Solution, bool) {
	paths, exhaustive := inst.G.Paths(inst.Source, inst.Sink, maxPaths+1)
	if !exhaustive || len(paths) > maxPaths {
		return core.Solution{}, false
	}
	f := make([]int64, inst.G.NumEdges())
	best := core.Solution{Makespan: -1}
	var rec func(k int64, from int)
	rec = func(k int64, from int) {
		if k == 0 {
			m, err := inst.Makespan(f)
			if err != nil {
				panic(err)
			}
			if best.Makespan < 0 || m < best.Makespan {
				best = core.Solution{
					Flow:     append([]int64(nil), f...),
					Value:    inst.FlowValue(f),
					Makespan: m,
				}
			}
			return
		}
		for i := from; i < len(paths); i++ {
			for _, e := range paths[i] {
				f[e]++
			}
			rec(k-1, i)
			for _, e := range paths[i] {
				f[e]--
			}
		}
	}
	rec(budget, 0)
	return best, true
}

// BruteForceAssignmentsMinMakespan enumerates every tuple assignment (the
// exact search's own space), computes each assignment's minimum flow, and
// returns the best realized makespan among those within budget.  Every
// integral flow induces the assignment of the breakpoints it reaches and
// is dominated by that assignment's min-flow, so this enumeration is a
// complete optimum oracle - independent of the branch-and-bound's
// branching and pruning rules, which is exactly what makes it the right
// cross-check for them.  It reports ok=false when the assignment space
// exceeds maxAssignments.
func BruteForceAssignmentsMinMakespan(inst *core.Instance, budget int64, maxAssignments int64) (core.Solution, bool) {
	m := inst.G.NumEdges()
	space := int64(1)
	for _, fn := range inst.Fns {
		space *= int64(len(fn.Tuples()))
		if space > maxAssignments {
			return core.Solution{}, false
		}
	}
	level := make([]int, m)
	lower := make([]int64, m)
	ms := flow.NewMinFlowSolver(inst.G, inst.Source, inst.Sink)
	best := core.Solution{Makespan: -1}
	for {
		for e, l := range level {
			lower[e] = inst.Fns[e].Tuples()[l].R
		}
		res, err := ms.Solve(lower)
		if err == nil && res.Value <= budget {
			mk, err := inst.Makespan(res.EdgeFlow)
			if err != nil {
				panic(err)
			}
			if best.Makespan < 0 || mk < best.Makespan {
				best = core.Solution{
					Flow:     append([]int64(nil), res.EdgeFlow...),
					Value:    res.Value,
					Makespan: mk,
				}
			}
		}
		// Advance the mixed-radix odometer over levels.
		e := 0
		for ; e < m; e++ {
			level[e]++
			if level[e] < len(inst.Fns[e].Tuples()) {
				break
			}
			level[e] = 0
		}
		if e == m {
			return best, true
		}
	}
}

// BruteForceMinResource finds the smallest budget whose brute-force optimal
// makespan meets the target, scanning budgets upward to maxBudget.
func BruteForceMinResource(inst *core.Instance, target, maxBudget int64, maxPaths int) (core.Solution, bool) {
	for b := int64(0); b <= maxBudget; b++ {
		sol, ok := BruteForceMinMakespan(inst, b, maxPaths)
		if !ok {
			return core.Solution{}, false
		}
		if sol.Makespan <= target {
			return sol, true
		}
	}
	return core.Solution{Makespan: -1}, true
}

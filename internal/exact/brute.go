package exact

import (
	"repro/internal/core"
)

// BruteForceMinMakespan minimizes the makespan over all integral flows of
// value exactly budget by enumerating multisets of source-to-sink paths
// (every integral flow decomposes into unit path flows, and makespan is
// non-increasing in budget, so value-exactly-budget enumeration is
// complete).  It reports ok=false when the instance has more than maxPaths
// source-sink paths, in which case nothing is computed.
//
// This is the reference oracle used to validate the branch-and-bound
// searcher on tiny instances; it is exponential and should never be called
// on anything larger.
func BruteForceMinMakespan(inst *core.Instance, budget int64, maxPaths int) (core.Solution, bool) {
	paths, exhaustive := inst.G.Paths(inst.Source, inst.Sink, maxPaths+1)
	if !exhaustive || len(paths) > maxPaths {
		return core.Solution{}, false
	}
	f := make([]int64, inst.G.NumEdges())
	best := core.Solution{Makespan: -1}
	var rec func(k int64, from int)
	rec = func(k int64, from int) {
		if k == 0 {
			m, err := inst.Makespan(f)
			if err != nil {
				panic(err)
			}
			if best.Makespan < 0 || m < best.Makespan {
				best = core.Solution{
					Flow:     append([]int64(nil), f...),
					Value:    inst.FlowValue(f),
					Makespan: m,
				}
			}
			return
		}
		for i := from; i < len(paths); i++ {
			for _, e := range paths[i] {
				f[e]++
			}
			rec(k-1, i)
			for _, e := range paths[i] {
				f[e]--
			}
		}
	}
	rec(budget, 0)
	return best, true
}

// BruteForceMinResource finds the smallest budget whose brute-force optimal
// makespan meets the target, scanning budgets upward to maxBudget.
func BruteForceMinResource(inst *core.Instance, target, maxBudget int64, maxPaths int) (core.Solution, bool) {
	for b := int64(0); b <= maxBudget; b++ {
		sol, ok := BruteForceMinMakespan(inst, b, maxPaths)
		if !ok {
			return core.Solution{}, false
		}
		if sol.Makespan <= target {
			return sol, true
		}
	}
	return core.Solution{Makespan: -1}, true
}

package exact

import "sync/atomic"

// Chase-Lev work-stealing deque of frontier tasks.
//
// Every search worker owns one deque: the owner pushes and pops subtree
// tasks at the BOTTOM (LIFO, so it dives back into the subtree it just
// shed, keeping its caches warm), while idle workers steal from the TOP
// (FIFO, so thieves take the OLDEST — shallowest, and therefore biggest —
// subtrees, amortizing the per-steal copy over the most work).  The
// implementation is the classic dynamic circular array of Chase & Lev:
// bottom is written only by the owner, top only advances (via CAS), and
// the one contended case — owner popping the last element while a thief
// steals it — is arbitrated by a CAS on top that exactly one side wins.
// Go's sync/atomic operations are sequentially consistent, which covers
// the fences the original algorithm needs.
//
// The ring stores *task pointers in atomic slots so that growth (the
// owner swapping in a doubled ring) never races thieves reading the old
// one: a grown ring holds the same tasks at the same logical indices, and
// a thief acting on a stale ring still reads the value its CAS on top
// then claims exclusively.  Rings are never reused, and top never
// decreases, so there is no ABA.

// dequeRing is one immutable-size circular buffer; len(slot) is a power
// of two and mask = len(slot)-1.
type dequeRing struct {
	mask int64
	slot []atomic.Pointer[task]
}

// deque is one worker's work-stealing deque.  The zero value is an empty
// deque; the first push allocates the ring.
type deque struct {
	top    atomic.Int64
	bottom atomic.Int64
	ring   atomic.Pointer[dequeRing]
}

// dequeMinSize is the first ring's capacity; sized so that typical
// searches (branching factors in the tens) never grow.
const dequeMinSize = 64

// grow swaps in a ring of at least twice the capacity, copying the live
// logical indices [t, b).  Owner-only, called from push; out of line so
// the push hot path itself stays allocation-free once the deque has
// reached its working size.
func (d *deque) grow(r *dequeRing, b, t int64) *dequeRing {
	size := int64(dequeMinSize)
	if r != nil {
		size = int64(len(r.slot)) * 2
	}
	nr := &dequeRing{mask: size - 1, slot: make([]atomic.Pointer[task], size)}
	for i := t; i < b; i++ {
		nr.slot[i&nr.mask].Store(r.slot[i&r.mask].Load())
	}
	d.ring.Store(nr)
	return nr
}

// push appends a task at the bottom.  Owner-only.
//
//rt:hotpath — every shed subtree goes through here.
func (d *deque) push(tk *task) {
	b := d.bottom.Load()
	t := d.top.Load()
	r := d.ring.Load()
	if r == nil || b-t >= int64(len(r.slot)) {
		r = d.grow(r, b, t)
	}
	r.slot[b&r.mask].Store(tk)
	d.bottom.Store(b + 1)
}

// pop removes and returns the bottom task, or nil when the deque is
// empty.  Owner-only; the last-element case races thieves and exactly
// one side wins the CAS on top.
//
//rt:hotpath — the owner's per-task dequeue.
func (d *deque) pop() *task {
	r := d.ring.Load()
	if r == nil {
		return nil
	}
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Deque was empty; undo the decrement.
		d.bottom.Store(b + 1)
		return nil
	}
	tk := r.slot[b&r.mask].Load()
	if b > t {
		return tk
	}
	// Last element: claim it against concurrent thieves.
	if !d.top.CompareAndSwap(t, t+1) {
		tk = nil // a thief got there first
	}
	d.bottom.Store(b + 1)
	return tk
}

// steal removes and returns the top task, or nil when the deque looks
// empty or the claim was lost to a concurrent pop/steal (callers just
// move on to the next victim).  Safe to call from any worker.
//
//rt:hotpath — idle workers spin through here.
func (d *deque) steal() *task {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil
	}
	r := d.ring.Load()
	if r == nil {
		return nil
	}
	tk := r.slot[t&r.mask].Load()
	if !d.top.CompareAndSwap(t, t+1) {
		return nil
	}
	return tk
}

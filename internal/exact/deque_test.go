package exact

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// tagged builds a distinct task whose level[0] carries an identifying tag.
func tagged(tag int) *task {
	return &task{level: []int{tag}, frozen: []bool{false}}
}

// TestDequeOwnerLIFO: the owner pops its own pushes newest-first.
func TestDequeOwnerLIFO(t *testing.T) {
	var d deque
	for i := 0; i < 10; i++ {
		d.push(tagged(i))
	}
	for i := 9; i >= 0; i-- {
		tk := d.pop()
		if tk == nil || tk.level[0] != i {
			t.Fatalf("pop %d: got %v", i, tk)
		}
	}
	if d.pop() != nil {
		t.Fatal("pop of an empty deque must return nil")
	}
}

// TestDequeStealFIFO: thieves take the oldest task first.
func TestDequeStealFIFO(t *testing.T) {
	var d deque
	for i := 0; i < 10; i++ {
		d.push(tagged(i))
	}
	for i := 0; i < 10; i++ {
		tk := d.steal()
		if tk == nil || tk.level[0] != i {
			t.Fatalf("steal %d: got %v", i, tk)
		}
	}
	if d.steal() != nil {
		t.Fatal("steal from an empty deque must return nil")
	}
}

// TestDequeGrowth pushes far past the initial ring size and checks that
// every task survives the ring doublings, split between pops and steals.
func TestDequeGrowth(t *testing.T) {
	var d deque
	const total = 10 * dequeMinSize
	for i := 0; i < total; i++ {
		d.push(tagged(i))
	}
	seen := make([]bool, total)
	for i := 0; i < total; i++ {
		var tk *task
		if i%2 == 0 {
			tk = d.pop()
		} else {
			tk = d.steal()
		}
		if tk == nil {
			t.Fatalf("drain %d: deque ran dry early", i)
		}
		if seen[tk.level[0]] {
			t.Fatalf("task %d delivered twice", tk.level[0])
		}
		seen[tk.level[0]] = true
	}
	if d.pop() != nil || d.steal() != nil {
		t.Fatal("deque must be empty after draining")
	}
}

// TestDequeConcurrentStress is the exactly-once contract under contention
// (run with -race to also check the memory orderings): one owner pushes
// tasks and pops between pushes while several thieves steal continuously;
// every task must be claimed by exactly one side, none lost, none doubled.
func TestDequeConcurrentStress(t *testing.T) {
	const (
		total   = 20000
		thieves = 4
	)
	var d deque
	claimed := make([]atomic.Int32, total)
	var delivered atomic.Int64
	claim := func(tk *task) {
		if claimed[tk.level[0]].Add(1) != 1 {
			t.Errorf("task %d claimed more than once", tk.level[0])
		}
		delivered.Add(1)
	}

	var wg sync.WaitGroup
	var producing atomic.Bool
	producing.Store(true)
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for producing.Load() || delivered.Load() < total {
				if tk := d.steal(); tk != nil {
					claim(tk)
				} else {
					runtime.Gosched()
				}
			}
		}()
	}
	// Owner: bursts of pushes with interleaved pops, like a worker
	// shedding siblings and diving back into its own subtree.
	for i := 0; i < total; {
		for j := 0; j < 7 && i < total; j++ {
			d.push(tagged(i))
			i++
		}
		for j := 0; j < 3; j++ {
			if tk := d.pop(); tk != nil {
				claim(tk)
			}
		}
	}
	producing.Store(false)
	// Owner drains whatever the thieves left behind.
	for delivered.Load() < total {
		if tk := d.pop(); tk != nil {
			claim(tk)
		} else {
			runtime.Gosched()
		}
	}
	wg.Wait()
	if got := delivered.Load(); got != total {
		t.Fatalf("delivered %d of %d tasks", got, total)
	}
	if d.pop() != nil || d.steal() != nil {
		t.Fatal("deque must be empty at the end")
	}
}

package exact

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/duration"
)

// chainInstance builds a path of jobs, each with tuples {<0,high>, <r,low>}.
func chainInstance(n int, high, low, r int64) *core.Instance {
	g := dag.New()
	prev := g.AddNode("s")
	fns := make([]duration.Func, 0, n)
	for i := 0; i < n; i++ {
		v := g.AddNode("v")
		g.AddEdge(prev, v)
		fns = append(fns, duration.MustStep(
			duration.Tuple{R: 0, T: high},
			duration.Tuple{R: r, T: low},
		))
		prev = v
	}
	return core.MustInstance(g, fns)
}

func TestMinMakespanReuseOverPath(t *testing.T) {
	// Five jobs in series, each dropping from 10 to 1 with 2 units: the
	// same 2 units serve all five (reuse over the path), so budget 2
	// yields makespan 5 while budget 0 yields 50.
	inst := chainInstance(5, 10, 1, 2)
	sol, stats, err := MinMakespan(inst, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Complete {
		t.Fatal("search incomplete")
	}
	if sol.Makespan != 5 {
		t.Fatalf("makespan = %d; want 5", sol.Makespan)
	}
	if sol.Value > 2 {
		t.Fatalf("used %d units; budget 2", sol.Value)
	}
	sol0, _, err := MinMakespan(inst, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol0.Makespan != 50 {
		t.Fatalf("zero-budget makespan = %d; want 50", sol0.Makespan)
	}
	// Budget 1 does not reach any breakpoint: still 50.
	sol1, _, err := MinMakespan(inst, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol1.Makespan != 50 {
		t.Fatalf("budget-1 makespan = %d; want 50", sol1.Makespan)
	}
}

// parallelInstance builds s->t with n parallel jobs {<0,high>, <r,low>}.
func parallelInstance(n int, high, low, r int64) *core.Instance {
	g := dag.New()
	s := g.AddNode("s")
	tt := g.AddNode("t")
	fns := make([]duration.Func, 0, n)
	for i := 0; i < n; i++ {
		g.AddEdge(s, tt)
		fns = append(fns, duration.MustStep(
			duration.Tuple{R: 0, T: high},
			duration.Tuple{R: r, T: low},
		))
	}
	return core.MustInstance(g, fns)
}

func TestMinMakespanParallelNeedsSplit(t *testing.T) {
	// Three parallel jobs each needing 2 units: no reuse is possible, so
	// 6 units are needed to bring the makespan to 1.
	inst := parallelInstance(3, 9, 1, 2)
	for budget, want := range map[int64]int64{0: 9, 2: 9, 4: 9, 5: 9, 6: 1} {
		sol, stats, err := MinMakespan(inst, budget, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Complete {
			t.Fatal("search incomplete")
		}
		if sol.Makespan != want {
			t.Fatalf("budget %d: makespan = %d; want %d", budget, sol.Makespan, want)
		}
	}
}

func TestMinResource(t *testing.T) {
	inst := chainInstance(4, 7, 2, 3)
	// Target 8 = 4 jobs at duration 2: needs 3 units reused along the path.
	sol, stats, err := MinResource(inst, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Complete {
		t.Fatal("search incomplete")
	}
	if sol.Value != 3 {
		t.Fatalf("resource = %d; want 3", sol.Value)
	}
	if sol.Makespan > 8 {
		t.Fatalf("makespan = %d exceeds target 8", sol.Makespan)
	}
	// Target below the floor is impossible.
	if _, _, err := MinResource(inst, 7, nil); err != ErrNoSolution {
		t.Fatalf("err = %v; want ErrNoSolution", err)
	}
	// A generous target needs nothing.
	sol, _, err = MinResource(inst, 28, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value != 0 {
		t.Fatalf("resource = %d; want 0", sol.Value)
	}
}

func TestFeasible(t *testing.T) {
	inst := chainInstance(3, 5, 1, 2)
	ok, sol, _, err := Feasible(inst, 2, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("2 units should reach makespan 3")
	}
	if sol.Makespan > 3 || sol.Value > 2 {
		t.Fatalf("witness = %+v", sol)
	}
	ok, _, _, err = Feasible(inst, 1, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("1 unit cannot reach makespan 3")
	}
	ok, _, _, err = Feasible(inst, 100, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("makespan 2 below the floor of 3")
	}
}

func TestNodeBudgetReportsIncomplete(t *testing.T) {
	inst := chainInstance(6, 9, 1, 2)
	_, stats, err := MinMakespan(inst, 2, &Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err) // the root node itself yields a (suboptimal) solution
	}
	if stats.Complete {
		t.Fatal("want incomplete search with MaxNodes=1")
	}
}

func TestNegativeBudgetRejected(t *testing.T) {
	inst := chainInstance(2, 3, 1, 1)
	if _, _, err := MinMakespan(inst, -1, nil); err == nil {
		t.Fatal("want error for negative budget")
	}
}

// randomInstance builds a small random instance for cross-checking.
func randomInstance(rng *rand.Rand) *core.Instance {
	g := dag.New()
	s := g.AddNode("s")
	n := 2 + rng.Intn(2)
	mids := make([]int, n)
	for i := range mids {
		mids[i] = g.AddNode("m")
	}
	tt := g.AddNode("t")
	var fns []duration.Func
	addJob := func(u, v int) {
		g.AddEdge(u, v)
		tuples := []duration.Tuple{{R: 0, T: int64(1 + rng.Intn(8))}}
		if rng.Intn(4) > 0 {
			r := int64(1 + rng.Intn(3))
			tm := rng.Int63n(tuples[0].T)
			tuples = append(tuples, duration.Tuple{R: r, T: tm})
			if rng.Intn(2) == 0 && tm > 0 {
				tuples = append(tuples, duration.Tuple{R: r + 1 + int64(rng.Intn(2)), T: rng.Int63n(tm)})
			}
		}
		fn, err := duration.NewStep(tuples)
		if err != nil {
			panic(err)
		}
		fns = append(fns, fn)
	}
	for i, v := range mids {
		addJob(s, v)
		addJob(v, tt)
		if i+1 < n && rng.Intn(2) == 0 {
			addJob(mids[i], mids[i+1])
		}
	}
	return core.MustInstance(g, fns)
}

// TestMinMakespanMatchesBruteForce is the core correctness check: the
// branch-and-bound optimum equals the exhaustive path-multiset optimum on
// random tiny instances.
func TestMinMakespanMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	checked := 0
	for trial := 0; trial < 60; trial++ {
		inst := randomInstance(rng)
		budget := int64(rng.Intn(5))
		brute, ok := BruteForceMinMakespan(inst, budget, 24)
		if !ok {
			continue
		}
		checked++
		sol, stats, err := MinMakespan(inst, budget, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Complete {
			t.Fatalf("trial %d: incomplete", trial)
		}
		if sol.Makespan != brute.Makespan {
			t.Fatalf("trial %d (budget %d): B&B makespan %d != brute force %d",
				trial, budget, sol.Makespan, brute.Makespan)
		}
		if err := inst.ValidateFlow(sol.Flow, budget); err != nil {
			t.Fatalf("trial %d: invalid flow: %v", trial, err)
		}
	}
	if checked < 20 {
		t.Fatalf("only %d trials were checked; widen the path cap", checked)
	}
}

// TestMinResourceMatchesBruteForce does the same for the other objective.
func TestMinResourceMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	checked := 0
	for trial := 0; trial < 40; trial++ {
		inst := randomInstance(rng)
		lo := inst.MakespanLowerBound()
		hi := inst.ZeroFlowMakespan()
		if hi == lo {
			continue
		}
		target := lo + rng.Int63n(hi-lo+1)
		brute, ok := BruteForceMinResource(inst, target, 6, 24)
		if !ok || brute.Makespan < 0 {
			continue
		}
		checked++
		sol, stats, err := MinResource(inst, target, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Complete {
			t.Fatalf("trial %d: incomplete", trial)
		}
		if sol.Value != brute.Value {
			t.Fatalf("trial %d (target %d): B&B resource %d != brute force %d",
				trial, target, sol.Value, brute.Value)
		}
	}
	if checked < 10 {
		t.Fatalf("only %d trials were checked", checked)
	}
}

// TestMakespanMonotoneInBudget checks that the exact optimum never worsens
// with more budget (a model invariant the searcher must respect).
func TestMakespanMonotoneInBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		inst := randomInstance(rng)
		prev := int64(-1)
		for b := int64(0); b <= 5; b++ {
			sol, stats, err := MinMakespan(inst, b, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !stats.Complete {
				t.Fatal("incomplete")
			}
			if prev >= 0 && sol.Makespan > prev {
				t.Fatalf("trial %d: makespan rose from %d to %d at budget %d",
					trial, prev, sol.Makespan, b)
			}
			prev = sol.Makespan
		}
	}
}

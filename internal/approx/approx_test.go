package approx

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/duration"
	"repro/internal/exact"
)

// chain builds a path instance with the given duration functions.
func chain(fns ...duration.Func) *core.Instance {
	g := dag.New()
	prev := g.AddNode("s")
	for range fns {
		v := g.AddNode("v")
		g.AddEdge(prev, v)
		prev = v
	}
	return core.MustInstance(g, fns)
}

func step(high, low, r int64) duration.Func {
	return duration.MustStep(duration.Tuple{R: 0, T: high}, duration.Tuple{R: r, T: low})
}

func TestSolveMakespanLPChain(t *testing.T) {
	// Two series jobs {<0,10>, <2,0>}: with budget 2 the LP can zero both
	// (reuse over the path), so the relaxed makespan is 0.
	inst := chain(step(10, 0, 2), step(10, 0, 2))
	ex, err := core.Expand(inst)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := SolveMakespanLP(ex, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Objective > 1e-6 {
		t.Fatalf("LP objective = %v; want 0", rel.Objective)
	}
	if rel.Value > 2+1e-6 {
		t.Fatalf("LP uses %v units; budget 2", rel.Value)
	}
	// With budget 1 the LP halves both durations at best: makespan 10.
	rel, err = SolveMakespanLP(ex, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rel.Objective-10) > 1e-6 {
		t.Fatalf("LP objective = %v; want 10", rel.Objective)
	}
}

func TestSolveResourceLPChain(t *testing.T) {
	inst := chain(step(10, 0, 2), step(10, 0, 2))
	ex, err := core.Expand(inst)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := SolveResourceLP(ex, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rel.Objective-2) > 1e-6 {
		t.Fatalf("LP resource = %v; want 2", rel.Objective)
	}
}

func TestLPIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		inst := randomStepInstance(rng)
		budget := int64(rng.Intn(5))
		ex, err := core.Expand(inst)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := SolveMakespanLP(ex, budget)
		if err != nil {
			t.Fatal(err)
		}
		sol, stats, err := exact.MinMakespan(inst, budget, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Complete {
			t.Fatal("exact incomplete")
		}
		if rel.Objective > float64(sol.Makespan)+1e-6 {
			t.Fatalf("trial %d: LP %v exceeds OPT %d", trial, rel.Objective, sol.Makespan)
		}
	}
}

func TestBiCriteriaParamValidation(t *testing.T) {
	inst := chain(step(5, 1, 2))
	for _, alpha := range []float64{0, 1, -0.5, 1.5} {
		if _, err := BiCriteria(inst, 2, alpha); err == nil {
			t.Fatalf("alpha=%v: want error", alpha)
		}
	}
	if _, err := BiCriteria(inst, -1, 0.5); err == nil {
		t.Fatal("want error for negative budget")
	}
}

// TestBiCriteriaGuarantees checks the Theorem 3.4 bounds on random step
// instances: resources <= LPValue/(1-alpha) and makespan <= LPObj/alpha,
// hence makespan <= OPT/alpha.
func TestBiCriteriaGuarantees(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		inst := randomStepInstance(rng)
		budget := int64(rng.Intn(6))
		for _, alpha := range []float64{0.25, 0.5, 0.75} {
			res, err := BiCriteria(inst, budget, alpha)
			if err != nil {
				t.Fatal(err)
			}
			if got, lim := float64(res.Sol.Value), res.LPValue/(1-alpha)+1e-6; got > lim {
				t.Fatalf("trial %d alpha %v: resources %v > %v", trial, alpha, got, lim)
			}
			if got, lim := float64(res.Sol.Makespan), res.LPObjective/alpha+1e-6; got > lim {
				t.Fatalf("trial %d alpha %v: makespan %v > %v", trial, alpha, got, lim)
			}
			if err := inst.ValidateFlow(res.Sol.Flow, -1); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestBiCriteriaVsExact verifies makespan <= OPT/alpha against the exact
// optimum (the LP bound is weaker; this closes the loop end to end).
func TestBiCriteriaVsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 15; trial++ {
		inst := randomStepInstance(rng)
		budget := int64(1 + rng.Intn(4))
		opt, stats, err := exact.MinMakespan(inst, budget, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Complete {
			t.Fatal("exact incomplete")
		}
		res, err := BiCriteria(inst, budget, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if float64(res.Sol.Makespan) > 2*float64(opt.Makespan)+1e-6 {
			t.Fatalf("trial %d: makespan %d > 2*OPT %d", trial, res.Sol.Makespan, opt.Makespan)
		}
	}
}

func TestBiCriteriaResource(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 15; trial++ {
		inst := randomStepInstance(rng)
		lo, hi := inst.MakespanLowerBound(), inst.ZeroFlowMakespan()
		if hi == lo {
			continue
		}
		target := lo + rng.Int63n(hi-lo+1)
		res, err := BiCriteriaResource(inst, target, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		// Resource within LP/(1-alpha); makespan within target/alpha.
		if got, lim := float64(res.Sol.Value), res.LPObjective/0.5+1e-6; got > lim {
			t.Fatalf("trial %d: resources %v > %v", trial, got, lim)
		}
		if got, lim := float64(res.Sol.Makespan), float64(target)/0.5+1e-6; got > lim {
			t.Fatalf("trial %d: makespan %v > %v", trial, got, lim)
		}
	}
}

// TestKWay5Guarantees: budget respected exactly, makespan <= 5 OPT.
func TestKWay5Guarantees(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 20; trial++ {
		inst := randomKindInstance(rng, duration.KindKWay)
		budget := int64(rng.Intn(6))
		res, err := KWay5(inst, budget)
		if err != nil {
			t.Fatal(err)
		}
		if res.Sol.Value > budget {
			t.Fatalf("trial %d: used %d > budget %d", trial, res.Sol.Value, budget)
		}
		opt, stats, err := exact.MinMakespan(inst, budget, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Complete {
			t.Fatal("exact incomplete")
		}
		if float64(res.Sol.Makespan) > 5*float64(opt.Makespan)+1e-6 {
			t.Fatalf("trial %d: makespan %d > 5*OPT %d", trial, res.Sol.Makespan, opt.Makespan)
		}
	}
}

// TestBinary4Guarantees: budget respected, makespan <= 4 OPT.
func TestBinary4Guarantees(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 20; trial++ {
		inst := randomKindInstance(rng, duration.KindBinary)
		budget := int64(rng.Intn(6))
		res, err := Binary4(inst, budget)
		if err != nil {
			t.Fatal(err)
		}
		if res.Sol.Value > budget {
			t.Fatalf("trial %d: used %d > budget %d", trial, res.Sol.Value, budget)
		}
		opt, stats, err := exact.MinMakespan(inst, budget, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Complete {
			t.Fatal("exact incomplete")
		}
		if float64(res.Sol.Makespan) > 4*float64(opt.Makespan)+1e-6 {
			t.Fatalf("trial %d: makespan %d > 4*OPT %d", trial, res.Sol.Makespan, opt.Makespan)
		}
	}
}

// TestBinaryBiCriteriaGuarantees: resources <= (4/3) LPValue, makespan
// <= (14/5) OPT.
func TestBinaryBiCriteriaGuarantees(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 20; trial++ {
		inst := randomKindInstance(rng, duration.KindBinary)
		budget := int64(rng.Intn(6))
		res, err := BinaryBiCriteria(inst, budget)
		if err != nil {
			t.Fatal(err)
		}
		if got, lim := float64(res.Sol.Value), 4.0/3.0*res.LPValue+1e-6; got > lim {
			t.Fatalf("trial %d: resources %v > (4/3) LP %v", trial, got, lim)
		}
		opt, stats, err := exact.MinMakespan(inst, budget, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Complete {
			t.Fatal("exact incomplete")
		}
		if float64(res.Sol.Makespan) > 14.0/5.0*float64(opt.Makespan)+1e-6 {
			t.Fatalf("trial %d: makespan %d > (14/5)*OPT %d", trial, res.Sol.Makespan, opt.Makespan)
		}
	}
}

func TestRoundLog(t *testing.T) {
	cases := map[float64]int64{
		0:    0,
		0.99: 0,
		1:    1,
		1.4:  1,
		1.5:  2,
		2:    2,
		2.9:  2,
		3:    4,
		4:    4,
		5.9:  4,
		6:    8,
	}
	for in, want := range cases {
		if got := roundLog(in); got != want {
			t.Errorf("roundLog(%v) = %d; want %d", in, got, want)
		}
	}
}

func TestClampToBreakpoint(t *testing.T) {
	fn := duration.NewRecursiveBinary(100)
	if got := clampToBreakpoint(fn, 3); got != 2 {
		t.Fatalf("clamp(3) = %d; want 2", got)
	}
	if got := clampToBreakpoint(fn, 0); got != 0 {
		t.Fatalf("clamp(0) = %d; want 0", got)
	}
	if got := clampToBreakpoint(fn, 1000); got != duration.MaxUsefulResource(fn) {
		t.Fatalf("clamp(1000) = %d", got)
	}
}

func TestPrevPow2(t *testing.T) {
	cases := map[int64]int64{0: 0, 1: 1, 2: 2, 3: 2, 4: 4, 7: 4, 8: 8, 1000: 512}
	for in, want := range cases {
		if got := prevPow2(in); got != want {
			t.Errorf("prevPow2(%d) = %d; want %d", in, got, want)
		}
	}
}

func TestZeroBudgetDegenerates(t *testing.T) {
	inst := chain(step(9, 1, 2), step(7, 2, 3))
	for name, run := range map[string]func() (*Result, error){
		"bicriteria": func() (*Result, error) { return BiCriteria(inst, 0, 0.5) },
		"kway":       func() (*Result, error) { return KWay5(inst, 0) },
		"binary":     func() (*Result, error) { return Binary4(inst, 0) },
		"binarybi":   func() (*Result, error) { return BinaryBiCriteria(inst, 0) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Sol.Value != 0 {
			t.Fatalf("%s: used %d units with zero budget", name, res.Sol.Value)
		}
		if res.Sol.Makespan != inst.ZeroFlowMakespan() {
			t.Fatalf("%s: makespan %d != zero-flow %d", name, res.Sol.Makespan, inst.ZeroFlowMakespan())
		}
	}
}

// randomStepInstance builds a small layered instance with random step
// functions (2-3 tuples each).
func randomStepInstance(rng *rand.Rand) *core.Instance {
	g := dag.New()
	s := g.AddNode("s")
	n := 2 + rng.Intn(2)
	mids := make([]int, n)
	for i := range mids {
		mids[i] = g.AddNode("m")
	}
	tt := g.AddNode("t")
	var fns []duration.Func
	addJob := func(u, v int) {
		g.AddEdge(u, v)
		t0 := int64(1 + rng.Intn(9))
		tuples := []duration.Tuple{{R: 0, T: t0}}
		if rng.Intn(4) > 0 {
			tuples = append(tuples, duration.Tuple{R: int64(1 + rng.Intn(3)), T: rng.Int63n(t0)})
		}
		fn, err := duration.NewStep(tuples)
		if err != nil {
			panic(err)
		}
		fns = append(fns, fn)
	}
	for i, v := range mids {
		addJob(s, v)
		addJob(v, tt)
		if i+1 < n && rng.Intn(2) == 0 {
			addJob(mids[i], mids[i+1])
		}
	}
	return core.MustInstance(g, fns)
}

// randomKindInstance builds a small layered instance whose jobs all use
// the given duration class (k-way or binary) with random base durations.
func randomKindInstance(rng *rand.Rand, kind string) *core.Instance {
	g := dag.New()
	s := g.AddNode("s")
	n := 2 + rng.Intn(2)
	mids := make([]int, n)
	for i := range mids {
		mids[i] = g.AddNode("m")
	}
	tt := g.AddNode("t")
	var fns []duration.Func
	addJob := func(u, v int) {
		g.AddEdge(u, v)
		t0 := int64(1 + rng.Intn(30))
		switch kind {
		case duration.KindKWay:
			fns = append(fns, duration.NewKWay(t0))
		case duration.KindBinary:
			fns = append(fns, duration.NewRecursiveBinary(t0))
		default:
			panic("unknown kind")
		}
	}
	for i, v := range mids {
		addJob(s, v)
		addJob(v, tt)
		if i+1 < n && rng.Intn(2) == 0 {
			addJob(mids[i], mids[i+1])
		}
	}
	return core.MustInstance(g, fns)
}

package approx

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/flow"
)

// Result is the outcome of an approximation algorithm on the original
// instance.
type Result struct {
	// Sol is the integral solution (flow, value, makespan) on the
	// original instance.
	Sol core.Solution
	// LPObjective is the optimum of the relaxation: a lower bound on the
	// optimal makespan (makespan algorithms) or optimal resource usage
	// (resource algorithms).  Dividing Sol's metric by it bounds the true
	// approximation ratio from above.
	LPObjective float64
	// LPValue is the fractional resource usage of the relaxation.
	LPValue float64
}

// minFlowOnExpanded routes an integral min-flow meeting the expanded lower
// bounds and pulls it back onto the original instance.
func minFlowOnExpanded(inst *core.Instance, ex *core.Expanded, lower []int64) (core.Solution, error) {
	res, err := flow.MinFlow(ex.G, lower, ex.Source, ex.Sink)
	if err != nil {
		return core.Solution{}, err
	}
	f := ex.PullBack(inst, res.EdgeFlow)
	return inst.NewSolution(f)
}

// minFlowOnOriginal routes an integral min-flow meeting per-original-arc
// requirements directly on the original instance.
func minFlowOnOriginal(inst *core.Instance, lower []int64) (core.Solution, error) {
	res, err := flow.MinFlow(inst.G, lower, inst.Source, inst.Sink)
	if err != nil {
		return core.Solution{}, err
	}
	return inst.NewSolution(res.EdgeFlow)
}

// BiCriteria is the Theorem 3.4 algorithm for general non-increasing
// duration functions: with parameter alpha in (0,1) it returns a solution
// using at most LPValue/(1-alpha) resources (<= B/(1-alpha)) with makespan
// at most LPObjective/alpha (<= OPT(B)/alpha).
func BiCriteria(inst *core.Instance, budget int64, alpha float64) (*Result, error) {
	return BiCriteriaCtx(context.Background(), core.Compile(inst), budget, alpha)
}

// BiCriteriaCtx is BiCriteria with cooperative cancellation of the LP
// relaxation, on an already-compiled instance: the Section 3.1 expansion
// is taken from (and memoized on) the compiled form instead of rebuilt per
// call.
func BiCriteriaCtx(ctx context.Context, c *core.Compiled, budget int64, alpha float64) (*Result, error) {
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("approx: alpha %v outside (0,1)", alpha)
	}
	if budget < 0 {
		return nil, fmt.Errorf("approx: negative budget %d", budget)
	}
	inst := c.Inst
	ex, err := c.Expansion()
	if err != nil {
		return nil, err
	}
	rel, err := SolveMakespanLPCtx(ctx, ex, budget)
	if err != nil {
		return nil, err
	}
	sol, err := minFlowOnExpanded(inst, ex, rel.Round(alpha))
	if err != nil {
		return nil, err
	}
	return &Result{Sol: sol, LPObjective: rel.Objective, LPValue: rel.Value}, nil
}

// BiCriteriaResource is the minimum-resource twin of BiCriteria: given a
// makespan target T it returns a solution using at most
// LPObjective/(1-alpha) resources whose makespan is at most T/alpha.
func BiCriteriaResource(inst *core.Instance, target int64, alpha float64) (*Result, error) {
	return BiCriteriaResourceCtx(context.Background(), core.Compile(inst), target, alpha)
}

// BiCriteriaResourceCtx is BiCriteriaResource with cooperative
// cancellation of the LP relaxation, on an already-compiled instance.
func BiCriteriaResourceCtx(ctx context.Context, c *core.Compiled, target int64, alpha float64) (*Result, error) {
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("approx: alpha %v outside (0,1)", alpha)
	}
	inst := c.Inst
	ex, err := c.Expansion()
	if err != nil {
		return nil, err
	}
	rel, err := SolveResourceLPCtx(ctx, ex, target)
	if err != nil {
		return nil, err
	}
	sol, err := minFlowOnExpanded(inst, ex, rel.Round(alpha))
	if err != nil {
		return nil, err
	}
	return &Result{Sol: sol, LPObjective: rel.Objective, LPValue: rel.Value}, nil
}

// KWay5 is the Theorem 3.9 single-criteria 5-approximation for instances
// whose jobs use the k-way splitting duration function: the returned
// solution respects the budget (its min-flow value is at most the LP flow
// value, which is at most B) and its makespan is at most 5 OPT.
//
// Following Section 3.2, it runs the (2,2) bi-criteria rounding
// (alpha = 1/2), then halves each job's rounded resource r_j; for the
// boundary cases r_j <= 3 the paper argues via the optimum r*_j, which the
// algorithm cannot see, so the LP fractional usage r-hat_j stands in for it
// (r-hat is what the paper's own two-phase predecessors use).
func KWay5(inst *core.Instance, budget int64) (*Result, error) {
	return KWay5Ctx(context.Background(), core.Compile(inst), budget)
}

// KWay5Ctx is KWay5 with cooperative cancellation of the LP relaxation, on
// an already-compiled instance.
func KWay5Ctx(ctx context.Context, c *core.Compiled, budget int64) (*Result, error) {
	return halvedRounding(ctx, c, budget, func(e int, rj int64, rhat float64) int64 {
		switch {
		case rj > 3:
			return rj / 2
		case rhat >= 2:
			return 2
		default:
			return 0
		}
	})
}

// Binary4 is the Theorem 3.10 single-criteria 4-approximation for
// recursive binary splitting: after the (2,2) bi-criteria rounding each
// job's resource is halved (r_j/2 <= r*_j), which by the doubling property
// t(r/2) <= 2 t(r) of Equation 3 costs at most another factor 2 in
// makespan.
func Binary4(inst *core.Instance, budget int64) (*Result, error) {
	return Binary4Ctx(context.Background(), core.Compile(inst), budget)
}

// Binary4Ctx is Binary4 with cooperative cancellation of the LP
// relaxation, on an already-compiled instance.
func Binary4Ctx(ctx context.Context, c *core.Compiled, budget int64) (*Result, error) {
	return halvedRounding(ctx, c, budget, func(e int, rj int64, rhat float64) int64 {
		return prevPow2(rj / 2)
	})
}

// halvedRounding implements the shared Section 3.2 pipeline: LP, alpha=1/2
// rounding, per-job resource reduction via reduce, then an integral
// min-flow on the original instance with the reduced requirements.
func halvedRounding(ctx context.Context, c *core.Compiled, budget int64, reduce func(e int, rj int64, rhat float64) int64) (*Result, error) {
	if budget < 0 {
		return nil, fmt.Errorf("approx: negative budget %d", budget)
	}
	inst := c.Inst
	ex, err := c.Expansion()
	if err != nil {
		return nil, err
	}
	rel, err := SolveMakespanLPCtx(ctx, ex, budget)
	if err != nil {
		return nil, err
	}
	lower := rel.Round(0.5)
	rj := rel.JobRounded(inst, lower)
	rhat := rel.JobFractional(inst)
	req := make([]int64, inst.G.NumEdges())
	for e := range req {
		req[e] = clampToBreakpoint(inst.Fns[e], reduce(e, rj[e], rhat[e]))
	}
	sol, err := minFlowOnOriginal(inst, req)
	if err != nil {
		return nil, err
	}
	return &Result{Sol: sol, LPObjective: rel.Objective, LPValue: rel.Value}, nil
}

// BinaryBiCriteria is the Theorem 3.16 improved (4/3, 14/5) bi-criteria
// algorithm for recursive binary splitting.  Each job's fractional LP usage
// r-hat is rounded to the nearest power of two in log-space (down within
// [2^i, 1.5*2^i), up within [1.5*2^i, 2^(i+1))), below 1 to zero; the
// rounded requirements are then min-flow routed.  Resources grow by at most
// 4/3, makespan by at most 14/5.
func BinaryBiCriteria(inst *core.Instance, budget int64) (*Result, error) {
	return BinaryBiCriteriaCtx(context.Background(), core.Compile(inst), budget)
}

// BinaryBiCriteriaCtx is BinaryBiCriteria with cooperative cancellation of
// the LP relaxation, on an already-compiled instance.
func BinaryBiCriteriaCtx(ctx context.Context, c *core.Compiled, budget int64) (*Result, error) {
	if budget < 0 {
		return nil, fmt.Errorf("approx: negative budget %d", budget)
	}
	inst := c.Inst
	ex, err := c.Expansion()
	if err != nil {
		return nil, err
	}
	rel, err := SolveMakespanLPCtx(ctx, ex, budget)
	if err != nil {
		return nil, err
	}
	rhat := rel.JobFractional(inst)
	req := make([]int64, inst.G.NumEdges())
	for e := range req {
		req[e] = clampToBreakpoint(inst.Fns[e], roundLog(rhat[e]))
	}
	sol, err := minFlowOnOriginal(inst, req)
	if err != nil {
		return nil, err
	}
	return &Result{Sol: sol, LPObjective: rel.Objective, LPValue: rel.Value}, nil
}

// roundLog applies the Section 3.3 rounding rule to a fractional resource.
func roundLog(r float64) int64 {
	if r < 1 {
		return 0
	}
	p := prevPow2(int64(r))
	if r < 1.5*float64(p) {
		return p
	}
	return 2 * p
}

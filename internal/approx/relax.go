// Package approx implements the approximation algorithms of Section 3 of
// Das et al. (SPAA 2019) for the discrete resource-time tradeoff problem
// with resource reuse over paths:
//
//   - BiCriteria: the (1/alpha, 1/(1-alpha)) bi-criteria algorithm for
//     general non-increasing duration functions (Theorem 3.4);
//   - KWay5: the single-criteria 5-approximation for k-way splitting
//     (Theorem 3.9);
//   - Binary4: the single-criteria 4-approximation for recursive binary
//     splitting (Theorem 3.10);
//   - BinaryBiCriteria: the improved (4/3, 14/5) bi-criteria algorithm for
//     recursive binary splitting (Theorem 3.16).
//
// All algorithms share the same pipeline: expand the instance to the
// two-tuple form D” (core.Expand, Figure 6), solve the flow-based linear
// relaxation LP 6-10, round the fractional solution, and re-route resources
// with an integral minimum flow (LP 11-13, solved combinatorially).
package approx

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/duration"
	"repro/internal/lp"
)

// Relaxation is the solved LP 6-10 (or its minimum-resource variant) over
// an expanded instance.
type Relaxation struct {
	Ex *core.Expanded
	// F is the fractional flow per expanded arc.
	F []float64
	// Value is the fractional flow out of the source.
	Value float64
	// Objective is the LP optimum: a lower bound on the optimal makespan
	// (makespan mode) or on the optimal resource usage (resource mode).
	Objective float64
	// EventTime is the LP's event time per expanded node.
	EventTime []float64
}

// edgeTwoTuple reports the two-tuple shape of an expanded arc: ok is false
// for single-tuple (constant) arcs, otherwise t0 > 0 is the zero-resource
// duration and r > 0 zeroes it.
func edgeTwoTuple(fn duration.Func) (t0, r int64, ok bool) {
	ts := fn.Tuples()
	if len(ts) == 1 {
		return ts[0].T, 0, false
	}
	if len(ts) != 2 || ts[1].T != 0 {
		panic(fmt.Sprintf("approx: arc is not in two-tuple form: %v", ts))
	}
	return ts[0].T, ts[1].R, true
}

// SolveMakespanLP solves the makespan relaxation: minimize the sink event
// time subject to linear durations, flow conservation and a resource
// budget.
func SolveMakespanLP(ex *core.Expanded, budget int64) (*Relaxation, error) {
	return SolveMakespanLPCtx(context.Background(), ex, budget)
}

// SolveMakespanLPCtx is SolveMakespanLP with cooperative cancellation of
// the underlying simplex iteration.
func SolveMakespanLPCtx(ctx context.Context, ex *core.Expanded, budget int64) (*Relaxation, error) {
	return solveRelaxation(ctx, ex, float64(budget), -1)
}

// SolveResourceLP solves the resource relaxation: minimize the flow out of
// the source subject to the sink event time being at most target.
func SolveResourceLP(ex *core.Expanded, target int64) (*Relaxation, error) {
	return SolveResourceLPCtx(context.Background(), ex, target)
}

// SolveResourceLPCtx is SolveResourceLP with cooperative cancellation of
// the underlying simplex iteration.
func SolveResourceLPCtx(ctx context.Context, ex *core.Expanded, target int64) (*Relaxation, error) {
	return solveRelaxation(ctx, ex, -1, float64(target))
}

func solveRelaxation(ctx context.Context, ex *core.Expanded, budget, target float64) (*Relaxation, error) {
	g := ex.G
	m, n := g.NumEdges(), g.NumNodes()
	// Variables: [0, m) flows, [m, m+n) event times.
	fVar := func(e int) int { return e }
	tVar := func(v int) int { return m + v }
	p := lp.New(m + n)

	for e := 0; e < m; e++ {
		ed := g.Edge(e)
		t0, r, two := edgeTwoTuple(ex.Fns[e])
		if two {
			// Flow beyond r buys nothing in the relaxation (Equation 6).
			p.AddConstraint(lp.LE, []lp.Term{{Var: fVar(e), Coef: 1}}, float64(r))
			// T_u + t0 (1 - f/r) <= T_v  (Equations 4 and 7).
			p.AddConstraint(lp.LE, []lp.Term{
				{Var: tVar(ed.From), Coef: 1},
				{Var: tVar(ed.To), Coef: -1},
				{Var: fVar(e), Coef: -float64(t0) / float64(r)},
			}, -float64(t0))
		} else {
			p.AddConstraint(lp.LE, []lp.Term{
				{Var: tVar(ed.From), Coef: 1},
				{Var: tVar(ed.To), Coef: -1},
			}, -float64(t0))
		}
	}
	// Flow conservation at internal nodes (Equation 8).
	for v := 0; v < n; v++ {
		if v == ex.Source || v == ex.Sink {
			continue
		}
		var terms []lp.Term
		for _, e := range g.Out(v) {
			terms = append(terms, lp.Term{Var: fVar(e), Coef: 1})
		}
		for _, e := range g.In(v) {
			terms = append(terms, lp.Term{Var: fVar(e), Coef: -1})
		}
		if terms != nil {
			p.AddConstraint(lp.EQ, terms, 0)
		}
	}
	// Source event time is zero.
	p.AddConstraint(lp.EQ, []lp.Term{{Var: tVar(ex.Source), Coef: 1}}, 0)

	var srcTerms []lp.Term
	for _, e := range g.Out(ex.Source) {
		srcTerms = append(srcTerms, lp.Term{Var: fVar(e), Coef: 1})
	}
	for _, e := range g.In(ex.Source) {
		srcTerms = append(srcTerms, lp.Term{Var: fVar(e), Coef: -1})
	}

	switch {
	case budget >= 0:
		// Minimum-makespan mode (Equations 9 and 10).
		p.AddConstraint(lp.LE, srcTerms, budget)
		p.SetObjective(tVar(ex.Sink), 1)
	case target >= 0:
		// Minimum-resource mode.
		p.AddConstraint(lp.LE, []lp.Term{{Var: tVar(ex.Sink), Coef: 1}}, target)
		for _, t := range srcTerms {
			p.SetObjective(t.Var, t.Coef)
		}
	default:
		return nil, fmt.Errorf("approx: neither budget nor target given")
	}

	sol, err := p.SolveCtx(ctx)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("approx: relaxation is %v", sol.Status)
	}
	rel := &Relaxation{
		Ex:        ex,
		F:         sol.X[:m],
		Objective: sol.Objective,
		EventTime: sol.X[m : m+n],
	}
	for _, t := range srcTerms {
		rel.Value += t.Coef * sol.X[t.Var]
	}
	return rel, nil
}

// Round applies the alpha threshold rounding of Section 3.1 to the
// fractional solution: a two-tuple arc whose LP duration lies in
// [0, alpha*t0) is rounded down to duration 0 (requiring its full resource
// r), everything else is rounded up to t0 (requiring none).  The returned
// slice is the per-arc integral resource requirement f'.
func (rel *Relaxation) Round(alpha float64) []int64 {
	lower := make([]int64, len(rel.F))
	for e := range rel.F {
		t0, r, two := edgeTwoTuple(rel.Ex.Fns[e])
		if !two || t0 == 0 {
			continue
		}
		lpDur := float64(t0) * (1 - rel.F[e]/float64(r))
		if lpDur < alpha*float64(t0)-1e-9 {
			lower[e] = r
		}
	}
	return lower
}

// JobFractional sums the fractional LP flow over the chains of each
// original arc (the r-hat of Section 3.3).
func (rel *Relaxation) JobFractional(orig *core.Instance) []float64 {
	out := make([]float64, orig.G.NumEdges())
	for e := 0; e < orig.G.NumEdges(); e++ {
		if id := rel.Ex.CopiedArc[e]; id >= 0 {
			continue // constant arcs use no resource
		}
		for _, link := range rel.Ex.Chains[e] {
			out[e] += rel.F[link.JobArc]
		}
	}
	return out
}

// JobRounded sums an integral per-expanded-arc requirement over the chains
// of each original arc (the r_j of Section 3.2).
func (rel *Relaxation) JobRounded(orig *core.Instance, lower []int64) []int64 {
	out := make([]int64, orig.G.NumEdges())
	for e := 0; e < orig.G.NumEdges(); e++ {
		if rel.Ex.CopiedArc[e] >= 0 {
			continue
		}
		for _, link := range rel.Ex.Chains[e] {
			out[e] += lower[link.JobArc]
		}
	}
	return out
}

// clampToBreakpoint lowers r to the largest breakpoint of fn that is <= r;
// requirements between breakpoints cost budget without reducing duration.
func clampToBreakpoint(fn duration.Func, r int64) int64 {
	var best int64
	for _, tp := range fn.Tuples() {
		if tp.R <= r {
			best = tp.R
		}
	}
	return best
}

// prevPow2 returns the largest power of two <= x, or 0 for x < 1.
func prevPow2(x int64) int64 {
	if x < 1 {
		return 0
	}
	return int64(1) << uint(math.Floor(math.Log2(float64(x))))
}

package duration

// Class detection: given the duration functions of an instance, decide
// which of the paper's Section 2 classes they all belong to, so a
// portfolio solver can dispatch to the approximation algorithm whose
// guarantee applies (KWay5 needs k-way splitting, Binary4 and
// BinaryBiCriteria need recursive binary splitting; BiCriteria accepts
// any non-increasing step function).
//
// Detection is structural, not nominal: a Step function whose breakpoints
// coincide with NewKWay(t0) counts as k-way.  This matters because
// instances loaded from JSON may serialize any function as explicit
// tuples, and the guarantee depends only on the tuple structure.

// tuplesEqual reports whether two canonical breakpoint lists coincide.
func tuplesEqual(a, b []Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Matches reports whether f belongs to the duration class named by kind
// (KindConst, KindKWay, KindBinary or KindStep).  Constant functions
// (a single breakpoint) are members of every class: they are the
// degenerate case of Equations 2 and 3 with no useful splitting, and
// every class contains them.
func Matches(f Func, kind string) bool {
	ts := f.Tuples()
	if len(ts) == 1 {
		return true
	}
	switch kind {
	case KindConst:
		return false // more than one breakpoint
	case KindKWay:
		return matchesKWay(ts)
	case KindBinary:
		// O(log t0) tuples; materializing the canonical list is cheap.
		return tuplesEqual(ts, NewRecursiveBinary(ts[0].T).Tuples())
	default:
		return kind == KindStep
	}
}

// matchesKWay reports whether ts equals the canonical k-way breakpoint
// list for t0 = ts[0].T.  The canonical list has O(sqrt t0) entries, so
// it is generated lazily and compared incrementally: a non-k-way step
// function is rejected after the matching prefix instead of paying the
// full construction (which matters when classifying JSON-loaded
// instances with large durations before any solving starts).
func matchesKWay(ts []Tuple) bool {
	t0 := ts[0].T
	i := 1
	lastT := t0
	for k := int64(2); k <= isqrt(t0); k++ {
		t := ceilDiv(t0, k) + k
		if t >= lastT {
			continue // the envelope drops non-improving tuples
		}
		if i >= len(ts) || ts[i] != (Tuple{R: k, T: t}) {
			return false
		}
		lastT = t
		i++
	}
	return i == len(ts)
}

// ClassOf returns the most specific class kind of a single function:
// KindConst for single-breakpoint functions, then KindBinary, KindKWay,
// and KindStep as the general fallback.
func ClassOf(f Func) string {
	if len(f.Tuples()) == 1 {
		return KindConst
	}
	for _, kind := range []string{KindBinary, KindKWay} {
		if Matches(f, kind) {
			return kind
		}
	}
	return KindStep
}

// Classify returns the most specific class kind covering every function:
// KindConst if all are constant, else KindBinary if all are recursive
// binary splitting (or constant), else KindKWay if all are k-way
// splitting (or constant), else KindStep.
func Classify(fns []Func) string {
	allConst, allKWay, allBinary := true, true, true
	for _, f := range fns {
		if allConst && len(f.Tuples()) > 1 {
			allConst = false
		}
		if allKWay && !Matches(f, KindKWay) {
			allKWay = false
		}
		if allBinary && !Matches(f, KindBinary) {
			allBinary = false
		}
		if !allKWay && !allBinary {
			return KindStep
		}
	}
	switch {
	case allConst:
		return KindConst
	case allBinary:
		return KindBinary
	case allKWay:
		return KindKWay
	default:
		return KindStep
	}
}

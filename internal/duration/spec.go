package duration

import (
	"fmt"
)

// Spec is the JSON-serializable description of a duration function.  Kind
// selects the class; T0 parameterizes "kway" and "binary"; Tuples
// parameterizes "step"; Constant functions use Kind "const" with T0 as the
// fixed duration.
type Spec struct {
	Kind   string  `json:"kind"`
	T0     int64   `json:"t0,omitempty"`
	Tuples []Tuple `json:"tuples,omitempty"`
}

// Kinds accepted by FromSpec.
const (
	KindConst  = "const"
	KindStep   = "step"
	KindKWay   = "kway"
	KindBinary = "binary"
)

// FromSpec instantiates the duration function a Spec describes.
func FromSpec(s Spec) (Func, error) {
	switch s.Kind {
	case KindConst:
		if s.T0 < 0 {
			return nil, fmt.Errorf("duration: const spec with negative T0 %d", s.T0)
		}
		return Constant(s.T0), nil
	case KindStep:
		return NewStep(s.Tuples)
	case KindKWay:
		return NewKWay(s.T0), nil
	case KindBinary:
		return NewRecursiveBinary(s.T0), nil
	default:
		return nil, fmt.Errorf("duration: unknown spec kind %q", s.Kind)
	}
}

// ToSpec produces the Spec describing f.  Unknown implementations of Func
// are serialized as explicit step functions, which preserves Eval exactly.
func ToSpec(f Func) Spec {
	switch v := f.(type) {
	case Constant:
		return Spec{Kind: KindConst, T0: int64(v)}
	case *KWay:
		return Spec{Kind: KindKWay, T0: v.T0()}
	case *RecursiveBinary:
		return Spec{Kind: KindBinary, T0: v.T0()}
	default:
		return Spec{Kind: KindStep, Tuples: append([]Tuple(nil), f.Tuples()...)}
	}
}

package duration

import (
	"fmt"
)

// Spec is the JSON-serializable description of a duration function.  Kind
// selects the class; T0 parameterizes "kway" and "binary"; Tuples
// parameterizes "step"; Constant functions use Kind "const" with T0 as the
// fixed duration.
type Spec struct {
	Kind   string  `json:"kind"`
	T0     int64   `json:"t0,omitempty"`
	Tuples []Tuple `json:"tuples,omitempty"`
}

// Kinds accepted by FromSpec.
const (
	KindConst  = "const"
	KindStep   = "step"
	KindKWay   = "kway"
	KindBinary = "binary"
)

// MaxWireKWayT0 caps the T0 a wire "kway" spec may carry.  NewKWay
// materializes floor(sqrt(T0)) breakpoints, so an unchecked 19-digit T0 in
// a 40-byte JSON document would demand gigabytes of tuples - a
// denial-of-service vector for any service decoding untrusted instances
// (found by FuzzCanonicalHash, which the allocation OOM-killed).  The cap
// still allows 4096 breakpoints per job, far beyond realistic cell
// in-degrees; "step" pays per tuple in document bytes and "binary" grows
// logarithmically, so neither needs a cap.
const MaxWireKWayT0 = 1 << 24

// FromSpec instantiates the duration function a Spec describes.
func FromSpec(s Spec) (Func, error) {
	switch s.Kind {
	case KindConst:
		if s.T0 < 0 {
			return nil, fmt.Errorf("duration: const spec with negative T0 %d", s.T0)
		}
		return Constant(s.T0), nil
	case KindStep:
		return NewStep(s.Tuples)
	case KindKWay:
		if s.T0 > MaxWireKWayT0 {
			return nil, fmt.Errorf("duration: kway spec T0 %d exceeds the wire cap %d (would materialize %d breakpoints)",
				s.T0, int64(MaxWireKWayT0), isqrt(s.T0))
		}
		return NewKWay(s.T0), nil
	case KindBinary:
		return NewRecursiveBinary(s.T0), nil
	default:
		return nil, fmt.Errorf("duration: unknown spec kind %q", s.Kind)
	}
}

// ToSpec produces the Spec describing f.  Unknown implementations of Func
// are serialized as explicit step functions, which preserves Eval exactly.
func ToSpec(f Func) Spec {
	switch v := f.(type) {
	case Constant:
		return Spec{Kind: KindConst, T0: int64(v)}
	case *KWay:
		return Spec{Kind: KindKWay, T0: v.T0()}
	case *RecursiveBinary:
		return Spec{Kind: KindBinary, T0: v.T0()}
	default:
		return Spec{Kind: KindStep, Tuples: append([]Tuple(nil), f.Tuples()...)}
	}
}

package duration

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"
)

func TestConstant(t *testing.T) {
	c := Constant(5)
	for _, r := range []int64{0, 1, 100} {
		if c.Eval(r) != 5 {
			t.Fatalf("Eval(%d) = %d; want 5", r, c.Eval(r))
		}
	}
	if got := c.Tuples(); len(got) != 1 || got[0] != (Tuple{0, 5}) {
		t.Fatalf("Tuples = %v", got)
	}
	if c.String() != "const{5}" {
		t.Fatalf("String = %q", c.String())
	}
}

func TestNewStepValidation(t *testing.T) {
	cases := []struct {
		name   string
		tuples []Tuple
		ok     bool
	}{
		{"empty", nil, false},
		{"nonzero first R", []Tuple{{1, 5}}, false},
		{"negative time", []Tuple{{0, -1}}, false},
		{"decreasing R", []Tuple{{0, 5}, {3, 2}, {2, 1}}, false},
		{"increasing T", []Tuple{{0, 5}, {2, 7}}, false},
		{"single", []Tuple{{0, 5}}, true},
		{"two", []Tuple{{0, 5}, {2, 1}}, true},
		{"plateau allowed in input", []Tuple{{0, 5}, {2, 5}, {3, 1}}, true},
	}
	for _, c := range cases {
		_, err := NewStep(c.tuples)
		if (err == nil) != c.ok {
			t.Errorf("%s: err = %v; want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestStepEnvelopeDropsPlateaus(t *testing.T) {
	s := MustStep(Tuple{0, 5}, Tuple{2, 5}, Tuple{3, 1})
	got := s.Tuples()
	if len(got) != 2 || got[0] != (Tuple{0, 5}) || got[1] != (Tuple{3, 1}) {
		t.Fatalf("Tuples = %v; want [{0 5} {3 1}]", got)
	}
}

func TestStepEval(t *testing.T) {
	s := MustStep(Tuple{0, 10}, Tuple{2, 6}, Tuple{5, 0})
	cases := map[int64]int64{0: 10, 1: 10, 2: 6, 3: 6, 4: 6, 5: 0, 99: 0}
	for r, want := range cases {
		if got := s.Eval(r); got != want {
			t.Errorf("Eval(%d) = %d; want %d", r, got, want)
		}
	}
}

// TestKWayMatchesEquation2 checks Eval against the closed form of
// Equation 2 pointwise.
func TestKWayMatchesEquation2(t *testing.T) {
	for _, t0 := range []int64{0, 1, 2, 3, 4, 9, 10, 16, 17, 100, 101, 1000} {
		f := NewKWay(t0)
		cap := isqrt(t0)
		for r := int64(0); r <= cap+5; r++ {
			want := equation2(t0, r, cap)
			if got := f.Eval(r); got != want {
				t.Fatalf("t0=%d: Eval(%d) = %d; want %d", t0, r, got, want)
			}
		}
	}
}

// equation2 is a literal transcription of Equation 2, made non-increasing
// by taking the running minimum over k' <= k (the canonical envelope; the
// raw formula ceil(t0/k)+k is already non-increasing for k <= sqrt(t0) up
// to ceiling effects).
func equation2(t0, k, cap int64) int64 {
	best := t0
	if k > cap {
		k = cap
	}
	for kk := int64(2); kk <= k; kk++ {
		if v := (t0+kk-1)/kk + kk; v < best {
			best = v
		}
	}
	return best
}

func TestKWayExamples(t *testing.T) {
	f := NewKWay(100)
	if f.Eval(0) != 100 || f.Eval(1) != 100 {
		t.Fatal("k in {0,1} must not improve duration")
	}
	if got := f.Eval(10); got != 20 { // ceil(100/10)+10
		t.Fatalf("Eval(10) = %d; want 20", got)
	}
	if got := f.Eval(1000); got != 20 { // saturates at k = sqrt(100)
		t.Fatalf("Eval(1000) = %d; want 20", got)
	}
	if f.T0() != 100 {
		t.Fatalf("T0 = %d", f.T0())
	}
}

// TestBinaryMatchesEquation3 checks Eval against Equation 3's closed form
// (with the i >= 1 reading; see the type comment).
func TestBinaryMatchesEquation3(t *testing.T) {
	for _, t0 := range []int64{0, 1, 2, 3, 4, 5, 8, 9, 16, 64, 100, 1000} {
		f := NewRecursiveBinary(t0)
		var k int64
		if t0 >= 2 {
			k = int64(math.Floor(math.Log2(float64(t0)) - log2log2e))
		}
		for r := int64(0); r <= 4096; r = r*2 + 1 {
			want := equation3(t0, r, k)
			if got := f.Eval(r); got != want {
				t.Fatalf("t0=%d: Eval(%d) = %d; want %d", t0, r, got, want)
			}
		}
	}
}

// equation3 evaluates the running-minimum envelope of Equation 3.
func equation3(t0, r, k int64) int64 {
	best := t0
	for i := int64(1); i <= k; i++ {
		if (int64(1) << uint(i)) > r {
			break
		}
		if v := ceilDiv(t0, 1<<uint(i)) + i + 1; v < best {
			best = v
		}
	}
	return best
}

func TestBinaryExamples(t *testing.T) {
	// Figure 2: a height-2 reducer applies n = 8 updates in
	// ceil(8/4) + 2 + 1 = 5 time using 4 units of space.
	f := NewRecursiveBinary(8)
	if got := f.Eval(4); got != 5 {
		t.Fatalf("Eval(4) = %d; want 5", got)
	}
	// r = 1 never helps; r in [2^i, 2^(i+1)) behaves like 2^i.
	if f.Eval(1) != 8 {
		t.Fatal("Eval(1) should equal t0")
	}
	if f.Eval(2) != f.Eval(3) {
		t.Fatal("Eval(2) and Eval(3) should match (same height)")
	}
	// Small t0 where no height helps: t0 = 4 has ceil(4/2)+2 = 4 = t0.
	small := NewRecursiveBinary(4)
	if len(small.Tuples()) != 1 {
		t.Fatalf("t0=4 should have no useful breakpoints, got %v", small.Tuples())
	}
}

func TestBinaryMaxHeight(t *testing.T) {
	f := NewRecursiveBinary(1000)
	h := f.MaxHeight()
	if h < 1 {
		t.Fatalf("MaxHeight = %d; want >= 1", h)
	}
	// Beyond the max height no improvement occurs.
	if f.Eval(1<<uint(h)) != f.Eval(1<<uint(h+3)) {
		t.Fatal("duration should saturate beyond MaxHeight")
	}
	if NewRecursiveBinary(2).MaxHeight() != 0 {
		t.Fatal("t0=2 has no useful reducer")
	}
}

// Property: every implementation is non-increasing and consistent with its
// own tuples.
func TestFuncsNonIncreasingProperty(t *testing.T) {
	check := func(t0u uint16, r1u, r2u uint16) bool {
		t0 := int64(t0u % 2000)
		r1, r2 := int64(r1u%1024), int64(r2u%1024)
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		for _, f := range []Func{NewKWay(t0), NewRecursiveBinary(t0)} {
			if f.Eval(r1) < f.Eval(r2) {
				return false
			}
			if f.Eval(0) != t0 {
				return false
			}
			tuples := f.Tuples()
			for i, tp := range tuples {
				if f.Eval(tp.R) != tp.T {
					return false
				}
				if i > 0 && (tp.R <= tuples[i-1].R || tp.T >= tuples[i-1].T) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIsqrt(t *testing.T) {
	for x := int64(0); x < 2000; x++ {
		r := isqrt(x)
		if r*r > x || (r+1)*(r+1) <= x {
			t.Fatalf("isqrt(%d) = %d", x, r)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	fns := []Func{
		Constant(7),
		MustStep(Tuple{0, 9}, Tuple{3, 2}),
		NewKWay(50),
		NewRecursiveBinary(64),
	}
	for _, f := range fns {
		spec := ToSpec(f)
		data, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		var back Spec
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		g, err := FromSpec(back)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		for r := int64(0); r <= 70; r++ {
			if f.Eval(r) != g.Eval(r) {
				t.Fatalf("%s: round trip differs at r=%d", f, r)
			}
		}
	}
}

func TestFromSpecErrors(t *testing.T) {
	if _, err := FromSpec(Spec{Kind: "nope"}); err == nil {
		t.Fatal("want error for unknown kind")
	}
	if _, err := FromSpec(Spec{Kind: KindConst, T0: -1}); err == nil {
		t.Fatal("want error for negative const")
	}
	if _, err := FromSpec(Spec{Kind: KindStep}); err == nil {
		t.Fatal("want error for empty step")
	}
}

func TestHelpers(t *testing.T) {
	f := MustStep(Tuple{0, 9}, Tuple{4, 2})
	if MaxUsefulResource(f) != 4 {
		t.Fatalf("MaxUsefulResource = %d", MaxUsefulResource(f))
	}
	if MinTime(f) != 2 {
		t.Fatalf("MinTime = %d", MinTime(f))
	}
}

// TestWireKWayCap locks the DoS hardening found by FuzzCanonicalHash: a
// tiny wire document must not be able to materialize a gigabyte of
// breakpoints through an astronomically large kway T0.
func TestWireKWayCap(t *testing.T) {
	if _, err := FromSpec(Spec{Kind: KindKWay, T0: MaxWireKWayT0 + 1}); err == nil {
		t.Fatal("kway spec beyond the wire cap was accepted")
	}
	fn, err := FromSpec(Spec{Kind: KindKWay, T0: MaxWireKWayT0})
	if err != nil {
		t.Fatalf("kway spec at the cap rejected: %v", err)
	}
	if got := fn.Eval(0); got != MaxWireKWayT0 {
		t.Fatalf("Eval(0) = %d", got)
	}
}

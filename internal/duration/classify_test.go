package duration

import "testing"

func TestClassOf(t *testing.T) {
	tests := []struct {
		name string
		fn   Func
		want string
	}{
		{"constant", Constant(7), KindConst},
		{"kway", NewKWay(30), KindKWay},
		{"binary", NewRecursiveBinary(32), KindBinary},
		{"step", MustStep(Tuple{R: 0, T: 9}, Tuple{R: 1, T: 4}), KindStep},
		{"saturating-kway", NewKWay(3), KindConst}, // no useful split
	}
	for _, tc := range tests {
		if got := ClassOf(tc.fn); got != tc.want {
			t.Errorf("%s: ClassOf = %q; want %q", tc.name, got, tc.want)
		}
	}
}

func TestClassOfIsStructural(t *testing.T) {
	// A Step whose breakpoints coincide with NewKWay(30) must be detected
	// as k-way: JSON round-trips may serialize any function as tuples.
	asStep, err := NewStep(NewKWay(30).Tuples())
	if err != nil {
		t.Fatal(err)
	}
	if got := ClassOf(asStep); got != KindKWay {
		t.Fatalf("ClassOf(step-encoded kway) = %q; want %q", got, KindKWay)
	}
	asStep, err = NewStep(NewRecursiveBinary(64).Tuples())
	if err != nil {
		t.Fatal(err)
	}
	if got := ClassOf(asStep); got != KindBinary {
		t.Fatalf("ClassOf(step-encoded binary) = %q; want %q", got, KindBinary)
	}
}

func TestClassify(t *testing.T) {
	step := MustStep(Tuple{R: 0, T: 9}, Tuple{R: 1, T: 4})
	tests := []struct {
		name string
		fns  []Func
		want string
	}{
		{"all-kway", []Func{NewKWay(30), NewKWay(50)}, KindKWay},
		{"kway-with-const", []Func{NewKWay(30), Constant(0)}, KindKWay},
		{"all-binary", []Func{NewRecursiveBinary(32), NewRecursiveBinary(64)}, KindBinary},
		{"mixed-classes", []Func{NewKWay(30), NewRecursiveBinary(32)}, KindStep},
		{"general", []Func{step, NewKWay(30)}, KindStep},
		{"all-const", []Func{Constant(3), Constant(0)}, KindConst},
	}
	for _, tc := range tests {
		if got := Classify(tc.fns); got != tc.want {
			t.Errorf("%s: Classify = %q; want %q", tc.name, got, tc.want)
		}
	}
}

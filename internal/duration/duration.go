// Package duration implements the three duration-function classes of
// Das et al. (SPAA 2019), Section 2: general non-increasing step functions
// (Equation 1), k-way splitting (Equation 2), and recursive binary splitting
// (Equation 3).
//
// A duration function maps an integral amount of resource r >= 0 allocated
// to a job to the (integral) time the job then takes.  All functions here
// are non-increasing in r.  Every function exposes its canonical
// resource-time tuples <r_i, t_i>: the minimal set of breakpoints with
// r_1 = 0, r_i strictly increasing and t_i strictly decreasing, such that
// Eval(r) = t_i for the largest i with r_i <= r.  The tuples are the input
// to the LP relaxation of Section 3.1.
package duration

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Tuple is one resource-time breakpoint <R, T>: with R units of resource the
// job completes in T time.
type Tuple struct {
	R int64 `json:"r"`
	T int64 `json:"t"`
}

// Func is a non-increasing duration function of an integral resource amount.
type Func interface {
	// Eval returns the job duration when r units of resource are used.
	Eval(r int64) int64
	// Tuples returns the canonical breakpoints (see package comment).
	// The returned slice must not be modified.
	Tuples() []Tuple
	// String returns a compact human-readable description.
	String() string
}

// envelope normalizes a breakpoint list: it sorts by R (inputs here are
// already sorted), keeps only strictly time-improving tuples, and guarantees
// the first tuple has R = 0.  The result is the minimal representation of
// the lower step envelope.
func envelope(in []Tuple) []Tuple {
	out := make([]Tuple, 0, len(in))
	for _, tp := range in {
		if len(out) == 0 {
			out = append(out, tp)
			continue
		}
		last := out[len(out)-1]
		if tp.R == last.R {
			if tp.T < last.T {
				out[len(out)-1] = tp
			}
			continue
		}
		if tp.T < last.T {
			out = append(out, tp)
		}
	}
	return out
}

func evalTuples(tuples []Tuple, r int64) int64 {
	// Tuples are few (typically O(log t0) or O(sqrt t0)); linear scan is
	// faster than binary search at these sizes and trivially correct.
	t := tuples[0].T
	for _, tp := range tuples[1:] {
		if tp.R > r {
			break
		}
		t = tp.T
	}
	return t
}

func tuplesString(kind string, tuples []Tuple) string {
	var b strings.Builder
	b.WriteString(kind)
	b.WriteByte('{')
	for i, tp := range tuples {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "<%d,%d>", tp.R, tp.T)
	}
	b.WriteByte('}')
	return b.String()
}

// Constant is a duration function that ignores resources entirely (a job
// with a single resource-time tuple <0, T>).  Dummy arcs in the
// activity-on-arc transformation use Constant(0).
type Constant int64

// Eval implements Func.
func (c Constant) Eval(r int64) int64 { return int64(c) }

// Tuples implements Func.
func (c Constant) Tuples() []Tuple { return []Tuple{{R: 0, T: int64(c)}} }

// String implements Func.
func (c Constant) String() string { return fmt.Sprintf("const{%d}", int64(c)) }

// Step is a general non-increasing step function given by explicit
// resource-time tuples (Equation 1).
type Step struct {
	tuples []Tuple
}

// NewStep builds a Step from breakpoints.  The input must be non-empty,
// start at R = 0, have strictly increasing R and non-increasing T; tuples
// that do not strictly improve T are dropped (they are redundant under
// Equation 1).  Negative resources or times are rejected.
func NewStep(tuples []Tuple) (*Step, error) {
	if len(tuples) == 0 {
		return nil, errors.New("duration: step function needs at least one tuple")
	}
	if tuples[0].R != 0 {
		return nil, fmt.Errorf("duration: first tuple must have R = 0, got R = %d", tuples[0].R)
	}
	for i, tp := range tuples {
		if tp.R < 0 || tp.T < 0 {
			return nil, fmt.Errorf("duration: tuple %d is negative: %+v", i, tp)
		}
		if i > 0 {
			if tp.R <= tuples[i-1].R {
				return nil, fmt.Errorf("duration: tuple resources must strictly increase (tuple %d)", i)
			}
			if tp.T > tuples[i-1].T {
				return nil, fmt.Errorf("duration: tuple times must be non-increasing (tuple %d)", i)
			}
		}
	}
	return &Step{tuples: envelope(tuples)}, nil
}

// MustStep is NewStep that panics on error; intended for literals in tests
// and gadget constructions.
func MustStep(tuples ...Tuple) *Step {
	s, err := NewStep(tuples)
	if err != nil {
		panic(err)
	}
	return s
}

// Eval implements Func.
func (s *Step) Eval(r int64) int64 { return evalTuples(s.tuples, r) }

// Tuples implements Func.
func (s *Step) Tuples() []Tuple { return s.tuples }

// String implements Func.
func (s *Step) String() string { return tuplesString("step", s.tuples) }

// isqrt returns floor(sqrt(x)) for x >= 0.
func isqrt(x int64) int64 {
	if x < 0 {
		return 0
	}
	r := int64(math.Sqrt(float64(x)))
	for r*r > x {
		r--
	}
	for (r+1)*(r+1) <= x {
		r++
	}
	return r
}

// KWay is the k-way splitting duration function of Equation 2 for a job
// whose zero-resource duration is T0 (in the race application, T0 is the
// in-degree of the memory cell).  With k units of extra space,
// 2 <= k <= floor(sqrt(T0)), the writes are split across k cells and the
// duration becomes ceil(T0/k) + k; beyond floor(sqrt(T0)) more space does
// not help.
type KWay struct {
	t0     int64
	tuples []Tuple
}

// NewKWay builds the k-way splitting function for zero-resource duration t0.
func NewKWay(t0 int64) *KWay {
	if t0 < 0 {
		t0 = 0
	}
	raw := []Tuple{{R: 0, T: t0}}
	for k := int64(2); k <= isqrt(t0); k++ {
		raw = append(raw, Tuple{R: k, T: ceilDiv(t0, k) + k})
	}
	return &KWay{t0: t0, tuples: envelope(raw)}
}

// T0 returns the zero-resource duration.
func (f *KWay) T0() int64 { return f.t0 }

// Eval implements Func.  It matches Equation 2: values of r between
// breakpoints round down to the previous breakpoint, and r beyond
// floor(sqrt(T0)) saturates.
func (f *KWay) Eval(r int64) int64 { return evalTuples(f.tuples, r) }

// Tuples implements Func.
func (f *KWay) Tuples() []Tuple { return f.tuples }

// String implements Func.
func (f *KWay) String() string { return fmt.Sprintf("kway{t0=%d}", f.t0) }

// log2log2e = log2(log2(e)); the paper caps the useful reducer height at
// k = floor(log2 t0 - log2 log2 e), the maximizer of Equation 3.
const log2log2e = 0.5287663729448977

// RecursiveBinary is the recursive binary splitting duration function of
// Equation 3 for a job with zero-resource duration T0.  With 2^i units of
// space (a binary reducer with 2^i leaves, Figure 2), the duration becomes
// ceil(T0/2^i) + i + 1 for 1 <= i <= K, K = floor(log2 T0 - log2 log2 e).
//
// Note on the paper text: Equation 3 writes the range as 2 <= i <= k, but
// Section 3.3 and the height-1 reducer of Figure 2 (time ceil(n/2) + 2) use
// the same formula at i = 1; we therefore include i = 1, which matches the
// tuple lists used throughout Sections 3.3 and 4.2.
type RecursiveBinary struct {
	t0     int64
	tuples []Tuple
}

// NewRecursiveBinary builds the recursive binary splitting function for
// zero-resource duration t0.
func NewRecursiveBinary(t0 int64) *RecursiveBinary {
	if t0 < 0 {
		t0 = 0
	}
	raw := []Tuple{{R: 0, T: t0}}
	if t0 >= 2 {
		k := int64(math.Floor(math.Log2(float64(t0)) - log2log2e))
		for i := int64(1); i <= k; i++ {
			raw = append(raw, Tuple{R: 1 << uint(i), T: ceilDiv(t0, 1<<uint(i)) + i + 1})
		}
	}
	return &RecursiveBinary{t0: t0, tuples: envelope(raw)}
}

// T0 returns the zero-resource duration.
func (f *RecursiveBinary) T0() int64 { return f.t0 }

// MaxHeight returns the largest reducer height represented by a breakpoint,
// i.e. the height beyond which the paper's analysis shows no improvement.
func (f *RecursiveBinary) MaxHeight() int64 {
	last := f.tuples[len(f.tuples)-1].R
	var h int64
	for (int64(1) << uint(h+1)) <= last {
		h++
	}
	if last < 2 {
		return 0
	}
	return h
}

// Eval implements Func: r in [2^i, 2^(i+1)) yields the height-i duration,
// and r beyond the last breakpoint saturates (Equation 3).
func (f *RecursiveBinary) Eval(r int64) int64 { return evalTuples(f.tuples, r) }

// Tuples implements Func.
func (f *RecursiveBinary) Tuples() []Tuple { return f.tuples }

// String implements Func.
func (f *RecursiveBinary) String() string { return fmt.Sprintf("binary{t0=%d}", f.t0) }

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// MaxUsefulResource returns the largest resource amount that still changes
// the value of f, i.e. the R of the last breakpoint.
func MaxUsefulResource(f Func) int64 {
	ts := f.Tuples()
	return ts[len(ts)-1].R
}

// MinTime returns the duration of f under unlimited resources.
func MinTime(f Func) int64 {
	ts := f.Tuples()
	return ts[len(ts)-1].T
}

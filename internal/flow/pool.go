package flow

import (
	"sync"

	"repro/internal/dag"
)

// Cross-solve reuse of min-flow networks.
//
// A MinFlowSolver's transformed Dinic network depends only on the graph's
// TOPOLOGY (node count, arc count, per-arc endpoints): Solve rewrites
// every capacity — forward and reverse, graph arcs, auxiliary arcs and the
// return arc — before running, so no state survives from one solve to the
// next and a network built for one graph is exactly the network another
// topology-identical graph needs.  PR 2 exploited this WITHIN one search
// (each branch-and-bound worker reuses its network across nodes);
// SolverPool lifts the same pattern ACROSS solves: a service solving many
// near-identical instances (the warm-start regime of the durable store)
// keeps a few constructed networks around and rebinds them to each new
// topology-matching instance instead of rebuilding nodes, arc pairs and
// adjacency lists from scratch.

// Fits reports whether the solver's transformed network can serve flows on
// g from s to t: identical node and arc counts, identical per-arc
// endpoints, and the same terminals.  O(m).
func (ms *MinFlowSolver) Fits(g *dag.Graph, s, t int) bool {
	if ms.s != s || ms.t != t {
		return false
	}
	og := ms.g
	if og.NumNodes() != g.NumNodes() || og.NumEdges() != g.NumEdges() {
		return false
	}
	for e := 0; e < g.NumEdges(); e++ {
		a, b := og.Edge(e), g.Edge(e)
		if a.From != b.From || a.To != b.To {
			return false
		}
	}
	return true
}

// Rebind points the solver at g, which must satisfy Fits; subsequent
// Solve calls compute flows on g.  The network itself is untouched — only
// the graph reference changes.
func (ms *MinFlowSolver) Rebind(g *dag.Graph) {
	ms.g = g
}

// SolverPool is a bounded free list of MinFlowSolvers for cross-solve
// network reuse.  Get returns a network matching the requested topology
// (rebound to the new graph) or builds a fresh one; Put returns a network
// for later reuse, dropping it when the pool is full.  Reuse never changes
// any Solve result — the network is topology-only state and every
// capacity is rewritten per solve — so pooling affects allocation and wall
// time, not answers.  Safe for concurrent use.
type SolverPool struct {
	mu      sync.Mutex
	free    []*MinFlowSolver
	cap     int
	hits    int64
	misses  int64
	dropped int64
}

// defaultPoolCap bounds a zero-configured pool: enough for one pool of
// branch-and-bound workers to park their networks between solves without
// retaining unbounded memory for a heterogeneous instance stream.
const defaultPoolCap = 16

// NewSolverPool builds a pool retaining at most capacity networks;
// capacity <= 0 uses a small default.
func NewSolverPool(capacity int) *SolverPool {
	if capacity <= 0 {
		capacity = defaultPoolCap
	}
	return &SolverPool{cap: capacity}
}

// Get returns a MinFlowSolver for flows on g from s to t, reusing a pooled
// network when one fits the topology.  The caller owns the returned solver
// until it gives it back with Put.
func (p *SolverPool) Get(g *dag.Graph, s, t int) *MinFlowSolver {
	if p == nil {
		return NewMinFlowSolver(g, s, t)
	}
	p.mu.Lock()
	for i := len(p.free) - 1; i >= 0; i-- {
		ms := p.free[i]
		if ms.Fits(g, s, t) {
			p.free = append(p.free[:i], p.free[i+1:]...)
			p.hits++
			p.mu.Unlock()
			ms.Rebind(g)
			return ms
		}
	}
	p.misses++
	p.mu.Unlock()
	return NewMinFlowSolver(g, s, t)
}

// Put returns a solver to the pool for later reuse; a full pool drops it.
// The caller must not use ms afterwards.
func (p *SolverPool) Put(ms *MinFlowSolver) {
	if p == nil || ms == nil {
		return
	}
	p.mu.Lock()
	if len(p.free) < p.cap {
		p.free = append(p.free, ms)
	} else {
		p.dropped++
	}
	p.mu.Unlock()
}

// Stats reports pool effectiveness: topology-matched reuses, fresh builds,
// and networks dropped because the pool was full.
func (p *SolverPool) Stats() (hits, misses, dropped int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses, p.dropped
}

package flow

import (
	"testing"

	"repro/internal/dag"
)

// poolGraph builds s -> a -> t plus s -> t.
func poolGraph() (*dag.Graph, int, int) {
	g := dag.New()
	s := g.AddNode("s")
	a := g.AddNode("a")
	t := g.AddNode("t")
	g.AddEdge(s, a)
	g.AddEdge(a, t)
	g.AddEdge(s, t)
	return g, s, t
}

func TestSolverPoolReusesMatchingTopology(t *testing.T) {
	g1, s, tt := poolGraph()
	g2, _, _ := poolGraph() // same topology, distinct graph value
	p := NewSolverPool(4)

	ms1 := p.Get(g1, s, tt)
	r1, err := ms1.Solve([]int64{2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	v1 := r1.Value
	p.Put(ms1)

	ms2 := p.Get(g2, s, tt)
	if ms2 != ms1 {
		t.Fatal("pool did not reuse the topology-matched network")
	}
	r2, err := ms2.Solve([]int64{2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Value != v1 {
		t.Fatalf("reused network changed the answer: %d vs %d", r2.Value, v1)
	}
	// The reused solve must agree with a fresh solver on fresh state.
	fresh, err := NewMinFlowSolver(g2, s, tt).Solve([]int64{2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Value != fresh.Value {
		t.Fatalf("pooled %d != fresh %d", r2.Value, fresh.Value)
	}
	for e := range fresh.EdgeFlow {
		if r2.EdgeFlow[e] != fresh.EdgeFlow[e] {
			t.Fatalf("edge %d: pooled flow %d != fresh %d", e, r2.EdgeFlow[e], fresh.EdgeFlow[e])
		}
	}
	p.Put(ms2)

	// A different topology must not match.
	g3 := dag.New()
	s3 := g3.AddNode("s")
	t3 := g3.AddNode("t")
	g3.AddEdge(s3, t3)
	ms3 := p.Get(g3, s3, t3)
	if ms3 == ms1 {
		t.Fatal("pool reused a network across different topologies")
	}

	hits, misses, _ := p.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("stats: hits=%d misses=%d, want 1/2", hits, misses)
	}
}

func TestSolverPoolBounded(t *testing.T) {
	g, s, tt := poolGraph()
	p := NewSolverPool(1)
	a := p.Get(g, s, tt)
	b := p.Get(g, s, tt)
	p.Put(a)
	p.Put(b) // over capacity: dropped
	if _, _, dropped := p.Stats(); dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
}

func TestNilPoolStillWorks(t *testing.T) {
	g, s, tt := poolGraph()
	var p *SolverPool
	ms := p.Get(g, s, tt)
	if _, err := ms.Solve([]int64{1, 1, 0}); err != nil {
		t.Fatal(err)
	}
	p.Put(ms) // must not panic
}

// Package flow implements integral network flow: Dinic's max-flow algorithm
// and, on top of it, minimum flow with per-edge lower bounds.
//
// Min-flow is the combinatorial engine behind Section 3.1 of Das et al.
// (SPAA 2019): after LP rounding yields an integral resource requirement
// f'_e on every arc, the total resource budget is minimized by computing a
// minimum source-to-sink flow whose value on every arc is at least f'_e
// (LP 11-13 in the paper, which has integral optima).  The returned flow is
// integral, certifying Lemma 3.3.
package flow

import (
	"errors"
	"fmt"

	"repro/internal/dag"
)

// Dinic is a max-flow network over dense integer node IDs.  Arcs are added
// in pairs (forward + residual).  The zero value is not usable; construct
// with NewDinic.
type Dinic struct {
	n     int
	to    []int
	cap   []int64
	head  [][]int // node -> arc indices
	level []int
	iter  []int
	queue []int // BFS scratch, reused across phases
}

// NewDinic returns an empty network with n nodes.
func NewDinic(n int) *Dinic {
	return &Dinic{
		n:     n,
		head:  make([][]int, n),
		level: make([]int, n),
		iter:  make([]int, n),
		queue: make([]int, 0, n),
	}
}

// AddArc adds a directed arc u -> v with the given capacity and returns its
// arc index.  The residual arc is the returned index XOR 1.
func (d *Dinic) AddArc(u, v int, capacity int64) int {
	if capacity < 0 {
		panic(fmt.Sprintf("flow: negative capacity %d", capacity))
	}
	id := len(d.to)
	d.to = append(d.to, v, u)
	d.cap = append(d.cap, capacity, 0)
	d.head[u] = append(d.head[u], id)
	d.head[v] = append(d.head[v], id+1)
	return id
}

// Flow reports the amount currently pushed along arc id (the capacity that
// has moved to its residual).
func (d *Dinic) Flow(id int) int64 { return d.cap[id^1] }

// SetCap overrides the remaining capacity of arc id; used to freeze
// auxiliary arcs between phases of the lower-bound transformation.
func (d *Dinic) SetCap(id int, capacity int64) { d.cap[id] = capacity }

func (d *Dinic) bfs(s, t int) bool {
	for i := range d.level {
		d.level[i] = -1
	}
	queue := append(d.queue[:0], s)
	d.level[s] = 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, id := range d.head[v] {
			if d.cap[id] > 0 && d.level[d.to[id]] < 0 {
				d.level[d.to[id]] = d.level[v] + 1
				queue = append(queue, d.to[id])
			}
		}
	}
	return d.level[t] >= 0
}

func (d *Dinic) dfs(v, t int, f int64) int64 {
	if v == t {
		return f
	}
	for ; d.iter[v] < len(d.head[v]); d.iter[v]++ {
		id := d.head[v][d.iter[v]]
		w := d.to[id]
		if d.cap[id] <= 0 || d.level[w] != d.level[v]+1 {
			continue
		}
		pushed := f
		if d.cap[id] < pushed {
			pushed = d.cap[id]
		}
		if got := d.dfs(w, t, pushed); got > 0 {
			d.cap[id] -= got
			d.cap[id^1] += got
			return got
		}
	}
	return 0
}

const inf = int64(1) << 60

// MaxFlow runs Dinic's algorithm from s to t and returns the max-flow
// value.  It may be called repeatedly (e.g. after modifying capacities);
// each call augments the current flow.
//
// s == t returns 0: a degenerate query, but one that arises naturally -
// the min-flow reduction runs a t-to-s cancellation phase, and a
// single-node instance (source == sink, no arcs) is wire-legal.  Without
// the guard the DFS would "augment" an infinite-capacity empty path
// forever (found by FuzzCanonicalHash).
func (d *Dinic) MaxFlow(s, t int) int64 {
	if s == t {
		return 0
	}
	var total int64
	for d.bfs(s, t) {
		for i := range d.iter {
			d.iter[i] = 0
		}
		for {
			f := d.dfs(s, t, inf)
			if f == 0 {
				break
			}
			total += f
		}
	}
	return total
}

// Result is an integral flow on a DAG's edges.
type Result struct {
	// EdgeFlow[e] is the flow on edge e of the input graph.
	EdgeFlow []int64
	// Value is the net flow out of the source.
	Value int64
}

// ErrInfeasible is returned when no flow satisfies the lower bounds; with a
// validated single-source single-sink DAG this cannot happen (every edge
// lies on a source-to-sink path), so seeing it indicates a malformed input.
var ErrInfeasible = errors.New("flow: lower bounds are infeasible")

func errBoundCount(got, want int) error {
	return fmt.Errorf("flow: got %d lower bounds for %d edges", got, want)
}

func errNegativeBound(e int) error {
	return fmt.Errorf("flow: negative lower bound on edge %d", e)
}

// MinFlow computes a minimum-value integral s-to-t flow on g subject to
// EdgeFlow[e] >= lower[e] for every edge, with no upper capacities (the
// paper's model places no caps on how much resource an arc may carry).
//
// The algorithm is the textbook two-phase reduction: (1) find any feasible
// flow via a super-source/super-sink max-flow with a t->s return arc;
// (2) cancel as much of the return flow as possible by running max-flow
// from t to s in the residual network.  Both phases are integral, so the
// result is integral, matching the integrality argument of Lemma 3.3.
//
// MinFlow builds the transformed network from scratch on every call; for
// repeated solves on one graph use MinFlowSolver, which reuses it.
func MinFlow(g *dag.Graph, lower []int64, s, t int) (Result, error) {
	res, err := NewMinFlowSolver(g, s, t).Solve(lower)
	if err != nil {
		return Result{}, err
	}
	// The solver owns its EdgeFlow buffer; hand the caller a private copy
	// to keep MinFlow's historical contract.
	res.EdgeFlow = append([]int64(nil), res.EdgeFlow...)
	return res, nil
}

// Conserved checks that f is a valid s-to-t flow on g: non-negative, with
// net outflow zero at every internal node, and returns the flow value.
func Conserved(g *dag.Graph, f []int64, s, t int) (int64, error) {
	if len(f) != g.NumEdges() {
		return 0, fmt.Errorf("flow: got %d flows for %d edges", len(f), g.NumEdges())
	}
	net := make([]int64, g.NumNodes())
	for e := 0; e < g.NumEdges(); e++ {
		if f[e] < 0 {
			return 0, fmt.Errorf("flow: negative flow on edge %d", e)
		}
		ed := g.Edge(e)
		net[ed.From] -= f[e]
		net[ed.To] += f[e]
	}
	for v := range net {
		if v == s || v == t {
			continue
		}
		if net[v] != 0 {
			return 0, fmt.Errorf("flow: conservation violated at node %d (net %d)", v, net[v])
		}
	}
	if -net[s] != net[t] {
		return 0, fmt.Errorf("flow: source outflow %d != sink inflow %d", -net[s], net[t])
	}
	return -net[s], nil
}

package flow

import "repro/internal/dag"

// MinFlowSolver computes minimum flows with per-edge lower bounds on one
// fixed graph repeatedly, reusing a single transformed network across
// solves.  The branch-and-bound search in internal/exact calls MinFlow at
// every node with the same graph and only slightly different lower bounds;
// rebuilding the Dinic network (nodes, arc pairs, adjacency lists) each
// time dominated the allocation profile.  A MinFlowSolver builds the
// super-source/super-sink transformation once and each Solve only rewrites
// arc capacities, which touches no allocator at all.
//
// The structural trick that makes the network reusable is to add the
// auxiliary ss->v and v->tt arcs for *every* node up front, instead of only
// for nodes whose excess has the matching sign: an arc whose capacity is
// set to zero is invisible to Dinic's BFS/DFS, so per-solve sign changes in
// the node excesses are handled purely by capacity rewrites.
//
// A MinFlowSolver is NOT safe for concurrent use; give each worker its own
// (they share nothing once constructed).
type MinFlowSolver struct {
	g    *dag.Graph
	s, t int

	d         *Dinic
	arcOf     []int // per graph edge: forward arc index in d
	ssArc     []int // per node: ss->v auxiliary arc
	ttArc     []int // per node: v->tt auxiliary arc
	returnArc int   // t->s arc closing the circulation

	excess   []int64 // per-solve scratch
	edgeFlow []int64 // result buffer, reused across solves
}

// NewMinFlowSolver builds the reusable transformed network for g with flow
// from s to t.  The graph must not gain nodes or edges afterwards.
func NewMinFlowSolver(g *dag.Graph, s, t int) *MinFlowSolver {
	n, m := g.NumNodes(), g.NumEdges()
	ss, tt := n, n+1
	d := NewDinic(n + 2)
	ms := &MinFlowSolver{
		g: g, s: s, t: t, d: d,
		arcOf:    make([]int, m),
		ssArc:    make([]int, n),
		ttArc:    make([]int, n),
		excess:   make([]int64, n),
		edgeFlow: make([]int64, m),
	}
	for e := 0; e < m; e++ {
		ed := g.Edge(e)
		ms.arcOf[e] = d.AddArc(ed.From, ed.To, 0)
	}
	for v := 0; v < n; v++ {
		ms.ssArc[v] = d.AddArc(ss, v, 0)
		ms.ttArc[v] = d.AddArc(v, tt, 0)
	}
	ms.returnArc = d.AddArc(t, s, 0)
	return ms
}

// Solve computes a minimum-value integral s-to-t flow subject to
// EdgeFlow[e] >= lower[e], exactly like MinFlow, but against the reused
// network.  The returned Result's EdgeFlow slice is owned by the solver
// and is only valid until the next Solve call; callers that keep a result
// must copy it.
//
//rt:hotpath — once per branch-and-bound node; everything reuses the transformed network built by NewMinFlowSolver.
func (ms *MinFlowSolver) Solve(lower []int64) (Result, error) {
	m := ms.g.NumEdges()
	if len(lower) != m {
		return Result{}, errBoundCount(len(lower), m)
	}
	var totalLower int64
	for e, l := range lower {
		if l < 0 {
			return Result{}, errNegativeBound(e)
		}
		totalLower += l
	}
	// See MinFlow: the sum of all lower bounds is a safe stand-in for "no
	// upper capacity".
	bigCap := totalLower + 1

	d := ms.d
	for v := range ms.excess {
		ms.excess[v] = 0
	}
	for e := 0; e < m; e++ {
		a := ms.arcOf[e]
		d.SetCap(a, bigCap-lower[e])
		d.SetCap(a^1, 0)
		ed := ms.g.Edge(e)
		ms.excess[ed.To] += lower[e]
		ms.excess[ed.From] -= lower[e]
	}
	var need int64
	for v, ex := range ms.excess {
		sa, ta := ms.ssArc[v], ms.ttArc[v]
		d.SetCap(sa, 0)
		d.SetCap(sa^1, 0)
		d.SetCap(ta, 0)
		d.SetCap(ta^1, 0)
		switch {
		case ex > 0:
			d.SetCap(sa, ex)
			need += ex
		case ex < 0:
			d.SetCap(ta, -ex)
		}
	}
	d.SetCap(ms.returnArc, bigCap)
	d.SetCap(ms.returnArc^1, 0)

	n := ms.g.NumNodes()
	ss, tt := n, n+1
	if got := d.MaxFlow(ss, tt); got != need {
		return Result{}, ErrInfeasible
	}

	// Freeze the auxiliary arcs so phase 2 cannot undo feasibility, remove
	// the return arc, and cancel circulation flow from t to s.
	for v := 0; v < n; v++ {
		d.SetCap(ms.ssArc[v], 0)
		d.SetCap(ms.ssArc[v]^1, 0)
		d.SetCap(ms.ttArc[v], 0)
		d.SetCap(ms.ttArc[v]^1, 0)
	}
	value := d.Flow(ms.returnArc)
	d.SetCap(ms.returnArc, 0)
	d.SetCap(ms.returnArc^1, 0)
	value -= d.MaxFlow(ms.t, ms.s)

	for e := 0; e < m; e++ {
		ms.edgeFlow[e] = lower[e] + d.Flow(ms.arcOf[e])
	}
	return Result{EdgeFlow: ms.edgeFlow, Value: value}, nil
}

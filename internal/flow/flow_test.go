package flow

import (
	"math/rand"
	"testing"

	"repro/internal/dag"
)

func TestDinicBasic(t *testing.T) {
	// s -> a -> t with caps 3, 2: max flow 2.
	d := NewDinic(3)
	a1 := d.AddArc(0, 1, 3)
	a2 := d.AddArc(1, 2, 2)
	if got := d.MaxFlow(0, 2); got != 2 {
		t.Fatalf("MaxFlow = %d; want 2", got)
	}
	if d.Flow(a1) != 2 || d.Flow(a2) != 2 {
		t.Fatalf("arc flows = %d, %d; want 2, 2", d.Flow(a1), d.Flow(a2))
	}
}

func TestDinicClassic(t *testing.T) {
	// Classic 6-node example with max flow 23.
	d := NewDinic(6)
	d.AddArc(0, 1, 16)
	d.AddArc(0, 2, 13)
	d.AddArc(1, 2, 10)
	d.AddArc(2, 1, 4)
	d.AddArc(1, 3, 12)
	d.AddArc(3, 2, 9)
	d.AddArc(2, 4, 14)
	d.AddArc(4, 3, 7)
	d.AddArc(3, 5, 20)
	d.AddArc(4, 5, 4)
	if got := d.MaxFlow(0, 5); got != 23 {
		t.Fatalf("MaxFlow = %d; want 23", got)
	}
}

func TestDinicNegativeCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on negative capacity")
		}
	}()
	NewDinic(2).AddArc(0, 1, -1)
}

func diamond() *dag.Graph {
	g := dag.New()
	s := g.AddNode("s")
	a := g.AddNode("a")
	b := g.AddNode("b")
	t := g.AddNode("t")
	g.AddEdge(s, a) // 0
	g.AddEdge(a, t) // 1
	g.AddEdge(s, b) // 2
	g.AddEdge(b, t) // 3
	return g
}

func TestMinFlowDiamond(t *testing.T) {
	g := diamond()
	// Lower bounds force 2 units on the a-branch and 1 on the b-branch.
	res, err := MinFlow(g, []int64{2, 0, 0, 1}, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 3 {
		t.Fatalf("Value = %d; want 3", res.Value)
	}
	checkLower(t, g, res, []int64{2, 0, 0, 1}, 0, 3)
}

func TestMinFlowReuseAlongPath(t *testing.T) {
	// A single path s -> a -> b -> t where every edge needs 2 units:
	// the same 2 units serve all three edges (resource reuse over a path).
	g := dag.New()
	s := g.AddNode("s")
	a := g.AddNode("a")
	b := g.AddNode("b")
	tt := g.AddNode("t")
	g.AddEdge(s, a)
	g.AddEdge(a, b)
	g.AddEdge(b, tt)
	res, err := MinFlow(g, []int64{2, 2, 2}, s, tt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 2 {
		t.Fatalf("Value = %d; want 2 (reuse over the path)", res.Value)
	}
}

func TestMinFlowZeroLower(t *testing.T) {
	g := diamond()
	res, err := MinFlow(g, []int64{0, 0, 0, 0}, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0 {
		t.Fatalf("Value = %d; want 0", res.Value)
	}
}

func TestMinFlowInternalRequirementOnly(t *testing.T) {
	// Requirement sits on an internal edge; units must be routed through
	// the whole path even though endpoints need nothing.
	g := dag.New()
	s := g.AddNode("s")
	a := g.AddNode("a")
	b := g.AddNode("b")
	tt := g.AddNode("t")
	g.AddEdge(s, a)
	e := g.AddEdge(a, b)
	g.AddEdge(b, tt)
	lower := make([]int64, 3)
	lower[e] = 5
	res, err := MinFlow(g, lower, s, tt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 5 {
		t.Fatalf("Value = %d; want 5", res.Value)
	}
	checkLower(t, g, res, lower, s, tt)
}

func TestMinFlowSharedSegment(t *testing.T) {
	// Two parallel middle edges each needing 3, fed by a shared prefix:
	// total need is 6 through the shared edge.
	//      s -> m -> {a|b} -> j -> t
	g := dag.New()
	s := g.AddNode("s")
	m := g.AddNode("m")
	a := g.AddNode("a")
	b := g.AddNode("b")
	j := g.AddNode("j")
	tt := g.AddNode("t")
	g.AddEdge(s, m)  // 0
	g.AddEdge(m, a)  // 1
	g.AddEdge(m, b)  // 2
	g.AddEdge(a, j)  // 3
	g.AddEdge(b, j)  // 4
	g.AddEdge(j, tt) // 5
	lower := []int64{0, 3, 3, 0, 0, 0}
	res, err := MinFlow(g, lower, s, tt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 6 {
		t.Fatalf("Value = %d; want 6", res.Value)
	}
	checkLower(t, g, res, lower, s, tt)
}

func TestMinFlowBadInput(t *testing.T) {
	g := diamond()
	if _, err := MinFlow(g, []int64{1}, 0, 3); err == nil {
		t.Fatal("want error for wrong lower length")
	}
	if _, err := MinFlow(g, []int64{-1, 0, 0, 0}, 0, 3); err == nil {
		t.Fatal("want error for negative lower bound")
	}
}

func TestConserved(t *testing.T) {
	g := diamond()
	if _, err := Conserved(g, []int64{1, 2, 0, 0}, 0, 3); err == nil {
		t.Fatal("want conservation violation")
	}
	v, err := Conserved(g, []int64{1, 1, 2, 2}, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Fatalf("value = %d; want 3", v)
	}
	if _, err := Conserved(g, []int64{-1, 0, 0, 0}, 0, 3); err == nil {
		t.Fatal("want error for negative flow")
	}
	if _, err := Conserved(g, []int64{0}, 0, 3); err == nil {
		t.Fatal("want error for wrong length")
	}
}

// checkLower asserts the MinFlow result is a valid flow meeting its bounds.
func checkLower(t *testing.T, g *dag.Graph, res Result, lower []int64, s, snk int) {
	t.Helper()
	v, err := Conserved(g, res.EdgeFlow, s, snk)
	if err != nil {
		t.Fatal(err)
	}
	if v != res.Value {
		t.Fatalf("reported value %d != conserved value %d", res.Value, v)
	}
	for e, l := range lower {
		if res.EdgeFlow[e] < l {
			t.Fatalf("edge %d: flow %d < lower %d", e, res.EdgeFlow[e], l)
		}
	}
}

// TestMinFlowMatchesBruteForce cross-checks MinFlow optimality against an
// exhaustive path-multiset enumeration on random small DAGs.
func TestMinFlowMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		g, s, snk := randomDAG(rng)
		lower := make([]int64, g.NumEdges())
		for e := range lower {
			lower[e] = int64(rng.Intn(3))
		}
		res, err := MinFlow(g, lower, s, snk)
		if err != nil {
			t.Fatal(err)
		}
		checkLower(t, g, res, lower, s, snk)
		want, ok := bruteMinFlow(g, lower, s, snk)
		if !ok {
			continue // brute force hit its enumeration cap
		}
		if res.Value != want {
			t.Fatalf("trial %d: MinFlow = %d; brute force = %d", trial, res.Value, want)
		}
	}
}

func randomDAG(rng *rand.Rand) (*dag.Graph, int, int) {
	g := dag.New()
	s := g.AddNode("s")
	n := 2 + rng.Intn(3)
	mids := make([]int, n)
	for i := range mids {
		mids[i] = g.AddNode("m")
	}
	t := g.AddNode("t")
	for i, v := range mids {
		g.AddEdge(s, v)
		g.AddEdge(v, t)
		for j := i + 1; j < n; j++ {
			if rng.Intn(2) == 0 {
				g.AddEdge(mids[i], mids[j])
			}
		}
	}
	return g, s, t
}

// bruteMinFlow finds the minimum feasible flow value by searching over
// multisets of s-t paths of increasing total count.
func bruteMinFlow(g *dag.Graph, lower []int64, s, t int) (int64, bool) {
	paths, exhaustive := g.Paths(s, t, 64)
	if !exhaustive {
		return 0, false
	}
	var totalLower int64
	for _, l := range lower {
		totalLower += l
	}
	flows := make([]int64, g.NumEdges())
	var feasible func(k int, from int) bool
	feasible = func(k, from int) bool {
		if covered(flows, lower) {
			return true
		}
		if k == 0 {
			return false
		}
		for i := from; i < len(paths); i++ {
			for _, e := range paths[i] {
				flows[e]++
			}
			if feasible(k-1, i) {
				for _, e := range paths[i] {
					flows[e]--
				}
				return true
			}
			for _, e := range paths[i] {
				flows[e]--
			}
		}
		return false
	}
	for v := int64(0); v <= totalLower; v++ {
		if v > 6 {
			return 0, false // keep the brute force cheap
		}
		if feasible(int(v), 0) {
			return v, true
		}
	}
	return totalLower, true
}

func covered(flows, lower []int64) bool {
	for e := range lower {
		if flows[e] < lower[e] {
			return false
		}
	}
	return true
}

// TestMaxFlowSourceIsSink locks the degenerate-query guard: a max-flow
// from a node to itself must return 0 instead of augmenting an empty
// infinite-capacity path forever.  Found by FuzzCanonicalHash via the
// single-node instance, whose min-flow cancellation phase runs
// MaxFlow(t, s) with t == s.
func TestMaxFlowSourceIsSink(t *testing.T) {
	d := NewDinic(2)
	d.AddArc(0, 1, 7)
	if got := d.MaxFlow(0, 0); got != 0 {
		t.Fatalf("MaxFlow(0,0) = %d; want 0", got)
	}
	g := dag.New()
	g.AddNode("only")
	res, err := MinFlow(g, nil, 0, 0)
	if err != nil || res.Value != 0 {
		t.Fatalf("MinFlow on the single-node graph = %+v, %v; want zero flow", res, err)
	}
}

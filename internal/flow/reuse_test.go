package flow

import (
	"math/rand"
	"testing"
)

// TestMinFlowSolverMatchesMinFlow drives one reused solver through many
// randomized lower-bound vectors on one graph and checks every answer
// against a fresh MinFlow build, including repeats of earlier vectors (a
// stale capacity from a previous solve would surface there).
func TestMinFlowSolverMatchesMinFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 12; trial++ {
		g, s, snk := randomDAG(rng)
		ms := NewMinFlowSolver(g, s, snk)
		var replay [][]int64
		for round := 0; round < 30; round++ {
			var lower []int64
			if len(replay) > 0 && rng.Intn(4) == 0 {
				lower = replay[rng.Intn(len(replay))]
			} else {
				lower = make([]int64, g.NumEdges())
				for e := range lower {
					lower[e] = int64(rng.Intn(4))
				}
				replay = append(replay, lower)
			}
			got, err := ms.Solve(lower)
			if err != nil {
				t.Fatal(err)
			}
			checkLower(t, g, got, lower, s, snk)
			want, err := MinFlow(g, lower, s, snk)
			if err != nil {
				t.Fatal(err)
			}
			if got.Value != want.Value {
				t.Fatalf("trial %d round %d: reused solver value %d != fresh MinFlow %d",
					trial, round, got.Value, want.Value)
			}
		}
	}
}

// TestMinFlowSolverBufferReuse pins the documented aliasing contract: the
// EdgeFlow slice returned by Solve is overwritten by the next Solve.
func TestMinFlowSolverBufferReuse(t *testing.T) {
	g := diamond()
	ms := NewMinFlowSolver(g, 0, 3)
	first, err := ms.Solve([]int64{2, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	kept := append([]int64(nil), first.EdgeFlow...)
	second, err := ms.Solve([]int64{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if second.Value != 0 {
		t.Fatalf("second solve value = %d; want 0", second.Value)
	}
	if &first.EdgeFlow[0] != &second.EdgeFlow[0] {
		t.Fatal("Solve must reuse its EdgeFlow buffer (that is the point)")
	}
	for e, f := range kept {
		if f < []int64{2, 0, 0, 1}[e] {
			t.Fatalf("copied first result corrupted at edge %d", e)
		}
	}
}

func TestMinFlowSolverBadInput(t *testing.T) {
	ms := NewMinFlowSolver(diamond(), 0, 3)
	if _, err := ms.Solve([]int64{1}); err == nil {
		t.Fatal("want error for wrong lower length")
	}
	if _, err := ms.Solve([]int64{-1, 0, 0, 0}); err == nil {
		t.Fatal("want error for negative lower bound")
	}
	// The solver must still work after rejecting bad input.
	res, err := ms.Solve([]int64{2, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 3 {
		t.Fatalf("Value = %d; want 3", res.Value)
	}
}

// BenchmarkMinFlowReuse contrasts per-call network builds with the reused
// solver on the same lower-bound workload.
func BenchmarkMinFlowReuse(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	g, s, snk := randomDAG(rng)
	bounds := make([][]int64, 16)
	for i := range bounds {
		bounds[i] = make([]int64, g.NumEdges())
		for e := range bounds[i] {
			bounds[i][e] = int64(rng.Intn(4))
		}
	}
	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := MinFlow(g, bounds[i%len(bounds)], s, snk); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reuse", func(b *testing.B) {
		ms := NewMinFlowSolver(g, s, snk)
		for i := 0; i < b.N; i++ {
			if _, err := ms.Solve(bounds[i%len(bounds)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

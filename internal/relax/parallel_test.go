package relax

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
)

// forceParallel lowers ParallelArcThreshold so the level-parallel gang
// engages even on tiny corpus instances, restoring it on cleanup.
func forceParallel(t *testing.T) {
	t.Helper()
	old := ParallelArcThreshold
	ParallelArcThreshold = 1
	t.Cleanup(func() { ParallelArcThreshold = old })
}

// TestParallelSweepDeterministic is the relaxation side of the determinism
// invariant ("parallelism changes when, never what"): at every gang size
// the Frank-Wolfe iteration must produce BIT-IDENTICAL results - same
// iterate trajectory (Iters), same objective and certificate to the last
// float bit, same rounded flow - because every sweep chunk writes disjoint
// entries and reads only completed levels.  Run with -race to also check
// the gang's memory discipline (this test is in the CI race job's path).
func TestParallelSweepDeterministic(t *testing.T) {
	forceParallel(t)
	for _, spec := range scenario.DefaultCorpus() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			inst, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			budget := inst.MaxUsefulBudget() / 2
			var base *Result
			for _, par := range []int{1, 2, 8} {
				s := NewSolver(inst)
				res, err := s.MinMakespan(context.Background(), budget, Options{Parallelism: par})
				if err != nil {
					t.Fatalf("p=%d: %v", par, err)
				}
				// The gang is capped by the widest level: width-starved
				// instances (chains) legitimately degenerate to "seq", and a
				// narrow DAG may get a smaller gang than requested.
				eff := par
				if width := core.Compile(inst).Levels().MaxWidth; eff > width {
					eff = width
				}
				wantSweep := "seq"
				if eff > 1 {
					wantSweep = fmt.Sprintf("level-par p=%d", eff)
				}
				if res.Sweep != wantSweep {
					t.Fatalf("p=%d: sweep mode %q, want %q", par, res.Sweep, wantSweep)
				}
				res.Sweep = "" // normalized: the one field allowed to differ
				if base == nil {
					base = res
					continue
				}
				if res.Iters != base.Iters {
					t.Fatalf("p=%d: %d iterations, p=1 ran %d", par, res.Iters, base.Iters)
				}
				if math.Float64bits(res.RelaxValue) != math.Float64bits(base.RelaxValue) ||
					math.Float64bits(res.LowerBound) != math.Float64bits(base.LowerBound) {
					t.Fatalf("p=%d: (relax, lb) = (%v, %v), p=1 got (%v, %v)",
						par, res.RelaxValue, res.LowerBound, base.RelaxValue, base.LowerBound)
				}
				if !reflect.DeepEqual(res.Sol, base.Sol) {
					t.Fatalf("p=%d: rounded solution diverged from p=1", par)
				}
			}
		})
	}
}

// TestParallelMinResourceDeterministic runs the target-mode binary search -
// many Frank-Wolfe solves back to back on one reused solver - across gang
// sizes and demands identical outcomes, exercising the per-solve reset of
// all iteration state (line-search rung seed included).
func TestParallelMinResourceDeterministic(t *testing.T) {
	forceParallel(t)
	for _, spec := range scenario.DefaultCorpus() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			inst, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			// Midpoint between the all-fastest floor and the zero-resource
			// makespan: reachable, but not free.
			zero, err := inst.NewSolution(make([]int64, inst.G.NumEdges()))
			if err != nil {
				t.Fatal(err)
			}
			target := inst.MakespanLowerBound() + (zero.Makespan-inst.MakespanLowerBound())/2
			var base *Result
			for _, par := range []int{1, 8} {
				res, err := NewSolver(inst).MinResource(context.Background(), target, Options{Parallelism: par})
				if err != nil {
					t.Fatalf("p=%d: %v", par, err)
				}
				res.Sweep = ""
				if base == nil {
					base = res
					continue
				}
				if !reflect.DeepEqual(res, base) {
					t.Fatalf("p=%d: result diverged from p=1:\n%+v\nvs\n%+v", par, res, base)
				}
			}
		})
	}
}

package relax

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/duration"
	"repro/internal/exact"
	"repro/internal/scenario"
)

// smallInstances is a pool of exactly-solvable instances spanning the
// duration classes and shapes.
func smallInstances(t *testing.T) []*core.Instance {
	t.Helper()
	g := scenario.NewGen(7)
	insts := []*core.Instance{
		g.StepInstance(2, 2, 1, 3, 9, 3),
		g.StepInstance(3, 2, 1, 3, 12, 4),
		g.KWayInstance(2, 2, 1, 30),
		g.BinaryInstance(2, 2, 1, 30),
		g.ForkJoin(2, 2, duration.KindKWay, 20),
	}
	// A hand-built diamond with a convexity-breaking breakpoint set: the
	// middle tuple lies above the hull, so envelope != step function.
	d := dag.New()
	s, a, b, tt := d.AddNode("s"), d.AddNode("a"), d.AddNode("b"), d.AddNode("t")
	d.AddEdge(s, a)
	d.AddEdge(a, tt)
	d.AddEdge(s, b)
	d.AddEdge(b, tt)
	fns := []duration.Func{
		duration.MustStep(duration.Tuple{R: 0, T: 10}, duration.Tuple{R: 1, T: 9}, duration.Tuple{R: 2, T: 1}),
		duration.MustStep(duration.Tuple{R: 0, T: 8}, duration.Tuple{R: 3, T: 2}),
		duration.Constant(4),
		duration.MustStep(duration.Tuple{R: 0, T: 7}, duration.Tuple{R: 2, T: 3}, duration.Tuple{R: 5, T: 0}),
	}
	insts = append(insts, core.MustInstance(d, fns))
	return insts
}

// TestMinMakespanSoundness checks, against the branch-and-bound optimum,
// the two sides of the scale tier's contract: the certified LowerBound
// never exceeds the optimum, and the rounded makespan never beats it
// (while staying within RelaxValue/alpha, the Theorem 3.4 bound).
func TestMinMakespanSoundness(t *testing.T) {
	for i, inst := range smallInstances(t) {
		s := NewSolver(inst)
		for _, budget := range []int64{0, 1, 2, 4, 7} {
			res, err := s.MinMakespan(context.Background(), budget, Options{})
			if err != nil {
				t.Fatalf("inst %d budget %d: %v", i, budget, err)
			}
			opt, _, err := exact.MinMakespan(inst, budget, nil)
			if err != nil {
				t.Fatalf("inst %d budget %d exact: %v", i, budget, err)
			}
			if res.LowerBound > float64(opt.Makespan)+1e-6 {
				t.Errorf("inst %d budget %d: certified bound %.4f exceeds optimum %d",
					i, budget, res.LowerBound, opt.Makespan)
			}
			// The rounded solution may spend up to B/(1-alpha) resources
			// (bi-criteria), so it can beat the budget-B optimum; it must
			// not beat the optimum at its own resource usage.
			optOwn, _, err := exact.MinMakespan(inst, res.Sol.Value, nil)
			if err != nil {
				t.Fatalf("inst %d budget %d exact(own): %v", i, budget, err)
			}
			if res.Sol.Makespan < optOwn.Makespan {
				t.Errorf("inst %d budget %d: rounded makespan %d beats the %d-resource optimum %d (infeasible flow?)",
					i, budget, res.Sol.Makespan, res.Sol.Value, optOwn.Makespan)
			}
			if got, bound := float64(res.Sol.Makespan), res.RelaxValue/0.5+1e-6; got > bound {
				t.Errorf("inst %d budget %d: makespan %v breaks the relax/alpha bound %v",
					i, budget, got, bound)
			}
			if res.Sol.Value > budget*2 {
				t.Errorf("inst %d budget %d: resources %d exceed B/(1-alpha) = %d",
					i, budget, res.Sol.Value, budget*2)
			}
			if err := inst.ValidateFlow(res.Sol.Flow, -1); err != nil {
				t.Errorf("inst %d budget %d: invalid flow: %v", i, budget, err)
			}
		}
	}
}

// TestAgreesWithDenseLP relates the envelope relaxation to the paper's
// expansion LP: the envelope model forces the canonical chain-filling
// order, so its optimum — and hence RelaxValue, which upper-bounds it —
// dominates the dense LP optimum, which may spread flow across chains
// non-canonically.  (The certificate LowerBound may legitimately exceed
// the LP optimum for the same reason: it is a TIGHTER sound bound; its
// soundness against the true optimum is TestMinMakespanSoundness's job.)
func TestAgreesWithDenseLP(t *testing.T) {
	for i, inst := range smallInstances(t) {
		ex, err := core.Expand(inst)
		if err != nil {
			t.Fatal(err)
		}
		s := NewSolver(inst)
		for _, budget := range []int64{0, 2, 5} {
			rel, err := approx.SolveMakespanLP(ex, budget)
			if err != nil {
				t.Fatalf("inst %d budget %d dense LP: %v", i, budget, err)
			}
			res, err := s.MinMakespan(context.Background(), budget, Options{})
			if err != nil {
				t.Fatalf("inst %d budget %d: %v", i, budget, err)
			}
			if res.RelaxValue < rel.Objective-1e-6 {
				t.Errorf("inst %d budget %d: objective %.6f below LP optimum %.6f (phi cannot beat the LP)",
					i, budget, res.RelaxValue, rel.Objective)
			}
			// LowerBound may exceed RelaxValue: it folds in the integral
			// budget-floor bound, which the fractional relaxation can beat.
		}
	}
}

// TestMinResource checks target mode: the solution meets the target, the
// certified resource bound is sound against the exact optimum, and
// unreachable targets error.
func TestMinResource(t *testing.T) {
	for i, inst := range smallInstances(t) {
		s := NewSolver(inst)
		for _, target := range []int64{inst.ZeroFlowMakespan(), (inst.ZeroFlowMakespan() + inst.MakespanLowerBound()) / 2, inst.MakespanLowerBound()} {
			res, err := s.MinResource(context.Background(), target, Options{})
			if err != nil {
				t.Fatalf("inst %d target %d: %v", i, target, err)
			}
			if res.Sol.Makespan > target {
				t.Errorf("inst %d target %d: makespan %d misses the target", i, target, res.Sol.Makespan)
			}
			opt, _, err := exact.MinResource(inst, target, nil)
			if err != nil {
				t.Fatalf("inst %d target %d exact: %v", i, target, err)
			}
			if res.LowerBound > float64(opt.Value)+1e-6 {
				t.Errorf("inst %d target %d: certified resource bound %.4f exceeds optimum %d",
					i, target, res.LowerBound, opt.Value)
			}
			if res.Sol.Value < opt.Value {
				t.Errorf("inst %d target %d: resources %d beat the optimum %d",
					i, target, res.Sol.Value, opt.Value)
			}
		}
		if _, err := s.MinResource(context.Background(), inst.MakespanLowerBound()-1, Options{}); err == nil && inst.MakespanLowerBound() > 0 {
			t.Errorf("inst %d: sub-floor target did not error", i)
		}
	}
}

// TestSolverReuseDeterministic re-solves through one Solver and checks the
// buffer reuse leaks no state between solves.
func TestSolverReuseDeterministic(t *testing.T) {
	inst := scenario.NewGen(11).StepInstance(4, 3, 2, 4, 20, 5)
	s := NewSolver(inst)
	first, err := s.MinMakespan(context.Background(), 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Interleave different budgets and a target solve to dirty the scratch.
	if _, err := s.MinMakespan(context.Background(), 9, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.MinResource(context.Background(), inst.ZeroFlowMakespan(), Options{}); err != nil {
		t.Fatal(err)
	}
	again, err := s.MinMakespan(context.Background(), 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if first.Sol.Makespan != again.Sol.Makespan || first.Sol.Value != again.Sol.Value ||
		first.RelaxValue != again.RelaxValue || first.LowerBound != again.LowerBound {
		t.Fatalf("reused solver drifted: first %+v, again %+v", first, again)
	}
	fresh, err := NewSolver(inst).MinMakespan(context.Background(), 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if first.Sol.Makespan != fresh.Sol.Makespan || first.RelaxValue != fresh.RelaxValue {
		t.Fatalf("reused solver disagrees with a fresh one: %+v vs %+v", first, fresh)
	}
}

// TestLargeInstanceFast is the scale-tier smoke: a general layered DAG in
// the tens of thousands of arcs solves with a finite certified gap.  The
// full 50k-arc acceptance run lives in the CLI smoke and
// examples/largescale; this keeps `go test` snappy.
func TestLargeInstanceFast(t *testing.T) {
	if testing.Short() {
		t.Skip("large instance solve in -short mode")
	}
	inst := scenario.NewGen(3).StepInstance(60, 20, 20, 4, 50, 6)
	s := NewSolver(inst)
	res, err := s.MinMakespan(context.Background(), 200, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.LowerBound <= 0 {
		t.Fatalf("no certified bound on a positive-makespan instance: %+v", res)
	}
	ratio := float64(res.Sol.Makespan) / res.LowerBound
	if math.IsInf(ratio, 0) || ratio < 1-1e-9 {
		t.Fatalf("nonsensical ratio %v (makespan %d, bound %.2f)", ratio, res.Sol.Makespan, res.LowerBound)
	}
	t.Logf("arcs=%d makespan=%d relax=%.1f bound=%.1f ratio=%.3f iters=%d",
		inst.G.NumEdges(), res.Sol.Makespan, res.RelaxValue, res.LowerBound, ratio, res.Iters)
}

// TestCanceledContext checks cooperative cancellation: a pre-canceled
// context errors with no result, and a mid-iteration deadline still
// returns a rounded partial solution alongside the context error (the
// exact search's partial-report contract).
func TestCanceledContext(t *testing.T) {
	inst := scenario.NewGen(5).StepInstance(3, 3, 2, 4, 20, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := NewSolver(inst).MinMakespan(ctx, 5, Options{})
	if err == nil {
		t.Fatal("canceled context did not error")
	}
	if res != nil {
		t.Fatalf("pre-canceled solve returned a result: %+v", res)
	}

	// The wide k-way instance needs thousands of Frank-Wolfe iterations
	// to close its gap (budget spread over 24 parallel lanes, one path
	// per step), so with the tolerance stop disabled a short deadline
	// reliably interrupts mid-iteration.
	big := scenario.NewGen(9).KWayInstance(24, 24, 12, 400)
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer dcancel()
	res, err = NewSolver(big).MinMakespan(dctx, 40, Options{MaxIters: 1 << 30, Tol: 1e-300})
	if err == nil {
		t.Fatal("tolerance-free solve finished a 2^30-iteration budget inside 30ms?")
	}
	if res == nil {
		t.Fatal("mid-iteration interruption dropped the partial result")
	}
	if err := big.ValidateFlow(res.Sol.Flow, -1); err != nil {
		t.Fatalf("partial solution flow invalid: %v", err)
	}
	if res.Sol.Makespan <= 0 || res.Iters == 0 {
		t.Fatalf("partial result is empty: %+v", res)
	}
}

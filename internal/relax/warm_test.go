package relax

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/duration"
)

// warmRelaxInstance builds a layered instance large enough that the
// Frank-Wolfe loop runs real iterations.
func warmRelaxInstance(t *testing.T) *core.Instance {
	t.Helper()
	g := dag.New()
	const width, layers = 3, 4
	s := g.AddNode("s")
	prev := []int{s}
	id := 0
	for l := 0; l < layers; l++ {
		var cur []int
		for w := 0; w < width; w++ {
			cur = append(cur, g.AddNode("n"+string(rune('a'+id))))
			id++
		}
		for _, u := range prev {
			for _, v := range cur {
				g.AddEdge(u, v)
			}
		}
		prev = cur
	}
	snk := g.AddNode("t")
	for _, u := range prev {
		g.AddEdge(u, snk)
	}
	fns := make([]duration.Func, g.NumEdges())
	for e := range fns {
		r := int64(1 + e%3)
		fns[e] = duration.MustStep(
			duration.Tuple{R: 0, T: int64(20 + e%7)},
			duration.Tuple{R: r, T: int64(5 + e%5)},
		)
	}
	inst, err := core.NewInstance(g, fns)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestWarmStartSoundAndDeterministic checks the relax warm-start
// contract: a warm-started solve still reports a certified lower bound
// consistent with the cold solve's achieved value (both bound the same
// optimum), is byte-deterministic across identical warm runs, and ignores
// invalid seeds.
func TestWarmStartSoundAndDeterministic(t *testing.T) {
	inst := warmRelaxInstance(t)
	c := core.Compile(inst)
	s := NewSolverCompiled(c)
	ctx := context.Background()
	const budget = 6

	cold, err := s.MinMakespan(ctx, budget, Options{})
	if err != nil {
		t.Fatal(err)
	}

	warmOpts := Options{WarmFlow: cold.Sol.Flow}
	warm1, err := NewSolverCompiled(c).MinMakespan(ctx, budget, warmOpts)
	if err != nil {
		t.Fatal(err)
	}
	warm2, err := NewSolverCompiled(c).MinMakespan(ctx, budget, warmOpts)
	if err != nil {
		t.Fatal(err)
	}

	// Determinism: identical inputs (instance, options, seed) must give
	// identical results, iterate for iterate.
	if warm1.RelaxValue != warm2.RelaxValue || warm1.LowerBound != warm2.LowerBound || warm1.Iters != warm2.Iters {
		t.Fatalf("warm runs diverged: %+v vs %+v", warm1, warm2)
	}
	for e := range warm1.Sol.Flow {
		if warm1.Sol.Flow[e] != warm2.Sol.Flow[e] {
			t.Fatalf("warm runs rounded different flows at arc %d", e)
		}
	}

	// Soundness: both lower bounds certify the same relaxation optimum,
	// so each must sit at or below the other's achieved relaxation value
	// (and below the integral makespans, which the relaxation minorizes).
	if warm1.LowerBound > cold.RelaxValue+1e-6 {
		t.Fatalf("warm bound %f exceeds cold relaxation value %f", warm1.LowerBound, cold.RelaxValue)
	}
	if cold.LowerBound > warm1.RelaxValue+1e-6 {
		t.Fatalf("cold bound %f exceeds warm relaxation value %f", cold.LowerBound, warm1.RelaxValue)
	}
	if warm1.LowerBound > float64(cold.Sol.Makespan)+1e-6 {
		t.Fatalf("warm bound %f exceeds cold integral makespan %d", warm1.LowerBound, cold.Sol.Makespan)
	}
	if warm1.Sol.Value > budget {
		t.Fatalf("warm rounded solution overspends: %d > %d", warm1.Sol.Value, budget)
	}

	// Invalid seeds are ignored: the result must equal the cold solve.
	for name, seed := range map[string][]int64{
		"wrong length":  {1, 2},
		"negative":      append([]int64{-1}, make([]int64, inst.G.NumEdges()-1)...),
		"not conserved": append([]int64{5}, make([]int64, inst.G.NumEdges()-1)...),
	} {
		got, err := NewSolverCompiled(c).MinMakespan(ctx, budget, Options{WarmFlow: seed})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.RelaxValue != cold.RelaxValue || got.Iters != cold.Iters {
			t.Fatalf("%s: bad seed changed the solve: %+v vs cold %+v", name, got, cold)
		}
	}
}

// TestWarmStartScalesOverspentSeed seeds with a flow worth more than the
// budget and checks the scaled seed stays feasible and the solve sound.
func TestWarmStartScalesOverspentSeed(t *testing.T) {
	inst := warmRelaxInstance(t)
	c := core.Compile(inst)
	s := NewSolverCompiled(c)
	ctx := context.Background()

	// Solve generously, then re-solve at a tight budget seeded with the
	// generous (overspending) flow.
	rich, err := s.MinMakespan(ctx, 20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := NewSolverCompiled(c).MinMakespan(ctx, 3, Options{WarmFlow: rich.Sol.Flow})
	if err != nil {
		t.Fatal(err)
	}
	coldTight, err := NewSolverCompiled(c).MinMakespan(ctx, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Sol.Value > 3*2 { // B/(1-alpha) with alpha=0.5
		t.Fatalf("warm tight solve overspends the bi-criteria bound: %d", tight.Sol.Value)
	}
	// Both certify lower bounds on the SAME budget-3 optimum.
	if tight.LowerBound > coldTight.RelaxValue+1e-6 {
		t.Fatalf("warm bound %f exceeds cold relaxation value %f", tight.LowerBound, coldTight.RelaxValue)
	}
}

// Package relax is the scale tier's relaxation engine: it solves the
// makespan relaxation of Section 3.1 (LP 6-10) on instances far beyond the
// reach of the dense simplex in internal/lp, and rounds the fractional
// solution with the Theorem 3.4 threshold rule.
//
// Instead of materializing the two-tuple expansion D” and handing a dense
// tableau to simplex - O((m+n)^2) memory, hopeless past a few hundred arcs -
// it works directly on the original instance with the per-arc LOWER CONVEX
// ENVELOPE of the duration breakpoints.  Filling the expansion's parallel
// chains in slope order is exactly linear interpolation along that
// envelope, so
//
//	phi(f) = longest path under envelope durations d^_e(f_e)
//
// minimized over fractional flows of value at most B is a sound relaxation
// (the envelope minorizes the step function pointwise, so no integral flow
// can beat it), and phi is convex in f (a maximum over paths of sums of
// convex per-arc functions).  The envelope model forces the canonical
// chain-filling order of Lemma 3.1, so its optimum is at least the
// expansion LP's - the certified bounds here are never weaker than the
// dense LP's, and are often strictly tighter.  The minimization runs as
// Frank-Wolfe:
//
//   - the subgradient of phi at f is the envelope slope on the arcs of one
//     critical path (zero elsewhere);
//   - the linear minimization oracle over the flow polytope {value <= B,
//     f >= 0} is a single min-cost source-to-sink path under those
//     (non-positive) slopes - O(m) on a DAG by topological sweep;
//   - every iterate certifies a LOWER bound on the relaxation optimum via
//     convexity: phi(f) + min_y <g, y - f> <= relax* <= OPT, so the reported
//     bound is sound even when the (non-smooth) iteration stalls.
//
// Each iteration costs O(m); a 50k-arc instance solves in well under a
// second where the dense LP would need hundreds of gigabytes.
//
// A Solver is built once per instance and reuses all scratch - flow
// vectors, duration and event-time buffers, oracle DP arrays, and the
// integral flow.MinFlowSolver used by rounding - across solves, the same
// per-worker state-reuse pattern as the branch-and-bound's MinFlowSolver:
// give each worker its own Solver; one Solver is not safe for concurrent
// use.
package relax

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/flow"
)

// Options tunes one relaxation solve.
type Options struct {
	// Alpha is the Theorem 3.4 threshold-rounding parameter in (0,1); the
	// rounded solution has makespan <= RelaxValue/Alpha using at most
	// B/(1-Alpha) resources.  Zero means the 0.5 default.
	Alpha float64
	// MaxIters caps Frank-Wolfe iterations; 0 picks a default scaled to
	// the instance so large solves stay in the "seconds" regime.
	MaxIters int
	// Tol is the relative duality-gap stopping tolerance; 0 means 1%.
	Tol float64
	// WarmFlow optionally seeds the Frank-Wolfe iteration with a starting
	// point (typically a stored neighbor's integral solution).  A valid
	// conserved flow is scaled into the budget if it overspends and used
	// as the first iterate; anything else is ignored and the iteration
	// starts from zero as before.  Warm starts are sound by construction:
	// every lower-bound certificate is recomputed from the current
	// iterate's own subgradients (phi is convex at EVERY feasible point,
	// not just along the cold trajectory), so a warm start can change how
	// fast the gap closes and which fractional point gets rounded — both
	// within the certified envelope — but never the validity of the
	// reported bounds.
	WarmFlow []int64
	// Progress, when non-nil, receives the Frank-Wolfe anytime trajectory
	// during budget-mode solves: the best relaxation objective so far
	// (decreasing) and the best certified lower bound so far (increasing),
	// plus the iteration count.  Events are rate-limited to a fixed number
	// per solve and delivered only when the pair actually improved, from
	// the solving goroutine.  MinResource's binary-search probes stay
	// silent: their per-budget trajectories would interleave
	// non-monotonically.  Purely observational: it never steers the
	// iteration.
	Progress func(objective, bound float64, iters int64)
}

func (o Options) withDefaults(m int) Options {
	if o.Alpha == 0 {
		o.Alpha = 0.5
	}
	if o.Tol == 0 {
		o.Tol = 0.01
	}
	if o.MaxIters == 0 {
		// Budget roughly constant total work (~20e6 arc-touches for the
		// Frank-Wolfe loop): 50k-arc instances get a few hundred
		// iterations and stay in the seconds regime, smaller instances
		// iterate until the duality gap closes (the tolerance stop fires
		// long before the cap on easy instances).
		o.MaxIters = 20_000_000 / (m + 1)
		if o.MaxIters > 2400 {
			o.MaxIters = 2400
		}
		if o.MaxIters < 96 {
			o.MaxIters = 96
		}
	}
	return o
}

// Result is the outcome of one relaxation solve plus rounding.
type Result struct {
	// Sol is the rounded integral solution on the original instance.
	Sol core.Solution
	// RelaxValue is the best relaxation objective reached (an upper bound
	// on the relaxation optimum); the rounded makespan is at most
	// RelaxValue/Alpha.
	RelaxValue float64
	// LowerBound is the certified lower bound on the optimal makespan
	// (budget mode) or optimal resource usage (target mode): the best of
	// the Frank-Wolfe duality certificate and the combinatorial
	// budget-floor bound.  It is sound regardless of convergence and
	// positive whenever the optimum is.
	LowerBound float64
	// Iters counts Frank-Wolfe iterations actually run.
	Iters int
}

// Solver solves the envelope relaxation on one fixed instance repeatedly,
// reusing all scratch buffers across solves.  Not safe for concurrent use;
// give each worker its own.
type Solver struct {
	c    *core.Compiled
	inst *core.Instance

	// env is the per-arc lower convex envelope in CSR form, shared with
	// (and built at most once by) the compiled instance.
	env *core.Envelopes

	// Frank-Wolfe scratch, all sized once and reused.
	f, fbest, ftmp  []float64 // flows per arc
	cost            []float64 // oracle costs (subgradient) per arc
	avgCost         []float64 // running sum of subgradients (see below)
	tval, dist      []float64 // event times / oracle DP values per node
	critArc, oraArc []int32   // predecessor arcs for backtracking
	pathBuf         []int32   // critical / oracle path scratch
	req             []int64   // rounded per-arc lower bounds

	mf *flow.MinFlowSolver
}

// NewSolver builds the reusable relaxation state for inst.  One-shot
// convenience around NewSolverCompiled; callers that already hold a
// compiled instance should use that directly so the topological order and
// envelopes are shared instead of rebuilt.
func NewSolver(inst *core.Instance) *Solver {
	return NewSolverCompiled(core.Compile(inst))
}

// NewSolverCompiled builds the reusable relaxation state on a compiled
// instance: the topological order and duration envelopes come from the
// compiled form (derived once, shared with every other consumer), and only
// the Frank-Wolfe scratch and the integral min-flow network used by
// rounding are allocated here.  The instance must not change afterwards.
func NewSolverCompiled(c *core.Compiled) *Solver {
	inst := c.Inst
	g := inst.G
	n, m := g.NumNodes(), g.NumEdges()
	return &Solver{
		c:       c,
		inst:    inst,
		env:     c.Envelopes(),
		f:       make([]float64, m),
		fbest:   make([]float64, m),
		ftmp:    make([]float64, m),
		cost:    make([]float64, m),
		avgCost: make([]float64, m),
		tval:    make([]float64, n),
		dist:    make([]float64, n),
		critArc: make([]int32, n),
		oraArc:  make([]int32, n),
		req:     make([]int64, m),
		mf:      flow.NewMinFlowSolver(g, inst.Source, inst.Sink),
	}
}

// envelope evaluates the convex-envelope duration of arc e at flow x and
// reports the slope of the containing segment (the subgradient); see
// core.Envelopes.Eval.
//
//rt:hotpath — called per arc per makespan sweep.
func (s *Solver) envelope(e int, x float64) (dur, grad float64) {
	return s.env.Eval(e, x)
}

// makespan computes the longest-path value under envelope durations of fx,
// optionally recording the predecessor arc per node for critical-path
// backtracking.  It sweeps the compiled CSR adjacency in topological order.
//
//rt:hotpath — once per Frank-Wolfe iteration and line-search probe.
func (s *Solver) makespan(fx []float64, track bool) float64 {
	c := s.c
	for i := range s.tval {
		s.tval[i] = 0
	}
	if track {
		for i := range s.critArc {
			s.critArc[i] = -1
		}
	}
	for _, v := range c.Topo {
		tv := s.tval[v]
		for i := c.OutStart[v]; i < c.OutStart[v+1]; i++ {
			e := int(c.OutArcs[i])
			d, _ := s.envelope(e, fx[e])
			w := c.ArcTo[e]
			if cand := tv + d; cand > s.tval[w] {
				s.tval[w] = cand
				if track {
					s.critArc[w] = int32(e)
				}
			}
		}
	}
	return s.tval[s.inst.Sink]
}

// criticalPath appends the arcs of one critical path (sink to source) to
// pathBuf, using the predecessors recorded by makespan(track=true).
//
//rt:hotpath — per-iteration; the append reuses s.pathBuf.
func (s *Solver) criticalPath() []int32 {
	s.pathBuf = s.pathBuf[:0]
	c := s.c
	v := s.inst.Sink
	for v != s.inst.Source {
		e := s.critArc[v]
		if e < 0 {
			// The sink is reached by a zero-duration prefix the DP never
			// tightened; walk any incoming arc (durations there are 0 on
			// this path, so the subgradient contribution is unaffected).
			e = c.InArcs[c.InStart[v]]
		}
		s.pathBuf = append(s.pathBuf, e)
		v = int(c.ArcFrom[e])
	}
	return s.pathBuf
}

// oracle solves the linear minimization min <cost, y> over the flow
// polytope {y >= 0, value(y) <= B}: route all B units along the single
// min-cost source-to-sink path, or route nothing if even the best path
// costs >= 0.  Costs are non-positive here, so the sweep needs no
// negative-cycle care (the graph is a DAG).  It returns the best path cost
// c* (<= 0); the chosen path is left in oraArc predecessors.
//
//rt:hotpath — the per-iteration linear-minimization oracle.
func (s *Solver) oracle(cost []float64) float64 {
	c := s.c
	for i := range s.dist {
		s.dist[i] = math.Inf(1)
	}
	s.dist[s.inst.Source] = 0
	for i := range s.oraArc {
		s.oraArc[i] = -1
	}
	for _, v := range c.Topo {
		dv := s.dist[v]
		if math.IsInf(dv, 1) {
			continue
		}
		for i := c.OutStart[v]; i < c.OutStart[v+1]; i++ {
			e := c.OutArcs[i]
			w := c.ArcTo[e]
			if cand := dv + cost[e]; cand < s.dist[w] {
				s.dist[w] = cand
				s.oraArc[w] = e
			}
		}
	}
	return s.dist[s.inst.Sink]
}

// MinMakespan solves the envelope relaxation under the resource budget and
// rounds the best fractional flow to an integral solution.  The returned
// Result carries the certified relaxation lower bound: a sound lower bound
// on the optimal makespan at this budget.
func (s *Solver) MinMakespan(ctx context.Context, budget int64, opt Options) (*Result, error) {
	if budget < 0 {
		return nil, fmt.Errorf("relax: negative budget %d", budget)
	}
	o := opt.withDefaults(s.inst.G.NumEdges())
	if o.Alpha <= 0 || o.Alpha >= 1 {
		return nil, fmt.Errorf("relax: alpha %v outside (0,1)", o.Alpha)
	}
	res := &Result{}
	ferr := s.frankWolfe(ctx, budget, o, res)
	if ferr != nil && res.Iters == 0 {
		// Canceled before the first iterate: nothing to round.
		return nil, ferr
	}
	// The duality certificate needs the iteration to get close before it
	// is tight; the combinatorial floor (every arc at its budget-best
	// duration - sound because on a DAG no arc can carry more than the
	// whole budget) is free, always positive when the optimum is, and
	// often the better bound early.  Report the max of the two.
	if floor := float64(exact.BudgetedMakespanLowerBoundCompiled(s.c, budget)); floor > res.LowerBound {
		res.LowerBound = floor
	}
	sol, err := s.round(budget, o.Alpha)
	if err != nil {
		return nil, err
	}
	res.Sol = sol
	// An interrupted iteration still rounds its best iterate: the caller
	// gets a usable (if less converged) solution alongside the context
	// error, mirroring the exact search's partial-report contract.
	return res, ferr
}

// frankWolfe runs the Frank-Wolfe loop at the given budget, leaving the
// best fractional flow in s.fbest and filling res's relaxation fields.
func (s *Solver) frankWolfe(ctx context.Context, budget int64, o Options, res *Result) error {
	m := s.inst.G.NumEdges()
	for e := 0; e < m; e++ {
		s.f[e] = 0
		s.fbest[e] = 0
		s.cost[e] = 0
		s.avgCost[e] = 0
	}
	s.seedWarm(budget, o)
	bestObj := math.Inf(1)
	bestLB := 0.0
	// Progress throttle: early iterations improve the objective almost
	// every step, so cap delivery at ~64 events per solve and skip events
	// that would repeat an already-sent (objective, bound) pair.
	emitEvery := o.MaxIters / 64
	if emitEvery < 1 {
		emitEvery = 1
	}
	lastEmit := -emitEvery
	sentObj, sentLB := math.Inf(1), math.Inf(-1)
	emit := func(iters int) {
		if o.Progress == nil || math.IsInf(bestObj, 1) {
			return
		}
		if bestObj < sentObj || bestLB > sentLB {
			o.Progress(bestObj, bestLB, int64(iters))
			sentObj, sentLB = bestObj, bestLB
		}
	}
	// constSum accumulates phi(f_k) - <g_k, f_k> for the averaged
	// certificate below.
	constSum := 0.0
	B := float64(budget)

	for k := 0; k < o.MaxIters; k++ {
		if k&7 == 0 {
			if err := ctx.Err(); err != nil {
				if !math.IsInf(bestObj, 1) {
					res.Iters = k
					res.RelaxValue = bestObj
					res.LowerBound = bestLB
				}
				emit(k) // final trajectory point of an interrupted solve
				return err
			}
		}
		phi := s.makespan(s.f, true)
		if phi < bestObj {
			bestObj = phi
			copy(s.fbest, s.f)
		}

		// Subgradient: envelope slopes on one critical path, zero
		// elsewhere.  s.cost is all-zero outside the path (restored at the
		// end of each iteration), so only path arcs are touched.
		path := s.criticalPath()
		gdotf := 0.0
		for _, e := range path {
			_, gr := s.envelope(int(e), s.f[e])
			s.cost[e] = gr
			s.avgCost[e] += gr
			gdotf += gr * s.f[e]
		}
		constSum += phi - gdotf

		// Certified bound, averaged form: the mean of the per-iterate
		// affine minorants phi(f_k) + <g_k, y-f_k> is itself a minorant of
		// phi, and its averaged costs mix MANY critical paths, so no
		// single steep path can collapse the bound - this is what closes
		// the gap on plateaued makespans (wide DAGs, k-way jobs).  The
		// oracle is linear in the costs, so the running sum works
		// unscaled: LB = (constSum + B * c*(sum g_k)) / (k+1).
		if lb := (constSum + B*s.oracle(s.avgCost)) / float64(k+1); lb > bestLB {
			bestLB = lb
		}
		// Per-iterate form: phi(y) >= phi(f) + <g, y-f> for every feasible
		// y, so phi(f) - <g,f> + B*c* is also a sound bound.  This oracle
		// call runs LAST: it leaves the Frank-Wolfe step direction in
		// oraArc for the line search below.
		cstar := s.oracle(s.cost)
		if lb := phi - gdotf + B*cstar; lb > bestLB {
			bestLB = lb
		}
		gapOK := bestObj-bestLB <= o.Tol*math.Max(bestLB, 1)
		if k-lastEmit >= emitEvery {
			emit(k + 1)
			lastEmit = k
		}

		if gapOK || cstar >= 0 {
			for _, e := range path {
				s.cost[e] = 0
			}
			res.Iters = k + 1
			break
		}

		// Direction s_k: B units along the oracle path (sparse), i.e.
		// f(gamma) = (1-gamma) f + gamma * B * 1_path.
		gamma := s.lineSearch(B, k)
		v := s.inst.Sink
		for e := 0; e < m; e++ {
			s.f[e] *= 1 - gamma
		}
		for v != s.inst.Source {
			e := s.oraArc[v]
			s.f[e] += gamma * B
			v = int(s.c.ArcFrom[e])
		}
		for _, e := range path {
			s.cost[e] = 0
		}
		res.Iters = k + 1
	}
	if math.IsInf(bestObj, 1) { // MaxIters == 0 cannot happen, but stay safe
		bestObj = s.makespan(s.f, false)
		copy(s.fbest, s.f)
	}
	res.RelaxValue = bestObj
	res.LowerBound = bestLB
	emit(res.Iters) // final trajectory point, whatever the throttle skipped
	return nil
}

// seedWarm overwrites the zero starting point with Options.WarmFlow when
// it is a conserved non-negative flow on this instance, scaling it
// uniformly into the budget if it overspends (uniform scaling preserves
// conservation, so the seed stays inside the polytope {f >= 0, value <=
// B}).  An invalid seed is ignored.  The first iteration evaluates
// phi(seed) and takes it as the initial best iterate, so a seed near the
// new optimum closes the duality gap in a handful of iterations.
func (s *Solver) seedWarm(budget int64, o Options) {
	wf := o.WarmFlow
	m := s.inst.G.NumEdges()
	if len(wf) != m {
		return
	}
	value, err := flow.Conserved(s.inst.G, wf, s.inst.Source, s.inst.Sink)
	if err != nil {
		return
	}
	scale := 1.0
	if value > budget {
		if value <= 0 {
			return
		}
		scale = float64(budget) / float64(value)
	}
	for e := 0; e < m; e++ {
		s.f[e] = float64(wf[e]) * scale
	}
}

// lineSearch minimizes phi((1-gamma) f + gamma * B * 1_path) over
// gamma in [0,1] by golden-section (phi is convex along the segment).  If
// the search finds no strict improvement it falls back to the classic
// 2/(k+2) step, which lets the iteration slide past subgradient kinks.
func (s *Solver) lineSearch(B float64, k int) float64 {
	eval := func(gamma float64) float64 {
		for e := range s.ftmp {
			s.ftmp[e] = (1 - gamma) * s.f[e]
		}
		v := s.inst.Sink
		for v != s.inst.Source {
			e := s.oraArc[v]
			s.ftmp[e] += gamma * B
			v = int(s.c.ArcFrom[e])
		}
		return s.makespan(s.ftmp, false)
	}
	const invPhi = 0.6180339887498949
	lo, hi := 0.0, 1.0
	x1 := hi - invPhi*(hi-lo)
	x2 := lo + invPhi*(hi-lo)
	f1, f2 := eval(x1), eval(x2)
	for i := 0; i < 10; i++ {
		if f1 <= f2 {
			hi, x2, f2 = x2, x1, f1
			x1 = hi - invPhi*(hi-lo)
			f1 = eval(x1)
		} else {
			lo, x1, f1 = x1, x2, f2
			x2 = lo + invPhi*(hi-lo)
			f2 = eval(x2)
		}
	}
	gamma := (lo + hi) / 2
	base := s.makespan(s.f, false)
	if eval(gamma) < base-1e-9 && gamma > 0 {
		return gamma
	}
	fallback := 2.0 / float64(k+2)
	if fallback > 1 {
		fallback = 1
	}
	return fallback
}

// round applies the Theorem 3.4 threshold rule to the best fractional flow
// and routes an integral minimum flow meeting the rounded requirements.
//
// Per arc, the fractional flow sits on envelope segment [R_j, R_j+1) with
// fraction phi of the segment; phi > 1-alpha rounds up to R_j+1 (duration
// t_j+1 <= envelope value), else down to R_j (duration t_j <=
// envelope/alpha because the envelope keeps at least an alpha fraction of
// t_j).  Either way the rounded requirement is at most f/(1-alpha), so the
// fractional flow scaled by 1/(1-alpha) is feasible for the min-flow and
// the integral optimum uses at most floor(B/(1-alpha)) resources, while
// the makespan is at most RelaxValue/alpha: exactly the paper's bi-criteria
// guarantee, with the computed relaxation standing in for the LP.
func (s *Solver) round(budget int64, alpha float64) (core.Solution, error) {
	m := s.inst.G.NumEdges()
	env := s.env
	for e := 0; e < m; e++ {
		lo, hi := int(env.SegStart[e]), int(env.SegStart[e+1])
		x := s.fbest[e]
		j := lo
		for j+1 < hi && float64(env.R[j+1]) <= x {
			j++
		}
		if j+1 >= hi {
			s.req[e] = env.R[hi-1]
			continue
		}
		frac := (x - float64(env.R[j])) / float64(env.R[j+1]-env.R[j])
		if frac > 1-alpha {
			s.req[e] = env.R[j+1]
		} else {
			s.req[e] = env.R[j]
		}
	}
	res, err := s.mf.Solve(s.req)
	if err != nil {
		return core.Solution{}, err
	}
	f := append([]int64(nil), res.EdgeFlow...)
	return s.inst.NewSolution(f)
}

// MinResource approximately minimizes resource usage under a makespan
// target: it binary-searches the budget, using the rounded solution for
// feasibility and the certified relaxation bound for infeasibility, so the
// returned LowerBound is a sound lower bound on the optimal resource
// usage.  Probes run with a reduced iteration budget; the final budget is
// re-solved at full strength.
func (s *Solver) MinResource(ctx context.Context, target int64, opt Options) (*Result, error) {
	if target < 0 {
		return nil, fmt.Errorf("relax: negative target %d", target)
	}
	o := opt.withDefaults(s.inst.G.NumEdges())
	if o.Alpha <= 0 || o.Alpha >= 1 {
		return nil, fmt.Errorf("relax: alpha %v outside (0,1)", o.Alpha)
	}
	// Binary-search probes each run their own Frank-Wolfe at a different
	// budget; their interleaved trajectories would not be monotone in the
	// resource objective, so MinResource emits no progress (see
	// Options.Progress).
	o.Progress = nil

	// Saturation check: even unlimited resources cannot beat the all-fastest
	// longest path, and the min-flow at full saturation is the cheapest way
	// to realize it.  It doubles as the feasible upper end of the search.
	for e := 0; e < s.inst.G.NumEdges(); e++ {
		s.req[e] = s.env.R[int(s.env.SegStart[e+1])-1]
	}
	satRes, err := s.mf.Solve(s.req)
	if err != nil {
		return nil, err
	}
	// The solver owns satRes.EdgeFlow and the searches below will overwrite
	// it; materialize the saturation solution now.  It is the guaranteed
	// fallback: its makespan is the unlimited-resource longest path.
	satSol, err := s.inst.NewSolution(append([]int64(nil), satRes.EdgeFlow...))
	if err != nil {
		return nil, err
	}
	if satSol.Makespan > target {
		return nil, fmt.Errorf("relax: makespan target %d unreachable even with unlimited resources (floor %d)", target, satSol.Makespan)
	}
	hi := satSol.Value // feasible by construction
	feasible := int64(-1)

	// The slack-based combinatorial bound is free and often tight on loose
	// targets; certified relaxation infeasibility tightens it below.
	resLB := exact.ResourceLowerBound(s.inst, target)

	probe := o
	probe.MaxIters = o.MaxIters / 4
	if probe.MaxIters < 24 {
		probe.MaxIters = 24
	}
	lo := int64(0)
	for lo <= hi {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		mid := lo + (hi-lo)/2
		var pr Result
		if err := s.frankWolfe(ctx, mid, probe, &pr); err != nil {
			return nil, err
		}
		sol, err := s.round(mid, o.Alpha)
		if err != nil {
			return nil, err
		}
		switch {
		case sol.Makespan <= target:
			feasible = mid
			hi = mid - 1
		default:
			// Certified infeasibility promotes the probe into a resource
			// bound: if even the fractional relaxation (or the
			// combinatorial budget floor) cannot reach the target at this
			// budget, every solution needs more.
			if pr.LowerBound <= float64(target) {
				pr.LowerBound = float64(exact.BudgetedMakespanLowerBoundCompiled(s.c, mid))
			}
			if pr.LowerBound > float64(target) && mid+1 > resLB {
				resLB = mid + 1
			}
			lo = mid + 1
		}
	}
	res := &Result{}
	sol := satSol
	if feasible >= 0 {
		if err := s.frankWolfe(ctx, feasible, o, res); err != nil {
			return nil, err
		}
		full, err := s.round(feasible, o.Alpha)
		if err != nil {
			return nil, err
		}
		if full.Makespan > target {
			// The full-strength re-solve found a different fractional
			// point whose rounding misses the target; replay the
			// probe-strength solve that certified feasibility.
			var pr Result
			if err := s.frankWolfe(ctx, feasible, probe, &pr); err != nil {
				return nil, err
			}
			if full, err = s.round(feasible, o.Alpha); err != nil {
				return nil, err
			}
		}
		if full.Makespan <= target && full.Value <= sol.Value {
			sol = full
		}
	}
	res.Sol = sol
	res.RelaxValue = float64(sol.Value)
	res.LowerBound = float64(resLB)
	return res, nil
}

// Package relax is the scale tier's relaxation engine: it solves the
// makespan relaxation of Section 3.1 (LP 6-10) on instances far beyond the
// reach of the dense simplex in internal/lp, and rounds the fractional
// solution with the Theorem 3.4 threshold rule.
//
// Instead of materializing the two-tuple expansion D” and handing a dense
// tableau to simplex - O((m+n)^2) memory, hopeless past a few hundred arcs -
// it works directly on the original instance with the per-arc LOWER CONVEX
// ENVELOPE of the duration breakpoints.  Filling the expansion's parallel
// chains in slope order is exactly linear interpolation along that
// envelope, so
//
//	phi(f) = longest path under envelope durations d^_e(f_e)
//
// minimized over fractional flows of value at most B is a sound relaxation
// (the envelope minorizes the step function pointwise, so no integral flow
// can beat it), and phi is convex in f (a maximum over paths of sums of
// convex per-arc functions).  The envelope model forces the canonical
// chain-filling order of Lemma 3.1, so its optimum is at least the
// expansion LP's - the certified bounds here are never weaker than the
// dense LP's, and are often strictly tighter.  The minimization runs as
// Frank-Wolfe:
//
//   - the subgradient of phi at f is the envelope slope on the arcs of one
//     critical path (zero elsewhere);
//   - the linear minimization oracle over the flow polytope {value <= B,
//     f >= 0} is a single min-cost source-to-sink path under those
//     (non-positive) slopes - O(m) on a DAG by topological sweep;
//   - every iterate certifies a LOWER bound on the relaxation optimum via
//     convexity: phi(f) + min_y <g, y - f> <= relax* <= OPT, so the reported
//     bound is sound even when the (non-smooth) iteration stalls.
//
// # Execution model
//
// All O(m) inner work - the makespan sweep, the line-search probes and the
// linear oracle - runs as pull-based DP over core.Levels' slot schedule:
// node p's value is a pure function of its in-slots, durations and oracle
// costs live in slot-indexed arrays, and the sweep walks three sequential
// arrays front to back.  Envelope evaluations are SUPPORT-SPARSE: the
// slot-duration array always reflects the current iterate, a line-search
// probe re-evaluates only the arcs whose flow the probe actually changes
// (the iterate's support plus the oracle path) and restores them
// afterwards, so a probe costs O(support + sweep) instead of O(m)
// envelope evaluations.
//
// Above ParallelArcThreshold arcs (and when Options.Parallelism allows),
// sweeps run LEVEL-PARALLEL: all nodes of one level depend only on
// shallower levels, so a worker gang processes each level's positions in
// disjoint chunks with a barrier between levels.  Chunks write disjoint
// entries and read only completed levels, so the parallel sweep is
// bit-identical to the sequential one - parallelism changes when a node is
// computed, never what.  Below the threshold the sequential sweep runs on
// the caller's goroutine and small instances pay nothing.
//
// A Solver is built once per instance and reuses all scratch - flow
// vectors, duration and event-time buffers, oracle DP arrays, and the
// integral flow.MinFlowSolver used by rounding - across solves, the same
// per-worker state-reuse pattern as the branch-and-bound's MinFlowSolver:
// give each worker its own Solver; one Solver is not safe for concurrent
// use.
package relax

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/flow"
)

// ParallelArcThreshold is the arc count below which every sweep runs
// sequentially regardless of Options.Parallelism: level-parallel execution
// pays goroutine and barrier costs that only amortize on large instances.
// It is a tunable, not a contract; results are identical on both sides of
// it.
var ParallelArcThreshold = 16384

// Options tunes one relaxation solve.
type Options struct {
	// Alpha is the Theorem 3.4 threshold-rounding parameter in (0,1); the
	// rounded solution has makespan <= RelaxValue/Alpha using at most
	// B/(1-Alpha) resources.  Zero means the 0.5 default.
	Alpha float64
	// MaxIters caps Frank-Wolfe iterations; 0 picks a default scaled to
	// the instance so large solves stay in the "seconds" regime.
	MaxIters int
	// Tol is the relative duality-gap stopping tolerance; 0 means 1%.
	Tol float64
	// Parallelism sizes the level-parallel sweep gang: 0 uses GOMAXPROCS,
	// 1 forces sequential sweeps.  Instances below ParallelArcThreshold
	// arcs always sweep sequentially.  Purely a scheduling knob: the
	// computed iterates, certificates and rounded solution are identical
	// at every setting.
	Parallelism int
	// WarmFlow optionally seeds the Frank-Wolfe iteration with a starting
	// point (typically a stored neighbor's integral solution).  A valid
	// conserved flow is scaled into the budget if it overspends and used
	// as the first iterate; anything else is ignored and the iteration
	// starts from zero as before.  Warm starts are sound by construction:
	// every lower-bound certificate is recomputed from the current
	// iterate's own subgradients (phi is convex at EVERY feasible point,
	// not just along the cold trajectory), so a warm start can change how
	// fast the gap closes and which fractional point gets rounded — both
	// within the certified envelope — but never the validity of the
	// reported bounds.
	WarmFlow []int64
	// Progress, when non-nil, receives the Frank-Wolfe anytime trajectory
	// during budget-mode solves: the best relaxation objective so far
	// (decreasing) and the best certified lower bound so far (increasing),
	// plus the iteration count.  Events are rate-limited to a fixed number
	// per solve and delivered only when the pair actually improved, from
	// the solving goroutine.  MinResource's binary-search probes stay
	// silent: their per-budget trajectories would interleave
	// non-monotonically.  Purely observational: it never steers the
	// iteration.
	Progress func(objective, bound float64, iters int64)
}

func (o Options) withDefaults(m int) Options {
	if o.Alpha == 0 {
		o.Alpha = 0.5
	}
	if o.Tol == 0 {
		o.Tol = 0.01
	}
	if o.MaxIters == 0 {
		// Budget roughly constant total work (~20e6 arc-touches for the
		// Frank-Wolfe loop): 50k-arc instances get a few hundred
		// iterations and stay in the seconds regime, smaller instances
		// iterate until the duality gap closes (the tolerance stop fires
		// long before the cap on easy instances).
		o.MaxIters = 20_000_000 / (m + 1)
		if o.MaxIters > 2400 {
			o.MaxIters = 2400
		}
		if o.MaxIters < 96 {
			o.MaxIters = 96
		}
	}
	return o
}

// Result is the outcome of one relaxation solve plus rounding.
type Result struct {
	// Sol is the rounded integral solution on the original instance.
	Sol core.Solution
	// RelaxValue is the best relaxation objective reached (an upper bound
	// on the relaxation optimum); the rounded makespan is at most
	// RelaxValue/Alpha.
	RelaxValue float64
	// LowerBound is the certified lower bound on the optimal makespan
	// (budget mode) or optimal resource usage (target mode): the best of
	// the Frank-Wolfe duality certificate and the combinatorial
	// budget-floor bound.  It is sound regardless of convergence and
	// positive whenever the optimum is.
	LowerBound float64
	// Iters counts Frank-Wolfe iterations actually run.
	Iters int
	// Sweep names the sweep execution mode the solve used ("seq", or
	// "level-par p=N" for an N-worker level-parallel gang).  Purely
	// diagnostic: results are identical across modes.
	Sweep string
}

// Solver solves the envelope relaxation on one fixed instance repeatedly,
// reusing all scratch buffers across solves.  Not safe for concurrent use;
// give each worker its own.
type Solver struct {
	c    *core.Compiled
	inst *core.Instance

	// env is the per-arc lower convex envelope in CSR form, shared with
	// (and built at most once by) the compiled instance.
	env *core.Envelopes
	// lv is the level decomposition and pull-sweep slot schedule, shared
	// with the compiled instance.
	lv *core.Levels

	srcPos, snkPos int32

	// Slot-indexed state (see core.Levels): durations of the CURRENT
	// iterate, the zero-flow base durations, and the oracle cost arrays.
	durSlot     []float64
	d0Slot      []float64
	costSlot    []float64
	avgCostSlot []float64

	// Arc-indexed saturation thresholds: flow at or beyond satR[e] pins
	// the envelope duration to satD[e] (the last hull point, slope 0).
	// Probes use them to skip envelope evaluation entirely on saturated
	// arcs — under large budgets that is most of the support.
	satR []float64
	satD []float64

	// Position-indexed DP state.
	tval     []float64 // makespan sweep event times
	dist     []float64 // oracle sweep distances
	critSlot []int32   // argmax slot per position (makespan)
	oraSlot  []int32   // argmin slot per position (oracle)

	// Arc-indexed iterate state.
	f, fbest []float64 // current / best flows
	inSupp   []bool    // f[e] > 0
	req      []int64   // rounded per-arc lower bounds

	// Sparse scratch.
	supp      []int32   // arcs with positive flow, insertion order
	pathBuf   []int32   // critical-path arcs
	oraPath   []int32   // oracle-direction path arcs
	touchSlot []int32   // slots a probe modified
	savedDur  []float64 // their pre-probe durations

	dropEps  float64 // flows at or below this are snapped to zero
	lastRung int     // previous accepted line-search rung, seeds the next walk

	par int // sweep gang size for the current solve (1 = sequential)
	bar spinBarrier

	mf *flow.MinFlowSolver
}

// NewSolver builds the reusable relaxation state for inst.  One-shot
// convenience around NewSolverCompiled; callers that already hold a
// compiled instance should use that directly so the topological order and
// envelopes are shared instead of rebuilt.
func NewSolver(inst *core.Instance) *Solver {
	return NewSolverCompiled(core.Compile(inst))
}

// NewSolverCompiled builds the reusable relaxation state on a compiled
// instance: the level schedule and duration envelopes come from the
// compiled form (derived once, shared with every other consumer), and only
// the Frank-Wolfe scratch and the integral min-flow network used by
// rounding are allocated here.  The instance must not change afterwards.
func NewSolverCompiled(c *core.Compiled) *Solver {
	inst := c.Inst
	g := inst.G
	n, m := g.NumNodes(), g.NumEdges()
	s := &Solver{
		c:           c,
		inst:        inst,
		env:         c.Envelopes(),
		lv:          c.Levels(),
		durSlot:     make([]float64, m),
		d0Slot:      make([]float64, m),
		costSlot:    make([]float64, m),
		avgCostSlot: make([]float64, m),
		tval:        make([]float64, n),
		dist:        make([]float64, n),
		critSlot:    make([]int32, n),
		oraSlot:     make([]int32, n),
		satR:        make([]float64, m),
		satD:        make([]float64, m),
		f:           make([]float64, m),
		fbest:       make([]float64, m),
		inSupp:      make([]bool, m),
		req:         make([]int64, m),
		mf:          flow.NewMinFlowSolver(g, inst.Source, inst.Sink),
	}
	s.srcPos = s.lv.Pos[inst.Source]
	s.snkPos = s.lv.Pos[inst.Sink]
	for sl := 0; sl < m; sl++ {
		d, _ := s.env.Eval(int(s.lv.SlotArc[sl]), 0)
		s.d0Slot[sl] = d
	}
	for e := 0; e < m; e++ {
		last := int(s.env.SegStart[e+1]) - 1
		s.satR[e] = float64(s.env.R[last])
		s.satD[e] = float64(s.env.T[last])
	}
	return s
}

// gangSize resolves the sweep gang for one solve: sequential below the
// arc threshold or when parallelism is pinned to 1, otherwise the
// requested (or GOMAXPROCS) worker count capped by the widest level.
func (s *Solver) gangSize(requested int) int {
	if len(s.f) < ParallelArcThreshold {
		return 1
	}
	par := requested
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > s.lv.MaxWidth {
		par = s.lv.MaxWidth
	}
	if par < 1 {
		par = 1
	}
	return par
}

// sweepName names the sweep mode for Result.Sweep.
func (s *Solver) sweepName() string {
	if s.par > 1 {
		return fmt.Sprintf("level-par p=%d", s.par)
	}
	return "seq"
}

// spinBarrier is a reusable sense-reversing barrier for the sweep gang.
// Arrival is an atomic add; the last arriver resets the count and bumps
// the generation, releasing the spinners.  Generations only ever increase,
// so a straggler from a previous sweep can never confuse a later one.  n
// is atomic because gang goroutines are not joined: after the caller
// passes the FINAL barrier of a sweep (which proves every worker has
// already made its arrival add), a released straggler may still be
// re-reading barrier fields on its way out while the caller sizes the
// barrier for the next sweep.
type spinBarrier struct {
	n     atomic.Int32
	count atomic.Int32
	gen   atomic.Uint32
}

// wait blocks until all n gang members have arrived.
func (b *spinBarrier) wait() {
	g := b.gen.Load()
	if b.count.Add(1) == b.n.Load() {
		b.count.Store(0)
		b.gen.Add(1)
		return
	}
	for b.gen.Load() == g {
		runtime.Gosched()
	}
}

// chunk splits [lo, hi) into par near-equal ranges and returns the w-th.
func chunk(lo, hi int32, w, par int) (int32, int32) {
	size := int(hi - lo)
	return lo + int32(size*w/par), lo + int32(size*(w+1)/par)
}

// makespanRange runs the pull-based longest-path kernel over positions
// [lo, hi) of one level: each position's event time is the max over its
// in-slots of tail time plus slot duration, with the FIRST slot achieving
// the max recorded for critical-path backtracking (the deterministic
// tie-break, identical at every gang size).
//
//rt:hotpath — the inner level-sweep kernel, every probe and iteration.
func (s *Solver) makespanRange(lo, hi int32) {
	slotStart, slotFrom := s.lv.SlotStart, s.lv.SlotFrom
	tval := s.tval
	dur := s.durSlot
	crit := s.critSlot
	for p := lo; p < hi; p++ {
		best := 0.0
		bs := int32(-1)
		for sl := slotStart[p]; sl < slotStart[p+1]; sl++ {
			if cand := tval[slotFrom[sl]] + dur[sl]; cand > best {
				best = cand
				bs = sl
			}
		}
		tval[p] = best
		crit[p] = bs
	}
}

// makespanRangeNT is makespanRange without argmax tracking: line-search
// probes only need the sink value, so they skip the critSlot stores.
//
//rt:hotpath — the probe-sweep kernel.
func (s *Solver) makespanRangeNT(lo, hi int32) {
	slotStart, slotFrom := s.lv.SlotStart, s.lv.SlotFrom
	tval := s.tval
	dur := s.durSlot
	for p := lo; p < hi; p++ {
		a, b := slotStart[p], slotStart[p+1]
		frm, drw := slotFrom[a:b], dur[a:b]
		best := 0.0
		for i, f := range frm {
			if cand := tval[f] + drw[i]; cand > best {
				best = cand
			}
		}
		tval[p] = best
	}
}

// oracleRange runs the pull-based min-cost-path kernel over positions
// [lo, hi) of one level, the dual of makespanRange: min over in-slots with
// the first minimizing slot recorded, source pinned to distance 0.
//
//rt:hotpath — the inner oracle kernel.
func (s *Solver) oracleRange(lo, hi int32, cost []float64) {
	slotStart, slotFrom := s.lv.SlotStart, s.lv.SlotFrom
	dist := s.dist
	ora := s.oraSlot
	for p := lo; p < hi; p++ {
		best := math.Inf(1)
		bs := int32(-1)
		for sl := slotStart[p]; sl < slotStart[p+1]; sl++ {
			if cand := dist[slotFrom[sl]] + cost[sl]; cand < best {
				best = cand
				bs = sl
			}
		}
		if p == s.srcPos && best > 0 {
			// The source starts at distance 0; its in-slots (if any) come
			// from nodes unreachable from it, hence +Inf.
			best = 0
			bs = -1
		}
		dist[p] = best
		ora[p] = bs
	}
}

// sweepMakespan computes the longest-path value under the current slot
// durations, leaving per-position event times in tval — and, when track
// is set, argmax slots in critSlot for critical-path backtracking.
// Sequential in position order (a topological order) or level-parallel
// over the gang; both produce identical state.
func (s *Solver) sweepMakespan(track bool) float64 {
	kind := sweepKindMakespanNT
	if track {
		kind = sweepKindMakespan
	}
	if s.par > 1 {
		s.runGang(kind, nil)
	} else if track {
		s.makespanRange(0, int32(len(s.tval)))
	} else {
		s.makespanRangeNT(0, int32(len(s.tval)))
	}
	return s.tval[s.snkPos]
}

// sweepOracle solves the linear minimization min <cost, y> over the flow
// polytope {y >= 0, value(y) <= B}: route all B units along the single
// min-cost source-to-sink path, or route nothing if even the best path
// costs >= 0.  It returns the best path cost c* (<= 0); the chosen path is
// left in oraSlot predecessors.
func (s *Solver) sweepOracle(cost []float64) float64 {
	if s.par > 1 {
		s.runGang(sweepKindOracle, cost)
	} else {
		s.oracleRange(0, int32(len(s.dist)), cost)
	}
	return s.dist[s.snkPos]
}

// sweepKind selects the kernel a gang run executes.
type sweepKind uint8

const (
	sweepKindMakespan sweepKind = iota
	sweepKindMakespanNT
	sweepKindOracle
)

// runGang executes one level-parallel sweep: par workers each take a
// disjoint chunk of every level and meet at a barrier between levels, so
// a position is computed only after every shallower level is complete.
func (s *Solver) runGang(kind sweepKind, cost []float64) {
	s.bar.n.Store(int32(s.par))
	for w := 1; w < s.par; w++ {
		go s.gangWorker(w, kind, cost)
	}
	s.gangWorker(0, kind, cost)
}

// gangWorker sweeps one worker's chunk of every level.
func (s *Solver) gangWorker(w int, kind sweepKind, cost []float64) {
	lv := s.lv
	for l := 0; l < lv.Count; l++ {
		lo, hi := chunk(lv.Start[l], lv.Start[l+1], w, s.par)
		switch kind {
		case sweepKindMakespan:
			s.makespanRange(lo, hi)
		case sweepKindMakespanNT:
			s.makespanRangeNT(lo, hi)
		default:
			s.oracleRange(lo, hi, cost)
		}
		s.bar.wait()
	}
}

// criticalPath appends the arcs of one critical path (sink to source) to
// pathBuf, using the argmax slots recorded by the last tracked sweep.
//
//rt:hotpath — per-iteration; the append reuses s.pathBuf.
func (s *Solver) criticalPath() []int32 {
	s.pathBuf = s.pathBuf[:0]
	lv := s.lv
	p := s.snkPos
	for p != s.srcPos {
		sl := s.critSlot[p]
		if sl < 0 {
			// The sink is reached by a zero-duration prefix the DP never
			// tightened; walk the first incoming slot (durations there are
			// 0 on this path, so the subgradient contribution is
			// unaffected).
			if lv.SlotStart[p] == lv.SlotStart[p+1] {
				break // defensive: a source that is not the source
			}
			sl = lv.SlotStart[p]
		}
		s.pathBuf = append(s.pathBuf, lv.SlotArc[sl])
		p = lv.SlotFrom[sl]
	}
	return s.pathBuf
}

// materializeOraclePath copies the oracle's chosen source-to-sink path out
// of the oraSlot predecessors into oraPath (arc ids, sink to source).
// Valid only after sweepOracle returned a finite cost.
func (s *Solver) materializeOraclePath() {
	s.oraPath = s.oraPath[:0]
	lv := s.lv
	p := s.snkPos
	for p != s.srcPos {
		sl := s.oraSlot[p]
		if sl < 0 {
			break
		}
		s.oraPath = append(s.oraPath, lv.SlotArc[sl])
		p = lv.SlotFrom[sl]
	}
}

// probe evaluates phi((1-gamma) f + gamma * B * 1_oraPath) support-
// sparsely: only the arcs whose flow the probe changes (the support and
// the oracle path) get their slot durations re-evaluated, the pure-DP
// sweep runs, and the touched slots are restored in reverse so duplicate
// touches (support arcs on the path) unwind to the original value.
//
//rt:hotpath — the line-search inner loop; appends reuse solver scratch.
func (s *Solver) probe(gamma, B float64) float64 {
	lv := s.lv
	env := s.env
	s.touchSlot = s.touchSlot[:0]
	s.savedDur = s.savedDur[:0]
	om := 1 - gamma
	for _, e := range s.supp {
		x := om * s.f[e]
		if x >= s.satR[e] {
			// Still saturated after scaling: the current duration is
			// already satD (f[e] >= x >= satR), nothing to touch.
			continue
		}
		sl := lv.ArcSlot[e]
		d, _ := env.Eval(int(e), x)
		s.touchSlot = append(s.touchSlot, sl)
		s.savedDur = append(s.savedDur, s.durSlot[sl])
		s.durSlot[sl] = d
	}
	gb := gamma * B
	for _, e := range s.oraPath {
		sl := lv.ArcSlot[e]
		d, _ := env.Eval(int(e), om*s.f[e]+gb)
		s.touchSlot = append(s.touchSlot, sl)
		s.savedDur = append(s.savedDur, s.durSlot[sl])
		s.durSlot[sl] = d
	}
	phi := s.sweepMakespan(false)
	for i := len(s.touchSlot) - 1; i >= 0; i-- {
		s.durSlot[s.touchSlot[i]] = s.savedDur[i]
	}
	return phi
}

// step commits the iterate update f <- (1-gamma) f + gamma * B * 1_oraPath:
// the support is scaled (and pruned where flow decays to nothing), the
// oracle path is added, and the slot durations are re-evaluated on exactly
// the changed arcs so durSlot always reflects the current iterate.
func (s *Solver) step(gamma, B float64) {
	lv := s.lv
	env := s.env
	om := 1 - gamma
	keep := s.supp[:0]
	for _, e := range s.supp {
		nf := s.f[e] * om
		if nf > s.dropEps && nf >= s.satR[e] {
			// Saturated before and after: duration already satD.
			s.f[e] = nf
			keep = append(keep, e)
			continue
		}
		sl := lv.ArcSlot[e]
		if nf <= s.dropEps {
			s.f[e] = 0
			s.inSupp[e] = false
			s.durSlot[sl] = s.d0Slot[sl]
			continue
		}
		s.f[e] = nf
		d, _ := env.Eval(int(e), nf)
		s.durSlot[sl] = d
		keep = append(keep, e)
	}
	s.supp = keep
	gb := gamma * B
	for _, e := range s.oraPath {
		nf := s.f[e] + gb
		if nf <= s.dropEps {
			continue // zero-budget direction adds nothing
		}
		s.f[e] = nf
		if !s.inSupp[e] {
			s.inSupp[e] = true
			s.supp = append(s.supp, e)
		}
		d, _ := env.Eval(int(e), nf)
		s.durSlot[lv.ArcSlot[e]] = d
	}
}

// MinMakespan solves the envelope relaxation under the resource budget and
// rounds the best fractional flow to an integral solution.  The returned
// Result carries the certified relaxation lower bound: a sound lower bound
// on the optimal makespan at this budget.
func (s *Solver) MinMakespan(ctx context.Context, budget int64, opt Options) (*Result, error) {
	if budget < 0 {
		return nil, fmt.Errorf("relax: negative budget %d", budget)
	}
	o := opt.withDefaults(s.inst.G.NumEdges())
	if o.Alpha <= 0 || o.Alpha >= 1 {
		return nil, fmt.Errorf("relax: alpha %v outside (0,1)", o.Alpha)
	}
	res := &Result{}
	ferr := s.frankWolfe(ctx, budget, o, res)
	if ferr != nil && res.Iters == 0 {
		// Canceled before the first iterate: nothing to round.
		return nil, ferr
	}
	// The duality certificate needs the iteration to get close before it
	// is tight; the combinatorial floor (every arc at its budget-best
	// duration - sound because on a DAG no arc can carry more than the
	// whole budget) is free, always positive when the optimum is, and
	// often the better bound early.  Report the max of the two.
	if floor := float64(exact.BudgetedMakespanLowerBoundCompiled(s.c, budget)); floor > res.LowerBound {
		res.LowerBound = floor
	}
	sol, err := s.round(budget, o.Alpha)
	if err != nil {
		return nil, err
	}
	res.Sol = sol
	// An interrupted iteration still rounds its best iterate: the caller
	// gets a usable (if less converged) solution alongside the context
	// error, mirroring the exact search's partial-report contract.
	return res, ferr
}

// frankWolfe runs the Frank-Wolfe loop at the given budget, leaving the
// best fractional flow in s.fbest and filling res's relaxation fields.
func (s *Solver) frankWolfe(ctx context.Context, budget int64, o Options, res *Result) error {
	m := s.inst.G.NumEdges()
	s.par = s.gangSize(o.Parallelism)
	res.Sweep = s.sweepName()
	B := float64(budget)
	s.dropEps = 1e-12 * B
	// Seed the line-search ladder afresh: results must not depend on what
	// this (reusable) solver ran before.
	s.lastRung = 2

	// Reset the iterate: zero flows, base durations, clean cost arrays.
	for e := 0; e < m; e++ {
		s.f[e] = 0
		s.fbest[e] = 0
		s.costSlot[e] = 0
		s.avgCostSlot[e] = 0
		s.inSupp[e] = false
	}
	copy(s.durSlot, s.d0Slot)
	s.supp = s.supp[:0]
	s.oraPath = s.oraPath[:0]
	s.seedWarm(budget, o)
	for e := 0; e < m; e++ {
		if s.f[e] > 0 {
			s.inSupp[e] = true
			s.supp = append(s.supp, int32(e))
			d, _ := s.env.Eval(e, s.f[e])
			s.durSlot[s.lv.ArcSlot[e]] = d
		}
	}

	bestObj := math.Inf(1)
	bestLB := 0.0
	// Progress throttle: early iterations improve the objective almost
	// every step, so cap delivery at ~64 events per solve and skip events
	// that would repeat an already-sent (objective, bound) pair.
	emitEvery := o.MaxIters / 64
	if emitEvery < 1 {
		emitEvery = 1
	}
	lastEmit := -emitEvery
	sentObj, sentLB := math.Inf(1), math.Inf(-1)
	emit := func(iters int) {
		if o.Progress == nil || math.IsInf(bestObj, 1) {
			return
		}
		if bestObj < sentObj || bestLB > sentLB {
			o.Progress(bestObj, bestLB, int64(iters))
			sentObj, sentLB = bestObj, bestLB
		}
	}
	// constSum and wSum accumulate the weighted minorant constants
	// sum_k w_k (phi(f_k) - <g_k, f_k>) and sum_k w_k for the averaged
	// certificate below.
	constSum := 0.0
	wSum := 0.0

	for k := 0; k < o.MaxIters; k++ {
		if k&7 == 0 {
			if err := ctx.Err(); err != nil {
				if !math.IsInf(bestObj, 1) {
					res.Iters = k
					res.RelaxValue = bestObj
					res.LowerBound = bestLB
				}
				emit(k) // final trajectory point of an interrupted solve
				return err
			}
		}
		phi := s.sweepMakespan(true)
		if phi < bestObj {
			bestObj = phi
			copy(s.fbest, s.f)
		}

		// Subgradient: envelope slopes on one critical path, zero
		// elsewhere.  costSlot is all-zero outside the path (restored at
		// the end of each iteration), so only path slots are touched.
		path := s.criticalPath()
		w := float64(k + 1) // later minorants weigh more, see below
		gdotf := 0.0
		for _, e := range path {
			_, gr := s.env.Eval(int(e), s.f[e])
			sl := s.lv.ArcSlot[e]
			s.costSlot[sl] = gr
			s.avgCostSlot[sl] += w * gr
			gdotf += gr * s.f[e]
		}
		constSum += w * (phi - gdotf)
		wSum += w

		// Certified bound, averaged form: any convex combination of the
		// per-iterate affine minorants phi(f_k) + <g_k, y-f_k> is itself a
		// minorant of phi, and its averaged costs mix MANY critical paths,
		// so no single steep path can collapse the bound - this is what
		// closes the gap on plateaued makespans (wide DAGs, k-way jobs).
		// Weights w_k = k+1 favor the later (near-optimal) iterates over
		// the early wild ones, which closes the certificate in far fewer
		// iterations than the uniform average.  The oracle is linear in
		// the costs, so the weighted running sums work unscaled:
		// LB = (constSum + B * c*(sum w_k g_k)) / wSum.
		if lb := (constSum + B*s.sweepOracle(s.avgCostSlot)) / wSum; lb > bestLB {
			bestLB = lb
		}
		// Per-iterate form: phi(y) >= phi(f) + <g, y-f> for every feasible
		// y, so phi(f) - <g,f> + B*c* is also a sound bound.  This oracle
		// call runs LAST: it leaves the Frank-Wolfe step direction in
		// oraSlot for the line search below.
		cstar := s.sweepOracle(s.costSlot)
		if lb := phi - gdotf + B*cstar; lb > bestLB {
			bestLB = lb
		}
		gapOK := bestObj-bestLB <= o.Tol*math.Max(bestLB, 1)
		if k-lastEmit >= emitEvery {
			emit(k + 1)
			lastEmit = k
		}

		if gapOK || cstar >= 0 {
			for _, e := range path {
				s.costSlot[s.lv.ArcSlot[e]] = 0
			}
			res.Iters = k + 1
			break
		}

		// Direction s_k: B units along the oracle path (sparse), i.e.
		// f(gamma) = (1-gamma) f + gamma * B * 1_path.
		s.materializeOraclePath()
		gamma := s.lineSearch(B, k, phi)
		s.step(gamma, B)
		for _, e := range path {
			s.costSlot[s.lv.ArcSlot[e]] = 0
		}
		res.Iters = k + 1
	}
	if math.IsInf(bestObj, 1) { // MaxIters == 0 cannot happen, but stay safe
		bestObj = s.sweepMakespan(false)
		copy(s.fbest, s.f)
	}
	res.RelaxValue = bestObj
	res.LowerBound = bestLB
	emit(res.Iters) // final trajectory point, whatever the throttle skipped
	return nil
}

// seedWarm overwrites the zero starting point with Options.WarmFlow when
// it is a conserved non-negative flow on this instance, scaling it
// uniformly into the budget if it overspends (uniform scaling preserves
// conservation, so the seed stays inside the polytope {f >= 0, value <=
// B}).  An invalid seed is ignored.  The first iteration evaluates
// phi(seed) and takes it as the initial best iterate, so a seed near the
// new optimum closes the duality gap in a handful of iterations.
func (s *Solver) seedWarm(budget int64, o Options) {
	wf := o.WarmFlow
	m := s.inst.G.NumEdges()
	if len(wf) != m {
		return
	}
	value, err := flow.Conserved(s.inst.G, wf, s.inst.Source, s.inst.Sink)
	if err != nil {
		return
	}
	scale := 1.0
	if value > budget {
		if value <= 0 {
			return
		}
		scale = float64(budget) / float64(value)
	}
	for e := 0; e < m; e++ {
		s.f[e] = float64(wf[e]) * scale
	}
}

// The line search picks steps from a fixed geometric ladder of rungs
// gamma_j = invPhi^j, j in [0, lineSearchMaxRung].  Two deliberate choices:
//
//   - QUANTIZED, FLOORED steps.  phi is a max over paths, and Frank-Wolfe
//     with an exact line minimum zigzags on such non-smooth objectives:
//     the true per-iteration line minimizer shrinks toward zero and the
//     objective crawls.  Keeping the step on a coarse grid with a floor
//     (invPhi^9 ~ 0.008) acts as step-size regularization - each iteration
//     moves real mass onto its path, and descent comes from the SEQUENCE
//     of paths, not from polishing one step.  The floor matches the
//     resolution the former 8-deep golden-section bracketing of [0, 1]
//     could reach, which converged well across the corpus.
//   - WARM-STARTED walk.  Accepted steps drift slowly (geometrically
//     shrinking as the iterate converges), so the search starts at the
//     previously accepted rung, decides a direction by probing one finer
//     rung, and walks while the value improves.  Typically 2-3 probes per
//     iteration against 10 for bracketing from scratch; probes are the
//     dominant per-iteration cost, so this is the difference between ~13
//     and ~6 sweeps per iteration.
const (
	lineSearchMaxRung   = 9  // finest rung: invPhi^9 ~ 0.008
	lineSearchMaxProbes = 10 // safety cap on one search's probe spend
)

// lineSearch approximately minimizes phi((1-gamma) f + gamma * B * 1_path)
// over the rung ladder above, returning the best probed rung.  phi0 is the
// already-computed value at gamma = 0.  If no probe strictly improves on it
// the search falls back to the classic 2/(k+2) step, which lets the
// iteration slide past subgradient kinks.
func (s *Solver) lineSearch(B float64, k int, phi0 float64) float64 {
	const invPhi = 0.6180339887498949
	rung := func(j int) float64 { return math.Pow(invPhi, float64(j)) }
	bestG, bestV := 0.0, phi0
	probes := 0
	eval := func(g float64) float64 {
		probes++
		v := s.probe(g, B)
		if v < bestV {
			bestV, bestG = v, g
		}
		return v
	}
	j := s.lastRung
	if j < 0 || j > lineSearchMaxRung {
		j = 2 // 0.382, the coarse first probe of a fresh bracketing
	}
	v := eval(rung(j))
	finer := true
	if j < lineSearchMaxRung {
		if vf := eval(rung(j + 1)); vf < v {
			j, v = j+1, vf
		} else {
			finer = false
		}
	} else {
		finer = false
	}
	if finer {
		for j < lineSearchMaxRung && probes < lineSearchMaxProbes {
			nv := eval(rung(j + 1))
			if nv >= v {
				break
			}
			j, v = j+1, nv
		}
	} else {
		for j > 0 && probes < lineSearchMaxProbes {
			nv := eval(rung(j - 1))
			if nv >= v {
				break
			}
			j, v = j-1, nv
		}
	}
	if bestV < phi0-1e-9 && bestG > 0 {
		s.lastRung = j
		return bestG
	}
	fallback := 2.0 / float64(k+2)
	if fallback > 1 {
		fallback = 1
	}
	return fallback
}

// round applies the Theorem 3.4 threshold rule to the best fractional flow
// and routes an integral minimum flow meeting the rounded requirements.
//
// Per arc, the fractional flow sits on envelope segment [R_j, R_j+1) with
// fraction phi of the segment; phi > 1-alpha rounds up to R_j+1 (duration
// t_j+1 <= envelope value), else down to R_j (duration t_j <=
// envelope/alpha because the envelope keeps at least an alpha fraction of
// t_j).  Either way the rounded requirement is at most f/(1-alpha), so the
// fractional flow scaled by 1/(1-alpha) is feasible for the min-flow and
// the integral optimum uses at most floor(B/(1-alpha)) resources, while
// the makespan is at most RelaxValue/alpha: exactly the paper's bi-criteria
// guarantee, with the computed relaxation standing in for the LP.
func (s *Solver) round(budget int64, alpha float64) (core.Solution, error) {
	m := s.inst.G.NumEdges()
	env := s.env
	for e := 0; e < m; e++ {
		lo, hi := int(env.SegStart[e]), int(env.SegStart[e+1])
		x := s.fbest[e]
		j := lo
		for j+1 < hi && float64(env.R[j+1]) <= x {
			j++
		}
		if j+1 >= hi {
			s.req[e] = env.R[hi-1]
			continue
		}
		frac := (x - float64(env.R[j])) / float64(env.R[j+1]-env.R[j])
		if frac > 1-alpha {
			s.req[e] = env.R[j+1]
		} else {
			s.req[e] = env.R[j]
		}
	}
	res, err := s.mf.Solve(s.req)
	if err != nil {
		return core.Solution{}, err
	}
	f := append([]int64(nil), res.EdgeFlow...)
	return s.inst.NewSolution(f)
}

// MinResource approximately minimizes resource usage under a makespan
// target: it binary-searches the budget, using the rounded solution for
// feasibility and the certified relaxation bound for infeasibility, so the
// returned LowerBound is a sound lower bound on the optimal resource
// usage.  Probes run with a reduced iteration budget; the final budget is
// re-solved at full strength.
func (s *Solver) MinResource(ctx context.Context, target int64, opt Options) (*Result, error) {
	if target < 0 {
		return nil, fmt.Errorf("relax: negative target %d", target)
	}
	o := opt.withDefaults(s.inst.G.NumEdges())
	if o.Alpha <= 0 || o.Alpha >= 1 {
		return nil, fmt.Errorf("relax: alpha %v outside (0,1)", o.Alpha)
	}
	// Binary-search probes each run their own Frank-Wolfe at a different
	// budget; their interleaved trajectories would not be monotone in the
	// resource objective, so MinResource emits no progress (see
	// Options.Progress).
	o.Progress = nil

	// Saturation check: even unlimited resources cannot beat the all-fastest
	// longest path, and the min-flow at full saturation is the cheapest way
	// to realize it.  It doubles as the feasible upper end of the search.
	for e := 0; e < s.inst.G.NumEdges(); e++ {
		s.req[e] = s.env.R[int(s.env.SegStart[e+1])-1]
	}
	satRes, err := s.mf.Solve(s.req)
	if err != nil {
		return nil, err
	}
	// The solver owns satRes.EdgeFlow and the searches below will overwrite
	// it; materialize the saturation solution now.  It is the guaranteed
	// fallback: its makespan is the unlimited-resource longest path.
	satSol, err := s.inst.NewSolution(append([]int64(nil), satRes.EdgeFlow...))
	if err != nil {
		return nil, err
	}
	if satSol.Makespan > target {
		return nil, fmt.Errorf("relax: makespan target %d unreachable even with unlimited resources (floor %d)", target, satSol.Makespan)
	}
	hi := satSol.Value // feasible by construction
	feasible := int64(-1)

	// The slack-based combinatorial bound is free and often tight on loose
	// targets; certified relaxation infeasibility tightens it below.
	resLB := exact.ResourceLowerBound(s.inst, target)

	probe := o
	probe.MaxIters = o.MaxIters / 4
	if probe.MaxIters < 24 {
		probe.MaxIters = 24
	}
	lo := int64(0)
	for lo <= hi {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		mid := lo + (hi-lo)/2
		var pr Result
		if err := s.frankWolfe(ctx, mid, probe, &pr); err != nil {
			return nil, err
		}
		sol, err := s.round(mid, o.Alpha)
		if err != nil {
			return nil, err
		}
		switch {
		case sol.Makespan <= target:
			feasible = mid
			hi = mid - 1
		default:
			// Certified infeasibility promotes the probe into a resource
			// bound: if even the fractional relaxation (or the
			// combinatorial budget floor) cannot reach the target at this
			// budget, every solution needs more.
			if pr.LowerBound <= float64(target) {
				pr.LowerBound = float64(exact.BudgetedMakespanLowerBoundCompiled(s.c, mid))
			}
			if pr.LowerBound > float64(target) && mid+1 > resLB {
				resLB = mid + 1
			}
			lo = mid + 1
		}
	}
	res := &Result{}
	sol := satSol
	if feasible >= 0 {
		if err := s.frankWolfe(ctx, feasible, o, res); err != nil {
			return nil, err
		}
		full, err := s.round(feasible, o.Alpha)
		if err != nil {
			return nil, err
		}
		if full.Makespan > target {
			// The full-strength re-solve found a different fractional
			// point whose rounding misses the target; replay the
			// probe-strength solve that certified feasibility.
			var pr Result
			if err := s.frankWolfe(ctx, feasible, probe, &pr); err != nil {
				return nil, err
			}
			if full, err = s.round(feasible, o.Alpha); err != nil {
				return nil, err
			}
		}
		if full.Makespan <= target && full.Value <= sol.Value {
			sol = full
		}
	}
	res.Sol = sol
	res.RelaxValue = float64(sol.Value)
	res.LowerBound = float64(resLB)
	res.Sweep = s.sweepName()
	return res, nil
}

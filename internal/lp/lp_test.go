package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, p *Problem) Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v; want optimal", sol.Status)
	}
	return sol
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimpleLE(t *testing.T) {
	// min -x - y  s.t.  x + y <= 4, x <= 2  => x=2, y=2, obj=-4.
	p := New(2)
	p.SetObjective(0, -1)
	p.SetObjective(1, -1)
	p.AddConstraint(LE, []Term{{0, 1}, {1, 1}}, 4)
	p.AddConstraint(LE, []Term{{0, 1}}, 2)
	sol := solveOK(t, p)
	if !approx(sol.Objective, -4) {
		t.Fatalf("objective = %v; want -4", sol.Objective)
	}
	if !approx(sol.X[0]+sol.X[1], 4) {
		t.Fatalf("x = %v", sol.X)
	}
}

func TestGEAndEQ(t *testing.T) {
	// min x + y  s.t.  x + 2y >= 6, x = 2  => y = 2, obj = 4.
	p := New(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.AddConstraint(GE, []Term{{0, 1}, {1, 2}}, 6)
	p.AddConstraint(EQ, []Term{{0, 1}}, 2)
	sol := solveOK(t, p)
	if !approx(sol.Objective, 4) || !approx(sol.X[0], 2) || !approx(sol.X[1], 2) {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestInfeasible(t *testing.T) {
	p := New(1)
	p.AddConstraint(LE, []Term{{0, 1}}, 1)
	p.AddConstraint(GE, []Term{{0, 1}}, 2)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v; want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := New(1)
	p.SetObjective(0, -1)
	p.AddConstraint(GE, []Term{{0, 1}}, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v; want unbounded", sol.Status)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x  s.t.  -x <= -3  (i.e. x >= 3).
	p := New(1)
	p.SetObjective(0, 1)
	p.AddConstraint(LE, []Term{{0, -1}}, -3)
	sol := solveOK(t, p)
	if !approx(sol.X[0], 3) {
		t.Fatalf("x = %v; want 3", sol.X[0])
	}
}

func TestDuplicateTermsAccumulate(t *testing.T) {
	// x + x <= 4 means 2x <= 4.
	p := New(1)
	p.SetObjective(0, -1)
	p.AddConstraint(LE, []Term{{0, 1}, {0, 1}}, 4)
	sol := solveOK(t, p)
	if !approx(sol.X[0], 2) {
		t.Fatalf("x = %v; want 2", sol.X[0])
	}
}

func TestDegenerateEquality(t *testing.T) {
	// Redundant equalities should not confuse phase 1.
	p := New(2)
	p.SetObjective(0, 1)
	p.AddConstraint(EQ, []Term{{0, 1}, {1, 1}}, 2)
	p.AddConstraint(EQ, []Term{{0, 2}, {1, 2}}, 4) // same constraint doubled
	p.AddConstraint(GE, []Term{{0, 1}}, 1)
	sol := solveOK(t, p)
	if !approx(sol.X[0], 1) || !approx(sol.X[1], 1) {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestZeroObjectiveFeasibility(t *testing.T) {
	p := New(2)
	p.AddConstraint(EQ, []Term{{0, 1}, {1, -1}}, 0)
	p.AddConstraint(GE, []Term{{0, 1}}, 5)
	sol := solveOK(t, p)
	if sol.X[0] < 5-1e-9 || !approx(sol.X[0], sol.X[1]) {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestPanicsOnBadVar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for out-of-range variable")
		}
	}()
	New(1).AddConstraint(LE, []Term{{3, 1}}, 1)
}

// TestTransportation solves a classic balanced transportation problem with
// a known optimum.
func TestTransportation(t *testing.T) {
	// Supplies: 20, 30.  Demands: 10, 25, 15.
	// Costs: [2 3 1; 5 4 8].  Known optimal cost = 145.
	//   x00=0  x01=5  x02=15 (cost 15+15=30); x10=10 x11=20 x12=0
	//   cost = 0+15+15 + 50+80 = 160?  Compute via solver and verify
	//   against brute force below instead of a hand value.
	costs := [][]float64{{2, 3, 1}, {5, 4, 8}}
	supply := []float64{20, 30}
	demand := []float64{10, 25, 15}
	p := New(6)
	idx := func(i, j int) int { return i*3 + j }
	for i := range supply {
		var terms []Term
		for j := range demand {
			p.SetObjective(idx(i, j), costs[i][j])
			terms = append(terms, Term{idx(i, j), 1})
		}
		p.AddConstraint(EQ, terms, supply[i])
	}
	for j := range demand {
		var terms []Term
		for i := range supply {
			terms = append(terms, Term{idx(i, j), 1})
		}
		p.AddConstraint(EQ, terms, demand[j])
	}
	sol := solveOK(t, p)

	// Brute-force over integral shipments (optimum is integral here since
	// the constraint matrix is totally unimodular).
	best := math.Inf(1)
	for x00 := 0.0; x00 <= 10; x00++ {
		for x01 := 0.0; x01 <= 20-x00; x01++ {
			x02 := 20 - x00 - x01
			x10 := 10 - x00
			x11 := 25 - x01
			x12 := 15 - x02
			if x02 < 0 || x10 < 0 || x11 < 0 || x12 < 0 {
				continue
			}
			if x10+x11+x12 != 30 {
				continue
			}
			c := 2*x00 + 3*x01 + 1*x02 + 5*x10 + 4*x11 + 8*x12
			if c < best {
				best = c
			}
		}
	}
	if !approx(sol.Objective, best) {
		t.Fatalf("objective = %v; brute force = %v", sol.Objective, best)
	}
}

// TestRandomAgainstEnumeration checks small random LPs with bounded-box
// constraints against grid enumeration of the vertices.
func TestRandomAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		// min c.x s.t. A x <= b, 0 <= x <= 3 with A >= 0 and b >= 0:
		// feasible region nonempty (x=0) and bounded.
		n := 2
		c := []float64{float64(rng.Intn(7) - 3), float64(rng.Intn(7) - 3)}
		var a [][]float64
		var b []float64
		for i := 0; i < 2; i++ {
			a = append(a, []float64{float64(rng.Intn(3)), float64(rng.Intn(3))})
			b = append(b, float64(rng.Intn(6)))
		}
		p := New(n)
		for j := 0; j < n; j++ {
			p.SetObjective(j, c[j])
			p.AddConstraint(LE, []Term{{j, 1}}, 3)
		}
		for i := range a {
			p.AddConstraint(LE, []Term{{0, a[i][0]}, {1, a[i][1]}}, b[i])
		}
		sol := solveOK(t, p)

		// The optimum of an LP over this region is attained at a vertex;
		// a fine grid scan gives a sound lower-bound check.
		best := math.Inf(1)
		const step = 0.25
		for x := 0.0; x <= 3; x += step {
			for y := 0.0; y <= 3; y += step {
				ok := true
				for i := range a {
					if a[i][0]*x+a[i][1]*y > b[i]+1e-9 {
						ok = false
						break
					}
				}
				if ok {
					if v := c[0]*x + c[1]*y; v < best {
						best = v
					}
				}
			}
		}
		if sol.Objective > best+1e-6 {
			t.Fatalf("trial %d: objective %v worse than grid %v", trial, sol.Objective, best)
		}
	}
}

// BenchmarkSolveReuse measures steady-state solving of one LP shape: with
// the pooled workspace the tableau arenas are reused across solves, so
// allocs/op stays flat regardless of problem size (the allocs gate in CI
// watches this).
func BenchmarkSolveReuse(b *testing.B) {
	build := func() *Problem {
		// A chain-structured LP shaped like the makespan relaxations:
		// 40 variables, ~80 mixed constraints.
		p := New(40)
		for i := 0; i < 39; i++ {
			p.AddConstraint(LE, []Term{{Var: i, Coef: 1}, {Var: i + 1, Coef: -0.5}}, float64(5+i%7))
			p.AddConstraint(GE, []Term{{Var: i, Coef: 1}, {Var: i + 1, Coef: 1}}, 1)
		}
		for i := 0; i < 40; i++ {
			p.SetObjective(i, 1+float64(i%3))
		}
		return p
	}
	p := build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := p.Solve()
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}

package lp

import "sync"

// workspace is the pooled scratch of one simplex solve: the normalized
// coefficient rows, the tableau, the reduced-cost rows and the basis all
// carve slices out of two flat arenas sized once per solve.  Solving the
// same relaxation shape repeatedly - the approximation pipeline does, and
// rtserve's workers do it for a living - used to rebuild every row slice
// from the allocator; with the pool a steady-state solve performs a
// constant number of allocations regardless of problem size.
//
// Handed-out slices alias the arena, so nothing taken from a workspace may
// outlive the solve: Solution.X is copied out before release.  The pool
// gives each worker goroutine its own workspace in the steady state (the
// same per-worker reuse pattern as flow.MinFlowSolver), while letting the
// runtime reclaim the arenas under memory pressure.
type workspace struct {
	arena []float64
	ints  []int
	rows  [][]float64
	fOff  int
	iOff  int
	rOff  int
}

var wsPool = sync.Pool{New: func() any { return new(workspace) }}

// prepare sizes the arenas for a solve needing at most nFloat float64s,
// nInt ints and nRow row headers, zeroes the float arena (rows rely on
// zero initialization), and resets the carve-out cursors.
func (w *workspace) prepare(nFloat, nInt, nRow int) {
	if cap(w.arena) < nFloat {
		w.arena = make([]float64, nFloat)
	}
	w.arena = w.arena[:nFloat]
	for i := range w.arena {
		w.arena[i] = 0
	}
	if cap(w.ints) < nInt {
		w.ints = make([]int, nInt)
	}
	w.ints = w.ints[:nInt]
	if cap(w.rows) < nRow {
		w.rows = make([][]float64, nRow)
	}
	w.rows = w.rows[:nRow]
	w.fOff, w.iOff, w.rOff = 0, 0, 0
}

// floats carves a zeroed slice of n float64s out of the arena.
func (w *workspace) floats(n int) []float64 {
	s := w.arena[w.fOff : w.fOff+n : w.fOff+n]
	w.fOff += n
	return s
}

// intSlice carves a slice of n ints out of the int arena.
func (w *workspace) intSlice(n int) []int {
	s := w.ints[w.iOff : w.iOff+n : w.iOff+n]
	w.iOff += n
	return s
}

// rowSlice carves a slice of n row headers.
func (w *workspace) rowSlice(n int) [][]float64 {
	s := w.rows[w.rOff : w.rOff+n : w.rOff+n]
	w.rOff += n
	return s
}

// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	minimize    c . x
//	subject to  a_i . x (<= | = | >=) b_i       for every constraint i
//	            x >= 0
//
// It is the LP engine behind the approximation algorithms of Section 3 of
// Das et al. (SPAA 2019): the makespan relaxation LP 6-10 and its
// minimum-resource dual-use variant are both solved with it.  The solver is
// deliberately simple - a full tableau with Dantzig pricing and a Bland's
// rule fallback that guarantees termination - because the LPs arising here
// have at most a few thousand nonzeros.
package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// Op is a constraint relation.
type Op int

// Constraint relations.
const (
	LE Op = iota // a.x <= b
	GE           // a.x >= b
	EQ           // a.x == b
)

// Term is one coefficient of a sparse constraint row or objective.
type Term struct {
	Var  int
	Coef float64
}

// Status reports the outcome of Solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Solution is the result of Solve.
type Solution struct {
	Status    Status
	X         []float64 // values of the structural variables
	Objective float64   // c . X (meaningful only when Status == Optimal)
}

type row struct {
	terms []Term
	op    Op
	b     float64
}

// Problem accumulates an LP instance.
type Problem struct {
	n    int
	obj  []float64
	rows []row
}

// New returns a problem with n non-negative structural variables and an
// all-zero objective.
func New(n int) *Problem {
	return &Problem{n: n, obj: make([]float64, n)}
}

// NumVars reports the number of structural variables.
func (p *Problem) NumVars() int { return p.n }

// NumConstraints reports the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// SetObjective sets the coefficient of variable j in the minimized
// objective.
func (p *Problem) SetObjective(j int, coef float64) {
	p.obj[j] = coef
}

// AddConstraint appends the constraint (sum of terms) op b.  Variables may
// repeat within terms; their coefficients accumulate.
func (p *Problem) AddConstraint(op Op, terms []Term, b float64) {
	for _, t := range terms {
		if t.Var < 0 || t.Var >= p.n {
			panic(fmt.Sprintf("lp: term references variable %d of %d", t.Var, p.n))
		}
	}
	p.rows = append(p.rows, row{terms: append([]Term(nil), terms...), op: op, b: b})
}

const eps = 1e-8

// maxPivots bounds total pivots as a safety net; the Bland fallback makes
// cycling impossible, so hitting this indicates numerical trouble.
func maxPivots(m, n int) int { return 200 * (m + n + 10) }

// Solve runs two-phase simplex and returns the solution.
func (p *Problem) Solve() (Solution, error) {
	return p.SolveCtx(context.Background())
}

// SolveCtx is Solve with cooperative cancellation: the pivot loop polls
// ctx periodically and aborts with ctx.Err() when it is done, so
// long-running relaxations become interruptible and deadline-bounded.
//
// All solve scratch (tableau, reduced costs, basis) comes from a pooled
// workspace, so repeated solves - per approximation pipeline, per service
// worker - reuse their arenas instead of reallocating them.
func (p *Problem) SolveCtx(ctx context.Context) (Solution, error) {
	m := len(p.rows)
	ws := wsPool.Get().(*workspace)
	defer wsPool.Put(ws)

	// Pass 1: determine each row's operator after sign normalization and
	// count the slack and artificial columns.  Artificial variables: every
	// row gets one if, after normalization, it lacks a natural basic
	// column.  We keep it simple: GE and EQ rows always get artificials;
	// LE rows with negative b are flipped to GE first.
	nSlack, nArt := 0, 0
	for _, r := range p.rows {
		op := r.op
		if r.b < 0 {
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		switch op {
		case LE, GE:
			nSlack++
		}
		if op == GE || op == EQ {
			nArt++
		}
	}
	// Column layout: [0,n) structural, [n, n+slack) slack/surplus,
	// [n+slack, total) artificial.
	nCols := p.n + nSlack + nArt
	// Arena demand: the tableau rows, two objective vectors, and the
	// simplex's reduced-cost row.
	ws.prepare(m*(nCols+1)+2*nCols+(nCols+1), m, m)

	tab := ws.rowSlice(m)
	basis := ws.intSlice(m)
	slackAt, artAt := p.n, p.n+nSlack
	for i, r := range p.rows {
		row := ws.floats(nCols + 1)
		tab[i] = row
		sign, b, op := 1.0, r.b, r.op
		if b < 0 {
			sign, b = -1, -b
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		for _, t := range r.terms {
			row[t.Var] += sign * t.Coef
		}
		row[nCols] = b
		switch op {
		case LE:
			row[slackAt] = 1
			basis[i] = slackAt
			slackAt++
		case GE:
			row[slackAt] = -1
			slackAt++
			row[artAt] = 1
			basis[i] = artAt
			artAt++
		case EQ:
			row[artAt] = 1
			basis[i] = artAt
			artAt++
		}
	}
	artStart := p.n + nSlack

	s := &simplex{tab: tab, basis: basis, nCols: nCols, ctx: ctx, zbuf: ws.floats(nCols + 1)}

	// Phase 1: minimize the sum of artificials.
	if nArt > 0 {
		phase1 := ws.floats(nCols)
		for j := artStart; j < nCols; j++ {
			phase1[j] = 1
		}
		obj, err := s.run(phase1, -1)
		if err != nil {
			return Solution{}, err
		}
		if obj > 1e-6 {
			return Solution{Status: Infeasible}, nil
		}
		// Drive any artificial still in the basis out of it (it must be
		// at value zero); if its row has no eligible pivot the row is
		// redundant and can be zeroed.
		for i := range s.basis {
			if s.basis[i] < artStart {
				continue
			}
			pivoted := false
			for j := 0; j < artStart; j++ {
				if math.Abs(s.tab[i][j]) > eps {
					s.pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				for j := range s.tab[i] {
					s.tab[i][j] = 0
				}
			}
		}
	}
	s.forbidden = artStart // artificials may never re-enter

	// Phase 2: the real objective.
	full := ws.floats(nCols)
	copy(full, p.obj)
	obj, err := s.run(full, -1)
	if err != nil {
		if errors.Is(err, errUnbounded) {
			return Solution{Status: Unbounded}, nil
		}
		return Solution{}, err
	}

	x := make([]float64, p.n)
	for i, bv := range s.basis {
		if bv < p.n {
			x[bv] = s.tab[i][nCols]
		}
	}
	return Solution{Status: Optimal, X: x, Objective: obj}, nil
}

var errUnbounded = errors.New("lp: unbounded")

type simplex struct {
	tab       [][]float64
	basis     []int
	nCols     int
	forbidden int // columns >= forbidden may not enter (0 = none forbidden)
	z         []float64
	zbuf      []float64 // reduced-cost row scratch, reused across phases
	ctx       context.Context
}

// run minimizes obj over the current tableau.  maxIter < 0 uses the default
// bound.  It returns the objective value.
//
//rt:hotpath — the simplex pivot loop over the pooled arena tableau.
func (s *simplex) run(obj []float64, maxIter int) (float64, error) {
	m, nCols := len(s.tab), s.nCols
	if maxIter < 0 {
		maxIter = maxPivots(m, nCols)
	}
	// Reduced-cost row: z[j] = obj[j] - sum over basic rows of
	// obj[basis[i]] * tab[i][j]; with the tableau kept in canonical form
	// this is exact.
	z := s.zbuf
	copy(z, obj)
	z[nCols] = 0
	for i, bv := range s.basis {
		c := obj[bv]
		if c == 0 {
			continue
		}
		for j := 0; j <= nCols; j++ {
			z[j] -= c * s.tab[i][j]
		}
	}
	s.z = z
	blandAfter := maxIter / 2
	for iter := 0; iter < maxIter; iter++ {
		if s.ctx != nil && iter&63 == 0 {
			if err := s.ctx.Err(); err != nil {
				return 0, err
			}
		}
		col := s.chooseEntering(iter >= blandAfter)
		if col < 0 {
			return -z[nCols], nil
		}
		rowi := s.chooseLeaving(col)
		if rowi < 0 {
			return 0, errUnbounded
		}
		s.pivot(rowi, col)
	}
	return 0, errors.New("lp: pivot limit exceeded (numerical trouble)")
}

// z is maintained by run/pivot as the current reduced-cost row.
// (Stored on the struct so pivot can update it.)
//
//rt:hotpath
func (s *simplex) chooseEntering(bland bool) int {
	limit := s.nCols
	if s.forbidden > 0 {
		limit = s.forbidden
	}
	if bland {
		for j := 0; j < limit; j++ {
			if s.z[j] < -eps {
				return j
			}
		}
		return -1
	}
	best, bestVal := -1, -eps
	for j := 0; j < limit; j++ {
		if s.z[j] < bestVal {
			best, bestVal = j, s.z[j]
		}
	}
	return best
}

//rt:hotpath
func (s *simplex) chooseLeaving(col int) int {
	nCols := s.nCols
	best := -1
	var bestRatio float64
	for i := range s.tab {
		a := s.tab[i][col]
		if a <= eps {
			continue
		}
		ratio := s.tab[i][nCols] / a
		if best == -1 || ratio < bestRatio-eps ||
			(ratio < bestRatio+eps && s.basis[i] < s.basis[best]) {
			best, bestRatio = i, ratio
		}
	}
	return best
}

//rt:hotpath
func (s *simplex) pivot(rowi, col int) {
	nCols := s.nCols
	prow := s.tab[rowi]
	pv := prow[col]
	for j := 0; j <= nCols; j++ {
		prow[j] /= pv
	}
	for i := range s.tab {
		if i == rowi {
			continue
		}
		f := s.tab[i][col]
		if f == 0 {
			continue
		}
		trow := s.tab[i]
		for j := 0; j <= nCols; j++ {
			trow[j] -= f * prow[j]
		}
	}
	if s.z != nil {
		f := s.z[col]
		if f != 0 {
			for j := 0; j <= nCols; j++ {
				s.z[j] -= f * prow[j]
			}
		}
	}
	s.basis[rowi] = col
}

package dag

import (
	"fmt"
	"io"
	"strings"
)

// DOT writes the graph in Graphviz DOT syntax.  edgeLabel may be nil; when
// non-nil it supplies a label for each edge ID (empty string omits the
// label).  The output is deterministic: nodes and edges appear in ID order.
func (g *Graph) DOT(w io.Writer, title string, edgeLabel func(e int) string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", title)
	for v, name := range g.names {
		fmt.Fprintf(&b, "  n%d [label=%q];\n", v, name)
	}
	for e, ed := range g.edges {
		label := ""
		if edgeLabel != nil {
			label = edgeLabel(e)
		}
		if label != "" {
			fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", ed.From, ed.To, label)
		} else {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", ed.From, ed.To)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Package dag implements the directed-acyclic-multigraph substrate used by
// every other package in this repository.
//
// The graphs here model the project networks of Das et al. (SPAA 2019):
// vertices are events, arcs are jobs (activity-on-arc form) or precedence
// edges, and the central quantities are topological orders, longest paths
// under per-arc durations, and source-to-sink paths along which resources
// flow.  Multi-arcs are allowed because both the two-tuple expansion of
// Section 3.1 and the race DAGs of Section 1 naturally create parallel arcs.
package dag

import (
	"errors"
	"fmt"
)

// Edge is a directed arc between two node IDs.
type Edge struct {
	From, To int
}

// Graph is a mutable directed multigraph with dense integer node and edge
// IDs.  Nodes and edges are never removed; algorithms that need a reduced
// graph (e.g. series-parallel recognition) copy into their own structures.
type Graph struct {
	names []string
	edges []Edge
	out   [][]int // node -> outgoing edge IDs, in insertion order
	in    [][]int // node -> incoming edge IDs, in insertion order
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// AddNode adds a node with the given display name and returns its ID.
func (g *Graph) AddNode(name string) int {
	id := len(g.names)
	g.names = append(g.names, name)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return id
}

// AddEdge adds an arc from u to v and returns its edge ID.  Parallel arcs
// and self-loops are representable; self-loops are rejected by Validate.
func (g *Graph) AddEdge(u, v int) int {
	if u < 0 || u >= len(g.names) || v < 0 || v >= len(g.names) {
		panic(fmt.Sprintf("dag: AddEdge(%d, %d) with %d nodes", u, v, len(g.names)))
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{From: u, To: v})
	g.out[u] = append(g.out[u], id)
	g.in[v] = append(g.in[v], id)
	return id
}

// NumNodes reports the number of nodes.
func (g *Graph) NumNodes() int { return len(g.names) }

// NumEdges reports the number of arcs.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edge returns the endpoints of edge e.
func (g *Graph) Edge(e int) Edge { return g.edges[e] }

// Name returns the display name of node v.
func (g *Graph) Name(v int) string { return g.names[v] }

// SetName replaces the display name of node v.
func (g *Graph) SetName(v int, name string) { g.names[v] = name }

// Out returns the IDs of arcs leaving v.  The slice is owned by the graph.
func (g *Graph) Out(v int) []int { return g.out[v] }

// In returns the IDs of arcs entering v.  The slice is owned by the graph.
func (g *Graph) In(v int) []int { return g.in[v] }

// OutDegree reports the number of arcs leaving v.
func (g *Graph) OutDegree(v int) int { return len(g.out[v]) }

// InDegree reports the number of arcs entering v.
func (g *Graph) InDegree(v int) int { return len(g.in[v]) }

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		names: append([]string(nil), g.names...),
		edges: append([]Edge(nil), g.edges...),
		out:   make([][]int, len(g.out)),
		in:    make([][]int, len(g.in)),
	}
	for v := range g.out {
		c.out[v] = append([]int(nil), g.out[v]...)
		c.in[v] = append([]int(nil), g.in[v]...)
	}
	return c
}

// ErrCyclic is reported when a graph expected to be acyclic has a cycle.
var ErrCyclic = errors.New("dag: graph contains a cycle")

// TopoOrder returns a topological order of the nodes, or ErrCyclic.
func (g *Graph) TopoOrder() ([]int, error) {
	n := len(g.names)
	indeg := make([]int, n)
	for _, e := range g.edges {
		indeg[e.To]++
	}
	order := make([]int, 0, n)
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, e := range g.out[v] {
			w := g.edges[e].To
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCyclic
	}
	return order, nil
}

// Sources returns all nodes with in-degree zero.
func (g *Graph) Sources() []int {
	var s []int
	for v := range g.names {
		if len(g.in[v]) == 0 {
			s = append(s, v)
		}
	}
	return s
}

// Sinks returns all nodes with out-degree zero.
func (g *Graph) Sinks() []int {
	var s []int
	for v := range g.names {
		if len(g.out[v]) == 0 {
			s = append(s, v)
		}
	}
	return s
}

// Validate checks that the graph is a single-source single-sink DAG in which
// every node lies on some source-to-sink path (equivalently: every node is
// reachable from the source and co-reachable from the sink).  It returns the
// source and sink IDs.  This is the structural precondition of the
// resource-flow model: a unit of resource must be routable through any arc.
func (g *Graph) Validate() (source, sink int, err error) {
	if g.NumNodes() == 0 {
		return 0, 0, errors.New("dag: empty graph")
	}
	for id, e := range g.edges {
		if e.From == e.To {
			return 0, 0, fmt.Errorf("dag: edge %d is a self-loop on node %d", id, e.From)
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return 0, 0, err
	}
	srcs, snks := g.Sources(), g.Sinks()
	if len(srcs) != 1 {
		return 0, 0, fmt.Errorf("dag: want exactly 1 source, have %d", len(srcs))
	}
	if len(snks) != 1 {
		return 0, 0, fmt.Errorf("dag: want exactly 1 sink, have %d", len(snks))
	}
	source, sink = srcs[0], snks[0]
	fromSrc := g.ReachableFrom(source)
	toSink := g.CoReachable(sink)
	for v := range g.names {
		if !fromSrc[v] {
			return 0, 0, fmt.Errorf("dag: node %d (%s) unreachable from source", v, g.names[v])
		}
		if !toSink[v] {
			return 0, 0, fmt.Errorf("dag: node %d (%s) cannot reach sink", v, g.names[v])
		}
	}
	return source, sink, nil
}

// ReachableFrom returns the set of nodes reachable from v (including v).
func (g *Graph) ReachableFrom(v int) []bool {
	seen := make([]bool, len(g.names))
	stack := []int{v}
	seen[v] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.out[u] {
			w := g.edges[e].To
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return seen
}

// CoReachable returns the set of nodes from which v is reachable
// (including v).
func (g *Graph) CoReachable(v int) []bool {
	seen := make([]bool, len(g.names))
	stack := []int{v}
	seen[v] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.in[u] {
			w := g.edges[e].From
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return seen
}

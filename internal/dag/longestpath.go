package dag

import (
	"errors"
	"fmt"
)

// EventTimes computes, for every node v, the longest-path distance T[v] from
// the graph's sources under the given per-edge durations:
//
//	T[v] = max over incoming edges (u,v) of T[u] + dur[e],   T[source] = 0.
//
// In the project-network reading (Section 2 of the paper) T[v] is the
// earliest time event v can occur, and T[sink] is the makespan.
func (g *Graph) EventTimes(dur []int64) ([]int64, error) {
	if len(dur) != len(g.edges) {
		return nil, fmt.Errorf("dag: EventTimes got %d durations for %d edges", len(dur), len(g.edges))
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	t := make([]int64, len(g.names))
	for _, v := range order {
		for _, e := range g.out[v] {
			w := g.edges[e].To
			if cand := t[v] + dur[e]; cand > t[w] {
				t[w] = cand
			}
		}
	}
	return t, nil
}

// ReverseEventTimes computes, for every node v, the longest-path distance
// from v to the graph's sinks under the given per-edge durations (the
// mirror of EventTimes).  In the project-network reading it is the latest
// remaining work after event v, so EventTimes[v] + ReverseEventTimes[v]
// is the length of the longest path through v.
func (g *Graph) ReverseEventTimes(dur []int64) ([]int64, error) {
	if len(dur) != len(g.edges) {
		return nil, fmt.Errorf("dag: ReverseEventTimes got %d durations for %d edges", len(dur), len(g.edges))
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	t := make([]int64, len(g.names))
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		for _, e := range g.out[v] {
			if cand := t[g.edges[e].To] + dur[e]; cand > t[v] {
				t[v] = cand
			}
		}
	}
	return t, nil
}

// Makespan returns the longest-path length from sources to sinks under the
// given per-edge durations.
func (g *Graph) Makespan(dur []int64) (int64, error) {
	t, err := g.EventTimes(dur)
	if err != nil {
		return 0, err
	}
	var m int64
	for _, v := range t {
		if v > m {
			m = v
		}
	}
	return m, nil
}

// CriticalPath returns one longest path (as a sequence of edge IDs) under
// the given durations, together with its length.
func (g *Graph) CriticalPath(dur []int64) ([]int, int64, error) {
	t, err := g.EventTimes(dur)
	if err != nil {
		return nil, 0, err
	}
	// Find the node achieving the makespan.
	end := 0
	for v := range t {
		if t[v] > t[end] {
			end = v
		}
	}
	// Walk backwards along tight edges.
	var rev []int
	v := end
	for {
		var pick = -1
		for _, e := range g.in[v] {
			u := g.edges[e].From
			if t[u]+dur[e] == t[v] {
				pick = e
				break
			}
		}
		if pick == -1 {
			if t[v] != 0 {
				return nil, 0, errors.New("dag: inconsistent event times")
			}
			break
		}
		rev = append(rev, pick)
		v = g.edges[pick].From
	}
	path := make([]int, len(rev))
	for i, e := range rev {
		path[len(rev)-1-i] = e
	}
	return path, t[end], nil
}

// Paths enumerates source-to-sink paths between s and t as sequences of edge
// IDs, visiting at most limit paths (limit <= 0 means no bound).  It reports
// whether enumeration was exhaustive.
func (g *Graph) Paths(s, t, limit int) (paths [][]int, exhaustive bool) {
	exhaustive = true
	var cur []int
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == t {
			paths = append(paths, append([]int(nil), cur...))
			return limit <= 0 || len(paths) < limit
		}
		for _, e := range g.out[v] {
			cur = append(cur, e)
			ok := rec(g.edges[e].To)
			cur = cur[:len(cur)-1]
			if !ok {
				exhaustive = false
				return false
			}
		}
		return true
	}
	rec(s)
	return paths, exhaustive
}

// CountPaths returns the number of distinct s-to-t paths, saturating at the
// given cap to avoid overflow on dense DAGs.
func (g *Graph) CountPaths(s, t int, cap int64) int64 {
	order, err := g.TopoOrder()
	if err != nil {
		return 0
	}
	cnt := make([]int64, len(g.names))
	cnt[s] = 1
	for _, v := range order {
		if cnt[v] == 0 {
			continue
		}
		for _, e := range g.out[v] {
			w := g.edges[e].To
			cnt[w] += cnt[v]
			if cnt[w] > cap {
				cnt[w] = cap
			}
		}
	}
	return cnt[t]
}

package dag

import (
	"math/rand"
	"strings"
	"testing"
)

// line builds s -> v1 -> ... -> v(n-1) and returns the graph.
func line(n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode("v")
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// diamond builds the 4-node diamond s -> {a, b} -> t.
func diamond() *Graph {
	g := New()
	s := g.AddNode("s")
	a := g.AddNode("a")
	b := g.AddNode("b")
	t := g.AddNode("t")
	g.AddEdge(s, a)
	g.AddEdge(a, t)
	g.AddEdge(s, b)
	g.AddEdge(b, t)
	return g
}

func TestAddNodeEdgeBasics(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	if a != 0 || b != 1 {
		t.Fatalf("node IDs = %d, %d; want 0, 1", a, b)
	}
	e := g.AddEdge(a, b)
	if e != 0 {
		t.Fatalf("edge ID = %d; want 0", e)
	}
	if got := g.Edge(e); got.From != a || got.To != b {
		t.Fatalf("Edge(%d) = %+v", e, got)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("NumNodes=%d NumEdges=%d", g.NumNodes(), g.NumEdges())
	}
	if g.OutDegree(a) != 1 || g.InDegree(b) != 1 || g.InDegree(a) != 0 {
		t.Fatal("degree bookkeeping wrong")
	}
	if g.Name(a) != "a" {
		t.Fatalf("Name = %q", g.Name(a))
	}
	g.SetName(a, "s")
	if g.Name(a) != "s" {
		t.Fatalf("SetName did not take: %q", g.Name(a))
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for out-of-range endpoint")
		}
	}()
	New().AddEdge(0, 1)
}

func TestTopoOrder(t *testing.T) {
	g := diamond()
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, g.NumNodes())
	for i, v := range order {
		pos[v] = i
	}
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(e)
		if pos[ed.From] >= pos[ed.To] {
			t.Fatalf("edge %d violates topological order", e)
		}
	}
}

func TestTopoOrderCycle(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddEdge(a, b)
	g.AddEdge(b, a)
	if _, err := g.TopoOrder(); err != ErrCyclic {
		t.Fatalf("err = %v; want ErrCyclic", err)
	}
}

func TestValidateAcceptsDiamond(t *testing.T) {
	s, snk, err := diamond().Validate()
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 || snk != 3 {
		t.Fatalf("source=%d sink=%d; want 0, 3", s, snk)
	}
}

func TestValidateRejections(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		if _, _, err := New().Validate(); err == nil {
			t.Fatal("want error for empty graph")
		}
	})
	t.Run("two sources", func(t *testing.T) {
		g := New()
		a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
		g.AddEdge(a, c)
		g.AddEdge(b, c)
		if _, _, err := g.Validate(); err == nil {
			t.Fatal("want error for two sources")
		}
	})
	t.Run("two sinks", func(t *testing.T) {
		g := New()
		a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
		g.AddEdge(a, b)
		g.AddEdge(a, c)
		if _, _, err := g.Validate(); err == nil {
			t.Fatal("want error for two sinks")
		}
	})
	t.Run("self loop", func(t *testing.T) {
		g := line(3)
		g.AddEdge(1, 1)
		if _, _, err := g.Validate(); err == nil {
			t.Fatal("want error for self loop")
		}
	})
	t.Run("cycle", func(t *testing.T) {
		g := line(4)
		g.AddEdge(2, 1)
		if _, _, err := g.Validate(); err == nil {
			t.Fatal("want error for cycle")
		}
	})
}

func TestEventTimesLine(t *testing.T) {
	g := line(5)
	times, err := g.EventTimes([]int64{3, 1, 4, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 3, 4, 8, 9}
	for v := range want {
		if times[v] != want[v] {
			t.Fatalf("T[%d] = %d; want %d", v, times[v], want[v])
		}
	}
}

func TestEventTimesDiamondTakesMax(t *testing.T) {
	g := diamond()
	// Path via a costs 2+5=7, via b costs 3+1=4.
	ms, err := g.Makespan([]int64{2, 5, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if ms != 7 {
		t.Fatalf("makespan = %d; want 7", ms)
	}
}

func TestEventTimesWrongLength(t *testing.T) {
	if _, err := diamond().EventTimes([]int64{1}); err == nil {
		t.Fatal("want error for wrong duration length")
	}
}

func TestCriticalPath(t *testing.T) {
	g := diamond()
	dur := []int64{2, 5, 3, 1}
	path, length, err := g.CriticalPath(dur)
	if err != nil {
		t.Fatal(err)
	}
	if length != 7 {
		t.Fatalf("length = %d; want 7", length)
	}
	var sum int64
	for _, e := range path {
		sum += dur[e]
	}
	if sum != length {
		t.Fatalf("path durations sum to %d; want %d", sum, length)
	}
	// Path must be contiguous from source to sink.
	if g.Edge(path[0]).From != 0 || g.Edge(path[len(path)-1]).To != 3 {
		t.Fatal("critical path does not span source to sink")
	}
	for i := 0; i+1 < len(path); i++ {
		if g.Edge(path[i]).To != g.Edge(path[i+1]).From {
			t.Fatal("critical path not contiguous")
		}
	}
}

func TestPathsDiamond(t *testing.T) {
	g := diamond()
	paths, exhaustive := g.Paths(0, 3, 0)
	if !exhaustive || len(paths) != 2 {
		t.Fatalf("paths = %v exhaustive = %v; want 2 paths", paths, exhaustive)
	}
	if n := g.CountPaths(0, 3, 1<<40); n != 2 {
		t.Fatalf("CountPaths = %d; want 2", n)
	}
}

func TestPathsLimit(t *testing.T) {
	g := diamond()
	paths, exhaustive := g.Paths(0, 3, 1)
	if exhaustive || len(paths) != 1 {
		t.Fatalf("limit=1: got %d paths exhaustive=%v", len(paths), exhaustive)
	}
}

func TestCountPathsSaturates(t *testing.T) {
	// A chain of k diamonds has 2^k paths; check saturation at the cap.
	g := New()
	prev := g.AddNode("s")
	for i := 0; i < 50; i++ {
		a := g.AddNode("a")
		b := g.AddNode("b")
		next := g.AddNode("j")
		g.AddEdge(prev, a)
		g.AddEdge(prev, b)
		g.AddEdge(a, next)
		g.AddEdge(b, next)
		prev = next
	}
	if n := g.CountPaths(0, prev, 1000); n != 1000 {
		t.Fatalf("CountPaths = %d; want saturation at 1000", n)
	}
}

func TestReachability(t *testing.T) {
	g := diamond()
	from := g.ReachableFrom(1) // node a reaches a and t
	want := []bool{false, true, false, true}
	for v := range want {
		if from[v] != want[v] {
			t.Fatalf("ReachableFrom(a)[%d] = %v", v, from[v])
		}
	}
	to := g.CoReachable(1) // a is reachable from s and a
	want = []bool{true, true, false, false}
	for v := range want {
		if to[v] != want[v] {
			t.Fatalf("CoReachable(a)[%d] = %v", v, to[v])
		}
	}
}

func TestClone(t *testing.T) {
	g := diamond()
	c := g.Clone()
	c.AddNode("extra")
	c.AddEdge(3, 4)
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatal("Clone is not independent of the original")
	}
}

func TestDOT(t *testing.T) {
	g := diamond()
	var b strings.Builder
	if err := g.DOT(&b, "d", func(e int) string {
		if e == 0 {
			return "x"
		}
		return ""
	}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"digraph", "n0 -> n1", `label="x"`, "n2 -> n3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}

// TestRandomLayeredTopoAndTimes cross-checks EventTimes against a slow
// recursive longest-path computation on random layered DAGs.
func TestRandomLayeredTopoAndTimes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		g, dur := randomLayered(rng)
		got, err := g.Makespan(dur)
		if err != nil {
			t.Fatal(err)
		}
		want := slowMakespan(g, dur)
		if got != want {
			t.Fatalf("trial %d: Makespan = %d; slow = %d", trial, got, want)
		}
	}
}

func randomLayered(rng *rand.Rand) (*Graph, []int64) {
	g := New()
	s := g.AddNode("s")
	prev := []int{s}
	for l := 0; l < 3; l++ {
		width := 1 + rng.Intn(3)
		var layer []int
		for i := 0; i < width; i++ {
			v := g.AddNode("v")
			layer = append(layer, v)
			g.AddEdge(prev[rng.Intn(len(prev))], v)
		}
		// Extra random edges for density.
		for i := 0; i < 2; i++ {
			g.AddEdge(prev[rng.Intn(len(prev))], layer[rng.Intn(len(layer))])
		}
		prev = layer
	}
	t := g.AddNode("t")
	for _, v := range prev {
		g.AddEdge(v, t)
	}
	dur := make([]int64, g.NumEdges())
	for e := range dur {
		dur[e] = int64(rng.Intn(10))
	}
	return g, dur
}

func slowMakespan(g *Graph, dur []int64) int64 {
	memo := make(map[int]int64)
	var longest func(v int) int64
	longest = func(v int) int64 {
		if m, ok := memo[v]; ok {
			return m
		}
		var best int64
		for _, e := range g.In(v) {
			if c := longest(g.Edge(e).From) + dur[e]; c > best {
				best = c
			}
		}
		memo[v] = best
		return best
	}
	var best int64
	for v := 0; v < g.NumNodes(); v++ {
		if c := longest(v); c > best {
			best = c
		}
	}
	return best
}

package cluster

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func testClient(cfg ClientConfig) *Client {
	c := NewClient(cfg)
	c.sleep = func(ctx context.Context, d time.Duration) error {
		select { // no real backoff in tests
		case <-ctx.Done():
			return ctx.Err()
		default:
			return nil
		}
	}
	return c
}

func TestClientPostAndGet(t *testing.T) {
	var gotBody atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			buf := make([]byte, r.ContentLength)
			r.Body.Read(buf)
			gotBody.Store(string(buf))
			if ct := r.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("content-type = %q", ct)
			}
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	c := testClient(ClientConfig{})
	defer c.CloseIdle()

	body, status, err := c.PostJSON(context.Background(), ts.URL, []byte(`{"x":1}`))
	if err != nil || status != http.StatusOK || string(body) != `{"ok":true}` {
		t.Fatalf("PostJSON = %q, %d, %v", body, status, err)
	}
	if gotBody.Load() != `{"x":1}` {
		t.Fatalf("server saw body %q", gotBody.Load())
	}
	body, status, err = c.GetJSON(context.Background(), ts.URL)
	if err != nil || status != http.StatusOK || string(body) != `{"ok":true}` {
		t.Fatalf("GetJSON = %q, %d, %v", body, status, err)
	}
}

// TestClientDoesNotRetryHTTPErrors: a 4xx/5xx response means the peer
// received and processed the request; retrying would double-deliver for
// no benefit, so the client must return it as-is on the first attempt.
func TestClientDoesNotRetryHTTPErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":{"code":"invalid_request"}}`))
	}))
	defer ts.Close()

	c := testClient(ClientConfig{Retries: 3})
	defer c.CloseIdle()
	body, status, err := c.PostJSON(context.Background(), ts.URL, []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusBadRequest || !strings.Contains(string(body), "invalid_request") {
		t.Fatalf("got %d %q", status, body)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("HTTP error retried: %d calls", n)
	}
}

// TestClientRetriesTransportErrors: the first connections are accepted
// and slammed shut before any response; the client must retry and
// succeed once the server behaves.
func TestClientRetriesTransportErrors(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var conns atomic.Int64
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			if conns.Add(1) <= 2 {
				conn.Close() // reset before a response: transport error
				continue
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 4096)
				c.Read(buf)
				c.Write([]byte("HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: close\r\n\r\nok"))
			}(conn)
		}
	}()
	defer l.Close()

	c := testClient(ClientConfig{Retries: 2})
	defer c.CloseIdle()
	body, status, err := c.GetJSON(context.Background(), "http://"+l.Addr().String())
	if err != nil {
		t.Fatalf("retries exhausted: %v (%d conns)", err, conns.Load())
	}
	if status != http.StatusOK || string(body) != "ok" {
		t.Fatalf("got %d %q", status, body)
	}
}

// TestClientExhaustsRetryBudget: a dead peer (closed port) must yield a
// final error quickly — the forwarding layer then falls back to a local
// solve.
func TestClientExhaustsRetryBudget(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + l.Addr().String()
	l.Close() // nothing is listening now

	c := testClient(ClientConfig{Retries: 2})
	defer c.CloseIdle()
	_, _, err = c.PostJSON(context.Background(), dead, []byte(`{}`))
	if err == nil {
		t.Fatal("expected error against dead peer")
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Fatalf("error does not report attempts: %v", err)
	}
}

func TestClientHonorsContextCancel(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + l.Addr().String()
	l.Close()

	c := NewClient(ClientConfig{Retries: 5, Backoff: time.Hour}) // real sleep: cancel must interrupt it
	defer c.CloseIdle()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.PostJSON(ctx, dead, []byte(`{}`))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "context canceled") {
			t.Fatalf("err = %v, want context canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not interrupt the retry loop")
	}
}

package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"
)

// Client is the HTTP client nodes use to talk to their peers: one
// shared transport with bounded per-peer connection reuse, a short dial
// timeout (an unreachable peer must fail fast so the caller can degrade
// to a local solve), and retry-with-backoff on transport errors.
//
// Retrying a solve POST is safe because solves are pure functions of
// the request — the worst a duplicate delivery can cost the owner is a
// single-flight coalesce or a cache hit, never a different answer.
// Only transport-level failures (dial refused, connection reset before
// a response) are retried; any HTTP response, success or failure, is
// returned to the caller as-is, since the owner has already seen the
// request.
type Client struct {
	hc      *http.Client
	retries int
	backoff time.Duration

	// sleep is the inter-retry wait, replaceable by tests.
	sleep func(ctx context.Context, d time.Duration) error
}

// ClientConfig tunes a Client; zero values take the defaults below.
type ClientConfig struct {
	// MaxIdlePerPeer caps idle kept-alive connections per peer
	// (default 4); MaxConnsPerPeer caps total concurrent connections
	// per peer (default 16) so one hot owner cannot exhaust the
	// proxy's descriptors.
	MaxIdlePerPeer  int
	MaxConnsPerPeer int
	// DialTimeout bounds connection establishment (default 2s): the
	// owner-unreachable detection latency, and therefore the worst
	// extra latency before a fallback local solve starts.
	DialTimeout time.Duration
	// Retries is how many times a transport-failed call is retried
	// (default 2); Backoff is the base of the exponential backoff
	// between attempts (default 25ms, so 25ms then 50ms).
	Retries int
	// Backoff is the base inter-retry delay; see Retries.
	Backoff time.Duration
}

// Defaults for ClientConfig zero values.
const (
	defaultMaxIdlePerPeer  = 4
	defaultMaxConnsPerPeer = 16
	defaultDialTimeout     = 2 * time.Second
	defaultRetries         = 2
	defaultBackoff         = 25 * time.Millisecond
)

// NewClient builds a peer client from cfg.
func NewClient(cfg ClientConfig) *Client {
	if cfg.MaxIdlePerPeer <= 0 {
		cfg.MaxIdlePerPeer = defaultMaxIdlePerPeer
	}
	if cfg.MaxConnsPerPeer <= 0 {
		cfg.MaxConnsPerPeer = defaultMaxConnsPerPeer
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = defaultDialTimeout
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = defaultRetries
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = defaultBackoff
	}
	transport := &http.Transport{
		DialContext: (&net.Dialer{
			Timeout:   cfg.DialTimeout,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		MaxIdleConnsPerHost: cfg.MaxIdlePerPeer,
		MaxConnsPerHost:     cfg.MaxConnsPerPeer,
		IdleConnTimeout:     90 * time.Second,
		// No ResponseHeaderTimeout: a forwarded solve's headers arrive
		// only when the owner finishes computing, which may legitimately
		// take as long as the caller's context allows.  Cancellation is
		// the caller's context, not a transport timer.
	}
	return &Client{
		hc:      &http.Client{Transport: transport},
		retries: cfg.Retries,
		backoff: cfg.Backoff,
		sleep: func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	}
}

// PostJSON posts body to url under ctx and returns the response body
// and status.  Transport errors are retried with exponential backoff up
// to the configured retry budget; an exhausted budget returns the last
// error.  Any HTTP response — including 4xx/5xx — is a successful call
// at this layer: the peer spoke, and what it said is the caller's
// business.
func (c *Client) PostJSON(ctx context.Context, url string, body []byte) ([]byte, int, error) {
	return c.do(ctx, http.MethodPost, url, body)
}

// GetJSON issues a GET to url under ctx with the same retry contract as
// PostJSON.
func (c *Client) GetJSON(ctx context.Context, url string) ([]byte, int, error) {
	return c.do(ctx, http.MethodGet, url, nil)
}

func (c *Client) do(ctx context.Context, method, url string, body []byte) ([]byte, int, error) {
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, c.backoff<<(attempt-1)); err != nil {
				return nil, 0, err
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, url, rd)
		if err != nil {
			return nil, 0, err // malformed URL: retrying cannot help
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return nil, 0, ctx.Err()
			}
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		return data, resp.StatusCode, nil
	}
	return nil, 0, fmt.Errorf("cluster: %s %s failed after %d attempts: %w",
		method, url, c.retries+1, lastErr)
}

// CloseIdle drops every idle kept-alive connection; tests and shutdown
// paths use it so a closed cluster leaves no lingering sockets.
func (c *Client) CloseIdle() {
	c.hc.CloseIdleConnections()
}

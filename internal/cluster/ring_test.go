package cluster

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

func mustRing(t *testing.T, self string, peers ...string) *Ring {
	t.Helper()
	r, err := NewRing(self, peers)
	if err != nil {
		t.Fatalf("NewRing(%q, %v): %v", self, peers, err)
	}
	return r
}

func TestNewRingNormalizesAndSorts(t *testing.T) {
	r := mustRing(t, "http://b:2",
		"http://a:1/", " http://c:3 ", "http://b:2", "http://a:1")
	want := []string{"http://a:1", "http://b:2", "http://c:3"}
	if got := r.Peers(); len(got) != len(want) {
		t.Fatalf("peers = %v, want %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("peers = %v, want %v", got, want)
			}
		}
	}
	if r.Self() != "http://b:2" {
		t.Fatalf("self = %q", r.Self())
	}
	if r.Size() != 3 {
		t.Fatalf("size = %d", r.Size())
	}
}

func TestNewRingAddsSelfIfAbsent(t *testing.T) {
	r := mustRing(t, "http://self:1", "http://other:2")
	if r.Size() != 2 {
		t.Fatalf("size = %d, want 2 (self added)", r.Size())
	}
}

func TestNewRingRejectsBadAddresses(t *testing.T) {
	bad := []string{
		"",
		"localhost:8080",     // no scheme
		"ftp://host:1",       // wrong scheme
		"http://",            // no host
		"http://host:1/path", // path
		"http://host:1?q=1",  // query
		"http://host:1#frag", // fragment
		"http://host:1/x/y",  // deep path
	}
	for _, addr := range bad {
		if _, err := NewRing("http://self:1", []string{addr}); err == nil {
			t.Errorf("NewRing accepted bad peer %q", addr)
		}
		if _, err := NewRing(addr, nil); err == nil {
			t.Errorf("NewRing accepted bad self %q", addr)
		}
	}
}

// TestOwnerAgreesAcrossMembers is the core cluster contract: every
// member, given the same peer set in any order, computes the same owner
// for any hash.
func TestOwnerAgreesAcrossMembers(t *testing.T) {
	peers := []string{"http://n1:1", "http://n2:1", "http://n3:1"}
	rings := []*Ring{
		mustRing(t, peers[0], peers[1], peers[2]),
		mustRing(t, peers[1], peers[2], peers[0]),
		mustRing(t, peers[2], peers[0], peers[1]),
	}
	for i := 0; i < 64; i++ {
		hash := fmt.Sprintf("hash-%03d", i)
		want := rings[0].Owner(hash)
		for _, r := range rings[1:] {
			if got := r.Owner(hash); got != want {
				t.Fatalf("owner(%q) disagrees: %q vs %q", hash, got, want)
			}
		}
		owners := 0
		for _, r := range rings {
			if r.IsOwner(hash) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("hash %q has %d owners, want exactly 1", hash, owners)
		}
	}
}

// TestOwnerMinimalDisruption checks the rendezvous property the design
// leans on: dropping one peer reassigns only that peer's hashes, never
// shuffling ownership among survivors.
func TestOwnerMinimalDisruption(t *testing.T) {
	all := []string{"http://n1:1", "http://n2:1", "http://n3:1", "http://n4:1"}
	full := mustRing(t, all[0], all[1:]...)
	reduced := mustRing(t, all[0], all[1], all[2]) // n4 removed
	moved := 0
	for i := 0; i < 256; i++ {
		hash := fmt.Sprintf("hash-%04d", i)
		before := full.Owner(hash)
		after := reduced.Owner(hash)
		if before == all[3] {
			moved++
			continue // was owned by the removed peer; must move somewhere
		}
		if before != after {
			t.Fatalf("hash %q moved %q -> %q though its owner survived", hash, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("removed peer owned nothing out of 256 hashes; distribution is broken")
	}
}

// TestOwnerDistribution sanity-checks uniformity: with 4 peers and 400
// hashes, no peer should own a wildly disproportionate share.
func TestOwnerDistribution(t *testing.T) {
	peers := []string{"http://n1:1", "http://n2:1", "http://n3:1", "http://n4:1"}
	r := mustRing(t, peers[0], peers[1:]...)
	counts := map[string]int{}
	const n = 400
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("hash-%04d", i))]++
	}
	for _, p := range peers {
		c := counts[p]
		if c < n/10 || c > n/2 {
			t.Fatalf("peer %s owns %d/%d hashes; distribution too skewed: %v", p, c, n, counts)
		}
	}
}

func TestSingleNodeOwnsEverything(t *testing.T) {
	r := mustRing(t, "http://only:1")
	for i := 0; i < 16; i++ {
		if !r.IsOwner(fmt.Sprintf("h%d", i)) {
			t.Fatal("single-node ring must own every hash")
		}
	}
}

// routingGolden pins owner assignment for every committed corpus hash
// across peer-list sizes 1..5.  A change here means the ownership
// function changed, which reshuffles every production cluster's caches
// — that must be an explicit, reviewed event (regenerate with
// `go test ./internal/cluster -run TestRoutingGolden -update`).
type routingGolden struct {
	RingVersion string                       `json:"ring_version"`
	Peers       []string                     `json:"peers"`
	Owners      map[string]map[string]string `json:"owners"` // size -> hash -> owner
}

// goldenPeers are the synthetic addresses the golden fixes assignments
// against; size-n rings use the first n.
var goldenPeers = []string{
	"http://node1:9001",
	"http://node2:9002",
	"http://node3:9003",
	"http://node4:9004",
	"http://node5:9005",
}

func corpusHashes(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "scenarios", "*.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("corpus glob: %v (found %d)", err, len(paths))
	}
	sort.Strings(paths)
	hashes := make([]string, 0, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			Hash string `json:"hash"`
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if doc.Hash == "" {
			t.Fatalf("%s: no hash field", p)
		}
		hashes = append(hashes, doc.Hash)
	}
	return hashes
}

func TestRoutingGolden(t *testing.T) {
	hashes := corpusHashes(t)
	got := routingGolden{
		RingVersion: ringVersion,
		Peers:       goldenPeers,
		Owners:      map[string]map[string]string{},
	}
	for size := 1; size <= len(goldenPeers); size++ {
		r := mustRing(t, goldenPeers[0], goldenPeers[1:size]...)
		owners := map[string]string{}
		for _, h := range hashes {
			owners[h] = r.Owner(h)
		}
		got.Owners[fmt.Sprintf("%d", size)] = owners
	}

	goldenPath := filepath.Join("testdata", "routing_golden.json")
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d hashes x %d sizes)", goldenPath, len(hashes), len(goldenPeers))
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	var want routingGolden
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if want.RingVersion != got.RingVersion {
		t.Fatalf("ring version changed %q -> %q: ownership reshuffle; regenerate golden deliberately",
			want.RingVersion, got.RingVersion)
	}
	for size, owners := range got.Owners {
		for hash, owner := range owners {
			if w := want.Owners[size][hash]; w != owner {
				t.Errorf("size %s hash %s: owner %q, golden %q — routing changed", size, hash, owner, w)
			}
		}
		if len(want.Owners[size]) != len(owners) {
			t.Errorf("size %s: golden has %d hashes, corpus has %d (regenerate with -update)",
				size, len(want.Owners[size]), len(owners))
		}
	}
}

// Package cluster is the static-peer-list network layer under rtserve's
// cluster mode: rendezvous hashing that assigns every canonical instance
// hash to exactly one owner node, and a small retrying HTTP client for
// the versioned internal peer API (/internal/v1/*).
//
// The design goal is that a fleet of rtserve processes compiles and
// solves each distinct instance ONCE cluster-wide: every node routes a
// request to the same owner (ownership is a pure function of the peer
// list and the instance's canonical hash), the owner's existing
// single-flight/cache/store layers deduplicate everything that lands on
// it, and a node that cannot reach the owner degrades to a local solve
// instead of an outage.  Membership is static by construction — the
// peer list is configuration, not gossip — which keeps ownership
// deterministic and testable; dynamic membership can layer on top
// later without changing the hashing contract.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"net/url"
	"sort"
	"strings"
)

// ringVersion tags the rendezvous score preimage, so the ownership
// function can evolve without two releases silently disagreeing about
// who owns what (the same reasoning as core's canonical-hash version
// tag).  Changing it reshuffles every assignment; the routing golden
// test exists to make that an explicit, reviewed event.
const ringVersion = "rtt-ring-v1"

// Ring is an immutable static peer list with rendezvous (highest-random-
// weight) hashing.  Every node of a cluster builds its Ring from the
// same peer list, so every node computes the same owner for any hash
// without coordination.  Rendezvous hashing is chosen over a hashed
// token ring for its minimal-disruption property: removing one peer
// reassigns only the hashes that peer owned, never shuffling ownership
// among the survivors — exactly what keeps caches warm across a node
// loss.
type Ring struct {
	self  string
	peers []string // normalized, deduplicated, sorted; includes self
}

// NewRing validates and normalizes the peer list and this node's own
// address within it.  Peers are absolute http(s) URLs; self is added to
// the list if absent, and the stored list is deduplicated and sorted so
// two nodes configured with the same members in any order agree on
// ownership.  A Ring with only self is legal: it owns everything, which
// makes single-node deployments a degenerate cluster rather than a
// special case.
func NewRing(self string, peers []string) (*Ring, error) {
	nself, err := normalizePeer(self)
	if err != nil {
		return nil, fmt.Errorf("cluster: invalid self address %q: %v", self, err)
	}
	seen := map[string]bool{nself: true}
	list := []string{nself}
	for _, p := range peers {
		np, err := normalizePeer(p)
		if err != nil {
			return nil, fmt.Errorf("cluster: invalid peer address %q: %v", p, err)
		}
		if !seen[np] {
			seen[np] = true
			list = append(list, np)
		}
	}
	sort.Strings(list)
	return &Ring{self: nself, peers: list}, nil
}

// normalizePeer canonicalizes one peer address: an absolute http or
// https URL with a host, no trailing slash, no path/query/fragment
// beyond "/".  Normalizing here means "http://a:1/" and "http://a:1"
// configured on different nodes still hash identically.
func normalizePeer(addr string) (string, error) {
	u, err := url.Parse(strings.TrimSpace(addr))
	if err != nil {
		return "", err
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("scheme %q is not http or https", u.Scheme)
	}
	if u.Host == "" {
		return "", fmt.Errorf("missing host")
	}
	if (u.Path != "" && u.Path != "/") || u.RawQuery != "" || u.Fragment != "" {
		return "", fmt.Errorf("peer addresses are scheme://host[:port] only")
	}
	return u.Scheme + "://" + u.Host, nil
}

// Self returns this node's normalized address.
func (r *Ring) Self() string { return r.self }

// Peers returns the normalized, sorted peer list (self included).  The
// returned slice is shared and must not be mutated.
func (r *Ring) Peers() []string { return r.peers }

// Size returns the number of cluster members.
func (r *Ring) Size() int { return len(r.peers) }

// Owner returns the peer that owns hash: the member with the highest
// rendezvous score.  Ownership is a pure function of (peer list, hash)
// — every member computes the same answer — and scores break ties by
// smaller peer address, so the result is total even under score
// collisions.
func (r *Ring) Owner(hash string) string {
	best := r.peers[0]
	bestScore := score(best, hash)
	for _, p := range r.peers[1:] {
		if s := score(p, hash); s > bestScore {
			best, bestScore = p, s
		}
	}
	return best
}

// IsOwner reports whether this node owns hash.
func (r *Ring) IsOwner(hash string) bool { return r.Owner(hash) == r.self }

// score is the rendezvous weight of (peer, hash): the first 8 bytes of
// SHA-256 over the version-tagged pair, read big-endian.  SHA-256 keeps
// the assignment uniform (each peer owns ~1/n of hash space) and makes
// the score independent of Go's runtime hash seeds, so it is stable
// across processes, restarts and releases — the property the routing
// golden test pins.
func score(peer, hash string) uint64 {
	h := sha256.New()
	h.Write([]byte(ringVersion))
	h.Write([]byte{'|'})
	h.Write([]byte(peer))
	h.Write([]byte{'|'})
	h.Write([]byte(hash))
	var sum [sha256.Size]byte
	return binary.BigEndian.Uint64(h.Sum(sum[:0]))
}

package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/solver"
)

func testReport(i int) solver.WireReport {
	return solver.WireReport{
		Solver:    "exact",
		Objective: "min-makespan",
		Makespan:  int64(10 + i),
		Resources: int64(i),
		Flow:      []int64{int64(i), 1, int64(i), 1},
		Exact:     true,
		Complete:  true,
		WallMS:    1.5,
	}
}

func testMeta(i int) Meta {
	return Meta{
		Hash:   fmt.Sprintf("hash-%04d", i),
		Sketch: "sketch-a",
		Solver: "exact",
		OptKey: "b5.t-1.a0.5.n0.p1",
	}
}

// TestRoundTrip writes entries, reopens the directory, and checks every
// report and instance survives byte for byte.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("exact|hash-%04d|opts", i)
		if err := s.PutReport(key, testMeta(i), testReport(i)); err != nil {
			t.Fatal(err)
		}
		raw := []byte(fmt.Sprintf(`{"nodes":["s","t"],"i":%d}`, i))
		if err := s.PutInstance(testMeta(i).Hash, "sketch-a", raw); err != nil {
			t.Fatal(err)
		}
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if lr := re.Load(); lr.Reports != 5 || lr.Instances != 5 || lr.Corrupt != 0 {
		t.Fatalf("reload found %+v, want 5 reports + 5 instances, 0 corrupt", lr)
	}
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("exact|hash-%04d|opts", i)
		got, ok := re.GetReport(key)
		if !ok {
			t.Fatalf("report %d missing after reopen", i)
		}
		want, _ := json.Marshal(testReport(i))
		gotb, _ := json.Marshal(got)
		if string(gotb) != string(want) {
			t.Fatalf("report %d mutated: %s vs %s", i, gotb, want)
		}
		inst, ok := re.GetInstance(testMeta(i).Hash)
		if !ok {
			t.Fatalf("instance %d missing after reopen", i)
		}
		if !strings.Contains(string(inst), fmt.Sprintf(`"i":%d`, i)) {
			t.Fatalf("instance %d bytes mutated: %s", i, inst)
		}
	}
	if st := re.Stats(); st.Entries != 5 || st.Hits != 5 || st.Bytes == 0 {
		t.Fatalf("stats %+v, want 5 entries, 5 hits, nonzero bytes", st)
	}

	// Incomplete reports must never be persisted.
	inc := testReport(9)
	inc.Complete = false
	if err := re.PutReport("exact|hash-inc|opts", testMeta(9), inc); err != nil {
		t.Fatal(err)
	}
	if _, ok := re.GetReport("exact|hash-inc|opts"); ok {
		t.Fatal("incomplete report was stored")
	}
}

// TestCorruptAndTruncatedEntriesSkipped damages stored files in every
// flavor — truncation, bit-flip, garbage, stray temp — and checks Open
// survives, counts them, and loads the healthy remainder.
func TestCorruptAndTruncatedEntriesSkipped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("exact|hash-%04d|opts", i)
		if err := s.PutReport(key, testMeta(i), testReport(i)); err != nil {
			t.Fatal(err)
		}
	}
	files, err := filepath.Glob(filepath.Join(dir, "reports", "*.json"))
	if err != nil || len(files) != 4 {
		t.Fatalf("want 4 report files, got %d (%v)", len(files), err)
	}

	// files is sorted; damage the first three differently.
	raw, _ := os.ReadFile(files[0])
	os.WriteFile(files[0], raw[:len(raw)/2], 0o644) // truncated
	raw, _ = os.ReadFile(files[1])
	raw[len(raw)/2] ^= 0x40 // checksum mismatch
	os.WriteFile(files[1], raw, 0o644)
	os.WriteFile(files[2], []byte("not json at all"), 0o644) // garbage
	os.WriteFile(filepath.Join(dir, "reports", "crashed.123.tmp"), []byte("partial"), 0o644)

	re, err := Open(dir)
	if err != nil {
		t.Fatalf("Open must survive corruption: %v", err)
	}
	lr := re.Load()
	if lr.Reports != 1 {
		t.Fatalf("loaded %d reports, want 1 healthy survivor", lr.Reports)
	}
	if lr.Corrupt != 3 || len(lr.Errors) != 3 {
		t.Fatalf("counted %d corrupt with %d errors, want 3/3: %v", lr.Corrupt, len(lr.Errors), lr.Errors)
	}
	if st := re.Stats(); st.Corrupt != 3 {
		t.Fatalf("Stats().Corrupt = %d, want 3", st.Corrupt)
	}
	if _, err := os.Stat(filepath.Join(dir, "reports", "crashed.123.tmp")); !os.IsNotExist(err) {
		t.Fatal("stray temp file was not swept")
	}

	// A demand-read of a corrupted instance is skipped and counted too.
	if err := re.PutInstance("hash-x", "sk", []byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	ipath := filepath.Join(dir, "instances", "hash-x.json")
	os.WriteFile(ipath, []byte("zap"), 0o644)
	if _, ok := re.GetInstance("hash-x"); ok {
		t.Fatal("corrupted instance served")
	}
	if st := re.Stats(); st.Corrupt != 4 {
		t.Fatalf("Stats().Corrupt = %d after bad instance read, want 4", st.Corrupt)
	}
}

// TestVersionMismatchIgnored rewrites a valid entry under a foreign
// payload version (with a correct checksum) and checks it is skipped —
// not loaded, not counted as corrupt.
func TestVersionMismatchIgnored(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutReport("k", testMeta(0), testReport(0)); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "reports", "*.json"))
	if len(files) != 1 {
		t.Fatalf("want 1 file, got %d", len(files))
	}
	// Re-wrap the payload with a bumped version and a fresh checksum, so
	// only the version check can reject it.
	payload, _, err := readVerified(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var rp reportPayload
	if err := json.Unmarshal(payload, &rp); err != nil {
		t.Fatal(err)
	}
	rp.Version = payloadVersion + 1
	if _, err := writeEntry(files[0], rp); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	lr := re.Load()
	if lr.Reports != 0 || lr.Skipped != 1 || lr.Corrupt != 0 {
		t.Fatalf("load report %+v, want 0 loaded, 1 skipped, 0 corrupt", lr)
	}
	if _, ok := re.GetReport("k"); ok {
		t.Fatal("foreign-version entry was served")
	}
}

// TestConcurrentWriters hammers one store from many goroutines (run
// under -race in CI) and checks every write survives a reopen.
func TestConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 16
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				n := w*perWriter + i
				key := fmt.Sprintf("exact|hash-%04d|opts", n)
				if err := s.PutReport(key, testMeta(n), testReport(n)); err != nil {
					t.Error(err)
				}
				if err := s.PutInstance(testMeta(n).Hash, "sketch-a", []byte(`{"n":1}`)); err != nil {
					t.Error(err)
				}
				s.GetReport(key)
				s.Neighbor("sketch-a", "exact", testMeta(n).OptKey, testMeta(n).Hash)
				s.Stats()
			}
		}(w)
	}
	wg.Wait()

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if lr := re.Load(); lr.Reports != writers*perWriter || lr.Corrupt != 0 {
		t.Fatalf("reload found %+v, want %d clean reports", lr, writers*perWriter)
	}
}

// TestNeighborLookup checks donor selection: same sketch+solver+options,
// different hash, deterministic choice, and the no-donor cases.
func TestNeighborLookup(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		m := testMeta(i)
		key := fmt.Sprintf("exact|%s|%s", m.Hash, m.OptKey)
		if err := s.PutReport(key, m, testReport(i)); err != nil {
			t.Fatal(err)
		}
		if err := s.PutInstance(m.Hash, m.Sketch, []byte(`{"i":1}`)); err != nil {
			t.Fatal(err)
		}
	}

	m, rep, ok := s.Neighbor("sketch-a", "exact", testMeta(0).OptKey, "hash-0001")
	if !ok {
		t.Fatal("no neighbor found")
	}
	if m.Hash == "hash-0001" {
		t.Fatal("neighbor returned the excluded instance itself")
	}
	if m.Hash != "hash-0000" { // sorted key order makes the choice deterministic
		t.Fatalf("neighbor picked %s, want hash-0000", m.Hash)
	}
	if len(rep.Flow) == 0 {
		t.Fatal("neighbor report has no witness flow")
	}

	if _, _, ok := s.Neighbor("sketch-other", "exact", testMeta(0).OptKey, ""); ok {
		t.Fatal("found a neighbor for an unknown sketch")
	}
	if _, _, ok := s.Neighbor("sketch-a", "frankwolfe", testMeta(0).OptKey, ""); ok {
		t.Fatal("found a neighbor across solver names")
	}
	if _, _, ok := s.Neighbor("sketch-a", "exact", "other-opts", ""); ok {
		t.Fatal("found a neighbor across option keys")
	}
}

package store

import (
	"fmt"
	"testing"
)

// BenchmarkStoreLookup measures the in-memory report probe that sits on
// every solve request's hot path, at a realistic store size.
func BenchmarkStoreLookup(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	const n = 1024
	keys := make([]string, n)
	for i := 0; i < n; i++ {
		keys[i] = fmt.Sprintf("exact|hash-%04d|opts", i)
		if err := s.PutReport(keys[i], testMeta(i), testReport(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := s.GetReport(keys[i%n]); !ok {
			b.Fatal("miss on a stored key")
		}
	}
}

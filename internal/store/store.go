// Package store is the durable, content-addressed solve store: it
// persists completed solve reports and the raw instances behind them so a
// restarted service resumes with every previously computed result, and so
// near-identical instances can warm-start from a stored neighbor's
// solution.
//
// # On-disk format
//
// One directory per store, two subdirectories:
//
//	<root>/reports/<sha256(key)>.json     one file per solve outcome
//	<root>/instances/<canonical-hash>.json one file per distinct instance
//
// Every file is a JSON envelope {"checksum": "<sha256 of payload
// bytes>", "payload": {...}} whose payload carries an explicit
// format version.  A report payload records the full result identity
// (the solver.ResultCacheKey string plus its parts: canonical hash,
// structural sketch, solver name, option key) and the wire report; an
// instance payload records the canonical hash, the sketch, and the raw
// instance JSON as received.
//
// Writes are crash-safe: each entry is written to a temporary file in
// the same directory and atomically renamed into place, so a crash can
// leave stray *.tmp files (deleted on the next Open) but never a
// half-written entry under a final name.  Reads verify the checksum and
// version; anything corrupt, truncated, or from a different format
// version is skipped and counted, never trusted and never fatal.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/solver"
)

// payloadVersion is the on-disk payload format version.  Entries written
// by a different version are ignored on load: old binaries must not
// misread new entries and vice versa.
const payloadVersion = 1

// Meta is the decomposed identity of one stored report: the parts of the
// result-cache key plus the instance's structural sketch, kept separately
// so neighbor lookups can match on (sketch, solver, options) without
// parsing keys.
type Meta struct {
	// Hash is the instance's canonical hash (core.CanonicalHash).
	Hash string `json:"hash"`
	// Sketch is the instance's structural sketch (core.Sketch): equal
	// sketches mean index-aligned identical topology, so flows transfer
	// arc for arc.
	Sketch string `json:"sketch"`
	// Solver is the registered solver name the report came from.
	Solver string `json:"solver"`
	// OptKey is the canonical options rendering (Options.CacheKey).
	OptKey string `json:"opt_key"`
}

// envelope is the outer JSON shell of every stored file.  Payload stays
// raw so the checksum is computed over the exact persisted bytes.
type envelope struct {
	Checksum string          `json:"checksum"`
	Payload  json.RawMessage `json:"payload"`
}

// reportPayload is the persisted form of one solve outcome.
type reportPayload struct {
	Version int               `json:"version"`
	Key     string            `json:"key"`
	Meta    Meta              `json:"meta"`
	Report  solver.WireReport `json:"report"`
}

// instancePayload is the persisted form of one raw instance.
type instancePayload struct {
	Version  int             `json:"version"`
	Hash     string          `json:"hash"`
	Sketch   string          `json:"sketch"`
	Instance json.RawMessage `json:"instance"`
}

// Stats is a snapshot of store occupancy and effectiveness, reported
// under /v1/stats.
type Stats struct {
	// Entries counts stored reports currently loaded.
	Entries int `json:"entries"`
	// Bytes is the on-disk size of the loaded report entries.
	Bytes int64 `json:"bytes"`
	// Hits and Misses count GetReport outcomes since Open.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Corrupt counts entries skipped as corrupt, truncated, or
	// unreadable — at load time and on demand-read paths since.
	Corrupt int64 `json:"corrupt"`
}

// LoadReport describes what Open found, so the service can log exactly
// what survived a restart instead of silently starting empty.
type LoadReport struct {
	// Reports and Instances count the entries loaded successfully.
	Reports   int
	Instances int
	// Corrupt counts entries skipped for failed checksums, truncation,
	// or unparseable JSON.
	Corrupt int
	// Skipped counts well-formed entries ignored for a foreign format
	// version.
	Skipped int
	// Errors holds one message per skipped entry, in deterministic
	// (sorted filename) order.
	Errors []string
}

// entry is one loaded report.
type entry struct {
	meta Meta
	rep  solver.WireReport
	size int64
}

// Store is a durable map from result identity to completed report, with
// a structural-sketch side index for neighbor lookups.  All methods are
// safe for concurrent use.
type Store struct {
	root string

	mu       sync.Mutex
	reports  map[string]*entry   // result-cache key -> report
	bySketch map[string][]string // sketch|solver|optKey -> sorted keys
	hasInst  map[string]bool     // canonical hash -> instance file exists
	load     LoadReport

	hits, misses, corrupt int64
}

// Open loads (or creates) the store rooted at dir.  Corrupt or
// foreign-version entries are skipped and reported via LoadReport, never
// fatal; the returned error covers only real I/O failures that would
// leave the store unusable (unreadable root, failed mkdir).
//
// The loaded state is a pure function of the directory contents: entries
// are scanned in sorted filename order and indexes are kept sorted, so
// two processes opening the same directory build identical stores.
//
//rt:deterministic
func Open(dir string) (*Store, error) {
	s := &Store{
		root:     dir,
		reports:  make(map[string]*entry),
		bySketch: make(map[string][]string),
		hasInst:  make(map[string]bool),
	}
	for _, sub := range []string{s.reportsDir(), s.instancesDir()} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, fmt.Errorf("store: create %s: %w", sub, err)
		}
	}
	if err := s.loadReports(); err != nil {
		return nil, err
	}
	if err := s.loadInstances(); err != nil {
		return nil, err
	}
	//rt:unordered — each value is sorted independently; visit order is moot
	for k := range s.bySketch {
		sort.Strings(s.bySketch[k])
	}
	s.corrupt = int64(s.load.Corrupt)
	return s, nil
}

func (s *Store) reportsDir() string   { return filepath.Join(s.root, "reports") }
func (s *Store) instancesDir() string { return filepath.Join(s.root, "instances") }

// loadReports scans the reports directory in sorted order, loading every
// valid entry into memory and sweeping stray temp files.
func (s *Store) loadReports() error {
	ents, err := os.ReadDir(s.reportsDir()) // ReadDir sorts by filename
	if err != nil {
		return fmt.Errorf("store: read %s: %w", s.reportsDir(), err)
	}
	for _, de := range ents {
		path := filepath.Join(s.reportsDir(), de.Name())
		if sweepTemp(path, de.Name()) {
			continue
		}
		payload, size, err := readVerified(path)
		if err != nil {
			s.load.Corrupt++
			s.load.Errors = append(s.load.Errors, err.Error())
			continue
		}
		var rp reportPayload
		if err := json.Unmarshal(payload, &rp); err != nil {
			s.load.Corrupt++
			s.load.Errors = append(s.load.Errors, fmt.Sprintf("%s: bad report payload: %v", path, err))
			continue
		}
		if rp.Version != payloadVersion {
			s.load.Skipped++
			s.load.Errors = append(s.load.Errors, fmt.Sprintf("%s: payload version %d, want %d", path, rp.Version, payloadVersion))
			continue
		}
		s.reports[rp.Key] = &entry{meta: rp.Meta, rep: rp.Report, size: size}
		sk := sketchKey(rp.Meta.Sketch, rp.Meta.Solver, rp.Meta.OptKey)
		s.bySketch[sk] = append(s.bySketch[sk], rp.Key)
		s.load.Reports++
	}
	return nil
}

// loadInstances records which instances exist; the raw bytes stay on
// disk and are re-read (and re-verified) on demand by GetInstance.
func (s *Store) loadInstances() error {
	ents, err := os.ReadDir(s.instancesDir())
	if err != nil {
		return fmt.Errorf("store: read %s: %w", s.instancesDir(), err)
	}
	for _, de := range ents {
		path := filepath.Join(s.instancesDir(), de.Name())
		if sweepTemp(path, de.Name()) {
			continue
		}
		payload, _, err := readVerified(path)
		if err != nil {
			s.load.Corrupt++
			s.load.Errors = append(s.load.Errors, err.Error())
			continue
		}
		var ip instancePayload
		if err := json.Unmarshal(payload, &ip); err != nil {
			s.load.Corrupt++
			s.load.Errors = append(s.load.Errors, fmt.Sprintf("%s: bad instance payload: %v", path, err))
			continue
		}
		if ip.Version != payloadVersion {
			s.load.Skipped++
			s.load.Errors = append(s.load.Errors, fmt.Sprintf("%s: payload version %d, want %d", path, ip.Version, payloadVersion))
			continue
		}
		s.hasInst[ip.Hash] = true
		s.load.Instances++
	}
	return nil
}

// sweepTemp deletes a stray temp file left by a crashed writer and
// reports whether name was one (or a directory to skip).
func sweepTemp(path, name string) bool {
	if filepath.Ext(name) == ".tmp" {
		os.Remove(path)
		return true
	}
	return filepath.Ext(name) != ".json"
}

// readVerified reads an envelope file and returns its payload after
// checking the checksum.
func readVerified(path string) (json.RawMessage, int64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %v", path, err)
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return nil, 0, fmt.Errorf("%s: bad envelope: %v", path, err)
	}
	sum := sha256.Sum256(env.Payload)
	if hex.EncodeToString(sum[:]) != env.Checksum {
		return nil, 0, fmt.Errorf("%s: checksum mismatch", path)
	}
	return env.Payload, int64(len(raw)), nil
}

// writeEntry marshals payload into a checksummed envelope and atomically
// installs it at path via a same-directory temp file and rename.
func writeEntry(path string, payload any) (int64, error) {
	pb, err := json.Marshal(payload)
	if err != nil {
		return 0, fmt.Errorf("store: marshal %s: %w", path, err)
	}
	sum := sha256.Sum256(pb)
	raw, err := json.Marshal(envelope{Checksum: hex.EncodeToString(sum[:]), Payload: pb})
	if err != nil {
		return 0, fmt.Errorf("store: marshal envelope %s: %w", path, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".*.tmp")
	if err != nil {
		return 0, fmt.Errorf("store: temp for %s: %w", path, err)
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("store: close %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("store: install %s: %w", path, err)
	}
	return int64(len(raw)), nil
}

// keyFile maps an arbitrary result-cache key to a filesystem-safe name.
func keyFile(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + ".json"
}

func sketchKey(sketch, solverName, optKey string) string {
	return sketch + "|" + solverName + "|" + optKey
}

// GetReport returns the stored report for a result-cache key.  The
// reports live in memory after Open, so a hit is a map probe.
//
//rt:hotpath — probed on every solve request before any work is queued.
//rt:deterministic — pure lookup; counters aside, it never mutates state.
func (s *Store) GetReport(key string) (solver.WireReport, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.reports[key]; ok {
		s.hits++
		return e.rep, true
	}
	s.misses++
	return solver.WireReport{}, false
}

// PutReport durably stores one completed report under its result-cache
// key.  Incomplete reports are rejected: an interrupted solve is an
// artifact of one request's deadline, not a property of the instance.
func (s *Store) PutReport(key string, meta Meta, rep solver.WireReport) error {
	if !rep.Complete {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.reports[key]; ok {
		return nil // first write wins; repeats are byte-identical anyway
	}
	size, err := writeEntry(filepath.Join(s.reportsDir(), keyFile(key)), reportPayload{
		Version: payloadVersion,
		Key:     key,
		Meta:    meta,
		Report:  rep,
	})
	if err != nil {
		return err
	}
	s.reports[key] = &entry{meta: meta, rep: rep, size: size}
	sk := sketchKey(meta.Sketch, meta.Solver, meta.OptKey)
	keys := append(s.bySketch[sk], key)
	sort.Strings(keys)
	s.bySketch[sk] = keys
	return nil
}

// PutInstance durably stores the raw JSON of an instance under its
// canonical hash, so stored flows can later be re-anchored to a compiled
// neighbor.  Storing any byte-form of the instance is sound: all
// isomorphic encodings share the hash, and warm starts only ever use the
// recompiled topology, not the encoding.
func (s *Store) PutInstance(hash, sketch string, raw []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hasInst[hash] {
		return nil
	}
	_, err := writeEntry(filepath.Join(s.instancesDir(), hash+".json"), instancePayload{
		Version:  payloadVersion,
		Hash:     hash,
		Sketch:   sketch,
		Instance: json.RawMessage(raw),
	})
	if err != nil {
		return err
	}
	s.hasInst[hash] = true
	return nil
}

// GetInstance re-reads and re-verifies the stored raw instance for a
// canonical hash.  Instances are demand-loaded: they are only needed on
// the (rare) neighbor warm-start path, so their bytes do not stay
// resident.
//
//rt:deterministic — the result is a pure function of the stored file.
func (s *Store) GetInstance(hash string) ([]byte, bool) {
	s.mu.Lock()
	known := s.hasInst[hash]
	s.mu.Unlock()
	if !known {
		return nil, false
	}
	payload, _, err := readVerified(filepath.Join(s.instancesDir(), hash+".json"))
	if err != nil {
		s.noteCorrupt(hash)
		return nil, false
	}
	var ip instancePayload
	if err := json.Unmarshal(payload, &ip); err != nil || ip.Version != payloadVersion {
		s.noteCorrupt(hash)
		return nil, false
	}
	return ip.Instance, true
}

// noteCorrupt records a demand-read failure and forgets the entry so it
// is not retried.
func (s *Store) noteCorrupt(hash string) {
	s.mu.Lock()
	s.corrupt++
	delete(s.hasInst, hash)
	s.mu.Unlock()
}

// Neighbor returns a stored report for a DIFFERENT instance with the
// same structural sketch, solved by the same solver under the same
// options — the warm-start donor for an incoming instance.  Equal
// sketches guarantee index-aligned identical topology, so the donor's
// flow is conserved arc for arc on the new instance.  Only complete
// reports carrying a witness flow qualify.  Candidates are scanned in
// sorted key order, so the choice is deterministic.
//
//rt:deterministic — pure function of the loaded entries.
func (s *Store) Neighbor(sketch, solverName, optKey, excludeHash string) (Meta, solver.WireReport, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, key := range s.bySketch[sketchKey(sketch, solverName, optKey)] {
		e, ok := s.reports[key]
		if !ok || e.meta.Hash == excludeHash {
			continue
		}
		if !e.rep.Complete || len(e.rep.Flow) == 0 {
			continue
		}
		if !s.hasInst[e.meta.Hash] {
			continue // cannot diff without the donor instance
		}
		return e.meta, e.rep, true
	}
	return Meta{}, solver.WireReport{}, false
}

// Load returns what Open found, for boot-time logging.
func (s *Store) Load() LoadReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.load
}

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var bytes int64
	for _, e := range s.reports {
		bytes += e.size
	}
	return Stats{
		Entries: len(s.reports),
		Bytes:   bytes,
		Hits:    s.hits,
		Misses:  s.misses,
		Corrupt: s.corrupt,
	}
}

package service

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/solver"
)

func TestPoolRunsJobsAndCounts(t *testing.T) {
	p := newPool(2)
	defer p.close()
	for i := 0; i < 5; i++ {
		rep, err := p.do(context.Background(), func(*worker) (solver.WireReport, error) {
			return solver.WireReport{Solver: "test", Makespan: int64(i)}, nil
		})
		if err != nil || rep.Makespan != int64(i) {
			t.Fatalf("job %d = (%+v, %v)", i, rep, err)
		}
	}
	st := p.stats()
	if st.Workers != 2 || st.Jobs != 5 {
		t.Fatalf("stats = %+v; want 2 workers, 5 jobs", st)
	}
}

func TestPoolAdmissionHonorsContext(t *testing.T) {
	p := newPool(1)
	defer p.close()
	gate := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_, _ = p.do(context.Background(), func(*worker) (solver.WireReport, error) {
			close(started)
			<-gate
			return solver.WireReport{}, nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.do(ctx, func(*worker) (solver.WireReport, error) {
		t.Error("job ran despite canceled admission")
		return solver.WireReport{}, nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v; want context.Canceled while queued", err)
	}
	close(gate)
}

func TestPoolRecoversSolvePanics(t *testing.T) {
	p := newPool(1)
	defer p.close()
	_, err := p.do(context.Background(), func(*worker) (solver.WireReport, error) {
		panic("solver bug")
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "solver bug") {
		t.Fatalf("err = %v; want the panic converted to an error", err)
	}
	// The worker must have survived the panic and still serve jobs.
	rep, err := p.do(context.Background(), func(*worker) (solver.WireReport, error) {
		return solver.WireReport{Solver: "test", Makespan: 4, Complete: true}, nil
	})
	if err != nil || rep.Makespan != 4 {
		t.Fatalf("post-panic job = (%+v, %v); the worker must keep serving", rep, err)
	}
}

package service

import (
	"container/list"
	"crypto/sha256"
	"sync"

	"repro/internal/core"
)

// compiledCache is the LRU of compiled instances that sits in FRONT of the
// result cache: where the result cache deduplicates whole solves, this one
// deduplicates the per-request preprocessing (JSON decode, validation,
// core.Compile, canonical hashing).  A hot DAG arriving with varying
// budgets, targets or solvers decodes and compiles exactly once across the
// pool; only the solve itself remains per-options work.
//
// Two indexes serve two kinds of repeats:
//
//   - byRaw keys on the SHA-256 of the request's RAW instance bytes.  The
//     duplicate-heavy traffic the service is built for resends identical
//     JSON, and a raw hit skips even the decode - the request never
//     materializes an Instance at all.
//   - byHash keys on the canonical instance hash.  Two isomorphic
//     encodings of the same DAG (renamed nodes, reordered arcs) decode to
//     different bytes but compile to the same canonical hash; the second
//     one adopts the first's *core.Compiled, so lazily derived state
//     (expansion, envelopes, series-parallel recognition) is shared
//     instead of duplicated.
//
// Compiled instances are immutable and all their lazy derivations are
// internally synchronized, so one *core.Compiled is safely shared by every
// concurrent solve.
type compiledCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	byRaw    map[[sha256.Size]byte]*list.Element
	byHash   map[string]*list.Element

	hits, misses, aliased, evictions int64
}

// maxRawAliases bounds how many distinct raw encodings one compiled entry
// indexes; beyond it, new encodings still dedup through byHash but are not
// remembered, so a hostile stream of re-encodings cannot grow an entry
// without bound.
const maxRawAliases = 8

// compiledEntry is one LRU slot.
type compiledEntry struct {
	hash    string
	rawKeys [][sha256.Size]byte
	c       *core.Compiled
}

// CompiledCacheStats snapshots the compiled-instance cache counters for
// /v1/stats.
type CompiledCacheStats struct {
	// Hits counts requests whose raw instance bytes were already compiled:
	// they skipped decode, validation, compilation and hashing outright.
	Hits int64 `json:"hits"`
	// Misses counts requests that decoded and compiled a valid instance
	// whose canonical hash was not cached yet.  Requests whose body never
	// decodes (400s) count nowhere, so hits/(hits+misses+aliased) is the
	// true preprocessing dedup rate.
	Misses int64 `json:"misses"`
	// Aliased counts decoded requests that turned out isomorphic to an
	// already-compiled instance (same canonical hash, different bytes) and
	// adopted its compiled form.
	Aliased int64 `json:"aliased"`
	// Evictions counts LRU evictions.
	Evictions int64 `json:"evictions"`
	// Size and Capacity describe the LRU occupancy.
	Size     int `json:"size"`
	Capacity int `json:"capacity"`
}

// newCompiledCache builds a cache holding up to capacity compiled
// instances; capacity <= 0 disables storage (every request compiles).
func newCompiledCache(capacity int) *compiledCache {
	return &compiledCache{
		capacity: capacity,
		ll:       list.New(),
		byRaw:    make(map[[sha256.Size]byte]*list.Element),
		byHash:   make(map[string]*list.Element),
	}
}

// get returns the compiled instance for the raw request bytes, if those
// exact bytes were compiled before.  The returned rawKey is the SHA-256 of
// raw either way; on a miss the caller passes it back to add, so each
// request body is hashed exactly once.
//
//rt:hotpath — first touch of every solve request; on a hot instance the whole compile pipeline collapses into this lookup.
func (cc *compiledCache) get(raw []byte) (c *core.Compiled, rawKey [sha256.Size]byte, ok bool) {
	if cc.capacity <= 0 {
		// Disabled cache: a hit is impossible (add never populates byRaw),
		// so do not pay SHA-256 over a possibly multi-MiB body; the zero
		// key is fine because add ignores it when disabled.
		return nil, rawKey, false
	}
	rawKey = sha256.Sum256(raw)
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if el, ok := cc.byRaw[rawKey]; ok {
		cc.ll.MoveToFront(el)
		cc.hits++
		return el.Value.(*compiledEntry).c, rawKey, true
	}
	// The miss is counted in add, not here: a body that never decodes (a
	// 400) must not deflate the hit rate operators size the cache by.
	return nil, rawKey, false
}

// add indexes a freshly compiled instance under its raw-bytes key (as
// returned by get) and its canonical hash, and returns the CANONICAL
// compiled form: if an isomorphic instance was compiled earlier, the
// existing *core.Compiled is returned (its lazy derivations are already
// warm) and the new raw bytes become an alias for it.
func (cc *compiledCache) add(key [sha256.Size]byte, c *core.Compiled) *core.Compiled {
	hash := c.Hash() // computed before taking the lock; memoized on c
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.capacity <= 0 {
		cc.misses++
		return c
	}
	if el, ok := cc.byHash[hash]; ok {
		ent := el.Value.(*compiledEntry)
		if _, dup := cc.byRaw[key]; !dup && len(ent.rawKeys) < maxRawAliases {
			ent.rawKeys = append(ent.rawKeys, key)
			cc.byRaw[key] = el
		}
		cc.ll.MoveToFront(el)
		cc.aliased++
		return ent.c
	}
	cc.misses++
	ent := &compiledEntry{hash: hash, rawKeys: [][sha256.Size]byte{key}, c: c}
	el := cc.ll.PushFront(ent)
	cc.byHash[hash] = el
	cc.byRaw[key] = el
	for cc.ll.Len() > cc.capacity {
		oldest := cc.ll.Back()
		cc.ll.Remove(oldest)
		old := oldest.Value.(*compiledEntry)
		delete(cc.byHash, old.hash)
		for _, rk := range old.rawKeys {
			delete(cc.byRaw, rk)
		}
		cc.evictions++
	}
	return c
}

// stats snapshots the counters.
func (cc *compiledCache) stats() CompiledCacheStats {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return CompiledCacheStats{
		Hits:      cc.hits,
		Misses:    cc.misses,
		Aliased:   cc.aliased,
		Evictions: cc.evictions,
		Size:      cc.ll.Len(),
		Capacity:  cc.capacity,
	}
}

package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/scenario"
	"repro/internal/solver"
)

// newTestServer builds a service and an HTTP test server around it.
func newTestServer(t *testing.T, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	svc, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

// postSolve posts body to /v1/solve and decodes the response into out.
func postSolve(t *testing.T, ts *httptest.Server, body string, out any) int {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode
}

// marshalRequest renders a scenario.Request as a /v1/solve body item.
func marshalRequest(t *testing.T, req scenario.Request) SolveRequest {
	t.Helper()
	instJSON, err := json.Marshal(req.Inst)
	if err != nil {
		t.Fatal(err)
	}
	w := solver.WireOptions{}
	if req.Budget >= 0 {
		b := req.Budget
		w.Budget = &b
	} else {
		tg := req.Target
		w.Target = &tg
	}
	return SolveRequest{Solver: "auto", Instance: instJSON, Options: w}
}

// reqKey identifies a request up to result equality: canonical instance
// hash plus the result-relevant options.
func reqKey(hash string, req scenario.Request) string {
	return fmt.Sprintf("%s|b%d|t%d", hash, req.Budget, req.Target)
}

func TestHealthzAndSolvers(t *testing.T) {
	_, ts := newTestServer(t, WithWorkers(2))

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, health)
	}

	resp2, err := http.Get(ts.URL + "/v1/solvers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var solvers SolversResponse
	if err := json.NewDecoder(resp2.Body).Decode(&solvers); err != nil {
		t.Fatal(err)
	}
	if len(solvers.Solvers) < 8 {
		t.Fatalf("solvers = %d entries; want all built-ins", len(solvers.Solvers))
	}
	names := make(map[string]bool)
	for _, in := range solvers.Solvers {
		names[in.Name] = true
	}
	for _, want := range []string{"auto", "exact", "bicriteria", "spdp"} {
		if !names[want] {
			t.Fatalf("solver %q missing from listing", want)
		}
	}

	if resp3, err := http.Post(ts.URL+"/healthz", "application/json", nil); err != nil {
		t.Fatal(err)
	} else {
		resp3.Body.Close()
		if resp3.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST /healthz = %d; want 405", resp3.StatusCode)
		}
	}
}

func TestSolveSingleAndCache(t *testing.T) {
	_, ts := newTestServer(t, WithWorkers(2))
	req := marshalRequest(t, scenario.NewGen(5).RequestStream(1, 1)[0])
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	var first SolveResponse
	if status := postSolve(t, ts, string(body), &first); status != http.StatusOK {
		t.Fatalf("status = %d (%s)", status, first.Error)
	}
	if first.Error != "" || first.Report == nil {
		t.Fatalf("first solve failed: %+v", first)
	}
	if first.Cached {
		t.Fatal("first solve cannot be cached")
	}
	if first.Hash == "" || first.InstanceNodes == 0 || first.InstanceArcs == 0 {
		t.Fatalf("missing instance stats: %+v", first)
	}
	if !first.Report.Complete {
		t.Fatalf("tiny instance must solve to completion: %+v", first.Report)
	}

	var second SolveResponse
	if status := postSolve(t, ts, string(body), &second); status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if !second.Cached {
		t.Fatal("identical request must be served from the cache")
	}
	a, _ := json.Marshal(first.Report)
	b, _ := json.Marshal(second.Report)
	if !bytes.Equal(a, b) {
		t.Fatalf("cached report differs from computed:\n%s\n%s", a, b)
	}
}

func TestSolveRejectsAdversarialRequests(t *testing.T) {
	_, ts := newTestServer(t, WithWorkers(1))
	valid := `{"nodes":["s","t"],"edges":[{"from":0,"to":1,"fn":{"kind":"const","t0":2}}]}`
	cases := []struct {
		name string
		body string
		want string
	}{
		{"body-syntax", `{"instance": {`, "invalid request body"},
		{"missing-instance", `{"solver":"auto","options":{"budget":3}}`, "missing instance"},
		{"dangling-edge", `{"options":{"budget":3},"instance":{"nodes":["s","t"],
			"edges":[{"from":0,"to":9,"fn":{"kind":"const","t0":1}}]}}`, "missing node"},
		{"empty-graph", `{"options":{"budget":3},"instance":{"nodes":[],"edges":[]}}`, "no nodes"},
		{"unknown-kind", `{"options":{"budget":3},"instance":{"nodes":["s","t"],
			"edges":[{"from":0,"to":1,"fn":{"kind":"tachyon","t0":1}}]}}`, "unknown spec kind"},
		{"cycle", `{"options":{"budget":3},"instance":{"nodes":["s","a","b","t"],
			"edges":[{"from":0,"to":1,"fn":{"kind":"const","t0":1}},
			         {"from":1,"to":2,"fn":{"kind":"const","t0":1}},
			         {"from":2,"to":1,"fn":{"kind":"const","t0":1}},
			         {"from":2,"to":3,"fn":{"kind":"const","t0":1}}]}}`, "cycle"},
		{"no-objective", `{"instance":` + valid + `}`, "budget and target"},
		{"both-objectives", `{"options":{"budget":3,"target":5},"instance":` + valid + `}`, "exactly one"},
		{"negative-budget", `{"options":{"budget":-2},"instance":` + valid + `}`, "negative budget"},
		{"bad-alpha", `{"options":{"budget":3,"alpha":1.5},"instance":` + valid + `}`, "alpha"},
		{"unknown-solver", `{"solver":"quantum","options":{"budget":3},"instance":` + valid + `}`, "unknown solver"},
		{"target-unsupported", `{"solver":"kway5","options":{"target":5},"instance":` + valid + `}`,
			"does not support min-resource"},
		{"parallel-unsupported", `{"solver":"bicriteria","options":{"budget":3,"parallelism":4},"instance":` + valid + `}`,
			"single-threaded"},
		{"batch-and-inline", `{"instance":` + valid + `,"batch":[{"options":{"budget":1},"instance":` + valid + `}]}`,
			"both a batch and an inline instance"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp errorResponse
			status := postSolve(t, ts, tc.body, &resp)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d; want 400 (resp %+v)", status, resp)
			}
			if resp.Error.Code != "invalid_request" {
				t.Fatalf("error code = %q; want invalid_request", resp.Error.Code)
			}
			if !strings.Contains(resp.Error.Message, tc.want) {
				t.Fatalf("error = %q; want it to mention %q", resp.Error.Message, tc.want)
			}
		})
	}

	// Parallel arcs are valid multigraph input, not adversarial: 200.
	var ok SolveResponse
	status := postSolve(t, ts, `{"options":{"budget":1},"instance":{"nodes":["s","t"],
		"edges":[{"from":0,"to":1,"fn":{"kind":"const","t0":2}},
		         {"from":0,"to":1,"fn":{"kind":"const","t0":2}}]}}`, &ok)
	if status != http.StatusOK || ok.Error != "" {
		t.Fatalf("parallel arcs rejected: %d %+v", status, ok)
	}
}

func TestBatchSolvesAndDeduplicates(t *testing.T) {
	svc, ts := newTestServer(t, WithWorkers(2))
	item := marshalRequest(t, scenario.NewGen(9).RequestStream(1, 1)[0])
	bad := SolveRequest{Instance: json.RawMessage(`{"nodes":[]}`),
		Options: solver.WireOptions{Budget: new(int64)}}
	env := map[string]any{"batch": []SolveRequest{item, item, bad, item}}
	body, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}

	var resp BatchResponse
	if status := postSolve(t, ts, string(body), &resp); status != http.StatusOK {
		t.Fatalf("batch status = %d", status)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("results = %d; want 4 in request order", len(resp.Results))
	}
	if resp.Results[2].Error == "" || !strings.Contains(resp.Results[2].Error, "no nodes") {
		t.Fatalf("invalid item error = %q; must fail per-item", resp.Results[2].Error)
	}
	var reports []string
	for _, i := range []int{0, 1, 3} {
		r := resp.Results[i]
		if r.Error != "" || r.Report == nil {
			t.Fatalf("batch item %d failed: %+v", i, r)
		}
		data, _ := json.Marshal(r.Report)
		reports = append(reports, string(data))
	}
	if reports[0] != reports[1] || reports[0] != reports[2] {
		t.Fatalf("identical batch items returned different reports:\n%s\n%s\n%s",
			reports[0], reports[1], reports[2])
	}
	// The three identical items must have computed at most once.
	if st := svc.cache.stats(); st.Misses != 1 || st.Hits+st.Coalesced < 2 {
		t.Fatalf("cache stats = %+v; want 1 miss and 2 dedup hits for the triplicate", st)
	}
}

func TestSolvePastDeadlineReturnsPartialNotError(t *testing.T) {
	_, ts := newTestServer(t, WithWorkers(1))
	inst, err := json.Marshal(scenario.NewGen(7).KWayInstance(5, 5, 3, 400))
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"solver":"exact","options":{"budget":40,"deadline_ms":1},"instance":%s}`, inst)
	var resp SolveResponse
	status := postSolve(t, ts, body, &resp)
	if status != http.StatusOK {
		t.Fatalf("status = %d; a deadline-bounded solve with a partial answer is not a server failure", status)
	}
	if resp.Error == "" || !strings.Contains(resp.Error, "deadline") {
		t.Fatalf("error = %q; want the deadline surfaced", resp.Error)
	}
	if resp.Report == nil {
		t.Fatal("want a partial (or lower-bound-only) report alongside the deadline error")
	}
	if resp.Report.Complete {
		t.Fatal("a 1ms deadline cannot complete this instance")
	}
	if resp.Cached {
		t.Fatal("interrupted results must not be cached")
	}
}

func TestDeadlineBoundedRequestsUseCacheForCompleteResults(t *testing.T) {
	_, ts := newTestServer(t, WithWorkers(1))
	inst, err := json.Marshal(scenario.NewGen(5).RequestStream(1, 1)[0].Inst)
	if err != nil {
		t.Fatal(err)
	}
	// A generous deadline on a tiny instance: completes, so the result is
	// cacheable even though the request carried a deadline.
	body := fmt.Sprintf(`{"options":{"budget":3,"deadline_ms":60000},"instance":%s}`, inst)
	var first SolveResponse
	if status := postSolve(t, ts, body, &first); status != http.StatusOK {
		t.Fatalf("status = %d (%s)", status, first.Error)
	}
	if first.Error != "" || first.Report == nil || !first.Report.Complete || first.Cached {
		t.Fatalf("first deadline-bounded solve = %+v; want a fresh complete result", first)
	}
	// The identical deadline-bounded request is served from the cache, as
	// is the deadline-free variant (the cache key excludes the deadline).
	for _, b := range []string{body, fmt.Sprintf(`{"options":{"budget":3},"instance":%s}`, inst)} {
		var again SolveResponse
		if status := postSolve(t, ts, b, &again); status != http.StatusOK {
			t.Fatalf("status = %d", status)
		}
		if !again.Cached || again.Error != "" {
			t.Fatalf("repeat = %+v; want a cache hit", again)
		}
		x, _ := json.Marshal(first.Report)
		y, _ := json.Marshal(again.Report)
		if !bytes.Equal(x, y) {
			t.Fatalf("cached report differs:\n%s\n%s", x, y)
		}
	}
}

// TestLoadConcurrentClients is the end-to-end load test of the acceptance
// criteria: 8 concurrent clients push 200 mixed requests each (singles and
// batches, both objectives, repeated instances) through the full HTTP
// stack.  Every request must succeed, identical requests must produce
// byte-identical reports no matter which client asked or whether the
// cache, a coalesced flight, or a fresh solve answered, and the cache must
// measurably hit.  Run with -race in CI.
func TestLoadConcurrentClients(t *testing.T) {
	const clients, perClient = 8, 200
	svc, ts := newTestServer(t, WithWorkers(4), WithCacheEntries(4096))
	stream := scenario.NewGen(42).RequestStream(clients*perClient, 40)

	type outcome struct {
		key    string
		report string
	}
	var (
		mu       sync.Mutex
		outcomes []outcome
		errs     []string
	)
	record := func(req scenario.Request, resp SolveResponse) {
		mu.Lock()
		defer mu.Unlock()
		if resp.Error != "" || resp.Report == nil {
			errs = append(errs, fmt.Sprintf("req(b=%d,t=%d): %s", req.Budget, req.Target, resp.Error))
			return
		}
		data, err := json.Marshal(resp.Report)
		if err != nil {
			errs = append(errs, err.Error())
			return
		}
		outcomes = append(outcomes, outcome{key: reqKey(resp.Hash, req), report: string(data)})
	}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			mine := stream[c*perClient : (c+1)*perClient]
			for i := 0; i < len(mine); {
				// Every tenth position ships the next (up to) 3 requests
				// as one batch; the rest go as singles.
				if i%10 == 0 && i+3 <= len(mine) {
					batch := mine[i : i+3]
					items := make([]SolveRequest, len(batch))
					for j, req := range batch {
						items[j] = marshalRequest(t, req)
					}
					body, err := json.Marshal(map[string]any{"batch": items})
					if err != nil {
						t.Error(err)
						return
					}
					var resp BatchResponse
					if status := postSolve(t, ts, string(body), &resp); status != http.StatusOK {
						t.Errorf("client %d: batch status %d", c, status)
						return
					}
					if len(resp.Results) != len(batch) {
						t.Errorf("client %d: %d batch results for %d items", c, len(resp.Results), len(batch))
						return
					}
					for j, req := range batch {
						record(req, resp.Results[j])
					}
					i += len(batch)
					continue
				}
				req := mine[i]
				body, err := json.Marshal(marshalRequest(t, req))
				if err != nil {
					t.Error(err)
					return
				}
				var resp SolveResponse
				if status := postSolve(t, ts, string(body), &resp); status != http.StatusOK {
					t.Errorf("client %d: status %d (%s)", c, status, resp.Error)
					return
				}
				record(req, resp)
				i++
			}
		}(c)
	}
	wg.Wait()

	if len(errs) > 0 {
		t.Fatalf("%d requests failed; first: %s", len(errs), errs[0])
	}
	if len(outcomes) != clients*perClient {
		t.Fatalf("recorded %d outcomes; want %d", len(outcomes), clients*perClient)
	}
	byKey := make(map[string]string)
	distinct := 0
	for _, o := range outcomes {
		if prev, ok := byKey[o.key]; !ok {
			byKey[o.key] = o.report
			distinct++
		} else if prev != o.report {
			t.Fatalf("identical request %s produced different reports:\n%s\n%s", o.key, prev, o.report)
		}
	}
	if distinct >= len(outcomes) {
		t.Fatal("load stream contained no duplicate requests; the test would prove nothing")
	}

	st := svc.cache.stats()
	if st.Hits == 0 {
		t.Fatalf("cache stats = %+v; want a measurable hit rate under duplicate-heavy load", st)
	}
	if ps := svc.pool.stats(); ps.Jobs != st.Misses {
		t.Fatalf("pool ran %d jobs but cache recorded %d misses; every solve must flow through the cache",
			ps.Jobs, st.Misses)
	}
	t.Logf("load: %d requests, %d distinct; cache hits %d, misses %d, coalesced %d; pool jobs %d",
		len(outcomes), distinct, st.Hits, st.Misses, st.Coalesced, svc.pool.stats().Jobs)
}

package service

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
)

// The hot-serve tier: a zero-allocation fast path for the service's
// dominant traffic shape, the byte-identical request arriving over and
// over (load balancers health-checking a canonical solve, dashboards
// polling a fixed instance, replayed batch drivers).
//
// The HTTP stack cannot answer without allocating — net/http builds a
// Request, a body reader and header maps per call — so the hot tier is an
// embedder API that bypasses it: ServeHot maps the raw request bytes to a
// fully pre-encoded response held in an arena of reusable byte slices,
// and appends it to a caller-provided buffer.  A hot hit therefore costs
// one SHA-256 over the body, one map probe under a read-lock, and one
// memcpy into the caller's buffer: zero allocations steady-state
// (BenchmarkServeHotInstance pins this, the hotalloc analyzer gates it
// statically).
//
// Only responses that are pure functions of the request bytes are ever
// cached: complete, error-free, deadline-free solves on a standalone
// (non-cluster) node.  Everything else — deadline-bounded requests whose
// truncation depends on wall time, batches, errors, cluster-forwarded
// requests whose answer depends on peer health — takes the ordinary
// solveOne path on every call; correct, just not allocation-free.  The
// cached body reports wall_ms 0 at the response level (a hot hit's wall
// time is the lookup, effectively zero; the solve's own compute time
// stays in report.wall_ms), and cached:true, which is what every hit is.

// hotEntry is one pre-encoded response: the exact bytes an HTTP handler
// would have written, newline-terminated like json.Encoder output.
type hotEntry struct {
	status int
	body   []byte
}

// hotCache maps SHA-256(raw request body) to pre-encoded responses.  The
// map only grows, up to cap: a bounded identity-keyed arena, not an LRU —
// eviction bookkeeping on the read path would cost the allocations the
// tier exists to avoid.  A full cache stops admitting new bodies; misses
// still solve correctly through the ordinary path.
type hotCache struct {
	mu      sync.RWMutex
	cap     int
	entries map[[sha256.Size]byte]hotEntry

	hits   atomic.Int64
	misses atomic.Int64
}

// defaultHotEntries bounds the hot tier's arena.  Entries hold whole
// encoded responses, so the worst-case residency is cap x the largest
// response (itself bounded by the instance size cap).
const defaultHotEntries = 512

// ServeHot answers one solve request from the hot-response arena,
// bypassing the HTTP stack: raw is the request body POST /v1/solve would
// have received, the encoded JSON response is appended to dst (pass a
// reused buffer; its grown form is returned), and the HTTP status is
// returned alongside.  Misses fall back to the ordinary decode-and-solve
// path and, when the response is a pure function of the bytes, seed the
// arena so the next identical request is a hit.
//
//rt:hotpath — the hit path allocates nothing: hash, map probe, append into the caller's buffer.
func (s *Server) ServeHot(raw, dst []byte) ([]byte, int) {
	s.requests.Add(1)
	key := sha256.Sum256(raw)
	s.hot.mu.RLock()
	e, ok := s.hot.entries[key]
	s.hot.mu.RUnlock()
	if ok {
		s.hot.hits.Add(1)
		dst = append(dst, e.body...)
		return dst, e.status
	}
	return s.serveHotMiss(key, raw, dst)
}

// serveHotMiss is ServeHot's slow path: decode, solve through solveOne
// (result cache, store, pool — everything the HTTP path uses), encode,
// and admit the response to the arena when it is cacheable.
func (s *Server) serveHotMiss(key [sha256.Size]byte, raw, dst []byte) ([]byte, int) {
	s.hot.misses.Add(1)
	var env solveEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return s.appendHotError(dst, http.StatusBadRequest, "", "invalid request body: "+err.Error())
	}
	if len(env.Batch) > 0 {
		return s.appendHotError(dst, http.StatusBadRequest, "",
			"batch requests are not supported on the hot path; POST /v1/solve instead")
	}
	resp, status := s.solveOne(context.Background(), env.SolveRequest, false)
	resp.WallMS = 0 // the hot tier's wall time is the lookup: report it as zero everywhere

	// Admit only responses that are pure functions of the request bytes;
	// see the package comment above.  The cached copy claims cached:true —
	// every future delivery of it is a cache hit by definition.
	if status == http.StatusOK && resp.Error == "" && resp.Report != nil && resp.Report.Complete &&
		env.Options.DeadlineMS == 0 && s.cluster == nil {
		hot := resp
		hot.Cached = true
		if body, err := json.Marshal(hot); err == nil {
			body = append(body, '\n')
			s.hot.mu.Lock()
			if len(s.hot.entries) < s.hot.cap {
				s.hot.entries[key] = hotEntry{status: status, body: body}
			}
			s.hot.mu.Unlock()
		}
	}

	if status >= http.StatusBadRequest {
		return s.appendHotError(dst, status, resp.Hash, resp.Error)
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return s.appendHotError(dst, http.StatusInternalServerError, "", err.Error())
	}
	dst = append(dst, body...)
	dst = append(dst, '\n')
	return dst, status
}

// appendHotError appends the unified error envelope (the same shape
// writeErrorDetail sends) to dst and returns it with the status.
func (s *Server) appendHotError(dst []byte, status int, detail, message string) ([]byte, int) {
	body, err := json.Marshal(errorResponse{Error: Error{
		Code:    errCodeFor(status),
		Message: message,
		Detail:  detail,
	}})
	if err != nil {
		return dst, status // unreachable: the envelope marshals unconditionally
	}
	dst = append(dst, body...)
	dst = append(dst, '\n')
	return dst, status
}

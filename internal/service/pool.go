package service

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/solver"
)

// pool is the bounded solve-worker pool.
//
// It lifts the PR 2 state-reuse pattern one layer up: inside
// internal/exact each search worker owns a flow.MinFlowSolver whose
// network is built once and rewritten per node, instead of rebuilt.  The
// service applies the same shape to whole solves — a fixed set of
// long-lived worker goroutines, each with persistent per-worker state
// (utilization counters today; anything a future solver wants to keep
// warm, tomorrow), that jobs flow through, instead of a goroutine with
// fresh stacks per request.  The matching allocation reuse for the
// request path itself (canonical-hash scratch) lives in Server.encBufs,
// shared across handler goroutines because hashing happens before cache
// lookup — a cache hit must never wait behind a queued solve.
//
// The pool is also the service's admission control: at most len(workers)
// solves run concurrently, and the jobs channel is unbuffered, so a
// request either starts promptly or waits its turn without hiding an
// unbounded queue in memory.
type pool struct {
	jobs    chan poolJob
	wg      sync.WaitGroup
	workers []*worker
}

// worker is one long-lived solve worker and its reusable state.
type worker struct {
	// jobs and busyNS are utilization counters, read atomically by stats.
	jobs   atomic.Int64
	busyNS atomic.Int64
}

// poolJob carries one solve closure and its reply channel.
type poolJob struct {
	fn  func(w *worker) (solver.WireReport, error)
	out chan<- poolResult
}

type poolResult struct {
	rep solver.WireReport
	err error
}

// PoolStats is a snapshot of pool utilization.
type PoolStats struct {
	// Workers is the pool size.
	Workers int `json:"workers"`
	// Jobs is the total number of solves executed.
	Jobs int64 `json:"jobs"`
	// BusyMS is the cumulative wall time workers spent solving.
	BusyMS float64 `json:"busy_ms"`
}

// newPool starts n long-lived workers; n <= 0 means GOMAXPROCS.
func newPool(n int) *pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &pool{jobs: make(chan poolJob)}
	for i := 0; i < n; i++ {
		w := &worker{}
		p.workers = append(p.workers, w)
		p.wg.Add(1)
		go p.loop(w)
	}
	return p
}

func (p *pool) loop(w *worker) {
	defer p.wg.Done()
	for job := range p.jobs {
		start := time.Now()
		rep, err := runJob(w, job.fn)
		w.jobs.Add(1)
		w.busyNS.Add(int64(time.Since(start)))
		job.out <- poolResult{rep: rep, err: err}
	}
}

// runJob runs fn, converting a panic into an error: one request hitting a
// solver bug must fail that request, not take down the long-running
// service (and every other client) with it.
func runJob(w *worker, fn func(*worker) (solver.WireReport, error)) (rep solver.WireReport, err error) {
	defer func() {
		if r := recover(); r != nil {
			rep = solver.WireReport{}
			err = fmt.Errorf("service: solve panicked: %v", r)
		}
	}()
	return fn(w)
}

// do runs fn on the next free worker and returns its result.  Admission
// honors ctx: a caller that gives up while queued never occupies a worker.
// Once admitted, the job runs to completion — fn is expected to carry the
// same ctx into solver.SolveOptions, whose solvers poll it cooperatively,
// so cancellation still cuts the solve short.
func (p *pool) do(ctx context.Context, fn func(w *worker) (solver.WireReport, error)) (solver.WireReport, error) {
	out := make(chan poolResult, 1)
	select {
	case p.jobs <- poolJob{fn: fn, out: out}:
	case <-ctx.Done():
		return solver.WireReport{}, ctx.Err()
	}
	res := <-out
	return res.rep, res.err
}

// close drains the pool: started jobs finish, then workers exit.
func (p *pool) close() {
	close(p.jobs)
	p.wg.Wait()
}

// stats snapshots the utilization counters.
func (p *pool) stats() PoolStats {
	s := PoolStats{Workers: len(p.workers)}
	var busy int64
	for _, w := range p.workers {
		s.Jobs += w.jobs.Load()
		busy += w.busyNS.Load()
	}
	s.BusyMS = float64(busy) / float64(time.Millisecond)
	return s
}

package service

import (
	"container/list"
	"context"
	"strings"
	"sync"

	"repro/internal/solver"
)

// resultCache is an LRU result cache with single-flight de-duplication.
//
// Solves are pure functions of (instance, solver, options) — see
// core.Instance.CanonicalHash for the instance half of that key — so a
// repeated request must never recompute.  Two mechanisms enforce that:
//
//   - completed reports live in an LRU keyed by the full request identity,
//     so repeats are served from memory;
//   - concurrent identical requests coalesce: the first computes, the rest
//     wait on its flight and share the outcome.  Without this, a burst of
//     duplicates (the common batch shape) would all miss the still-empty
//     cache and stampede the worker pool.
//
// Only complete, error-free reports are cached: an interrupted solve is an
// artifact of that request's deadline, not a property of the instance.
type resultCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*flight

	hits, misses, coalesced, evictions int64
}

// cacheEntry is one LRU slot.
type cacheEntry struct {
	key string
	rep solver.WireReport
}

// flight is one in-progress computation other requests can wait on.
type flight struct {
	done chan struct{}
	rep  solver.WireReport
	err  error
}

// CacheStats is a snapshot of cache effectiveness counters.
type CacheStats struct {
	// Hits counts requests served from the completed-result LRU.
	Hits int64 `json:"hits"`
	// Misses counts requests that had to compute.
	Misses int64 `json:"misses"`
	// Coalesced counts requests that waited on an identical in-flight
	// solve instead of computing (single-flight de-duplication).
	Coalesced int64 `json:"coalesced"`
	// Evictions counts LRU evictions.
	Evictions int64 `json:"evictions"`
	// Size and Capacity describe the LRU occupancy.
	Size     int `json:"size"`
	Capacity int `json:"capacity"`
}

// newResultCache builds a cache holding up to capacity completed reports.
// capacity <= 0 disables storage but keeps single-flight de-duplication.
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// do returns the cached report for key, joins an identical in-flight
// computation, or runs compute — whichever is cheapest.  cached is true
// when compute did not run for this call.  The returned report's Flow
// slice is shared across callers and must be treated as immutable.
func (c *resultCache) do(ctx context.Context, key string, compute func() (solver.WireReport, error)) (rep solver.WireReport, cached bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		rep = el.Value.(*cacheEntry).rep
		c.mu.Unlock()
		return rep, true, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.coalesced++
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.rep, true, f.err
		case <-ctx.Done():
			// This caller gives up; the flight itself keeps computing for
			// everyone else.
			return solver.WireReport{}, false, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.misses++
	c.mu.Unlock()

	f.rep, f.err = compute()

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil && f.rep.Complete && c.capacity > 0 {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, rep: f.rep})
		for c.ll.Len() > c.capacity {
			oldest := c.ll.Back()
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*cacheEntry).key)
			c.evictions++
		}
	}
	c.mu.Unlock()
	close(f.done)
	return f.rep, false, f.err
}

// get returns the cached report for key, counting a hit or a miss.  It
// never joins in-flight computations: deadline-bounded requests use it so
// they neither lead a flight whose (possibly truncated) outcome other
// requests would share, nor inherit a truncation shaped by someone else's
// deadline.
//
//rt:hotpath — the result-cache lookup on every deadline-bounded request.
func (c *resultCache) get(key string) (solver.WireReport, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).rep, true
	}
	c.misses++
	return solver.WireReport{}, false
}

// put stores a report computed outside do.  Incomplete reports are
// rejected for the same reason do never stores them.
func (c *resultCache) put(key string, rep solver.WireReport) {
	if !rep.Complete || c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.items[key]; ok {
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, rep: rep})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// resultsForHash counts cached reports whose key embeds the canonical
// instance hash (keys are "solver|hash|optkey"), across all solvers and
// options.  It neither recences LRU entries nor counts a hit or miss:
// the probe endpoint must observe the cache, not perturb it.
func (c *resultCache) resultsForHash(hash string) int {
	if hash == "" {
		return 0
	}
	needle := "|" + hash + "|"
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.ll.Front(); el != nil; el = el.Next() {
		if strings.Contains(el.Value.(*cacheEntry).key, needle) {
			n++
		}
	}
	return n
}

// stats snapshots the counters.
func (c *resultCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Coalesced: c.coalesced,
		Evictions: c.evictions,
		Size:      c.ll.Len(),
		Capacity:  c.capacity,
	}
}

package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// apiDocPath locates docs/API.md from the package directory.
const apiDocPath = "../../docs/API.md"

// docExample is one replay-tagged fenced block from docs/API.md.
type docExample struct {
	line       int    // 1-based line of the opening fence
	wantStatus int    // from "replay=NNN"; 200 by default
	text       string // block body (one curl command)
}

// parseDocExamples extracts every fenced code block whose info string
// carries the "replay" tag, e.g. ```sh replay or ```sh replay=202.
func parseDocExamples(t *testing.T, doc string) []docExample {
	t.Helper()
	var (
		examples []docExample
		cur      *docExample
		body     []string
	)
	for i, line := range strings.Split(doc, "\n") {
		trimmed := strings.TrimSpace(line)
		if !strings.HasPrefix(trimmed, "```") {
			if cur != nil {
				body = append(body, line)
			}
			continue
		}
		if cur != nil { // closing fence
			cur.text = strings.Join(body, "\n")
			examples = append(examples, *cur)
			cur, body = nil, nil
			continue
		}
		info := strings.Fields(strings.TrimPrefix(trimmed, "```"))
		for _, tag := range info {
			if tag == "replay" {
				cur = &docExample{line: i + 1, wantStatus: http.StatusOK}
			} else if s, ok := strings.CutPrefix(tag, "replay="); ok {
				status, err := strconv.Atoi(s)
				if err != nil {
					t.Fatalf("docs/API.md:%d: bad replay tag %q", i+1, tag)
				}
				cur = &docExample{line: i + 1, wantStatus: status}
			}
		}
	}
	if cur != nil {
		t.Fatal("docs/API.md: unterminated fenced block")
	}
	return examples
}

// shellTokens splits a command the way a POSIX shell would for the
// subset curl examples use: whitespace-separated words, single- and
// double-quoted strings (which may span lines), backslash escapes.
func shellTokens(t *testing.T, text string) []string {
	t.Helper()
	var (
		tokens  []string
		tok     strings.Builder
		started bool
		quote   rune // 0, '\'' or '"'
	)
	flush := func() {
		if started {
			tokens = append(tokens, tok.String())
			tok.Reset()
			started = false
		}
	}
	runes := []rune(text)
	for i := 0; i < len(runes); i++ {
		c := runes[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			} else {
				tok.WriteRune(c)
			}
		case c == '\'' || c == '"':
			quote, started = c, true
		case c == '\\' && i+1 < len(runes):
			i++
			if runes[i] != '\n' { // line continuation disappears
				tok.WriteRune(runes[i])
				started = true
			}
		case c == ' ' || c == '\t' || c == '\n':
			flush()
		case c == '#' && !started:
			for i < len(runes) && runes[i] != '\n' {
				i++
			}
		default:
			tok.WriteRune(c)
			started = true
		}
	}
	if quote != 0 {
		t.Fatalf("unterminated %q quote in example: %s", quote, text)
	}
	flush()
	return tokens
}

// curlCall is the HTTP request a documented curl command describes.
type curlCall struct {
	method string
	url    string
	body   string
}

// parseCurl interprets the curl flag subset the documentation uses.
func parseCurl(t *testing.T, ex docExample, baseURL string) curlCall {
	t.Helper()
	tokens := shellTokens(t, ex.text)
	if len(tokens) == 0 || tokens[0] != "curl" {
		t.Fatalf("docs/API.md:%d: replay block is not a curl command: %q", ex.line, ex.text)
	}
	call := curlCall{method: ""}
	needsValue := map[string]bool{
		"-X": true, "--request": true,
		"-d": true, "--data": true, "--data-raw": true,
		"-H": true, "--header": true,
		"--max-time": true, "-o": true,
	}
	for i := 1; i < len(tokens); i++ {
		tk := tokens[i]
		switch {
		case tk == "-X" || tk == "--request":
			i++
			call.method = tokens[i]
		case tk == "-d" || tk == "--data" || tk == "--data-raw":
			i++
			call.body = tokens[i]
		case needsValue[tk]:
			i++ // flag value we do not model
		case strings.HasPrefix(tk, "-"):
			// boolean flag (-s, -N, -i, ...)
		case strings.Contains(tk, "localhost:8080"):
			call.url = strings.Replace(tk, "http://localhost:8080", baseURL, 1)
			call.url = strings.Replace(call.url, "localhost:8080", strings.TrimPrefix(baseURL, "http://"), 1)
			if !strings.HasPrefix(call.url, "http") {
				call.url = "http://" + call.url
			}
		default:
			t.Fatalf("docs/API.md:%d: unexpected curl operand %q", ex.line, tk)
		}
	}
	if call.url == "" {
		t.Fatalf("docs/API.md:%d: no localhost:8080 URL in example", ex.line)
	}
	if call.method == "" {
		if call.body != "" {
			call.method = http.MethodPost
		} else {
			call.method = http.MethodGet
		}
	}
	return call
}

// TestAPIDocExamplesReplay executes every replay-tagged curl example in
// docs/API.md, in document order, against one in-process server, and
// checks each returns its documented status with a well-formed body.
// The examples double as an end-to-end tour: sync solves, async jobs,
// SSE streaming, frontier sweeps and store-addressed sweeps all run.
func TestAPIDocExamplesReplay(t *testing.T) {
	raw, err := os.ReadFile(filepath.FromSlash(apiDocPath))
	if err != nil {
		t.Fatalf("read API reference: %v", err)
	}
	examples := parseDocExamples(t, string(raw))
	if len(examples) < 12 {
		t.Fatalf("found only %d replay examples; the reference should exercise every endpoint", len(examples))
	}
	_, ts := newTestServer(t, WithWorkers(2), WithStore(t.TempDir()))

	for _, ex := range examples {
		call := parseCurl(t, ex, ts.URL)
		req, err := http.NewRequest(call.method, call.url, strings.NewReader(call.body))
		if err != nil {
			t.Fatalf("docs/API.md:%d: %v", ex.line, err)
		}
		if call.body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("docs/API.md:%d: %s %s: %v", ex.line, call.method, call.url, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("docs/API.md:%d: read body: %v", ex.line, err)
		}
		if resp.StatusCode != ex.wantStatus {
			t.Fatalf("docs/API.md:%d: %s %s: status %d, want %d (body %s)",
				ex.line, call.method, call.url, resp.StatusCode, ex.wantStatus, body)
		}
		if ct := resp.Header.Get("Content-Type"); strings.HasPrefix(ct, "text/event-stream") {
			if !strings.Contains(string(body), "event: progress") || !strings.Contains(string(body), "event: done") {
				t.Fatalf("docs/API.md:%d: SSE stream missing progress/done frames:\n%s", ex.line, body)
			}
			continue
		}
		var js json.RawMessage
		if err := json.Unmarshal(body, &js); err != nil {
			t.Fatalf("docs/API.md:%d: response is not JSON: %v\n%s", ex.line, err, body)
		}
		if ex.wantStatus >= 400 {
			// Every non-2xx answer carries the unified envelope: a code from
			// the documented vocabulary and a human message.
			var envelope errorResponse
			if err := json.Unmarshal(body, &envelope); err != nil ||
				envelope.Error.Code == "" || envelope.Error.Message == "" {
				t.Fatalf("docs/API.md:%d: error response lacks the unified error envelope: %s", ex.line, body)
			}
			if envelope.Error.Code != errCodeFor(ex.wantStatus) {
				t.Fatalf("docs/API.md:%d: error code %q does not match status %d (%q)",
					ex.line, envelope.Error.Code, ex.wantStatus, errCodeFor(ex.wantStatus))
			}
		}
	}
}

// TestAPIDocCoversEndpoints fails when a route registered in
// Server.routes is missing from docs/API.md — the documentation gate
// that keeps the reference complete as endpoints are added.
func TestAPIDocCoversEndpoints(t *testing.T) {
	raw, err := os.ReadFile(filepath.FromSlash(apiDocPath))
	if err != nil {
		t.Fatalf("read API reference: %v", err)
	}
	doc := string(raw)
	for _, ep := range Endpoints() {
		if !strings.Contains(doc, ep.Pattern) {
			t.Errorf("endpoint %s is registered but undocumented in docs/API.md", ep.Pattern)
		}
		for _, m := range ep.Methods {
			if !strings.Contains(doc, fmt.Sprintf("%s | `%s`", m, ep.Pattern)) &&
				!strings.Contains(doc, fmt.Sprintf("%s %s", m, ep.Pattern)) {
				t.Errorf("method %s %s is served but not documented in docs/API.md", m, ep.Pattern)
			}
		}
	}
}

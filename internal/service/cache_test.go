package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/solver"
)

func completeReport(makespan int64) solver.WireReport {
	return solver.WireReport{Solver: "test", Makespan: makespan, Complete: true}
}

func TestCacheHitAvoidsRecompute(t *testing.T) {
	c := newResultCache(4)
	calls := 0
	compute := func() (solver.WireReport, error) {
		calls++
		return completeReport(7), nil
	}
	ctx := context.Background()
	rep, cached, err := c.do(ctx, "k", compute)
	if err != nil || cached || rep.Makespan != 7 {
		t.Fatalf("first do = (%+v, %v, %v); want a computed miss", rep, cached, err)
	}
	rep, cached, err = c.do(ctx, "k", compute)
	if err != nil || !cached || rep.Makespan != 7 {
		t.Fatalf("second do = (%+v, %v, %v); want a cache hit", rep, cached, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times; want 1", calls)
	}
	st := c.stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss, size 1", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, _, err := c.do(ctx, key, func() (solver.WireReport, error) {
			return completeReport(int64(i)), nil
		}); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			// Touch k0 so k1 becomes the eviction victim.
			if _, cached, _ := c.do(ctx, "k0", nil); !cached {
				t.Fatal("k0 should still be cached")
			}
		}
	}
	if _, cached, _ := c.do(ctx, "k0", func() (solver.WireReport, error) {
		return completeReport(0), nil
	}); !cached {
		t.Fatal("recently-used k0 was evicted")
	}
	recomputed := false
	if _, cached, _ := c.do(ctx, "k1", func() (solver.WireReport, error) {
		recomputed = true
		return completeReport(1), nil
	}); cached || !recomputed {
		t.Fatal("least-recently-used k1 should have been evicted")
	}
	if st := c.stats(); st.Evictions == 0 || st.Size > 2 {
		t.Fatalf("stats = %+v; want evictions recorded and size <= capacity", st)
	}
}

func TestCacheDoesNotStoreIncompleteOrFailed(t *testing.T) {
	c := newResultCache(4)
	ctx := context.Background()
	boom := errors.New("boom")
	if _, _, err := c.do(ctx, "err", func() (solver.WireReport, error) {
		return solver.WireReport{}, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v; want boom", err)
	}
	if _, _, err := c.do(ctx, "partial", func() (solver.WireReport, error) {
		return solver.WireReport{Solver: "test", Complete: false}, nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"err", "partial"} {
		recomputed := false
		if _, _, err := c.do(ctx, key, func() (solver.WireReport, error) {
			recomputed = true
			return completeReport(1), nil
		}); err != nil {
			t.Fatal(err)
		}
		if !recomputed {
			t.Fatalf("%s was cached; only complete error-free reports may be", key)
		}
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := newResultCache(4)
	const waiters = 15
	var calls atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{})

	// One computing caller enters first and blocks inside compute.
	var wg sync.WaitGroup
	wg.Add(1)
	var leaderRep solver.WireReport
	var leaderCached bool
	go func() {
		defer wg.Done()
		rep, cached, err := c.do(context.Background(), "hot", func() (solver.WireReport, error) {
			calls.Add(1)
			close(started)
			<-gate
			return completeReport(9), nil
		})
		if err != nil {
			t.Error(err)
		}
		leaderRep, leaderCached = rep, cached
	}()
	<-started

	// The waiters join while the flight is provably still open; each
	// increments Coalesced before blocking, so polling the counter makes
	// "everyone is waiting" observable without racing the flight.
	results := make([]solver.WireReport, waiters)
	cachedFlags := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, cached, err := c.do(context.Background(), "hot", func() (solver.WireReport, error) {
				calls.Add(1)
				return completeReport(9), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], cachedFlags[i] = rep, cached
		}(i)
	}
	for c.stats().Coalesced < waiters {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times under concurrent identical requests; want 1", n)
	}
	if leaderCached || leaderRep.Makespan != 9 {
		t.Fatalf("leader = (%+v, cached %v); want to have computed", leaderRep, leaderCached)
	}
	for i := range results {
		if results[i].Makespan != 9 {
			t.Fatalf("waiter %d got %+v", i, results[i])
		}
		if !cachedFlags[i] {
			t.Fatalf("waiter %d recomputed instead of coalescing", i)
		}
	}
	if st := c.stats(); st.Coalesced != waiters || st.Misses != 1 {
		t.Fatalf("stats = %+v; want %d coalesced waiters on 1 miss", st, waiters)
	}
}

func TestCacheWaiterHonorsContext(t *testing.T) {
	c := newResultCache(4)
	gate := make(chan struct{})
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, _ = c.do(context.Background(), "slow", func() (solver.WireReport, error) {
			close(started)
			<-gate
			return completeReport(1), nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.do(ctx, "slow", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter err = %v; want context.Canceled", err)
	}
	close(gate)
	<-done
}

func TestCacheGetPut(t *testing.T) {
	c := newResultCache(2)
	if _, ok := c.get("k"); ok {
		t.Fatal("empty cache must miss")
	}
	c.put("k", solver.WireReport{Solver: "test", Complete: false})
	if _, ok := c.get("k"); ok {
		t.Fatal("incomplete reports must not be stored")
	}
	c.put("k", completeReport(5))
	rep, ok := c.get("k")
	if !ok || rep.Makespan != 5 {
		t.Fatalf("get after put = (%+v, %v); want the stored report", rep, ok)
	}
	// put fills the same LRU that do uses: eviction still applies.
	c.put("k2", completeReport(2))
	c.put("k3", completeReport(3))
	if _, ok := c.get("k"); ok {
		t.Fatal("put must evict beyond capacity")
	}
	st := c.stats()
	if st.Hits != 1 || st.Misses != 3 || st.Evictions != 1 {
		t.Fatalf("stats = %+v; want get/put counted alongside do", st)
	}

	// do sees entries stored by put, and vice versa.
	if _, cached, err := c.do(context.Background(), "k3", nil); err != nil || !cached {
		t.Fatalf("do must hit an entry stored by put (cached=%v, err=%v)", cached, err)
	}
}

func TestCacheGetDoesNotJoinFlights(t *testing.T) {
	c := newResultCache(4)
	gate := make(chan struct{})
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, _ = c.do(context.Background(), "slow", func() (solver.WireReport, error) {
			close(started)
			<-gate
			return completeReport(1), nil
		})
	}()
	<-started
	// A deadline-bounded caller must not block on (or share) the flight.
	if _, ok := c.get("slow"); ok {
		t.Fatal("get returned a result for a still-computing flight")
	}
	close(gate)
	<-done
	if rep, ok := c.get("slow"); !ok || rep.Makespan != 1 {
		t.Fatal("get must see the flight's result once completed and stored")
	}
}

func TestCacheDisabledStillCoalesces(t *testing.T) {
	c := newResultCache(0)
	ctx := context.Background()
	calls := 0
	compute := func() (solver.WireReport, error) {
		calls++
		return completeReport(3), nil
	}
	for i := 0; i < 2; i++ {
		if _, cached, err := c.do(ctx, "k", compute); err != nil || cached {
			t.Fatalf("disabled cache must recompute (cached=%v, err=%v)", cached, err)
		}
	}
	if calls != 2 {
		t.Fatalf("calls = %d; want 2 with storage disabled", calls)
	}
	if st := c.stats(); st.Size != 0 || st.Capacity != 0 {
		t.Fatalf("stats = %+v; want empty cache", st)
	}
}

package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/duration"
)

// storeInstanceJSON builds the wire form of a small two-path instance;
// bump shifts one arc's base duration, producing a same-topology neighbor
// differing on exactly one arc.
func storeInstanceJSON(t testing.TB, bump int64) []byte {
	t.Helper()
	g := dag.New()
	s := g.AddNode("s")
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	snk := g.AddNode("t")
	g.AddEdge(s, a)
	g.AddEdge(a, b)
	g.AddEdge(b, snk)
	g.AddEdge(s, c)
	g.AddEdge(c, snk)
	g.AddEdge(a, c)
	step := func(t0, t1, r int64) duration.Func {
		return duration.MustStep(duration.Tuple{R: 0, T: t0}, duration.Tuple{R: r, T: t1})
	}
	fns := []duration.Func{
		step(10, 4, 2),
		step(9, 3, 2),
		step(8+bump, 2, 3),
		step(12, 5, 2),
		step(11, 6, 2),
		duration.Constant(1),
	}
	inst, err := core.NewInstance(g, fns)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(inst)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func storeSolveBody(t testing.TB, bump int64) string {
	return fmt.Sprintf(`{"solver":"exact","options":{"budget":5,"parallelism":1},"instance":%s}`,
		storeInstanceJSON(t, bump))
}

// TestStoreRestartRoundTrip is the durability contract end to end: a
// second server opened on the first server's store directory must answer
// a previously solved request straight from disk — store_hit set, pool
// untouched, report identical.
func TestStoreRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	_, tsA := newTestServer(t, WithWorkers(1), WithStore(dir))

	body := storeSolveBody(t, 0)
	var first SolveResponse
	if code := postSolve(t, tsA, body, &first); code != 200 {
		t.Fatalf("first solve: status %d, error %q", code, first.Error)
	}
	if first.StoreHit {
		t.Fatal("first solve claimed a store hit on an empty store")
	}
	if first.Report == nil || !first.Report.Complete {
		t.Fatal("first solve did not complete")
	}

	// "Restart": a fresh server over the same directory.
	svcB, tsB := newTestServer(t, WithWorkers(1), WithStore(dir))
	if lr, ok := svcB.StoreLoad(); !ok || lr.Reports != 1 || lr.Instances != 1 || lr.Corrupt != 0 {
		t.Fatalf("restarted server loaded %+v, want 1 report + 1 instance", lr)
	}

	var again SolveResponse
	if code := postSolve(t, tsB, body, &again); code != 200 {
		t.Fatalf("restarted solve: status %d, error %q", code, again.Error)
	}
	if !again.StoreHit {
		t.Fatal("restarted solve missed the durable store")
	}
	if again.Warm {
		t.Fatal("a store hit must not be warm-started; nothing was solved")
	}
	gotB, _ := json.Marshal(again.Report)
	wantB, _ := json.Marshal(first.Report)
	if string(gotB) != string(wantB) {
		t.Fatalf("stored report differs from the original:\n%s\n%s", gotB, wantB)
	}
	stats := svcB.Stats()
	if stats.Pool.Jobs != 0 {
		t.Fatalf("store hit queued %d pool jobs, want 0", stats.Pool.Jobs)
	}
	if stats.Store == nil || stats.Store.Entries != 1 || stats.Store.Hits != 1 {
		t.Fatalf("store stats %+v, want 1 entry and 1 hit", stats.Store)
	}
}

// TestWarmStartFromStoredNeighbor solves an instance, then its one-arc
// neighbor on the same server: the second solve must be warm-seeded from
// the stored solution and still certify the neighbor's own optimum.
func TestWarmStartFromStoredNeighbor(t *testing.T) {
	dir := t.TempDir()
	svc, ts := newTestServer(t, WithWorkers(1), WithStore(dir))

	var base SolveResponse
	if code := postSolve(t, ts, storeSolveBody(t, 0), &base); code != 200 {
		t.Fatalf("base solve: status %d, error %q", code, base.Error)
	}
	var warm SolveResponse
	if code := postSolve(t, ts, storeSolveBody(t, 3), &warm); code != 200 {
		t.Fatalf("neighbor solve: status %d, error %q", code, warm.Error)
	}
	if !warm.Warm {
		t.Fatal("neighbor solve was not warm-started")
	}
	if warm.StoreHit || warm.Cached {
		t.Fatal("a distinct neighbor cannot be a store or cache hit")
	}
	if got := svc.Stats().WarmHits; got != 1 {
		t.Fatalf("warm_hits = %d, want 1", got)
	}

	// Soundness: a cold solve of the neighbor on a store-less server must
	// certify the identical optimum.
	_, tsCold := newTestServer(t, WithWorkers(1))
	var cold SolveResponse
	if code := postSolve(t, tsCold, storeSolveBody(t, 3), &cold); code != 200 {
		t.Fatalf("cold reference solve: status %d, error %q", code, cold.Error)
	}
	if warm.Report.Makespan != cold.Report.Makespan || warm.Report.Resources != cold.Report.Resources {
		t.Fatalf("warm optimum (%d,%d) != cold (%d,%d)",
			warm.Report.Makespan, warm.Report.Resources, cold.Report.Makespan, cold.Report.Resources)
	}

	// The neighbor's solve was itself stored; an isomorphic re-encoding of
	// it (same canonical hash) must now be a store hit on a fresh server.
	svcC, tsC := newTestServer(t, WithWorkers(1), WithStore(dir))
	var again SolveResponse
	if code := postSolve(t, tsC, storeSolveBody(t, 3), &again); code != 200 {
		t.Fatalf("replay solve: status %d, error %q", code, again.Error)
	}
	if !again.StoreHit {
		t.Fatal("neighbor result was not written through to the store")
	}
	if lr, _ := svcC.StoreLoad(); lr.Reports != 2 || lr.Instances != 2 {
		t.Fatalf("store holds %+v, want 2 reports + 2 instances", lr)
	}
}

// TestStatsExposesStore checks /v1/stats carries the store block and the
// warm-hit counter over the wire.
func TestStatsExposesStore(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, WithWorkers(1), WithStore(dir))
	var first SolveResponse
	if code := postSolve(t, ts, storeSolveBody(t, 0), &first); code != 200 {
		t.Fatalf("solve: status %d, error %q", code, first.Error)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Store == nil || stats.Store.Entries != 1 {
		t.Fatalf("stats store block %+v, want 1 entry", stats.Store)
	}
	if stats.Store.Misses == 0 {
		t.Fatal("the cold solve should have counted a store miss")
	}
}

package service

import (
	"encoding/json"

	"repro/internal/solver"
	"repro/internal/store"
)

// SolveRequest is one solve over the wire: an instance in the core JSON
// form, a solver name, and options.
type SolveRequest struct {
	// Solver is the registry name to dispatch to; empty means "auto".
	Solver string `json:"solver,omitempty"`
	// Instance is the core.Instance wire document ({nodes, edges}).  Kept
	// raw so batch items decode (and fail) independently.
	Instance json.RawMessage `json:"instance"`
	// Options carries the solve knobs; the request-level deadline inside
	// it is anchored when the request is admitted.
	Options solver.WireOptions `json:"options,omitempty"`
}

// solveEnvelope is the body of POST /v1/solve: either a single
// SolveRequest inline, or a batch of them under "batch".
type solveEnvelope struct {
	SolveRequest
	Batch []SolveRequest `json:"batch,omitempty"`
}

// SolveResponse is the outcome of one solve request.
type SolveResponse struct {
	// Hash is the canonical instance hash (core.Instance.CanonicalHash),
	// the identity under which the result was cached.
	Hash string `json:"hash,omitempty"`
	// Cached reports that the response was served from the result cache
	// or coalesced onto an identical in-flight solve, not recomputed.
	Cached bool `json:"cached"`
	// CompiledHit reports that the instance's raw bytes were already
	// compiled: the request skipped JSON decoding, validation, compilation
	// and canonical hashing, reusing the cached core.Compiled.
	CompiledHit bool `json:"compiled_hit,omitempty"`
	// StoreHit reports that the result was served from the durable store
	// without queueing any solve: the answer survived a restart.
	StoreHit bool `json:"store_hit,omitempty"`
	// Warm reports that the solve was seeded with a stored neighbor's
	// solution (solver.Options.Incumbent).  A hint only: certificates are
	// recomputed, the reported optimum is exactly what a cold solve
	// certifies.
	Warm bool `json:"warm,omitempty"`
	// WallMS is the wall time this request spent in the service (queueing
	// included); the solve's own compute time is Report.WallMS.
	WallMS float64 `json:"wall_ms"`
	// InstanceNodes and InstanceArcs size the decoded instance.
	InstanceNodes int `json:"instance_nodes,omitempty"`
	InstanceArcs  int `json:"instance_arcs,omitempty"`
	// Report is the solve outcome; nil when Error is set and no partial
	// result exists.
	Report *solver.WireReport `json:"report,omitempty"`
	// Error is the failure, if any.  A partial (deadline-interrupted)
	// solve carries both an incomplete Report and an Error.
	Error string `json:"error,omitempty"`
}

// BatchResponse answers a batch solve; Results aligns with the request's
// Batch order.  Item failures are reported per item, not as an HTTP error:
// one malformed instance must not void its batch-mates.
type BatchResponse struct {
	Results []SolveResponse `json:"results"`
}

// SolversResponse answers GET /v1/solvers.
type SolversResponse struct {
	Solvers []solver.Info `json:"solvers"`
}

// HealthResponse answers GET /healthz.
type HealthResponse struct {
	Status   string  `json:"status"`
	UptimeMS float64 `json:"uptime_ms"`
}

// StatsResponse answers GET /v1/stats.
type StatsResponse struct {
	UptimeMS float64 `json:"uptime_ms"`
	Requests int64   `json:"requests"`
	// WarmHits counts solves seeded from a stored neighbor's solution.
	WarmHits int64              `json:"warm_hits"`
	Cache    CacheStats         `json:"cache"`
	Compiled CompiledCacheStats `json:"compiled"`
	Pool     PoolStats          `json:"pool"`
	// Jobs counts async-job activity (see JobsStats).
	Jobs JobsStats `json:"jobs"`
	// Store describes the durable store; absent without -store.
	Store *store.Stats `json:"store,omitempty"`
}

// errorResponse is the JSON error envelope for non-200 answers.
type errorResponse struct {
	Error string `json:"error"`
}

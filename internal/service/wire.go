package service

import (
	"encoding/json"

	"repro/internal/solver"
	"repro/internal/store"
)

// SolveRequest is one solve over the wire: an instance in the core JSON
// form, a solver name, and options.
type SolveRequest struct {
	// Solver is the registry name to dispatch to; empty means "auto".
	Solver string `json:"solver,omitempty"`
	// Instance is the core.Instance wire document ({nodes, edges}).  Kept
	// raw so batch items decode (and fail) independently.
	Instance json.RawMessage `json:"instance"`
	// Options carries the solve knobs; the request-level deadline inside
	// it is anchored when the request is admitted.
	Options solver.WireOptions `json:"options,omitempty"`
}

// solveEnvelope is the body of POST /v1/solve: either a single
// SolveRequest inline, or a batch of them under "batch".
type solveEnvelope struct {
	SolveRequest
	Batch []SolveRequest `json:"batch,omitempty"`
}

// SolveResponse is the outcome of one solve request.
type SolveResponse struct {
	// Hash is the canonical instance hash (core.Instance.CanonicalHash),
	// the identity under which the result was cached.
	Hash string `json:"hash,omitempty"`
	// Cached reports that the response was served from the result cache
	// or coalesced onto an identical in-flight solve, not recomputed.
	Cached bool `json:"cached"`
	// CompiledHit reports that the instance's raw bytes were already
	// compiled: the request skipped JSON decoding, validation, compilation
	// and canonical hashing, reusing the cached core.Compiled.
	CompiledHit bool `json:"compiled_hit,omitempty"`
	// StoreHit reports that the result was served from the durable store
	// without queueing any solve: the answer survived a restart.
	StoreHit bool `json:"store_hit,omitempty"`
	// Warm reports that the solve was seeded with a stored neighbor's
	// solution (solver.Options.Incumbent).  A hint only: certificates are
	// recomputed, the reported optimum is exactly what a cold solve
	// certifies.
	Warm bool `json:"warm,omitempty"`
	// WallMS is the wall time this request spent in the service (queueing
	// included); the solve's own compute time is Report.WallMS.
	WallMS float64 `json:"wall_ms"`
	// InstanceNodes and InstanceArcs size the decoded instance.
	InstanceNodes int `json:"instance_nodes,omitempty"`
	InstanceArcs  int `json:"instance_arcs,omitempty"`
	// Report is the solve outcome; nil when Error is set and no partial
	// result exists.
	Report *solver.WireReport `json:"report,omitempty"`
	// Error is the failure, if any.  A partial (deadline-interrupted)
	// solve carries both an incomplete Report and an Error.
	Error string `json:"error,omitempty"`
	// Owner is the cluster node that owns this instance's hash; set only
	// in cluster mode.  When it differs from the serving node and
	// Forwarded is false, the serving node fell back to a local solve
	// because the owner was unreachable.
	Owner string `json:"owner,omitempty"`
	// Forwarded reports that this response was produced by the owner node
	// and relayed by the node the client spoke to.
	Forwarded bool `json:"forwarded,omitempty"`
}

// BatchResponse answers a batch solve; Results aligns with the request's
// Batch order.  Item failures are reported per item, not as an HTTP error:
// one malformed instance must not void its batch-mates.
type BatchResponse struct {
	Results []SolveResponse `json:"results"`
}

// SolversResponse answers GET /v1/solvers.
type SolversResponse struct {
	Solvers []solver.Info `json:"solvers"`
}

// HealthResponse answers GET /healthz.
type HealthResponse struct {
	Status   string  `json:"status"`
	UptimeMS float64 `json:"uptime_ms"`
}

// StatsResponse answers GET /v1/stats.
type StatsResponse struct {
	UptimeMS float64 `json:"uptime_ms"`
	Requests int64   `json:"requests"`
	// WarmHits counts solves seeded from a stored neighbor's solution.
	WarmHits int64              `json:"warm_hits"`
	Cache    CacheStats         `json:"cache"`
	Compiled CompiledCacheStats `json:"compiled"`
	Pool     PoolStats          `json:"pool"`
	// Jobs counts async-job activity (see JobsStats).
	Jobs JobsStats `json:"jobs"`
	// Store describes the durable store; absent without -store.
	Store *store.Stats `json:"store,omitempty"`
	// Cluster counts peer-forwarding activity; absent without -peers.
	Cluster *ClusterStats `json:"cluster,omitempty"`
}

// ClusterStats is the cluster block of /v1/stats: the static membership
// plus this node's forwarding counters.  Counters are node-local — the
// cluster-wide picture is the sum over members — and they partition a
// node's clustered traffic: every non-owned request ends as exactly one
// of ForwardHits or Fallbacks.
type ClusterStats struct {
	// Self is this node's address in the ring; Peers is the full sorted
	// membership (self included).
	Self  string   `json:"self"`
	Peers []string `json:"peers"`
	// Forwards counts solve requests dispatched to their owner node;
	// ForwardHits counts those the owner answered.
	Forwards    int64 `json:"forwards"`
	ForwardHits int64 `json:"forward_hits"`
	// ForwardCoalesced counts requests that joined an identical in-flight
	// forward instead of dispatching their own (proxy-side single-flight).
	ForwardCoalesced int64 `json:"forward_coalesced"`
	// Fallbacks counts non-owned requests solved locally because the
	// owner was unreachable or answered unusably (graceful degradation).
	Fallbacks int64 `json:"fallbacks"`
	// OwnerSolves counts fresh pool solves this node ran for hashes it
	// owns — the cluster-wide dedup metric: N identical requests anywhere
	// in a healthy cluster sum to 1.
	OwnerSolves int64 `json:"owner_solves"`
}

// Error is the unified error envelope: the one shape every /v1/* and
// /internal/v1/* endpoint returns for a non-2xx answer, wrapped as
// {"error": {...}} (errorResponse).  Code is a small stable vocabulary
// for programs (see errCodeFor); Message is for humans; Detail, when
// present, carries context such as the offending identifier.
type Error struct {
	// Code is one of: invalid_request, not_found, method_not_allowed,
	// unavailable, internal.
	Code string `json:"code"`
	// Message describes the failure for humans.
	Message string `json:"message"`
	// Detail optionally narrows the failure (an identifier, a hint).
	Detail string `json:"detail,omitempty"`
}

// errorResponse is the JSON body of every non-2xx answer.
type errorResponse struct {
	Error Error `json:"error"`
}

// ProbeResponse answers GET /internal/v1/probe/{hash}: what this node
// holds for a canonical instance hash, so peers (and operators) can ask
// about cluster data placement without triggering any solve.
type ProbeResponse struct {
	// Hash echoes the probed canonical hash; Owner is the member owning
	// it under the current ring; SelfOwned reports whether that is the
	// answering node.
	Hash      string `json:"hash"`
	Owner     string `json:"owner,omitempty"`
	SelfOwned bool   `json:"self_owned"`
	// Results counts completed reports for this hash (any solver/options)
	// in the answering node's result cache; Stored reports whether the
	// durable store holds the instance itself.
	Results int  `json:"results"`
	Stored  bool `json:"stored"`
}

// ClusterHealthResponse answers GET /internal/v1/health: liveness plus
// the ring this node is configured with, so a peer (or the smoke test)
// can detect membership disagreement.
type ClusterHealthResponse struct {
	Status   string   `json:"status"`
	UptimeMS float64  `json:"uptime_ms"`
	Self     string   `json:"self,omitempty"`
	Peers    []string `json:"peers,omitempty"`
}

package service

import (
	"bufio"
	"container/heap"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/solver"
)

// postJob submits body to /v1/jobs and decodes the 202 envelope.
func postJob(t *testing.T, ts *httptest.Server, body string) JobAccepted {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST /v1/jobs: status %d (%s: %s), want 202", resp.StatusCode, e.Error.Code, e.Error.Message)
	}
	var acc JobAccepted
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	return acc
}

// pollJob polls the job until it leaves the live states or the deadline
// passes, returning the final status.
func pollJob(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State != JobQueued && st.State != JobRunning {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 30s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// sseEvents reads one whole SSE stream, returning the progress events and
// the final done payload.
func sseEvents(t *testing.T, body *bufio.Reader) (events []JobEvent, done *JobStatus) {
	t.Helper()
	var event, data string
	for {
		line, err := body.ReadString('\n')
		if err != nil {
			return events, done
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "":
			switch event {
			case "progress":
				var ev JobEvent
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					t.Fatalf("bad progress frame %q: %v", data, err)
				}
				events = append(events, ev)
			case "done":
				var st JobStatus
				if err := json.Unmarshal([]byte(data), &st); err != nil {
					t.Fatalf("bad done frame %q: %v", data, err)
				}
				done = &st
				return events, done
			}
			event, data = "", ""
		}
	}
}

// jobBody renders a solve-job request body for the given generator seed.
func jobBody(t *testing.T, seed int64, extra string) string {
	t.Helper()
	req := marshalRequest(t, scenario.NewGen(seed).RequestStream(1, 1)[0])
	req.Solver = "exact"
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	if extra == "" {
		return string(body)
	}
	return strings.TrimSuffix(string(body), "}") + "," + extra + "}"
}

// TestJobLifecycle submits an async solve, streams its trajectory, and
// checks the final result is byte-identical to the synchronous answer.
func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, WithWorkers(2))
	body := jobBody(t, 31, "")

	acc := postJob(t, ts, body)
	if acc.ID == "" || acc.StatusURL != "/v1/jobs/"+acc.ID || acc.EventsURL != "/v1/jobs/"+acc.ID+"/events" {
		t.Fatalf("bad acceptance envelope: %+v", acc)
	}
	st := pollJob(t, ts, acc.ID)
	if st.State != JobSucceeded {
		t.Fatalf("job finished %s, want succeeded: %+v", st.State, st)
	}
	if st.Result == nil || st.Result.Report == nil {
		t.Fatalf("succeeded job has no result report: %+v", st)
	}

	// The full SSE replay after completion: every stored event, then done.
	resp, err := http.Get(ts.URL + acc.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type %q, want text/event-stream", ct)
	}
	events, done := sseEvents(t, bufio.NewReader(resp.Body))
	if len(events) != st.Events {
		t.Fatalf("SSE replayed %d events, status says %d", len(events), st.Events)
	}
	if done == nil || done.State != JobSucceeded {
		t.Fatalf("SSE stream did not end with a succeeded done event: %+v", done)
	}
	if len(events) < 1 {
		t.Fatal("no progress events for a fresh exact solve")
	}
	// The trajectory improves monotonically and the gap shrinks strictly.
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if i == 0 {
			continue
		}
		prev := events[i-1]
		improved := (ev.Incumbent >= 0 && (prev.Incumbent < 0 || ev.Incumbent < prev.Incumbent)) || ev.Bound > prev.Bound
		if !improved {
			t.Fatalf("event %d does not improve on %d: %+v -> %+v", i, i-1, prev, ev)
		}
		if prev.Gap >= 0 && (ev.Gap < 0 || ev.Gap >= prev.Gap) {
			t.Fatalf("gap did not shrink strictly: %+v -> %+v", prev, ev)
		}
	}
	final := events[len(events)-1]
	if final.Incumbent != float64(st.Result.Report.Makespan) {
		t.Fatalf("final event incumbent %v, report makespan %d", final.Incumbent, st.Result.Report.Makespan)
	}

	// Byte-identical to the synchronous path: same cache, same report.
	var sync SolveResponse
	if status := postSolve(t, ts, body, &sync); status != http.StatusOK {
		t.Fatalf("sync solve status %d", status)
	}
	syncJSON, _ := json.Marshal(sync.Report)
	jobJSON, _ := json.Marshal(st.Result.Report)
	if string(syncJSON) != string(jobJSON) {
		t.Fatalf("job report differs from synchronous report:\n job: %s\nsync: %s", jobJSON, syncJSON)
	}
	if !sync.Cached {
		t.Fatal("synchronous repeat of a completed job was not a cache hit")
	}
}

// TestJobPollAfterComplete pins that finished jobs stay pollable (the
// retention window) and repeated polls are stable.
func TestJobPollAfterComplete(t *testing.T) {
	_, ts := newTestServer(t, WithWorkers(2))
	acc := postJob(t, ts, jobBody(t, 32, ""))
	first := pollJob(t, ts, acc.ID)
	if first.State != JobSucceeded {
		t.Fatalf("job finished %s", first.State)
	}
	for i := 0; i < 3; i++ {
		again := pollJob(t, ts, acc.ID)
		aj, _ := json.Marshal(again)
		fj, _ := json.Marshal(first)
		if string(aj) != string(fj) {
			t.Fatalf("poll %d changed a finished job:\nwas %s\nnow %s", i, fj, aj)
		}
	}
}

// TestJobRetention pins the finished-job eviction order: with RetainJobs
// 1, completing a second job evicts the first.
func TestJobRetention(t *testing.T) {
	_, ts := newTestServer(t, WithWorkers(2), WithRetainJobs(1))
	a := postJob(t, ts, jobBody(t, 33, ""))
	pollJob(t, ts, a.ID)
	b := postJob(t, ts, jobBody(t, 34, ""))
	pollJob(t, ts, b.ID)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + a.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted job %s: status %d, want 404", a.ID, resp.StatusCode)
	}
	if st := pollJob(t, ts, b.ID); st.State != JobSucceeded {
		t.Fatalf("retained job %s is %s", b.ID, st.State)
	}
}

// TestJobInvalidRequestRejectedBeforeAcceptance pins prepare-at-submit: a
// malformed job fails the POST with 400 and never becomes a dead job.
func TestJobInvalidRequestRejectedBeforeAcceptance(t *testing.T) {
	svc, ts := newTestServer(t, WithWorkers(1))
	noMode := marshalRequest(t, scenario.NewGen(35).RequestStream(1, 1)[0])
	noMode.Options = solver.WireOptions{}
	noModeBody, err := json.Marshal(noMode)
	if err != nil {
		t.Fatal(err)
	}
	for name, body := range map[string]string{
		"no instance":    `{"solver":"exact","options":{"budget":3}}`,
		"no mode":        string(noModeBody),
		"unknown solver": strings.Replace(jobBody(t, 35, ""), `"exact"`, `"nope"`, 1),
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	if st := svc.jobs.stats(); st.Submitted != 0 {
		t.Fatalf("invalid requests were accepted as jobs: %+v", st)
	}
}

// occupyPool parks a no-op solve on every pool worker and returns the
// release function; jobs submitted meanwhile dispatch (the admission slot
// is free) but block at the pool, deterministically pinning "running".
func occupyPool(t *testing.T, svc *Server) (release func()) {
	t.Helper()
	gate := make(chan struct{})
	started := make(chan struct{}, len(svc.pool.workers))
	for range svc.pool.workers {
		go func() {
			_, _ = svc.pool.do(context.Background(), func(*worker) (solver.WireReport, error) {
				started <- struct{}{}
				<-gate
				return solver.WireReport{}, nil
			})
		}()
	}
	for range svc.pool.workers {
		<-started
	}
	return func() { close(gate) }
}

// TestJobSSEDisconnectMidStream pins that one subscriber dropping its
// stream neither kills the job nor poisons later subscribers.
func TestJobSSEDisconnectMidStream(t *testing.T) {
	svc, ts := newTestServer(t, WithWorkers(1))
	release := occupyPool(t, svc)
	acc := postJob(t, ts, jobBody(t, 36, ""))

	// Subscribe while the job is blocked on the pool, then hang up.
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+acc.EventsURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status %d", resp.StatusCode)
	}
	cancel()
	resp.Body.Close()

	release()
	if st := pollJob(t, ts, acc.ID); st.State != JobSucceeded {
		t.Fatalf("job finished %s after a subscriber disconnect, want succeeded", st.State)
	}
	// A fresh subscriber still gets the complete replay.
	resp2, err := http.Get(ts.URL + acc.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	events, done := sseEvents(t, bufio.NewReader(resp2.Body))
	if done == nil || done.State != JobSucceeded || len(events) == 0 {
		t.Fatalf("post-disconnect replay broken: %d events, done %+v", len(events), done)
	}
}

// TestJobCancel covers DELETE in all three states: queued jobs finish
// canceled without running, running jobs get their context canceled, and
// finished jobs are forgotten.
func TestJobCancel(t *testing.T) {
	svc, ts := newTestServer(t, WithWorkers(1))
	release := occupyPool(t, svc)

	running := postJob(t, ts, jobBody(t, 37, ""))  // dispatched, blocked at the pool
	queued := postJob(t, ts, jobBody(t, 38, ""))   // waiting for the admission slot
	finished := postJob(t, ts, jobBody(t, 39, "")) // will complete after release

	del := func(id string) JobStatus {
		t.Helper()
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	if st := del(queued.ID); st.State != JobCanceled {
		t.Fatalf("canceled queued job is %s, want canceled", st.State)
	}
	if st := del(running.ID); st.State != JobRunning && st.State != JobCanceled {
		t.Fatalf("canceled running job is %s", st.State)
	}
	release()
	if st := pollJob(t, ts, running.ID); st.State != JobCanceled {
		t.Fatalf("running job finished %s after cancel, want canceled", st.State)
	}
	if st := pollJob(t, ts, finished.ID); st.State != JobSucceeded {
		t.Fatalf("untouched job finished %s", st.State)
	}
	// The canceled-queued job streamed no work and holds no result.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Result != nil || st.Events != 0 {
		t.Fatalf("canceled-before-running job has work attached: %+v", st)
	}
	// DELETE on the finished job forgets it.
	del(finished.ID)
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + finished.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("forgotten job: status %d, want 404", resp2.StatusCode)
	}
	stats := svc.jobs.stats()
	if stats.Canceled != 2 {
		t.Fatalf("stats count %d canceled jobs, want 2: %+v", stats.Canceled, stats)
	}
}

// TestJobAdmissionOrder pins the admission heap's full ordering:
// priority descending, then deadline ascending with "none" last, then
// submission order.
func TestJobAdmissionOrder(t *testing.T) {
	now := time.Now()
	mk := func(seq int64, prio int, deadline time.Time) *job {
		return &job{seq: seq, priority: prio, deadline: deadline, index: -1}
	}
	jobs := []*job{
		mk(1, 0, time.Time{}),
		mk(2, 5, time.Time{}),
		mk(3, 5, now.Add(time.Hour)),
		mk(4, 5, now.Add(time.Minute)),
		mk(5, 0, now.Add(time.Second)),
		mk(6, 0, time.Time{}),
	}
	var h jobHeap
	for _, jb := range jobs {
		heap.Push(&h, jb)
	}
	var got []int64
	for h.Len() > 0 {
		got = append(got, heap.Pop(&h).(*job).seq)
	}
	want := []int64{4, 3, 2, 5, 1, 6}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("admission order %v, want %v", got, want)
	}
}

// TestJobAfterStoreCorruption restarts the service on a store containing
// a half-written report entry: the boot skips (and counts) the corrupt
// entry, and re-submitting the job re-solves and succeeds.
func TestJobAfterStoreCorruption(t *testing.T) {
	dir := t.TempDir()
	body := jobBody(t, 40, "")

	svc, ts := newTestServer(t, WithWorkers(2), WithStore(dir))
	acc := postJob(t, ts, body)
	st := pollJob(t, ts, acc.ID)
	if st.State != JobSucceeded {
		t.Fatalf("job finished %s", st.State)
	}
	ts.Close()
	svc.Close()

	// Truncate every stored report mid-file: a crash between write and
	// rename, as seen by the next boot.
	reports, err := filepath.Glob(filepath.Join(dir, "reports", "*.json"))
	if err != nil || len(reports) == 0 {
		t.Fatalf("no stored reports to corrupt (err %v)", err)
	}
	for _, path := range reports {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	}

	svc2, ts2 := newTestServer(t, WithWorkers(2), WithStore(dir))
	lr, ok := svc2.StoreLoad()
	if !ok || lr.Corrupt == 0 {
		t.Fatalf("restart did not count the corrupt entries: %+v (ok %v)", lr, ok)
	}
	acc2 := postJob(t, ts2, body)
	st2 := pollJob(t, ts2, acc2.ID)
	if st2.State != JobSucceeded {
		t.Fatalf("re-solve after corruption finished %s", st2.State)
	}
	if st2.Result.StoreHit {
		t.Fatal("corrupt store entry was served as a hit")
	}
	if st.Result.Report.Makespan != st2.Result.Report.Makespan {
		t.Fatalf("re-solve changed the answer: %d vs %d", st.Result.Report.Makespan, st2.Result.Report.Makespan)
	}
}

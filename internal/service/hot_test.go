package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"testing"
)

// TestServeHotMatchesHTTP is the hot tier's parity contract: for the same
// request bytes, ServeHot and POST /v1/solve must produce the same status
// and the same response modulo wall_ms (the hot tier reports 0 — its wall
// time is a map probe).
func TestServeHotMatchesHTTP(t *testing.T) {
	svc, ts := newTestServer(t, WithWorkers(1))
	body, _ := isoBodies()

	// Prime both tiers, then compare steady-state answers.
	var prime SolveResponse
	if status := postSolve(t, ts, body, &prime); status != http.StatusOK || prime.Error != "" {
		t.Fatalf("prime: status %d, %+v", status, prime)
	}
	out, status := svc.ServeHot([]byte(body), nil)
	if status != http.StatusOK {
		t.Fatalf("ServeHot prime: status %d: %s", status, out)
	}

	var viaHTTP SolveResponse
	if status := postSolve(t, ts, body, &viaHTTP); status != http.StatusOK {
		t.Fatalf("http repeat: status %d", status)
	}
	out, status = svc.ServeHot([]byte(body), out[:0])
	if status != http.StatusOK {
		t.Fatalf("ServeHot repeat: status %d", status)
	}
	var viaHot SolveResponse
	if err := json.Unmarshal(out, &viaHot); err != nil {
		t.Fatalf("hot response is not valid JSON: %v\n%s", err, out)
	}
	viaHTTP.WallMS, viaHot.WallMS = 0, 0
	if !reflect.DeepEqual(viaHTTP, viaHot) {
		t.Fatalf("hot tier diverges from HTTP (modulo wall_ms):\nhttp: %+v\nhot:  %+v", viaHTTP, viaHot)
	}
	if !viaHot.Cached || !viaHot.CompiledHit {
		t.Fatalf("steady-state hot response should be fully cached: %+v", viaHot)
	}
}

// TestServeHotHitIsStable: repeated hits return byte-identical bodies and
// count as hits, and the arena holds exactly one entry per distinct body.
func TestServeHotHitIsStable(t *testing.T) {
	svc, err := New(WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	bodyA, bodyB := isoBodies()

	a1, status := svc.ServeHot([]byte(bodyA), nil)
	if status != http.StatusOK {
		t.Fatalf("first: %d %s", status, a1)
	}
	a2, _ := svc.ServeHot([]byte(bodyA), nil)
	a3, _ := svc.ServeHot([]byte(bodyA), nil)
	if string(a2) != string(a3) {
		t.Fatalf("hot hits differ:\n%s\n%s", a2, a3)
	}
	if _, st := svc.ServeHot([]byte(bodyB), nil); st != http.StatusOK {
		t.Fatalf("isomorphic body: %d", st)
	}
	if hits := svc.hot.hits.Load(); hits != 2 {
		t.Fatalf("hot hits = %d; want 2", hits)
	}
	svc.hot.mu.RLock()
	entries := len(svc.hot.entries)
	svc.hot.mu.RUnlock()
	if entries != 2 {
		t.Fatalf("arena holds %d entries; want one per distinct body", entries)
	}
}

// TestServeHotDoesNotCacheImpure: responses that are not pure functions
// of the request bytes — deadline-bounded solves, errors, batches — must
// never enter the arena.
func TestServeHotDoesNotCacheImpure(t *testing.T) {
	svc, err := New(WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	entriesNow := func() int {
		svc.hot.mu.RLock()
		defer svc.hot.mu.RUnlock()
		return len(svc.hot.entries)
	}

	// Deadline-bounded: correct answer, not cached.
	inst := `{"nodes":["s","t"],"edges":[{"from":0,"to":1,"fn":{"kind":"step","tuples":[{"r":0,"t":9},{"r":1,"t":5}]}}]}`
	withDeadline := fmt.Sprintf(`{"options":{"budget":1,"deadline_ms":60000},"instance":%s}`, inst)
	out, status := svc.ServeHot([]byte(withDeadline), nil)
	if status != http.StatusOK {
		t.Fatalf("deadline solve: %d %s", status, out)
	}
	if n := entriesNow(); n != 0 {
		t.Fatalf("deadline-bounded response was cached (%d entries)", n)
	}

	// Malformed body: a 400 with the unified envelope, not cached.
	out, status = svc.ServeHot([]byte(`{"instance": nope`), nil)
	if status != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", status)
	}
	var envlp errorResponse
	if err := json.Unmarshal(out, &envlp); err != nil || envlp.Error.Code != "invalid_request" {
		t.Fatalf("malformed body: want the unified envelope, got %s (err %v)", out, err)
	}
	if n := entriesNow(); n != 0 {
		t.Fatalf("error response was cached (%d entries)", n)
	}

	// Batch: rejected on the hot path with the envelope.
	batch := fmt.Sprintf(`{"batch":[%s]}`, `{"options":{"budget":1},"instance":{"nodes":["s","t"],"edges":[{"from":0,"to":1,"fn":{"kind":"const","t0":3}}]}}`)
	out, status = svc.ServeHot([]byte(batch), nil)
	if status != http.StatusBadRequest {
		t.Fatalf("batch: status %d %s", status, out)
	}
	if n := entriesNow(); n != 0 {
		t.Fatalf("batch rejection was cached (%d entries)", n)
	}
}

// TestServeHotArenaBounded: a full arena stops admitting, keeps serving.
func TestServeHotArenaBounded(t *testing.T) {
	svc, err := New(WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	svc.hot.cap = 2
	mk := func(t0 int64) []byte {
		return []byte(fmt.Sprintf(`{"options":{"budget":1},"instance":{"nodes":["s","t"],"edges":[{"from":0,"to":1,"fn":{"kind":"const","t0":%d}}]}}`, t0))
	}
	for t0 := int64(1); t0 <= 4; t0++ {
		if _, status := svc.ServeHot(mk(t0), nil); status != http.StatusOK {
			t.Fatalf("t0=%d: status %d", t0, status)
		}
	}
	svc.hot.mu.RLock()
	entries := len(svc.hot.entries)
	svc.hot.mu.RUnlock()
	if entries != 2 {
		t.Fatalf("arena grew to %d entries past its cap of 2", entries)
	}
	// Uncached bodies still answer correctly through the ordinary path.
	var resp SolveResponse
	out, status := svc.ServeHot(mk(4), nil)
	if status != http.StatusOK {
		t.Fatalf("over-cap body: status %d", status)
	}
	if err := json.Unmarshal(out, &resp); err != nil || resp.Report == nil || resp.Report.Makespan != 4 {
		t.Fatalf("over-cap body answered wrong: %s (err %v)", out, err)
	}
}

package service

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
)

// clusterHarness is an in-process cluster: n Servers, each listening on
// a real loopback port (ownership is computed over the advertised URLs,
// so the listeners must exist before the rings are built) and each
// configured with the full membership.
type clusterHarness struct {
	svcs []*Server
	ts   []*httptest.Server
	urls []string
}

func newClusterHarness(t *testing.T, n int, extra ...Option) *clusterHarness {
	t.Helper()
	h := &clusterHarness{}
	listeners := make([]net.Listener, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		h.urls = append(h.urls, "http://"+l.Addr().String())
	}
	for i := range listeners {
		opts := append([]Option{WithWorkers(2), WithPeers(h.urls[i], h.urls...)}, extra...)
		svc, err := New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		ts := &httptest.Server{
			Listener: listeners[i],
			Config:   &http.Server{Handler: svc.Handler()},
		}
		ts.Start()
		h.svcs = append(h.svcs, svc)
		h.ts = append(h.ts, ts)
	}
	t.Cleanup(func() {
		for i := range h.svcs {
			h.kill(i)
		}
	})
	return h
}

// kill stops node i's listener and service; idempotent so the cleanup
// can run after a test already killed its owner.
func (h *clusterHarness) kill(i int) {
	if h.ts[i] != nil {
		h.ts[i].Close()
		h.ts[i] = nil
		h.svcs[i].Close()
	}
}

// post sends one solve to node i and decodes the response.
func (h *clusterHarness) post(t *testing.T, i int, body string) (SolveResponse, int) {
	t.Helper()
	resp, err := http.Post(h.urls[i]+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return out, resp.StatusCode
}

// ownerIndex returns which node owns req's instance, computed from the
// same canonical hash the servers route on.
func (h *clusterHarness) ownerIndex(t *testing.T, req SolveRequest) int {
	t.Helper()
	var inst core.Instance
	if err := json.Unmarshal(req.Instance, &inst); err != nil {
		t.Fatal(err)
	}
	owner := h.svcs[0].cluster.ring.Owner(core.Compile(&inst).Hash())
	for i, u := range h.urls {
		if u == owner {
			return i
		}
	}
	t.Fatalf("owner %s is not a harness node", owner)
	return -1
}

// reqOwnedBy searches generator seeds for a request owned by node want,
// so tests can pin which member computes.
func (h *clusterHarness) reqOwnedBy(t *testing.T, want int) SolveRequest {
	t.Helper()
	for seed := int64(9000); seed < 9100; seed++ {
		req := marshalRequest(t, scenario.NewGen(seed).RequestStream(1, 1)[0])
		if h.ownerIndex(t, req) == want {
			return req
		}
	}
	t.Fatalf("no generated instance owned by node %d in 100 seeds", want)
	return SolveRequest{}
}

func marshalBody(t *testing.T, req SolveRequest) string {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func (h *clusterHarness) totalPoolJobs() int64 {
	var jobs int64
	for _, svc := range h.svcs {
		jobs += svc.pool.stats().Jobs
	}
	return jobs
}

// TestClusterSolvesOnceClusterWide is the headline invariant: the same
// request sent to every node computes exactly once, on the owner, and
// every answer is byte-identical.
func TestClusterSolvesOnceClusterWide(t *testing.T) {
	h := newClusterHarness(t, 3)
	req := h.reqOwnedBy(t, 1)
	body := marshalBody(t, req)

	var reports []string
	for i := range h.svcs {
		resp, status := h.post(t, i, body)
		if status != http.StatusOK || resp.Error != "" || resp.Report == nil {
			t.Fatalf("node %d: status %d, resp %+v", i, status, resp)
		}
		if resp.Owner != h.urls[1] {
			t.Fatalf("node %d reports owner %s, want %s", i, resp.Owner, h.urls[1])
		}
		if wantFwd := i != 1; resp.Forwarded != wantFwd {
			t.Fatalf("node %d: forwarded = %v, want %v", i, resp.Forwarded, wantFwd)
		}
		if !resp.Report.Complete {
			t.Fatalf("node %d: incomplete report %+v", i, resp.Report)
		}
		rj, _ := json.Marshal(resp.Report)
		reports = append(reports, string(rj))
	}
	for i, r := range reports[1:] {
		if r != reports[0] {
			t.Fatalf("node %d report differs:\n%s\n%s", i+1, reports[0], r)
		}
	}

	if jobs := h.totalPoolJobs(); jobs != 1 {
		t.Fatalf("cluster ran %d pool jobs for one distinct instance, want 1", jobs)
	}
	var ownerSolves, forwards, forwardHits int64
	for i, svc := range h.svcs {
		cs := svc.clusterStats()
		ownerSolves += cs.OwnerSolves
		forwards += cs.Forwards
		forwardHits += cs.ForwardHits
		if cs.Fallbacks != 0 {
			t.Fatalf("node %d recorded %d fallbacks in a healthy cluster", i, cs.Fallbacks)
		}
	}
	if ownerSolves != 1 || forwards != 2 || forwardHits != 2 {
		t.Fatalf("owner_solves %d, forwards %d, forward_hits %d; want 1, 2, 2",
			ownerSolves, forwards, forwardHits)
	}

	// The cluster block surfaces over /v1/stats with the full membership.
	resp, err := http.Get(h.urls[1] + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cluster == nil || len(stats.Cluster.Peers) != 3 || stats.Cluster.OwnerSolves != 1 {
		t.Fatalf("stats cluster block: %+v", stats.Cluster)
	}
}

// TestClusterConcurrentRequestsCoalesce spreads identical concurrent
// deadline-free requests across every node: proxy-side forward
// coalescing plus owner-side single-flight must hold the cluster to one
// pool job with zero errors.
func TestClusterConcurrentRequestsCoalesce(t *testing.T) {
	h := newClusterHarness(t, 3)
	req := h.reqOwnedBy(t, 2)
	body := marshalBody(t, req)

	const perNode = 4
	var wg sync.WaitGroup
	errs := make(chan string, 3*perNode)
	for i := range h.svcs {
		for j := 0; j < perNode; j++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, status := h.post(t, i, body)
				if status != http.StatusOK || resp.Error != "" || resp.Report == nil {
					errs <- fmt.Sprintf("node %d: status %d, error %q", i, status, resp.Error)
				}
			}(i)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if jobs := h.totalPoolJobs(); jobs != 1 {
		t.Fatalf("cluster ran %d pool jobs for %d identical requests, want 1", jobs, 3*perNode)
	}
	// Each proxy dispatched at most one forward; its other requests either
	// joined that flight or hit the owner's cache afterwards.
	for i, svc := range h.svcs {
		if i == 2 {
			continue
		}
		if cs := svc.clusterStats(); cs.Forwards > perNode || cs.Forwards < 1 {
			t.Fatalf("node %d dispatched %d forwards for %d requests", i, cs.Forwards, perNode)
		}
	}
}

// TestClusterIsomorphicEncodingsShareOwner re-encodes the same DAG with
// renamed nodes and reordered arcs (the invariances CanonicalHash
// grants): canonical hashing must land both on the same owner and the
// second request on the first's cache.
func TestClusterIsomorphicEncodingsShareOwner(t *testing.T) {
	h := newClusterHarness(t, 3)
	encA := `{"solver":"exact","options":{"budget":3},"instance":{"nodes":["s","a","t"],
		"edges":[{"from":0,"to":1,"fn":{"kind":"const","t0":2}},
		         {"from":1,"to":2,"fn":{"kind":"kway","t0":9}}]}}`
	encB := `{"solver":"exact","options":{"budget":3},"instance":{"nodes":["source","middle","sink"],
		"edges":[{"from":1,"to":2,"fn":{"kind":"kway","t0":9}},
		         {"from":0,"to":1,"fn":{"kind":"const","t0":2}}]}}`

	respA, statusA := h.post(t, 0, encA)
	respB, statusB := h.post(t, 1, encB)
	if statusA != http.StatusOK || statusB != http.StatusOK {
		t.Fatalf("statuses %d, %d", statusA, statusB)
	}
	if respA.Hash == "" || respA.Hash != respB.Hash {
		t.Fatalf("isomorphic encodings hashed apart: %q vs %q", respA.Hash, respB.Hash)
	}
	if respA.Owner != respB.Owner {
		t.Fatalf("isomorphic encodings owned apart: %q vs %q", respA.Owner, respB.Owner)
	}
	if !respB.Cached {
		t.Fatal("second isomorphic request missed the cluster-wide cache")
	}
	if jobs := h.totalPoolJobs(); jobs != 1 {
		t.Fatalf("cluster ran %d pool jobs for one DAG in two encodings, want 1", jobs)
	}
}

// TestClusterOwnerDownDegradesToLocal kills the owner mid-stream: the
// surviving nodes must answer every request 200 from local solves, with
// the degradation visible only in the fallback counters and the
// owner/forwarded response fields.
func TestClusterOwnerDownDegradesToLocal(t *testing.T) {
	h := newClusterHarness(t, 3)
	req := h.reqOwnedBy(t, 1)
	body := marshalBody(t, req)

	// Healthy first: node 0 forwards to the owner.
	if resp, status := h.post(t, 0, body); status != http.StatusOK || !resp.Forwarded {
		t.Fatalf("healthy forward failed: status %d, %+v", status, resp)
	}

	h.kill(1)

	for _, i := range []int{0, 2} {
		resp, status := h.post(t, i, body)
		if status != http.StatusOK || resp.Error != "" || resp.Report == nil || !resp.Report.Complete {
			t.Fatalf("node %d surfaced the dead owner to the client: status %d, %+v", i, status, resp)
		}
		if resp.Forwarded {
			t.Fatalf("node %d claims a forward to a dead owner", i)
		}
		if resp.Owner != h.urls[1] {
			t.Fatalf("node %d reports owner %s, want the (dead) owner %s", i, resp.Owner, h.urls[1])
		}
	}
	for _, i := range []int{0, 2} {
		if cs := h.svcs[i].clusterStats(); cs.Fallbacks < 1 {
			t.Fatalf("node %d recorded no fallback after the owner died: %+v", i, cs)
		}
	}
}

// TestClusterInternalEndpoints exercises the peer API surface directly:
// probe placement before and after a solve, health with membership, and
// the forward-once contract of /internal/v1/solve.
func TestClusterInternalEndpoints(t *testing.T) {
	h := newClusterHarness(t, 3)
	req := h.reqOwnedBy(t, 0)
	body := marshalBody(t, req)
	var inst core.Instance
	if err := json.Unmarshal(req.Instance, &inst); err != nil {
		t.Fatal(err)
	}
	hash := core.Compile(&inst).Hash()

	getJSON := func(url string, out any) int {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode
	}

	var probe ProbeResponse
	if status := getJSON(h.urls[0]+"/internal/v1/probe/"+hash, &probe); status != http.StatusOK {
		t.Fatalf("probe status %d", status)
	}
	if !probe.SelfOwned || probe.Owner != h.urls[0] || probe.Results != 0 {
		t.Fatalf("pre-solve probe on owner: %+v", probe)
	}

	// Forward-once: a request arriving over the peer API is solved where
	// it lands, even on a node that does NOT own the hash.
	resp, err := http.Post(h.urls[1]+"/internal/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sr SolveResponse
	err = json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("internal solve: %v, status %d", err, resp.StatusCode)
	}
	if sr.Forwarded || sr.Report == nil {
		t.Fatalf("internal solve on non-owner must solve locally: %+v", sr)
	}
	if h.svcs[1].pool.stats().Jobs != 1 {
		t.Fatalf("non-owner did not run the peer-delivered solve itself")
	}

	// The probed node's cache now holds the result it was made to solve.
	if status := getJSON(h.urls[1]+"/internal/v1/probe/"+hash, &probe); status != http.StatusOK {
		t.Fatalf("probe status %d", status)
	}
	if probe.SelfOwned || probe.Owner != h.urls[0] || probe.Results != 1 {
		t.Fatalf("post-solve probe on non-owner: %+v", probe)
	}

	var health ClusterHealthResponse
	if status := getJSON(h.urls[2]+"/internal/v1/health", &health); status != http.StatusOK {
		t.Fatalf("health status %d", status)
	}
	if health.Status != "ok" || health.Self != h.urls[2] || len(health.Peers) != 3 {
		t.Fatalf("cluster health: %+v", health)
	}

	// Internal endpoints answer errors with the unified envelope too.
	delReq, _ := http.NewRequest(http.MethodDelete, h.urls[0]+"/internal/v1/health", nil)
	dresp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	var envelope errorResponse
	err = json.NewDecoder(dresp.Body).Decode(&envelope)
	dresp.Body.Close()
	if err != nil || dresp.StatusCode != http.StatusMethodNotAllowed ||
		envelope.Error.Code != "method_not_allowed" {
		t.Fatalf("internal endpoint error envelope: status %d, %+v", dresp.StatusCode, envelope)
	}
}

// TestClusterDeadlineBoundedForwards pins that deadline-bounded requests
// forward with their remaining budget but never join forward flights
// (mirroring the local rule that they never join solve flights).
func TestClusterDeadlineBoundedForwards(t *testing.T) {
	h := newClusterHarness(t, 3)
	req := h.reqOwnedBy(t, 1)
	req.Options.DeadlineMS = 60_000
	body := marshalBody(t, req)

	resp, status := h.post(t, 0, body)
	if status != http.StatusOK || resp.Error != "" || !resp.Forwarded {
		t.Fatalf("deadline-bounded forward: status %d, %+v", status, resp)
	}
	cs := h.svcs[0].clusterStats()
	if cs.Forwards != 1 || cs.ForwardCoalesced != 0 {
		t.Fatalf("deadline-bounded request coalesced: %+v", cs)
	}
}

// TestClusterMisconfigurationRejected pins construction errors: peers
// without a self address, and malformed peer URLs.
func TestClusterMisconfigurationRejected(t *testing.T) {
	if _, err := New(WithPeers("", "http://a:1")); err == nil {
		t.Fatal("peers without self must be rejected")
	}
	if _, err := New(WithPeers("http://a:1", "not-a-url")); err == nil {
		t.Fatal("malformed peer must be rejected")
	}
}

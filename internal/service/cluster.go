package service

// This file is the service side of cluster mode (see internal/cluster
// for the ring and the peer HTTP client): request forwarding to owner
// nodes, proxy-side coalescing of identical forwards, and the
// /internal/v1/* peer endpoints.
//
// Invariants:
//
//   - hash-owned: a request is solved by the node that rendezvous-owns
//     its canonical hash, so the cluster compiles and solves each
//     distinct instance once;
//   - forward-once: a request arriving over /internal/v1/solve is solved
//     where it lands, never re-forwarded, so membership disagreement can
//     cost duplicate work but never a routing loop;
//   - degrade-to-local: an unreachable owner turns into a local solve,
//     never a client-visible error.

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/solver"
)

// forwardFlight is one in-progress forward other identical requests on
// this node can wait on: the proxy-side half of cluster-wide
// single-flight.  Owner-side dedup (the owner's own result cache and
// flights) collapses duplicates ACROSS proxies; this collapses them
// WITHIN a proxy before they ever hit the wire.
type forwardFlight struct {
	done    chan struct{}
	resp    SolveResponse
	status  int
	handled bool
}

// clusterState carries a clustered server's ring, peer client, in-flight
// forwards and counters.  nil on standalone servers.
type clusterState struct {
	ring   *cluster.Ring
	client *cluster.Client

	mu       sync.Mutex
	inflight map[string]*forwardFlight // result-cache key -> flight

	forwards         atomic.Int64
	forwardHits      atomic.Int64
	forwardCoalesced atomic.Int64
	fallbacks        atomic.Int64
	ownerSolves      atomic.Int64
}

func newClusterState(ring *cluster.Ring) *clusterState {
	return &clusterState{
		ring:     ring,
		client:   cluster.NewClient(cluster.ClientConfig{}),
		inflight: make(map[string]*forwardFlight),
	}
}

// forward routes a prepared request to its owner node.  ok is true when
// the response should be returned to the client as-is (a successful
// forward, or a waiter whose own context died); ok false means the
// caller must solve locally — either this node owns the hash (the
// normal case) or the owner was unreachable (counted as a fallback).
func (cl *clusterState) forward(ctx context.Context, req SolveRequest, p *prepared, start time.Time) (SolveResponse, int, bool) {
	owner := cl.ring.Owner(p.c.Hash())
	if owner == cl.ring.Self() {
		return SolveResponse{}, 0, false
	}
	resp, status, handled := cl.forwardToOwner(ctx, owner, req, p, start)
	if handled {
		return resp, status, true
	}
	cl.fallbacks.Add(1)
	return SolveResponse{}, 0, false
}

// forwardToOwner dispatches to owner, coalescing identical deadline-free
// requests onto one in-flight forward — mirroring the local cache's
// split: deadline-free requests share work, deadline-bounded ones never
// join flights (a truncation is shaped by one request's deadline) and
// dispatch individually under their own context.
func (cl *clusterState) forwardToOwner(ctx context.Context, owner string, req SolveRequest, p *prepared, start time.Time) (SolveResponse, int, bool) {
	if !p.opts.Deadline.IsZero() {
		return cl.dispatch(ctx, owner, req, p, start)
	}
	key := solver.ResultCacheKey(p.name, p.c, p.opts)
	cl.mu.Lock()
	if f, ok := cl.inflight[key]; ok {
		cl.forwardCoalesced.Add(1)
		cl.mu.Unlock()
		select {
		case <-f.done:
			if !f.handled {
				return SolveResponse{}, 0, false // flight fell back; so do we
			}
			resp := f.resp
			// The waiter did not dispatch or compute anything: that is what
			// Cached means ("coalesced onto identical in-flight work").
			resp.Cached = true
			resp.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
			return resp, f.status, true
		case <-ctx.Done():
			// This waiter gives up; the flight keeps going for everyone
			// else.  Its own error is final — falling back to a local solve
			// under a dead context would only burn a worker.
			return SolveResponse{
				Hash:   p.c.Hash(),
				Owner:  owner,
				Error:  ctx.Err().Error(),
				WallMS: float64(time.Since(start)) / float64(time.Millisecond),
			}, http.StatusServiceUnavailable, true
		}
	}
	f := &forwardFlight{done: make(chan struct{})}
	cl.inflight[key] = f
	cl.mu.Unlock()

	// The flight dispatches detached from its leader, like local flights
	// compute detached: one client disconnecting must not poison the
	// identical requests riding along.
	f.resp, f.status, f.handled = cl.dispatch(context.WithoutCancel(ctx), owner, req, p, start)

	cl.mu.Lock()
	delete(cl.inflight, key)
	cl.mu.Unlock()
	close(f.done)
	return f.resp, f.status, f.handled
}

// dispatch performs one forward over /internal/v1/solve.  Anything short
// of a decodable 200 — transport failure after retries, a non-200, a
// garbled body — reports handled false so the caller degrades to a local
// solve; a non-200 from the owner is indistinguishable in effect from an
// unreachable one, and re-validating locally reproduces any genuine
// request error.
func (cl *clusterState) dispatch(ctx context.Context, owner string, req SolveRequest, p *prepared, start time.Time) (SolveResponse, int, bool) {
	fwd := SolveRequest{Solver: req.Solver, Instance: req.Instance, Options: req.Options}
	if !p.opts.Deadline.IsZero() {
		// The wire deadline is relative and re-anchored where it lands;
		// forward only the REMAINING budget so the hop cannot extend it.
		remaining := time.Until(p.opts.Deadline).Milliseconds()
		if remaining < 1 {
			remaining = 1
		}
		fwd.Options.DeadlineMS = remaining
	}
	body, err := json.Marshal(fwd)
	if err != nil {
		return SolveResponse{}, 0, false
	}
	cl.forwards.Add(1)
	data, status, err := cl.client.PostJSON(ctx, owner+"/internal/v1/solve", body)
	if err != nil || status != http.StatusOK {
		return SolveResponse{}, 0, false
	}
	var resp SolveResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return SolveResponse{}, 0, false
	}
	cl.forwardHits.Add(1)
	resp.Owner = owner
	resp.Forwarded = true
	// Wall time is this node's, network hop included; the owner's compute
	// time stays visible in Report.WallMS.
	resp.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
	return resp, http.StatusOK, true
}

// clusterStats snapshots the cluster block of /v1/stats; nil standalone.
func (s *Server) clusterStats() *ClusterStats {
	if s.cluster == nil {
		return nil
	}
	cl := s.cluster
	return &ClusterStats{
		Self:             cl.ring.Self(),
		Peers:            cl.ring.Peers(),
		Forwards:         cl.forwards.Load(),
		ForwardHits:      cl.forwardHits.Load(),
		ForwardCoalesced: cl.forwardCoalesced.Load(),
		Fallbacks:        cl.fallbacks.Load(),
		OwnerSolves:      cl.ownerSolves.Load(),
	}
}

// handleInternalSolve is the owner side of a forward: one solve, no
// batch envelope, solved where it lands (forward-once).  It does not
// count toward the public request counter — /v1/stats requests measures
// client traffic, and the proxying node already counted this request.
func (s *Server) handleInternalSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req SolveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return
	}
	resp, status := s.solveOne(r.Context(), req, true)
	writeSolve(w, resp, status)
}

// handleInternalProbe reports what this node holds for a canonical hash
// without triggering any solve: cached results, stored instance, and who
// owns the hash under this node's ring.
func (s *Server) handleInternalProbe(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	hash := r.PathValue("hash")
	resp := ProbeResponse{
		Hash:      hash,
		SelfOwned: true, // a standalone node owns everything
		Results:   s.cache.resultsForHash(hash),
	}
	if s.cluster != nil {
		resp.Owner = s.cluster.ring.Owner(hash)
		resp.SelfOwned = resp.Owner == s.cluster.ring.Self()
	}
	if s.store != nil {
		_, resp.Stored = s.store.GetInstance(hash)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleInternalHealth answers liveness plus this node's configured
// ring, so peers and smoke tests can detect membership disagreement.
func (s *Server) handleInternalHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	resp := ClusterHealthResponse{
		Status:   "ok",
		UptimeMS: float64(time.Since(s.start)) / float64(time.Millisecond),
	}
	if s.cluster != nil {
		resp.Self = s.cluster.ring.Self()
		resp.Peers = s.cluster.ring.Peers()
	}
	writeJSON(w, http.StatusOK, resp)
}

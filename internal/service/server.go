// Package service implements rtserve's long-running HTTP/JSON solving
// service over the unified solver registry: a bounded worker pool of
// long-lived solvers, a compiled-instance LRU in front of a
// canonical-hash-keyed LRU result cache with single-flight
// de-duplication, and wire-level validation that turns every malformed
// input into a 400 instead of a panic.
//
// Endpoints:
//
//	POST   /v1/solve            one solve, or a batch under {"batch": [...]}
//	GET    /v1/solvers          registry listing with capabilities
//	GET    /v1/stats            cache/pool/request/job counters
//	GET    /healthz             liveness
//	POST   /v1/jobs             submit an async solve; 202 + job id
//	GET    /v1/jobs             list known jobs
//	GET    /v1/jobs/{id}        poll one job's status and result
//	DELETE /v1/jobs/{id}        cancel a queued/running job, or forget a done one
//	GET    /v1/jobs/{id}/events live incumbent/bound/gap trajectory over SSE
//	GET    /v1/frontier         resource-time tradeoff curve of a stored instance
//	POST   /v1/frontier         resource-time tradeoff curve of an inline instance
//
// Peer endpoints (the versioned internal cluster API; always mounted,
// meaningful under Config.Peers):
//
//	POST   /internal/v1/solve        owner-side solve of a forwarded request (never re-forwards)
//	GET    /internal/v1/probe/{hash} what this node holds for a canonical hash
//	GET    /internal/v1/health       liveness plus ring membership
//
// Every endpoint, public and internal, answers non-2xx with the unified
// Error envelope ({"error": {code, message, detail}}).
//
// Solves are pure functions of (instance, solver, options), so the result
// cache key is solver.ResultCacheKey: the compiled instance's canonical
// hash plus the solver name and Options.CacheKey; identical requests —
// across clients, across time, or duplicated inside one batch — compute
// at most once.  One layer below, the compiled-instance cache
// (compiledCache) deduplicates the preprocessing itself: a hot DAG with
// varying budgets or targets decodes, validates, compiles and hashes
// exactly once across the pool, and repeats skip straight to the solve
// (or to the result-cache hit).
package service

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/solver"
	"repro/internal/store"
)

// Config tunes a Server.
type Config struct {
	// Workers sizes the solve pool; <= 0 means GOMAXPROCS.
	Workers int
	// CacheEntries caps the result LRU; 0 means the 1024 default, < 0
	// disables caching (single-flight de-duplication stays on).
	CacheEntries int
	// CompiledEntries caps the compiled-instance LRU in front of the
	// result cache; 0 means the 512 default, < 0 disables it (every
	// request decodes and compiles).  The cap counts ENTRIES, not bytes:
	// each entry retains the decoded instance, its CSR/breakpoint arrays
	// and any lazily derived expansion or recognition state - a small
	// multiple of the instance's wire size.  Deployments accepting large
	// bodies (MaxBodyBytes) from untrusted clients should budget roughly
	// CompiledEntries x a few x MaxBodyBytes of residency, and size the
	// cap (or disable the cache) accordingly.
	CompiledEntries int
	// MaxBodyBytes caps request bodies; <= 0 means the 8 MiB default.
	MaxBodyBytes int64
	// StoreDir roots the durable solve store.  Empty keeps the service
	// purely in-memory; set, the server loads every previously stored
	// result at boot (so restarts resume warm), writes every completed
	// solve through to disk, and warm-starts solves of near-identical
	// instances from stored neighbors.
	StoreDir string
	// RetainJobs caps how many FINISHED jobs the in-memory job registry
	// keeps for polling; 0 means the 256 default, < 0 keeps none beyond
	// the final status read race.  Queued and running jobs are never
	// evicted.
	RetainJobs int
	// Self and Peers enable cluster mode (see internal/cluster): Self is
	// this node's advertised base URL (scheme://host[:port]) and Peers is
	// the full static membership; Self is added to Peers if absent.  Both
	// empty keeps the node standalone.  Every member must be configured
	// with the same membership, or nodes will disagree about ownership
	// and dedup degrades to per-disagreement duplicate solves (results
	// stay correct — solves are pure).
	Self  string
	Peers []string
}

// Defaults for Config zero values.
const (
	defaultCacheEntries    = 1024
	defaultCompiledEntries = 512
	defaultMaxBody         = 8 << 20
	defaultRetainJobs      = 256
)

// Server is the solving service.  Create with New, expose via Handler,
// release the worker pool with Close.
type Server struct {
	pool     *pool
	cache    *resultCache
	compiled *compiledCache
	store    *store.Store // nil without Config.StoreDir
	flowPool *flow.SolverPool
	jobs     *jobRegistry
	cluster  *clusterState // nil without Config.Peers/Self
	hot      hotCache
	mux      *http.ServeMux
	start    time.Time
	maxBody  int64

	requests  atomic.Int64
	warmHits  atomic.Int64
	closeOnce sync.Once
}

// New builds a Server from functional options and starts its worker
// pool.  With WithStore it also opens the durable store; an unusable
// store directory is an error — a persistence-configured service must
// never silently start empty (corrupt individual entries are skipped and
// counted instead, see StoreLoad).  With WithPeers the server joins a
// static cluster (see internal/cluster).
func New(opts ...Option) (*Server, error) {
	var cfg Config
	for _, opt := range opts {
		opt(&cfg)
	}
	return NewFromConfig(cfg)
}

// NewFromConfig builds a Server from a Config struct literal.
//
// Deprecated: construct with New and functional options (WithWorkers,
// WithStore, WithPeers, ...), which stay source-compatible as knobs are
// added.  NewFromConfig remains for one release for embedders still on
// the PR 3-8 Config surface.
func NewFromConfig(cfg Config) (*Server, error) {
	entries := cfg.CacheEntries
	switch {
	case entries == 0:
		entries = defaultCacheEntries
	case entries < 0:
		entries = 0
	}
	compiledEntries := cfg.CompiledEntries
	switch {
	case compiledEntries == 0:
		compiledEntries = defaultCompiledEntries
	case compiledEntries < 0:
		compiledEntries = 0
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = defaultMaxBody
	}
	var st *store.Store
	if cfg.StoreDir != "" {
		var err error
		if st, err = store.Open(cfg.StoreDir); err != nil {
			return nil, err
		}
	}
	retain := cfg.RetainJobs
	switch {
	case retain == 0:
		retain = defaultRetainJobs
	case retain < 0:
		retain = 0
	}
	var cl *clusterState
	if cfg.Self != "" || len(cfg.Peers) > 0 {
		if cfg.Self == "" {
			return nil, errors.New("service: cluster mode needs a self address alongside the peer list")
		}
		ring, err := cluster.NewRing(cfg.Self, cfg.Peers)
		if err != nil {
			return nil, err
		}
		cl = newClusterState(ring)
	}
	s := &Server{
		pool:     newPool(cfg.Workers),
		cache:    newResultCache(entries),
		compiled: newCompiledCache(compiledEntries),
		store:    st,
		flowPool: flow.NewSolverPool(0),
		cluster:  cl,
		mux:      http.NewServeMux(),
		start:    time.Now(),
		maxBody:  maxBody,
	}
	s.hot.cap = defaultHotEntries
	s.hot.entries = make(map[[sha256.Size]byte]hotEntry)
	s.jobs = newJobRegistry(s, len(s.pool.workers), retain)
	for _, ep := range s.routes() {
		s.mux.HandleFunc(ep.Pattern, ep.handler)
	}
	return s, nil
}

// Endpoint is one registered route: the ServeMux pattern it is mounted at
// and the methods its handler accepts.  The list is the single source of
// truth shared by the mux registration, the documentation-coverage test,
// and CI's docs-consistency gate.
type Endpoint struct {
	// Pattern is the ServeMux pattern (path only; handlers dispatch on
	// method themselves so unsupported methods get JSON errors).
	Pattern string
	// Methods lists the HTTP methods the handler accepts.
	Methods []string

	handler http.HandlerFunc
}

// routes lists every endpoint the service serves.  Adding a route here is
// the only way to register one; the docs gate walks the same list.
func (s *Server) routes() []Endpoint {
	return []Endpoint{
		{Pattern: "/healthz", Methods: []string{"GET"}, handler: s.handleHealthz},
		{Pattern: "/v1/solve", Methods: []string{"POST"}, handler: s.handleSolve},
		{Pattern: "/v1/solvers", Methods: []string{"GET"}, handler: s.handleSolvers},
		{Pattern: "/v1/stats", Methods: []string{"GET"}, handler: s.handleStats},
		{Pattern: "/v1/jobs", Methods: []string{"GET", "POST"}, handler: s.handleJobs},
		{Pattern: "/v1/jobs/{id}", Methods: []string{"GET", "DELETE"}, handler: s.handleJob},
		{Pattern: "/v1/jobs/{id}/events", Methods: []string{"GET"}, handler: s.handleJobEvents},
		{Pattern: "/v1/frontier", Methods: []string{"GET", "POST"}, handler: s.handleFrontier},
		{Pattern: "/internal/v1/solve", Methods: []string{"POST"}, handler: s.handleInternalSolve},
		{Pattern: "/internal/v1/probe/{hash}", Methods: []string{"GET"}, handler: s.handleInternalProbe},
		{Pattern: "/internal/v1/health", Methods: []string{"GET"}, handler: s.handleInternalHealth},
	}
}

// Endpoints describes the service's routes without building a server:
// the documentation tooling's entry point.
func Endpoints() []Endpoint {
	var s Server
	eps := s.routes()
	for i := range eps {
		eps[i].handler = nil
	}
	return eps
}

// StoreLoad reports what the durable store found at boot, so embedders
// (cmd/rtserve) can log skipped entries instead of silently losing them.
// ok is false when the server runs without a store.
func (s *Server) StoreLoad() (lr store.LoadReport, ok bool) {
	if s.store == nil {
		return store.LoadReport{}, false
	}
	return s.store.Load(), true
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close cancels outstanding jobs, waits for them to settle, then drains
// the worker pool; in-flight synchronous solves finish first.  Safe to
// call more than once.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.jobs.close()
		s.pool.close()
		if s.cluster != nil {
			s.cluster.client.CloseIdle()
		}
	})
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding failures past the header are unrecoverable mid-stream; the
	// types here marshal unconditionally.
	_ = json.NewEncoder(w).Encode(body)
}

// errCodeFor maps an HTTP status to the envelope's stable machine code.
func errCodeFor(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "invalid_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusServiceUnavailable:
		return "unavailable"
	default:
		return "internal"
	}
}

// writeError answers with the unified Error envelope; the machine code
// is derived from the status so handler call sites state each failure
// once.  Use writeErrorDetail to attach an identifier.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeErrorDetail(w, status, "", format, args...)
}

// writeErrorDetail is writeError with the envelope's detail field set
// (an offending identifier such as a job id or instance hash).
func writeErrorDetail(w http.ResponseWriter, status int, detail, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: Error{
		Code:    errCodeFor(status),
		Message: fmt.Sprintf(format, args...),
		Detail:  detail,
	}})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:   "ok",
		UptimeMS: float64(time.Since(s.start)) / float64(time.Millisecond),
	})
}

func (s *Server) handleSolvers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, SolversResponse{Solvers: solver.Infos()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		UptimeMS: float64(time.Since(s.start)) / float64(time.Millisecond),
		Requests: s.requests.Load(),
		WarmHits: s.warmHits.Load(),
		Cache:    s.cache.stats(),
		Compiled: s.compiled.stats(),
		Pool:     s.pool.stats(),
		Jobs:     s.jobs.stats(),
		Store:    s.storeStats(),
		Cluster:  s.clusterStats(),
	})
}

// storeStats snapshots the durable store, nil without one.
func (s *Server) storeStats() *store.Stats {
	if s.store == nil {
		return nil
	}
	st := s.store.Stats()
	return &st
}

// GlobalStats snapshots the service counters: the programmatic twin of
// GET /v1/stats, used by embedders (rtcorpus records it in its quality
// report).
type GlobalStats struct {
	Requests int64 `json:"requests"`
	// WarmHits counts solves seeded from a stored neighbor's solution.
	WarmHits int64              `json:"warm_hits"`
	Cache    CacheStats         `json:"cache"`
	Compiled CompiledCacheStats `json:"compiled"`
	Pool     PoolStats          `json:"pool"`
	// Jobs counts async-job activity (see JobsStats).
	Jobs JobsStats `json:"jobs"`
	// Store describes the durable store; nil without Config.StoreDir.
	Store *store.Stats `json:"store,omitempty"`
}

// Stats returns the current counters.
func (s *Server) Stats() GlobalStats {
	return GlobalStats{
		Requests: s.requests.Load(),
		WarmHits: s.warmHits.Load(),
		Cache:    s.cache.stats(),
		Compiled: s.compiled.stats(),
		Pool:     s.pool.stats(),
		Jobs:     s.jobs.stats(),
		Store:    s.storeStats(),
	}
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	s.requests.Add(1)
	var env solveEnvelope
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err := dec.Decode(&env); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return
	}
	if len(env.Batch) > 0 {
		if len(env.Instance) > 0 {
			writeError(w, http.StatusBadRequest, "request has both a batch and an inline instance; send one or the other")
			return
		}
		// Fan the items out under a semaphore: solves are bounded by the
		// pool anyway, but decoding/hashing ahead of it is not free, and a
		// single maximum-size body of tiny items must not turn into tens
		// of thousands of parked goroutines — that would be exactly the
		// hidden unbounded queue the pool's admission control exists to
		// prevent.
		resp := BatchResponse{Results: make([]SolveResponse, len(env.Batch))}
		sem := make(chan struct{}, 2*len(s.pool.workers))
		var wg sync.WaitGroup
		for i := range env.Batch {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				resp.Results[i], _ = s.solveOne(r.Context(), env.Batch[i], false)
			}(i)
		}
		wg.Wait()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	resp, status := s.solveOne(r.Context(), env.SolveRequest, false)
	writeSolve(w, resp, status)
}

// writeSolve answers a single (non-batch) solve: the SolveResponse on
// success — including partial deadline-interrupted results, which are
// answers — and the unified Error envelope otherwise.  When status is
// not 2xx the response carries no report by construction (solvePrepared
// maps every partial result to 200), so the envelope loses nothing.
func writeSolve(w http.ResponseWriter, resp SolveResponse, status int) {
	if status < http.StatusBadRequest {
		writeJSON(w, status, resp)
		return
	}
	writeErrorDetail(w, status, resp.Hash, "%s", resp.Error)
}

// prepared is one decoded, compiled and validated solve request, ready to
// run — immediately (the synchronous path) or later (queued on a job).
// Preparing at admission time means a malformed request fails with a 400
// before it is accepted, never as a dead job.
type prepared struct {
	name        string
	c           *core.Compiled
	compiledHit bool
	raw         json.RawMessage
	opts        solver.Options
}

// prepare decodes, compiles and validates req.  Any relative deadline in
// the options is anchored at now, so a job's deadline budget starts at
// submission, queueing included.
func (s *Server) prepare(req SolveRequest, now time.Time) (*prepared, error) {
	name := req.Solver
	if name == "" {
		name = "auto"
	}
	if len(req.Instance) == 0 {
		return nil, errors.New("missing instance")
	}
	// The compiled-instance cache is consulted on the RAW bytes first: a
	// hot instance skips JSON decoding, validation, compilation and
	// canonical hashing entirely.  Only on a miss is the wire document
	// decoded and compiled, and even then an isomorphic encoding of a
	// known DAG adopts the existing compiled form.
	c, rawKey, compiledHit := s.compiled.get(req.Instance)
	if !compiledHit {
		var inst core.Instance
		if err := json.Unmarshal(req.Instance, &inst); err != nil {
			return nil, fmt.Errorf("invalid instance: %v", err)
		}
		c = s.compiled.add(rawKey, core.Compile(&inst))
	}
	opts, err := req.Options.Resolve(now)
	if err != nil {
		return nil, fmt.Errorf("invalid options: %v", err)
	}
	sv, err := solver.Get(name)
	if err != nil {
		return nil, err
	}
	if err := solver.ValidateOptions(sv, opts); err != nil {
		return nil, err
	}
	return &prepared{name: name, c: c, compiledHit: compiledHit, raw: req.Instance, opts: opts}, nil
}

// solveOne validates, hashes, and solves a single request through the
// cache and pool, returning the response and the HTTP status a
// single-solve endpoint should use for it (batch items embed the error
// per item instead).  In cluster mode a request whose hash belongs to
// another node is forwarded to its owner first; viaPeer marks requests
// that already arrived over /internal/v1/solve, which must solve here —
// forwarding them again could bounce between nodes that disagree about
// membership (forward-once invariant).
func (s *Server) solveOne(ctx context.Context, req SolveRequest, viaPeer bool) (SolveResponse, int) {
	start := time.Now()
	p, err := s.prepare(req, start)
	if err != nil {
		return SolveResponse{
			Error:  err.Error(),
			WallMS: float64(time.Since(start)) / float64(time.Millisecond),
		}, http.StatusBadRequest
	}
	if s.cluster != nil && !viaPeer {
		if resp, status, ok := s.cluster.forward(ctx, req, p, start); ok {
			return resp, status
		}
	}
	resp, status := s.solvePrepared(ctx, p, start)
	if s.cluster != nil {
		// Owner is reported even when it is not this node: a response with
		// a foreign owner and Forwarded false is a visible fallback solve.
		resp.Owner = s.cluster.ring.Owner(p.c.Hash())
	}
	return resp, status
}

// solvePrepared runs a prepared request through the result cache, the
// durable store, warm-start seeding and the pool: the shared execution
// path behind /v1/solve, jobs, and every frontier point.
func (s *Server) solvePrepared(ctx context.Context, p *prepared, start time.Time) (SolveResponse, int) {
	name, c, opts := p.name, p.c, p.opts

	key := solver.ResultCacheKey(name, c, opts)
	var storeHit, warm bool
	// solve is the store-aware compute path behind both cache strategies.
	// It runs only on an LRU miss: first the durable store is probed — a
	// hit answers without queueing any pool work — then a stored neighbor
	// (same structural sketch, solver and options, different instance) is
	// sought to warm-start the real solve, and a completed result is
	// written through to the store.  Warm starts are hints by contract
	// (solver.Options.Incumbent): certificates are recomputed, so a wrong
	// or stale donor can cost time but never change a complete result.
	solve := func(solveCtx context.Context) (solver.WireReport, error) {
		if s.store != nil {
			if rep, ok := s.store.GetReport(key); ok {
				storeHit = true
				return rep, nil
			}
		}
		// An incumbent supplied by the caller (the frontier's
		// neighbor-chaining) takes precedence; otherwise ask the store for
		// a sketch-matched donor.
		if opts.Incumbent == nil && s.store != nil {
			opts.Incumbent = s.warmSeed(c, name, opts)
		}
		warm = opts.Incumbent != nil
		if warm {
			s.warmHits.Add(1)
		}
		opts.FlowPool = s.flowPool
		if s.cluster != nil && s.cluster.ring.IsOwner(c.Hash()) {
			// A fresh pool solve for a hash this node owns: the unit the
			// cluster-wide dedup invariant counts.  Cache, store and warm
			// paths above never reach here, and fallback solves on
			// non-owners are counted as fallbacks instead.
			s.cluster.ownerSolves.Add(1)
		}
		rep, err := s.pool.do(solveCtx, func(*worker) (solver.WireReport, error) {
			r, err := solver.SolveCompiledOptions(solveCtx, name, c, opts)
			if r == nil {
				return solver.WireReport{}, err
			}
			return r.Wire(), err
		})
		if err == nil && rep.Complete && s.store != nil {
			// Write-through, best effort: a full disk degrades durability,
			// not availability.  The raw request bytes are a valid stored
			// encoding of the instance even when the compiled form came from
			// an isomorphic earlier request — all encodings share the hash.
			meta := store.Meta{Hash: c.Hash(), Sketch: c.Sketch(), Solver: name, OptKey: opts.CacheKey()}
			_ = s.store.PutReport(key, meta, rep)
			_ = s.store.PutInstance(c.Hash(), c.Sketch(), p.raw)
		}
		return rep, err
	}
	var (
		rep    solver.WireReport
		cached bool
		err    error
	)
	if opts.Deadline.IsZero() {
		// Deadline-free requests share work: identical concurrent requests
		// coalesce onto one flight and the result enters the LRU.  The
		// flight computes under a context detached from this requester, so
		// one client disconnecting cannot poison the identical requests
		// (and the future cache entries) riding on its flight; each waiter
		// still honors its own context while waiting.
		rep, cached, err = s.cache.do(ctx, key, func() (solver.WireReport, error) {
			return solve(context.WithoutCancel(ctx))
		})
	} else {
		// Deadline-bounded requests may legitimately end truncated, and a
		// truncation is shaped by THIS request's deadline — it must be
		// neither shared with nor inherited from anyone else.  They read
		// the cache (a complete result satisfies any deadline), solve
		// under their own context otherwise, and contribute complete
		// results back.
		rep, cached = s.cache.get(key)
		if !cached {
			rep, err = solve(ctx)
			if err == nil {
				s.cache.put(key, rep)
			}
		}
	}

	resp := SolveResponse{
		Hash:          c.Hash(),
		Cached:        cached,
		CompiledHit:   p.compiledHit,
		StoreHit:      storeHit,
		Warm:          warm,
		InstanceNodes: c.Inst.G.NumNodes(),
		InstanceArcs:  c.Inst.G.NumEdges(),
		WallMS:        float64(time.Since(start)) / float64(time.Millisecond),
	}
	if rep.Solver != "" {
		resp.Report = &rep
	}
	if err != nil {
		resp.Error = err.Error()
		switch {
		case resp.Report != nil:
			// A partial result (deadline-interrupted solve, or the
			// immediate lower-bound-only report of a dead-on-arrival
			// deadline) is an answer, not a server failure.
			return resp, http.StatusOK
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			return resp, http.StatusServiceUnavailable
		default:
			return resp, http.StatusBadRequest
		}
	}
	return resp, http.StatusOK
}

// warmSeed looks for a stored warm-start donor for compiled instance c
// under (solver name, options): a completed report with a witness flow on
// a DIFFERENT instance with the identical structural sketch.  Equal
// sketches mean index-aligned identical topology, so the donor's flow is
// conserved arc for arc here; the seed is only worth taking when few arcs
// changed their duration functions, so instances differing on more than
// half their arcs solve cold.  Returns nil when no donor qualifies.
func (s *Server) warmSeed(c *core.Compiled, name string, opts solver.Options) []int64 {
	meta, donor, ok := s.store.Neighbor(c.Sketch(), name, opts.CacheKey(), c.Hash())
	if !ok {
		return nil
	}
	raw, ok := s.store.GetInstance(meta.Hash)
	if !ok {
		return nil
	}
	var ninst core.Instance
	if err := json.Unmarshal(raw, &ninst); err != nil {
		return nil
	}
	nc := core.Compile(&ninst)
	d := core.Diff(c, nc)
	if !d.SameTopology || 2*len(d.TouchedArcs) > c.Inst.G.NumEdges() {
		return nil
	}
	return donor.Flow
}

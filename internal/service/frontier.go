package service

// The frontier endpoint sweeps a budget range over one instance and
// returns the discrete resource-time tradeoff curve — the object the
// paper is about.  The instance compiles ONCE for the whole sweep, and
// budgets run in ascending order so each solve warm-starts from its
// smaller-budget neighbor's witness flow: a flow feasible at budget b is
// feasible at every b' > b, so the previous point's solution is a valid
// incumbent that lets the exact search prune from node one.  Every point
// still runs through the shared cache/store path, so repeated sweeps hit
// the result cache and completed points persist across restarts.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// maxFrontierPoints caps one sweep's budget list.
const maxFrontierPoints = 256

// defaultFrontierSteps is the sweep resolution when the request gives a
// range without a step count.
const defaultFrontierSteps = 8

// errUnknownHash distinguishes "instance not in the store" (404) from
// malformed requests (400).
var errUnknownHash = errors.New("no stored instance with that hash")

// FrontierRequest asks for the resource-time tradeoff curve of one
// instance: POST /v1/frontier with an inline instance, or GET/POST with
// the canonical hash of a previously stored one.  Budgets come either as
// an explicit list or as a [BudgetMin, BudgetMax] range sampled at Steps
// points; they are swept in ascending order.
type FrontierRequest struct {
	// Solver names the registry solver for every point; empty means "auto".
	Solver string `json:"solver,omitempty"`
	// Instance is the inline core.Instance wire document; mutually
	// exclusive with Hash.
	Instance json.RawMessage `json:"instance,omitempty"`
	// Hash names a stored instance by canonical hash (requires the durable
	// store); the GET form's only way to identify the instance.
	Hash string `json:"hash,omitempty"`
	// Options carries per-point solve knobs.  Budget and target must be
	// absent: the sweep supplies the budget, and the frontier is by
	// definition a budget sweep.
	Options WireOptionsNoMode `json:"options,omitempty"`
	// Budgets lists the sweep's budgets explicitly (deduplicated and
	// sorted ascending); when empty the range fields below apply.
	Budgets []int64 `json:"budgets,omitempty"`
	// BudgetMin and BudgetMax bound the sampled range (inclusive);
	// BudgetMax is required when Budgets is empty.  Steps is the sample
	// count, default 8.
	BudgetMin int64 `json:"budget_min,omitempty"`
	BudgetMax int64 `json:"budget_max,omitempty"`
	Steps     int   `json:"steps,omitempty"`
}

// WireOptionsNoMode is solver.WireOptions minus the mode selectors: the
// per-point options of a frontier sweep, which supplies budgets itself.
type WireOptionsNoMode struct {
	// Alpha is the bi-criteria rounding parameter in (0,1); absent means
	// the 0.5 default.
	Alpha *float64 `json:"alpha,omitempty"`
	// MaxNodes caps the exact search per point; 0 uses the default.
	MaxNodes int `json:"max_nodes,omitempty"`
	// Parallelism sizes the worker pool of parallel solvers.
	Parallelism int `json:"parallelism,omitempty"`
	// DeadlineMS bounds the WHOLE sweep's wall time, anchored at
	// admission; 0 means no deadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// FrontierPoint is one point of the tradeoff curve: the best makespan
// found at one budget, with its certificate.
type FrontierPoint struct {
	// Budget is the resource budget of this point.
	Budget int64 `json:"budget"`
	// Makespan and Resources describe the solution at this budget
	// (Resources <= Budget).
	Makespan  int64 `json:"makespan"`
	Resources int64 `json:"resources"`
	// LowerBound bounds this budget's optimal makespan from below; with
	// Exact and Complete set it equals Makespan.
	LowerBound float64 `json:"lower_bound,omitempty"`
	// Guarantee is the solver's proven bound at this point.
	Guarantee string `json:"guarantee,omitempty"`
	// Exact marks a certified-optimal point; Complete a finished solve.
	Exact    bool `json:"exact"`
	Complete bool `json:"complete"`
	// Cached, StoreHit and Warm mirror the SolveResponse fields: result
	// cache hit, durable store hit, warm-started solve.
	Cached   bool `json:"cached,omitempty"`
	StoreHit bool `json:"store_hit,omitempty"`
	Warm     bool `json:"warm,omitempty"`
	// WallMS is the service wall time spent on this point.
	WallMS float64 `json:"wall_ms"`
	// Error is this point's failure, if any; other points still stand.
	Error string `json:"error,omitempty"`
}

// FrontierResponse answers GET/POST /v1/frontier: the tradeoff curve in
// ascending budget order.
type FrontierResponse struct {
	// Hash is the instance's canonical hash; Solver the per-point solver.
	Hash   string `json:"hash,omitempty"`
	Solver string `json:"solver,omitempty"`
	// Points is the curve, one entry per budget, ascending.
	Points []FrontierPoint `json:"points"`
	// WarmHits counts points whose solve was warm-started (by the
	// neighboring point's witness or a stored donor).
	WarmHits int `json:"warm_hits"`
	// Monotone reports that makespan never increased as the budget grew —
	// guaranteed for exact solvers, diagnostic for approximations.
	Monotone bool `json:"monotone"`
	// WallMS is the wall time of the whole sweep.
	WallMS float64 `json:"wall_ms"`
	// Error is a sweep-level failure (cancellation mid-sweep); the points
	// gathered before it are retained.
	Error string `json:"error,omitempty"`
}

// frontierPlan is a validated, compiled frontier sweep ready to run: the
// shared prepared request (budget overwritten per point) and the
// ascending budget list.
type frontierPlan struct {
	p       *prepared
	budgets []int64
}

// planFrontier validates req and compiles its instance once.  Mirrors
// prepare: every malformed sweep fails before any solve (or job
// acceptance) happens.
func (s *Server) planFrontier(req FrontierRequest, now time.Time) (*frontierPlan, error) {
	raw := req.Instance
	if len(raw) == 0 {
		if req.Hash == "" {
			return nil, errors.New("missing instance: send one inline or reference a stored hash")
		}
		if s.store == nil {
			return nil, errors.New("instance by hash requires the durable store (start with -store)")
		}
		stored, ok := s.store.GetInstance(req.Hash)
		if !ok {
			return nil, fmt.Errorf("%w: %q", errUnknownHash, req.Hash)
		}
		raw = stored
	} else if req.Hash != "" {
		return nil, errors.New("request has both an inline instance and a hash; send one or the other")
	}
	budgets, err := sweepBudgets(req)
	if err != nil {
		return nil, err
	}
	sr := SolveRequest{Solver: req.Solver, Instance: raw}
	sr.Options.Alpha = req.Options.Alpha
	sr.Options.MaxNodes = req.Options.MaxNodes
	sr.Options.Parallelism = req.Options.Parallelism
	sr.Options.DeadlineMS = req.Options.DeadlineMS
	// Validate under the first budget; solveFrontier overwrites the budget
	// per point, which cannot invalidate an otherwise-valid request.
	sr.Options.Budget = &budgets[0]
	p, err := s.prepare(sr, now)
	if err != nil {
		return nil, err
	}
	return &frontierPlan{p: p, budgets: budgets}, nil
}

// sweepBudgets resolves the request's budget specification into a sorted,
// deduplicated ascending list.
func sweepBudgets(req FrontierRequest) ([]int64, error) {
	if len(req.Budgets) > 0 {
		if len(req.Budgets) > maxFrontierPoints {
			return nil, fmt.Errorf("%d budgets exceed the %d-point sweep cap", len(req.Budgets), maxFrontierPoints)
		}
		budgets := append([]int64(nil), req.Budgets...)
		for _, b := range budgets {
			if b < 0 {
				return nil, fmt.Errorf("negative budget %d", b)
			}
		}
		sort.Slice(budgets, func(i, j int) bool { return budgets[i] < budgets[j] })
		out := budgets[:1]
		for _, b := range budgets[1:] {
			if b != out[len(out)-1] {
				out = append(out, b)
			}
		}
		return out, nil
	}
	if req.BudgetMin < 0 {
		return nil, fmt.Errorf("negative budget_min %d", req.BudgetMin)
	}
	if req.BudgetMax <= req.BudgetMin {
		return nil, fmt.Errorf("budget_max %d not above budget_min %d (or missing); set an explicit budgets list or a non-empty range", req.BudgetMax, req.BudgetMin)
	}
	steps := req.Steps
	if steps == 0 {
		steps = defaultFrontierSteps
	}
	if steps < 2 {
		return nil, fmt.Errorf("steps %d below the 2 minimum", steps)
	}
	if steps > maxFrontierPoints {
		return nil, fmt.Errorf("steps %d exceed the %d-point sweep cap", steps, maxFrontierPoints)
	}
	span := req.BudgetMax - req.BudgetMin
	budgets := make([]int64, 0, steps)
	for i := 0; i < steps; i++ {
		b := req.BudgetMin + span*int64(i)/int64(steps-1)
		if n := len(budgets); n > 0 && budgets[n-1] == b {
			continue // integer range narrower than the step count
		}
		budgets = append(budgets, b)
	}
	return budgets, nil
}

// solveFrontier runs the sweep: ascending budgets, each point
// warm-started from the previous complete point's witness flow, every
// point through the shared solvePrepared path (result cache, durable
// store, pool).  onPoint, when non-nil, observes each completed point in
// order with the count of points done so far (the frontier job's event
// feed).  The int result is the HTTP status for the synchronous endpoint.
func (s *Server) solveFrontier(ctx context.Context, plan *frontierPlan, onPoint func(pt FrontierPoint, completed int)) (FrontierResponse, int) {
	start := time.Now()
	resp := FrontierResponse{
		Hash:     plan.p.c.Hash(),
		Solver:   plan.p.name,
		Points:   make([]FrontierPoint, 0, len(plan.budgets)),
		Monotone: true,
	}
	var prevFlow []int64
	var prevMakespan int64
	havePrev := false
	for i, b := range plan.budgets {
		if err := ctx.Err(); err != nil {
			resp.Error = err.Error()
			break
		}
		pp := *plan.p
		pp.opts.Budget = b
		pp.opts.Target = -1
		// The smaller-budget neighbor's flow is feasible here (budgets only
		// grow), so it seeds the solve; solvePrepared falls back to a stored
		// donor when no neighbor witness exists yet.
		pp.opts.Incumbent = prevFlow
		pr, _ := s.solvePrepared(ctx, &pp, time.Now())
		pt := FrontierPoint{
			Budget:   b,
			Cached:   pr.Cached,
			StoreHit: pr.StoreHit,
			Warm:     pr.Warm,
			WallMS:   pr.WallMS,
			Error:    pr.Error,
		}
		if pr.Report != nil {
			pt.Makespan = pr.Report.Makespan
			pt.Resources = pr.Report.Resources
			pt.LowerBound = pr.Report.LowerBound
			pt.Guarantee = pr.Report.Guarantee
			pt.Exact = pr.Report.Exact
			pt.Complete = pr.Report.Complete
			if pr.Report.Complete && len(pr.Report.Flow) > 0 {
				prevFlow = pr.Report.Flow
			}
			if havePrev && pt.Makespan > prevMakespan {
				resp.Monotone = false
			}
			prevMakespan, havePrev = pt.Makespan, true
		}
		if pt.Warm {
			resp.WarmHits++
		}
		resp.Points = append(resp.Points, pt)
		if onPoint != nil {
			onPoint(pt, i+1)
		}
	}
	resp.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
	return resp, http.StatusOK
}

// handleFrontier serves GET and POST /v1/frontier.  POST carries a
// FrontierRequest body; GET identifies a stored instance by ?hash= and
// takes the sweep parameters from the query string.
func (s *Server) handleFrontier(w http.ResponseWriter, r *http.Request) {
	var req FrontierRequest
	switch r.Method {
	case http.MethodPost:
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
			return
		}
	case http.MethodGet:
		var err error
		if req, err = frontierQuery(r.URL.Query()); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	default:
		writeError(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	s.requests.Add(1)
	plan, err := s.planFrontier(req, time.Now())
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, errUnknownHash) {
			status = http.StatusNotFound
		}
		writeError(w, status, "%v", err)
		return
	}
	resp, status := s.solveFrontier(r.Context(), plan, nil)
	writeJSON(w, status, resp)
}

// frontierQuery decodes the GET form's query parameters: hash (required),
// solver, budgets (comma-separated), budget_min, budget_max, steps.
func frontierQuery(q map[string][]string) (FrontierRequest, error) {
	get := func(key string) string {
		if vs := q[key]; len(vs) > 0 {
			return vs[0]
		}
		return ""
	}
	req := FrontierRequest{Hash: get("hash"), Solver: get("solver")}
	if req.Hash == "" {
		return req, errors.New("missing hash parameter (GET serves stored instances; POST an inline one)")
	}
	if list := get("budgets"); list != "" {
		for _, part := range strings.Split(list, ",") {
			b, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil {
				return req, fmt.Errorf("invalid budgets entry %q: %v", part, err)
			}
			req.Budgets = append(req.Budgets, b)
		}
	}
	for key, dst := range map[string]*int64{"budget_min": &req.BudgetMin, "budget_max": &req.BudgetMax} {
		if v := get(key); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return req, fmt.Errorf("invalid %s %q: %v", key, v, err)
			}
			*dst = n
		}
	}
	if v := get("steps"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return req, fmt.Errorf("invalid steps %q: %v", v, err)
		}
		req.Steps = n
	}
	return req, nil
}

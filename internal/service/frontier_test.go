package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// postFrontier posts body to /v1/frontier and decodes the response.
func postFrontier(t *testing.T, ts *httptest.Server, body string) (FrontierResponse, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/frontier", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fr FrontierResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
			t.Fatal(err)
		}
	}
	return fr, resp.StatusCode
}

// frontierBody renders a sweep request over a deterministic instance.
func frontierBody(t *testing.T, seed int64, spec string) string {
	t.Helper()
	inst, err := json.Marshal(scenario.NewGen(seed).StepInstance(3, 3, 2, 4, 30, 4))
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf(`{"solver":"exact","instance":%s,%s}`, inst, spec)
}

// checkCurve asserts the structural frontier invariants: ascending
// budgets and (for an exact solver) monotonically non-increasing
// makespans with per-point certificates.
func checkCurve(t *testing.T, fr FrontierResponse) {
	t.Helper()
	if !fr.Monotone {
		t.Fatalf("exact sweep reported non-monotone: %+v", fr)
	}
	for i, pt := range fr.Points {
		if pt.Error != "" {
			t.Fatalf("point %d failed: %s", i, pt.Error)
		}
		if !pt.Exact || !pt.Complete {
			t.Fatalf("point %d not certified optimal: %+v", i, pt)
		}
		if pt.Resources > pt.Budget {
			t.Fatalf("point %d spends %d over budget %d", i, pt.Resources, pt.Budget)
		}
		if float64(pt.Makespan) != pt.LowerBound {
			t.Fatalf("optimal point %d has makespan %d != bound %v", i, pt.Makespan, pt.LowerBound)
		}
		if i == 0 {
			continue
		}
		prev := fr.Points[i-1]
		if pt.Budget <= prev.Budget {
			t.Fatalf("budgets not ascending: %d then %d", prev.Budget, pt.Budget)
		}
		if pt.Makespan > prev.Makespan {
			t.Fatalf("makespan rose with budget: %+v -> %+v", prev, pt)
		}
	}
}

// TestFrontierSweep pins the core tradeoff-curve contract: 8 budgets,
// monotone makespans, and neighbor warm-starting on every point after the
// first.
func TestFrontierSweep(t *testing.T) {
	_, ts := newTestServer(t, WithWorkers(2))
	fr, status := postFrontier(t, ts, frontierBody(t, 51, `"budget_min":0,"budget_max":14,"steps":8`))
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if len(fr.Points) != 8 {
		t.Fatalf("got %d points, want 8", len(fr.Points))
	}
	checkCurve(t, fr)
	// Every point after the first is warm-started from its neighbor's
	// witness (nothing is cached on a fresh server).
	if fr.WarmHits < len(fr.Points)-1 {
		t.Fatalf("warm hits %d, want at least %d", fr.WarmHits, len(fr.Points)-1)
	}
	if fr.Points[0].Warm {
		t.Fatal("first point cannot be warm on a fresh server")
	}

	// A repeated sweep is answered point-for-point from the result cache.
	again, _ := postFrontier(t, ts, frontierBody(t, 51, `"budget_min":0,"budget_max":14,"steps":8`))
	for i, pt := range again.Points {
		if !pt.Cached {
			t.Fatalf("repeat point %d not cached: %+v", i, pt)
		}
		if pt.Makespan != fr.Points[i].Makespan {
			t.Fatalf("repeat changed point %d: %d vs %d", i, pt.Makespan, fr.Points[i].Makespan)
		}
	}
}

// TestFrontierExplicitBudgets pins the list form: deduplicated, sorted
// ascending regardless of request order.
func TestFrontierExplicitBudgets(t *testing.T) {
	_, ts := newTestServer(t, WithWorkers(2))
	fr, status := postFrontier(t, ts, frontierBody(t, 52, `"budgets":[9,0,3,9,6]`))
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	var got []int64
	for _, pt := range fr.Points {
		got = append(got, pt.Budget)
	}
	if fmt.Sprint(got) != fmt.Sprint([]int64{0, 3, 6, 9}) {
		t.Fatalf("budgets %v, want deduplicated ascending [0 3 6 9]", got)
	}
	checkCurve(t, fr)
}

// TestFrontierStoreRoundTrip solves once to store the instance, sweeps it
// by hash via GET, and checks a restarted server serves the whole curve
// from the durable store.
func TestFrontierStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	svc, ts := newTestServer(t, WithWorkers(2), WithStore(dir))

	body := frontierBody(t, 53, `"budget_min":0,"budget_max":10,"steps":6`)
	fr, status := postFrontier(t, ts, body)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	checkCurve(t, fr)

	// GET by hash reads the stored instance back.
	resp, err := http.Get(ts.URL + "/v1/frontier?hash=" + fr.Hash + "&solver=exact&budget_min=0&budget_max=10&steps=6")
	if err != nil {
		t.Fatal(err)
	}
	var got FrontierResponse
	err = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET by hash: status %d err %v", resp.StatusCode, err)
	}
	if len(got.Points) != len(fr.Points) {
		t.Fatalf("GET sweep has %d points, POST had %d", len(got.Points), len(fr.Points))
	}
	ts.Close()
	svc.Close()

	// Restart: every point answers from the durable store, no solving.
	_, ts2 := newTestServer(t, WithWorkers(2), WithStore(dir))
	fr2, status := postFrontier(t, ts2, body)
	if status != http.StatusOK {
		t.Fatalf("restart sweep status %d", status)
	}
	for i, pt := range fr2.Points {
		if !pt.StoreHit {
			t.Fatalf("restarted point %d not a store hit: %+v", i, pt)
		}
		if pt.Makespan != fr.Points[i].Makespan {
			t.Fatalf("restart changed point %d: %d vs %d", i, pt.Makespan, fr.Points[i].Makespan)
		}
	}
}

// TestFrontierAsJob runs a sweep as an async job: one progress event per
// point, the curve attached to the final status.
func TestFrontierAsJob(t *testing.T) {
	_, ts := newTestServer(t, WithWorkers(2))
	inst, err := json.Marshal(scenario.NewGen(54).StepInstance(3, 3, 2, 4, 30, 4))
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"frontier":{"solver":"exact","instance":%s,"budget_min":0,"budget_max":12,"steps":5}}`, inst)
	acc := postJob(t, ts, body)
	st := pollJob(t, ts, acc.ID)
	if st.State != JobSucceeded {
		t.Fatalf("frontier job finished %s", st.State)
	}
	if st.Frontier == nil || st.Result != nil {
		t.Fatalf("frontier job status carries the wrong payload: %+v", st)
	}
	checkCurve(t, *st.Frontier)
	if st.Events != len(st.Frontier.Points) {
		t.Fatalf("%d events for %d points; frontier jobs emit one per point", st.Events, len(st.Frontier.Points))
	}
	resp, err := http.Get(ts.URL + acc.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events, done := sseEvents(t, bufio.NewReader(resp.Body))
	if done == nil || len(events) != len(st.Frontier.Points) {
		t.Fatalf("SSE replay: %d events, done %v", len(events), done != nil)
	}
	for i, ev := range events {
		if ev.Incumbent != float64(st.Frontier.Points[i].Makespan) {
			t.Fatalf("event %d incumbent %v, point makespan %d", i, ev.Incumbent, st.Frontier.Points[i].Makespan)
		}
		if int(ev.Nodes) != i+1 {
			t.Fatalf("event %d counts %d completed points, want %d", i, ev.Nodes, i+1)
		}
	}
}

// TestFrontierRejections pins the request-validation surface.
func TestFrontierRejections(t *testing.T) {
	_, ts := newTestServer(t, WithWorkers(1))
	cases := map[string]struct {
		body string
		want int
	}{
		"no instance or hash": {`{"budget_min":0,"budget_max":5}`, http.StatusBadRequest},
		"hash without store":  {`{"hash":"deadbeef","budget_max":5}`, http.StatusBadRequest},
		"missing range":       {frontierBody(t, 55, `"steps":4`), http.StatusBadRequest},
		"inverted range":      {frontierBody(t, 55, `"budget_min":9,"budget_max":3`), http.StatusBadRequest},
		"one step":            {frontierBody(t, 55, `"budget_max":6,"steps":1`), http.StatusBadRequest},
		"negative budget":     {frontierBody(t, 55, `"budgets":[-2,4]`), http.StatusBadRequest},
		"oversized list":      {frontierBody(t, 55, `"steps":1000,"budget_max":100000`), http.StatusBadRequest},
	}
	for name, tc := range cases {
		if _, status := postFrontier(t, ts, tc.body); status != tc.want {
			t.Errorf("%s: status %d, want %d", name, status, tc.want)
		}
	}

	// Unknown hash on a store-backed server is a 404, not a 400.
	_, ts2 := newTestServer(t, WithWorkers(1), WithStore(t.TempDir()))
	resp, err := http.Get(ts2.URL + "/v1/frontier?hash=0000&budget_max=5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown hash: status %d, want 404", resp.StatusCode)
	}
}

package service

// Functional options for New.  The Config struct-literal surface grew a
// field per PR; options keep call sites source-compatible as knobs are
// added (a new option is a new function, never a changed signature) and
// make the common cases read as what they are: New(WithWorkers(4),
// WithStore(dir)).

// Option configures a Server under construction; apply with New.
type Option func(*Config)

// WithWorkers sizes the solve pool; <= 0 means GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(c *Config) { c.Workers = n }
}

// WithCacheEntries caps the result LRU; 0 means the 1024 default, < 0
// disables caching (single-flight de-duplication stays on).
func WithCacheEntries(n int) Option {
	return func(c *Config) { c.CacheEntries = n }
}

// WithCompiledEntries caps the compiled-instance LRU; 0 means the 512
// default, < 0 disables it.  See Config.CompiledEntries for the memory
// budget this cap implies.
func WithCompiledEntries(n int) Option {
	return func(c *Config) { c.CompiledEntries = n }
}

// WithMaxBodyBytes caps request bodies; <= 0 means the 8 MiB default.
func WithMaxBodyBytes(n int64) Option {
	return func(c *Config) { c.MaxBodyBytes = n }
}

// WithStore roots the durable solve store at dir; empty keeps the
// service purely in-memory.  See Config.StoreDir.
func WithStore(dir string) Option {
	return func(c *Config) { c.StoreDir = dir }
}

// WithRetainJobs caps how many finished jobs stay pollable; 0 means the
// 256 default, < 0 keeps none.  See Config.RetainJobs.
func WithRetainJobs(n int) Option {
	return func(c *Config) { c.RetainJobs = n }
}

// WithPeers enables cluster mode: self is this node's advertised base
// URL (scheme://host[:port]) and peers the full static membership (self
// is added if absent).  Every member must be configured with the same
// membership.  See Config.Self and Config.Peers.
func WithPeers(self string, peers ...string) Option {
	return func(c *Config) {
		c.Self = self
		c.Peers = peers
	}
}

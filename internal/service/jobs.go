package service

// Async jobs: POST /v1/jobs accepts a solve (or frontier sweep) and
// returns 202 immediately; the work runs on the same bounded pool as
// synchronous solves, admitted in priority order (then earliest deadline,
// then submission order).  GET /v1/jobs/{id} polls status, GET
// /v1/jobs/{id}/events streams the live incumbent/lower-bound/gap
// trajectory over SSE (replayed from the start for late subscribers), and
// DELETE /v1/jobs/{id} cancels queued or running work.  Results flow
// through the same cache/store path as /v1/solve, so a completed job's
// report is byte-identical to the synchronous answer for the same request
// and survives restarts via the durable store.

import (
	"container/heap"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/solver"
)

// Job states, as reported in JobStatus.State.
const (
	// JobQueued: accepted, waiting for an admission slot.
	JobQueued = "queued"
	// JobRunning: executing on the pool.
	JobRunning = "running"
	// JobSucceeded: finished with a complete, error-free result.
	JobSucceeded = "succeeded"
	// JobFailed: finished with an error; a partial (deadline-interrupted)
	// report may still be present in the result.
	JobFailed = "failed"
	// JobCanceled: canceled via DELETE before or during execution; a
	// partial report may still be present.
	JobCanceled = "canceled"
)

// maxJobEvents caps one job's stored trajectory.  Solver emission is
// improvement-driven and rate-limited, so real trajectories are far
// shorter; the cap only bounds a pathological solver's memory.
const maxJobEvents = 1024

// JobRequest is the body of POST /v1/jobs: a SolveRequest plus job-level
// knobs, or a frontier sweep under "frontier".
type JobRequest struct {
	SolveRequest
	// Frontier, when set, makes this a frontier job: the sweep of
	// FrontierRequest runs asynchronously, emitting one progress event per
	// completed point.  The inline solve fields are then ignored.
	Frontier *FrontierRequest `json:"frontier,omitempty"`
	// Priority orders admission: higher runs first; equal priorities fall
	// back to earliest deadline, then submission order.  Default 0.
	Priority int `json:"priority,omitempty"`
}

// JobAccepted answers POST /v1/jobs with 202.
type JobAccepted struct {
	// ID names the job.
	ID string `json:"id"`
	// State is the job's state at acceptance (normally "queued").
	State string `json:"state"`
	// StatusURL polls the job; EventsURL streams its trajectory (SSE).
	StatusURL string `json:"status_url"`
	EventsURL string `json:"events_url"`
}

// JobEvent is one point of a job's anytime trajectory.
type JobEvent struct {
	// Seq numbers events from 0 within the job; SSE replays always start
	// at 0, so Seq lets clients dedupe across reconnects.
	Seq int `json:"seq"`
	// Incumbent is the best feasible objective so far (-1 before the first
	// solution); Bound is the best certified lower bound so far (0 before
	// one exists).  For solve jobs the pair is monotone: Incumbent only
	// falls, Bound only rises.  For frontier jobs each event is one
	// completed sweep point instead.
	Incumbent float64 `json:"incumbent"`
	Bound     float64 `json:"bound"`
	// Gap is Incumbent-Bound, or -1 while no incumbent exists; on solve
	// jobs it shrinks strictly across events.
	Gap float64 `json:"gap"`
	// Nodes counts solver work at emission (search nodes, FW iterations;
	// completed points for frontier jobs).
	Nodes int64 `json:"nodes"`
	// ElapsedMS is the time since the job was accepted.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// JobStatus answers GET /v1/jobs/{id} (and each entry of GET /v1/jobs).
type JobStatus struct {
	// ID names the job; State is one of the Job* constants.
	ID    string `json:"id"`
	State string `json:"state"`
	// Solver is the requested solver name ("auto" when defaulted).
	Solver string `json:"solver,omitempty"`
	// Priority echoes the admission priority.
	Priority int `json:"priority,omitempty"`
	// Events counts trajectory events so far; LastEvent is the newest.
	Events    int       `json:"events"`
	LastEvent *JobEvent `json:"last_event,omitempty"`
	// Result is the solve outcome of a finished solve job; identical to
	// what POST /v1/solve returns for the same request.
	Result *SolveResponse `json:"result,omitempty"`
	// Frontier is the sweep outcome of a finished frontier job.
	Frontier *FrontierResponse `json:"frontier,omitempty"`
}

// JobsResponse answers GET /v1/jobs, sorted by job id.
type JobsResponse struct {
	Jobs []JobStatus `json:"jobs"`
}

// JobsStats counts job activity for /v1/stats.
type JobsStats struct {
	// Submitted counts accepted jobs since boot.
	Submitted int64 `json:"submitted"`
	// Queued and Running count jobs currently in those states.
	Queued  int `json:"queued"`
	Running int `json:"running"`
	// Done counts finished jobs (succeeded, failed, or canceled);
	// Canceled counts the canceled subset.
	Done     int64 `json:"done"`
	Canceled int64 `json:"canceled"`
	// Retained counts finished jobs still held for polling.
	Retained int `json:"retained"`
}

// job is one async unit of work and its trajectory.  Admission fields are
// immutable after submit; mutable state is guarded by mu.
type job struct {
	id       string
	seq      int64
	priority int
	deadline time.Time // zero: none; orders admission within a priority
	created  time.Time

	p     *prepared     // solve payload; nil for frontier jobs
	plan  *frontierPlan // frontier payload; nil for solve jobs
	name  string        // solver name, for status
	reg   *jobRegistry
	index int // heap index; -1 once popped

	mu        sync.Mutex
	state     string
	cancel    context.CancelFunc // set at dispatch; nil while queued
	cancelReq bool               // DELETE arrived; final state is JobCanceled
	events    []JobEvent
	changed   chan struct{} // closed and replaced on every mutation
	result    *SolveResponse
	frontier  *FrontierResponse
}

// appendEvent adds one trajectory event.  With improvedOnly, events that
// do not strictly improve the (incumbent, bound) pair are dropped — the
// guarantee that a solve job's streamed gap shrinks strictly even when
// parallel workers deliver around each other.
func (j *job) appendEvent(ev JobEvent, improvedOnly bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.events) >= maxJobEvents {
		return
	}
	if improvedOnly && len(j.events) > 0 {
		last := j.events[len(j.events)-1]
		improved := (ev.Incumbent >= 0 && (last.Incumbent < 0 || ev.Incumbent < last.Incumbent)) ||
			ev.Bound > last.Bound
		if !improved {
			return
		}
	}
	ev.Seq = len(j.events)
	if ev.Incumbent >= 0 {
		ev.Gap = ev.Incumbent - ev.Bound
	} else {
		ev.Gap = -1
	}
	j.events = append(j.events, ev)
	j.wakeLocked()
}

// wakeLocked signals every watcher (SSE streams) that the job changed.
func (j *job) wakeLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// eventsFrom returns the events at index next and beyond, the channel that
// signals the next change, and whether the job is finished.  The returned
// slice is safe to read concurrently: events are append-only and entries
// immutable.
func (j *job) eventsFrom(next int) (events []JobEvent, changed <-chan struct{}, done bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if next < len(j.events) {
		events = j.events[next:]
	}
	return events, j.changed, j.state == JobSucceeded || j.state == JobFailed || j.state == JobCanceled
}

// status snapshots the job as wire JSON.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:       j.id,
		State:    j.state,
		Solver:   j.name,
		Priority: j.priority,
		Events:   len(j.events),
		Result:   j.result,
		Frontier: j.frontier,
	}
	if n := len(j.events); n > 0 {
		ev := j.events[n-1]
		st.LastEvent = &ev
	}
	return st
}

// jobHeap orders queued jobs for admission: priority descending, then
// deadline ascending (none sorts last), then submission order.
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(a, b int) bool {
	x, y := h[a], h[b]
	if x.priority != y.priority {
		return x.priority > y.priority
	}
	switch {
	case x.deadline.IsZero() != y.deadline.IsZero():
		return !x.deadline.IsZero()
	case !x.deadline.IsZero() && !x.deadline.Equal(y.deadline):
		return x.deadline.Before(y.deadline)
	}
	return x.seq < y.seq
}
func (h jobHeap) Swap(a, b int) {
	h[a], h[b] = h[b], h[a]
	h[a].index = a
	h[b].index = b
}
func (h *jobHeap) Push(x any) {
	jb := x.(*job)
	jb.index = len(*h)
	*h = append(*h, jb)
}
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	jb := old[n-1]
	old[n-1] = nil
	jb.index = -1
	*h = old[:n-1]
	return jb
}

// jobRegistry owns every job: the admission queue, the running set, and
// the finished-job retention window.
type jobRegistry struct {
	s      *Server
	retain int

	mu        sync.Mutex
	byID      map[string]*job
	doneIDs   []string // finished jobs in completion order, oldest first
	pending   jobHeap
	seq       int64
	avail     int // free admission slots; sized to the pool
	closed    bool
	submitted int64
	done      int64
	canceled  int64

	wg sync.WaitGroup
}

func newJobRegistry(s *Server, slots, retain int) *jobRegistry {
	if slots < 1 {
		slots = 1
	}
	return &jobRegistry{s: s, retain: retain, byID: make(map[string]*job), avail: slots}
}

// submit validates and enqueues one job.  Validation happens here, before
// the 202: a malformed request fails the POST, never becomes a dead job.
func (r *jobRegistry) submit(req JobRequest, now time.Time) (*job, error) {
	jb := &job{
		priority: req.Priority,
		created:  now,
		reg:      r,
		state:    JobQueued,
		changed:  make(chan struct{}),
		index:    -1,
	}
	if req.Frontier != nil {
		plan, err := r.s.planFrontier(*req.Frontier, now)
		if err != nil {
			return nil, err
		}
		jb.plan = plan
		jb.name = plan.p.name
	} else {
		p, err := r.s.prepare(req.SolveRequest, now)
		if err != nil {
			return nil, err
		}
		jb.p = p
		jb.name = p.name
		jb.deadline = p.opts.Deadline
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, fmt.Errorf("service is shutting down")
	}
	r.seq++
	jb.seq = r.seq
	jb.id = fmt.Sprintf("j%08d", jb.seq)
	r.submitted++
	r.byID[jb.id] = jb
	heap.Push(&r.pending, jb)
	r.mu.Unlock()
	r.dispatch()
	return jb, nil
}

// dispatch starts queued jobs while admission slots are free.  Jobs
// canceled while queued are skipped here (lazy heap removal).
func (r *jobRegistry) dispatch() {
	for {
		r.mu.Lock()
		if r.closed || r.avail == 0 || r.pending.Len() == 0 {
			r.mu.Unlock()
			return
		}
		jb := heap.Pop(&r.pending).(*job)
		jb.mu.Lock()
		if jb.state != JobQueued {
			jb.mu.Unlock()
			r.mu.Unlock()
			continue
		}
		ctx, cancel := context.WithCancel(context.Background())
		jb.state = JobRunning
		jb.cancel = cancel
		jb.wakeLocked()
		jb.mu.Unlock()
		r.avail--
		r.wg.Add(1)
		r.mu.Unlock()
		go r.run(jb, ctx)
	}
}

// run executes one job under its own context (jobs outlive the submitting
// HTTP request) and releases its admission slot when done.
func (r *jobRegistry) run(jb *job, ctx context.Context) {
	defer func() {
		r.mu.Lock()
		r.avail++
		r.mu.Unlock()
		r.wg.Done()
		r.dispatch()
	}()
	start := time.Now()
	if jb.plan != nil {
		resp, _ := r.s.solveFrontier(ctx, jb.plan, func(pt FrontierPoint, completed int) {
			jb.appendEvent(JobEvent{
				Incumbent: float64(pt.Makespan),
				Bound:     pt.LowerBound,
				Nodes:     int64(completed),
				ElapsedMS: float64(time.Since(jb.created)) / float64(time.Millisecond),
			}, false)
		})
		r.finish(jb, nil, &resp)
		return
	}
	p := *jb.p
	p.opts.Progress = func(ev solver.ProgressEvent) {
		jb.appendEvent(JobEvent{
			Incumbent: ev.Incumbent,
			Bound:     ev.Bound,
			Nodes:     ev.Nodes,
			ElapsedMS: float64(time.Since(jb.created)) / float64(time.Millisecond),
		}, true)
	}
	resp, _ := r.s.solvePrepared(ctx, &p, start)
	// Final trajectory point from the report itself: cached, store-served
	// and warm-completed answers reach the stream even when no solver
	// callback ever fired.  The improvement filter drops it when the live
	// trajectory already ended at these exact values.
	if resp.Report != nil {
		jb.appendEvent(JobEvent{
			Incumbent: float64(resp.Report.Makespan),
			Bound:     resp.Report.LowerBound,
			Nodes:     int64(resp.Report.Nodes),
			ElapsedMS: float64(time.Since(jb.created)) / float64(time.Millisecond),
		}, true)
	}
	r.finish(jb, &resp, nil)
}

// finish records the outcome, resolves the final state, and applies the
// finished-job retention cap.
func (r *jobRegistry) finish(jb *job, sr *SolveResponse, fr *FrontierResponse) {
	jb.mu.Lock()
	jb.result = sr
	jb.frontier = fr
	failed := (sr != nil && sr.Error != "") || (fr != nil && fr.Error != "")
	switch {
	case jb.cancelReq:
		jb.state = JobCanceled
	case failed:
		jb.state = JobFailed
	default:
		jb.state = JobSucceeded
	}
	canceled := jb.state == JobCanceled
	jb.wakeLocked()
	jb.mu.Unlock()

	r.mu.Lock()
	r.done++
	if canceled {
		r.canceled++
	}
	r.doneIDs = append(r.doneIDs, jb.id)
	for len(r.doneIDs) > r.retain {
		delete(r.byID, r.doneIDs[0])
		r.doneIDs = r.doneIDs[1:]
	}
	r.mu.Unlock()
}

// get looks a job up by id.
func (r *jobRegistry) get(id string) (*job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	jb, ok := r.byID[id]
	return jb, ok
}

// requestCancel cancels a queued or running job.  Queued jobs finish
// immediately as canceled (the dispatcher skips them); running jobs get
// their context canceled and finish with whatever partial result the
// solver hands back.  It reports whether a cancellation was initiated.
func (r *jobRegistry) requestCancel(jb *job) bool {
	jb.mu.Lock()
	switch jb.state {
	case JobQueued:
		jb.cancelReq = true
		jb.mu.Unlock()
		r.finish(jb, nil, nil)
		return true
	case JobRunning:
		jb.cancelReq = true
		cancel := jb.cancel
		jb.mu.Unlock()
		cancel()
		return true
	}
	jb.mu.Unlock()
	return false
}

// remove forgets a FINISHED job; live jobs are refused.
func (r *jobRegistry) remove(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	jb, ok := r.byID[id]
	if !ok {
		return false
	}
	jb.mu.Lock()
	finished := jb.state == JobSucceeded || jb.state == JobFailed || jb.state == JobCanceled
	jb.mu.Unlock()
	if !finished {
		return false
	}
	delete(r.byID, id)
	for i, d := range r.doneIDs {
		if d == id {
			r.doneIDs = append(r.doneIDs[:i], r.doneIDs[i+1:]...)
			break
		}
	}
	return true
}

// list snapshots every known job, sorted by id (ids embed the submission
// sequence, so this is submission order).
func (r *jobRegistry) list() []JobStatus {
	r.mu.Lock()
	ids := make([]string, 0, len(r.byID))
	for id := range r.byID {
		ids = append(ids, id)
	}
	jobs := make([]*job, 0, len(ids))
	sort.Strings(ids)
	for _, id := range ids {
		jobs = append(jobs, r.byID[id])
	}
	r.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, jb := range jobs {
		out[i] = jb.status()
	}
	return out
}

// stats snapshots the job counters.
func (r *jobRegistry) stats() JobsStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := JobsStats{
		Submitted: r.submitted,
		Done:      r.done,
		Canceled:  r.canceled,
		Retained:  len(r.doneIDs),
	}
	//rt:unordered — counting states; the result is order-insensitive.
	for _, jb := range r.byID {
		jb.mu.Lock()
		switch jb.state {
		case JobQueued:
			st.Queued++
		case JobRunning:
			st.Running++
		}
		jb.mu.Unlock()
	}
	return st
}

// close rejects new submissions, cancels queued and running jobs, and
// waits for running ones to finish.
func (r *jobRegistry) close() {
	r.mu.Lock()
	r.closed = true
	jobs := make([]*job, 0, len(r.byID))
	for _, jb := range r.byID {
		jobs = append(jobs, jb)
	}
	r.mu.Unlock()
	for _, jb := range jobs {
		r.requestCancel(jb)
	}
	r.wg.Wait()
}

// handleJobs serves POST /v1/jobs (submit) and GET /v1/jobs (list).
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, JobsResponse{Jobs: s.jobs.list()})
	case http.MethodPost:
		s.requests.Add(1)
		var req JobRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
			return
		}
		jb, err := s.jobs.submit(req, time.Now())
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusAccepted, JobAccepted{
			ID:        jb.id,
			State:     JobQueued,
			StatusURL: "/v1/jobs/" + jb.id,
			EventsURL: "/v1/jobs/" + jb.id + "/events",
		})
	default:
		writeError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

// handleJob serves GET /v1/jobs/{id} (poll) and DELETE /v1/jobs/{id}
// (cancel a live job, forget a finished one).
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	jb, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeErrorDetail(w, http.StatusNotFound, r.PathValue("id"), "unknown job %q", r.PathValue("id"))
		return
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, jb.status())
	case http.MethodDelete:
		if s.jobs.requestCancel(jb) {
			// Cancellation initiated; report the state it reached.
			writeJSON(w, http.StatusOK, jb.status())
			return
		}
		// Already finished: forget it.
		s.jobs.remove(jb.id)
		writeJSON(w, http.StatusOK, jb.status())
	default:
		writeError(w, http.StatusMethodNotAllowed, "use GET or DELETE")
	}
}

// handleJobEvents serves GET /v1/jobs/{id}/events: the job's trajectory
// as Server-Sent Events.  The stream replays every event from Seq 0, then
// follows the live trajectory; it ends with one "done" event carrying the
// final JobStatus once the job finishes.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	jb, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeErrorDetail(w, http.StatusNotFound, r.PathValue("id"), "unknown job %q", r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	next := 0
	for {
		events, changed, done := jb.eventsFrom(next)
		for _, ev := range events {
			writeSSE(w, "progress", ev)
		}
		next += len(events)
		if len(events) > 0 {
			fl.Flush()
		}
		if done {
			writeSSE(w, "done", jb.status())
			fl.Flush()
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			// Client went away mid-stream; the job itself runs on.
			return
		}
	}
}

// writeSSE frames one JSON payload as a named Server-Sent Event.
func writeSSE(w http.ResponseWriter, event string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		return // wire types marshal unconditionally
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}

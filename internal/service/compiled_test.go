package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// isoBodies returns two structurally different JSON encodings of the same
// DAG - renamed nodes and reversed arc order - that must compile to the
// same canonical hash.
func isoBodies() (a, b string) {
	a = `{"options":{"budget":2},"instance":{"nodes":["s","mid","t"],
		"edges":[{"from":0,"to":1,"fn":{"kind":"step","tuples":[{"r":0,"t":9},{"r":2,"t":3}]}},
		         {"from":1,"to":2,"fn":{"kind":"step","tuples":[{"r":0,"t":7},{"r":1,"t":4}]}}]}}`
	b = `{"options":{"budget":2},"instance":{"nodes":["source","m","sink"],
		"edges":[{"from":1,"to":2,"fn":{"kind":"step","tuples":[{"r":0,"t":7},{"r":1,"t":4}]}},
		         {"from":0,"to":1,"fn":{"kind":"step","tuples":[{"r":0,"t":9},{"r":2,"t":3}]}}]}}`
	return a, b
}

// TestIsomorphicEncodingsShareOneJobAndCacheEntry is the end-to-end
// regression test for canonical-hash keying: two isomorphic JSON encodings
// of the same DAG (renamed nodes, reordered arcs) under the same options
// must produce exactly one pool job, one result-cache entry and one
// compiled-instance entry - the second request is a cache hit even though
// its bytes never occurred before.
func TestIsomorphicEncodingsShareOneJobAndCacheEntry(t *testing.T) {
	svc, ts := newTestServer(t, WithWorkers(1))
	bodyA, bodyB := isoBodies()

	var first, second SolveResponse
	if status := postSolve(t, ts, bodyA, &first); status != http.StatusOK || first.Error != "" {
		t.Fatalf("first solve: status %d, %+v", status, first)
	}
	if status := postSolve(t, ts, bodyB, &second); status != http.StatusOK || second.Error != "" {
		t.Fatalf("second solve: status %d, %+v", status, second)
	}
	if first.Hash != second.Hash {
		t.Fatalf("isomorphic encodings hashed differently: %s vs %s", first.Hash, second.Hash)
	}
	if !second.Cached {
		t.Fatal("isomorphic repeat was recomputed; the result cache must key on the canonical hash")
	}
	if first.Report.Makespan != second.Report.Makespan || first.Report.Resources != second.Report.Resources {
		t.Fatalf("isomorphic requests disagree: %+v vs %+v", first.Report, second.Report)
	}
	if jobs := svc.pool.stats().Jobs; jobs != 1 {
		t.Fatalf("pool ran %d jobs; isomorphic encodings must share one", jobs)
	}
	if st := svc.cache.stats(); st.Size != 1 {
		t.Fatalf("result cache holds %d entries; want 1 shared entry", st.Size)
	}
	if st := svc.compiled.stats(); st.Size != 1 || st.Aliased != 1 {
		t.Fatalf("compiled cache stats %+v; want one entry with one isomorphic alias", st)
	}

	// The literal same bytes again: now even the decode is skipped.
	var third SolveResponse
	if status := postSolve(t, ts, bodyA, &third); status != http.StatusOK {
		t.Fatalf("third solve: status %d", status)
	}
	if !third.Cached || !third.CompiledHit {
		t.Fatalf("byte-identical repeat: cached=%v compiled_hit=%v; want both", third.Cached, third.CompiledHit)
	}
	if st := svc.compiled.stats(); st.Hits == 0 {
		t.Fatalf("compiled cache stats %+v; want a raw-bytes hit", st)
	}
}

// TestCompiledCacheSharedAcrossOptions: a hot DAG arriving with varying
// budgets must decode and compile exactly once; each distinct budget still
// solves (distinct result-cache keys), but preprocessing is shared.
func TestCompiledCacheSharedAcrossOptions(t *testing.T) {
	svc, ts := newTestServer(t, WithWorkers(1))
	inst := `{"nodes":["s","t"],"edges":[{"from":0,"to":1,"fn":{"kind":"step","tuples":[{"r":0,"t":9},{"r":1,"t":5},{"r":3,"t":2}]}}]}`
	for i, budget := range []int64{0, 1, 2, 3} {
		body := fmt.Sprintf(`{"options":{"budget":%d},"instance":%s}`, budget, inst)
		var resp SolveResponse
		if status := postSolve(t, ts, body, &resp); status != http.StatusOK || resp.Error != "" {
			t.Fatalf("budget %d: status %d, %+v", budget, status, resp)
		}
		if resp.Cached {
			t.Fatalf("budget %d: distinct options must not hit the result cache", budget)
		}
		if i > 0 && !resp.CompiledHit {
			t.Fatalf("budget %d: instance bytes repeated but were recompiled", budget)
		}
	}
	if st := svc.compiled.stats(); st.Size != 1 || st.Misses != 1 || st.Hits != 3 {
		t.Fatalf("compiled cache stats %+v; want 1 compile and 3 raw hits", st)
	}
	if jobs := svc.pool.stats().Jobs; jobs != 4 {
		t.Fatalf("pool ran %d jobs; want 4 distinct solves", jobs)
	}
}

// TestCompiledCacheEviction: the LRU must drop whole entries with all
// their raw aliases, and a disabled cache must still serve correct solves.
func TestCompiledCacheEviction(t *testing.T) {
	svc, ts := newTestServer(t, WithWorkers(1), WithCompiledEntries(2))
	mk := func(t0 int64) string {
		return fmt.Sprintf(`{"options":{"budget":1},"instance":{"nodes":["s","t"],"edges":[{"from":0,"to":1,"fn":{"kind":"const","t0":%d}}]}}`, t0)
	}
	for t0 := int64(1); t0 <= 4; t0++ {
		var resp SolveResponse
		if status := postSolve(t, ts, mk(t0), &resp); status != http.StatusOK || resp.Error != "" {
			t.Fatalf("t0=%d: status %d, %+v", t0, status, resp)
		}
	}
	if st := svc.compiled.stats(); st.Size != 2 || st.Evictions != 2 {
		t.Fatalf("compiled cache stats %+v; want size 2 with 2 evictions", st)
	}

	// Disabled compiled cache: every request compiles, none hit.
	svc2, ts2 := newTestServer(t, WithWorkers(1), WithCompiledEntries(-1))
	for i := 0; i < 2; i++ {
		var resp SolveResponse
		if status := postSolve(t, ts2, mk(9), &resp); status != http.StatusOK || resp.Error != "" {
			t.Fatalf("disabled cache: status %d, %+v", status, resp)
		}
		if resp.CompiledHit {
			t.Fatal("disabled compiled cache must never report a hit")
		}
	}
	if st := svc2.compiled.stats(); st.Hits != 0 || st.Size != 0 {
		t.Fatalf("disabled compiled cache stats %+v; want no storage", st)
	}
}

// solveBody builds one benchmark request body: a small three-class
// instance solved by the exact search.
func benchBody(b *testing.B) []byte {
	b.Helper()
	body := `{"solver":"exact","options":{"budget":3},"instance":{"nodes":["s","a","b","t"],
		"edges":[{"from":0,"to":1,"fn":{"kind":"step","tuples":[{"r":0,"t":9},{"r":1,"t":5},{"r":3,"t":2}]}},
		         {"from":0,"to":2,"fn":{"kind":"step","tuples":[{"r":0,"t":8},{"r":2,"t":3}]}},
		         {"from":1,"to":3,"fn":{"kind":"step","tuples":[{"r":0,"t":7},{"r":1,"t":4}]}},
		         {"from":1,"to":2,"fn":{"kind":"const","t0":1}},
		         {"from":2,"to":3,"fn":{"kind":"step","tuples":[{"r":0,"t":6},{"r":2,"t":1}]}}]}}`
	var probe map[string]any
	if err := json.Unmarshal([]byte(body), &probe); err != nil {
		b.Fatal(err)
	}
	return []byte(body)
}

func servePost(h http.Handler, body []byte) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	r := httptest.NewRequest(http.MethodPost, "/v1/solve", strings.NewReader(string(body)))
	h.ServeHTTP(w, r)
	return w
}

// BenchmarkServeHotInstance measures the steady-state zero-allocation
// hot path: the identical request over and over through ServeHot, where
// the raw bytes map straight to a pre-encoded response in the hot arena.
// The acceptance bar is 0 allocs/op — a hit is one SHA-256, one map
// probe, one append into the reused caller buffer.
func BenchmarkServeHotInstance(b *testing.B) {
	svc, err := New(WithWorkers(1))
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	body := benchBody(b)
	buf := make([]byte, 0, 64<<10)
	out, status := svc.ServeHot(body, buf) // prime: solves and seeds the arena
	if status != http.StatusOK {
		b.Fatalf("prime request failed: %d %s", status, out)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, status = svc.ServeHot(body, out[:0])
		if status != http.StatusOK {
			b.Fatalf("hot request failed: %d", status)
		}
	}
}

// BenchmarkServeHotHTTP measures the same steady-state traffic through
// the full HTTP stack: the raw bytes hit the compiled-instance cache (no
// JSON decode, no validation, no compile, no hashing) and the result
// comes from the result LRU, but net/http's per-request machinery still
// allocates.  The gap to BenchmarkServeHotInstance is the hot tier's
// payoff; the gap to BenchmarkServeColdInstance is the compiled core's.
func BenchmarkServeHotHTTP(b *testing.B) {
	svc, err := New(WithWorkers(1))
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	h := svc.Handler()
	body := benchBody(b)
	if w := servePost(h, body); w.Code != http.StatusOK {
		b.Fatalf("prime request failed: %d %s", w.Code, w.Body.String())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w := servePost(h, body); w.Code != http.StatusOK {
			b.Fatalf("hot request failed: %d", w.Code)
		}
	}
}

// BenchmarkServeColdInstance measures the same request through a service
// with both caches disabled: every iteration decodes, validates, compiles,
// hashes and solves.  The hot/cold allocs/op ratio is the measured payoff
// of the compiled-instance core.
func BenchmarkServeColdInstance(b *testing.B) {
	svc, err := New(WithWorkers(1), WithCacheEntries(-1), WithCompiledEntries(-1))
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	h := svc.Handler()
	body := benchBody(b)
	if w := servePost(h, body); w.Code != http.StatusOK {
		b.Fatalf("prime request failed: %d %s", w.Code, w.Body.String())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w := servePost(h, body); w.Code != http.StatusOK {
			b.Fatalf("cold request failed: %d", w.Code)
		}
	}
}

package reduction

import (
	"math/rand"
	"testing"

	"repro/internal/exact"
)

func TestResourceGapWitness(t *testing.T) {
	f := Formula{NumVars: 2, Clauses: []Clause{{Pos(0), Pos(1), Neg(0)}}}
	r, err := BuildResourceGap(f)
	if err != nil {
		t.Fatal(err)
	}
	assign, ok := f.Satisfiable()
	if !ok {
		t.Fatal("expected satisfiable")
	}
	flow, err := r.WitnessFlow(assign)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Inst.ValidateFlow(flow, 2); err != nil {
		t.Fatalf("witness invalid: %v", err)
	}
	m, err := r.Inst.Makespan(flow)
	if err != nil {
		t.Fatal(err)
	}
	if m > r.Target {
		t.Fatalf("witness makespan = %d; want <= %d", m, r.Target)
	}
}

func TestResourceGapThreeUnitFlowAlwaysWorks(t *testing.T) {
	for _, f := range []Formula{
		UnsatOneInThreeFormula(), // 3SAT-satisfiable
		unsat3SAT(),
		Figure9Formula(),
	} {
		r, err := BuildResourceGap(f)
		if err != nil {
			t.Fatal(err)
		}
		flow := r.ThreeUnitFlow()
		if err := r.Inst.ValidateFlow(flow, 3); err != nil {
			t.Fatalf("three-unit flow invalid: %v", err)
		}
		m, err := r.Inst.Makespan(flow)
		if err != nil {
			t.Fatal(err)
		}
		if m > r.Target {
			t.Fatalf("three-unit makespan = %d; want <= %d", m, r.Target)
		}
	}
}

// unsat3SAT returns the standard 2-variable unsatisfiable 3-CNF using
// duplicated literals: (x|x|y) (x|x|!y) (!x|!x|y) (!x|!x|!y).
func unsat3SAT() Formula {
	return Formula{
		NumVars: 2,
		Clauses: []Clause{
			{Pos(0), Pos(0), Pos(1)},
			{Pos(0), Pos(0), Neg(1)},
			{Neg(0), Neg(0), Pos(1)},
			{Neg(0), Neg(0), Neg(1)},
		},
	}
}

// TestResourceGapTheorem44 is the machine verification of the 2-vs-3
// resource gap: the exact minimum resource at the target makespan is 2
// iff the formula is satisfiable and 3 otherwise.
func TestResourceGapTheorem44(t *testing.T) {
	cases := []struct {
		name string
		f    Formula
	}{
		{"sat-simple", Formula{NumVars: 2, Clauses: []Clause{{Pos(0), Pos(1), Neg(0)}}}},
		{"sat-two-clauses", Formula{NumVars: 2, Clauses: []Clause{
			{Pos(0), Pos(1), Pos(1)},
			{Neg(0), Neg(1), Pos(0)},
		}}},
		{"unsat", unsat3SAT()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := BuildResourceGap(tc.f)
			if err != nil {
				t.Fatal(err)
			}
			sol, stats, err := exact.MinResource(r.Inst, r.Target, &exact.Options{MaxNodes: 1 << 21})
			if err != nil {
				t.Fatal(err)
			}
			if !stats.Complete {
				t.Skipf("incomplete after %d nodes", stats.Nodes)
			}
			_, sat := tc.f.Satisfiable()
			want := int64(3)
			if sat {
				want = 2
			}
			if sol.Value != want {
				t.Fatalf("min resource = %d; want %d (sat=%v)", sol.Value, want, sat)
			}
		})
	}
}

// TestResourceGapRandom fuzzes the gap equivalence on random formulas.
func TestResourceGapRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 5; trial++ {
		f := Formula{NumVars: 2}
		for j := 0; j < 1+rng.Intn(2); j++ {
			var c Clause
			for p := range c {
				c[p] = Literal{Var: rng.Intn(2), Neg: rng.Intn(2) == 0}
			}
			f.Clauses = append(f.Clauses, c)
		}
		r, err := BuildResourceGap(f)
		if err != nil {
			t.Fatal(err)
		}
		sol, stats, err := exact.MinResource(r.Inst, r.Target, &exact.Options{MaxNodes: 1 << 21})
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Complete {
			continue
		}
		_, sat := f.Satisfiable()
		want := int64(3)
		if sat {
			want = 2
		}
		if sol.Value != want {
			t.Fatalf("trial %d (%v): min resource = %d; want %d", trial, f, sol.Value, want)
		}
	}
}

func TestResourceGapValidation(t *testing.T) {
	if _, err := BuildResourceGap(Formula{NumVars: 1}); err == nil {
		t.Fatal("want error for no clauses")
	}
	r, err := BuildResourceGap(Figure9Formula())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.WitnessFlow([]bool{true}); err == nil {
		t.Fatal("want error for wrong assignment length")
	}
	if _, err := r.WitnessFlow([]bool{false, true, false}); err == nil {
		t.Fatal("want error for non-satisfying assignment")
	}
}

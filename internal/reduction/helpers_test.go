package reduction

import (
	"repro/internal/core"
	"repro/internal/flow"
)

// minFlowValue routes a minimum flow meeting the lower bounds on an
// arc-form instance and returns its value.
func minFlowValue(af *core.ArcForm, lower []int64) (int64, error) {
	res, err := flow.MinFlow(af.Inst.G, lower, af.Inst.Source, af.Inst.Sink)
	if err != nil {
		return 0, err
	}
	return res.Value, nil
}

package reduction

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/duration"
)

// VarGadget41 records the node IDs of one Theorem 4.1 variable gadget
// (Figure 8a).  Sending the gadget's single unit of resource through V2
// sets the variable TRUE; through V3, FALSE.
type VarGadget41 struct {
	V1, V2, V3, V4, V5, V6 int
}

// ClauseGadget41 records the node IDs of one Theorem 4.1 clause gadget
// (Figure 8b).  C5, C6 and C7 are the three pattern vertices; exactly one
// of them starts at time 0 iff the clause has exactly one true literal.
type ClauseGadget41 struct {
	C1, C2, C3, C4, C5, C6, C7, C8, C9, C10 int
}

// Thm41 is the Theorem 4.1 construction: a resource-time instance with
// general non-increasing (two-tuple) duration functions such that makespan
// 1 is reachable with budget n + 2m iff the formula is 1-in-3 satisfiable.
type Thm41 struct {
	Formula Formula
	Inst    *core.Instance
	Budget  int64 // n + 2m
	Target  int64 // 1
	Vars    []VarGadget41
	Clauses []ClauseGadget41

	source, sink int
	// edge IDs needed to assemble witness flows
	varEdges    []thm41VarEdges
	clauseEdges []thm41ClauseEdges
}

type thm41VarEdges struct {
	sV1, v1V2, v1V3, v2V4, v3V4, v4V5, v5V6, v6T int
}

type thm41ClauseEdges struct {
	sC1, c1C2, c2C4, c1C3, c3C4 int
	c4C5, c4C6, c4C7            int
	c5C8, c6C9, c7C10           int
	c8T, c9T, c10T              int
	litC5, litC6, litC7         [3]int
}

// zeroOne is the {<0,1>, <1,0>} duration of the gadget choice arcs.
func zeroOne() duration.Func {
	return duration.MustStep(duration.Tuple{R: 0, T: 1}, duration.Tuple{R: 1, T: 0})
}

// BuildThm41 constructs the Theorem 4.1 reduction for f.
//
// Gadget wiring (reconstructed from the prose of Section 4.1; Figures 8-9
// are drawings): per variable, S -> V1 branches to V2 (TRUE) and V3
// (FALSE) with {<0,1>,<1,0>} arcs, rejoins at V4 via zero arcs, and exits
// through V4 -> V5 with {<0,2>,<1,0>} - the 2 forces the variable's unit
// to stay on its own path instead of leaking into a clause - then V5 ->
// V6 -> T with zero arcs.  Per clause, S -> C1 splits into the two
// two-arc chains C1->C2->C4 and C1->C3->C4 (each arc {<0,1>,<1,0>}, so one
// unit flowing down a chain zeroes both of its arcs - resource reuse over
// a path), C4 fans out to the three pattern vertices C5/C6/C7 via zero
// arcs, each pattern vertex is written by three variable-gadget vertices
// (V2 of a variable for a positive occurrence of the pattern, V3 for a
// negative one) via zero arcs, and each pattern vertex exits through a
// {<0,1>,<1,0>} arc to C8/C9/C10 and then to T.
func BuildThm41(f Formula) (*Thm41, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	g := dag.New()
	var fns []duration.Func
	addEdge := func(u, v int, fn duration.Func) int {
		id := g.AddEdge(u, v)
		fns = append(fns, fn)
		return id
	}
	zero := duration.Constant(0)

	s := g.AddNode("S")
	t := g.AddNode("T")
	r := &Thm41{
		Formula: f,
		Budget:  int64(f.NumVars + 2*len(f.Clauses)),
		Target:  1,
		source:  s,
		sink:    t,
	}

	for i := 0; i < f.NumVars; i++ {
		vg := VarGadget41{
			V1: g.AddNode(fmt.Sprintf("V%d_1", i)),
			V2: g.AddNode(fmt.Sprintf("V%d_2", i)),
			V3: g.AddNode(fmt.Sprintf("V%d_3", i)),
			V4: g.AddNode(fmt.Sprintf("V%d_4", i)),
			V5: g.AddNode(fmt.Sprintf("V%d_5", i)),
			V6: g.AddNode(fmt.Sprintf("V%d_6", i)),
		}
		ve := thm41VarEdges{
			sV1:  addEdge(s, vg.V1, zero),
			v1V2: addEdge(vg.V1, vg.V2, zeroOne()),
			v1V3: addEdge(vg.V1, vg.V3, zeroOne()),
			v2V4: addEdge(vg.V2, vg.V4, zero),
			v3V4: addEdge(vg.V3, vg.V4, zero),
			v4V5: addEdge(vg.V4, vg.V5, duration.MustStep(
				duration.Tuple{R: 0, T: 2}, duration.Tuple{R: 1, T: 0})),
			v5V6: addEdge(vg.V5, vg.V6, zero),
		}
		ve.v6T = addEdge(vg.V6, t, zero)
		r.Vars = append(r.Vars, vg)
		r.varEdges = append(r.varEdges, ve)
	}

	// litNode returns the variable-gadget vertex that finishes at time 0
	// exactly when literal l evaluates to val.
	litNode := func(l Literal, val bool) int {
		vg := r.Vars[l.Var]
		if l.Neg != val {
			return vg.V2 // needs the variable TRUE
		}
		return vg.V3 // needs the variable FALSE
	}

	for j, c := range f.Clauses {
		cg := ClauseGadget41{
			C1: g.AddNode(fmt.Sprintf("C%d_1", j)),
			C2: g.AddNode(fmt.Sprintf("C%d_2", j)),
			C3: g.AddNode(fmt.Sprintf("C%d_3", j)),
			C4: g.AddNode(fmt.Sprintf("C%d_4", j)),
		}
		cg.C5 = g.AddNode(fmt.Sprintf("C%d_5", j))
		cg.C6 = g.AddNode(fmt.Sprintf("C%d_6", j))
		cg.C7 = g.AddNode(fmt.Sprintf("C%d_7", j))
		cg.C8 = g.AddNode(fmt.Sprintf("C%d_8", j))
		cg.C9 = g.AddNode(fmt.Sprintf("C%d_9", j))
		cg.C10 = g.AddNode(fmt.Sprintf("C%d_10", j))

		ce := thm41ClauseEdges{
			sC1:   addEdge(s, cg.C1, zero),
			c1C2:  addEdge(cg.C1, cg.C2, zeroOne()),
			c2C4:  addEdge(cg.C2, cg.C4, zeroOne()),
			c1C3:  addEdge(cg.C1, cg.C3, zeroOne()),
			c3C4:  addEdge(cg.C3, cg.C4, zeroOne()),
			c4C5:  addEdge(cg.C4, cg.C5, zero),
			c4C6:  addEdge(cg.C4, cg.C6, zero),
			c4C7:  addEdge(cg.C4, cg.C7, zero),
			c5C8:  addEdge(cg.C5, cg.C8, zeroOne()),
			c6C9:  addEdge(cg.C6, cg.C9, zeroOne()),
			c7C10: addEdge(cg.C7, cg.C10, zeroOne()),
			c8T:   addEdge(cg.C8, t, zero),
			c9T:   addEdge(cg.C9, t, zero),
			c10T:  addEdge(cg.C10, t, zero),
		}
		// Pattern vertices: C5 checks (F,F,T) on the clause's literals,
		// C6 checks (F,T,F), C7 checks (T,F,F) - i.e. "only literal k/j/i
		// is true" - matching the paper's connection rule.
		patterns := [3][3]bool{
			{false, false, true},
			{false, true, false},
			{true, false, false},
		}
		targets := [3]int{cg.C5, cg.C6, cg.C7}
		for p := 0; p < 3; p++ {
			var lits [3]int
			for pos, want := range patterns[p] {
				lits[pos] = addEdge(litNode(c[pos], want), targets[p], zero)
			}
			switch p {
			case 0:
				ce.litC5 = lits
			case 1:
				ce.litC6 = lits
			case 2:
				ce.litC7 = lits
			}
		}
		r.Clauses = append(r.Clauses, cg)
		r.clauseEdges = append(r.clauseEdges, ce)
	}

	inst, err := core.NewInstance(g, fns)
	if err != nil {
		return nil, err
	}
	r.Inst = inst
	return r, nil
}

// WitnessFlow assembles the intended flow for a satisfying 1-in-3
// assignment (the forward direction of Lemma 4.2): one unit per variable
// along its chosen branch, two units per clause down the C1 chains and on
// to the two pattern vertices whose exit arcs need zeroing.
func (r *Thm41) WitnessFlow(assign []bool) ([]int64, error) {
	if len(assign) != r.Formula.NumVars {
		return nil, fmt.Errorf("reduction: %d assignments for %d variables", len(assign), r.Formula.NumVars)
	}
	f := make([]int64, r.Inst.G.NumEdges())
	for i, ve := range r.varEdges {
		f[ve.sV1]++
		if assign[i] {
			f[ve.v1V2]++
			f[ve.v2V4]++
		} else {
			f[ve.v1V3]++
			f[ve.v3V4]++
		}
		f[ve.v4V5]++
		f[ve.v5V6]++
		f[ve.v6T]++
	}
	for j, c := range r.Formula.Clauses {
		ce := r.clauseEdges[j]
		f[ce.sC1] += 2
		f[ce.c1C2]++
		f[ce.c2C4]++
		f[ce.c1C3]++
		f[ce.c3C4]++
		// Exactly one pattern vertex starts at 0; the other two receive
		// one unit each to zero their exit arcs.
		patternIdx := -1
		switch {
		case c[0].Eval(assign) && !c[1].Eval(assign) && !c[2].Eval(assign):
			patternIdx = 2 // C7 checks (T,F,F)
		case !c[0].Eval(assign) && c[1].Eval(assign) && !c[2].Eval(assign):
			patternIdx = 1 // C6 checks (F,T,F)
		case !c[0].Eval(assign) && !c[1].Eval(assign) && c[2].Eval(assign):
			patternIdx = 0 // C5 checks (F,F,T)
		default:
			return nil, fmt.Errorf("reduction: clause %d does not have exactly one true literal", j)
		}
		routes := [3]struct{ conduit, exit, out int }{
			{ce.c4C5, ce.c5C8, ce.c8T},
			{ce.c4C6, ce.c6C9, ce.c9T},
			{ce.c4C7, ce.c7C10, ce.c10T},
		}
		for p, route := range routes {
			if p == patternIdx {
				continue
			}
			f[route.conduit]++
			f[route.exit]++
			f[route.out]++
		}
	}
	return f, nil
}

// Table2Row reports the event times of the pattern vertices C5, C6, C7 of
// clause j under the witness routing of the given (not necessarily
// satisfying) assignment with only variable units placed - exactly what
// Table 2 tabulates.  The clause's two units are routed down the C1
// chains so C4 finishes at 0, as in the paper's analysis.
func (r *Thm41) Table2Row(j int, assign []bool) ([3]int64, error) {
	if j < 0 || j >= len(r.Clauses) {
		return [3]int64{}, fmt.Errorf("reduction: clause %d of %d", j, len(r.Clauses))
	}
	f := make([]int64, r.Inst.G.NumEdges())
	for i, ve := range r.varEdges {
		f[ve.sV1]++
		if assign[i] {
			f[ve.v1V2]++
			f[ve.v2V4]++
		} else {
			f[ve.v1V3]++
			f[ve.v3V4]++
		}
		f[ve.v4V5]++
		f[ve.v5V6]++
		f[ve.v6T]++
	}
	for _, ce := range r.clauseEdges {
		f[ce.sC1] += 2
		f[ce.c1C2]++
		f[ce.c2C4]++
		f[ce.c1C3]++
		f[ce.c3C4]++
		// Park the units on the first two conduits; conduits are free and
		// this does not touch pattern-vertex start times.
		f[ce.c4C5]++
		f[ce.c5C8]++
		f[ce.c8T]++
		f[ce.c4C6]++
		f[ce.c6C9]++
		f[ce.c9T]++
	}
	d, err := r.Inst.Durations(f)
	if err != nil {
		return [3]int64{}, err
	}
	times, err := r.Inst.G.EventTimes(d)
	if err != nil {
		return [3]int64{}, err
	}
	cg := r.Clauses[j]
	return [3]int64{times[cg.C5], times[cg.C6], times[cg.C7]}, nil
}

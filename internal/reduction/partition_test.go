package reduction

import (
	"math/rand"
	"testing"

	"repro/internal/exact"
)

func TestBestBalanceAndPerfectPartition(t *testing.T) {
	if got := BestBalance([]int64{1, 2, 3}); got != 3 {
		t.Fatalf("BestBalance(1,2,3) = %d; want 3", got)
	}
	if got := BestBalance([]int64{5, 1, 1}); got != 5 {
		t.Fatalf("BestBalance(5,1,1) = %d; want 5", got)
	}
	if !HasPerfectPartition([]int64{1, 2, 3}) {
		t.Fatal("1,2,3 should partition perfectly")
	}
	if HasPerfectPartition([]int64{1, 2, 4}) {
		t.Fatal("1,2,4 cannot partition perfectly")
	}
}

func TestBuildPartitionValidation(t *testing.T) {
	if _, err := BuildPartition(nil); err == nil {
		t.Fatal("want error for no items")
	}
	if _, err := BuildPartition([]int64{1, 0}); err == nil {
		t.Fatal("want error for non-positive item")
	}
}

func TestPartitionWitness(t *testing.T) {
	items := []int64{1, 2, 3}
	p, err := BuildPartition(items)
	if err != nil {
		t.Fatal(err)
	}
	// Put items {3} against {1,2}: both rails sum 3 = B/2.
	flow, err := p.WitnessFlow([]bool{false, false, true})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Inst.ValidateFlow(flow, p.Budget); err != nil {
		t.Fatalf("witness invalid: %v", err)
	}
	m, err := p.Inst.Makespan(flow)
	if err != nil {
		t.Fatal(err)
	}
	if m != p.Target {
		t.Fatalf("witness makespan = %d; want %d", m, p.Target)
	}
	if _, err := p.WitnessFlow([]bool{true}); err == nil {
		t.Fatal("want error for wrong choice length")
	}
}

// TestPartitionExactEqualsBestBalance is the machine verification of
// Section 4.3: the exact minimum makespan under budget B equals the best
// balanced-partition value; in particular it is B/2 iff a perfect
// partition exists.
func TestPartitionExactEqualsBestBalance(t *testing.T) {
	cases := [][]int64{
		{1, 2, 3},
		{1, 2, 4},
		{2, 2, 2},
		{3, 1, 1, 1},
		{5, 4, 3, 2},
	}
	for _, items := range cases {
		p, err := BuildPartition(items)
		if err != nil {
			t.Fatal(err)
		}
		sol, stats, err := exact.MinMakespan(p.Inst, p.Budget, &exact.Options{MaxNodes: 1 << 21})
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Complete {
			t.Skipf("items %v: incomplete after %d nodes", items, stats.Nodes)
		}
		want := BestBalance(items)
		if sol.Makespan != want {
			t.Fatalf("items %v: exact = %d; best balance = %d", items, sol.Makespan, want)
		}
	}
}

func TestPartitionRandomAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 5; trial++ {
		items := make([]int64, 3)
		for i := range items {
			items[i] = 1 + rng.Int63n(4)
		}
		p, err := BuildPartition(items)
		if err != nil {
			t.Fatal(err)
		}
		sol, stats, err := exact.MinMakespan(p.Inst, p.Budget, &exact.Options{MaxNodes: 1 << 21})
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Complete {
			continue
		}
		if want := BestBalance(items); sol.Makespan != want {
			t.Fatalf("items %v: exact = %d; want %d", items, sol.Makespan, want)
		}
	}
}

// TestPartitionTreeDecomposition validates the Figure 16 decomposition:
// correct on the construction's graph with width <= 15 regardless of n.
func TestPartitionTreeDecomposition(t *testing.T) {
	for _, n := range []int{1, 3, 8, 20} {
		items := make([]int64, n)
		for i := range items {
			items[i] = int64(i + 1)
		}
		p, err := BuildPartition(items)
		if err != nil {
			t.Fatal(err)
		}
		td := p.Decomposition()
		if err := td.Validate(p.Inst.G); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if w := td.Width(); w > 15 {
			t.Fatalf("n=%d: width %d exceeds the paper's bound of 15", n, w)
		}
	}
}

func TestTreeDecompositionValidatorCatchesErrors(t *testing.T) {
	p, err := BuildPartition([]int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	td := p.Decomposition()

	bad := &TreeDecomposition{Bags: td.Bags[:1], Parent: td.Parent[:1]}
	if err := bad.Validate(p.Inst.G); err == nil {
		t.Fatal("want error for uncovered vertices")
	}
	// Disconnect a vertex's bags: give the second bag a bogus parent
	// chain by removing the shared globals from the middle.  Simpler:
	// corrupt parents so bags of s are disconnected.
	if len(td.Bags) == 2 {
		bad2 := &TreeDecomposition{
			Bags:   [][]int{td.Bags[0], {0}, td.Bags[1]},
			Parent: []int{-1, 0, 1},
		}
		// Vertex 0 (s) appears in bags 0, 1, 2 (still connected); vertex
		// v0 appears in bags 0 and 2 only: disconnected through bag 1.
		if err := bad2.Validate(p.Inst.G); err == nil {
			t.Fatal("want connectivity error")
		}
	}
	mismatch := &TreeDecomposition{Bags: td.Bags, Parent: td.Parent[:1]}
	if err := mismatch.Validate(p.Inst.G); err == nil {
		t.Fatal("want error for bag/parent mismatch")
	}
}

package reduction

import (
	"fmt"

	"repro/internal/dag"
)

// TreeDecomposition is a tree decomposition of (the undirected version of)
// a DAG.  Bags[i] lists vertices; Parent[i] is the tree parent of bag i
// (-1 for the root).  See Section 4.3, footnote 2.
type TreeDecomposition struct {
	Bags   [][]int
	Parent []int
}

// Width returns max bag size minus one.
func (td *TreeDecomposition) Width() int {
	w := 0
	for _, b := range td.Bags {
		if len(b) > w {
			w = len(b)
		}
	}
	return w - 1
}

// Validate checks the three tree-decomposition conditions against g:
// every vertex appears in some bag, every edge has both endpoints in some
// bag, and for every vertex the bags containing it induce a connected
// subtree.
func (td *TreeDecomposition) Validate(g *dag.Graph) error {
	if len(td.Bags) != len(td.Parent) {
		return fmt.Errorf("reduction: %d bags but %d parent entries", len(td.Bags), len(td.Parent))
	}
	n := g.NumNodes()
	inBag := make([][]int, n) // vertex -> bags containing it
	for b, bag := range td.Bags {
		for _, v := range bag {
			if v < 0 || v >= n {
				return fmt.Errorf("reduction: bag %d contains missing vertex %d", b, v)
			}
			inBag[v] = append(inBag[v], b)
		}
	}
	for v := 0; v < n; v++ {
		if len(inBag[v]) == 0 {
			return fmt.Errorf("reduction: vertex %d (%s) in no bag", v, g.Name(v))
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(e)
		found := false
		for _, bag := range td.Bags {
			hasU, hasV := false, false
			for _, v := range bag {
				if v == ed.From {
					hasU = true
				}
				if v == ed.To {
					hasV = true
				}
			}
			if hasU && hasV {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("reduction: edge %d (%d->%d) covered by no bag", e, ed.From, ed.To)
		}
	}
	// Connectivity: the bags holding v must form a subtree.  Count, for
	// each vertex, the bags holding it whose parent also holds it; a
	// connected subtree with k nodes has exactly k-1 such child bags.
	for v := 0; v < n; v++ {
		bags := inBag[v]
		holds := make(map[int]bool, len(bags))
		for _, b := range bags {
			holds[b] = true
		}
		linked := 0
		for _, b := range bags {
			if p := td.Parent[b]; p >= 0 && holds[p] {
				linked++
			}
		}
		if linked != len(bags)-1 {
			return fmt.Errorf("reduction: bags of vertex %d (%s) are not connected", v, g.Name(v))
		}
	}
	return nil
}

// Package reduction implements the hardness constructions of Section 4 and
// Appendix A of Das et al. (SPAA 2019) and machine-verifies them against
// brute-force reference solvers and the exact branch-and-bound optimizer:
//
//   - Theorem 4.1: 1-in-3SAT -> resource-time DAG with general
//     non-increasing duration functions (Figures 8-9, Table 2);
//   - Theorem 4.3: the factor-2 makespan inapproximability gap;
//   - Theorem 4.4: the factor-3/2 resource gap via chained gadgets
//     (Figures 10-11; realized here as an equivalent 3SAT chain whose
//     2-versus-3-unit gap is verified exactly);
//   - Section 4.2: composite-node gadgets proving hardness for recursive
//     binary and k-way splitting (Figures 12-14, Table 3);
//   - Section 4.3: Partition -> bounded-treewidth instances
//     (Figures 15-16) with an explicit width-<=15-style tree decomposition;
//   - Appendix A: numerical 3-dimensional matching via bipartite matcher
//     gadgets (Figures 17-18).
package reduction

import (
	"errors"
	"fmt"
)

// Literal is a possibly negated propositional variable (0-based).
type Literal struct {
	Var int
	Neg bool
}

func (l Literal) String() string {
	if l.Neg {
		return fmt.Sprintf("!x%d", l.Var)
	}
	return fmt.Sprintf("x%d", l.Var)
}

// Eval returns the literal's value under an assignment.
func (l Literal) Eval(assign []bool) bool { return assign[l.Var] != l.Neg }

// Clause is a disjunction of exactly three literals.
type Clause [3]Literal

// Formula is a 3-CNF formula.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// Validate checks variable indices.
func (f Formula) Validate() error {
	if f.NumVars <= 0 {
		return errors.New("reduction: formula needs at least one variable")
	}
	for i, c := range f.Clauses {
		for _, l := range c {
			if l.Var < 0 || l.Var >= f.NumVars {
				return fmt.Errorf("reduction: clause %d references variable %d of %d", i, l.Var, f.NumVars)
			}
		}
	}
	return nil
}

// trueCount returns how many literals of c are true under assign.
func (c Clause) trueCount(assign []bool) int {
	n := 0
	for _, l := range c {
		if l.Eval(assign) {
			n++
		}
	}
	return n
}

// assignments iterates over all 2^n assignments, calling fn until it
// returns true; it reports whether fn ever did.
func assignments(n int, fn func(assign []bool) bool) bool {
	assign := make([]bool, n)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == n {
			return fn(assign)
		}
		assign[i] = false
		if rec(i + 1) {
			return true
		}
		assign[i] = true
		return rec(i + 1)
	}
	return rec(0)
}

// OneInThreeSatisfiable brute-forces the 1-in-3SAT question: is there an
// assignment making exactly one literal of every clause true?
func (f Formula) OneInThreeSatisfiable() ([]bool, bool) {
	var witness []bool
	ok := assignments(f.NumVars, func(assign []bool) bool {
		for _, c := range f.Clauses {
			if c.trueCount(assign) != 1 {
				return false
			}
		}
		witness = append([]bool(nil), assign...)
		return true
	})
	return witness, ok
}

// Satisfiable brute-forces ordinary 3SAT: at least one true literal per
// clause.
func (f Formula) Satisfiable() ([]bool, bool) {
	var witness []bool
	ok := assignments(f.NumVars, func(assign []bool) bool {
		for _, c := range f.Clauses {
			if c.trueCount(assign) == 0 {
				return false
			}
		}
		witness = append([]bool(nil), assign...)
		return true
	})
	return witness, ok
}

// Pos and Neg are literal constructors.
func Pos(v int) Literal { return Literal{Var: v} }

// Neg returns the negated literal of variable v.
func Neg(v int) Literal { return Literal{Var: v, Neg: true} }

// Figure9Formula is the worked example of Figure 9:
// (V1 or !V2 or V3) and (!V1 or V2 or V3), 1-in-3 satisfiable with
// V1 = V2 = TRUE, V3 = FALSE.
func Figure9Formula() Formula {
	return Formula{
		NumVars: 3,
		Clauses: []Clause{
			{Pos(0), Neg(1), Pos(2)},
			{Neg(0), Pos(1), Pos(2)},
		},
	}
}

// UnsatOneInThreeFormula is a small formula with no exactly-one-true
// assignment: (x or y or z) paired with (!x or !y or !z) - one true among
// the positives forces two true among the negations.
func UnsatOneInThreeFormula() Formula {
	return Formula{
		NumVars: 3,
		Clauses: []Clause{
			{Pos(0), Pos(1), Pos(2)},
			{Neg(0), Neg(1), Neg(2)},
		},
	}
}

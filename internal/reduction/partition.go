package reduction

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/duration"
)

// PartitionInstance is the Section 4.3 construction (Figure 15): given
// items s_1..s_n with total B, a bounded-treewidth instance whose exact
// minimum makespan under budget B equals the best balanced-partition value
// min over subsets S of max(sum(S), B - sum(S)); in particular makespan
// B/2 is reachable iff the items admit a perfect partition, giving weak
// NP-hardness on graphs of constant treewidth.
//
// Layout per item i: an M-arc (s, f_i) = {<0,M>,<s_i,0>} pins s_i units to
// the item; they cross either the top rail's segment or the bottom rail's
// segment - zeroing it - and are then funneled to v0 by another M-arc
// (h_i, v0) = {<0,M>,<s_i,0>}, which stops them from helping any later
// item (Figure 15's v0).  Whichever rail segment keeps its duration s_i
// charges that item to its side of the partition; the makespan is the
// longer rail.
type PartitionInstance struct {
	Items  []int64
	Inst   *core.Instance
	Budget int64 // sum of items
	Target int64 // Budget / 2 (only meaningful when Budget is even)

	source, v0, sink int
	feed             []int // (s, f_i)
	topIn, topArc    []int // (f_i, xT_i), (xT_i, yT_i)
	botIn, botArc    []int
	topOut, botOut   []int // (yT_i, h_i), (yB_i, h_i)
	funnel           []int // (h_i, v0)
	railTopNodes     []int // yT_0 .. yT_n (rail anchors)
	railBotNodes     []int
	itemNodes        [][6]int // f, xT, yT, xB, yB, h
}

// BuildPartition constructs the Section 4.3 instance.
func BuildPartition(items []int64) (*PartitionInstance, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("reduction: partition needs items")
	}
	var total int64
	for i, s := range items {
		if s <= 0 {
			return nil, fmt.Errorf("reduction: item %d is %d; want positive", i, s)
		}
		total += s
	}
	bigM := total + 1

	g := dag.New()
	var fns []duration.Func
	addEdge := func(u, v int, fn duration.Func) int {
		id := g.AddEdge(u, v)
		fns = append(fns, fn)
		return id
	}
	zero := duration.Constant(0)
	mArc := func(need int64) duration.Func {
		return duration.MustStep(duration.Tuple{R: 0, T: bigM}, duration.Tuple{R: need, T: 0})
	}
	railArc := func(s int64) duration.Func {
		return duration.MustStep(duration.Tuple{R: 0, T: s}, duration.Tuple{R: s, T: 0})
	}

	s := g.AddNode("s")
	t := g.AddNode("t")
	v0 := g.AddNode("v0")
	p := &PartitionInstance{
		Items:  append([]int64(nil), items...),
		Budget: total,
		Target: total / 2,
		source: s,
		v0:     v0,
		sink:   t,
	}

	prevTop := g.AddNode("T0")
	prevBot := g.AddNode("B0")
	p.railTopNodes = append(p.railTopNodes, prevTop)
	p.railBotNodes = append(p.railBotNodes, prevBot)
	addEdge(s, prevTop, zero)
	addEdge(s, prevBot, zero)

	for i, si := range items {
		f := g.AddNode(fmt.Sprintf("f%d", i))
		xT := g.AddNode(fmt.Sprintf("xT%d", i))
		yT := g.AddNode(fmt.Sprintf("yT%d", i))
		xB := g.AddNode(fmt.Sprintf("xB%d", i))
		yB := g.AddNode(fmt.Sprintf("yB%d", i))
		h := g.AddNode(fmt.Sprintf("h%d", i))
		p.itemNodes = append(p.itemNodes, [6]int{f, xT, yT, xB, yB, h})

		p.feed = append(p.feed, addEdge(s, f, mArc(si)))
		addEdge(prevTop, xT, zero)
		addEdge(prevBot, xB, zero)
		p.topIn = append(p.topIn, addEdge(f, xT, zero))
		p.botIn = append(p.botIn, addEdge(f, xB, zero))
		p.topArc = append(p.topArc, addEdge(xT, yT, railArc(si)))
		p.botArc = append(p.botArc, addEdge(xB, yB, railArc(si)))
		p.topOut = append(p.topOut, addEdge(yT, h, zero))
		p.botOut = append(p.botOut, addEdge(yB, h, zero))
		p.funnel = append(p.funnel, addEdge(h, v0, mArc(si)))

		prevTop, prevBot = yT, yB
		p.railTopNodes = append(p.railTopNodes, yT)
		p.railBotNodes = append(p.railBotNodes, yB)
	}
	addEdge(prevTop, t, zero)
	addEdge(prevBot, t, zero)
	addEdge(v0, t, zero)

	inst, err := core.NewInstance(g, fns)
	if err != nil {
		return nil, err
	}
	p.Inst = inst
	return p, nil
}

// WitnessFlow routes each item's units across the rail chosen by inTop and
// returns the resulting flow (value exactly Budget).
func (p *PartitionInstance) WitnessFlow(inTop []bool) ([]int64, error) {
	if len(inTop) != len(p.Items) {
		return nil, fmt.Errorf("reduction: %d choices for %d items", len(inTop), len(p.Items))
	}
	f := make([]int64, p.Inst.G.NumEdges())
	for i, si := range p.Items {
		f[p.feed[i]] += si
		if inTop[i] {
			f[p.topIn[i]] += si
			f[p.topArc[i]] += si
			f[p.topOut[i]] += si
		} else {
			f[p.botIn[i]] += si
			f[p.botArc[i]] += si
			f[p.botOut[i]] += si
		}
		f[p.funnel[i]] += si
	}
	// v0 -> t carries everything out.
	out := p.Inst.G.Out(p.v0)
	f[out[0]] = p.Budget
	return f, nil
}

// Note the rail arc zeroed by an item is the one its units cross, so the
// item charges s_i to the *other* rail: choosing inTop[i] = true in
// WitnessFlow puts item i's duration on the bottom rail.  BestBalance
// below is orientation-agnostic (max of the two sides).

// BestBalance brute-forces the optimal balanced partition value
// min over subsets of max(sum, total-sum).
func BestBalance(items []int64) int64 {
	var total int64
	for _, s := range items {
		total += s
	}
	best := total
	for mask := 0; mask < 1<<uint(len(items)); mask++ {
		var sum int64
		for i := range items {
			if mask&(1<<uint(i)) != 0 {
				sum += items[i]
			}
		}
		m := sum
		if total-sum > m {
			m = total - sum
		}
		if m < best {
			best = m
		}
	}
	return best
}

// HasPerfectPartition reports whether the items split into two halves of
// equal sum.
func HasPerfectPartition(items []int64) bool {
	var total int64
	for _, s := range items {
		total += s
	}
	return total%2 == 0 && BestBalance(items) == total/2
}

// Decomposition returns the explicit bounded-width tree decomposition of
// the construction (Figure 16): a path of bags, one per item, each
// holding the item's six vertices, the rail anchors on both sides, and
// the three global vertices s, v0, t.  Width is 12, independent of n -
// within the paper's bound of 15.
func (p *PartitionInstance) Decomposition() *TreeDecomposition {
	td := &TreeDecomposition{}
	for i := range p.Items {
		seen := make(map[int]bool)
		var bag []int
		add := func(vs ...int) {
			for _, v := range vs {
				if !seen[v] {
					seen[v] = true
					bag = append(bag, v)
				}
			}
		}
		add(p.source, p.v0, p.sink,
			p.railTopNodes[i], p.railBotNodes[i],
			p.railTopNodes[i+1], p.railBotNodes[i+1])
		add(p.itemNodes[i][0], p.itemNodes[i][1], p.itemNodes[i][2],
			p.itemNodes[i][3], p.itemNodes[i][4], p.itemNodes[i][5])
		td.Bags = append(td.Bags, bag)
		td.Parent = append(td.Parent, i-1)
	}
	return td
}

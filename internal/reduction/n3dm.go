package reduction

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/duration"
)

// N3DM is a numerical 3-dimensional matching instance: partition
// A u B u C into n triples (a_i, b_j, c_k) each summing to
// T = (sum A + sum B + sum C) / n.
type N3DM struct {
	A, B, C []int64
}

// Validate checks shape and divisibility.
func (p N3DM) Validate() error {
	n := len(p.A)
	if n == 0 || len(p.B) != n || len(p.C) != n {
		return fmt.Errorf("reduction: 3DM needs three equal-size lists, got %d/%d/%d",
			len(p.A), len(p.B), len(p.C))
	}
	if p.Total()%int64(n) != 0 {
		return fmt.Errorf("reduction: total %d not divisible by n=%d", p.Total(), n)
	}
	return nil
}

// Total returns sum(A) + sum(B) + sum(C).
func (p N3DM) Total() int64 {
	var t int64
	for _, v := range p.A {
		t += v
	}
	for _, v := range p.B {
		t += v
	}
	for _, v := range p.C {
		t += v
	}
	return t
}

// TripleTarget returns the per-triple sum T.
func (p N3DM) TripleTarget() int64 { return p.Total() / int64(len(p.A)) }

// Solve brute-forces the matching: it returns permutations sigma, rho with
// a_i + b_sigma(i) + c_rho(i) = T for all i, or ok = false.
func (p N3DM) Solve() (sigma, rho []int, ok bool) {
	if err := p.Validate(); err != nil {
		return nil, nil, false
	}
	n := len(p.A)
	target := p.TripleTarget()
	sigma = make([]int, n)
	rho = make([]int, n)
	usedB := make([]bool, n)
	usedC := make([]bool, n)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == n {
			return true
		}
		for j := 0; j < n; j++ {
			if usedB[j] {
				continue
			}
			for k := 0; k < n; k++ {
				if usedC[k] || p.A[i]+p.B[j]+p.C[k] != target {
					continue
				}
				usedB[j], usedC[k] = true, true
				sigma[i], rho[i] = j, k
				if rec(i + 1) {
					return true
				}
				usedB[j], usedC[k] = false, false
			}
		}
		return false
	}
	if !rec(0) {
		return nil, nil, false
	}
	return sigma, rho, true
}

// matcher records the edge IDs of one bipartite matcher gadget
// (Figure 17) between n input nodes and n output nodes.
type matcher struct {
	yij  [][]int // y^j_i node for row i, column j
	yRow []int   // y_i
	zCol []int   // z'_j
	// Edges.
	inY    [][]int // (x_i, y^j_i)
	yToRow [][]int // (y^j_i, y_i)
	yToCol [][]int // (y^j_i, z'_j)
	rowOut []int   // (y_i, out_i)
	colOut []int   // (z'_j, out_j)
}

// N3DMInstance is the Appendix A reduction (Figure 18): makespan
// 2M + T is reachable with budget n^2 iff the 3DM instance is solvable.
type N3DMInstance struct {
	Problem N3DM
	Inst    *core.Instance
	Budget  int64 // n^2
	Target  int64 // 2M + T
	M       int64

	aArc, bArc, cArc []int
	m1, m2           *matcher
}

// BuildN3DM constructs the reduction; n must be at least 2 (the matcher
// needs n-1 > 0 units on its column arcs).
func BuildN3DM(p N3DM) (*N3DMInstance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.A)
	if n < 2 {
		return nil, fmt.Errorf("reduction: 3DM reduction needs n >= 2, got %d", n)
	}
	var maxA, maxB, maxC int64
	for i := 0; i < n; i++ {
		maxA = max64(maxA, p.A[i])
		maxB = max64(maxB, p.B[i])
		maxC = max64(maxC, p.C[i])
	}
	bigM := maxA + maxB + maxC + 1

	g := dag.New()
	var fns []duration.Func
	addEdge := func(u, v int, fn duration.Func) int {
		id := g.AddEdge(u, v)
		fns = append(fns, fn)
		return id
	}
	// Every forced arc takes M unresourced; M exceeds any a+b+c, so a
	// path is within the target exactly when it crosses at most the two
	// intended withheld matcher arcs (see Lemma A.1).
	need := func(r, t int64) duration.Func {
		return duration.MustStep(duration.Tuple{R: 0, T: bigM}, duration.Tuple{R: r, T: t})
	}

	s := g.AddNode("s")
	t := g.AddNode("t")
	r := &N3DMInstance{
		Problem: p,
		Budget:  int64(n * n),
		Target:  2*bigM + p.TripleTarget(),
		M:       bigM,
	}

	// a-layer: (s, a_i) carries n units and takes a_i time.
	aNodes := make([]int, n)
	for i := 0; i < n; i++ {
		aNodes[i] = g.AddNode(fmt.Sprintf("a%d", i))
		r.aArc = append(r.aArc, addEdge(s, aNodes[i], need(int64(n), p.A[i])))
	}

	buildMatcher := func(in []int, label string) (*matcher, []int) {
		m := &matcher{}
		out := make([]int, n)
		for i := 0; i < n; i++ {
			out[i] = g.AddNode(fmt.Sprintf("%s_z%d", label, i))
		}
		m.yij = make([][]int, n)
		m.inY = make([][]int, n)
		m.yToRow = make([][]int, n)
		m.yToCol = make([][]int, n)
		for i := 0; i < n; i++ {
			m.yij[i] = make([]int, n)
			m.inY[i] = make([]int, n)
			m.yToRow[i] = make([]int, n)
			m.yToCol[i] = make([]int, n)
			for j := 0; j < n; j++ {
				m.yij[i][j] = g.AddNode(fmt.Sprintf("%s_y%d_%d", label, i, j))
			}
		}
		for i := 0; i < n; i++ {
			m.yRow = append(m.yRow, g.AddNode(fmt.Sprintf("%s_yr%d", label, i)))
		}
		for j := 0; j < n; j++ {
			m.zCol = append(m.zCol, g.AddNode(fmt.Sprintf("%s_zc%d", label, j)))
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.inY[i][j] = addEdge(in[i], m.yij[i][j], need(1, 0))
				m.yToRow[i][j] = addEdge(m.yij[i][j], m.yRow[i], duration.Constant(0))
				m.yToCol[i][j] = addEdge(m.yij[i][j], m.zCol[j], need(1, 0))
			}
		}
		for i := 0; i < n; i++ {
			m.rowOut = append(m.rowOut, addEdge(m.yRow[i], out[i], need(1, 0)))
		}
		for j := 0; j < n; j++ {
			m.colOut = append(m.colOut, addEdge(m.zCol[j], out[j], need(int64(n-1), 0)))
		}
		return m, out
	}

	var bIn []int
	r.m1, bIn = buildMatcher(aNodes, "m1")
	// b-layer: (b_j, b'_j) carries n units and takes b_j time.
	bNodes := make([]int, n)
	for j := 0; j < n; j++ {
		bNodes[j] = g.AddNode(fmt.Sprintf("b%d", j))
		r.bArc = append(r.bArc, addEdge(bIn[j], bNodes[j], need(int64(n), p.B[j])))
	}
	var cIn []int
	r.m2, cIn = buildMatcher(bNodes, "m2")
	// c-layer: (c_k, t) carries n units and takes c_k time.
	for k := 0; k < n; k++ {
		r.cArc = append(r.cArc, addEdge(cIn[k], t, need(int64(n), p.C[k])))
	}

	inst, err := core.NewInstance(g, fns)
	if err != nil {
		return nil, err
	}
	r.Inst = inst
	return r, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// routeMatcher adds the flow realizing a given permutation through a
// matcher: row i withholds column perm[i] (sending that unit to its row
// collector) and feeds every other column.
func (m *matcher) routeMatcher(f []int64, perm []int) {
	n := len(perm)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			f[m.inY[i][j]]++
			if j == perm[i] {
				f[m.yToRow[i][j]]++
			} else {
				f[m.yToCol[i][j]]++
			}
		}
		f[m.rowOut[i]]++
	}
	for j := 0; j < n; j++ {
		f[m.colOut[j]] += int64(n - 1)
	}
}

// WitnessFlow realizes the matching (sigma, rho) as a flow of value n^2
// achieving the target makespan.
func (r *N3DMInstance) WitnessFlow(sigma, rho []int) ([]int64, error) {
	n := len(r.Problem.A)
	if len(sigma) != n || len(rho) != n {
		return nil, fmt.Errorf("reduction: permutation sizes %d/%d for n=%d", len(sigma), len(rho), n)
	}
	f := make([]int64, r.Inst.G.NumEdges())
	for i := 0; i < n; i++ {
		f[r.aArc[i]] += int64(n)
	}
	r.m1.routeMatcher(f, sigma)
	for j := 0; j < n; j++ {
		f[r.bArc[j]] += int64(n)
	}
	// The second matcher's row i is b-column i; it must withhold the
	// column rho(sigma^{-1}(...)): b_j pairs with c_k when sigma(i) = j
	// and rho(i) = k, i.e. perm2[j] = rho(sigma^{-1}(j)).
	perm2 := make([]int, n)
	for i := 0; i < n; i++ {
		perm2[sigma[i]] = rho[i]
	}
	r.m2.routeMatcher(f, perm2)
	for k := 0; k < n; k++ {
		f[r.cArc[k]] += int64(n)
	}
	return f, nil
}

package reduction

import (
	"fmt"

	"repro/internal/racesim"
)

// This file implements Section 4.2: strong NP-hardness when duration
// functions are restricted to recursive binary or k-way splitting.  The
// gadgets live in the fine-grained machine model of Section 1 (unit-time
// serialized updates), so they are built as racesim traces and analyzed
// with the discrete-event simulator; works are in-degrees and "earliest
// finish times" are the quantities Table 3 tabulates.
//
// Composite node (Figure 12): order k takes k+2 time without resources
// and k/2+4 with 2 units (either reducer class).  Variable gadget
// (Figure 13): the chosen branch's composite plus the shared order-8x
// composite consume the gadget's 2 units, making the chosen literal
// vertex finish at 5x+5 and the other at 6x+3.  Clause gadget
// (Figure 14): order-8x composites C2, C3 feed C4; pattern vertices
// C5/C6/C7 receive three literal writes each; their order-2x composites
// need 2 units each unless the pattern vertex started early, which happens
// for exactly one of them iff the clause has exactly one true literal.
// Chains of length 7x+11 from the source mask the finish times at
// C11/C12/C13 to exactly 7x+12, and a height-y binary reducer at the sink
// collects all gadget outputs.
//
// One bookkeeping note: the paper states the overall target as
// 7x + 2y + 12, accounting the sink reducer's collection phase at a flat
// 2y; under the exact DES semantics the height-y full-tree reducer's
// finish depends on how its leaves pipeline the staggered arrivals
// (variable outputs land at 7x+11, clause outputs at 7x+12), so the
// target here is *calibrated*: BuildSec42 simulates a reference sink
// whose writers arrive at exactly those ideal times and uses its finish
// time (7x + 2y + 12 plus or minus a unit) as Target.  All interior
// quantities (Table 3, the 5x+5/6x+3 literal times, the 4x+7 and
// 7x+9/7x+10/7x+12 clause times) match the paper exactly.
type Sec42 struct {
	Formula Formula
	X, Y    int64
	Budget  int64 // 2n + 4m units, reused over paths
	Target  int64 // 7x + 13 + 2y (see note above)

	Trace *racesim.Trace // base trace, sink reducer not yet applied
	Vars  []Sec42Var
	Cls   []Sec42Clause
	Sink  int
	// source cell (never updated, final at 0)
	Source int
}

// Sec42Var records the cells of one variable gadget.
type Sec42Var struct {
	V1     int
	V2Sink int // order-2x composite on the TRUE branch
	V3Sink int // order-2x composite on the FALSE branch
	V5     int // end of the TRUE branch chain (writes literal V into clauses)
	V6     int // end of the FALSE branch chain (writes literal not-V)
	G      int
	V4Sink int // order-8x composite shared by both branches
	V7     int
}

// Sec42Clause records the cells of one clause gadget.
type Sec42Clause struct {
	C1             int
	C2Sink, C3Sink int // order-8x composites
	C4             int
	C5, C6, C7     int // pattern vertices
	C8Sink         int // order-2x composite after C5
	C9Sink         int // after C6
	C10Sink        int // after C7
	C11, C12, C13  int
}

// addCell appends a cell to the trace.
func addCell(tr *racesim.Trace) int {
	id := tr.NumCells
	tr.NumCells++
	return id
}

// addUpdate appends an update dst <- src.
func addUpdate(tr *racesim.Trace, dst, src int) {
	tr.Updates = append(tr.Updates, racesim.Update{Dst: dst, Srcs: []int{src}})
}

// addComposite builds an order-k composite node fed by one update from
// `from` and returns its sink cell (v_{k+2} in Figure 12).
func addComposite(tr *racesim.Trace, from int, k int64) int {
	v1 := addCell(tr)
	addUpdate(tr, v1, from)
	sink := addCell(tr)
	for i := int64(0); i < k; i++ {
		mid := addCell(tr)
		addUpdate(tr, mid, v1)
		addUpdate(tr, sink, mid)
	}
	return sink
}

// addChain builds a chain of length cells, each updated once by its
// predecessor, starting from `from`; it returns the last cell.
func addChain(tr *racesim.Trace, from int, length int64) int {
	cur := from
	for i := int64(0); i < length; i++ {
		next := addCell(tr)
		addUpdate(tr, next, cur)
		cur = next
	}
	return cur
}

// nextPow2Log returns the smallest y with 2^y >= w (y >= 1).
func nextPow2Log(w int64) int64 {
	y := int64(1)
	for (int64(1) << uint(y)) < w {
		y++
	}
	return y
}

// calibrateTarget simulates the reference sink collector: n variable
// outputs made final at exactly 7x+11, then 3m clause outputs at 7x+12,
// writing into the sink in construction order through the height-y
// full-tree reducer.  The finish time is the makespan every fully
// resourced, clause-passing routing attains.
func calibrateTarget(n, m, x, y int64) (int64, error) {
	tr := &racesim.Trace{}
	s := addCell(tr)
	sink := addCell(tr)
	var writers []int
	for i := int64(0); i < n; i++ {
		writers = append(writers, addChain(tr, s, 7*x+11)) // final at 7x+11
	}
	for j := int64(0); j < 3*m; j++ {
		writers = append(writers, addChain(tr, s, 7*x+12))
	}
	for _, w := range writers {
		addUpdate(tr, sink, w)
	}
	// The variable chains above are length 7x+11, finishing at 7x+11;
	// clause chains 7x+12.
	rt, err := racesim.WithBinaryReducer(tr, sink, int(y), racesim.FullTree)
	if err != nil {
		return 0, err
	}
	res, err := racesim.Simulate(rt, 0)
	if err != nil {
		return 0, err
	}
	return res.FinishTime, nil
}

// BuildSec42 constructs the Section 4.2 reduction for formula f.
func BuildSec42(f Formula) (*Sec42, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if len(f.Clauses) == 0 {
		return nil, fmt.Errorf("reduction: section 4.2 needs at least one clause")
	}
	n, m := int64(f.NumVars), int64(len(f.Clauses))
	y := nextPow2Log(n + 3*m)
	x := 2*y + 13
	if x < 8 {
		x = 8
	}

	target, err := calibrateTarget(n, m, x, y)
	if err != nil {
		return nil, err
	}
	tr := &racesim.Trace{}
	s := addCell(tr) // source cell: no updates, final at 0
	c := &Sec42{
		Formula: f,
		X:       x,
		Y:       y,
		Budget:  2*n + 4*m,
		Target:  target,
		Trace:   tr,
		Source:  s,
	}

	for i := int64(0); i < n; i++ {
		var vg Sec42Var
		vg.V1 = addCell(tr)
		addUpdate(tr, vg.V1, s)
		vg.V2Sink = addComposite(tr, vg.V1, 2*x)
		vg.V3Sink = addComposite(tr, vg.V1, 2*x)
		// First chain cells double as the G feeders.
		cT := addCell(tr)
		addUpdate(tr, cT, vg.V2Sink)
		cF := addCell(tr)
		addUpdate(tr, cF, vg.V3Sink)
		vg.V5 = addChain(tr, cT, 4*x-1)
		vg.V6 = addChain(tr, cF, 4*x-1)
		vg.G = addCell(tr)
		addUpdate(tr, vg.G, cT)
		addUpdate(tr, vg.G, cF)
		vg.V4Sink = addComposite(tr, vg.G, 8*x)
		vg.V7 = addChain(tr, vg.V4Sink, x+2)
		c.Vars = append(c.Vars, vg)
	}

	for _, cl := range f.Clauses {
		var cg Sec42Clause
		cg.C1 = addCell(tr)
		addUpdate(tr, cg.C1, s)
		cg.C2Sink = addComposite(tr, cg.C1, 8*x)
		cg.C3Sink = addComposite(tr, cg.C1, 8*x)
		cg.C4 = addCell(tr)
		addUpdate(tr, cg.C4, cg.C2Sink)
		addUpdate(tr, cg.C4, cg.C3Sink)

		// Pattern vertices: C5 checks (F,F,T), C6 (F,T,F), C7 (T,F,F).
		patterns := [3][3]bool{
			{false, false, true},
			{false, true, false},
			{true, false, false},
		}
		pat := make([]int, 3)
		for p := 0; p < 3; p++ {
			pv := addCell(tr)
			pat[p] = pv
			addUpdate(tr, pv, cg.C4)
			for pos, want := range patterns[p] {
				lit := cl[pos]
				vg := c.Vars[lit.Var]
				// The literal vertex that finishes early (5x+5) exactly
				// when literal position pos evaluates to `want`.
				var writer int
				if lit.Neg != want {
					writer = vg.V5 // early iff the variable is TRUE
				} else {
					writer = vg.V6 // early iff the variable is FALSE
				}
				addUpdate(tr, pv, writer)
			}
		}
		cg.C5, cg.C6, cg.C7 = pat[0], pat[1], pat[2]
		cg.C8Sink = addComposite(tr, cg.C5, 2*x)
		cg.C9Sink = addComposite(tr, cg.C6, 2*x)
		cg.C10Sink = addComposite(tr, cg.C7, 2*x)

		for p, comp := range []int{cg.C8Sink, cg.C9Sink, cg.C10Sink} {
			mask := addCell(tr)
			chainEnd := addChain(tr, s, 7*x+11)
			addUpdate(tr, mask, comp)
			addUpdate(tr, mask, chainEnd)
			switch p {
			case 0:
				cg.C11 = mask
			case 1:
				cg.C12 = mask
			case 2:
				cg.C13 = mask
			}
		}
		c.Cls = append(c.Cls, cg)
	}

	// Sink: every gadget output writes t once; a height-y full-tree
	// reducer is part of the construction.
	c.Sink = addCell(tr)
	for _, vg := range c.Vars {
		addUpdate(tr, c.Sink, vg.V7)
	}
	for _, cg := range c.Cls {
		addUpdate(tr, c.Sink, cg.C11)
		addUpdate(tr, c.Sink, cg.C12)
		addUpdate(tr, c.Sink, cg.C13)
	}
	return c, nil
}

// RoutedTrace returns the trace with 2-unit k-way reducers placed per the
// assignment: on each variable's chosen-branch composite and its shared
// composite, on every clause's C2/C3 composites, and on the two pattern
// composites not left uncovered (uncovered[j] in {0,1,2} picks the one
// that receives no resource).  The sink reducer is always applied.
func (c *Sec42) RoutedTrace(assign []bool, uncovered []int) (*racesim.Trace, error) {
	if len(assign) != c.Formula.NumVars {
		return nil, fmt.Errorf("reduction: %d assignments for %d variables", len(assign), c.Formula.NumVars)
	}
	if len(uncovered) != len(c.Cls) {
		return nil, fmt.Errorf("reduction: %d cover choices for %d clauses", len(uncovered), len(c.Cls))
	}
	tr := c.Trace
	var err error
	split := func(cell int) {
		if err != nil {
			return
		}
		tr, err = racesim.WithKWaySplit(tr, cell, 2)
	}
	for i, vg := range c.Vars {
		if assign[i] {
			split(vg.V2Sink)
		} else {
			split(vg.V3Sink)
		}
		split(vg.V4Sink)
	}
	for j, cg := range c.Cls {
		split(cg.C2Sink)
		split(cg.C3Sink)
		comps := []int{cg.C8Sink, cg.C9Sink, cg.C10Sink}
		if uncovered[j] < 0 || uncovered[j] > 2 {
			return nil, fmt.Errorf("reduction: uncovered[%d] = %d", j, uncovered[j])
		}
		for p, comp := range comps {
			if p != uncovered[j] {
				split(comp)
			}
		}
	}
	if err != nil {
		return nil, err
	}
	return racesim.WithBinaryReducer(tr, c.Sink, int(c.Y), racesim.FullTree)
}

// BestRoutedMakespan returns the minimum DES makespan over the 3^m
// choices of which pattern composite each clause leaves uncovered, under
// the given assignment.
func (c *Sec42) BestRoutedMakespan(assign []bool) (int64, error) {
	m := len(c.Cls)
	uncovered := make([]int, m)
	best := int64(-1)
	var rec func(j int) error
	rec = func(j int) error {
		if j == m {
			tr, err := c.RoutedTrace(assign, uncovered)
			if err != nil {
				return err
			}
			res, err := racesim.Simulate(tr, 0)
			if err != nil {
				return err
			}
			if best < 0 || res.FinishTime < best {
				best = res.FinishTime
			}
			return nil
		}
		for p := 0; p < 3; p++ {
			uncovered[j] = p
			if err := rec(j + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return 0, err
	}
	return best, nil
}

// MinOverAssignments returns the best routed makespan over every
// assignment; for a 1-in-3 satisfiable formula it equals Target, otherwise
// it exceeds it.
func (c *Sec42) MinOverAssignments() (int64, error) {
	best := int64(-1)
	var firstErr error
	assignments(c.Formula.NumVars, func(assign []bool) bool {
		m, err := c.BestRoutedMakespan(assign)
		if err != nil {
			firstErr = err
			return true
		}
		if best < 0 || m < best {
			best = m
		}
		return false
	})
	if firstErr != nil {
		return 0, firstErr
	}
	return best, nil
}

package reduction

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/exact"
)

func TestSatBruteForce(t *testing.T) {
	f := Figure9Formula()
	assign, ok := f.OneInThreeSatisfiable()
	if !ok {
		t.Fatal("Figure 9 formula should be 1-in-3 satisfiable")
	}
	// The paper's stated witness: V1 = TRUE, V2 = TRUE, V3 = FALSE.
	if !assign[0] || !assign[1] || assign[2] {
		// Any valid witness is fine, but check it truly works.
		for _, c := range f.Clauses {
			if c.trueCount(assign) != 1 {
				t.Fatalf("witness %v invalid", assign)
			}
		}
	}
	if _, ok := UnsatOneInThreeFormula().OneInThreeSatisfiable(); ok {
		t.Fatal("unsat formula reported satisfiable")
	}
	if _, ok := UnsatOneInThreeFormula().Satisfiable(); !ok {
		t.Fatal("the 1-in-3-unsat formula is still 3SAT-satisfiable")
	}
}

func TestFormulaValidate(t *testing.T) {
	if err := (Formula{NumVars: 0}).Validate(); err == nil {
		t.Fatal("want error for zero variables")
	}
	bad := Formula{NumVars: 1, Clauses: []Clause{{Pos(0), Pos(3), Pos(0)}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("want error for out-of-range variable")
	}
}

func TestThm41WitnessAchievesTarget(t *testing.T) {
	f := Figure9Formula()
	r, err := BuildThm41(f)
	if err != nil {
		t.Fatal(err)
	}
	assign, ok := f.OneInThreeSatisfiable()
	if !ok {
		t.Fatal("expected satisfiable")
	}
	flow, err := r.WitnessFlow(assign)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Inst.ValidateFlow(flow, r.Budget); err != nil {
		t.Fatalf("witness flow invalid: %v", err)
	}
	m, err := r.Inst.Makespan(flow)
	if err != nil {
		t.Fatal(err)
	}
	if m != r.Target {
		t.Fatalf("witness makespan = %d; want %d", m, r.Target)
	}
	if got := r.Inst.FlowValue(flow); got != r.Budget {
		t.Fatalf("witness uses %d units; budget %d", got, r.Budget)
	}
}

// TestThm41Equivalence is the machine proof of Lemma 4.2 on small
// formulas: budget n+2m reaches makespan 1 iff the formula is 1-in-3
// satisfiable, decided by the exact solver with no knowledge of the
// construction.
func TestThm41Equivalence(t *testing.T) {
	cases := []struct {
		name string
		f    Formula
	}{
		{"figure9-sat", Figure9Formula()},
		{"unsat-pair", UnsatOneInThreeFormula()},
		{"single-clause", Formula{NumVars: 3, Clauses: []Clause{{Pos(0), Pos(1), Pos(2)}}}},
		{"two-neg", Formula{NumVars: 2, Clauses: []Clause{{Neg(0), Neg(1), Pos(0)}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := BuildThm41(tc.f)
			if err != nil {
				t.Fatal(err)
			}
			_, want := tc.f.OneInThreeSatisfiable()
			got, _, stats, err := exact.Feasible(r.Inst, r.Budget, r.Target, &exact.Options{MaxNodes: 1 << 21})
			if errors.Is(err, exact.ErrTruncated) {
				t.Skipf("undecided after %d nodes", stats.Nodes)
			}
			if err != nil {
				t.Fatal(err)
			}
			if !stats.Complete && !got {
				t.Skipf("search incomplete after %d nodes", stats.Nodes)
			}
			if got != want {
				t.Fatalf("feasible = %v; 1-in-3 satisfiable = %v", got, want)
			}
		})
	}
}

// TestThm41RandomFormulas fuzzes the equivalence on random tiny formulas.
func TestThm41RandomFormulas(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 6; trial++ {
		f := Formula{NumVars: 3}
		for j := 0; j < 1+rng.Intn(2); j++ {
			var c Clause
			for p := range c {
				c[p] = Literal{Var: rng.Intn(3), Neg: rng.Intn(2) == 0}
			}
			f.Clauses = append(f.Clauses, c)
		}
		r, err := BuildThm41(f)
		if err != nil {
			t.Fatal(err)
		}
		_, want := f.OneInThreeSatisfiable()
		got, _, stats, err := exact.Feasible(r.Inst, r.Budget, r.Target, &exact.Options{MaxNodes: 1 << 21})
		if errors.Is(err, exact.ErrTruncated) {
			t.Logf("trial %d: undecided after %d nodes, skipping", trial, stats.Nodes)
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Complete && !got {
			t.Logf("trial %d: incomplete search, skipping", trial)
			continue
		}
		if got != want {
			t.Fatalf("trial %d (%v): feasible = %v; satisfiable = %v", trial, f, got, want)
		}
	}
}

// TestTheorem43Gap exhibits the factor-2 makespan gap: a satisfiable
// instance has optimal makespan 1 under its budget, an unsatisfiable one
// at least 2.
func TestTheorem43Gap(t *testing.T) {
	sat, err := BuildThm41(Figure9Formula())
	if err != nil {
		t.Fatal(err)
	}
	sol, stats, err := exact.MinMakespan(sat.Inst, sat.Budget, &exact.Options{MaxNodes: 1 << 21})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Makespan != 1 {
		t.Fatalf("satisfiable instance OPT = %d (complete=%v); want 1", sol.Makespan, stats.Complete)
	}

	unsat, err := BuildThm41(UnsatOneInThreeFormula())
	if err != nil {
		t.Fatal(err)
	}
	ok, _, stats2, err := exact.Feasible(unsat.Inst, unsat.Budget, 1, &exact.Options{MaxNodes: 1 << 21})
	if errors.Is(err, exact.ErrTruncated) {
		t.Skipf("undecided after %d nodes", stats2.Nodes)
	}
	if err != nil {
		t.Fatal(err)
	}
	if !stats2.Complete {
		t.Skip("search incomplete")
	}
	if ok {
		t.Fatal("unsatisfiable instance reached makespan 1: gap broken")
	}
}

// TestTable2 regenerates Table 2: the pattern-vertex event times for every
// assignment of a single positive clause (Vi or Vj or Vk).
func TestTable2(t *testing.T) {
	f := Formula{NumVars: 3, Clauses: []Clause{{Pos(0), Pos(1), Pos(2)}}}
	r, err := BuildThm41(f)
	if err != nil {
		t.Fatal(err)
	}
	// Table 2 rows keyed by (Vi, Vj, Vk); entries are (C5, C6, C7).
	want := map[[3]bool][3]int64{
		{true, true, true}:    {1, 1, 1},
		{false, true, true}:   {1, 1, 1},
		{true, false, true}:   {1, 1, 1},
		{true, true, false}:   {1, 1, 1},
		{false, false, true}:  {0, 1, 1},
		{false, true, false}:  {1, 0, 1},
		{true, false, false}:  {1, 1, 0},
		{false, false, false}: {1, 1, 1},
	}
	for assign, row := range want {
		got, err := r.Table2Row(0, assign[:])
		if err != nil {
			t.Fatal(err)
		}
		if got != row {
			t.Fatalf("assignment %v: (C5,C6,C7) = %v; want %v", assign, got, row)
		}
	}
}

func TestThm41WitnessRejectsBadAssignment(t *testing.T) {
	r, err := BuildThm41(Figure9Formula())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.WitnessFlow([]bool{true}); err == nil {
		t.Fatal("want error for wrong assignment length")
	}
	// All-true makes two literals of clause 1 true: not a 1-in-3 witness.
	if _, err := r.WitnessFlow([]bool{true, true, true}); err == nil {
		t.Fatal("want error for non-satisfying assignment")
	}
}

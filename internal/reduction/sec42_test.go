package reduction

import (
	"testing"

	"repro/internal/racesim"
)

// TestCompositeNode verifies Figure 12: an order-k composite takes k+2
// time without resources and k/2+4 with a 2-unit reducer of either class.
func TestCompositeNode(t *testing.T) {
	for _, k := range []int64{8, 16, 42, 100} {
		tr := &racesim.Trace{}
		s := addCell(tr)
		sink := addComposite(tr, s, k)
		res, err := racesim.Simulate(tr, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := res.CellFinal[sink], k+2; got != want {
			t.Fatalf("k=%d: unresourced finish = %d; want %d", k, got, want)
		}
		// 2-unit k-way split.
		kway, err := racesim.WithKWaySplit(tr, sink, 2)
		if err != nil {
			t.Fatal(err)
		}
		res, err = racesim.Simulate(kway, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := res.CellFinal[sink], k/2+4; got != want {
			t.Fatalf("k=%d: k-way finish = %d; want %d", k, got, want)
		}
		// Height-1 binary reducer: same bound.
		bin, err := racesim.WithBinaryReducer(tr, sink, 1, racesim.FullTree)
		if err != nil {
			t.Fatal(err)
		}
		res, err = racesim.Simulate(bin, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := res.CellFinal[sink], k/2+4; got != want {
			t.Fatalf("k=%d: binary finish = %d; want %d", k, got, want)
		}
	}
}

func singleClause42(t *testing.T) *Sec42 {
	t.Helper()
	f := Formula{NumVars: 3, Clauses: []Clause{{Pos(0), Pos(1), Pos(2)}}}
	c, err := BuildSec42(f)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestSec42VariableTimes verifies the Figure 13 finish times: the chosen
// literal vertex finishes at 5x+5 and the other at 6x+3.
func TestSec42VariableTimes(t *testing.T) {
	c := singleClause42(t)
	x := c.X
	tr, err := c.RoutedTrace([]bool{true, false, true}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	res, err := racesim.Simulate(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, assign := range []bool{true, false, true} {
		vg := c.Vars[i]
		early, late := res.CellFinal[vg.V5], res.CellFinal[vg.V6]
		if !assign {
			early, late = late, early
		}
		if early != 5*x+5 {
			t.Fatalf("var %d: chosen literal vertex = %d; want %d", i, early, 5*x+5)
		}
		if late != 6*x+3 {
			t.Fatalf("var %d: other literal vertex = %d; want %d", i, late, 6*x+3)
		}
	}
}

// TestTable3 regenerates Table 3 exactly: the pattern-vertex earliest
// finish times for all 8 assignments of a positive clause, with
// a = 6x+4 and b = 5x+6.
func TestTable3(t *testing.T) {
	c := singleClause42(t)
	a := 6*c.X + 4
	b := 5*c.X + 6
	want := map[[3]bool][3]int64{
		{true, true, true}:    {a + 1, a + 1, a + 1},
		{false, true, true}:   {a, a, a + 2},
		{true, false, true}:   {a, a + 2, a},
		{true, true, false}:   {a + 2, a, a},
		{false, false, true}:  {b + 2, a + 1, a + 1},
		{false, true, false}:  {a + 1, b + 2, a + 1},
		{true, false, false}:  {a + 1, a + 1, b + 2},
		{false, false, false}: {a, a, a},
	}
	for assign, row := range want {
		tr, err := c.RoutedTrace(assign[:], []int{0})
		if err != nil {
			t.Fatal(err)
		}
		res, err := racesim.Simulate(tr, 0)
		if err != nil {
			t.Fatal(err)
		}
		cg := c.Cls[0]
		got := [3]int64{res.CellFinal[cg.C5], res.CellFinal[cg.C6], res.CellFinal[cg.C7]}
		if got != row {
			t.Fatalf("assignment %v: (C5,C6,C7) = %v; want %v", assign, got, row)
		}
	}
}

// TestSec42ClauseTimes verifies the clause-side milestones for a
// satisfying assignment: C4 at 4x+7, the uncovered pattern composite at
// 7x+10, the covered ones at 7x+9, and the masked outputs at 7x+12.
func TestSec42ClauseTimes(t *testing.T) {
	c := singleClause42(t)
	x := c.X
	// Exactly one true literal: V1 = T, V2 = F, V3 = F matches pattern
	// (T,F,F), checked by C7 (index 2).
	tr, err := c.RoutedTrace([]bool{true, false, false}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := racesim.Simulate(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	cg := c.Cls[0]
	if got := res.CellFinal[cg.C4]; got != 4*x+7 {
		t.Fatalf("C4 = %d; want %d", got, 4*x+7)
	}
	if got := res.CellFinal[cg.C10Sink]; got != 7*x+10 {
		t.Fatalf("uncovered composite = %d; want %d", got, 7*x+10)
	}
	for _, covered := range []int{cg.C8Sink, cg.C9Sink} {
		if got := res.CellFinal[covered]; got != 7*x+9 {
			t.Fatalf("covered composite = %d; want %d", got, 7*x+9)
		}
	}
	for _, mask := range []int{cg.C11, cg.C12, cg.C13} {
		if got := res.CellFinal[mask]; got != 7*x+12 {
			t.Fatalf("masked output = %d; want %d", got, 7*x+12)
		}
	}
	if res.FinishTime != c.Target {
		t.Fatalf("overall makespan = %d; want target %d", res.FinishTime, c.Target)
	}
}

// TestSec42Equivalence checks the reduction's decision behaviour over all
// assignments and cover choices: the target is reachable iff the formula
// is 1-in-3 satisfiable.
func TestSec42Equivalence(t *testing.T) {
	cases := []struct {
		name string
		f    Formula
	}{
		{"figure9-sat", Figure9Formula()},
		{"unsat-pair", UnsatOneInThreeFormula()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := BuildSec42(tc.f)
			if err != nil {
				t.Fatal(err)
			}
			best, err := c.MinOverAssignments()
			if err != nil {
				t.Fatal(err)
			}
			_, sat := tc.f.OneInThreeSatisfiable()
			if sat && best != c.Target {
				t.Fatalf("satisfiable: best routed makespan = %d; want %d", best, c.Target)
			}
			if !sat && best <= c.Target {
				t.Fatalf("unsatisfiable: best routed makespan = %d; want > %d", best, c.Target)
			}
		})
	}
}

// TestSec42StarvationBreaks checks the backward-direction counting
// argument: denying a variable or a clause composite its units pushes the
// makespan past the target.
func TestSec42StarvationBreaks(t *testing.T) {
	c := singleClause42(t)
	assign := []bool{true, false, false}
	// Build a routing that skips variable 0's composites entirely.
	tr := c.Trace
	var err error
	split := func(cell int) {
		if err == nil {
			tr, err = racesim.WithKWaySplit(tr, cell, 2)
		}
	}
	for i, vg := range c.Vars {
		if i == 0 {
			continue // starved
		}
		if assign[i] {
			split(vg.V2Sink)
		} else {
			split(vg.V3Sink)
		}
		split(vg.V4Sink)
	}
	cg := c.Cls[0]
	split(cg.C2Sink)
	split(cg.C3Sink)
	split(cg.C8Sink)
	split(cg.C9Sink)
	if err != nil {
		t.Fatal(err)
	}
	tr, err = racesim.WithBinaryReducer(tr, c.Sink, int(c.Y), racesim.FullTree)
	if err != nil {
		t.Fatal(err)
	}
	res, err := racesim.Simulate(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinishTime <= c.Target {
		t.Fatalf("starved variable still meets target: %d <= %d", res.FinishTime, c.Target)
	}
}

// TestSec42FlowRealizable checks the resource-reuse accounting: the
// intended per-cell allocation is realizable as a source-to-sink flow of
// value exactly 2n + 4m on the race DAG's arc form.
func TestSec42FlowRealizable(t *testing.T) {
	c := singleClause42(t)
	assign := []bool{true, false, false}
	vi, err := c.Trace.RaceInstance(0)
	if err != nil {
		t.Fatal(err)
	}
	af, err := vi.ToArcForm()
	if err != nil {
		t.Fatal(err)
	}
	lower := make([]int64, af.Inst.G.NumEdges())
	give := func(cell int) { lower[af.JobArc[cell]] = 2 }
	for i, vg := range c.Vars {
		if assign[i] {
			give(vg.V2Sink)
		} else {
			give(vg.V3Sink)
		}
		give(vg.V4Sink)
	}
	cg := c.Cls[0]
	give(cg.C2Sink)
	give(cg.C3Sink)
	give(cg.C8Sink)
	give(cg.C9Sink)
	res, err := minFlowValue(af, lower)
	if err != nil {
		t.Fatal(err)
	}
	if res != c.Budget {
		t.Fatalf("min flow = %d; want budget %d (2n+4m)", res, c.Budget)
	}
}

package reduction

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/duration"
)

// ResourceGap is the chained construction behind Theorem 4.4 (Figures
// 10-11): an instance and makespan target such that
//
//	minimum resource = 2  if the formula is satisfiable,
//	minimum resource = 3  otherwise,
//
// so approximating the minimum-resource problem within any factor below
// 3/2 would decide satisfiability.
//
// The paper sketches the construction from 1-in-3SAT with carefully tuned
// buffer durations; this realization chains the same ingredients - a
// variable-gadget path traversed by one pinned unit, a second unit pinned
// to a direct source arc, and per-clause checker chains with
// timing-compensated cross arcs - but checks clauses for "at least one
// true literal", i.e. it reduces from plain 3SAT (also strongly NP-hard),
// which makes every timing constant explicit and lets the exact solver
// verify the 2-versus-3 gap end to end.
//
// Wiring (all times derived in the comments of BuildResourceGap):
//
//   - variable spine: s -> A_1, and A_i -> {T_i | F_i} -> A_{i+1} with
//     branch arcs {<0,2>,<1,0>}; the single spine unit's branch choice is
//     the truth assignment; the chosen literal vertex finishes at 2(i-1),
//     the other at 2i;
//   - pins: (A_{n+1}, U_1) = {<0,M>,<1,1>} forces one unit through the
//     whole spine; (s, U_1) = {<0,M>,<1,2n+1>} pins the second unit; both
//     make U_1 happen at time 2n+1;
//   - clause chain: U_j fans out to three checker vertices P_{j,c} (free
//     conduits), each exits via {<0,1>,<1,0>} into U_{j+1}; literal c of
//     clause j adds a cross arc from its literal vertex to P_{j,c} with
//     constant duration 2n+j+1-2i, so a true literal imposes start
//     <= theta_j = 2n+j and a false one theta_j + 1;
//   - with two units, each clause covers two checker chains; the clause
//     passes within theta_j + 1 iff the uncovered checker's literal is
//     true, so the target 2n+m+1 is reachable iff some assignment
//     satisfies every clause; a third unit covers all three checkers and
//     always reaches the target.
type ResourceGap struct {
	Formula Formula
	Inst    *core.Instance
	Target  int64 // 2n + m + 1

	spineA   []int // A_1..A_{n+1}
	litT     []int // T_i
	litF     []int // F_i
	chainU   []int // U_1..U_{m+1}
	checkers [][3]int

	sA1         int
	branchTo    []int // edge A_i -> T_i
	branchFrom  []int // edge T_i -> A_{i+1}
	branchToF   []int
	branchFromF []int
	pinSpine    int
	pinDirect   int
	conduits    [][3]int
	exits       [][3]int
	uT          int
}

// BuildResourceGap constructs the Theorem 4.4-style instance for f.
func BuildResourceGap(f Formula) (*ResourceGap, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if len(f.Clauses) == 0 {
		return nil, fmt.Errorf("reduction: resource gap needs at least one clause")
	}
	n, m := f.NumVars, len(f.Clauses)
	target := int64(2*n + m + 1)
	bigM := target + 10

	g := dag.New()
	var fns []duration.Func
	addEdge := func(u, v int, fn duration.Func) int {
		id := g.AddEdge(u, v)
		fns = append(fns, fn)
		return id
	}
	zero := duration.Constant(0)
	branch := func() duration.Func {
		return duration.MustStep(duration.Tuple{R: 0, T: 2}, duration.Tuple{R: 1, T: 0})
	}
	exit := func() duration.Func {
		return duration.MustStep(duration.Tuple{R: 0, T: 1}, duration.Tuple{R: 1, T: 0})
	}

	s := g.AddNode("s")
	t := g.AddNode("t")
	r := &ResourceGap{Formula: f, Target: target}

	for i := 0; i <= n; i++ {
		r.spineA = append(r.spineA, g.AddNode(fmt.Sprintf("A%d", i+1)))
	}
	r.sA1 = addEdge(s, r.spineA[0], zero)
	for i := 0; i < n; i++ {
		ti := g.AddNode(fmt.Sprintf("T%d", i))
		fi := g.AddNode(fmt.Sprintf("F%d", i))
		r.litT = append(r.litT, ti)
		r.litF = append(r.litF, fi)
		r.branchTo = append(r.branchTo, addEdge(r.spineA[i], ti, branch()))
		r.branchToF = append(r.branchToF, addEdge(r.spineA[i], fi, branch()))
		r.branchFrom = append(r.branchFrom, addEdge(ti, r.spineA[i+1], zero))
		r.branchFromF = append(r.branchFromF, addEdge(fi, r.spineA[i+1], zero))
	}

	for j := 0; j <= m; j++ {
		r.chainU = append(r.chainU, g.AddNode(fmt.Sprintf("U%d", j+1)))
	}
	r.pinSpine = addEdge(r.spineA[n], r.chainU[0], duration.MustStep(
		duration.Tuple{R: 0, T: bigM}, duration.Tuple{R: 1, T: 1}))
	r.pinDirect = addEdge(s, r.chainU[0], duration.MustStep(
		duration.Tuple{R: 0, T: bigM}, duration.Tuple{R: 1, T: int64(2*n + 1)}))

	for j, c := range f.Clauses {
		var checkers [3]int
		var conduits, exits [3]int
		for p := 0; p < 3; p++ {
			checkers[p] = g.AddNode(fmt.Sprintf("P%d_%d", j, p))
			conduits[p] = addEdge(r.chainU[j], checkers[p], zero)
			exits[p] = addEdge(checkers[p], r.chainU[j+1], exit())
			// Cross arc from the literal vertex: the vertex that finishes
			// early (at 2i) exactly when the literal is true.
			lit := c[p]
			var litNode int
			if lit.Neg {
				litNode = r.litF[lit.Var]
			} else {
				litNode = r.litT[lit.Var]
			}
			// theta_j = 2n+1+j; a true literal (vertex time 2i) must
			// impose theta_j - 1 and a false one (2i+2) theta_j + 1.
			cross := int64(2*n+j) - int64(2*lit.Var)
			addEdge(litNode, checkers[p], duration.Constant(cross))
		}
		r.checkers = append(r.checkers, checkers)
		r.conduits = append(r.conduits, conduits)
		r.exits = append(r.exits, exits)
	}
	r.uT = addEdge(r.chainU[m], t, zero)

	inst, err := core.NewInstance(g, fns)
	if err != nil {
		return nil, err
	}
	r.Inst = inst
	return r, nil
}

// WitnessFlow assembles the intended two-unit flow for a satisfying
// assignment: the spine unit walks the chosen branches and then, together
// with the directly pinned unit, covers the two checker chains of each
// clause whose literal is not relied upon.
func (r *ResourceGap) WitnessFlow(assign []bool) ([]int64, error) {
	n := r.Formula.NumVars
	if len(assign) != n {
		return nil, fmt.Errorf("reduction: %d assignments for %d variables", len(assign), n)
	}
	f := make([]int64, r.Inst.G.NumEdges())
	f[r.sA1]++
	for i := 0; i < n; i++ {
		if assign[i] {
			f[r.branchTo[i]]++
			f[r.branchFrom[i]]++
		} else {
			f[r.branchToF[i]]++
			f[r.branchFromF[i]]++
		}
	}
	f[r.pinSpine]++
	f[r.pinDirect]++
	for j, c := range r.Formula.Clauses {
		uncovered := -1
		for p := 0; p < 3; p++ {
			if c[p].Eval(assign) {
				uncovered = p
				break
			}
		}
		if uncovered < 0 {
			return nil, fmt.Errorf("reduction: clause %d unsatisfied", j)
		}
		placed := 0
		for p := 0; p < 3 && placed < 2; p++ {
			if p == uncovered {
				continue
			}
			f[r.conduits[j][p]]++
			f[r.exits[j][p]]++
			placed++
		}
	}
	f[r.uT] += 2
	return f, nil
}

// ThreeUnitFlow returns the three-unit flow that meets the target for any
// formula: all three checker chains of every clause are covered.
func (r *ResourceGap) ThreeUnitFlow() []int64 {
	n := r.Formula.NumVars
	f := make([]int64, r.Inst.G.NumEdges())
	f[r.sA1]++
	for i := 0; i < n; i++ {
		f[r.branchTo[i]]++
		f[r.branchFrom[i]]++
	}
	f[r.pinSpine]++
	f[r.pinDirect] += 2
	for j := range r.Formula.Clauses {
		for p := 0; p < 3; p++ {
			f[r.conduits[j][p]]++
			f[r.exits[j][p]]++
		}
	}
	f[r.uT] += 3
	return f
}

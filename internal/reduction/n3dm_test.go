package reduction

import (
	"errors"
	"testing"

	"repro/internal/exact"
)

func solvable3DM() N3DM {
	// Triples: (1,2,3)=6 and (2,1,3)=6.
	return N3DM{A: []int64{1, 2}, B: []int64{2, 1}, C: []int64{3, 3}}
}

func unsolvable3DM() N3DM {
	// Total 12, target 6; a_1=1 needs b+c=5: impossible with B={4,4},
	// C={3,... } pick: A={1,2} B={4,4} C={1,0}? items must be positive..
	// Use A={1,3}, B={4,4}, C={2,2}: target 8; 1 needs 7 = 4+? c=3 no.
	return N3DM{A: []int64{1, 3}, B: []int64{4, 4}, C: []int64{2, 2}}
}

func TestN3DMSolve(t *testing.T) {
	sigma, rho, ok := solvable3DM().Solve()
	if !ok {
		t.Fatal("expected solvable")
	}
	p := solvable3DM()
	target := p.TripleTarget()
	for i := range p.A {
		if p.A[i]+p.B[sigma[i]]+p.C[rho[i]] != target {
			t.Fatalf("triple %d sums wrong", i)
		}
	}
	if _, _, ok := unsolvable3DM().Solve(); ok {
		t.Fatal("expected unsolvable")
	}
}

func TestN3DMValidate(t *testing.T) {
	if err := (N3DM{A: []int64{1}}).Validate(); err == nil {
		t.Fatal("want error for mismatched sizes")
	}
	if err := (N3DM{A: []int64{1, 1}, B: []int64{1, 1}, C: []int64{1, 2}}).Validate(); err == nil {
		t.Fatal("want error for indivisible total")
	}
	if _, err := BuildN3DM(N3DM{A: []int64{2}, B: []int64{2}, C: []int64{2}}); err == nil {
		t.Fatal("want error for n=1")
	}
}

func TestN3DMWitnessAchievesTarget(t *testing.T) {
	p := solvable3DM()
	r, err := BuildN3DM(p)
	if err != nil {
		t.Fatal(err)
	}
	sigma, rho, ok := p.Solve()
	if !ok {
		t.Fatal("expected solvable")
	}
	flow, err := r.WitnessFlow(sigma, rho)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Inst.ValidateFlow(flow, r.Budget); err != nil {
		t.Fatalf("witness invalid: %v", err)
	}
	m, err := r.Inst.Makespan(flow)
	if err != nil {
		t.Fatal(err)
	}
	if m != r.Target {
		t.Fatalf("witness makespan = %d; want %d", m, r.Target)
	}
}

// TestN3DMEquivalence machine-verifies Lemma A.1 at n=2: budget n^2
// reaches makespan 2M+T iff the 3DM instance is solvable.
func TestN3DMEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping ~26s hardness-construction search in -short mode")
	}
	cases := []struct {
		name string
		p    N3DM
	}{
		{"solvable", solvable3DM()},
		{"unsolvable", unsolvable3DM()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := BuildN3DM(tc.p)
			if err != nil {
				t.Fatal(err)
			}
			_, _, want := tc.p.Solve()
			got, _, stats, err := exact.Feasible(r.Inst, r.Budget, r.Target, &exact.Options{MaxNodes: 1 << 21})
			if errors.Is(err, exact.ErrTruncated) {
				// Feasibility was neither proven nor refuted at this node
				// budget; the three-valued contract now says so explicitly.
				t.Skipf("undecided after %d nodes", stats.Nodes)
			}
			if err != nil {
				t.Fatal(err)
			}
			if !stats.Complete && !got {
				t.Skipf("incomplete after %d nodes", stats.Nodes)
			}
			if got != want {
				t.Fatalf("feasible = %v; solvable = %v", got, want)
			}
		})
	}
}

// TestN3DMWitnessAtN3 checks the witness pipeline at n=3 (where full
// exact search is out of reach but witness validation is cheap).
func TestN3DMWitnessAtN3(t *testing.T) {
	p := N3DM{A: []int64{1, 2, 3}, B: []int64{3, 2, 1}, C: []int64{2, 2, 2}}
	r, err := BuildN3DM(p)
	if err != nil {
		t.Fatal(err)
	}
	sigma, rho, ok := p.Solve()
	if !ok {
		t.Fatal("expected solvable")
	}
	flow, err := r.WitnessFlow(sigma, rho)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Inst.ValidateFlow(flow, r.Budget); err != nil {
		t.Fatal(err)
	}
	m, err := r.Inst.Makespan(flow)
	if err != nil {
		t.Fatal(err)
	}
	if m != r.Target {
		t.Fatalf("witness makespan = %d; want %d", m, r.Target)
	}
	if _, err := r.WitnessFlow([]int{0}, rho); err == nil {
		t.Fatal("want error for bad permutation size")
	}
}

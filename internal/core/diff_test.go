package core

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/duration"
)

// diffDiamond builds s -> {a, b} -> t with the given four duration
// functions (a second diamond helper lives in hash_test.go with a
// different shape).
func diffDiamond(fns ...duration.Func) *Instance {
	g := dag.New()
	s := g.AddNode("s")
	a := g.AddNode("a")
	b := g.AddNode("b")
	t := g.AddNode("t")
	g.AddEdge(s, a)
	g.AddEdge(a, t)
	g.AddEdge(s, b)
	g.AddEdge(b, t)
	return MustInstance(g, fns)
}

func TestSketchTopologyOnly(t *testing.T) {
	a := diffDiamond(duration.Constant(1), duration.Constant(2), duration.Constant(3), duration.Constant(4))
	b := diffDiamond(duration.Constant(9), duration.MustStep(duration.Tuple{R: 0, T: 8}, duration.Tuple{R: 2, T: 3}), duration.Constant(3), duration.Constant(4))
	ca, cb := Compile(a), Compile(b)
	if ca.Sketch() != cb.Sketch() {
		t.Fatalf("sketch must ignore durations: %s vs %s", ca.Sketch(), cb.Sketch())
	}
	if ca.Hash() == cb.Hash() {
		t.Fatal("canonical hash must see the duration change")
	}
	if got := ca.Sketch(); got != ca.Inst.Sketch() {
		t.Fatalf("compiled sketch %s != instance sketch %s", got, ca.Inst.Sketch())
	}

	// A different topology (extra arc) must sketch differently.
	g := dag.New()
	s := g.AddNode("s")
	x := g.AddNode("a")
	y := g.AddNode("b")
	tt := g.AddNode("t")
	g.AddEdge(s, x)
	g.AddEdge(x, tt)
	g.AddEdge(s, y)
	g.AddEdge(y, tt)
	g.AddEdge(s, tt)
	c := MustInstance(g, []duration.Func{
		duration.Constant(1), duration.Constant(2), duration.Constant(3), duration.Constant(4), duration.Constant(5),
	})
	if Compile(c).Sketch() == ca.Sketch() {
		t.Fatal("extra arc must change the sketch")
	}
}

func TestSketchSensitiveToArcOrder(t *testing.T) {
	// Same DAG, arcs inserted in a different order: the canonical hash is
	// order-insensitive by design, the sketch is order-SENSITIVE by design
	// (flows transfer index-wise only when indices align).
	mk := func(swap bool) *Instance {
		g := dag.New()
		s := g.AddNode("s")
		a := g.AddNode("a")
		b := g.AddNode("b")
		tt := g.AddNode("t")
		if swap {
			g.AddEdge(s, b)
			g.AddEdge(b, tt)
			g.AddEdge(s, a)
			g.AddEdge(a, tt)
			return MustInstance(g, []duration.Func{
				duration.Constant(3), duration.Constant(4), duration.Constant(1), duration.Constant(2),
			})
		}
		g.AddEdge(s, a)
		g.AddEdge(a, tt)
		g.AddEdge(s, b)
		g.AddEdge(b, tt)
		return MustInstance(g, []duration.Func{
			duration.Constant(1), duration.Constant(2), duration.Constant(3), duration.Constant(4),
		})
	}
	ca, cb := Compile(mk(false)), Compile(mk(true))
	if ca.Hash() != cb.Hash() {
		t.Fatal("canonical hash must be arc-order insensitive")
	}
	if ca.Sketch() == cb.Sketch() {
		t.Fatal("sketch must be arc-order sensitive")
	}
}

func TestDiffTouchedArcs(t *testing.T) {
	base := diffDiamond(duration.Constant(1), duration.Constant(2), duration.Constant(3), duration.Constant(4))
	same := diffDiamond(duration.Constant(1), duration.Constant(2), duration.Constant(3), duration.Constant(4))
	d := Diff(Compile(base), Compile(same))
	if !d.SameTopology || len(d.TouchedArcs) != 0 || d.TouchedBreakpoints != 0 {
		t.Fatalf("identical instances: got %+v", d)
	}

	// One constant changed, one arc reshaped into a two-tuple step.
	neighbor := diffDiamond(
		duration.Constant(1),
		duration.Constant(7),
		duration.MustStep(duration.Tuple{R: 0, T: 3}, duration.Tuple{R: 2, T: 1}),
		duration.Constant(4),
	)
	d = Diff(Compile(base), Compile(neighbor))
	if !d.SameTopology {
		t.Fatal("same topology expected")
	}
	if len(d.TouchedArcs) != 2 || d.TouchedArcs[0] != 1 || d.TouchedArcs[1] != 2 {
		t.Fatalf("touched arcs: got %v, want [1 2]", d.TouchedArcs)
	}
	// Arc 1: one tuple differs.  Arc 2: base is [(0,3)], neighbor is
	// [(0,3),(2,1)] — the shared position agrees, one extra tuple.
	// Total 1 + 1 = 2.
	if d.TouchedBreakpoints != 2 {
		t.Fatalf("touched breakpoints: got %d, want 2", d.TouchedBreakpoints)
	}

	// Different topology: nothing comparable.
	g := dag.New()
	s := g.AddNode("s")
	tt := g.AddNode("t")
	g.AddEdge(s, tt)
	other := MustInstance(g, []duration.Func{duration.Constant(1)})
	d = Diff(Compile(base), Compile(other))
	if d.SameTopology || d.TouchedArcs != nil {
		t.Fatalf("different topology: got %+v", d)
	}
}

package core_test

// Property tests for the compiled-instance core, in an external test
// package so they can draw instances from the scenario catalog (which
// itself imports core).

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
)

// TestCompileDeterministic asserts that compiling the same scenario twice
// - through two independent Build calls - yields identical preprocessed
// state: hash-stable, identical CSR adjacency, topological order,
// breakpoint tables, bounds and envelopes.  This is the foundation the
// service's compiled-instance cache stands on: a canonical hash must name
// exactly one compiled form.
func TestCompileDeterministic(t *testing.T) {
	for _, spec := range scenario.DefaultCorpus() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			inst1, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			inst2, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			c1, c2 := core.Compile(inst1), core.Compile(inst2)
			if c1.Hash() != c2.Hash() {
				t.Fatalf("hash not stable across runs: %s vs %s", c1.Hash(), c2.Hash())
			}
			if !reflect.DeepEqual(c1.Topo, c2.Topo) {
				t.Fatal("topological order differs across runs")
			}
			for name, pair := range map[string][2]any{
				"OutStart": {c1.OutStart, c2.OutStart},
				"OutArcs":  {c1.OutArcs, c2.OutArcs},
				"InStart":  {c1.InStart, c2.InStart},
				"InArcs":   {c1.InArcs, c2.InArcs},
				"ArcFrom":  {c1.ArcFrom, c2.ArcFrom},
				"ArcTo":    {c1.ArcTo, c2.ArcTo},
				"Tuples":   {c1.Tuples, c2.Tuples},
				"MinDur":   {c1.MinDur, c2.MinDur},
			} {
				if !reflect.DeepEqual(pair[0], pair[1]) {
					t.Fatalf("%s differs across runs", name)
				}
			}
			if c1.MinMakespan != c2.MinMakespan || c1.MaxUsefulBudget != c2.MaxUsefulBudget ||
				c1.AssignmentSpace != c2.AssignmentSpace || c1.ExpandedArcs != c2.ExpandedArcs {
				t.Fatalf("scalar bounds differ: %+v vs %+v",
					[4]int64{c1.MinMakespan, c1.MaxUsefulBudget, c1.AssignmentSpace, c1.ExpandedArcs},
					[4]int64{c2.MinMakespan, c2.MaxUsefulBudget, c2.AssignmentSpace, c2.ExpandedArcs})
			}
			if !reflect.DeepEqual(c1.Envelopes(), c2.Envelopes()) {
				t.Fatal("envelopes differ across runs")
			}
			if c1.Class() != c2.Class() {
				t.Fatalf("class differs: %s vs %s", c1.Class(), c2.Class())
			}
		})
	}
}

// TestCompiledMatchesInstanceDerivations pins the compiled fields to the
// Instance methods they replace, so the two can never drift apart.
func TestCompiledMatchesInstanceDerivations(t *testing.T) {
	for _, spec := range scenario.DefaultCorpus() {
		inst, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		c := core.Compile(inst)
		if got, want := c.Hash(), inst.CanonicalHash(); got != want {
			t.Fatalf("%s: Hash %s != CanonicalHash %s", spec.Name, got, want)
		}
		if got, want := c.MinMakespan, inst.MakespanLowerBound(); got != want {
			t.Fatalf("%s: MinMakespan %d != MakespanLowerBound %d", spec.Name, got, want)
		}
		if got, want := c.MaxUsefulBudget, inst.MaxUsefulBudget(); got != want {
			t.Fatalf("%s: MaxUsefulBudget %d != %d", spec.Name, got, want)
		}
		g := inst.G
		for v := 0; v < g.NumNodes(); v++ {
			if int(c.OutStart[v+1]-c.OutStart[v]) != g.OutDegree(v) ||
				int(c.InStart[v+1]-c.InStart[v]) != g.InDegree(v) {
				t.Fatalf("%s: CSR degree mismatch at node %d", spec.Name, v)
			}
		}
		for e := 0; e < g.NumEdges(); e++ {
			ed := g.Edge(e)
			if int(c.ArcFrom[e]) != ed.From || int(c.ArcTo[e]) != ed.To {
				t.Fatalf("%s: CSR endpoints mismatch at arc %d", spec.Name, e)
			}
		}
	}
}

package core

import (
	"runtime"
	"sync"

	"repro/internal/duration"
)

// compileParallelThreshold is the arc count at which Compile (and the lazy
// envelope build) switch from single-pass sequential construction to a
// worker gang over disjoint node and arc ranges.  Construction is linear
// either way; the gang only amortizes its spawn cost on instances in the
// 100k-arc class.  A tunable, not a contract: the Compiled produced on
// either side of it is byte-identical (pinned by
// TestCompileParallelMatchesSequential).
var compileParallelThreshold = 65536

// compileForceWorkers, when positive, overrides the gang size regardless
// of GOMAXPROCS.  Test-only: it lets single-CPU runners exercise the
// parallel construction path deterministically.
var compileForceWorkers = 0

// compileGang sizes the construction gang for an m-arc instance.
func compileGang(m int) int {
	if m < compileParallelThreshold {
		return 1
	}
	if compileForceWorkers > 0 {
		return compileForceWorkers
	}
	p := runtime.GOMAXPROCS(0)
	if p > 8 {
		p = 8 // construction is memory-bound; wider gangs stop paying
	}
	return p
}

// csrRange copies the adjacency of nodes [lo, hi) into the CSR arrays.
// The prefix sums in OutStart/InStart are complete before any call, so
// every write lands in a range no other worker touches.
func (c *Compiled) csrRange(lo, hi int) {
	g := c.Inst.G
	for v := lo; v < hi; v++ {
		for i, e := range g.Out(v) {
			c.OutArcs[int(c.OutStart[v])+i] = int32(e)
		}
		for i, e := range g.In(v) {
			c.InArcs[int(c.InStart[v])+i] = int32(e)
		}
	}
}

// arcRange fills the per-arc derivations for arcs [lo, hi) - endpoints,
// materialized breakpoint tuples, unlimited-resource durations - and
// returns the chunk's additive aggregates plus its saturating
// breakpoint-count product.  Writes are disjoint per chunk; aggregates are
// combined in chunk order by the caller so the totals match the
// sequential fold exactly.
func (c *Compiled) arcRange(lo, hi int) (budget, expanded, space int64) {
	g := c.Inst.G
	space = 1
	for e := lo; e < hi; e++ {
		ed := g.Edge(e)
		c.ArcFrom[e] = int32(ed.From)
		c.ArcTo[e] = int32(ed.To)
		ts := c.Inst.Fns[e].Tuples()
		c.Tuples[e] = ts
		c.MinDur[e] = ts[len(ts)-1].T
		budget += ts[len(ts)-1].R
		if space < SpaceSaturation {
			space *= int64(len(ts))
			if space > SpaceSaturation {
				space = SpaceSaturation
			}
		}
		if len(ts) == 1 {
			expanded++
		} else {
			expanded += 2 * int64(len(ts))
		}
	}
	return budget, expanded, space
}

// combineSpace folds one chunk's saturating breakpoint-count product into
// the running assignment-space estimate.  Equal to the sequential
// arc-by-arc fold: while the true total product stays below the cap every
// prefix (and hence every chunk product) does too, so both folds compute
// the exact product; once the true total crosses the cap both clamp to
// exactly SpaceSaturation.  The division guard keeps the combine itself
// from overflowing (two sub-cap factors can exceed int64 when multiplied).
func combineSpace(acc, chunk int64) int64 {
	if acc >= SpaceSaturation || chunk >= SpaceSaturation || acc > SpaceSaturation/chunk {
		return SpaceSaturation
	}
	return acc * chunk
}

// fillParallel runs the CSR copy and the per-arc pass across a gang of
// workers on disjoint node and arc ranges, then reduces the per-chunk
// aggregates in chunk order.  Every array write is to a chunk-owned range
// and the reduction order matches arc order, so the resulting Compiled is
// byte-identical to the sequential build.
func (c *Compiled) fillParallel(workers int) {
	n := len(c.OutStart) - 1
	m := len(c.ArcFrom)
	type partial struct{ budget, expanded, space int64 }
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			c.csrRange(n*w/workers, n*(w+1)/workers)
			b, x, sp := c.arcRange(m*w/workers, m*(w+1)/workers)
			parts[w] = partial{b, x, sp}
		}(w)
	}
	wg.Wait()
	for _, p := range parts {
		c.MaxUsefulBudget += p.budget
		c.ExpandedArcs += p.expanded
		c.AssignmentSpace = combineSpace(c.AssignmentSpace, p.space)
	}
}

// buildEnvelopesParallel is buildEnvelopes across a worker gang: each
// worker builds the hulls of a contiguous arc range into its own local
// CSR, and the ranges are stitched back in arc order.  Hulls are per-arc
// independent and the stitch preserves arc order, so the result is
// byte-identical to the sequential build (same R/T/Slope contents, same
// SegStart offsets).
func buildEnvelopesParallel(tuples [][]duration.Tuple, workers int) *Envelopes {
	m := len(tuples)
	parts := make([]*Envelopes, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			lo, hi := m*w/workers, m*(w+1)/workers
			sub := &Envelopes{SegStart: make([]int32, hi-lo+1)}
			for e := lo; e < hi; e++ {
				sub.appendHull(tuples[e])
				sub.SegStart[e-lo+1] = int32(len(sub.R))
			}
			parts[w] = sub
		}(w)
	}
	wg.Wait()
	points, slopes := 0, 0
	for _, sub := range parts {
		points += len(sub.R)
		slopes += len(sub.Slope)
	}
	ev := &Envelopes{
		SegStart: make([]int32, m+1),
		R:        make([]int64, 0, points),
		T:        make([]int64, 0, points),
		Slope:    make([]float64, 0, slopes),
	}
	e := 0
	for _, sub := range parts {
		base := int32(len(ev.R))
		for i := 1; i < len(sub.SegStart); i++ {
			ev.SegStart[e+1] = base + sub.SegStart[i]
			e++
		}
		ev.R = append(ev.R, sub.R...)
		ev.T = append(ev.T, sub.T...)
		ev.Slope = append(ev.Slope, sub.Slope...)
	}
	return ev
}

package core

// Test hooks: scenario (the corpus builder) imports core, so corpus-driven
// tests must live in package core_test and reach the construction tunables
// through these.

// SetCompileGangForTest overrides the parallel-construction tunables and
// returns a restore func.  threshold <= 0 leaves the threshold unchanged;
// force <= 0 leaves the gang sizing unchanged.
func SetCompileGangForTest(threshold, force int) (restore func()) {
	oldThresh, oldForce := compileParallelThreshold, compileForceWorkers
	if threshold > 0 {
		compileParallelThreshold = threshold
	}
	if force > 0 {
		compileForceWorkers = force
	}
	return func() {
		compileParallelThreshold = oldThresh
		compileForceWorkers = oldForce
	}
}

// CombineSpaceForTest exposes the chunk reduction of the saturating
// assignment-space product.
func CombineSpaceForTest(acc, chunk int64) int64 { return combineSpace(acc, chunk) }

package core_test

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
)

// TestCompileParallelMatchesSequential pins the parallel construction
// contract: the Compiled (every exported field) and its lazily built
// envelopes are BYTE-IDENTICAL whether built by one worker or a gang,
// across the whole scenario corpus and several gang sizes (including
// gangs wider than the arc count, so empty chunks are exercised).  Run
// with -race to also check the gang's write-disjointness.
func TestCompileParallelMatchesSequential(t *testing.T) {
	for _, spec := range scenario.DefaultCorpus() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			inst, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			seq := core.Compile(inst)
			seqEnv := seq.Envelopes()
			for _, workers := range []int{2, 3, 8, 64} {
				restore := core.SetCompileGangForTest(1, workers)
				par := core.Compile(inst)
				parEnv := par.Envelopes()
				restore()
				sv, pv := reflect.ValueOf(*seq), reflect.ValueOf(*par)
				for i := 0; i < sv.NumField(); i++ {
					f := sv.Type().Field(i)
					if !f.IsExported() {
						continue // lazy memos: compared via Envelopes below
					}
					if !reflect.DeepEqual(sv.Field(i).Interface(), pv.Field(i).Interface()) {
						t.Errorf("workers=%d: field %s diverges from sequential build", workers, f.Name)
					}
				}
				if !reflect.DeepEqual(seqEnv.SegStart, parEnv.SegStart) ||
					!reflect.DeepEqual(seqEnv.R, parEnv.R) ||
					!reflect.DeepEqual(seqEnv.T, parEnv.T) {
					t.Errorf("workers=%d: envelope hulls diverge from sequential build", workers)
				}
				if len(seqEnv.Slope) != len(parEnv.Slope) {
					t.Fatalf("workers=%d: %d slopes vs %d sequential", workers, len(parEnv.Slope), len(seqEnv.Slope))
				}
				for j := range seqEnv.Slope {
					if math.Float64bits(seqEnv.Slope[j]) != math.Float64bits(parEnv.Slope[j]) {
						t.Errorf("workers=%d: slope %d differs bitwise", workers, j)
					}
				}
			}
		})
	}
}

// TestCombineSpace pins the chunk-ordered reduction of the saturating
// assignment-space product against the sequential arc-by-arc fold,
// including the overflow guard (two sub-cap chunks whose product would
// overflow int64 must clamp, not wrap).
func TestCombineSpace(t *testing.T) {
	seqFold := func(counts []int64) int64 {
		acc := int64(1)
		for _, n := range counts {
			if acc < core.SpaceSaturation {
				acc *= n
				if acc > core.SpaceSaturation {
					acc = core.SpaceSaturation
				}
			}
		}
		return acc
	}
	cases := [][]int64{
		{},
		{1, 1, 1},
		{2, 3, 4},
		{1 << 20, 1 << 19},                // product just below the cap
		{1 << 20, 1 << 20},                // product exactly at the cap
		{1 << 20, 1 << 21},                // product just above the cap
		{1 << 30, 1 << 30, 1 << 30},       // saturates on the middle factor
		{core.SpaceSaturation - 1, 2},     // sub-cap chunk, saturating combine
		{3, 5, 7, 11, 13, 17, 19, 23, 29}, // exact odd product
		{1 << 39, 2, 1, 1, 3},             // lands exactly on the cap mid-fold
	}
	// The combine's own overflow guard: two sub-cap chunk products whose
	// raw product would wrap int64 must clamp to the cap, not wrap.
	if got := core.CombineSpaceForTest(core.SpaceSaturation-1, core.SpaceSaturation-1); got != core.SpaceSaturation {
		t.Errorf("combine of two near-cap chunks: got %d, want the cap", got)
	}
	for _, counts := range cases {
		want := seqFold(counts)
		// Fold as chunks of every possible split in two, in order.
		for cut := 0; cut <= len(counts); cut++ {
			got := core.CombineSpaceForTest(seqFold(counts[:cut]), seqFold(counts[cut:]))
			if got != want {
				t.Errorf("counts %v cut %d: combine got %d, sequential fold %d", counts, cut, got, want)
			}
		}
	}
}

// TestCompileParallelLargeSynthetic exercises the REAL size-triggered
// parallel path (forced threshold, default gang sizing) on a synthetic
// instance above the lowered threshold, so the production branch gets
// coverage even where GOMAXPROCS = 1 collapses the gang to one worker.
func TestCompileParallelLargeSynthetic(t *testing.T) {
	if testing.Short() {
		t.Skip("large synthetic compile")
	}
	restore := core.SetCompileGangForTest(4096, 0)
	defer restore()
	inst := scenario.NewGen(11).StepInstance(40, 16, 4000, 4, 50, 12)
	if m := inst.G.NumEdges(); m < 4096 {
		t.Fatalf("synthetic instance too small: %d arcs", m)
	}
	got := core.Compile(inst)
	restoreSeq := core.SetCompileGangForTest(1<<30, 0) // force the sequential path
	want := core.Compile(inst)
	restoreSeq()
	if !reflect.DeepEqual(got.MinDur, want.MinDur) ||
		got.MinMakespan != want.MinMakespan ||
		got.AssignmentSpace != want.AssignmentSpace ||
		got.MaxUsefulBudget != want.MaxUsefulBudget ||
		got.ExpandedArcs != want.ExpandedArcs ||
		!reflect.DeepEqual(got.InArcs, want.InArcs) ||
		!reflect.DeepEqual(got.OutArcs, want.OutArcs) {
		t.Fatal("size-triggered parallel compile diverges from sequential")
	}
}

package core

import (
	"encoding/json"
	"testing"

	"repro/internal/dag"
	"repro/internal/duration"
)

// diamond builds s -> {a, b} -> t with the given duration functions, in the
// given arc order (a permutation of 0..3 over the arcs s-a, s-b, a-t, b-t).
func diamond(t *testing.T, names [4]string, order [4]int, fns [4]duration.Func) *Instance {
	t.Helper()
	g := dag.New()
	s, a, b, snk := g.AddNode(names[0]), g.AddNode(names[1]), g.AddNode(names[2]), g.AddNode(names[3])
	arcs := [4][2]int{{s, a}, {s, b}, {a, snk}, {b, snk}}
	ordered := make([]duration.Func, 4)
	for i, idx := range order {
		g.AddEdge(arcs[idx][0], arcs[idx][1])
		ordered[i] = fns[idx]
	}
	inst, err := NewInstance(g, ordered)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func fourFns() [4]duration.Func {
	return [4]duration.Func{
		duration.NewKWay(36),
		duration.MustStep(duration.Tuple{R: 0, T: 9}, duration.Tuple{R: 2, T: 4}),
		duration.Constant(3),
		duration.NewRecursiveBinary(32),
	}
}

func TestCanonicalHashIgnoresNodeNames(t *testing.T) {
	a := diamond(t, [4]string{"s", "a", "b", "t"}, [4]int{0, 1, 2, 3}, fourFns())
	b := diamond(t, [4]string{"source", "x", "y", "sink"}, [4]int{0, 1, 2, 3}, fourFns())
	if a.CanonicalHash() != b.CanonicalHash() {
		t.Fatal("renaming nodes changed the canonical hash")
	}
}

func TestCanonicalHashIgnoresArcOrder(t *testing.T) {
	a := diamond(t, [4]string{"s", "a", "b", "t"}, [4]int{0, 1, 2, 3}, fourFns())
	b := diamond(t, [4]string{"s", "a", "b", "t"}, [4]int{3, 1, 0, 2}, fourFns())
	if a.CanonicalHash() != b.CanonicalHash() {
		t.Fatal("reordering arc insertion changed the canonical hash")
	}
}

func TestCanonicalHashIgnoresSpecKind(t *testing.T) {
	// A kway function and a step function with identical breakpoints are
	// the same function to every solver and must hash identically.
	kway := duration.NewKWay(36)
	step, err := duration.NewStep(kway.Tuples())
	if err != nil {
		t.Fatal(err)
	}
	fns := fourFns()
	a := diamond(t, [4]string{"s", "a", "b", "t"}, [4]int{0, 1, 2, 3}, fns)
	fns[0] = step
	b := diamond(t, [4]string{"s", "a", "b", "t"}, [4]int{0, 1, 2, 3}, fns)
	if a.CanonicalHash() != b.CanonicalHash() {
		t.Fatal("equivalent functions of different kinds hash differently")
	}
}

func TestCanonicalHashSeparatesDifferentInstances(t *testing.T) {
	base := diamond(t, [4]string{"s", "a", "b", "t"}, [4]int{0, 1, 2, 3}, fourFns())
	seen := map[string]string{base.CanonicalHash(): "base"}

	// Different duration on one arc.
	fns := fourFns()
	fns[2] = duration.Constant(4)
	variants := map[string]*Instance{
		"changed-duration": diamond(t, [4]string{"s", "a", "b", "t"}, [4]int{0, 1, 2, 3}, fns),
	}

	// Different topology: an extra a->b cross arc.
	g := dag.New()
	s, a, b, snk := g.AddNode("s"), g.AddNode("a"), g.AddNode("b"), g.AddNode("t")
	for _, arc := range [][2]int{{s, a}, {s, b}, {a, snk}, {b, snk}, {a, b}} {
		g.AddEdge(arc[0], arc[1])
	}
	f := fourFns()
	bridge, err := NewInstance(g, []duration.Func{f[0], f[1], f[2], f[3], duration.Constant(0)})
	if err != nil {
		t.Fatal(err)
	}
	variants["extra-arc"] = bridge

	// Parallel arcs must count with multiplicity.
	g2 := dag.New()
	s2, t2 := g2.AddNode("s"), g2.AddNode("t")
	g2.AddEdge(s2, t2)
	g2.AddEdge(s2, t2)
	multi, err := NewInstance(g2, []duration.Func{duration.Constant(3), duration.Constant(3)})
	if err != nil {
		t.Fatal(err)
	}
	g3 := dag.New()
	s3, t3 := g3.AddNode("s"), g3.AddNode("t")
	g3.AddEdge(s3, t3)
	single, err := NewInstance(g3, []duration.Func{duration.Constant(3)})
	if err != nil {
		t.Fatal(err)
	}
	variants["parallel-arcs"] = multi
	variants["single-arc"] = single

	for name, inst := range variants {
		h := inst.CanonicalHash()
		if prev, dup := seen[h]; dup {
			t.Fatalf("%s collides with %s", name, prev)
		}
		seen[h] = name
	}
}

func TestCanonicalHashStableAcrossJSONRoundTrip(t *testing.T) {
	orig := diamond(t, [4]string{"s", "a", "b", "t"}, [4]int{0, 1, 2, 3}, fourFns())
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Instance
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if orig.CanonicalHash() != back.CanonicalHash() {
		t.Fatal("JSON round trip changed the canonical hash")
	}
}

func TestAppendCanonicalReusesBuffer(t *testing.T) {
	inst := diamond(t, [4]string{"s", "a", "b", "t"}, [4]int{0, 1, 2, 3}, fourFns())
	buf := inst.AppendCanonical(nil)
	again := inst.AppendCanonical(buf[:0])
	if &buf[0] != &again[0] {
		t.Fatal("AppendCanonical did not reuse the scratch buffer")
	}
	if string(buf) != string(again) {
		t.Fatal("reused buffer produced a different encoding")
	}
}

package core_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
)

// TestLevelsStructure checks every structural invariant of the level
// decomposition and the pull-sweep schedule on the whole scenario corpus:
// depths are exact longest-path depths, every arc crosses strictly upward,
// Order is a level-bucketed topological order with Pos as its inverse, and
// the slot schedule is a bijection onto the arcs consistent with the CSR
// in-adjacency.  The level-parallel sweeps' determinism argument ("levels
// are independent") rests on these invariants.
func TestLevelsStructure(t *testing.T) {
	for _, spec := range scenario.DefaultCorpus() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			inst, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			c := core.Compile(inst)
			lv := c.Levels()
			n, m := inst.G.NumNodes(), inst.G.NumEdges()

			// Depth: 0 iff no in-arcs; otherwise 1 + max over in-neighbors.
			for v := 0; v < n; v++ {
				want := int32(0)
				for i := c.InStart[v]; i < c.InStart[v+1]; i++ {
					if d := lv.Depth[c.ArcFrom[c.InArcs[i]]] + 1; d > want {
						want = d
					}
				}
				if lv.Depth[v] != want {
					t.Fatalf("Depth[%d] = %d, want %d", v, lv.Depth[v], want)
				}
			}
			// Every arc goes to a strictly deeper level.
			for e := 0; e < m; e++ {
				if lv.Depth[c.ArcFrom[e]] >= lv.Depth[c.ArcTo[e]] {
					t.Fatalf("arc %d does not cross levels upward", e)
				}
			}
			// Order/Pos are inverse permutations, level-bucketed, ascending
			// by node id within a level.
			if len(lv.Order) != n || len(lv.Start) != lv.Count+1 {
				t.Fatalf("order/start sizes: %d nodes, %d starts, %d levels", len(lv.Order), len(lv.Start), lv.Count)
			}
			if lv.Start[0] != 0 || int(lv.Start[lv.Count]) != n {
				t.Fatalf("Start bounds [%d, %d], want [0, %d]", lv.Start[0], lv.Start[lv.Count], n)
			}
			maxW := 0
			for l := 0; l < lv.Count; l++ {
				if w := int(lv.Start[l+1] - lv.Start[l]); w > maxW {
					maxW = w
				}
				for p := lv.Start[l]; p < lv.Start[l+1]; p++ {
					v := lv.Order[p]
					if lv.Pos[v] != p {
						t.Fatalf("Pos[%d] = %d, want %d", v, lv.Pos[v], p)
					}
					if lv.Depth[v] != int32(l) {
						t.Fatalf("node %d at level %d has depth %d", v, l, lv.Depth[v])
					}
					if p > lv.Start[l] && lv.Order[p-1] >= v {
						t.Fatalf("level %d not ascending by node id at position %d", l, p)
					}
				}
			}
			if lv.MaxWidth != maxW {
				t.Fatalf("MaxWidth = %d, want %d", lv.MaxWidth, maxW)
			}
			// Slot schedule: position p's slots mirror the CSR in-arcs of
			// Order[p], tails named by position; ArcSlot inverts SlotArc.
			if int(lv.SlotStart[n]) != m || len(lv.SlotArc) != m {
				t.Fatalf("slot schedule covers %d of %d arcs", lv.SlotStart[n], m)
			}
			seen := make([]bool, m)
			for p := 0; p < n; p++ {
				v := lv.Order[p]
				if lv.SlotStart[p+1]-lv.SlotStart[p] != c.InStart[v+1]-c.InStart[v] {
					t.Fatalf("position %d slot count mismatch", p)
				}
				for s := lv.SlotStart[p]; s < lv.SlotStart[p+1]; s++ {
					e := lv.SlotArc[s]
					if seen[e] {
						t.Fatalf("arc %d appears in two slots", e)
					}
					seen[e] = true
					if c.InArcs[c.InStart[v]+(s-lv.SlotStart[p])] != e {
						t.Fatalf("slot %d arc order diverges from CSR in-arcs", s)
					}
					if lv.SlotFrom[s] != lv.Pos[c.ArcFrom[e]] {
						t.Fatalf("slot %d tail position mismatch", s)
					}
					if lv.ArcSlot[e] != s {
						t.Fatalf("ArcSlot[%d] = %d, want %d", e, lv.ArcSlot[e], s)
					}
				}
			}

			// Deterministic and memoized.
			if again := core.Compile(inst).Levels(); !reflect.DeepEqual(lv, again) {
				t.Fatal("levels differ across independent compiles")
			}
			if c.Levels() != lv {
				t.Fatal("Levels not memoized on the compiled instance")
			}

			// A longest-path sweep in Order must agree with MakespanUnder.
			et := make([]int64, n)
			for p := 0; p < n; p++ {
				var best int64
				for s := lv.SlotStart[p]; s < lv.SlotStart[p+1]; s++ {
					if cand := et[lv.SlotFrom[s]] + c.MinDur[lv.SlotArc[s]]; cand > best {
						best = cand
					}
				}
				et[p] = best
			}
			if got := et[lv.Pos[inst.Sink]]; got != c.MinMakespan {
				t.Fatalf("pull sweep over levels got makespan %d, want %d", got, c.MinMakespan)
			}
		})
	}
}

package core

import (
	"encoding/json"
	"fmt"

	"repro/internal/dag"
	"repro/internal/duration"
)

// edgeJSON is the wire form of one arc.
type edgeJSON struct {
	From int           `json:"from"`
	To   int           `json:"to"`
	Fn   duration.Spec `json:"fn"`
}

// instanceJSON is the wire form of an Instance.
type instanceJSON struct {
	Nodes []string   `json:"nodes"`
	Edges []edgeJSON `json:"edges"`
}

// MarshalJSON encodes the instance as {nodes, edges} with per-edge duration
// specs.
func (inst *Instance) MarshalJSON() ([]byte, error) {
	ij := instanceJSON{Nodes: make([]string, inst.G.NumNodes())}
	for v := range ij.Nodes {
		ij.Nodes[v] = inst.G.Name(v)
	}
	for e := 0; e < inst.G.NumEdges(); e++ {
		ed := inst.G.Edge(e)
		ij.Edges = append(ij.Edges, edgeJSON{
			From: ed.From,
			To:   ed.To,
			Fn:   duration.ToSpec(inst.Fns[e]),
		})
	}
	return json.Marshal(ij)
}

// UnmarshalJSON decodes and validates an instance.  Every structural
// defect is reported as an error rather than deferred to a later panic:
// dangling edge endpoints, self-loops, cycles, multiple sources or sinks,
// unreachable nodes (all via dag.Validate through NewInstance), empty
// graphs, and unknown or malformed duration specs.  Duplicate (parallel)
// arcs are NOT defects: the model is a multigraph, and the Section 3.1
// two-tuple expansion produces parallel arcs routinely.  On error *inst is
// left unmodified; on success the decoded instance re-marshals to an
// equivalent document (same topology, names and canonical duration
// tuples), so decode/encode round trips are stable.
func (inst *Instance) UnmarshalJSON(data []byte) error {
	var ij instanceJSON
	if err := json.Unmarshal(data, &ij); err != nil {
		return fmt.Errorf("core: invalid instance JSON: %w", err)
	}
	if len(ij.Nodes) == 0 {
		return fmt.Errorf("core: instance has no nodes")
	}
	g := dag.New()
	for _, name := range ij.Nodes {
		g.AddNode(name)
	}
	fns := make([]duration.Func, 0, len(ij.Edges))
	for i, e := range ij.Edges {
		// Bounds-check before AddEdge: dag.AddEdge panics on out-of-range
		// endpoints, and wire input must never reach a panic path.
		if e.From < 0 || e.From >= len(ij.Nodes) || e.To < 0 || e.To >= len(ij.Nodes) {
			return fmt.Errorf("core: edge %d (%d -> %d) references a missing node (have %d nodes)",
				i, e.From, e.To, len(ij.Nodes))
		}
		g.AddEdge(e.From, e.To)
		fn, err := duration.FromSpec(e.Fn)
		if err != nil {
			return fmt.Errorf("core: edge %d: %w", i, err)
		}
		fns = append(fns, fn)
	}
	built, err := NewInstance(g, fns)
	if err != nil {
		return err
	}
	*inst = *built
	return nil
}

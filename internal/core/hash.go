package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
)

// Canonical instance hashing.
//
// Every solve in this repository is a pure function of the instance: the
// optimum (and each solver's output) depends only on the DAG topology and
// on what each arc's duration function *evaluates to*.  CanonicalHash
// captures exactly that dependency, so it can key result caches: two
// instances with equal hashes are interchangeable inputs to every solver.
//
// The canonical encoding, in order:
//
//   - a version tag ("rtt-canon-v1"), so the definition can evolve without
//     old caches silently colliding with new ones;
//   - the node count.  Node NAMES are excluded: renaming nodes changes no
//     solve, so it must not change the hash (name-insensitivity);
//   - the arc count;
//   - every arc, encoded as (from, to, breakpoint count, breakpoints) with
//     all integers big-endian fixed-width, and the per-arc encodings sorted
//     lexicographically.  Sorting makes the hash independent of arc
//     insertion order; big-endian fixed-width makes lexicographic byte
//     order agree with numeric order, so the sort is canonical.  Parallel
//     arcs (legal in this multigraph model, and produced by the Section 3.1
//     expansion) contribute one encoding each, so multiplicity counts.
//
// A duration function enters the hash through its canonical breakpoint
// tuples (duration.Func.Tuples), which determine Eval exactly.  The wire
// "kind" is deliberately ignored: a kway spec and a hand-written step spec
// with the same breakpoints are the same function to every solver, so they
// hash identically.
//
// The hash is canonical under node renaming and arc reordering but NOT
// under node re-indexing: it does not solve graph isomorphism.  Two
// isomorphic instances whose nodes were numbered differently may hash
// differently, which for a cache only costs a miss, never a wrong hit.
const canonVersion = "rtt-canon-v1"

// AppendCanonical appends the canonical byte encoding of the instance (see
// the package documentation above canonVersion) to buf and returns the
// extended slice.  Callers that hash many instances can reuse buf across
// calls to avoid reallocating the scratch.
func (inst *Instance) AppendCanonical(buf []byte) []byte {
	buf = append(buf, canonVersion...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(inst.G.NumNodes()))
	m := inst.G.NumEdges()
	buf = binary.BigEndian.AppendUint64(buf, uint64(m))
	arcs := make([][]byte, m)
	for e := 0; e < m; e++ {
		ed := inst.G.Edge(e)
		tuples := inst.Fns[e].Tuples()
		enc := make([]byte, 0, 24+16*len(tuples))
		enc = binary.BigEndian.AppendUint64(enc, uint64(ed.From))
		enc = binary.BigEndian.AppendUint64(enc, uint64(ed.To))
		enc = binary.BigEndian.AppendUint64(enc, uint64(len(tuples)))
		for _, tp := range tuples {
			enc = binary.BigEndian.AppendUint64(enc, uint64(tp.R))
			enc = binary.BigEndian.AppendUint64(enc, uint64(tp.T))
		}
		arcs[e] = enc
	}
	sort.Slice(arcs, func(i, j int) bool { return bytes.Compare(arcs[i], arcs[j]) < 0 })
	for _, enc := range arcs {
		buf = append(buf, enc...)
	}
	return buf
}

// CanonicalHash returns the hex-encoded SHA-256 of the instance's canonical
// encoding; see AppendCanonical for the exact definition and its
// invariances.
func (inst *Instance) CanonicalHash() string {
	sum := sha256.Sum256(inst.AppendCanonical(nil))
	return hex.EncodeToString(sum[:])
}

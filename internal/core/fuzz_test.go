package core_test

import (
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/duration"
	"repro/internal/exact"
	"repro/internal/scenario"
)

// seedDocs are the starting corpus for both fuzz targets: valid wire
// instances from the scenario families plus hand-picked adversarial
// documents (the hardening cases UnmarshalJSON already guards).
func seedDocs(f *testing.F) {
	f.Helper()
	for _, spec := range []scenario.Spec{
		{Name: "s1", Family: "layered", Seed: 3,
			Params: scenario.Params{"layers": 2, "width": 2, "extra": 1, "tuples": 3, "maxt0": 9, "maxr": 3}},
		{Name: "s2", Family: "adversarial", Seed: 5, Params: scenario.Params{"diamonds": 2, "t0": 8}},
		{Name: "s3", Family: "forkjoin", Seed: 7, Params: scenario.Params{"stages": 1, "width": 2, "class": 1, "maxt0": 9}},
	} {
		spec := spec
		b := int64(2)
		spec.Budget = &b
		inst, err := spec.Build()
		if err != nil {
			f.Fatal(err)
		}
		data, err := json.Marshal(inst)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"nodes":[],"edges":[]}`))
	f.Add([]byte(`{"nodes":["a","b"],"edges":[{"from":0,"to":5,"fn":{"kind":"const","t0":1}}]}`))
	f.Add([]byte(`{"nodes":["a","b"],"edges":[{"from":0,"to":1,"fn":{"kind":"zzz"}},{"from":1,"to":0,"fn":{"kind":"const"}}]}`))
	f.Add([]byte(`{"nodes":["a","b","c"],"edges":[{"from":0,"to":1,"fn":{"kind":"kway","t0":9}},{"from":0,"to":1,"fn":{"kind":"kway","t0":9}},{"from":1,"to":2,"fn":{"kind":"const","t0":0}}]}`))
	// Regression seed: a 19-digit kway T0 once OOM-killed the fuzz worker
	// by materializing ~3e9 breakpoints; the wire cap must reject it.
	f.Add([]byte(`{"nodes":["a","b"],"edges":[{"from":0,"to":1,"fn":{"kind":"kway","t0":9000000000000000000}}]}`))
	// Regression seed: the single-node zero-arc instance (source == sink)
	// once spun flow.Dinic.MaxFlow forever during min-flow cancellation.
	f.Add([]byte(`{"nodes":[""]}`))
}

// solvableCheap reports whether the exact cross-check is affordable and
// well-defined: the tuple-assignment space is what branch-and-bound
// explores, and near-MaxInt64 durations or resources (legal on the wire)
// push path sums into overflow territory the solvers do not defend
// against - both out of scope for the hash consistency property.
func solvableCheap(inst *core.Instance) bool {
	const maxMagnitude = 1 << 40
	space := int64(1)
	for _, fn := range inst.Fns {
		tuples := fn.Tuples()
		space *= int64(len(tuples))
		if space > 1<<12 {
			return false
		}
		for _, tp := range tuples {
			if tp.R > maxMagnitude || tp.T > maxMagnitude {
				return false
			}
		}
	}
	return true
}

// FuzzInstanceUnmarshalJSON hammers the wire decoder: arbitrary bytes
// must either fail cleanly or produce a fully validated instance whose
// re-marshaled form decodes to the same canonical hash (round-trip
// stability), and must never panic or mutate the receiver on failure.
func FuzzInstanceUnmarshalJSON(f *testing.F) {
	seedDocs(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		var inst core.Instance
		if err := json.Unmarshal(data, &inst); err != nil {
			if inst.G != nil || inst.Fns != nil {
				t.Fatalf("failed decode mutated the receiver: %+v", inst)
			}
			return
		}
		// Success implies full structural validity.
		if _, _, err := inst.G.Validate(); err != nil {
			t.Fatalf("decoded instance fails validation: %v", err)
		}
		if len(inst.Fns) != inst.G.NumEdges() {
			t.Fatalf("%d duration functions for %d arcs", len(inst.Fns), inst.G.NumEdges())
		}
		out, err := json.Marshal(&inst)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		var back core.Instance
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("round trip failed to decode: %v", err)
		}
		if inst.CanonicalHash() != back.CanonicalHash() {
			t.Fatal("round trip changed the canonical hash")
		}
	})
}

// mutateIsomorphic rewrites the instance without changing what any solver
// can observe: nodes are renamed and arcs re-inserted in a permuted
// order.  CanonicalHash promises insensitivity to exactly these rewrites.
func mutateIsomorphic(inst *core.Instance, rng *rand.Rand) *core.Instance {
	g := dag.New()
	for v := 0; v < inst.G.NumNodes(); v++ {
		g.AddNode("m" + string(rune('a'+rng.Intn(26))))
	}
	perm := rng.Perm(inst.G.NumEdges())
	fns := make([]duration.Func, 0, len(perm))
	for _, e := range perm {
		ed := inst.G.Edge(e)
		g.AddEdge(ed.From, ed.To)
		fns = append(fns, inst.Fns[e])
	}
	return core.MustInstance(g, fns)
}

// FuzzCanonicalHash checks the cache-identity contract end to end: a
// mutated-but-isomorphic instance must hash identically, and equal hashes
// must imply equal solve values (here: the exact optimum under a small
// budget), because the hash is what the result cache keys on.
func FuzzCanonicalHash(f *testing.F) {
	seedDocs(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		var inst core.Instance
		if err := json.Unmarshal(data, &inst); err != nil {
			return
		}
		if inst.G.NumEdges() > 24 || !solvableCheap(&inst) {
			return // keep the exact cross-check cheap
		}
		rng := rand.New(rand.NewSource(int64(len(data))))
		mut := mutateIsomorphic(&inst, rng)
		if inst.CanonicalHash() != mut.CanonicalHash() {
			t.Fatal("hash changed under node renaming / arc reordering")
		}
		// Hash equality must imply solve-value equality: two instances a
		// cache would identify must produce the same optimum.
		const budget = 3
		a, _, err := exact.MinMakespan(&inst, budget, nil)
		if err != nil {
			t.Fatalf("exact on original: %v", err)
		}
		b, _, err := exact.MinMakespan(mut, budget, nil)
		if err != nil {
			t.Fatalf("exact on mutation: %v", err)
		}
		if a.Makespan != b.Makespan || a.Value != b.Value {
			t.Fatalf("equal hashes, different optima: (%d,%d) vs (%d,%d)",
				a.Makespan, a.Value, b.Makespan, b.Value)
		}
	})
}

// Package core defines the discrete resource-time tradeoff instances of
// Das et al. (SPAA 2019) and the transformations between their three
// equivalent representations:
//
//   - VertexInstance: jobs on vertices (the race DAG D(P) of Section 1,
//     where a vertex is a memory cell whose work is its in-degree);
//   - Instance: jobs on arcs (the activity-on-arc form D' of Section 2);
//   - Expansion: arcs with at most two resource-time tuples (the form D”
//     of Section 3.1, Figure 6, consumed by the LP relaxation).
//
// A solution to either optimization problem is an integral source-to-sink
// flow: f_e units of resource routed through arc e let its job finish in
// t_e(f_e) time, and the makespan is the longest path under those
// durations.  Resources are reused along paths - the same unit serves every
// arc it traverses - which is the defining feature of the paper's model
// (Question 1.3).
//
// Instance is the construction and wire form; Compiled (see Compile) is
// the solve form: an immutable preprocessed view - CSR adjacency,
// topological order, canonical hash, breakpoint tables, convex envelopes,
// combinatorial bounds, and lazily derived expansion/recognition results -
// shared by every solver layer.  Compile once, solve many.
package core

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/duration"
	"repro/internal/flow"
)

// Instance is an activity-on-arc problem instance: a single-source
// single-sink DAG whose every arc carries a non-increasing duration
// function.
type Instance struct {
	G      *dag.Graph
	Fns    []duration.Func // per arc, indexed by edge ID
	Source int
	Sink   int
}

// NewInstance validates the graph (single source, single sink, acyclic,
// every node on a source-sink path) and pairs it with per-arc duration
// functions.
func NewInstance(g *dag.Graph, fns []duration.Func) (*Instance, error) {
	if len(fns) != g.NumEdges() {
		return nil, fmt.Errorf("core: %d duration functions for %d arcs", len(fns), g.NumEdges())
	}
	for e, fn := range fns {
		if fn == nil {
			return nil, fmt.Errorf("core: nil duration function on arc %d", e)
		}
	}
	s, t, err := g.Validate()
	if err != nil {
		return nil, err
	}
	return &Instance{G: g, Fns: fns, Source: s, Sink: t}, nil
}

// MustInstance is NewInstance that panics on error; for tests and for
// gadget constructions that are correct by construction.
func MustInstance(g *dag.Graph, fns []duration.Func) *Instance {
	inst, err := NewInstance(g, fns)
	if err != nil {
		panic(err)
	}
	return inst
}

// Durations evaluates every arc's duration under the given flow.
func (inst *Instance) Durations(f []int64) ([]int64, error) {
	if len(f) != inst.G.NumEdges() {
		return nil, fmt.Errorf("core: %d flows for %d arcs", len(f), inst.G.NumEdges())
	}
	d := make([]int64, len(f))
	for e, fn := range inst.Fns {
		d[e] = fn.Eval(f[e])
	}
	return d, nil
}

// Makespan returns the longest-path length under the durations induced by
// flow f.  It does not check flow validity; see ValidateFlow.
func (inst *Instance) Makespan(f []int64) (int64, error) {
	d, err := inst.Durations(f)
	if err != nil {
		return 0, err
	}
	return inst.G.Makespan(d)
}

// ZeroFlowMakespan is the makespan with no resources at all.
func (inst *Instance) ZeroFlowMakespan() int64 {
	m, err := inst.Makespan(make([]int64, inst.G.NumEdges()))
	if err != nil {
		panic(err) // impossible on a validated instance
	}
	return m
}

// MakespanLowerBound is the longest path when every job runs at its
// unlimited-resource duration; no flow can beat it.
func (inst *Instance) MakespanLowerBound() int64 {
	d := make([]int64, inst.G.NumEdges())
	for e, fn := range inst.Fns {
		d[e] = duration.MinTime(fn)
	}
	m, err := inst.G.Makespan(d)
	if err != nil {
		panic(err)
	}
	return m
}

// FlowValue returns the net flow out of the source.
func (inst *Instance) FlowValue(f []int64) int64 {
	var v int64
	for _, e := range inst.G.Out(inst.Source) {
		v += f[e]
	}
	for _, e := range inst.G.In(inst.Source) {
		v -= f[e]
	}
	return v
}

// ValidateFlow checks that f is a non-negative conserved source-to-sink
// flow of value at most budget (budget < 0 skips the budget check).
func (inst *Instance) ValidateFlow(f []int64, budget int64) error {
	v, err := flow.Conserved(inst.G, f, inst.Source, inst.Sink)
	if err != nil {
		return err
	}
	if budget >= 0 && v > budget {
		return fmt.Errorf("core: flow value %d exceeds budget %d", v, budget)
	}
	return nil
}

// Solution bundles a validated flow with its derived metrics.
type Solution struct {
	Flow     []int64
	Value    int64 // resources leaving the source
	Makespan int64
}

// NewSolution validates f and computes its value and makespan.
func (inst *Instance) NewSolution(f []int64) (Solution, error) {
	if err := inst.ValidateFlow(f, -1); err != nil {
		return Solution{}, err
	}
	m, err := inst.Makespan(f)
	if err != nil {
		return Solution{}, err
	}
	return Solution{Flow: f, Value: inst.FlowValue(f), Makespan: m}, nil
}

// MaxUsefulBudget returns a finite budget beyond which extra resources
// cannot help: enough to saturate every arc's last breakpoint along
// disjoint unit paths.
func (inst *Instance) MaxUsefulBudget() int64 {
	var total int64
	for _, fn := range inst.Fns {
		total += duration.MaxUsefulResource(fn)
	}
	return total
}

package core

import (
	"fmt"
	"sort"

	"repro/internal/dag"
	"repro/internal/duration"
)

// VertexInstance is a problem instance with jobs on vertices: the race DAG
// D(P) of Section 1, where each vertex is a memory cell, each arc is one
// update of its head using the value at its tail, and the work of a cell is
// the number of updates it receives (its in-degree).
type VertexInstance struct {
	G *dag.Graph
	// Fns[v] is the duration function of vertex v.  Its zero-resource
	// value Fns[v].Eval(0) is the vertex's work.
	Fns    []duration.Func
	Source int
	Sink   int
}

// NewVertexInstance validates and builds a vertex-job instance.
func NewVertexInstance(g *dag.Graph, fns []duration.Func) (*VertexInstance, error) {
	if len(fns) != g.NumNodes() {
		return nil, fmt.Errorf("core: %d duration functions for %d vertices", len(fns), g.NumNodes())
	}
	for v, fn := range fns {
		if fn == nil {
			return nil, fmt.Errorf("core: nil duration function on vertex %d", v)
		}
	}
	s, t, err := g.Validate()
	if err != nil {
		return nil, err
	}
	return &VertexInstance{G: g, Fns: fns, Source: s, Sink: t}, nil
}

// ReducerKind selects which reducer construction (and hence duration
// function class) mitigates the races at a vertex.
type ReducerKind int

// Reducer kinds for NewRaceInstance.
const (
	// NoReducer serializes all updates: duration is constant in-degree.
	NoReducer ReducerKind = iota
	// BinaryReducer uses recursive binary splitting (Equation 3).
	BinaryReducer
	// KWayReducer uses k-way splitting (Equation 2).
	KWayReducer
)

// NewRaceInstance builds the space-time tradeoff instance of Question 1.3
// from a race DAG: every vertex's work is its in-degree and its duration
// function is the chosen reducer class applied to that work.
func NewRaceInstance(g *dag.Graph, kind ReducerKind) (*VertexInstance, error) {
	fns := make([]duration.Func, g.NumNodes())
	for v := range fns {
		w := int64(g.InDegree(v))
		switch kind {
		case NoReducer:
			fns[v] = duration.Constant(w)
		case BinaryReducer:
			fns[v] = duration.NewRecursiveBinary(w)
		case KWayReducer:
			fns[v] = duration.NewKWay(w)
		default:
			return nil, fmt.Errorf("core: unknown reducer kind %d", kind)
		}
	}
	return NewVertexInstance(g, fns)
}

// Work returns the zero-resource duration of vertex v.
func (vi *VertexInstance) Work(v int) int64 { return vi.Fns[v].Eval(0) }

// Makespan is the longest path summing vertex works: the formal makespan of
// D(P) used throughout the paper (e.g. Figure 4's makespan of 11).
// alloc[v] is the resource allocated to vertex v's reducer; pass nil for no
// resources.
func (vi *VertexInstance) Makespan(alloc []int64) (int64, error) {
	n := vi.G.NumNodes()
	if alloc == nil {
		alloc = make([]int64, n)
	}
	if len(alloc) != n {
		return 0, fmt.Errorf("core: %d allocations for %d vertices", len(alloc), n)
	}
	order, err := vi.G.TopoOrder()
	if err != nil {
		return 0, err
	}
	comp := make([]int64, n)
	var best int64
	for _, v := range order {
		var in int64
		for _, e := range vi.G.In(v) {
			u := vi.G.Edge(e).From
			if comp[u] > in {
				in = comp[u]
			}
		}
		comp[v] = in + vi.Fns[v].Eval(alloc[v])
		if comp[v] > best {
			best = comp[v]
		}
	}
	return best, nil
}

// EarliestFinishTimes computes, for every vertex, the time all its updates
// complete under the fine-grained semantics of Sections 1 and 4.2: an
// update along arc (u, v) triggers the moment u is fully updated, v's lock
// serializes updates in arrival order (one time unit each), and v is done
// after its last update.  Source-like vertices with no updates finish at
// their work value (zero for true sources).
//
// This is exactly what an unbounded-processor discrete-event simulation
// produces (the racesim package cross-checks that), and it is the
// "earliest finish time" used by Table 3.  It is bounded above by Makespan
// (Observation 1.1).
func (vi *VertexInstance) EarliestFinishTimes() ([]int64, error) {
	order, err := vi.G.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := vi.G.NumNodes()
	fin := make([]int64, n)
	for _, v := range order {
		in := vi.G.In(v)
		if len(in) == 0 {
			fin[v] = vi.Work(v) // normally 0 for a source
			continue
		}
		arrivals := make([]int64, len(in))
		for i, e := range in {
			arrivals[i] = fin[vi.G.Edge(e).From]
		}
		if vi.Work(v) == 0 {
			// Zero-work vertices (virtual sources/sinks) synchronize
			// without applying updates.
			var worst int64
			for _, r := range arrivals {
				if r > worst {
					worst = r
				}
			}
			fin[v] = worst
			continue
		}
		sort.Slice(arrivals, func(i, j int) bool { return arrivals[i] < arrivals[j] })
		var clock int64
		for _, r := range arrivals {
			if r > clock {
				clock = r
			}
			clock++
		}
		fin[v] = clock
	}
	return fin, nil
}

// EarliestFinish returns the maximum earliest finish time over all
// vertices: the exact unbounded-processor execution time of the program.
func (vi *VertexInstance) EarliestFinish() (int64, error) {
	fin, err := vi.EarliestFinishTimes()
	if err != nil {
		return 0, err
	}
	var best int64
	for _, f := range fin {
		if f > best {
			best = f
		}
	}
	return best, nil
}

// ArcForm is the result of transforming a vertex-job instance into the
// activity-on-arc form of Section 2.
type ArcForm struct {
	Inst *Instance
	// JobArc[v] is the arc of Inst carrying vertex v's job.
	JobArc []int
	// EntryNode[v] / ExitNode[v] are the endpoints a_v, b_v of that arc.
	EntryNode, ExitNode []int
}

// ToArcForm applies the Section 2 transformation: vertex v becomes arc
// (a_v, b_v) carrying v's duration function, and each original arc (u, v)
// becomes a dummy arc (b_u, a_v) with constant zero duration.
func (vi *VertexInstance) ToArcForm() (*ArcForm, error) {
	g := dag.New()
	n := vi.G.NumNodes()
	af := &ArcForm{
		JobArc:    make([]int, n),
		EntryNode: make([]int, n),
		ExitNode:  make([]int, n),
	}
	var fns []duration.Func
	for v := 0; v < n; v++ {
		af.EntryNode[v] = g.AddNode("a:" + vi.G.Name(v))
		af.ExitNode[v] = g.AddNode("b:" + vi.G.Name(v))
	}
	for v := 0; v < n; v++ {
		af.JobArc[v] = g.AddEdge(af.EntryNode[v], af.ExitNode[v])
		fns = append(fns, vi.Fns[v])
	}
	for e := 0; e < vi.G.NumEdges(); e++ {
		ed := vi.G.Edge(e)
		g.AddEdge(af.ExitNode[ed.From], af.EntryNode[ed.To])
		fns = append(fns, duration.Constant(0))
	}
	inst, err := NewInstance(g, fns)
	if err != nil {
		return nil, err
	}
	af.Inst = inst
	return af, nil
}

// AllocFromFlow converts an arc-form flow back into a per-vertex resource
// allocation (the flow through each vertex's job arc).
func (af *ArcForm) AllocFromFlow(f []int64) []int64 {
	alloc := make([]int64, len(af.JobArc))
	for v, e := range af.JobArc {
		alloc[v] = f[e]
	}
	return alloc
}

package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Structural sketches and instance diffs.
//
// The durable solve store (internal/store) warm-starts a solve from a
// stored NEIGHBOR: an instance that differs from the incoming one on a
// handful of arcs.  Finding such neighbors needs an index coarser than
// CanonicalHash (which changes whenever any breakpoint moves) but strict
// enough that a stored solution transfers: the SKETCH hashes only the
// topology — node count, arc count, and every arc's endpoints in arc-index
// order.  Two instances with equal sketches have identical arc indexing,
// so a flow on one is a candidate flow on the other, arc by arc, and
// Diff can compare their duration tables positionally in O(m).
//
// Unlike CanonicalHash, the sketch deliberately does NOT sort the arc
// encodings: sorting would make the sketch insensitive to arc order, but
// then equal sketches would no longer imply index-aligned arcs and flows
// could not transfer without solving an assignment problem.  A re-encoded
// instance with permuted arcs therefore sketches differently — for a
// warm-start index that only costs a missed neighbor, never a wrong one.
const sketchVersion = "rtt-sketch-v1"

// AppendSketch appends the sketch byte encoding of the instance (version
// tag, node count, arc count, then each arc's endpoints in arc-index
// order, all big-endian fixed-width) to buf and returns the extended
// slice.
func (inst *Instance) AppendSketch(buf []byte) []byte {
	buf = append(buf, sketchVersion...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(inst.G.NumNodes()))
	m := inst.G.NumEdges()
	buf = binary.BigEndian.AppendUint64(buf, uint64(m))
	for e := 0; e < m; e++ {
		ed := inst.G.Edge(e)
		buf = binary.BigEndian.AppendUint64(buf, uint64(ed.From))
		buf = binary.BigEndian.AppendUint64(buf, uint64(ed.To))
	}
	return buf
}

// Sketch returns the hex-encoded SHA-256 of the instance's sketch
// encoding: the coarse topology-only identity the solve store indexes
// neighbors under.  Equal sketches mean identical node/arc counts and
// identical per-index arc endpoints, so flows transfer index-wise; the
// duration functions are deliberately excluded.
func (inst *Instance) Sketch() string {
	sum := sha256.Sum256(inst.AppendSketch(nil))
	return hex.EncodeToString(sum[:])
}

// Sketch returns the instance's structural sketch (Instance.Sketch),
// computed once and cached on the compiled form.
func (c *Compiled) Sketch() string {
	c.sketchOnce.Do(func() { c.sketch = c.Inst.Sketch() })
	return c.sketch
}

// InstanceDiff reports how two compiled instances differ.  It is only
// meaningful between instances; the zero value means "nothing in common".
type InstanceDiff struct {
	// SameTopology is true when both instances have identical node and arc
	// counts and identical per-index arc endpoints — the precondition for
	// transferring a flow from one to the other arc by arc.
	SameTopology bool
	// TouchedArcs lists, in increasing arc-index order, the arcs whose
	// duration breakpoint tables differ.  Empty with SameTopology means
	// the instances are solve-equivalent (same canonical hash).
	TouchedArcs []int
	// TouchedBreakpoints counts the differing breakpoint positions across
	// all touched arcs: positions where the tuples disagree, plus the
	// length difference when one table is longer.  It sizes the delta more
	// finely than len(TouchedArcs) when tables are reshaped wholesale.
	TouchedBreakpoints int
}

// Diff compares two compiled instances positionally: same topology or
// not, and which arcs' duration tables changed.  It is O(m + total
// breakpoints) and allocates only the touched-arc list.  The warm-start
// path uses it to decide whether a stored neighbor's solution is close
// enough to seed the new solve.
func Diff(a, b *Compiled) InstanceDiff {
	var d InstanceDiff
	if a.Inst.G.NumNodes() != b.Inst.G.NumNodes() || len(a.ArcFrom) != len(b.ArcFrom) {
		return d
	}
	if a.Inst.Source != b.Inst.Source || a.Inst.Sink != b.Inst.Sink {
		return d
	}
	for e := range a.ArcFrom {
		if a.ArcFrom[e] != b.ArcFrom[e] || a.ArcTo[e] != b.ArcTo[e] {
			return d
		}
	}
	d.SameTopology = true
	for e := range a.Tuples {
		ta, tb := a.Tuples[e], b.Tuples[e]
		diff := 0
		for i := 0; i < len(ta) && i < len(tb); i++ {
			if ta[i] != tb[i] {
				diff++
			}
		}
		if len(ta) > len(tb) {
			diff += len(ta) - len(tb)
		} else {
			diff += len(tb) - len(ta)
		}
		if diff > 0 {
			d.TouchedArcs = append(d.TouchedArcs, e)
			d.TouchedBreakpoints += diff
		}
	}
	return d
}

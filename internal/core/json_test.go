package core

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestUnmarshalRejectsAdversarialInstances feeds the wire decoder the
// malformed documents a public endpoint must survive: each case has to
// come back as an error (which the service layer maps to a 400), never a
// panic, and must leave the receiver untouched.
func TestUnmarshalRejectsAdversarialInstances(t *testing.T) {
	cases := []struct {
		name    string
		payload string
		wantErr string
	}{
		// Truncated documents are caught by encoding/json itself before
		// UnmarshalJSON runs; the error is still an error, not a panic.
		{"syntax", `{"nodes": ["s", "t"`, "unexpected end"},
		{"wrong-type", `{"nodes": 7}`, "invalid instance JSON"},
		{"empty-document", `{}`, "no nodes"},
		{"empty-graph", `{"nodes": [], "edges": []}`, "no nodes"},
		{"dangling-to", `{"nodes": ["s", "t"],
			"edges": [{"from": 0, "to": 5, "fn": {"kind": "const", "t0": 1}}]}`,
			"missing node"},
		{"negative-from", `{"nodes": ["s", "t"],
			"edges": [{"from": -1, "to": 1, "fn": {"kind": "const", "t0": 1}}]}`,
			"missing node"},
		{"unknown-kind", `{"nodes": ["s", "t"],
			"edges": [{"from": 0, "to": 1, "fn": {"kind": "warp", "t0": 1}}]}`,
			"unknown spec kind"},
		{"missing-fn", `{"nodes": ["s", "t"], "edges": [{"from": 0, "to": 1}]}`,
			"unknown spec kind"},
		{"bad-step-tuples", `{"nodes": ["s", "t"],
			"edges": [{"from": 0, "to": 1, "fn": {"kind": "step", "tuples": [{"r": 3, "t": 2}]}}]}`,
			"first tuple"},
		{"negative-const", `{"nodes": ["s", "t"],
			"edges": [{"from": 0, "to": 1, "fn": {"kind": "const", "t0": -4}}]}`,
			"negative"},
		{"self-loop", `{"nodes": ["s", "t", "u"],
			"edges": [{"from": 0, "to": 1, "fn": {"kind": "const", "t0": 1}},
			          {"from": 1, "to": 1, "fn": {"kind": "const", "t0": 1}}]}`,
			"self-loop"},
		{"cycle", `{"nodes": ["s", "a", "b", "t"],
			"edges": [{"from": 0, "to": 1, "fn": {"kind": "const", "t0": 1}},
			          {"from": 1, "to": 2, "fn": {"kind": "const", "t0": 1}},
			          {"from": 2, "to": 1, "fn": {"kind": "const", "t0": 1}},
			          {"from": 2, "to": 3, "fn": {"kind": "const", "t0": 1}}]}`,
			"cycle"},
		{"two-sources", `{"nodes": ["s1", "s2", "t"],
			"edges": [{"from": 0, "to": 2, "fn": {"kind": "const", "t0": 1}},
			          {"from": 1, "to": 2, "fn": {"kind": "const", "t0": 1}}]}`,
			"source"},
		{"isolated-node", `{"nodes": ["s", "island", "t"],
			"edges": [{"from": 0, "to": 2, "fn": {"kind": "const", "t0": 1}}]}`,
			"source"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inst := Instance{Source: -7} // sentinel: must survive failed decodes
			err := json.Unmarshal([]byte(tc.payload), &inst)
			if err == nil {
				t.Fatalf("decode succeeded; want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v; want it to mention %q", err, tc.wantErr)
			}
			if inst.Source != -7 || inst.G != nil {
				t.Fatal("failed decode modified the receiver")
			}
		})
	}
}

// TestUnmarshalAcceptsParallelArcs pins down that duplicate edges are NOT
// adversarial: the model is a multigraph (the Figure 6 expansion emits
// parallel arcs), so they must round-trip, with multiplicity preserved.
func TestUnmarshalAcceptsParallelArcs(t *testing.T) {
	payload := `{"nodes": ["s", "t"],
		"edges": [{"from": 0, "to": 1, "fn": {"kind": "const", "t0": 2}},
		          {"from": 0, "to": 1, "fn": {"kind": "const", "t0": 2}}]}`
	var inst Instance
	if err := json.Unmarshal([]byte(payload), &inst); err != nil {
		t.Fatalf("parallel arcs rejected: %v", err)
	}
	if inst.G.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d; want both parallel arcs", inst.G.NumEdges())
	}
	data, err := json.Marshal(&inst)
	if err != nil {
		t.Fatal(err)
	}
	var back Instance
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.G.NumEdges() != 2 {
		t.Fatalf("round trip lost a parallel arc: NumEdges = %d", back.G.NumEdges())
	}
}

// TestJSONRoundTripPreservesSemantics checks encode(decode(encode(x)))
// equivalence on a representative instance: same names, same topology,
// same durations at every evaluation point, same canonical hash.
func TestJSONRoundTripPreservesSemantics(t *testing.T) {
	orig := diamond(t, [4]string{"s", "a", "b", "t"}, [4]int{0, 1, 2, 3}, fourFns())
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Instance
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.G.NumNodes() != orig.G.NumNodes() || back.G.NumEdges() != orig.G.NumEdges() {
		t.Fatal("round trip changed the graph size")
	}
	for v := 0; v < orig.G.NumNodes(); v++ {
		if orig.G.Name(v) != back.G.Name(v) {
			t.Fatalf("node %d renamed: %q -> %q", v, orig.G.Name(v), back.G.Name(v))
		}
	}
	for e := 0; e < orig.G.NumEdges(); e++ {
		if orig.G.Edge(e) != back.G.Edge(e) {
			t.Fatalf("edge %d moved: %v -> %v", e, orig.G.Edge(e), back.G.Edge(e))
		}
		for r := int64(0); r <= 40; r++ {
			if orig.Fns[e].Eval(r) != back.Fns[e].Eval(r) {
				t.Fatalf("edge %d: Eval(%d) changed across round trip", e, r)
			}
		}
	}
	again, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	var back2 Instance
	if err := json.Unmarshal(again, &back2); err != nil {
		t.Fatal(err)
	}
	if back.CanonicalHash() != back2.CanonicalHash() {
		t.Fatal("second round trip changed the canonical hash")
	}
}

// TestUnmarshalSingleNodeInstance: the smallest valid instance is one node
// and no arcs (source == sink, makespan 0); it must decode, not error.
func TestUnmarshalSingleNodeInstance(t *testing.T) {
	var inst Instance
	if err := json.Unmarshal([]byte(`{"nodes": ["only"]}`), &inst); err != nil {
		t.Fatalf("single-node instance rejected: %v", err)
	}
	if inst.Source != inst.Sink {
		t.Fatal("single node must be both source and sink")
	}
	if inst.ZeroFlowMakespan() != 0 {
		t.Fatal("empty-arc instance must have makespan 0")
	}
}

package core

// Levels is the level decomposition of a compiled DAG plus the pull-based
// sweep schedule derived from it.  Both the relaxation engine's makespan /
// oracle sweeps and any other longest/shortest-path DP over the instance
// consume it.
//
// Nodes are bucketed by *depth*: Depth[v] is the length (in arcs) of the
// longest path ending at v, so every arc goes from a strictly shallower
// level to a strictly deeper one.  All nodes of one level are therefore
// independent — a DP that reads only predecessor values can process a whole
// level in parallel, level by level, and produce results bit-identical to
// the sequential sweep (parallelism changes WHEN a node is computed, never
// WHAT it computes).
//
// Order lists nodes level by level (ascending node id within a level); it
// is itself a valid topological order, and Pos is its inverse.  The sweep
// schedule re-indexes the CSR in-adjacency by position: position p's
// in-arcs occupy slots [SlotStart[p], SlotStart[p+1]), with SlotFrom[s] the
// *position* of the arc's tail and SlotArc[s] the arc id.  A pull sweep
// then walks three sequential arrays front to back — measurably faster
// than gathering through InArcs/ArcFrom — and per-slot payloads (envelope
// durations, oracle costs) live in slot-indexed arrays kept in sync via
// ArcSlot.
//
// Levels are built once per compiled instance (Compiled.Levels) and are
// read-only afterwards; concurrent readers need no synchronization.
type Levels struct {
	// Depth[v] is node v's level: 0 for nodes with no in-arcs, otherwise
	// 1 + max Depth over in-neighbors.
	Depth []int32
	// Count is the number of levels (max depth + 1).
	Count int
	// Start bounds each level's position range: level l holds positions
	// [Start[l], Start[l+1]) of Order.  len(Start) == Count+1.
	Start []int32
	// Order lists node ids level by level, ascending id within a level.
	// It is a valid topological order.
	Order []int32
	// Pos[v] is v's position in Order (the inverse permutation).
	Pos []int32
	// MaxWidth is the node count of the widest level.
	MaxWidth int

	// SlotStart bounds each position's in-arc slots: position p owns
	// slots [SlotStart[p], SlotStart[p+1]).  len(SlotStart) == n+1.
	SlotStart []int32
	// SlotFrom[s] is the position (not node id) of slot s's tail node.
	SlotFrom []int32
	// SlotArc[s] is the arc id occupying slot s.  Slots within one
	// position follow the CSR in-arc order, so the slot order is as
	// deterministic as the CSR itself.
	SlotArc []int32
	// ArcSlot[e] is the slot holding arc e (the inverse of SlotArc).
	ArcSlot []int32
}

// Levels returns the level decomposition and pull-sweep schedule, built
// once and cached.  The relaxation engine runs its makespan and oracle
// sweeps level-parallel over it.
func (c *Compiled) Levels() *Levels {
	c.levelsOnce.Do(func() { c.levels = buildLevels(c) })
	return c.levels
}

// buildLevels derives the level decomposition from the compiled CSR.
func buildLevels(c *Compiled) *Levels {
	n := len(c.OutStart) - 1
	m := len(c.ArcFrom)
	lv := &Levels{
		Depth: make([]int32, n),
		Order: make([]int32, n),
		Pos:   make([]int32, n),
	}
	// Depth by pulling over in-arcs in topological order: every tail is
	// assigned before its heads.
	maxDepth := int32(0)
	for _, v := range c.Topo {
		d := int32(0)
		for i := c.InStart[v]; i < c.InStart[v+1]; i++ {
			if pd := lv.Depth[c.ArcFrom[c.InArcs[i]]] + 1; pd > d {
				d = pd
			}
		}
		lv.Depth[v] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	lv.Count = int(maxDepth) + 1
	// Counting sort by depth; scanning node ids ascending makes the order
	// within each level ascending by id, independent of Topo's tie-breaks.
	lv.Start = make([]int32, lv.Count+1)
	for v := 0; v < n; v++ {
		lv.Start[lv.Depth[v]+1]++
	}
	maxW := int32(0)
	for l := 0; l < lv.Count; l++ {
		if lv.Start[l+1] > maxW {
			maxW = lv.Start[l+1]
		}
		lv.Start[l+1] += lv.Start[l]
	}
	lv.MaxWidth = int(maxW)
	next := make([]int32, lv.Count)
	copy(next, lv.Start[:lv.Count])
	for v := 0; v < n; v++ {
		d := lv.Depth[v]
		p := next[d]
		next[d]++
		lv.Order[p] = int32(v)
		lv.Pos[v] = p
	}
	// Slot schedule: in-arcs re-indexed by position, tails as positions.
	lv.SlotStart = make([]int32, n+1)
	lv.SlotFrom = make([]int32, m)
	lv.SlotArc = make([]int32, m)
	lv.ArcSlot = make([]int32, m)
	s := int32(0)
	for p := 0; p < n; p++ {
		lv.SlotStart[p] = s
		v := lv.Order[p]
		for i := c.InStart[v]; i < c.InStart[v+1]; i++ {
			e := c.InArcs[i]
			lv.SlotArc[s] = e
			lv.SlotFrom[s] = lv.Pos[c.ArcFrom[e]]
			lv.ArcSlot[e] = s
			s++
		}
	}
	lv.SlotStart[n] = s
	return lv
}

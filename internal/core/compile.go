package core

import (
	"sync"

	"repro/internal/duration"
)

// This file defines the compiled-instance core: one immutable, validated,
// preprocessed representation of an Instance that every solver layer and
// the solving service share.
//
// Before it existed, each layer re-derived its slice of the preprocessing
// pipeline on every solve: the exact search re-ran TopoOrder and
// re-materialized breakpoint tuples, the relaxation engine rebuilt the
// per-arc convex envelopes, the approximation algorithms re-expanded the
// instance to the two-tuple form, series-parallel recognition re-ran its
// reduction, and the service re-hashed JSON per request.  Compile performs
// the cheap O(m) derivations once, up front, and memoizes the expensive
// ones (canonical hash, envelopes, expansion, class detection, recognition)
// behind sync.Once so they are computed at most once per instance no matter
// how many solvers touch it.
//
// When to use Instance vs Compiled: Instance is the construction and wire
// form - build it, mutate nothing after validation, marshal it.  Compiled
// is the solve form - anything that reads topology, breakpoints, bounds or
// derived structures repeatedly should take *Compiled.  Compiling is cheap
// (linear in the arc count) but not free, so callers that solve the same
// instance more than once must compile once and reuse the result; all
// lazily derived state is safe for concurrent readers.

// SpaceSaturation is the cap at which multiplicative size estimates
// (AssignmentSpace) saturate: large enough that every routing threshold
// compares below it, small enough that the product never overflows int64.
const SpaceSaturation = int64(1) << 40

// Compiled is the immutable preprocessed form of an Instance.  Construct
// with Compile; never mutate any field or returned slice.
type Compiled struct {
	// Inst is the underlying validated instance.
	Inst *Instance

	// CSR adjacency: the arcs leaving node v are OutArcs[OutStart[v] :
	// OutStart[v+1]], those entering it InArcs[InStart[v] : InStart[v+1]].
	// ArcFrom and ArcTo give each arc's endpoints without an Edge struct
	// lookup.  Hot search loops iterate these contiguous arrays instead of
	// chasing the graph's per-node slices.
	OutStart []int32
	OutArcs  []int32
	InStart  []int32
	InArcs   []int32
	ArcFrom  []int32
	ArcTo    []int32

	// Topo is a topological order of the nodes.
	Topo []int

	// Tuples[e] is Fns[e].Tuples(), materialized once for every arc.
	Tuples [][]duration.Tuple

	// MinDur[e] is arc e's unlimited-resource duration; MinMakespan is the
	// longest path under MinDur (Instance.MakespanLowerBound): the floor no
	// flow can beat.
	MinDur      []int64
	MinMakespan int64

	// MaxUsefulBudget is Instance.MaxUsefulBudget: a finite budget beyond
	// which extra resources cannot help.
	MaxUsefulBudget int64

	// AssignmentSpace is the product of per-arc breakpoint counts - the
	// exact search's tuple-assignment space - saturating at SpaceSaturation.
	AssignmentSpace int64

	// ExpandedArcs counts the arcs the Section 3.1 expansion creates: one
	// per single-tuple arc, two per chain otherwise.  It sizes the dense LP
	// without materializing the expansion.
	ExpandedArcs int64

	hashOnce sync.Once
	hash     string

	sketchOnce sync.Once
	sketch     string

	classOnce sync.Once
	class     string

	envOnce sync.Once
	env     *Envelopes

	levelsOnce sync.Once
	levels     *Levels

	expandOnce sync.Once
	expanded   *Expanded
	expandErr  error

	memoMu sync.Mutex
	memo   map[string]any
}

// Compile derives the compiled form of a validated instance.  The instance
// must have been built by NewInstance (or an equivalent validated path) and
// must not change afterwards.  The eager work is linear in the arc count;
// the canonical hash, duration class, envelopes and expansion are derived
// lazily on first use and cached.
func Compile(inst *Instance) *Compiled {
	g := inst.G
	n, m := g.NumNodes(), g.NumEdges()
	topo, err := g.TopoOrder()
	if err != nil {
		panic(err) // instance was validated
	}
	c := &Compiled{
		Inst:            inst,
		OutStart:        make([]int32, n+1),
		OutArcs:         make([]int32, m),
		InStart:         make([]int32, n+1),
		InArcs:          make([]int32, m),
		ArcFrom:         make([]int32, m),
		ArcTo:           make([]int32, m),
		Topo:            topo,
		Tuples:          make([][]duration.Tuple, m),
		MinDur:          make([]int64, m),
		AssignmentSpace: 1,
	}
	// CSR prefix sums first: both the sequential and the gang fill need the
	// complete offsets before any adjacency is copied.
	for v := 0; v < n; v++ {
		c.OutStart[v+1] = c.OutStart[v] + int32(g.OutDegree(v))
		c.InStart[v+1] = c.InStart[v] + int32(g.InDegree(v))
	}
	if workers := compileGang(m); workers > 1 {
		c.fillParallel(workers)
	} else {
		c.csrRange(0, n)
		budget, expanded, space := c.arcRange(0, m)
		c.MaxUsefulBudget = budget
		c.ExpandedArcs = expanded
		c.AssignmentSpace = space
	}
	// Longest path under the unlimited-resource durations, via the order
	// just computed (the compiled twin of Instance.MakespanLowerBound).
	c.MinMakespan = c.MakespanUnder(c.MinDur)
	return c
}

// MakespanUnder returns the longest-path makespan under the given per-arc
// durations, sweeping the compiled CSR adjacency in the precomputed
// topological order - unlike dag.Graph.Makespan it re-derives nothing per
// call.  d must have one entry per arc; it is not validated.
func (c *Compiled) MakespanUnder(d []int64) int64 {
	et := make([]int64, len(c.OutStart)-1)
	for _, v := range c.Topo {
		tv := et[v]
		for i := c.OutStart[v]; i < c.OutStart[v+1]; i++ {
			e := c.OutArcs[i]
			if cand := tv + d[e]; cand > et[c.ArcTo[e]] {
				et[c.ArcTo[e]] = cand
			}
		}
	}
	return et[c.Inst.Sink]
}

// Hash returns the canonical instance hash (Instance.CanonicalHash),
// computed once and cached: the identity under which caches key results
// and compiled instances.
func (c *Compiled) Hash() string {
	c.hashOnce.Do(func() { c.hash = c.Inst.CanonicalHash() })
	return c.hash
}

// Class returns the most specific duration class covering every arc
// (duration.Classify), computed once and cached.
func (c *Compiled) Class() string {
	c.classOnce.Do(func() { c.class = duration.Classify(c.Inst.Fns) })
	return c.class
}

// Envelopes returns the per-arc lower convex envelopes of the duration
// breakpoints, built once and cached.  The relaxation engine evaluates
// them on every Frank-Wolfe iteration.  Large instances build hulls
// across the construction gang (byte-identical to the sequential build).
func (c *Compiled) Envelopes() *Envelopes {
	c.envOnce.Do(func() {
		if workers := compileGang(len(c.Tuples)); workers > 1 {
			c.env = buildEnvelopesParallel(c.Tuples, workers)
		} else {
			c.env = buildEnvelopes(c.Tuples)
		}
	})
	return c.env
}

// Expansion returns the Section 3.1 two-tuple expansion D”, built once
// and cached.  The dense-LP approximation pipeline consumes it.
func (c *Compiled) Expansion() (*Expanded, error) {
	c.expandOnce.Do(func() { c.expanded, c.expandErr = Expand(c.Inst) })
	return c.expanded, c.expandErr
}

// Memo returns the value cached under key, building it with build on first
// use.  Consumer packages memoize their per-instance derivations here (the
// series-parallel decomposition, for one) without core having to know
// their types.  build runs under the memo lock, so concurrent callers of
// the same key wait for one computation instead of duplicating it.
func (c *Compiled) Memo(key string, build func() any) any {
	c.memoMu.Lock()
	defer c.memoMu.Unlock()
	if v, ok := c.memo[key]; ok {
		return v
	}
	v := build()
	if c.memo == nil {
		c.memo = make(map[string]any)
	}
	c.memo[key] = v
	return v
}

package core

import (
	"repro/internal/dag"
	"repro/internal/duration"
)

// ChainLink describes one of the parallel two-edge chains that replace a
// multi-tuple arc in the Section 3.1 expansion (Figure 6).  Chain i of job
// j can be finished either with 0 resource in Time units, or with Delta
// resource in 0 units; the final chain of a job has Delta == 0 and is a
// pure floor at Time.
type ChainLink struct {
	JobArc  int   // expanded arc (u, u_i) carrying the chain's job
	FreeArc int   // expanded arc (u_i, v) with constant zero duration
	Delta   int64 // resource that zeroes the chain (0 on the last chain)
	Time    int64 // zero-resource duration of the chain
}

// Expanded is the D” form of an instance - every arc has at most two
// resource-time tuples, of the shape {<0,t>, <delta,0>} or {<0,t>} - plus
// the bookkeeping needed to map solutions back to the original instance.
type Expanded struct {
	*Instance
	// Chains[e] lists the parallel chains that replaced original arc e;
	// it is nil when the arc was copied verbatim (single-tuple arcs).
	Chains [][]ChainLink
	// CopiedArc[e] is the expanded arc ID of a verbatim-copied arc, or -1.
	CopiedArc []int
}

// Expand applies the Figure 6 transformation to inst: each arc whose
// duration function has l >= 2 breakpoints <r_i, t_i> becomes l parallel
// chains; chain i (i < l) has tuples {<0, t_i>, <r_{i+1}-r_i, 0>} and chain
// l has the single tuple {<0, t_l>}.  Arcs with a single breakpoint are
// copied unchanged.  The expanded graph reuses the original node IDs and
// appends the chain midpoints after them.
func Expand(inst *Instance) (*Expanded, error) {
	g := dag.New()
	for v := 0; v < inst.G.NumNodes(); v++ {
		g.AddNode(inst.G.Name(v))
	}
	var fns []duration.Func
	ex := &Expanded{
		Chains:    make([][]ChainLink, inst.G.NumEdges()),
		CopiedArc: make([]int, inst.G.NumEdges()),
	}
	for e := 0; e < inst.G.NumEdges(); e++ {
		ed := inst.G.Edge(e)
		tuples := inst.Fns[e].Tuples()
		if len(tuples) == 1 {
			id := g.AddEdge(ed.From, ed.To)
			fns = append(fns, duration.Constant(tuples[0].T))
			ex.CopiedArc[e] = id
			continue
		}
		ex.CopiedArc[e] = -1
		links := make([]ChainLink, len(tuples))
		for i, tp := range tuples {
			mid := g.AddNode(inst.G.Name(ed.From) + "~" + inst.G.Name(ed.To))
			jobArc := g.AddEdge(ed.From, mid)
			freeArc := g.AddEdge(mid, ed.To)
			link := ChainLink{JobArc: jobArc, FreeArc: freeArc, Time: tp.T}
			if i+1 < len(tuples) {
				link.Delta = tuples[i+1].R - tp.R
				fns = append(fns, duration.MustStep(
					duration.Tuple{R: 0, T: tp.T},
					duration.Tuple{R: link.Delta, T: 0},
				))
			} else {
				fns = append(fns, duration.Constant(tp.T))
			}
			links[i] = link
			fns = append(fns, duration.Constant(0)) // the free arc
		}
		ex.Chains[e] = links
	}
	expanded, err := NewInstance(g, fns)
	if err != nil {
		return nil, err
	}
	ex.Instance = expanded
	return ex, nil
}

// PullBack converts a flow on the expanded instance into the equivalent
// flow on the original instance: chain flows of a job sum onto the original
// arc.  The result is a valid flow of the same value (chains are parallel,
// so conservation is preserved; the core_test package checks this).
func (ex *Expanded) PullBack(orig *Instance, fx []int64) []int64 {
	f := make([]int64, orig.G.NumEdges())
	for e := 0; e < orig.G.NumEdges(); e++ {
		if id := ex.CopiedArc[e]; id >= 0 {
			f[e] = fx[id]
			continue
		}
		for _, link := range ex.Chains[e] {
			f[e] += fx[link.JobArc]
		}
	}
	return f
}

// CanonicalResource reports, for original arc e under expanded flow fx, the
// canonical resource level achieved: the breakpoint r_k reached by zeroing
// the maximal prefix of chains (the bijective mapping of Lemma 3.1).
func (ex *Expanded) CanonicalResource(orig *Instance, e int, fx []int64) int64 {
	if ex.CopiedArc[e] >= 0 {
		return 0
	}
	tuples := orig.Fns[e].Tuples()
	links := ex.Chains[e]
	for i, link := range links {
		if link.Delta == 0 || fx[link.JobArc] < link.Delta {
			return tuples[i].R
		}
	}
	return tuples[len(tuples)-1].R
}

// RealizedDuration reports the duration of original arc e implied directly
// by the chain flows (the max over chain durations).  It can exceed the
// step function evaluated at the summed flow when flow is spread across
// chains non-canonically; the approximation algorithms always redistribute
// canonically, making the two equal.
func (ex *Expanded) RealizedDuration(orig *Instance, e int, fx []int64) int64 {
	if id := ex.CopiedArc[e]; id >= 0 {
		return orig.Fns[e].Eval(0)
	}
	var worst int64
	for _, link := range ex.Chains[e] {
		d := link.Time
		if link.Delta > 0 && fx[link.JobArc] >= link.Delta {
			d = 0
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

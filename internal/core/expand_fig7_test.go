package core

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/duration"
	"repro/internal/flow"
)

// TestBinaryChainExpansion checks the Figure 7 expansion: a recursive
// binary splitting job with tuples {<0,x>, <2,t1>, ..., <2^k,tk>} becomes
// parallel chains whose deltas are the successive power-of-two gaps and
// whose times are the Equation 3 values.
func TestBinaryChainExpansion(t *testing.T) {
	g := dag.New()
	s := g.AddNode("s")
	tt := g.AddNode("t")
	g.AddEdge(s, tt)
	fn := duration.NewRecursiveBinary(64)
	inst := MustInstance(g, []duration.Func{fn})

	ex, err := Expand(inst)
	if err != nil {
		t.Fatal(err)
	}
	tuples := fn.Tuples()
	links := ex.Chains[0]
	if len(links) != len(tuples) {
		t.Fatalf("chains = %d; want %d", len(links), len(tuples))
	}
	for i, link := range links {
		if link.Time != tuples[i].T {
			t.Fatalf("chain %d time = %d; want %d", i, link.Time, tuples[i].T)
		}
		if i+1 < len(tuples) {
			if want := tuples[i+1].R - tuples[i].R; link.Delta != want {
				t.Fatalf("chain %d delta = %d; want %d", i, link.Delta, want)
			}
		} else if link.Delta != 0 {
			t.Fatalf("last chain delta = %d; want 0", link.Delta)
		}
	}
	// Figure 7's first two chains for t0 = 64: delta 2 at time 64, then
	// the power-of-two gaps 2, 4, 8, ...
	if links[0].Time != 64 || links[0].Delta != 2 {
		t.Fatalf("chain 0 = %+v", links[0])
	}
	// The expanded instance achieves exactly the Equation 3 values under
	// canonical prefix flows.
	for i, tp := range tuples {
		lower := make([]int64, ex.G.NumEdges())
		for j := 0; j < i; j++ {
			lower[links[j].JobArc] = links[j].Delta
		}
		flow := lowerClosureFlow(t, ex, lower)
		if got := ex.RealizedDuration(inst, 0, flow); got != tp.T {
			t.Fatalf("prefix %d: realized %d; want %d", i, got, tp.T)
		}
	}
}

// lowerClosureFlow routes a min-flow meeting the lower bounds.
func lowerClosureFlow(t *testing.T, ex *Expanded, lower []int64) []int64 {
	t.Helper()
	res, err := minFlowHelper(ex, lower)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func minFlowHelper(ex *Expanded, lower []int64) ([]int64, error) {
	res, err := flow.MinFlow(ex.G, lower, ex.Source, ex.Sink)
	if err != nil {
		return nil, err
	}
	return res.EdgeFlow, nil
}

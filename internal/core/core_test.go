package core

import (
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/dag"
	"repro/internal/duration"
	"repro/internal/flow"
)

// pathInstance builds s -> m -> t with the given duration functions.
func pathInstance(f1, f2 duration.Func) *Instance {
	g := dag.New()
	s := g.AddNode("s")
	m := g.AddNode("m")
	t := g.AddNode("t")
	g.AddEdge(s, m)
	g.AddEdge(m, t)
	return MustInstance(g, []duration.Func{f1, f2})
}

func TestNewInstanceValidation(t *testing.T) {
	g := dag.New()
	s := g.AddNode("s")
	tt := g.AddNode("t")
	g.AddEdge(s, tt)
	if _, err := NewInstance(g, nil); err == nil {
		t.Fatal("want error for missing duration functions")
	}
	if _, err := NewInstance(g, []duration.Func{nil}); err == nil {
		t.Fatal("want error for nil duration function")
	}
	if _, err := NewInstance(g, []duration.Func{duration.Constant(1)}); err != nil {
		t.Fatal(err)
	}
}

func TestMakespanAndDurations(t *testing.T) {
	inst := pathInstance(
		duration.MustStep(duration.Tuple{R: 0, T: 5}, duration.Tuple{R: 2, T: 1}),
		duration.Constant(3),
	)
	if got := inst.ZeroFlowMakespan(); got != 8 {
		t.Fatalf("ZeroFlowMakespan = %d; want 8", got)
	}
	m, err := inst.Makespan([]int64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if m != 4 {
		t.Fatalf("Makespan = %d; want 4", m)
	}
	if lb := inst.MakespanLowerBound(); lb != 4 {
		t.Fatalf("MakespanLowerBound = %d; want 4", lb)
	}
	if _, err := inst.Makespan([]int64{1}); err == nil {
		t.Fatal("want error for wrong flow length")
	}
}

func TestValidateFlowAndSolution(t *testing.T) {
	inst := pathInstance(duration.Constant(1), duration.Constant(1))
	if err := inst.ValidateFlow([]int64{2, 2}, 2); err != nil {
		t.Fatal(err)
	}
	if err := inst.ValidateFlow([]int64{2, 2}, 1); err == nil {
		t.Fatal("want budget violation")
	}
	if err := inst.ValidateFlow([]int64{2, 1}, 5); err == nil {
		t.Fatal("want conservation violation")
	}
	sol, err := inst.NewSolution([]int64{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value != 3 || sol.Makespan != 2 {
		t.Fatalf("solution = %+v", sol)
	}
	if inst.FlowValue([]int64{3, 3}) != 3 {
		t.Fatal("FlowValue mismatch")
	}
}

func TestMaxUsefulBudget(t *testing.T) {
	inst := pathInstance(
		duration.MustStep(duration.Tuple{R: 0, T: 5}, duration.Tuple{R: 2, T: 1}),
		duration.MustStep(duration.Tuple{R: 0, T: 5}, duration.Tuple{R: 3, T: 0}),
	)
	if got := inst.MaxUsefulBudget(); got != 5 {
		t.Fatalf("MaxUsefulBudget = %d; want 5", got)
	}
}

// raceDiamond is a small race DAG: s updates a twice and b once; a updates
// b twice; a and b each update t once.
func raceDiamond(t *testing.T) *VertexInstance {
	t.Helper()
	g := dag.New()
	s := g.AddNode("s")
	a := g.AddNode("a")
	b := g.AddNode("b")
	tt := g.AddNode("t")
	g.AddEdge(s, a)
	g.AddEdge(s, a)
	g.AddEdge(s, b)
	g.AddEdge(a, b)
	g.AddEdge(a, b)
	g.AddEdge(a, tt)
	g.AddEdge(b, tt)
	vi, err := NewRaceInstance(g, NoReducer)
	if err != nil {
		t.Fatal(err)
	}
	return vi
}

func TestVertexMakespan(t *testing.T) {
	vi := raceDiamond(t)
	// Works: s=0, a=2, b=3, t=2.  Longest path s->a->b->t = 0+2+3+2 = 7.
	m, err := vi.Makespan(nil)
	if err != nil {
		t.Fatal(err)
	}
	if m != 7 {
		t.Fatalf("Makespan = %d; want 7", m)
	}
	if vi.Work(2) != 3 {
		t.Fatalf("Work(b) = %d; want 3", vi.Work(2))
	}
}

func TestEarliestFinishSerializesArrivals(t *testing.T) {
	vi := raceDiamond(t)
	fin, err := vi.EarliestFinishTimes()
	if err != nil {
		t.Fatal(err)
	}
	// s done at 0; a receives 2 updates at time 0 -> done at 2.
	// b receives updates at times 0 (from s), 2, 2 (from a):
	// serialized: 1, then max(1,2)+1=3, then 4.
	// t receives updates at 2 (from a) and 4 (from b): 3, then 5.
	want := []int64{0, 2, 4, 5}
	for v := range want {
		if fin[v] != want[v] {
			t.Fatalf("finish[%d] = %d; want %d (all %v)", v, fin[v], want[v], fin)
		}
	}
	ef, err := vi.EarliestFinish()
	if err != nil {
		t.Fatal(err)
	}
	if ef != 5 {
		t.Fatalf("EarliestFinish = %d; want 5", ef)
	}
}

// TestObservation11 checks Observation 1.1 on random race DAGs: the true
// unbounded-processor execution time (EarliestFinish) never exceeds the
// DAG makespan.
func TestObservation11(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		vi := randomRaceDAG(t, rng)
		ef, err := vi.EarliestFinish()
		if err != nil {
			t.Fatal(err)
		}
		ms, err := vi.Makespan(nil)
		if err != nil {
			t.Fatal(err)
		}
		if ef > ms {
			t.Fatalf("trial %d: EarliestFinish %d > Makespan %d", trial, ef, ms)
		}
	}
}

func randomRaceDAG(t *testing.T, rng *rand.Rand) *VertexInstance {
	t.Helper()
	g := dag.New()
	s := g.AddNode("s")
	prev := []int{s}
	var all []int
	for l := 0; l < 3; l++ {
		width := 1 + rng.Intn(3)
		var layer []int
		for i := 0; i < width; i++ {
			v := g.AddNode("v")
			layer = append(layer, v)
			for k := 0; k <= rng.Intn(3); k++ {
				g.AddEdge(prev[rng.Intn(len(prev))], v)
			}
		}
		all = append(all, layer...)
		prev = layer
	}
	tt := g.AddNode("t")
	for _, v := range prev {
		g.AddEdge(v, tt)
	}
	// Hook dangling mid-layer sinks to t so validation passes.
	for _, v := range all {
		if g.OutDegree(v) == 0 {
			g.AddEdge(v, tt)
		}
	}
	vi, err := NewRaceInstance(g, NoReducer)
	if err != nil {
		t.Fatal(err)
	}
	return vi
}

func TestNewRaceInstanceKinds(t *testing.T) {
	g := dag.New()
	s := g.AddNode("s")
	v := g.AddNode("v")
	tt := g.AddNode("t")
	for i := 0; i < 100; i++ {
		g.AddEdge(s, v)
	}
	g.AddEdge(v, tt)
	bin, err := NewRaceInstance(g, BinaryReducer)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := bin.Fns[v].(*duration.RecursiveBinary); !ok {
		t.Fatalf("binary kind produced %T", bin.Fns[v])
	}
	kway, err := NewRaceInstance(g, KWayReducer)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := kway.Fns[v].(*duration.KWay); !ok {
		t.Fatalf("kway kind produced %T", kway.Fns[v])
	}
	if _, err := NewRaceInstance(g, ReducerKind(99)); err == nil {
		t.Fatal("want error for unknown kind")
	}
}

func TestToArcFormEquivalence(t *testing.T) {
	vi := raceDiamond(t)
	af, err := vi.ToArcForm()
	if err != nil {
		t.Fatal(err)
	}
	// Zero flow: arc-form makespan equals the vertex makespan.
	vm, _ := vi.Makespan(nil)
	if am := af.Inst.ZeroFlowMakespan(); am != vm {
		t.Fatalf("arc-form zero makespan %d != vertex makespan %d", am, vm)
	}
	// Push a real flow that allocates 2 units to vertex b's job arc and
	// check the equivalence under allocation.
	lower := make([]int64, af.Inst.G.NumEdges())
	lower[af.JobArc[2]] = 2
	res, err := flow.MinFlow(af.Inst.G, lower, af.Inst.Source, af.Inst.Sink)
	if err != nil {
		t.Fatal(err)
	}
	am, err := af.Inst.Makespan(res.EdgeFlow)
	if err != nil {
		t.Fatal(err)
	}
	alloc := af.AllocFromFlow(res.EdgeFlow)
	vmAlloc, err := vi.Makespan(alloc)
	if err != nil {
		t.Fatal(err)
	}
	// The arc-form flow may allocate resources to arcs it merely passes
	// through, so its makespan is at most the alloc-based vertex makespan.
	if am > vmAlloc {
		t.Fatalf("arc makespan %d > vertex makespan %d", am, vmAlloc)
	}
}

func TestExpandStructure(t *testing.T) {
	inst := pathInstance(
		duration.MustStep(duration.Tuple{R: 0, T: 10}, duration.Tuple{R: 2, T: 6}, duration.Tuple{R: 5, T: 0}),
		duration.Constant(3),
	)
	ex, err := Expand(inst)
	if err != nil {
		t.Fatal(err)
	}
	if ex.CopiedArc[1] < 0 {
		t.Fatal("constant arc should be copied verbatim")
	}
	links := ex.Chains[0]
	if len(links) != 3 {
		t.Fatalf("3-tuple arc should expand to 3 chains, got %d", len(links))
	}
	if links[0].Delta != 2 || links[0].Time != 10 {
		t.Fatalf("chain 0 = %+v; want delta 2 time 10", links[0])
	}
	if links[1].Delta != 3 || links[1].Time != 6 {
		t.Fatalf("chain 1 = %+v; want delta 3 time 6", links[1])
	}
	if links[2].Delta != 0 || links[2].Time != 0 {
		t.Fatalf("chain 2 = %+v; want delta 0 time 0", links[2])
	}
	// Expanded instance still validates and has max 2 tuples per arc.
	for e, fn := range ex.Fns {
		if len(fn.Tuples()) > 2 {
			t.Fatalf("expanded arc %d has %d tuples", e, len(fn.Tuples()))
		}
	}
}

func TestExpandPullBackAndCanonical(t *testing.T) {
	inst := pathInstance(
		duration.MustStep(duration.Tuple{R: 0, T: 10}, duration.Tuple{R: 2, T: 6}, duration.Tuple{R: 5, T: 0}),
		duration.Constant(3),
	)
	ex, err := Expand(inst)
	if err != nil {
		t.Fatal(err)
	}
	// Route 2 units through chain 0 (zeroing it) and check bookkeeping.
	links := ex.Chains[0]
	lower := make([]int64, ex.G.NumEdges())
	lower[links[0].JobArc] = 2
	res, err := flow.MinFlow(ex.G, lower, ex.Source, ex.Sink)
	if err != nil {
		t.Fatal(err)
	}
	f := ex.PullBack(inst, res.EdgeFlow)
	if err := inst.ValidateFlow(f, -1); err != nil {
		t.Fatalf("pulled-back flow invalid: %v", err)
	}
	if inst.FlowValue(f) != res.Value {
		t.Fatalf("pulled-back value %d != expanded value %d", inst.FlowValue(f), res.Value)
	}
	if got := ex.CanonicalResource(inst, 0, res.EdgeFlow); got != 2 {
		t.Fatalf("CanonicalResource = %d; want 2", got)
	}
	if got := ex.RealizedDuration(inst, 0, res.EdgeFlow); got != 6 {
		t.Fatalf("RealizedDuration = %d; want 6 (chain 1 unzeroed)", got)
	}
	if got := ex.RealizedDuration(inst, 1, res.EdgeFlow); got != 3 {
		t.Fatalf("RealizedDuration(const) = %d; want 3", got)
	}
	if got := ex.CanonicalResource(inst, 1, res.EdgeFlow); got != 0 {
		t.Fatalf("CanonicalResource(const) = %d; want 0", got)
	}
}

// TestExpandRealizedAtLeastStep checks on random flows that the realized
// duration is never better than the step function at the summed flow
// (canonical redistribution can only help).
func TestExpandRealizedAtLeastStep(t *testing.T) {
	inst := pathInstance(
		duration.MustStep(duration.Tuple{R: 0, T: 10}, duration.Tuple{R: 2, T: 6}, duration.Tuple{R: 5, T: 0}),
		duration.MustStep(duration.Tuple{R: 0, T: 4}, duration.Tuple{R: 1, T: 2}),
	)
	ex, err := Expand(inst)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		lower := make([]int64, ex.G.NumEdges())
		for e := range lower {
			lower[e] = int64(rng.Intn(3))
		}
		res, err := flow.MinFlow(ex.G, lower, ex.Source, ex.Sink)
		if err != nil {
			t.Fatal(err)
		}
		f := ex.PullBack(inst, res.EdgeFlow)
		for e := 0; e < inst.G.NumEdges(); e++ {
			realized := ex.RealizedDuration(inst, e, res.EdgeFlow)
			if stepVal := inst.Fns[e].Eval(f[e]); realized < stepVal {
				t.Fatalf("trial %d arc %d: realized %d < step %d", trial, e, realized, stepVal)
			}
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	inst := pathInstance(
		duration.MustStep(duration.Tuple{R: 0, T: 10}, duration.Tuple{R: 2, T: 6}),
		duration.NewRecursiveBinary(64),
	)
	data, err := json.Marshal(inst)
	if err != nil {
		t.Fatal(err)
	}
	var back Instance
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.G.NumNodes() != 3 || back.G.NumEdges() != 2 {
		t.Fatalf("round trip shape: %d nodes %d edges", back.G.NumNodes(), back.G.NumEdges())
	}
	for e := 0; e < 2; e++ {
		for r := int64(0); r < 70; r++ {
			if inst.Fns[e].Eval(r) != back.Fns[e].Eval(r) {
				t.Fatalf("edge %d differs at r=%d", e, r)
			}
		}
	}
}

func TestJSONRejectsBadInput(t *testing.T) {
	var inst Instance
	if err := json.Unmarshal([]byte(`{"nodes":["a"],"edges":[{"from":0,"to":5,"fn":{"kind":"const"}}]}`), &inst); err == nil {
		t.Fatal("want error for dangling edge")
	}
	if err := json.Unmarshal([]byte(`{"nodes":["a","b"],"edges":[{"from":0,"to":1,"fn":{"kind":"nope"}}]}`), &inst); err == nil {
		t.Fatal("want error for unknown duration kind")
	}
	if err := json.Unmarshal([]byte(`{`), &inst); err == nil {
		t.Fatal("want error for syntax")
	}
}

package core

import "repro/internal/duration"

// Envelopes holds the per-arc LOWER CONVEX ENVELOPE of every duration
// function's breakpoints, in CSR form: arc e owns hull points
// [SegStart[e], SegStart[e+1]) of (R, T), with Slope[j] the (negative)
// slope of the segment starting at point j.  Filling the Section 3.1
// expansion's parallel chains in slope order is exactly linear
// interpolation along this envelope, so it is the relaxation model of the
// scale tier (internal/relax); the hull minorizes the step function
// pointwise, so envelope makespans lower-bound real ones.
//
// Envelopes are built once per compiled instance (Compiled.Envelopes) and
// are read-only afterwards; concurrent readers need no synchronization.
type Envelopes struct {
	SegStart []int32
	R        []int64
	T        []int64
	Slope    []float64
}

// buildEnvelopes constructs the hulls from the canonical breakpoints.
// Tuples arrive with strictly increasing R and strictly decreasing T
// (duration.Func's contract), so the hull is the subsequence with strictly
// increasing segment slopes (Andrew's monotone chain, lower half).  Hull
// points are real breakpoints, so rounding to a hull vertex always lands
// on an achievable resource level.
func buildEnvelopes(tuples [][]duration.Tuple) *Envelopes {
	ev := &Envelopes{SegStart: make([]int32, len(tuples)+1)}
	for e, ts := range tuples {
		ev.appendHull(ts)
		ev.SegStart[e+1] = int32(len(ev.R))
	}
	return ev
}

// appendHull pushes one arc's lower convex hull onto the CSR arrays.
func (ev *Envelopes) appendHull(tuples []duration.Tuple) {
	base := len(ev.R)
	for _, tp := range tuples {
		// Pop hull points that are no longer on the lower hull: keep
		// slopes strictly increasing.  Cross-product form avoids division.
		for len(ev.R)-base >= 2 {
			i, j := len(ev.R)-2, len(ev.R)-1
			// slope(i,j) >= slope(j,new)  <=>  (Tj-Ti)(Rnew-Rj) >= (Tnew-Tj)(Rj-Ri)
			if (ev.T[j]-ev.T[i])*(tp.R-ev.R[j]) >= (tp.T-ev.T[j])*(ev.R[j]-ev.R[i]) {
				ev.R = ev.R[:j]
				ev.T = ev.T[:j]
				ev.Slope = ev.Slope[:len(ev.Slope)-1]
				continue
			}
			break
		}
		if len(ev.R) > base {
			j := len(ev.R) - 1
			ev.Slope = append(ev.Slope, float64(tp.T-ev.T[j])/float64(tp.R-ev.R[j]))
		}
		ev.R = append(ev.R, tp.R)
		ev.T = append(ev.T, tp.T)
	}
}

// slopeBase returns the index of arc e's first segment slope in Slope.
// Slope entries are appended in arc order and an arc with p hull points
// owns p-1 slopes, so the base is SegStart[e] minus the number of arcs
// preceding e.
func (ev *Envelopes) slopeBase(e int) int { return int(ev.SegStart[e]) - e }

// Eval evaluates the envelope duration of arc e at (fractional) flow x and
// reports the slope of the containing segment (the subgradient; 0 at or
// past the last hull point).  Hull points per arc are few, so a linear
// scan wins over binary search.
func (ev *Envelopes) Eval(e int, x float64) (dur, grad float64) {
	lo, hi := int(ev.SegStart[e]), int(ev.SegStart[e+1])
	j := lo
	for j+1 < hi && float64(ev.R[j+1]) <= x {
		j++
	}
	if j+1 >= hi { // at or past the last hull point
		return float64(ev.T[hi-1]), 0
	}
	sg := ev.Slope[ev.slopeBase(e)+(j-lo)]
	return float64(ev.T[j]) + sg*(x-float64(ev.R[j])), sg
}

package scenario

import (
	"encoding/json"
	"testing"
)

// TestEveryFamilyBuildsAtDefaults materializes each family with default
// parameters and checks the result is a validated instance.
func TestEveryFamilyBuildsAtDefaults(t *testing.T) {
	fams := Families()
	if len(fams) != 8 {
		t.Fatalf("have %d families, want 8", len(fams))
	}
	for _, f := range fams {
		spec := Spec{Name: "t-" + f.Name, Family: f.Name, Seed: 42, Budget: i64(5)}
		inst, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if inst.G.NumEdges() == 0 {
			t.Fatalf("%s: empty instance", f.Name)
		}
		for _, k := range f.SizeParams {
			if _, ok := f.Defaults[k]; !ok {
				t.Fatalf("%s: size parameter %q has no default", f.Name, k)
			}
		}
	}
}

// TestBuildDeterminism checks the corpus contract: the same spec yields
// the same canonical hash on every build, and distinct seeds diverge.
func TestBuildDeterminism(t *testing.T) {
	for _, spec := range DefaultCorpus() {
		a, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		b, err := spec.Build()
		if err != nil {
			t.Fatalf("%s rebuild: %v", spec.Name, err)
		}
		if a.CanonicalHash() != b.CanonicalHash() {
			t.Fatalf("%s: rebuild changed the canonical hash", spec.Name)
		}
	}
	base := Spec{Name: "a", Family: "layered", Seed: 1, Budget: i64(3)}
	other := base
	other.Seed = 2
	ia, err := base.Build()
	if err != nil {
		t.Fatal(err)
	}
	ib, err := other.Build()
	if err != nil {
		t.Fatal(err)
	}
	if ia.CanonicalHash() == ib.CanonicalHash() {
		t.Fatal("different seeds built identical instances")
	}
}

// TestSpecJSONRoundTrip checks specs survive the wire.
func TestSpecJSONRoundTrip(t *testing.T) {
	for _, spec := range DefaultCorpus() {
		data, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		var back Spec
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		ia, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		ib, err := back.Build()
		if err != nil {
			t.Fatalf("%s after round trip: %v", spec.Name, err)
		}
		if ia.CanonicalHash() != ib.CanonicalHash() {
			t.Fatalf("%s: JSON round trip changed the instance", spec.Name)
		}
	}
}

// TestValidateRejects checks the error paths: unknown family, unknown or
// non-positive parameters, missing or doubled objectives.
func TestValidateRejects(t *testing.T) {
	cases := []Spec{
		{Name: "x", Family: "nope", Seed: 1, Budget: i64(1)},
		{Name: "x", Family: "layered", Seed: 1, Params: Params{"bogus": 3}, Budget: i64(1)},
		{Name: "x", Family: "layered", Seed: 1, Params: Params{"layers": 0}, Budget: i64(1)},
		{Name: "x", Family: "layered", Seed: 1},
		{Name: "x", Family: "layered", Seed: 1, Budget: i64(1), Target: i64(1)},
	}
	for i, spec := range cases {
		if err := spec.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, spec)
		}
	}
}

// TestScaleGrowsInstances checks Scale multiplies the size parameters and
// actually enlarges the built DAG, without touching the original spec.
func TestScaleGrowsInstances(t *testing.T) {
	for _, f := range Families() {
		spec := Spec{Name: "s-" + f.Name, Family: f.Name, Seed: 7, Budget: i64(5)}
		big := spec.Scale(2)
		if big.Name != spec.Name+"@x2" {
			t.Fatalf("%s: scaled name %q", f.Name, big.Name)
		}
		a, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		b, err := big.Build()
		if err != nil {
			t.Fatalf("%s scaled: %v", f.Name, err)
		}
		if b.G.NumEdges() <= a.G.NumEdges() {
			t.Fatalf("%s: scaling did not grow the instance (%d -> %d arcs)",
				f.Name, a.G.NumEdges(), b.G.NumEdges())
		}
		if spec.Params != nil {
			t.Fatalf("%s: Scale mutated the original spec", f.Name)
		}
	}
}

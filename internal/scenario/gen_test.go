package scenario

import (
	"testing"

	"repro/internal/core"
	"repro/internal/duration"
	"repro/internal/sp"
)

func TestLayeredValidates(t *testing.T) {
	g := NewGen(1)
	for trial := 0; trial < 20; trial++ {
		d := g.Layered(3, 3, 2)
		if _, _, err := d.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := NewGen(7).StepInstance(3, 3, 2, 3, 10, 3)
	b := NewGen(7).StepInstance(3, 3, 2, 3, 10, 3)
	if a.G.NumEdges() != b.G.NumEdges() {
		t.Fatal("same seed produced different shapes")
	}
	for e := 0; e < a.G.NumEdges(); e++ {
		if a.Fns[e].String() != b.Fns[e].String() {
			t.Fatalf("edge %d: %s != %s", e, a.Fns[e], b.Fns[e])
		}
	}
}

func TestStepFuncValid(t *testing.T) {
	g := NewGen(3)
	for i := 0; i < 100; i++ {
		fn := g.StepFunc(4, 20, 4)
		tuples := fn.Tuples()
		if tuples[0].R != 0 {
			t.Fatal("first tuple must be at R=0")
		}
		for j := 1; j < len(tuples); j++ {
			if tuples[j].R <= tuples[j-1].R || tuples[j].T >= tuples[j-1].T {
				t.Fatalf("tuples not canonical: %v", tuples)
			}
		}
	}
}

func TestKindInstances(t *testing.T) {
	g := NewGen(5)
	k := g.KWayInstance(2, 2, 1, 30)
	for _, fn := range k.Fns {
		if _, ok := fn.(*duration.KWay); !ok {
			t.Fatalf("got %T", fn)
		}
	}
	b := g.BinaryInstance(2, 2, 1, 30)
	for _, fn := range b.Fns {
		if _, ok := fn.(*duration.RecursiveBinary); !ok {
			t.Fatalf("got %T", fn)
		}
	}
}

func TestSPTree(t *testing.T) {
	g := NewGen(9)
	tr := g.SPTree(8, 3, 10, 3)
	if tr.Leaves() != 8 {
		t.Fatalf("leaves = %d; want 8", tr.Leaves())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	inst, _, err := tr.ToInstance()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sp.Recognize(inst); !ok {
		t.Fatal("generated SP instance not recognized as SP")
	}
}

func TestRequestStream(t *testing.T) {
	const n, distinct = 200, 10
	reqs := NewGen(21).RequestStream(n, distinct)
	if len(reqs) != n {
		t.Fatalf("len = %d; want %d", len(reqs), n)
	}
	seen := make(map[*core.Instance]int)
	budgets, targets := 0, 0
	for i, req := range reqs {
		if (req.Budget >= 0) == (req.Target >= 0) {
			t.Fatalf("request %d: exactly one objective required (budget %d, target %d)",
				i, req.Budget, req.Target)
		}
		if req.Budget >= 0 {
			budgets++
		} else {
			targets++
			if req.Target < req.Inst.MakespanLowerBound() {
				t.Fatalf("request %d: target %d below the reachability bound", i, req.Target)
			}
		}
		if _, _, err := req.Inst.G.Validate(); err != nil {
			t.Fatalf("request %d: invalid instance: %v", i, err)
		}
		seen[req.Inst]++
	}
	if len(seen) > distinct {
		t.Fatalf("stream used %d distinct instances; want at most %d", len(seen), distinct)
	}
	// The stream must repeat instances: that repetition is what result
	// caching feeds on.
	if len(seen) >= n {
		t.Fatal("stream never repeated an instance")
	}
	if budgets == 0 || targets == 0 {
		t.Fatalf("stream must mix objectives (budgets %d, targets %d)", budgets, targets)
	}

	// Same seed, same stream.
	again := NewGen(21).RequestStream(n, distinct)
	for i := range reqs {
		if reqs[i].Budget != again[i].Budget || reqs[i].Target != again[i].Target ||
			reqs[i].Inst.CanonicalHash() != again[i].Inst.CanonicalHash() {
			t.Fatalf("request %d differs across identically-seeded generators", i)
		}
	}
}

func TestForkJoin(t *testing.T) {
	g := NewGen(11)
	for _, kind := range []string{duration.KindKWay, duration.KindBinary, duration.KindStep} {
		inst := g.ForkJoin(3, 4, kind, 20)
		if _, _, err := inst.G.Validate(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if inst.G.NumEdges() != 3*4*2 {
			t.Fatalf("%s: edges = %d", kind, inst.G.NumEdges())
		}
	}
}

// Package scenario grows internal/gen into a catalog of named,
// parameterized workload families: every benchmark, corpus file, fuzz
// seed and property test in this repository draws instances from the same
// eight families, so "as many scenarios as you can imagine" is a set of
// JSON specs instead of hand-rolled generator calls scattered across
// tests.
//
// A Spec is the serializable identity of one instance: family name, seed
// and integer parameters.  Building a spec is deterministic - the same
// spec yields byte-identical canonical encodings (core.CanonicalHash) on
// every machine - which is what lets testdata/scenarios/ commit golden
// solve results and lets CI re-derive and verify them.
//
// The families:
//
//	layered      layered random DAG, random step functions
//	forkjoin     fork-join stages with a chosen duration class
//	randomsp     random two-terminal series-parallel instance
//	pipeline     parallel lanes with stage crosslinks (software pipeline)
//	diamondmesh  grid of diamonds (wavefront/stencil dependence)
//	matmul       the Figure 3 parallel matrix-multiply race DAG
//	racetrace    random update trace reduced to its race DAG D(P)
//	adversarial  near-threshold step functions hostile to LP rounding
package scenario

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/core"
)

// Params carries a family's integer knobs by name.
type Params map[string]int64

// get reads a parameter, falling back to the family default.
func (p Params) get(name string, def Params) int64 {
	if v, ok := p[name]; ok {
		return v
	}
	return def[name]
}

// Spec is the serializable identity of one scenario instance plus the
// objective it is solved under (exactly one of Budget and Target set).
type Spec struct {
	// Name labels the scenario in corpus files and reports.
	Name string `json:"name"`
	// Family selects the generator; see Families.
	Family string `json:"family"`
	// Seed drives every random choice; same spec, same instance.
	Seed int64 `json:"seed"`
	// Params overrides the family's default parameters.
	Params Params `json:"params,omitempty"`
	// Budget selects min-makespan mode (nil means unset).
	Budget *int64 `json:"budget,omitempty"`
	// Target selects min-resource mode (nil means unset).
	Target *int64 `json:"target,omitempty"`
}

// Family describes one workload generator.
type Family struct {
	// Name is the registry key.
	Name string
	// Desc is a one-line description for catalogs and -list output.
	Desc string
	// Defaults holds every recognized parameter with its default value.
	Defaults Params
	// SizeParams lists the parameters that Scale multiplies to grow the
	// instance (the nightly corpus runs scaled sizes).
	SizeParams []string

	build func(g *Gen, p Params, def Params) (*core.Instance, error)
}

var families = map[string]Family{}

func register(f Family) {
	if _, dup := families[f.Name]; dup {
		panic("scenario: duplicate family " + f.Name)
	}
	families[f.Name] = f
}

// Families lists every registered family sorted by name.
func Families() []Family {
	out := make([]Family, 0, len(families))
	for _, f := range families {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup resolves a family by name.
func Lookup(name string) (Family, bool) {
	f, ok := families[name]
	return f, ok
}

// Validate checks the spec names a known family, uses only recognized
// parameters, and sets exactly one objective.  The error for an invalid
// spec is deterministic: parameters are checked in sorted order, so two
// runs over the same bad spec report the same first offender.
//
//rt:deterministic
func (s Spec) Validate() error {
	f, ok := families[s.Family]
	if !ok {
		names := make([]string, 0, len(families))
		for _, fam := range Families() {
			names = append(names, fam.Name)
		}
		return fmt.Errorf("scenario: unknown family %q (have %v)", s.Family, names)
	}
	params := make([]string, 0, len(s.Params))
	for name := range s.Params {
		params = append(params, name)
	}
	sort.Strings(params)
	for _, name := range params {
		if _, ok := f.Defaults[name]; !ok {
			return fmt.Errorf("scenario: family %q has no parameter %q", s.Family, name)
		}
		if v := s.Params[name]; v <= 0 {
			return fmt.Errorf("scenario: parameter %q = %d must be positive", name, v)
		}
	}
	if (s.Budget == nil) == (s.Target == nil) {
		return fmt.Errorf("scenario: %q must set exactly one of budget and target", s.Name)
	}
	return nil
}

// Build deterministically materializes the spec's instance.
func (s Spec) Build() (*core.Instance, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	f := families[s.Family]
	inst, err := f.build(NewGen(s.Seed), s.Params, f.Defaults)
	if err != nil {
		return nil, fmt.Errorf("scenario: building %q: %w", s.Name, err)
	}
	return inst, nil
}

// Scale returns a copy of the spec with every size parameter multiplied
// by factor (the nightly corpus runs factor 2 and up).  The budget or
// target scales along: a bigger instance has a proportionally bigger
// makespan floor and useful budget, so a frozen objective would go
// unreachable (targets) or trivial (budgets).  Non-size parameters are
// preserved; the name records the factor.
//
//rt:deterministic — the scaled spec feeds Build and the corpus goldens; the map-to-map parameter copy below is order-insensitive by shape.
func (s Spec) Scale(factor int64) Spec {
	if factor <= 1 {
		return s
	}
	f, ok := families[s.Family]
	if !ok {
		return s
	}
	scaled := s
	scaled.Name = fmt.Sprintf("%s@x%d", s.Name, factor)
	scaled.Params = Params{}
	for k, v := range s.Params {
		scaled.Params[k] = v
	}
	for _, k := range f.SizeParams {
		scaled.Params[k] = s.Params.get(k, f.Defaults) * factor
	}
	if s.Budget != nil {
		scaled.Budget = i64(*s.Budget * factor)
	}
	if s.Target != nil {
		scaled.Target = i64(*s.Target * factor)
	}
	return scaled
}

// MarshalIndent renders the spec as stable, human-diffable JSON.
func (s Spec) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

package scenario

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/duration"
	"repro/internal/racesim"
)

// reducerKind maps the integer "reducer"/"class" parameter onto the
// duration classes: 0 plain (no reducer / random steps), 1 k-way, 2
// recursive binary.
func reducerKind(v int64) (core.ReducerKind, error) {
	switch v {
	case 0:
		return core.NoReducer, nil
	case 1:
		return core.KWayReducer, nil
	case 2:
		return core.BinaryReducer, nil
	}
	return 0, fmt.Errorf("reducer %d outside {0: none, 1: kway, 2: binary}", v)
}

func init() {
	register(Family{
		Name:       "layered",
		Desc:       "layered random DAG with random non-increasing step functions",
		Defaults:   Params{"layers": 6, "width": 5, "extra": 3, "tuples": 4, "maxt0": 30, "maxr": 4},
		SizeParams: []string{"layers", "width"},
		build: func(g *Gen, p, def Params) (*core.Instance, error) {
			return g.StepInstance(int(p.get("layers", def)), int(p.get("width", def)), int(p.get("extra", def)),
				int(p.get("tuples", def)), p.get("maxt0", def), p.get("maxr", def)), nil
		},
	})
	register(Family{
		Name:       "forkjoin",
		Desc:       "fork-join stages; class selects step (0), k-way (1) or binary (2) jobs",
		Defaults:   Params{"stages": 3, "width": 4, "class": 1, "maxt0": 30},
		SizeParams: []string{"stages", "width"},
		build: func(g *Gen, p, def Params) (*core.Instance, error) {
			kind := duration.KindStep
			switch p.get("class", def) {
			case 1:
				kind = duration.KindKWay
			case 2:
				kind = duration.KindBinary
			}
			return g.ForkJoin(int(p.get("stages", def)), int(p.get("width", def)), kind, p.get("maxt0", def)), nil
		},
	})
	register(Family{
		Name:       "randomsp",
		Desc:       "random two-terminal series-parallel DAG (exact DP reachable)",
		Defaults:   Params{"leaves": 12, "tuples": 4, "maxt0": 30, "maxr": 4},
		SizeParams: []string{"leaves"},
		build: func(g *Gen, p, def Params) (*core.Instance, error) {
			tree := g.SPTree(int(p.get("leaves", def)), int(p.get("tuples", def)),
				p.get("maxt0", def), p.get("maxr", def))
			inst, _, err := tree.ToInstance()
			return inst, err
		},
	})
	register(Family{
		Name:       "pipeline",
		Desc:       "parallel lanes with forward stage crosslinks (software pipeline)",
		Defaults:   Params{"lanes": 4, "stages": 6, "tuples": 3, "maxt0": 20, "maxr": 3},
		SizeParams: []string{"lanes", "stages"},
		build:      buildPipeline,
	})
	register(Family{
		Name:       "diamondmesh",
		Desc:       "rows x cols grid of diamonds (wavefront/stencil dependences)",
		Defaults:   Params{"rows": 5, "cols": 5, "tuples": 3, "maxt0": 20, "maxr": 3},
		SizeParams: []string{"rows", "cols"},
		build:      buildDiamondMesh,
	})
	register(Family{
		Name:       "matmul",
		Desc:       "Figure 3 Parallel-MM race DAG with reducers on the output cells",
		Defaults:   Params{"n": 6, "reducer": 2},
		SizeParams: []string{"n"},
		build:      buildMatmul,
	})
	register(Family{
		Name:       "racetrace",
		Desc:       "random update trace reduced to its race DAG D(P)",
		Defaults:   Params{"cells": 60, "updates": 180, "maxsrcs": 3, "reducer": 1},
		SizeParams: []string{"cells", "updates"},
		build:      buildRaceTrace,
	})
	register(Family{
		Name:       "adversarial",
		Desc:       "diamond chain of near-threshold step functions hostile to LP rounding",
		Defaults:   Params{"diamonds": 8, "t0": 64},
		SizeParams: []string{"diamonds"},
		build:      buildAdversarial,
	})
}

// buildPipeline lays out `lanes` parallel chains of `stages` arcs with
// zero-cost crosslinks from each stage to the next stage of the adjacent
// lane: the dependence shape of a software pipeline, where a lane may not
// start stage k+1 before its neighbor finished stage k.
func buildPipeline(g *Gen, p, def Params) (*core.Instance, error) {
	lanes, stages := int(p.get("lanes", def)), int(p.get("stages", def))
	tuples := int(p.get("tuples", def))
	maxT0, maxR := p.get("maxt0", def), p.get("maxr", def)
	d := dag.New()
	src := d.AddNode("s")
	var fns []duration.Func
	node := make([][]int, lanes)
	for l := 0; l < lanes; l++ {
		node[l] = make([]int, stages+1)
		node[l][0] = src
		for st := 1; st <= stages; st++ {
			node[l][st] = d.AddNode(fmt.Sprintf("l%d.%d", l, st))
			d.AddEdge(node[l][st-1], node[l][st])
			fns = append(fns, g.StepFunc(tuples, maxT0, maxR))
		}
	}
	if lanes > 1 {
		for l := 0; l < lanes; l++ {
			for st := 1; st < stages; st++ {
				d.AddEdge(node[l][st], node[(l+1)%lanes][st+1])
				fns = append(fns, duration.Constant(0))
			}
		}
	}
	snk := d.AddNode("t")
	for l := 0; l < lanes; l++ {
		d.AddEdge(node[l][stages], snk)
		fns = append(fns, duration.Constant(0))
	}
	return core.NewInstance(d, fns)
}

// buildDiamondMesh builds the rows x cols grid DAG with right and down
// arcs: the dependence shape of wavefront computations and stencil
// updates, where every interior cell is a diamond.
func buildDiamondMesh(g *Gen, p, def Params) (*core.Instance, error) {
	rows, cols := int(p.get("rows", def)), int(p.get("cols", def))
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("diamondmesh needs rows, cols >= 2 (got %d x %d)", rows, cols)
	}
	tuples := int(p.get("tuples", def))
	maxT0, maxR := p.get("maxt0", def), p.get("maxr", def)
	d := dag.New()
	node := make([][]int, rows)
	for r := 0; r < rows; r++ {
		node[r] = make([]int, cols)
		for c := 0; c < cols; c++ {
			node[r][c] = d.AddNode(fmt.Sprintf("%d.%d", r, c))
		}
	}
	var fns []duration.Func
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				d.AddEdge(node[r][c], node[r][c+1])
				fns = append(fns, g.StepFunc(tuples, maxT0, maxR))
			}
			if r+1 < rows {
				d.AddEdge(node[r][c], node[r+1][c])
				fns = append(fns, g.StepFunc(tuples, maxT0, maxR))
			}
		}
	}
	return core.NewInstance(d, fns)
}

// buildMatmul reduces the Figure 3 Parallel-MM trace to its race DAG and
// converts it to activity-on-arc form; the reducer class is the tradeoff
// under study in the paper's Section 1 example.
func buildMatmul(g *Gen, p, def Params) (*core.Instance, error) {
	kind, err := reducerKind(p.get("reducer", def))
	if err != nil {
		return nil, err
	}
	vi, err := racesim.ParallelMM(int(p.get("n", def))).RaceInstance(kind)
	if err != nil {
		return nil, err
	}
	af, err := vi.ToArcForm()
	if err != nil {
		return nil, err
	}
	return af.Inst, nil
}

// buildRaceTrace draws a random update trace - each update writes a cell
// and reads up to maxsrcs strictly lower-numbered cells, which keeps the
// race DAG acyclic - and reduces it to arc form with the chosen reducer.
func buildRaceTrace(g *Gen, p, def Params) (*core.Instance, error) {
	cells := int(p.get("cells", def))
	if cells < 2 {
		return nil, fmt.Errorf("racetrace needs cells >= 2 (got %d)", cells)
	}
	updates := int(p.get("updates", def))
	maxSrcs := int(p.get("maxsrcs", def))
	kind, err := reducerKind(p.get("reducer", def))
	if err != nil {
		return nil, err
	}
	tr := &racesim.Trace{NumCells: cells}
	for i := 0; i < updates; i++ {
		dst := 1 + g.Intn(cells-1)
		n := 1 + g.Intn(maxSrcs)
		srcs := make([]int, 0, n)
		for j := 0; j < n; j++ {
			srcs = append(srcs, g.Intn(dst))
		}
		tr.Updates = append(tr.Updates, racesim.Update{Dst: dst, Srcs: srcs})
	}
	vi, err := tr.RaceInstance(kind)
	if err != nil {
		return nil, err
	}
	af, err := vi.ToArcForm()
	if err != nil {
		return nil, err
	}
	return af.Inst, nil
}

// buildAdversarial chains diamonds whose arcs are engineered against the
// alpha = 1/2 threshold rounding: one side's single breakpoint sits
// exactly at half its base duration (the rounding boundary), the other
// side buys its whole duration with an exponentially growing jump, and a
// linear staircase arc makes every fractional point of the relaxation
// fall between breakpoints.
func buildAdversarial(g *Gen, p, def Params) (*core.Instance, error) {
	diamonds := int(p.get("diamonds", def))
	t0 := p.get("t0", def)
	if t0 < 4 {
		return nil, fmt.Errorf("adversarial needs t0 >= 4 (got %d)", t0)
	}
	d := dag.New()
	prev := d.AddNode("s")
	var fns []duration.Func
	for i := 0; i < diamonds; i++ {
		next := d.AddNode(fmt.Sprintf("d%d", i))
		T := t0 + int64(i)
		// Boundary arc: duration halves at one unit - the rounded-up /
		// rounded-down decision flips on the tiniest fractional change.
		d.AddEdge(prev, next)
		fns = append(fns, duration.MustStep(
			duration.Tuple{R: 0, T: T},
			duration.Tuple{R: 1, T: (T + 1) / 2},
		))
		// Cliff arc: all-or-nothing at an exponentially growing price.
		jump := int64(2) << uint(i%6)
		d.AddEdge(prev, next)
		fns = append(fns, duration.MustStep(
			duration.Tuple{R: 0, T: T},
			duration.Tuple{R: jump, T: 1},
		))
		// Staircase arc: unit steps, so the convex envelope is a straight
		// line and every fractional flow lands between breakpoints.
		stair := []duration.Tuple{}
		steps := T - 1
		if steps > 8 {
			steps = 8
		}
		for k := int64(0); k <= steps; k++ {
			stair = append(stair, duration.Tuple{R: k, T: T - k})
		}
		d.AddEdge(prev, next)
		st, err := duration.NewStep(stair)
		if err != nil {
			return nil, err
		}
		fns = append(fns, st)
		prev = next
	}
	return core.NewInstance(d, fns)
}

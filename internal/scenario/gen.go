// This file holds the seeded workload generator that package scenario's
// families are built from: layered random DAGs with random duration
// functions, random series-parallel instances, and fork-join shapes.
// Everything is seeded, so benchmarks and experiments are reproducible run
// to run.  It absorbed the former internal/gen package: the generator and
// the scenario catalog are one subsystem, and the catalog's Specs are the
// preferred way to name an instance.
package scenario

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/duration"
	"repro/internal/sp"
)

// Gen is a seeded generator.
type Gen struct {
	rng *rand.Rand
}

// NewGen returns a deterministic generator with the given seed.
func NewGen(seed int64) *Gen { return &Gen{rng: rand.New(rand.NewSource(seed))} }

// Intn exposes the generator's deterministic stream for callers composing
// their own shapes (the scenario families build DAG layouts with it).
func (g *Gen) Intn(n int) int { return g.rng.Intn(n) }

// Int63n is Intn for int64 ranges.
func (g *Gen) Int63n(n int64) int64 { return g.rng.Int63n(n) }

// Layered builds a single-source single-sink DAG with the given number of
// internal layers and layer width; extra controls additional random
// cross-layer arcs beyond the spanning ones.
func (g *Gen) Layered(layers, width, extra int) *dag.Graph {
	d := dag.New()
	s := d.AddNode("s")
	prev := []int{s}
	for l := 0; l < layers; l++ {
		var layer []int
		for i := 0; i < width; i++ {
			v := d.AddNode("v")
			layer = append(layer, v)
			d.AddEdge(prev[g.rng.Intn(len(prev))], v)
		}
		for i := 0; i < extra; i++ {
			d.AddEdge(prev[g.rng.Intn(len(prev))], layer[g.rng.Intn(len(layer))])
		}
		prev = layer
	}
	t := d.AddNode("t")
	for _, v := range prev {
		d.AddEdge(v, t)
	}
	// Tie off any internal node that ended up with no outgoing arc.
	for v := 0; v < d.NumNodes(); v++ {
		if v != t && d.OutDegree(v) == 0 {
			d.AddEdge(v, t)
		}
	}
	return d
}

// StepFunc returns a random non-increasing step function with up to
// maxTuples breakpoints, base duration in [1, maxT0] and per-step resource
// increments in [1, maxR].
func (g *Gen) StepFunc(maxTuples int, maxT0, maxR int64) duration.Func {
	t0 := 1 + g.rng.Int63n(maxT0)
	tuples := []duration.Tuple{{R: 0, T: t0}}
	r, t := int64(0), t0
	for i := 1; i < maxTuples && t > 0; i++ {
		if g.rng.Intn(3) == 0 {
			break
		}
		r += 1 + g.rng.Int63n(maxR)
		t = g.rng.Int63n(t)
		tuples = append(tuples, duration.Tuple{R: r, T: t})
	}
	fn, err := duration.NewStep(tuples)
	if err != nil {
		panic(err) // construction keeps the invariants
	}
	return fn
}

// StepInstance builds a layered instance with random step functions.
func (g *Gen) StepInstance(layers, width, extra, maxTuples int, maxT0, maxR int64) *core.Instance {
	d := g.Layered(layers, width, extra)
	fns := make([]duration.Func, d.NumEdges())
	for e := range fns {
		fns[e] = g.StepFunc(maxTuples, maxT0, maxR)
	}
	return core.MustInstance(d, fns)
}

// KWayInstance builds a layered instance whose jobs all use k-way
// splitting with base durations in [1, maxT0].
func (g *Gen) KWayInstance(layers, width, extra int, maxT0 int64) *core.Instance {
	d := g.Layered(layers, width, extra)
	fns := make([]duration.Func, d.NumEdges())
	for e := range fns {
		fns[e] = duration.NewKWay(1 + g.rng.Int63n(maxT0))
	}
	return core.MustInstance(d, fns)
}

// BinaryInstance builds a layered instance whose jobs all use recursive
// binary splitting with base durations in [1, maxT0].
func (g *Gen) BinaryInstance(layers, width, extra int, maxT0 int64) *core.Instance {
	d := g.Layered(layers, width, extra)
	fns := make([]duration.Func, d.NumEdges())
	for e := range fns {
		fns[e] = duration.NewRecursiveBinary(1 + g.rng.Int63n(maxT0))
	}
	return core.MustInstance(d, fns)
}

// SPTree builds a random series-parallel decomposition tree with the given
// number of leaves; leaf jobs are random step functions.
func (g *Gen) SPTree(leaves int, maxTuples int, maxT0, maxR int64) *sp.Tree {
	if leaves == 1 {
		return sp.Leaf(g.StepFunc(maxTuples, maxT0, maxR))
	}
	split := 1 + g.rng.Intn(leaves-1)
	l, r := g.SPTree(split, maxTuples, maxT0, maxR), g.SPTree(leaves-split, maxTuples, maxT0, maxR)
	if g.rng.Intn(2) == 0 {
		return sp.Series(l, r)
	}
	return sp.Parallel(l, r)
}

// Request is one entry of a synthetic solve-request stream: an instance
// plus an objective (exactly one of Budget and Target is >= 0).
type Request struct {
	Inst   *core.Instance
	Budget int64 // >= 0 selects min-makespan mode
	Target int64 // >= 0 selects min-resource mode
}

// RequestStream builds a deterministic stream of n solve requests drawn
// from a pool of distinct small instances that mixes the three duration
// classes.  Requests repeat instances (and often exact instance/objective
// pairs) by construction: repeated identical inputs are the defining
// feature of service traffic, and the repetition rate is what result
// caching and single-flight de-duplication feed on in load tests.  Every
// generated request is solvable — budgets are small positive values and
// targets are the always-reachable zero-flow makespan — so a load driver
// can assert zero errors end to end.
func (g *Gen) RequestStream(n, distinct int) []Request {
	if distinct < 1 {
		distinct = 1
	}
	pool := make([]*core.Instance, distinct)
	for i := range pool {
		switch i % 3 {
		case 0:
			pool[i] = g.StepInstance(2, 2, 1, 3, 9, 3)
		case 1:
			pool[i] = g.KWayInstance(2, 2, 1, 30)
		default:
			pool[i] = g.BinaryInstance(2, 2, 1, 30)
		}
	}
	reqs := make([]Request, n)
	for i := range reqs {
		inst := pool[g.rng.Intn(distinct)]
		req := Request{Inst: inst, Budget: -1, Target: -1}
		if g.rng.Intn(4) == 0 {
			req.Target = inst.ZeroFlowMakespan()
		} else {
			req.Budget = 1 + g.rng.Int63n(4)
		}
		reqs[i] = req
	}
	return reqs
}

// ForkJoin builds the classic fork-join instance: stages of width parallel
// jobs between synchronization points, all jobs using the given duration
// class ("kway", "binary" or "step").
func (g *Gen) ForkJoin(stages, width int, kind string, maxT0 int64) *core.Instance {
	d := dag.New()
	prev := d.AddNode("s")
	var fns []duration.Func
	mk := func() duration.Func {
		t0 := 1 + g.rng.Int63n(maxT0)
		switch kind {
		case duration.KindKWay:
			return duration.NewKWay(t0)
		case duration.KindBinary:
			return duration.NewRecursiveBinary(t0)
		default:
			return g.StepFunc(3, maxT0, 3)
		}
	}
	for s := 0; s < stages; s++ {
		next := d.AddNode("j")
		for w := 0; w < width; w++ {
			mid := d.AddNode("w")
			d.AddEdge(prev, mid)
			fns = append(fns, mk())
			d.AddEdge(mid, next)
			fns = append(fns, duration.Constant(0))
		}
		prev = next
	}
	return core.MustInstance(d, fns)
}

package scenario

// The committed corpus under testdata/scenarios/ is a set of CorpusEntry
// files: a Spec plus the golden solve results recorded when the file was
// generated.  cmd/rtcorpus regenerates and verifies them; the CI corpus
// job fails on any drift.

// Golden is one recorded solve outcome for a corpus entry.  Exact solvers
// are checked for equality; approximate solvers additionally gate on the
// recorded ratio bound.
type Golden struct {
	// Solver is the registry name the result was produced by.
	Solver string `json:"solver"`
	// Makespan and Resources are the solution metrics; all registered
	// solvers are deterministic, so these must reproduce exactly.
	Makespan  int64 `json:"makespan"`
	Resources int64 `json:"resources"`
	// Exact records that the solver proved optimality.
	Exact bool `json:"exact,omitempty"`
	// LPLowerBound is the relaxation-certified bound recorded at
	// generation time (0 when the solver reports none).
	LPLowerBound float64 `json:"lp_lower_bound,omitempty"`
	// RatioBound gates quality: the verified approximation ratio must not
	// exceed it.  Recorded as the measured ratio plus one percent of
	// headroom, so a quality regression fails CI while benign float
	// jitter does not.
	RatioBound float64 `json:"ratio_bound,omitempty"`
}

// CorpusEntry is the wire form of one committed corpus file.
type CorpusEntry struct {
	Spec Spec `json:"spec"`
	// Hash is the canonical instance hash the spec must rebuild to
	// (core.Instance.CanonicalHash): the determinism gate.
	Hash string `json:"hash"`
	// Nodes and Arcs size the instance, for reports and sanity checks.
	Nodes int `json:"nodes"`
	Arcs  int `json:"arcs"`
	// Golden lists the recorded solve results.
	Golden []Golden `json:"golden"`
}

func i64(v int64) *int64 { return &v }

// DefaultCorpus is the committed scenario set: at least one entry per
// family, spanning every auto route (exact, spdp, the class solvers, the
// dense bi-criteria LP and the frankwolfe scale tier) and both
// objectives.  cmd/rtcorpus -init materializes it under
// testdata/scenarios/.
func DefaultCorpus() []Spec {
	return []Spec{
		{Name: "layered-tiny-exact", Family: "layered", Seed: 101,
			Params: Params{"layers": 2, "width": 2, "extra": 1, "tuples": 3, "maxt0": 12, "maxr": 3},
			Budget: i64(4)},
		{Name: "layered-dense-lp", Family: "layered", Seed: 102, Budget: i64(8)},
		{Name: "layered-big-fw", Family: "layered", Seed: 103,
			Params: Params{"layers": 16, "width": 12, "extra": 8, "tuples": 4, "maxt0": 40, "maxr": 5},
			Budget: i64(60)},
		{Name: "layered-tiny-target", Family: "layered", Seed: 104,
			Params: Params{"layers": 2, "width": 2, "extra": 1, "tuples": 3, "maxt0": 12, "maxr": 3},
			Target: i64(30)},
		{Name: "forkjoin-kway", Family: "forkjoin", Seed: 105, Budget: i64(6)},
		{Name: "forkjoin-binary", Family: "forkjoin", Seed: 106,
			Params: Params{"class": 2, "stages": 3, "width": 4, "maxt0": 30}, Budget: i64(5)},
		{Name: "randomsp-dp", Family: "randomsp", Seed: 107, Budget: i64(8)},
		{Name: "randomsp-target", Family: "randomsp", Seed: 108,
			Params: Params{"leaves": 10, "tuples": 3, "maxt0": 20, "maxr": 3}, Target: i64(60)},
		{Name: "pipeline-lp", Family: "pipeline", Seed: 109, Budget: i64(6)},
		{Name: "diamondmesh-lp", Family: "diamondmesh", Seed: 110, Budget: i64(8)},
		{Name: "matmul-binary", Family: "matmul", Seed: 111, Budget: i64(20)},
		{Name: "racetrace-kway", Family: "racetrace", Seed: 112, Budget: i64(10)},
		{Name: "adversarial-round", Family: "adversarial", Seed: 113, Budget: i64(10)},
		{Name: "adversarial-long", Family: "adversarial", Seed: 114,
			Params: Params{"diamonds": 40, "t0": 64}, Budget: i64(12)},
	}
}

package scenario

import (
	"fmt"
	"testing"
)

// TestValidateErrorByteStable pins Validate's error for a spec with
// several unknown parameters: the parameters are checked in sorted
// order, so the same bad spec must report the same first offender on
// every run.  Before the sort, the offender came out of map iteration
// order and this test failed probabilistically.
func TestValidateErrorByteStable(t *testing.T) {
	fams := Families()
	if len(fams) == 0 {
		t.Fatal("no registered families")
	}
	family := fams[0].Name
	budget := int64(1)
	spec := Spec{
		Name:   "bad",
		Family: family,
		Budget: &budget,
		Params: map[string]int64{
			"zz-bogus": 1,
			"mm-bogus": 1,
			"aa-bogus": 1,
		},
	}
	want := fmt.Sprintf("scenario: family %q has no parameter %q", family, "aa-bogus")
	for i := 0; i < 100; i++ {
		err := spec.Validate()
		if err == nil {
			t.Fatal("Validate accepted a spec with bogus parameters")
		}
		if err.Error() != want {
			t.Fatalf("run %d: error %q, want %q", i, err.Error(), want)
		}
	}
}

package sp

import (
	"repro/internal/core"
)

// Recognize decides whether the instance's DAG is two-terminal
// series-parallel and, if so, returns a decomposition tree whose leaves
// carry the instance's duration functions.  It uses the classical
// confluence property of TTSP graphs: repeatedly merge parallel arcs and
// contract internal vertices with in-degree and out-degree one until either
// a single source-sink arc remains (series-parallel) or no reduction
// applies (not series-parallel).
func Recognize(inst *core.Instance) (*Tree, bool) {
	t, _, ok := RecognizeMap(inst)
	return t, ok
}

// RecognizeMap is Recognize returning, in addition, the map from each
// decomposition-tree leaf to the arc ID it came from, in the form
// Tables.Flow expects - so a DP solution over the recognized tree can be
// materialized as a validated flow on the original instance.
//
// The reduction is worklist-driven and near-linear: every applied
// reduction removes one arc and performs O(1) amortized hash-map updates,
// and a vertex or endpoint pair is re-examined only when one of its arcs
// changed.  (The previous implementation rescanned every arc and rebuilt
// its degree maps per reduction, which was quadratic and forced callers to
// gate recognition behind arc-count limits.)
//
//rt:deterministic — the tree is memoized on core.Compiled and shared; its shape must not depend on map iteration order.
func RecognizeMap(inst *core.Instance) (*Tree, map[*Tree]int, bool) {
	m := inst.G.NumEdges()
	type arc struct {
		from, to int
		tree     *Tree
		alive    bool
	}
	arcs := make([]arc, m)
	leafArc := make(map[*Tree]int, m)
	// Per-node alive-arc sets.  Maps give O(1) amortized insert/delete and
	// O(1) retrieval of the single member when a degree hits one.
	in := make(map[int]map[int]struct{}, inst.G.NumNodes())
	out := make(map[int]map[int]struct{}, inst.G.NumNodes())
	addIn := func(v, e int) {
		s := in[v]
		if s == nil {
			s = make(map[int]struct{}, 2)
			in[v] = s
		}
		s[e] = struct{}{}
	}
	addOut := func(v, e int) {
		s := out[v]
		if s == nil {
			s = make(map[int]struct{}, 2)
			out[v] = s
		}
		s[e] = struct{}{}
	}
	// pairArcs groups alive arcs by endpoint pair for parallel merging.
	// Entries can go stale (an arc died or was re-keyed by a series
	// contraction); they are dropped lazily when their key is examined.
	// Each arc enters at most one new key per contraction that consumes an
	// arc, so total insertions stay O(m).
	type pair struct{ from, to int }
	pairArcs := make(map[pair][]int, m)
	alive := m

	for e := 0; e < m; e++ {
		ed := inst.G.Edge(e)
		leaf := Leaf(inst.Fns[e])
		leafArc[leaf] = e
		arcs[e] = arc{from: ed.From, to: ed.To, tree: leaf, alive: true}
		addIn(ed.To, e)
		addOut(ed.From, e)
		pairArcs[pair{ed.From, ed.To}] = append(pairArcs[pair{ed.From, ed.To}], e)
	}
	s, t := inst.Source, inst.Sink

	kill := func(e int) {
		arcs[e].alive = false
		delete(out[arcs[e].from], e)
		delete(in[arcs[e].to], e)
		alive--
	}

	// Worklists.  seen* de-duplicate pending entries so each is queued at
	// most once per change that touches it.
	var pendingPairs []pair
	var pendingNodes []int
	inPairQ := make(map[pair]bool, m)
	inNodeQ := make(map[int]bool, inst.G.NumNodes())
	pushPair := func(p pair) {
		if !inPairQ[p] {
			inPairQ[p] = true
			pendingPairs = append(pendingPairs, p)
		}
	}
	pushNode := func(v int) {
		if v != s && v != t && !inNodeQ[v] {
			inNodeQ[v] = true
			pendingNodes = append(pendingNodes, v)
		}
	}
	// Seed the pair worklist in arc order, not map order: the order pairs
	// are examined shapes the decomposition tree (Parallel/Series nesting),
	// and the memoized tree must come out identical on every run so that
	// downstream DP witnesses - and anything cached from them - are
	// byte-stable.  pushPair de-duplicates, so arcs sharing a pair cost
	// nothing extra.
	for e := 0; e < m; e++ {
		pushPair(pair{arcs[e].from, arcs[e].to})
	}
	for v := 0; v < inst.G.NumNodes(); v++ {
		pushNode(v)
	}

	// mergeParallel collapses every alive arc under key p onto one arc.
	mergeParallel := func(p pair) {
		list := pairArcs[p]
		w := 0
		for _, e := range list {
			if arcs[e].alive && arcs[e].from == p.from && arcs[e].to == p.to {
				list[w] = e
				w++
			}
		}
		list = list[:w]
		if len(list) >= 2 {
			keep := list[0]
			for _, drop := range list[1:] {
				arcs[keep].tree = Parallel(arcs[keep].tree, arcs[drop].tree)
				kill(drop)
			}
			list = list[:1]
			pushNode(p.from)
			pushNode(p.to)
		}
		if len(list) == 0 {
			delete(pairArcs, p)
		} else {
			pairArcs[p] = list
		}
	}

	for len(pendingPairs) > 0 || len(pendingNodes) > 0 {
		for len(pendingPairs) > 0 {
			p := pendingPairs[len(pendingPairs)-1]
			pendingPairs = pendingPairs[:len(pendingPairs)-1]
			inPairQ[p] = false
			mergeParallel(p)
		}
		if len(pendingNodes) == 0 {
			break
		}
		v := pendingNodes[len(pendingNodes)-1]
		pendingNodes = pendingNodes[:len(pendingNodes)-1]
		inNodeQ[v] = false
		if len(in[v]) != 1 || len(out[v]) != 1 {
			continue
		}
		// len(in[v]) == 1 and len(out[v]) == 1 were just checked: a
		// single-member map has exactly one iteration, so no order exists.
		var i, j int
		//rt:unordered — singleton map, see above
		for e := range in[v] {
			i = e
		}
		//rt:unordered — singleton map, see above
		for e := range out[v] {
			j = e
		}
		if i == j {
			continue // self loop; not a DAG anyway
		}
		// Series contraction: u -i-> v -j-> w becomes u -i-> w.
		u, w := arcs[i].from, arcs[j].to
		arcs[i].tree = Series(arcs[i].tree, arcs[j].tree)
		kill(j)
		delete(in[v], i)
		arcs[i].to = w
		addIn(w, i)
		np := pair{u, w}
		pairArcs[np] = append(pairArcs[np], i)
		pushPair(np)
		pushNode(u)
		pushNode(w)
	}

	if alive != 1 {
		return nil, nil, false
	}
	for e := range arcs {
		if arcs[e].alive {
			if arcs[e].from == s && arcs[e].to == t {
				return arcs[e].tree, leafArc, true
			}
			break
		}
	}
	return nil, nil, false
}

// recognition is the memoized result of RecognizeCompiled.
type recognition struct {
	tree    *Tree
	leafArc map[*Tree]int
	ok      bool
}

// RecognizeCompiled is RecognizeMap memoized on the compiled instance: the
// reduction runs at most once per core.Compiled, no matter how many
// solvers (the auto router, the spdp solver, repeated service requests on
// a hot instance) ask.  The returned tree and map are shared and must be
// treated as immutable; the DP (SolveCtx) already never mutates the tree.
func RecognizeCompiled(c *core.Compiled) (*Tree, map[*Tree]int, bool) {
	v := c.Memo("sp.recognize", func() any {
		tree, leafArc, ok := RecognizeMap(c.Inst)
		return recognition{tree: tree, leafArc: leafArc, ok: ok}
	})
	r := v.(recognition)
	return r.tree, r.leafArc, r.ok
}

package sp

import (
	"repro/internal/core"
)

// Recognize decides whether the instance's DAG is two-terminal
// series-parallel and, if so, returns a decomposition tree whose leaves
// carry the instance's duration functions.  It uses the classical
// confluence property of TTSP graphs: repeatedly merge parallel arcs and
// contract internal vertices with in-degree and out-degree one until either
// a single source-sink arc remains (series-parallel) or no reduction
// applies (not series-parallel).
func Recognize(inst *core.Instance) (*Tree, bool) {
	t, _, ok := RecognizeMap(inst)
	return t, ok
}

// RecognizeMap is Recognize returning, in addition, the map from each
// decomposition-tree leaf to the arc ID it came from, in the form
// Tables.Flow expects - so a DP solution over the recognized tree can be
// materialized as a validated flow on the original instance.
func RecognizeMap(inst *core.Instance) (*Tree, map[*Tree]int, bool) {
	type arc struct {
		from, to int
		tree     *Tree
	}
	leafArc := make(map[*Tree]int, inst.G.NumEdges())
	// Work on a mutable arc list; node degrees are tracked as counts.
	arcs := make([]*arc, 0, inst.G.NumEdges())
	for e := 0; e < inst.G.NumEdges(); e++ {
		ed := inst.G.Edge(e)
		leaf := Leaf(inst.Fns[e])
		leafArc[leaf] = e
		arcs = append(arcs, &arc{from: ed.From, to: ed.To, tree: leaf})
	}
	s, t := inst.Source, inst.Sink

	remove := func(i int) {
		arcs[i] = arcs[len(arcs)-1]
		arcs = arcs[:len(arcs)-1]
	}

	for {
		if len(arcs) == 1 && arcs[0].from == s && arcs[0].to == t {
			return arcs[0].tree, leafArc, true
		}
		changed := false

		// Parallel reduction: two arcs with identical endpoints merge.
		seen := make(map[[2]int]int, len(arcs))
		for i := 0; i < len(arcs); i++ {
			key := [2]int{arcs[i].from, arcs[i].to}
			if j, ok := seen[key]; ok {
				arcs[j].tree = Parallel(arcs[j].tree, arcs[i].tree)
				remove(i)
				changed = true
				break
			}
			seen[key] = i
		}
		if changed {
			continue
		}

		// Series reduction: an internal vertex with exactly one incoming
		// and one outgoing arc is contracted.
		indeg := make(map[int][]int)
		outdeg := make(map[int][]int)
		for i, a := range arcs {
			indeg[a.to] = append(indeg[a.to], i)
			outdeg[a.from] = append(outdeg[a.from], i)
		}
		for v, ins := range indeg {
			if v == s || v == t {
				continue
			}
			outs := outdeg[v]
			if len(ins) != 1 || len(outs) != 1 {
				continue
			}
			i, j := ins[0], outs[0]
			if i == j {
				continue // self loop; not a DAG anyway
			}
			arcs[i].tree = Series(arcs[i].tree, arcs[j].tree)
			arcs[i].to = arcs[j].to
			remove(j)
			changed = true
			break
		}
		if !changed {
			return nil, nil, false
		}
	}
}

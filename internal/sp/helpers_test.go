package sp

import (
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/duration"
)

func dagNew() *dag.Graph { return dag.New() }

// mustInstance builds an instance giving every edge a constant duration.
func mustInstance(g *dag.Graph, d int64) *core.Instance {
	fns := make([]duration.Func, g.NumEdges())
	for e := range fns {
		fns[e] = duration.Constant(d)
	}
	return core.MustInstance(g, fns)
}

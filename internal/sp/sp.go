// Package sp implements Section 3.4 of Das et al. (SPAA 2019): an exact
// pseudo-polynomial algorithm for the discrete resource-time tradeoff
// problem with resource reuse over paths on two-terminal series-parallel
// DAGs.
//
// A series-parallel instance is given as a decomposition tree whose leaves
// are jobs (duration functions) and whose internal nodes are series or
// parallel compositions.  The dynamic program computes
//
//	T(v, l) = makespan of the sub-DAG under v using l units of resource
//
// bottom-up: leaves evaluate their duration function; series compositions
// add child makespans under the same l (the same units flow through both
// parts - this is exactly resource reuse over a path); parallel
// compositions split l between the two branches, taking the worse branch.
// Total time is O(m B^2) for m tree nodes and budget B, matching the
// paper's bound.
package sp

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/duration"
)

// Kind distinguishes decomposition-tree node types.
type Kind int

// Tree node kinds.
const (
	LeafKind Kind = iota
	SeriesKind
	ParallelKind
)

// Tree is a series-parallel decomposition tree.
type Tree struct {
	Kind Kind
	Fn   duration.Func // LeafKind only
	L, R *Tree         // SeriesKind and ParallelKind only
}

// Leaf returns a decomposition-tree leaf for one job.
func Leaf(fn duration.Func) *Tree { return &Tree{Kind: LeafKind, Fn: fn} }

// Series composes two subtrees in series (sink of l identified with source
// of r).
func Series(l, r *Tree) *Tree { return &Tree{Kind: SeriesKind, L: l, R: r} }

// Parallel composes two subtrees in parallel (sources identified, sinks
// identified).
func Parallel(l, r *Tree) *Tree { return &Tree{Kind: ParallelKind, L: l, R: r} }

// Leaves returns the number of jobs in the tree.
func (t *Tree) Leaves() int {
	if t.Kind == LeafKind {
		return 1
	}
	return t.L.Leaves() + t.R.Leaves()
}

// Nodes returns the number of decomposition-tree nodes.
func (t *Tree) Nodes() int {
	if t.Kind == LeafKind {
		return 1
	}
	return 1 + t.L.Nodes() + t.R.Nodes()
}

// Validate checks structural invariants.
func (t *Tree) Validate() error {
	switch t.Kind {
	case LeafKind:
		if t.Fn == nil {
			return errors.New("sp: leaf with nil duration function")
		}
		if t.L != nil || t.R != nil {
			return errors.New("sp: leaf with children")
		}
		return nil
	case SeriesKind, ParallelKind:
		if t.L == nil || t.R == nil {
			return errors.New("sp: composition with missing child")
		}
		if err := t.L.Validate(); err != nil {
			return err
		}
		return t.R.Validate()
	default:
		return fmt.Errorf("sp: unknown node kind %d", t.Kind)
	}
}

// ToInstance materializes the two-terminal series-parallel DAG the tree
// denotes as an activity-on-arc instance.  leafArc maps each leaf to its
// arc ID in the instance.
func (t *Tree) ToInstance() (*core.Instance, map[*Tree]int, error) {
	if err := t.Validate(); err != nil {
		return nil, nil, err
	}
	g := dag.New()
	leafArc := make(map[*Tree]int)
	var fns []duration.Func
	var build func(node *Tree, from, to int)
	build = func(node *Tree, from, to int) {
		switch node.Kind {
		case LeafKind:
			id := g.AddEdge(from, to)
			leafArc[node] = id
			fns = append(fns, node.Fn)
		case SeriesKind:
			mid := g.AddNode("m")
			build(node.L, from, mid)
			build(node.R, mid, to)
		case ParallelKind:
			build(node.L, from, to)
			build(node.R, from, to)
		}
	}
	s := g.AddNode("s")
	snk := g.AddNode("t")
	build(t, s, snk)
	inst, err := core.NewInstance(g, fns)
	if err != nil {
		return nil, nil, err
	}
	return inst, leafArc, nil
}

// Tables holds the DP tables of every subtree, enabling both optimization
// directions and allocation extraction.
type Tables struct {
	Root   *Tree
	Budget int64
	table  map[*Tree][]int64
}

// Solve runs the Section 3.4 dynamic program up to the given budget and
// returns the filled tables.
func Solve(t *Tree, budget int64) (*Tables, error) {
	return SolveCtx(context.Background(), t, budget)
}

// SolveCtx is Solve with cooperative cancellation: the table fill polls
// ctx between rows, so large-budget DPs are interruptible and
// deadline-bounded.
func SolveCtx(ctx context.Context, t *Tree, budget int64) (*Tables, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if budget < 0 {
		return nil, fmt.Errorf("sp: negative budget %d", budget)
	}
	tb := &Tables{Root: t, Budget: budget, table: make(map[*Tree][]int64)}
	if _, err := tb.fill(ctx, t); err != nil {
		return nil, err
	}
	return tb, nil
}

func (tb *Tables) fill(ctx context.Context, t *Tree) ([]int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	row := make([]int64, tb.Budget+1)
	switch t.Kind {
	case LeafKind:
		for l := int64(0); l <= tb.Budget; l++ {
			row[l] = t.Fn.Eval(l)
		}
	case SeriesKind:
		a, err := tb.fill(ctx, t.L)
		if err != nil {
			return nil, err
		}
		b, err := tb.fill(ctx, t.R)
		if err != nil {
			return nil, err
		}
		for l := range row {
			row[l] = a[l] + b[l]
		}
	case ParallelKind:
		a, err := tb.fill(ctx, t.L)
		if err != nil {
			return nil, err
		}
		b, err := tb.fill(ctx, t.R)
		if err != nil {
			return nil, err
		}
		for l := int64(0); l <= tb.Budget; l++ {
			// The split scan is the DP's quadratic part; poll between
			// rows so a deadline interrupts within O(budget) work.
			if l&1023 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			best := int64(1) << 62
			for i := int64(0); i <= l; i++ {
				m := a[i]
				if b[l-i] > m {
					m = b[l-i]
				}
				if m < best {
					best = m
				}
			}
			row[l] = best
		}
	}
	tb.table[t] = row
	return row, nil
}

// Makespan returns T(root, l): the optimal makespan with l units.
func (tb *Tables) Makespan(l int64) (int64, error) {
	if l < 0 || l > tb.Budget {
		return 0, fmt.Errorf("sp: budget %d outside solved range [0, %d]", l, tb.Budget)
	}
	return tb.table[tb.Root][l], nil
}

// MinResource returns the least budget l <= solved budget achieving
// makespan <= target, or ok=false if none does.
func (tb *Tables) MinResource(target int64) (int64, bool) {
	row := tb.table[tb.Root]
	for l := int64(0); l <= tb.Budget; l++ {
		if row[l] <= target {
			return l, true
		}
	}
	return 0, false
}

// Allocation extracts a per-leaf resource assignment achieving
// T(root, budget) by walking the tables top-down: series children inherit
// the full budget (reuse over the path); parallel children take the best
// split found in the table.
func (tb *Tables) Allocation(budget int64) (map[*Tree]int64, error) {
	if budget < 0 || budget > tb.Budget {
		return nil, fmt.Errorf("sp: budget %d outside solved range [0, %d]", budget, tb.Budget)
	}
	alloc := make(map[*Tree]int64)
	var walk func(t *Tree, l int64)
	walk = func(t *Tree, l int64) {
		switch t.Kind {
		case LeafKind:
			alloc[t] = l
		case SeriesKind:
			walk(t.L, l)
			walk(t.R, l)
		case ParallelKind:
			a, b := tb.table[t.L], tb.table[t.R]
			want := tb.table[t][l]
			for i := int64(0); i <= l; i++ {
				m := a[i]
				if b[l-i] > m {
					m = b[l-i]
				}
				if m == want {
					walk(t.L, i)
					walk(t.R, l-i)
					return
				}
			}
			panic("sp: table inconsistency") // unreachable
		}
	}
	walk(tb.Root, budget)
	return alloc, nil
}

// Flow converts the optimal table solution at the given budget into a
// valid flow on the materialized instance: the budget routed into a series
// composition traverses both halves (reuse over the path), and a parallel
// composition splits it according to the table's best split.
func (tb *Tables) Flow(inst *core.Instance, leafArc map[*Tree]int, budget int64) ([]int64, error) {
	if budget < 0 || budget > tb.Budget {
		return nil, fmt.Errorf("sp: budget %d outside solved range [0, %d]", budget, tb.Budget)
	}
	f := make([]int64, inst.G.NumEdges())
	var walk func(t *Tree, l int64)
	walk = func(t *Tree, l int64) {
		switch t.Kind {
		case LeafKind:
			f[leafArc[t]] = l
		case SeriesKind:
			walk(t.L, l)
			walk(t.R, l)
		case ParallelKind:
			a, b := tb.table[t.L], tb.table[t.R]
			want := tb.table[t][l]
			for i := int64(0); i <= l; i++ {
				m := a[i]
				if b[l-i] > m {
					m = b[l-i]
				}
				if m == want {
					walk(t.L, i)
					walk(t.R, l-i)
					return
				}
			}
			panic("sp: table inconsistency") // unreachable
		}
	}
	walk(tb.Root, budget)
	return f, nil
}

package sp

import (
	"math/rand"
	"testing"

	"repro/internal/duration"
	"repro/internal/exact"
)

func step(high, low, r int64) duration.Func {
	return duration.MustStep(duration.Tuple{R: 0, T: high}, duration.Tuple{R: r, T: low})
}

func TestValidate(t *testing.T) {
	if err := Leaf(step(5, 1, 2)).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (&Tree{Kind: LeafKind}).Validate(); err == nil {
		t.Fatal("want error for nil Fn")
	}
	if err := (&Tree{Kind: SeriesKind, L: Leaf(step(1, 0, 1))}).Validate(); err == nil {
		t.Fatal("want error for missing child")
	}
	if err := (&Tree{Kind: Kind(9)}).Validate(); err == nil {
		t.Fatal("want error for bad kind")
	}
}

func TestCounts(t *testing.T) {
	tr := Series(Leaf(step(5, 1, 2)), Parallel(Leaf(step(4, 0, 1)), Leaf(step(3, 1, 1))))
	if tr.Leaves() != 3 {
		t.Fatalf("Leaves = %d; want 3", tr.Leaves())
	}
	if tr.Nodes() != 5 {
		t.Fatalf("Nodes = %d; want 5", tr.Nodes())
	}
}

func TestSeriesSharesBudget(t *testing.T) {
	// Two jobs in series, each {<0,10>, <2,1>}: with 2 units both drop
	// (reuse over a path), makespan 2.
	tr := Series(Leaf(step(10, 1, 2)), Leaf(step(10, 1, 2)))
	tb, err := Solve(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := tb.Makespan(2)
	if err != nil {
		t.Fatal(err)
	}
	if m != 2 {
		t.Fatalf("makespan = %d; want 2", m)
	}
	m, _ = tb.Makespan(1)
	if m != 20 {
		t.Fatalf("makespan(1) = %d; want 20", m)
	}
}

func TestParallelSplitsBudget(t *testing.T) {
	// Two jobs in parallel, each {<0,10>, <2,1>}: 2 units fix only one
	// branch (makespan 10); 4 fix both (makespan 1).
	tr := Parallel(Leaf(step(10, 1, 2)), Leaf(step(10, 1, 2)))
	tb, err := Solve(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	for budget, want := range map[int64]int64{0: 10, 2: 10, 3: 10, 4: 1} {
		m, err := tb.Makespan(budget)
		if err != nil {
			t.Fatal(err)
		}
		if m != want {
			t.Fatalf("makespan(%d) = %d; want %d", budget, m, want)
		}
	}
}

func TestMinResourceFromTables(t *testing.T) {
	tr := Series(Leaf(step(10, 1, 2)), Leaf(step(10, 1, 2)))
	tb, err := Solve(tr, 5)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := tb.MinResource(2)
	if !ok || r != 2 {
		t.Fatalf("MinResource(2) = %d, %v; want 2, true", r, ok)
	}
	if _, ok := tb.MinResource(1); ok {
		t.Fatal("makespan 1 should be unreachable")
	}
	r, ok = tb.MinResource(20)
	if !ok || r != 0 {
		t.Fatalf("MinResource(20) = %d, %v; want 0, true", r, ok)
	}
}

func TestAllocationAndFlow(t *testing.T) {
	left := Leaf(step(10, 1, 2))
	right := Leaf(step(8, 2, 3))
	tr := Parallel(Series(left, Leaf(step(6, 1, 2))), right)
	tb, err := Solve(tr, 5)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := tb.Allocation(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc) != 3 {
		t.Fatalf("allocation covers %d leaves; want 3", len(alloc))
	}
	inst, leafArc, err := tr.ToInstance()
	if err != nil {
		t.Fatal(err)
	}
	f, err := tb.Flow(inst, leafArc, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.ValidateFlow(f, 5); err != nil {
		t.Fatalf("flow invalid: %v", err)
	}
	want, _ := tb.Makespan(5)
	got, err := inst.Makespan(f)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("instance makespan %d != table %d", got, want)
	}
}

func TestToInstanceShape(t *testing.T) {
	tr := Parallel(Series(Leaf(step(1, 0, 1)), Leaf(step(2, 0, 1))), Leaf(step(3, 0, 1)))
	inst, leafArc, err := tr.ToInstance()
	if err != nil {
		t.Fatal(err)
	}
	if inst.G.NumEdges() != 3 || len(leafArc) != 3 {
		t.Fatalf("edges = %d leafArc = %d", inst.G.NumEdges(), len(leafArc))
	}
	if inst.ZeroFlowMakespan() != 3 {
		t.Fatalf("zero makespan = %d; want 3", inst.ZeroFlowMakespan())
	}
}

// randomTree builds a random decomposition tree with the given number of
// leaves.
func randomTree(rng *rand.Rand, leaves int) *Tree {
	if leaves == 1 {
		high := int64(1 + rng.Intn(8))
		if rng.Intn(4) == 0 {
			return Leaf(duration.Constant(high))
		}
		return Leaf(step(high, rng.Int63n(high), int64(1+rng.Intn(3))))
	}
	split := 1 + rng.Intn(leaves-1)
	l, r := randomTree(rng, split), randomTree(rng, leaves-split)
	if rng.Intn(2) == 0 {
		return Series(l, r)
	}
	return Parallel(l, r)
}

// TestDPMatchesExactSolver is the key cross-check of Section 3.4: the
// pseudo-polynomial DP must agree with the general branch-and-bound
// optimum on random series-parallel instances, for both objectives.
func TestDPMatchesExactSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		tr := randomTree(rng, 2+rng.Intn(4))
		budget := int64(rng.Intn(5))
		tb, err := Solve(tr, budget)
		if err != nil {
			t.Fatal(err)
		}
		inst, leafArc, err := tr.ToInstance()
		if err != nil {
			t.Fatal(err)
		}
		dpVal, _ := tb.Makespan(budget)
		sol, stats, err := exact.MinMakespan(inst, budget, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Complete {
			t.Fatal("exact incomplete")
		}
		if dpVal != sol.Makespan {
			t.Fatalf("trial %d (budget %d): DP %d != exact %d", trial, budget, dpVal, sol.Makespan)
		}
		// Also check the DP's own witness flow achieves its value.
		f, err := tb.Flow(inst, leafArc, budget)
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.ValidateFlow(f, budget); err != nil {
			t.Fatal(err)
		}
		m, _ := inst.Makespan(f)
		if m != dpVal {
			t.Fatalf("trial %d: witness makespan %d != DP %d", trial, m, dpVal)
		}

		// MinResource direction.
		target := tb.table[tr][budget]
		wantR, ok := tb.MinResource(target)
		if !ok {
			t.Fatal("table says target reachable but MinResource disagrees")
		}
		rsol, rstats, err := exact.MinResource(inst, target, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !rstats.Complete {
			t.Fatal("exact incomplete")
		}
		if rsol.Value != wantR {
			t.Fatalf("trial %d (target %d): DP resource %d != exact %d",
				trial, target, wantR, rsol.Value)
		}
	}
}

func TestRecognizeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 30; trial++ {
		tr := randomTree(rng, 2+rng.Intn(6))
		inst, _, err := tr.ToInstance()
		if err != nil {
			t.Fatal(err)
		}
		got, ok := Recognize(inst)
		if !ok {
			t.Fatalf("trial %d: SP instance not recognized", trial)
		}
		// The recovered tree must denote an equivalent instance: same
		// number of leaves and identical DP optima across budgets.
		if got.Leaves() != tr.Leaves() {
			t.Fatalf("trial %d: leaves %d != %d", trial, got.Leaves(), tr.Leaves())
		}
		a, err := Solve(tr, 4)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Solve(got, 4)
		if err != nil {
			t.Fatal(err)
		}
		for l := int64(0); l <= 4; l++ {
			ma, _ := a.Makespan(l)
			mb, _ := b.Makespan(l)
			if ma != mb {
				t.Fatalf("trial %d: recognized tree differs at budget %d: %d vs %d", trial, l, ma, mb)
			}
		}
	}
}

func TestRecognizeRejectsNonSP(t *testing.T) {
	// The "N graph" (s->a, s->b, a->b hmm) - use the classic
	// non-SP pattern: s->a, s->b, a->t, b->t, a->b.
	g := dagNew()
	s := g.AddNode("s")
	a := g.AddNode("a")
	b := g.AddNode("b")
	tt := g.AddNode("t")
	g.AddEdge(s, a)
	g.AddEdge(s, b)
	g.AddEdge(a, tt)
	g.AddEdge(b, tt)
	g.AddEdge(a, b)
	inst := mustInstance(g, 5)
	if _, ok := Recognize(inst); ok {
		t.Fatal("the N-graph must not be recognized as series-parallel")
	}
}

func TestSolveErrors(t *testing.T) {
	if _, err := Solve(Leaf(step(3, 1, 1)), -1); err == nil {
		t.Fatal("want error for negative budget")
	}
	if _, err := Solve(&Tree{Kind: LeafKind}, 1); err == nil {
		t.Fatal("want error for invalid tree")
	}
	tb, err := Solve(Leaf(step(3, 1, 1)), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Makespan(3); err == nil {
		t.Fatal("want error for budget beyond table")
	}
	if _, err := tb.Allocation(-1); err == nil {
		t.Fatal("want error for negative allocation budget")
	}
}

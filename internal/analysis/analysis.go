// Package analysis is a self-contained, stdlib-only analysis framework
// shaped after golang.org/x/tools/go/analysis: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics.
//
// Why not x/tools itself?  This module is dependency-free by policy (see
// go.mod), and the repo's invariants need bespoke analyzers far more than
// they need the full framework: no analyzer here uses facts, SSA, or
// cross-package results.  The subset implemented below — Analyzer, Pass,
// Diagnostic, plus the two driver protocols in internal/analysis/driver
// (standalone via `go list`, and the `go vet -vettool` unitchecker
// contract) — is API-compatible enough that the analyzers could be
// ported to x/tools by changing imports, should the dependency policy
// ever change.
//
// The analyzers themselves live in subpackages (detrange, compiledimmut,
// ctxpoll, hotalloc, cachekey, doccomment); internal/analysis/rtlint
// aggregates them into the suite cmd/rtlint runs.  Each one enforces an
// invariant the repository's tests can only spot-check at runtime:
//
//	detrange       byte-deterministic output paths never iterate maps
//	               unordered (the static form of the byte-identical
//	               wire-report property tests)
//	compiledimmut  *core.Compiled is never written outside internal/core
//	               (a mutation of a pool-shared compiled form is a data
//	               race by construction)
//	ctxpoll        solver work loops poll their context on a bounded
//	               interval (the anytime-solve guarantee)
//	hotalloc       //rt:hotpath functions stay free of allocating
//	               constructs (the static complement of the allocs/op
//	               bench gate)
//	cachekey       every solver.Options field is consumed by CacheKey or
//	               explicitly excluded (no silent result-cache poisoning)
//	doccomment     the exported surface of the service-facing packages
//	               (service, solver, store) carries doc comments (the
//	               static complement of the docs/API.md coverage tests)
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one analysis and how to run it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.  It must be
	// a valid Go identifier.
	Name string
	// Doc is the analyzer's documentation: one summary line, a blank
	// line, then the full invariant it enforces.
	Doc string
	// Run applies the analyzer to one package.  Diagnostics go through
	// pass.Report; the result value is unused by this framework (kept for
	// x/tools signature compatibility).
	Run func(*Pass) (any, error)
}

// A Pass provides one analyzer with one type-checked package and a sink
// for its diagnostics.  Analyzers must not mutate any Pass field.
type Pass struct {
	// Analyzer is the currently running analyzer.
	Analyzer *Analyzer
	// Fset maps positions of Files.
	Fset *token.FileSet
	// Files are the package's parsed syntax trees, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds type information for Files (Types, Defs, Uses and
	// Selections are always populated).
	TypesInfo *types.Info
	// Report delivers one diagnostic.
	Report func(Diagnostic)
}

// A Diagnostic is one finding, anchored at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf constructs and reports a diagnostic at pos.  The message is a
// plain string here (no formatting verbs in any caller need arguments
// beyond positions); use Report for preformatted messages.
func (p *Pass) Reportf(pos token.Pos, msg string) {
	p.Report(Diagnostic{Pos: pos, Message: msg})
}

// FileOf returns the file whose extent contains pos, or nil.
func (p *Pass) FileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// PkgPath returns the package's import path as reported by the build
// system, normalized so that scope rules treat a package's test variants
// like the package itself: the " [foo.test]" suffix of a test-augmented
// compilation and the "_test" suffix of an external test package are both
// stripped.
func (p *Pass) PkgPath() string {
	return NormalizePkgPath(p.Pkg.Path())
}

// NormalizePkgPath strips test-variant decorations from a package path:
// "repro/internal/core [repro/internal/core.test]" and
// "repro/internal/core_test" both normalize to "repro/internal/core".
func NormalizePkgPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	path = strings.TrimSuffix(path, ".test")
	path = strings.TrimSuffix(path, "_test")
	return path
}

// The //rt: annotation contract.
//
// Production code communicates with the analyzers through structured
// comments.  Each is a single comment line containing the marker
// (anywhere in the line, so it can carry a justification after it):
//
//	//rt:hotpath       on a function: hotalloc forbids allocating
//	                   constructs in its body
//	//rt:deterministic on a function: detrange treats it as a root of
//	                   ordering-sensitive output
//	//rt:bounded       on a loop: ctxpoll accepts it without a context
//	                   poll because its trip count is small by
//	                   construction
//	//rt:unordered     on a map-range loop in detrange scope: the author
//	                   asserts iteration order cannot reach any output
//
// Function markers may appear anywhere in the doc comment; statement
// markers must sit on the statement's own line or the line directly
// above it.

// FuncAnnotated reports whether the function's doc comment contains the
// marker (e.g. "//rt:hotpath").
func FuncAnnotated(fd *ast.FuncDecl, marker string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.Contains(c.Text, marker) {
			return true
		}
	}
	return false
}

// NodeAnnotated reports whether a comment line containing the marker sits
// on node's first line or the line directly above it within file.
func NodeAnnotated(fset *token.FileSet, file *ast.File, node ast.Node, marker string) bool {
	if file == nil {
		return false
	}
	line := fset.Position(node.Pos()).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.Contains(c.Text, marker) {
				continue
			}
			cl := fset.Position(c.Pos()).Line
			if cl == line || cl == line-1 {
				return true
			}
		}
	}
	return false
}

// IsMapType reports whether t's core type is a map.
func IsMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// FuncDecls returns the package's function declarations with bodies, in
// file order.
func FuncDecls(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// CalleeFunc resolves the called function or method of call within the
// pass's package, or nil for indirect calls, conversions and builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

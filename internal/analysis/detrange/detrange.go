// Package detrange implements the rtlint analyzer that forbids unordered
// map iteration in byte-deterministic output paths.
//
// The repo's canonical hash (core.AppendCanonical), the solver wire forms,
// and rtserve's listing endpoints all promise byte-identical output for
// equal input; a `for k := range m` anywhere on those paths silently
// breaks that promise in a way runtime tests only catch probabilistically.
// The analyzer computes, per package, the set of functions reachable from
// the deterministic roots (a builtin table plus every function annotated
// //rt:deterministic) through intra-package calls, and flags every
// map-range statement in that set that is not one of the two provably
// order-insensitive shapes:
//
//   - collect-then-sort: every statement in the loop body appends to a
//     slice, and a sort.* call on one of those slices follows the loop in
//     the same block;
//   - map-to-map copy: every statement in the loop body assigns into a
//     map index expression, so the result is itself order-insensitive.
//
// A loop that is order-insensitive for a reason the analyzer cannot see
// can be waived with an //rt:unordered comment on the loop's line or the
// line above it.
package detrange

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the detrange analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc: "forbid unordered map iteration in deterministic-output paths\n\n" +
		"Functions reachable from core.AppendCanonical, the wire encoders,\n" +
		"the /v1/stats and /v1/solvers handlers, or any //rt:deterministic\n" +
		"function must not iterate maps in unordered ways.",
	Run: run,
}

// roots names the builtin deterministic-output entry points per package
// (import paths normalized, so test variants inherit their package's
// roots).  Annotating a function //rt:deterministic adds it to this set.
var roots = map[string][]string{
	"repro/internal/core":    {"AppendCanonical", "CanonicalHash"},
	"repro/internal/solver":  {"CacheKey", "ResultCacheKey", "Wire", "Infos"},
	"repro/internal/service": {"handleStats", "handleSolvers"},

	// Golden-test twin of the core entry, so the builtin-root mechanism
	// itself has analysistest coverage.
	"rtlinttest/detrange": {"AppendCanonical"},
}

func run(pass *analysis.Pass) (any, error) {
	decls := analysis.FuncDecls(pass.Files)
	if len(decls) == 0 {
		return nil, nil
	}

	// Identify the root declarations in this package.
	rootNames := make(map[string]bool)
	for _, name := range roots[pass.PkgPath()] {
		rootNames[name] = true
	}
	declOf := make(map[types.Object]*ast.FuncDecl, len(decls))
	for _, fd := range decls {
		if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
			declOf[obj] = fd
		}
	}

	// Breadth-first reachability from the roots over intra-package calls.
	reachable := make(map[*ast.FuncDecl]bool)
	var queue []*ast.FuncDecl
	push := func(fd *ast.FuncDecl) {
		if !reachable[fd] {
			reachable[fd] = true
			queue = append(queue, fd)
		}
	}
	for _, fd := range decls {
		if rootNames[fd.Name.Name] || analysis.FuncAnnotated(fd, "//rt:deterministic") {
			push(fd)
		}
	}
	for len(queue) > 0 {
		fd := queue[0]
		queue = queue[1:]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := analysis.CalleeFunc(pass.TypesInfo, call); callee != nil {
				if target, ok := declOf[callee]; ok {
					push(target)
				}
			}
			return true
		})
	}

	for fd := range reachable {
		file := pass.FileOf(fd.Pos())
		checkFunc(pass, file, fd)
	}
	return nil, nil
}

// checkFunc flags unordered map ranges in one reachable function.  It
// walks statement lists (not bare statements) so that the collect-then-sort
// shape can look at the statements following a loop.
func checkFunc(pass *analysis.Pass, file *ast.File, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		for i, stmt := range list {
			rs, ok := stmt.(*ast.RangeStmt)
			if !ok {
				continue
			}
			tv := pass.TypesInfo.Types[rs.X]
			if !analysis.IsMapType(tv.Type) {
				continue
			}
			if analysis.NodeAnnotated(pass.Fset, file, rs, "//rt:unordered") {
				continue
			}
			if isMapCopy(pass.TypesInfo, rs.Body) {
				continue
			}
			if isCollectThenSort(pass.TypesInfo, rs.Body, list[i+1:]) {
				continue
			}
			pass.Reportf(rs.For, "unordered map iteration in deterministic-output function "+
				fd.Name.Name+"; sort the keys, use an order-insensitive shape, or annotate //rt:unordered")
		}
		return true
	})
}

// isMapCopy reports whether every statement in the loop body assigns only
// into map index expressions: the loop's net effect is itself a map, so
// iteration order cannot leak.
func isMapCopy(info *types.Info, body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	for _, stmt := range body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok {
			return false
		}
		for _, lhs := range as.Lhs {
			ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
			if !ok || !analysis.IsMapType(info.Types[ix.X].Type) {
				return false
			}
		}
	}
	return true
}

// isCollectThenSort reports whether the loop body only appends to slices
// and a sort call on one of those slices follows the loop in the same
// statement list.
func isCollectThenSort(info *types.Info, body *ast.BlockStmt, rest []ast.Stmt) bool {
	if len(body.List) == 0 {
		return false
	}
	targets := make(map[types.Object]bool)
	for _, stmt := range body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return false
		}
		fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fun.Name != "append" {
			return false
		}
		if obj := info.ObjectOf(id); obj != nil {
			targets[obj] = true
		}
	}
	for _, stmt := range rest {
		call := callOf(stmt)
		if call == nil {
			continue
		}
		callee := analysis.CalleeFunc(info, call)
		if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sort" {
			continue
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && targets[info.ObjectOf(id)] {
				return true
			}
		}
	}
	return false
}

// callOf extracts the call of an expression or single-assign statement,
// so sort.Slice(out, ...) is found whether or not its result is used.
func callOf(stmt ast.Stmt) *ast.CallExpr {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		call, _ := ast.Unparen(s.X).(*ast.CallExpr)
		return call
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			call, _ := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
			return call
		}
	}
	return nil
}

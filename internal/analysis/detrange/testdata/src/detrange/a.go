// Package detrange is the golden corpus for the detrange analyzer.  Its
// AppendCanonical mirrors the production root of the same name (the
// analyzer's roots table lists rtlinttest/detrange so the builtin-root
// mechanism itself is under test).
package detrange

import "sort"

// AppendCanonical is a builtin deterministic root: every map range
// reachable from it is in scope.
func AppendCanonical(dst []byte, m map[string]int) []byte {
	for k := range m { // want `unordered map iteration in deterministic-output function AppendCanonical`
		dst = append(dst, k...)
	}
	dst = helper(dst, m)
	dst = sortedKeys(dst, m)
	flat := mapCopy(m)
	return append(dst, byte(waived(flat)))
}

// helper is reachable from the root through an intra-package call, so its
// loops are in scope too.
func helper(dst []byte, m map[string]int) []byte {
	for k := range m { // want `unordered map iteration in deterministic-output function helper`
		dst = append(dst, k...)
	}
	return dst
}

// sortedKeys collects the keys and sorts before emitting: the canonical
// order-insensitive shape, which must pass.
func sortedKeys(dst []byte, m map[string]int) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		dst = append(dst, k...)
	}
	return dst
}

// mapCopy's loop lands every element in another map, so iteration order
// cannot leak; it must pass.
func mapCopy(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// waived demonstrates the //rt:unordered waiver on an order-insensitive
// accumulation.
func waived(m map[string]int) int {
	n := 0
	//rt:unordered — summation is commutative
	for _, v := range m {
		n += v
	}
	return n
}

// Annotated is a root by annotation rather than by the builtin table.
//
//rt:deterministic
func Annotated(m map[string]int) string {
	out := ""
	for k := range m { // want `unordered map iteration in deterministic-output function Annotated`
		out += k
	}
	return out
}

// unreachable is reachable from no root: its unordered range is out of
// scope and must pass.
func unreachable(m map[string]int) string {
	s := ""
	for k := range m {
		s += k
	}
	return s
}

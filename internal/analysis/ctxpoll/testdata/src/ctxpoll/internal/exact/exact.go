// Package exact models a solver package for the ctxpoll corpus: its
// import path ends in internal/exact, which puts it under the anytime
// contract the analyzer enforces.
package exact

import "context"

// step is opaque work: a non-builtin call that keeps loops from being
// exempt as pure arithmetic.
func step(i int) int {
	return i + 1
}

// Oracle is an external dependency taking the context; its methods are
// not package functions, so handing it the context discharges the
// obligation to the callee.
type Oracle interface {
	Eval(ctx context.Context, v int) int
}

// SolvePolled polls directly somewhere in its body, so the whole
// function passes wherever the poll sits in the loop nest.
func SolvePolled(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			return total
		}
		total = step(total)
	}
	return total
}

// SolveSilent receives a context, never polls it, and spins on real
// work: both the loop and the entry point are flagged.
func SolveSilent(ctx context.Context, n int) int { // want `exported function SolveSilent receives a context but neither polls it nor passes it on`
	total := 0
	for i := 0; i < n; i++ { // want `unbounded loop in context-bearing function SolveSilent never polls the context`
		total = step(total)
	}
	return total
}

// SolveDelegated hands the context to a polling local helper each
// iteration: the fixpoint sees the delegation and the function passes.
func SolveDelegated(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total = polled(ctx, total)
	}
	return total
}

// polled owns the poll.
func polled(ctx context.Context, v int) int {
	if ctx.Err() != nil {
		return v
	}
	return step(v)
}

// SolveLaundered hands the context to a local helper that drops it:
// passing ctx onward discharges nothing unless the callee polls.
func SolveLaundered(ctx context.Context, n int) int { // want `exported function SolveLaundered receives a context but neither polls it nor passes it on`
	total := 0
	for i := 0; i < n; i++ { // want `unbounded loop in context-bearing function SolveLaundered never polls the context`
		total = ignores(ctx, total)
	}
	return total
}

// ignores takes a context and drops it on the floor.
func ignores(_ context.Context, v int) int {
	return step(v)
}

// SolveForwarded forwards the context to the external oracle on every
// iteration; the callee owns the polling obligation, so this passes.
func SolveForwarded(ctx context.Context, o Oracle, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total = o.Eval(ctx, total)
	}
	return total
}

// solveBounded's loop is annotated: its trip count is small by
// construction, so it needs no poll.
func solveBounded(ctx context.Context) int {
	total := 0
	//rt:bounded — exactly three refinement rounds
	for i := 0; i < 3; i++ {
		total = step(total)
	}
	return total
}

// SolveArithmetic's loop performs no calls, so it is exempt as pure
// arithmetic; the entry point still discharges its obligation by
// delegating to polled at the end.
func SolveArithmetic(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i * i
	}
	return polled(ctx, total)
}

// SolveRanged iterates a slice: range loops are bounded by their operand
// and exempt, and the entry point delegates to polled per element.
func SolveRanged(ctx context.Context, vs []int) int {
	total := 0
	for _, v := range vs {
		total += polled(ctx, v)
	}
	return total
}

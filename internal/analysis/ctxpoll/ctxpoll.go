// Package ctxpoll implements the rtlint analyzer that enforces the
// solver packages' anytime guarantee: context-bearing work loops must
// poll their context on a bounded interval.
//
// Every solver entry point accepts a context and promises to return
// "soon" after it is cancelled (rtserve's deadlines, the auto-router's
// race, CI's timeouts all rely on it).  That promise dies silently when a
// new search loop forgets the poll.  Within the solver packages
// (internal/exact, internal/relax, internal/lp, internal/sp) the analyzer
// checks every context-bearing function - one with a context.Context
// parameter or a context-typed expression in its body:
//
//   - a function that polls its context directly anywhere (ctx.Err,
//     ctx.Done, ctx.Deadline) satisfies the guarantee wholly, wherever
//     the poll sits in its loop nest;
//   - otherwise every top-level for-loop that performs calls must poll:
//     directly, by passing the context to a callee (which then owns the
//     obligation), or by calling a same-package function that polls
//     (computed as a fixpoint over the package call graph);
//   - an exported function with a context parameter must poll somewhere
//     by the same rules - accepting a context and ignoring it is how
//     anytime semantics regress one wrapper at a time.
//
// Loops exempt by construction: range loops (bounded by their operand),
// call-free loops (pure arithmetic makes progress without blocking), and
// loops annotated //rt:bounded whose trip count is small by construction.
package ctxpoll

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the ctxpoll analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxpoll",
	Doc: "solver work loops must poll their context on a bounded interval\n\n" +
		"Preserves the anytime guarantee: cancellation and deadlines must\n" +
		"interrupt every unbounded search loop in the solver packages.",
	Run: run,
}

// scopeSuffixes are the solver packages under the anytime contract.
var scopeSuffixes = []string{
	"internal/exact",
	"internal/relax",
	"internal/lp",
	"internal/sp",
}

func inScope(path string) bool {
	for _, s := range scopeSuffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	if !inScope(pass.PkgPath()) {
		return nil, nil
	}
	decls := analysis.FuncDecls(pass.Files)
	declOf := make(map[types.Object]*ast.FuncDecl, len(decls))
	for _, fd := range decls {
		if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
			declOf[obj] = fd
		}
	}

	// polls is the fixpoint set of package functions that poll a context,
	// directly or by delegating to something that does.
	polls := make(map[*ast.FuncDecl]bool)
	for _, fd := range decls {
		if directPoll(pass.TypesInfo, fd.Body) || argPoll(pass.TypesInfo, fd.Body, declOf) {
			polls[fd] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range decls {
			if polls[fd] {
				continue
			}
			if callsPolling(pass.TypesInfo, fd.Body, declOf, polls) {
				polls[fd] = true
				changed = true
			}
		}
	}

	for _, fd := range decls {
		if !contextBearing(pass.TypesInfo, fd) {
			continue
		}
		if directPoll(pass.TypesInfo, fd.Body) {
			continue // the function owns its polling; interval placement is its business
		}
		file := pass.FileOf(fd.Pos())
		for _, stmt := range fd.Body.List {
			loop, ok := stmt.(*ast.ForStmt)
			if !ok {
				continue
			}
			if !hasNonBuiltinCall(pass.TypesInfo, loop) {
				continue
			}
			if analysis.NodeAnnotated(pass.Fset, file, loop, "//rt:bounded") {
				continue
			}
			if loopPolls(pass.TypesInfo, loop, declOf, polls) {
				continue
			}
			pass.Reportf(loop.For, "unbounded loop in context-bearing function "+fd.Name.Name+
				" never polls the context; check ctx.Err() on a bounded interval or annotate //rt:bounded")
		}
		// Exported entry points must not swallow the context entirely.
		if fd.Name.IsExported() && hasCtxParam(pass.TypesInfo, fd) &&
			!polls[fd] && bodyHasNonBuiltinCall(pass.TypesInfo, fd.Body) {
			pass.Reportf(fd.Name.Pos(), "exported function "+fd.Name.Name+
				" receives a context but neither polls it nor passes it on; the anytime guarantee is lost here")
		}
	}
	return nil, nil
}

// contextBearing reports whether fd receives or touches a context.
func contextBearing(info *types.Info, fd *ast.FuncDecl) bool {
	if hasCtxParam(info, fd) {
		return true
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if e, ok := n.(ast.Expr); ok {
			if tv, ok := info.Types[e]; ok && analysis.IsContextType(tv.Type) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func hasCtxParam(info *types.Info, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		if tv, ok := info.Types[field.Type]; ok && analysis.IsContextType(tv.Type) {
			return true
		}
	}
	return false
}

// directPoll reports whether the node calls Err, Done or Deadline on a
// context-typed expression.
func directPoll(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Err", "Done", "Deadline":
			if tv, ok := info.Types[sel.X]; ok && analysis.IsContextType(tv.Type) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// argPoll reports whether the node contains a call that hands a
// context-typed argument to its callee (which then owns the polling
// obligation).  When declOf is non-nil, calls into the same package only
// count for callees not declared locally; local callees are handled by
// the polls fixpoint so that handing a context to a non-polling local
// function does not satisfy the check.
func argPoll(info *types.Info, n ast.Node, declOf map[types.Object]*ast.FuncDecl) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if declOf != nil {
			if callee := analysis.CalleeFunc(info, call); callee != nil {
				if _, local := declOf[callee]; local {
					return true
				}
			}
		}
		for _, arg := range call.Args {
			if tv, ok := info.Types[arg]; ok && analysis.IsContextType(tv.Type) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// callsPolling reports whether the node calls a same-package function in
// the current polls set.
func callsPolling(info *types.Info, n ast.Node, declOf map[types.Object]*ast.FuncDecl, polls map[*ast.FuncDecl]bool) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := analysis.CalleeFunc(info, call); callee != nil {
			if fd, ok := declOf[callee]; ok && polls[fd] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// loopPolls reports whether the loop satisfies the polling obligation by
// any accepted means.
func loopPolls(info *types.Info, loop *ast.ForStmt, declOf map[types.Object]*ast.FuncDecl, polls map[*ast.FuncDecl]bool) bool {
	return directPoll(info, loop) ||
		argPoll(info, loop, declOf) ||
		callsPolling(info, loop, declOf, polls)
}

// hasNonBuiltinCall reports whether the loop performs any real call; a
// call-free loop is pure arithmetic and exempt.
func hasNonBuiltinCall(info *types.Info, loop *ast.ForStmt) bool {
	return bodyHasNonBuiltinCall(info, loop)
}

func bodyHasNonBuiltinCall(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, builtin := info.Uses[id].(*types.Builtin); builtin {
				return true
			}
		}
		// Type conversions are not calls either.
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return true
		}
		found = true
		return false
	})
	return found
}

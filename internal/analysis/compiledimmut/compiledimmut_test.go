package compiledimmut_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/compiledimmut"
)

func TestCompiledImmut(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), compiledimmut.Analyzer,
		"compiledimmut", "compiledimmut/internal/core")
}

// Package compiledimmut implements the rtlint analyzer that forbids
// writing to core.Compiled (and its expansion twin core.Expanded) outside
// internal/core.
//
// A *core.Compiled is built once by core.Compile and then shared without
// synchronization: across rtserve's worker pool through the compiled
// cache, across every solver through solver.Options routing hints, and
// across repeated requests through the sync.Once memos hanging off it.
// Any field write outside the owning package is therefore a data race by
// construction, even if no test ever schedules the two goroutines
// together.  The analyzer flags, in every package except internal/core
// itself (test variants included):
//
//   - assignments, op-assignments and ++/-- whose destination chain passes
//     through a Compiled- or Expanded-typed expression (c.Topo = x,
//     c.OutStart[v] = x, c.Inst.Fns[e] = x, ...);
//   - composite literals of either type: a hand-built Compiled bypasses
//     the invariants Compile establishes, so only core may construct one.
//
// Writes through a previously-extracted alias (s := c.Topo; s[0] = 1) are
// beyond this analyzer's flow sensitivity; the -race CI jobs remain the
// backstop for those.
package compiledimmut

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the compiledimmut analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "compiledimmut",
	Doc: "forbid writes to core.Compiled outside internal/core\n\n" +
		"The compiled instance form is shared race-free across the solve\n" +
		"pool precisely because nothing mutates it after Compile returns.",
	Run: run,
}

// protectedNames are the shared immutable types owned by internal/core.
var protectedNames = map[string]bool{
	"Compiled": true,
	"Expanded": true,
}

// isCorePath reports whether the normalized package path is the owning
// package (the real repo path, or any path ending in internal/core so the
// golden-test corpus can model the exemption).
func isCorePath(path string) bool {
	return path == "repro/internal/core" ||
		path == "internal/core" ||
		strings.HasSuffix(path, "/internal/core")
}

func run(pass *analysis.Pass) (any, error) {
	if isCorePath(pass.PkgPath()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkWrite(pass, lhs)
				}
			case *ast.IncDecStmt:
				checkWrite(pass, n.X)
			case *ast.CompositeLit:
				if protectedType(pass.TypesInfo.Types[n].Type) {
					pass.Reportf(n.Pos(), "composite literal of a core compiled type outside internal/core; only core.Compile may construct one")
				}
			}
			return true
		})
	}
	return nil, nil
}

// checkWrite reports if the written destination dereferences a protected
// value anywhere along its selector/index chain.
func checkWrite(pass *analysis.Pass, lhs ast.Expr) {
	for {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			if protectedType(pass.TypesInfo.Types[e.X].Type) {
				pass.Reportf(lhs.Pos(), "write to a core."+typeName(pass.TypesInfo.Types[e.X].Type)+
					" outside internal/core; the compiled form is pool-shared and immutable after Compile")
				return
			}
			lhs = e.X
		default:
			return
		}
	}
}

// protectedType reports whether t (possibly behind a pointer) is one of
// the protected named types declared in an internal/core package.
func protectedType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !protectedNames[obj.Name()] {
		return false
	}
	return isCorePath(analysis.NormalizePkgPath(obj.Pkg().Path()))
}

// typeName names a protected type for diagnostics.
func typeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return "Compiled"
}

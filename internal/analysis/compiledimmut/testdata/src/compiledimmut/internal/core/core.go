// Package core models internal/core for the compiledimmut corpus: its
// import path ends in internal/core, so the analyzer exempts it and its
// own construction and mutation of Compiled must pass unflagged.
package core

// Compiled mirrors the production compiled form.
type Compiled struct {
	Topo  []int
	Memo  map[string]int
	Inner Expanded
}

// Expanded mirrors the production expansion twin.
type Expanded struct {
	N int
}

// Compile constructs and freely mutates a Compiled: inside the owning
// package every write is legal.
func Compile(n int) *Compiled {
	c := &Compiled{Topo: make([]int, n), Memo: make(map[string]int)}
	for i := range c.Topo {
		c.Topo[i] = i
	}
	c.Inner.N = n
	c.Memo["n"] = n
	return c
}

// Package compiledimmut is the golden corpus for the compiledimmut
// analyzer: outside internal/core, every write whose destination chain
// passes through a Compiled or Expanded is flagged, as is constructing
// either type by hand.
package compiledimmut

import "rtlinttest/compiledimmut/internal/core"

// mutate writes through the shared compiled form in every shape the
// analyzer recognizes.
func mutate(c *core.Compiled) {
	c.Topo[0] = 1   // want `write to a core\.Compiled outside internal/core`
	c.Memo["k"] = 2 // want `write to a core\.Compiled outside internal/core`
	c.Inner.N = 3   // want `write to a core\.Expanded outside internal/core`
	c.Inner.N++     // want `write to a core\.Expanded outside internal/core`
}

// construct builds compiled forms by hand, bypassing core.Compile's
// invariants.
func construct() *core.Compiled {
	e := core.Expanded{N: 1} // want `composite literal of a core compiled type outside internal/core`
	c := core.Compiled{      // want `composite literal of a core compiled type outside internal/core`
		Inner: e,
	}
	return &c
}

// read only reads and extracts aliases: both must pass (alias writes are
// the race detector's job, not this analyzer's).
func read(c *core.Compiled) int {
	n := c.Inner.N
	topo := c.Topo
	return n + topo[0] + len(c.Memo)
}

// Compiled here is a local type that merely shares the protected name;
// it is not core-owned, so mutating it must pass.
type Compiled struct {
	X int
}

// mutateLocal writes to the local namesake.
func mutateLocal(c *Compiled) {
	c.X = 1
	c.X++
	_ = Compiled{X: 2}
}

// Package rtlint aggregates the repo's analyzers into the suite that
// cmd/rtlint runs.  The set is ordered for stable output and exercised
// end-to-end by CI both standalone (rtlint ./...) and through the go
// command (go vet -vettool).
package rtlint

import (
	"repro/internal/analysis"
	"repro/internal/analysis/cachekey"
	"repro/internal/analysis/compiledimmut"
	"repro/internal/analysis/ctxpoll"
	"repro/internal/analysis/detrange"
	"repro/internal/analysis/doccomment"
	"repro/internal/analysis/hotalloc"
)

// Suite returns the full analyzer suite in diagnostic order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		cachekey.Analyzer,
		compiledimmut.Analyzer,
		ctxpoll.Analyzer,
		detrange.Analyzer,
		doccomment.Analyzer,
		hotalloc.Analyzer,
	}
}

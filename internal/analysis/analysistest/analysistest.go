// Package analysistest runs an analyzer over a golden corpus and checks
// its diagnostics against // want comments, shaped after
// golang.org/x/tools/go/analysis/analysistest.
//
// A corpus lives under <testdata>/src/<dir>; each dir is one package
// whose import path is "rtlinttest/<dir>" (nested dirs supported, so a
// corpus can model path-scoped rules like internal/core ownership).
// Imports between corpus packages resolve through the same tree;
// standard-library imports are type-checked from GOROOT source, so the
// tests need no pre-built export data and run offline.
//
// Expectations are comments of the form
//
//	code // want "regexp" `another regexp`
//
// each quoted pattern must match the message of a distinct diagnostic
// reported on that line, and every diagnostic must be matched by some
// pattern.  A package with no // want comments asserts the analyzer is
// silent on it.
package analysistest

import (
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/driver"
)

// prefix is the import-path namespace of corpus packages.
const prefix = "rtlinttest/"

// TestData returns the absolute path of the calling test's testdata
// directory (tests run with the package directory as working directory).
func TestData() string {
	td, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return td
}

// Run loads each corpus package, applies the analyzer, and reports any
// mismatch between diagnostics and // want expectations through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, dirs ...string) {
	t.Helper()
	fset := token.NewFileSet()
	l := &loader{
		fset:    fset,
		root:    filepath.Join(testdata, "src"),
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*driver.Unit),
		loading: make(map[string]bool),
	}
	for _, dir := range dirs {
		u, err := l.load(prefix + dir)
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
		findings, err := driver.Run(u, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, dir, err)
		}
		check(t, fset, u, findings)
	}
}

// loader resolves corpus import paths against the testdata tree and
// everything else against GOROOT source.
type loader struct {
	fset    *token.FileSet
	root    string
	std     types.Importer
	pkgs    map[string]*driver.Unit
	loading map[string]bool
}

// Import implements types.Importer for the type-checker.
func (l *loader) Import(path string) (*types.Package, error) {
	if !strings.HasPrefix(path, prefix) {
		return l.std.Import(path)
	}
	u, err := l.load(path)
	if err != nil {
		return nil, err
	}
	return u.Pkg, nil
}

// load parses and type-checks one corpus package, caching the unit.
func (l *loader) load(path string) (*driver.Unit, error) {
	if u, ok := l.pkgs[path]; ok {
		return u, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, prefix)))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	u, err := driver.Check(l.fset, path, files, nil, l, "")
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = u
	return u, nil
}

// expectation is one quoted pattern of a // want comment.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)`)

// check matches findings against the unit's // want comments.
func check(t *testing.T, fset *token.FileSet, u *driver.Unit, findings []driver.Finding) {
	t.Helper()
	var expts []expectation
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := fset.Position(c.Pos())
				rest := strings.TrimSpace(m[1])
				for rest != "" && (rest[0] == '"' || rest[0] == '`') {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Errorf("%s: malformed want pattern %q", posn, rest)
						break
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s: malformed want pattern %q", posn, q)
						break
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", posn, pat, err)
						break
					}
					expts = append(expts, expectation{
						file: posn.Filename,
						line: posn.Line,
						re:   re,
						raw:  pat,
					})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}

	for _, f := range findings {
		matched := false
		for i := range expts {
			e := &expts[i]
			if !e.matched && e.file == f.Posn.Filename && e.line == f.Posn.Line && e.re.MatchString(f.Message) {
				e.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", f.Posn, f.Message)
		}
	}
	for _, e := range expts {
		if !e.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", e.file, e.line, e.raw)
		}
	}
}

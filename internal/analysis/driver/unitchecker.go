package driver

// This file implements the tool side of the `go vet -vettool` contract,
// the same protocol x/tools' unitchecker speaks.  The go command drives
// the tool in three ways:
//
//	tool -flags            print a JSON description of the tool's flags
//	                       on stdout (the go command always does this
//	                       first, to validate command-line flags)
//	tool -V=full           print a version line usable as a build-cache
//	                       key: the second field must be "version" and
//	                       the third must not be "devel"
//	tool [flags] vet.cfg   analyze one compilation unit described by the
//	                       JSON config; print diagnostics to stderr as
//	                       file:line:col: message and exit 1 on findings
//
// The config's ImportMap/PackageFile tables resolve imports to compiler
// export data, VetxOnly marks dependency-only runs (facts propagation,
// which this suite does not use), and SucceedOnTypecheckFailure mirrors
// the compiler reporting the type error instead of vet.

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// vetConfig mirrors the JSON the go command writes to <objdir>/vet.cfg.
// Field names must match cmd/go/internal/work.vetConfig.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point shared by cmd/rtlint: it dispatches between the
// vettool protocol (-flags, -V=full, a *.cfg argument) and the standalone
// package-pattern mode, and returns the process exit code.
func Main(args []string, analyzers []*analysis.Analyzer) int {
	// The -V=full probe comes first and bare: answer before flag parsing.
	if len(args) == 1 && (args[0] == "-V=full" || args[0] == "-V") {
		fmt.Println(versionLine())
		return 0
	}
	if len(args) == 1 && args[0] == "-flags" {
		printFlagDefs(analyzers)
		return 0
	}

	fs := flag.NewFlagSet("rtlint", flag.ContinueOnError)
	selected := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		summary, _, _ := strings.Cut(a.Doc, "\n")
		selected[a.Name] = fs.Bool(a.Name, false, summary)
	}
	jsonOut := fs.Bool("json", false, "emit findings as JSON on stdout")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: rtlint [-analyzer]... [package pattern... | vet.cfg]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// An explicit -<analyzer> selection narrows the suite (go vet's
	// convention: naming any check disables the unnamed ones).
	run := analyzers
	var narrowed []*analysis.Analyzer
	for _, a := range analyzers {
		if *selected[a.Name] {
			narrowed = append(narrowed, a)
		}
	}
	if narrowed != nil {
		run = narrowed
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return vetUnit(rest[0], run)
	}
	return standalone(rest, run, *jsonOut)
}

// versionLine is the -V=full answer.  The whole line becomes part of the
// go command's action cache key, so it embeds a content hash of the
// executable: rebuilding rtlint invalidates cached vet results.
func versionLine() string {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil))[:16]
			}
			f.Close()
		}
	}
	return fmt.Sprintf("rtlint version rtlint-1.0.0-%s", id)
}

// printFlagDefs answers the -flags probe: a JSON array describing every
// flag the tool accepts, so the go command can validate and forward them.
func printFlagDefs(analyzers []*analysis.Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	defs := make([]jsonFlag, 0, len(analyzers))
	for _, a := range analyzers {
		summary, _, _ := strings.Cut(a.Doc, "\n")
		defs = append(defs, jsonFlag{Name: a.Name, Bool: true, Usage: summary})
	}
	data, _ := json.Marshal(defs)
	fmt.Printf("%s\n", data)
}

// vetUnit analyzes the single compilation unit described by cfgFile.
func vetUnit(cfgFile string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "rtlint: parsing %s: %v\n", cfgFile, err)
		return 2
	}

	// This suite computes no cross-package facts, so the vetx output is an
	// empty placeholder; writing it keeps the go command's caching happy.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	look := &exportLookup{exports: cfg.PackageFile, importMap: cfg.ImportMap}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, compiler, look.lookup)

	files := make([]string, len(cfg.GoFiles))
	for i, f := range cfg.GoFiles {
		if !filepath.IsAbs(f) && cfg.Dir != "" {
			f = filepath.Join(cfg.Dir, f)
		}
		files[i] = f
	}
	u, err := Check(fset, cfg.ImportPath, files, nil, imp, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// The compile step will report the error; vet stays quiet.
			return 0
		}
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 1
	}

	findings, err := Run(u, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// standalone loads package patterns through the go command and analyzes
// each target package.  No patterns means "./...".
func standalone(patterns []string, analyzers []*analysis.Analyzer, jsonOut bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	units, err := List("", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var all []Finding
	for _, u := range units {
		findings, err := Run(u, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		all = append(all, findings...)
	}
	if jsonOut {
		type jsonFinding struct {
			Analyzer string `json:"analyzer"`
			Position string `json:"position"`
			Message  string `json:"message"`
		}
		out := make([]jsonFinding, len(all))
		for i, f := range all {
			out[i] = jsonFinding{Analyzer: f.Analyzer, Position: f.Posn.String(), Message: f.Message}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	} else {
		for _, f := range all {
			fmt.Fprintln(os.Stderr, f)
		}
	}
	if len(all) > 0 {
		return 1
	}
	return 0
}

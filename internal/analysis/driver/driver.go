// Package driver runs analyzers over type-checked packages.  It speaks
// two protocols with the Go build system:
//
//   - Standalone: List loads packages and their dependencies' export data
//     through `go list -export -deps -json`, type-checks the target
//     packages from source, and Run applies analyzers to each.  This is
//     what `rtlint ./...` does.
//
//   - Unitchecker: Vet implements the `go vet -vettool` contract, in
//     which the go command invokes the tool once per package with a
//     vet.cfg manifest (see unitchecker.go).  This mode also covers test
//     files, because the go command feeds the tool every compilation
//     unit, test variants included.
//
// Both modes resolve imports from compiler export data (via
// importer.ForCompiler), never from source, so analysis of a package
// costs one parse + typecheck of that package alone.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// A Unit is one type-checked package ready for analysis.
type Unit struct {
	Path  string // import path as reported by the build system
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// A Finding is one diagnostic, tagged with the analyzer that produced it
// and resolved to a printable position.
type Finding struct {
	Analyzer string
	Posn     token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (rtlint/%s)", f.Posn, f.Message, f.Analyzer)
}

// Check parses and type-checks one package from source, resolving imports
// through imp.  goVersion may be empty, "1.22" or "go1.22".
func Check(fset *token.FileSet, path string, filenames []string, src map[string][]byte, imp types.Importer, goVersion string) (*Unit, error) {
	files := make([]*ast.File, 0, len(filenames))
	for _, name := range filenames {
		var f *ast.File
		var err error
		if b, ok := src[name]; ok {
			f, err = parser.ParseFile(fset, name, b, parser.ParseComments|parser.SkipObjectResolution)
		} else {
			f, err = parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		}
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if goVersion != "" && !strings.HasPrefix(goVersion, "go") {
		goVersion = "go" + goVersion
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: goVersion,
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Unit{Path: path, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// Run applies each analyzer to the unit and returns the findings sorted
// by position.
func Run(u *Unit, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.Info,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			findings = append(findings, Finding{
				Analyzer: name,
				Posn:     u.Fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, u.Path, err)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Posn.Filename != b.Posn.Filename {
			return a.Posn.Filename < b.Posn.Filename
		}
		if a.Posn.Line != b.Posn.Line {
			return a.Posn.Line < b.Posn.Line
		}
		if a.Posn.Column != b.Posn.Column {
			return a.Posn.Column < b.Posn.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// listPackage is the subset of `go list -json` output the driver needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	DepOnly    bool
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	Module     *struct{ GoVersion string }
	Error      *struct{ Err string }
}

// exportLookup resolves import paths to export-data readers using the
// Export files reported by `go list` plus the merged ImportMap of every
// listed package (identity outside the map).
type exportLookup struct {
	exports   map[string]string // canonical import path -> export file
	importMap map[string]string // source import path -> canonical path
}

func (l *exportLookup) lookup(path string) (io.ReadCloser, error) {
	if mapped, ok := l.importMap[path]; ok {
		path = mapped
	}
	file, ok := l.exports[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(file)
}

// List loads the packages matching patterns (plus their dependency export
// data) via the go command and type-checks each non-dependency package
// from source.  Packages with no Go files are skipped.
func List(dir string, patterns []string) ([]*Unit, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Dir,Standard,DepOnly,Export,GoFiles,ImportMap,Module,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.Bytes())
	}

	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}

	look := &exportLookup{
		exports:   make(map[string]string, len(pkgs)),
		importMap: make(map[string]string),
	}
	for _, p := range pkgs {
		if p.Export != "" {
			look.exports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			look.importMap[from] = to
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", look.lookup)
	var units []*Unit
	for _, p := range pkgs {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = p.Dir + string(os.PathSeparator) + f
		}
		goVersion := ""
		if p.Module != nil {
			goVersion = p.Module.GoVersion
		}
		u, err := Check(fset, p.ImportPath, files, nil, imp, goVersion)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		units = append(units, u)
	}
	return units, nil
}

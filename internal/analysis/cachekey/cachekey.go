// Package cachekey implements the rtlint analyzer that keeps
// solver.Options and Options.CacheKey in lockstep.
//
// The result cache keys on (solver, instance hash, Options.CacheKey()).
// An Options field that CacheKey does not render is invisible to the
// cache: two requests differing only in that field collapse onto one
// entry, and the second silently receives the first's result.  That
// failure mode appears exactly when someone adds an option and forgets
// the key - too late for any existing test to notice.
//
// In every package declaring a struct type Options with a CacheKey
// method, the analyzer computes the set of Options fields read anywhere
// in CacheKey's intra-package call tree, unions it with the explicit
// exclusion set (a package-level `cacheKeyExcluded` map or slice whose
// entries justify themselves: deadline-like fields that select how to
// compute, never what), and requires every struct field to appear in
// exactly one of the two.  A stale exclusion - naming no field, or
// naming one that CacheKey meanwhile renders - is flagged too, so the
// exclusion list cannot rot into dead paper.
package cachekey

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"repro/internal/analysis"
)

// Analyzer is the cachekey analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "cachekey",
	Doc: "every solver.Options field must be rendered by CacheKey or excluded\n\n" +
		"A field absent from both poisons the result cache across differing\n" +
		"values the day it is added.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	optType, optSpec := findOptions(pass)
	if optType == nil {
		return nil, nil
	}
	decls := analysis.FuncDecls(pass.Files)
	cacheKey := findMethod(pass, decls, optType, "CacheKey")
	if cacheKey == nil {
		return nil, nil
	}

	consumed := consumedFields(pass, decls, optType, cacheKey)
	excluded, excludedPos := exclusionSet(pass)

	structType, ok := optSpec.Type.(*ast.StructType)
	if !ok {
		return nil, nil
	}
	fields := make(map[string]bool)
	for _, field := range structType.Fields.List {
		for _, name := range field.Names {
			fields[name.Name] = true
			switch {
			case consumed[name.Name] && excluded[name.Name]:
				pass.Reportf(name.Pos(), "Options."+name.Name+
					" is rendered by CacheKey but also listed in cacheKeyExcluded; drop the stale exclusion")
			case !consumed[name.Name] && !excluded[name.Name]:
				pass.Reportf(name.Pos(), "Options."+name.Name+
					" is neither rendered by CacheKey nor listed in cacheKeyExcluded; an unkeyed option poisons the result cache")
			}
		}
	}
	for name, pos := range excludedPos {
		if !fields[name] {
			pass.Reportf(pos, "cacheKeyExcluded entry "+strconv.Quote(name)+
				" names no Options field; remove the stale entry")
		}
	}
	return nil, nil
}

// findOptions locates the package's Options struct type.
func findOptions(pass *analysis.Pass) (*types.Named, *ast.TypeSpec) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != "Options" {
					continue
				}
				obj := pass.TypesInfo.Defs[ts.Name]
				if obj == nil {
					continue
				}
				if named, ok := obj.Type().(*types.Named); ok {
					if _, ok := named.Underlying().(*types.Struct); ok {
						return named, ts
					}
				}
			}
		}
	}
	return nil, nil
}

// findMethod locates a declared method of recv (by value or pointer).
func findMethod(pass *analysis.Pass, decls []*ast.FuncDecl, recv *types.Named, name string) *ast.FuncDecl {
	for _, fd := range decls {
		if fd.Recv == nil || fd.Name.Name != name || len(fd.Recv.List) != 1 {
			continue
		}
		if tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]; ok && sameNamed(tv.Type, recv) {
			return fd
		}
	}
	return nil
}

func sameNamed(t types.Type, want *types.Named) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj() == want.Obj()
}

// consumedFields collects Options field names read anywhere in the
// CacheKey call tree within this package.
func consumedFields(pass *analysis.Pass, decls []*ast.FuncDecl, optType *types.Named, root *ast.FuncDecl) map[string]bool {
	declOf := make(map[types.Object]*ast.FuncDecl, len(decls))
	for _, fd := range decls {
		if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
			declOf[obj] = fd
		}
	}
	consumed := make(map[string]bool)
	visited := make(map[*ast.FuncDecl]bool)
	var walk func(fd *ast.FuncDecl)
	walk = func(fd *ast.FuncDecl) {
		if visited[fd] {
			return
		}
		visited[fd] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if tv, ok := pass.TypesInfo.Types[n.X]; ok && sameNamed(tv.Type, optType) {
					if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.FieldVal {
						consumed[n.Sel.Name] = true
					}
				}
			case *ast.CallExpr:
				if callee := analysis.CalleeFunc(pass.TypesInfo, n); callee != nil {
					if next, ok := declOf[callee]; ok {
						walk(next)
					}
				}
			}
			return true
		})
	}
	walk(root)
	return consumed
}

// exclusionSet parses the package-level cacheKeyExcluded declaration: a
// map literal keyed by string constants, or a slice of string constants.
func exclusionSet(pass *analysis.Pass) (map[string]bool, map[string]token.Pos) {
	set := make(map[string]bool)
	pos := make(map[string]token.Pos)
	add := func(e ast.Expr) {
		tv, ok := pass.TypesInfo.Types[e]
		if !ok || tv.Value == nil {
			return
		}
		if s, err := strconv.Unquote(tv.Value.ExactString()); err == nil {
			set[s] = true
			pos[s] = e.Pos()
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != "cacheKeyExcluded" || i >= len(vs.Values) {
						continue
					}
					cl, ok := ast.Unparen(vs.Values[i]).(*ast.CompositeLit)
					if !ok {
						continue
					}
					for _, elt := range cl.Elts {
						if kv, ok := elt.(*ast.KeyValueExpr); ok {
							add(kv.Key)
						} else {
							add(elt)
						}
					}
				}
			}
		}
	}
	return set, pos
}

package cachekey_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/cachekey"
)

func TestCacheKey(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), cachekey.Analyzer, "cachekey")
}

// Package cachekey is the golden corpus for the cachekey analyzer: an
// Options struct whose fields cover every verdict — rendered, excluded,
// rendered-and-excluded (stale exclusion), and forgotten — plus an
// exclusion entry naming no field at all.
package cachekey

import "strconv"

// Options mirrors solver.Options for the corpus.
type Options struct {
	Budget   int64
	Target   int64
	Deadline int64
	Stale    int64 // want `Options\.Stale is rendered by CacheKey but also listed in cacheKeyExcluded`
	Orphan   int64 // want `Options\.Orphan is neither rendered by CacheKey nor listed in cacheKeyExcluded`
}

// cacheKeyExcluded justifies the fields CacheKey leaves out.
var cacheKeyExcluded = map[string]string{
	"Deadline": "selects how long to compute, never what",
	"Stale":    "stale entry: the field is rendered nowadays",
	"Ghost":    "names no field at all", // want `cacheKeyExcluded entry "Ghost" names no Options field`
}

// CacheKey renders the result-relevant options.
func (o Options) CacheKey() string {
	return "b" + strconv.FormatInt(o.Budget, 10) + o.tail()
}

// tail continues the rendering: consumption is collected over the whole
// intra-package call tree, not just CacheKey's own body.
func (o Options) tail() string {
	return ".t" + strconv.FormatInt(o.Target, 10) + ".s" + strconv.FormatInt(o.Stale, 10)
}

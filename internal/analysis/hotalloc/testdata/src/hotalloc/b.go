package hotalloc

import (
	"fmt"
	"sync/atomic"
)

// This file extends the corpus with the parallel hot-path shapes the
// solver's raw-speed tier runs: work-stealing deque operations, a
// level-sweep kernel, and an arena-backed wire encoder.  Each has a
// clean form (everything the analyzer must accept: atomics, slot
// stores, append into fields and caller buffers) and a regression twin
// exhibiting how each path realistically rots (materializing tasks per
// push, growing rings inline, formatting in the steal loop, encoding
// through fmt).

// job stands in for a shed search subtree.
type job struct {
	level []int
}

// ring is a fixed-size power-of-two slot array of a Chase-Lev deque.
type ring struct {
	mask int64
	slot []atomic.Pointer[job]
}

// wsDeque is the corpus double of the exact search's per-worker deque.
type wsDeque struct {
	top, bottom atomic.Int64
	ring        atomic.Pointer[ring]
	grow        func(r *ring, b, t int64) *ring
}

// push is the clean owner-side push: atomic loads, a slot store, a
// bottom bump, and an out-of-line grow call — nothing allocates here.
//
//rt:hotpath — corpus: the accepted deque shapes.
func (d *wsDeque) push(tk *job) {
	b := d.bottom.Load()
	t := d.top.Load()
	r := d.ring.Load()
	if b-t >= int64(len(r.slot)) {
		r = d.grow(r, b, t)
	}
	r.slot[b&r.mask].Store(tk)
	d.bottom.Store(b + 1)
}

// steal is the clean thief side: loads plus one CAS arbitration.
//
//rt:hotpath — corpus: the accepted steal shapes.
func (d *wsDeque) steal() *job {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil
	}
	r := d.ring.Load()
	tk := r.slot[t&r.mask].Load()
	if !d.top.CompareAndSwap(t, t+1) {
		return nil
	}
	return tk
}

// pushFresh is how deque code rots: materializing the task and growing
// the ring at the push site instead of recycling through pools and the
// out-of-line grow.
//
//rt:hotpath — corpus: per-push materialization must be diagnosed.
func (d *wsDeque) pushFresh(level []int) {
	tk := &job{} // want `address-taken composite literal allocates`
	var snapshot []int
	snapshot = append(snapshot, level...)     // want `append to a non-reused destination allocates`
	bigger := make([]atomic.Pointer[job], 64) // want `make allocates`
	_ = bigger
	tk.level = snapshot
	d.push(tk)
}

// sweeper is the corpus double of the level-sweep kernel's per-worker
// scratch: slot-indexed DP arrays owned by one worker.
type sweeper struct {
	dur []float64
	et  []float64
}

// sweepLevel is the clean kernel: pure index arithmetic over owned
// scratch, max reductions, no allocation of any kind.
//
//rt:hotpath — corpus: the accepted sweep shapes.
func (s *sweeper) sweepLevel(first, last int, pred []int32) float64 {
	best := 0.0
	for slot := first; slot < last; slot++ {
		v := s.et[pred[slot]] + s.dur[slot]
		if v > s.et[slot] {
			s.et[slot] = v
		}
		if v > best {
			best = v
		}
	}
	return best
}

// sweepTraced is the rotted kernel: per-slot tracing boxes and formats
// on the innermost loop.
//
//rt:hotpath — corpus: tracing in the kernel must be diagnosed.
func (s *sweeper) sweepTraced(first, last int, trace func(any)) {
	for slot := first; slot < last; slot++ {
		trace(slot)                         // want `argument boxed into interface parameter`
		msg := fmt.Sprintf("slot %d", slot) // want `fmt call allocates`
		_ = msg
	}
}

// arena is the corpus double of the hot-serve response arena: a
// pre-encoded body appended into the caller's reused buffer.
type arena struct {
	body []byte
}

// encode is the clean encoder: append into the caller-provided
// destination, length prefix written by index, no copies.
//
//rt:hotpath — corpus: the accepted encoder shapes.
func (a *arena) encode(dst []byte) []byte {
	dst = append(dst, a.body...)
	dst = append(dst, '\n')
	return dst
}

// encodeFormatted is the rotted encoder: building the response through
// string conversion and fmt instead of the pre-encoded arena bytes.
//
//rt:hotpath — corpus: formatting encoders must be diagnosed.
func (a *arena) encodeFormatted(dst []byte, status int) []byte {
	header := fmt.Sprintf("status %d", status) // want `fmt call allocates`
	dst = append(dst, []byte(header)...)       // want `string/\[\]byte conversion copies`
	dst = append(dst, string(a.body)...)       // want `string/\[\]byte conversion copies`
	return dst
}

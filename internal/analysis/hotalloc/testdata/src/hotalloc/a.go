// Package hotalloc is the golden corpus for the hotalloc analyzer: one
// annotated function exhibiting every flagged construct, one annotated
// function built entirely from the amortized and exempt shapes, and
// unannotated code the analyzer must ignore.
package hotalloc

import (
	"errors"
	"fmt"
)

// buffer is a reusable worker whose fields amortize allocations away.
type buffer struct {
	dst   []byte
	vals  []int
	parts [][]byte
}

// result is a small value struct: constructing one allocates nothing.
type result struct {
	n, m int
}

// bad exhibits every allocating construct the analyzer flags.
//
//rt:hotpath — corpus: everything below must be diagnosed.
func (b *buffer) bad(n int, sink func(any)) int {
	s := fmt.Sprintf("hot %d", n) // want `fmt call allocates`
	local := make([]int, 0, n)    // want `make allocates`
	local = append(local, n)      // want `append to a non-reused destination allocates`
	p := new(int)                 // want `new allocates`
	f := func() int { return n }  // want `closure literal allocates`
	r := &result{n: n}            // want `address-taken composite literal allocates`
	pairs := map[int]int{n: n}    // want `slice or map literal allocates`
	raw := []byte(s)              // want `string/\[\]byte conversion copies`
	boxed := any(n)               // want `conversion to interface boxes its operand`
	sink(n)                       // want `argument boxed into interface parameter`
	_ = boxed
	return len(s) + len(local) + *p + f() + r.n + len(pairs) + len(raw)
}

// good is built entirely from shapes the analyzer accepts: field and
// parameter append destinations, panic, terminal errors.New, value
// struct literals, variadic slice passthrough, and one waived make.
//
//rt:hotpath — corpus: nothing below may be diagnosed.
func (b *buffer) good(dst []byte, n int) ([]byte, error) {
	b.vals = append(b.vals, n)
	dst = append(dst, byte(n))
	if n < 0 {
		panic("negative n")
	}
	if n > 1<<20 {
		return nil, errors.New("n out of range")
	}
	r := result{n: n, m: n}
	//rt:allow-alloc — one deliberate allocation, waived with a reason.
	scratch := make([]int, n)
	b.vals = append(b.vals, scratch...)
	dst = join(dst, b.parts...)
	return dst, check(r)
}

// join is variadic; hot callers pass the slice through with ... so no
// boxing or re-slicing happens at the boundary.
func join(dst []byte, parts ...[]byte) []byte {
	for _, p := range parts {
		dst = append(dst, p...)
	}
	return dst
}

// check is not annotated: its allocations are none of hotalloc's
// business.
func check(r result) error {
	if r.n != r.m {
		return fmt.Errorf("mismatch %d != %d", r.n, r.m)
	}
	return nil
}

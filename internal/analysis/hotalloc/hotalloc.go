// Package hotalloc implements the rtlint analyzer that keeps
// //rt:hotpath functions free of allocating constructs.
//
// The bench gate (cmd/benchdiff's allocs/op threshold) catches hot-path
// allocation regressions only for code a benchmark happens to drive;
// hotalloc is its static complement.  A function whose doc comment
// carries //rt:hotpath promises steady-state zero allocations, and the
// analyzer flags every construct that breaks that promise:
//
//   - calls into package fmt (Sprintf and friends always allocate);
//   - make and new, of any size (sized or not, they allocate);
//   - append whose destination is neither a struct field nor a function
//     parameter: appending to a reused field or caller-provided buffer
//     amortizes to zero, appending to a fresh local cannot;
//   - slice and map composite literals, and any address-taken composite
//     literal (value struct literals are register-friendly and allowed);
//   - function literals (closures capture their environment on the heap);
//   - implicit interface boxing: passing a concrete value to an
//     interface-typed parameter, or converting one to an interface type;
//   - string/[]byte conversions (each copies).
//
// Deliberate exemptions: panic arguments (a panicking hot path is
// already off the hot path) and errors.New (terminal error construction
// on the failure return is not steady-state allocation).  Anything else
// intentional is waived line-by-line with //rt:allow-alloc on the
// construct's line or the line above it.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the hotalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "//rt:hotpath functions must not contain allocating constructs\n\n" +
		"The static complement of the allocs/op benchmark gate: hot paths\n" +
		"promise steady-state zero allocations.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, fd := range analysis.FuncDecls(pass.Files) {
		if !analysis.FuncAnnotated(fd, "//rt:hotpath") {
			continue
		}
		file := pass.FileOf(fd.Pos())
		params := paramObjects(pass.TypesInfo, fd)
		check(pass, file, fd, params)
	}
	return nil, nil
}

// paramObjects collects the objects of fd's parameters (including the
// receiver): append destinations among them are caller-reused buffers.
func paramObjects(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	return out
}

func check(pass *analysis.Pass, file *ast.File, fd *ast.FuncDecl, params map[types.Object]bool) {
	info := pass.TypesInfo
	waived := func(n ast.Node) bool {
		return analysis.NodeAnnotated(pass.Fset, file, n, "//rt:allow-alloc")
	}
	report := func(n ast.Node, msg string) {
		if !waived(n) {
			pass.Reportf(n.Pos(), msg+" in //rt:hotpath function "+fd.Name.Name+
				"; hoist it, reuse a buffer, or annotate //rt:allow-alloc")
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n, "closure literal allocates")
			return false // its body is not the annotated hot path

		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n, "address-taken composite literal allocates")
					return false
				}
			}

		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					report(n, "slice or map literal allocates")
				}
			}

		case *ast.CallExpr:
			checkCall(pass, info, n, params, report)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, info *types.Info, call *ast.CallExpr, params map[types.Object]bool, report func(ast.Node, string)) {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, builtin := info.Uses[id].(*types.Builtin); builtin {
			switch id.Name {
			case "make":
				report(call, "make allocates")
			case "new":
				report(call, "new allocates")
			case "append":
				if len(call.Args) > 0 && !reusedDestination(info, call.Args[0], params) {
					report(call, "append to a non-reused destination allocates")
				}
			case "panic":
				// Exempt: a panicking hot path is already broken.
			}
			return
		}
	}

	// Conversions.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		to := tv.Type
		if len(call.Args) == 1 {
			from := info.Types[call.Args[0]].Type
			if isInterface(to) && from != nil && !isInterface(from) {
				report(call, "conversion to interface boxes its operand")
			}
			if stringBytes(to, from) {
				report(call, "string/[]byte conversion copies")
			}
		}
		return
	}

	callee := analysis.CalleeFunc(info, call)
	if callee != nil && callee.Pkg() != nil {
		switch callee.Pkg().Path() {
		case "fmt":
			report(call, "fmt call allocates")
			return
		case "errors":
			if callee.Name() == "New" {
				return // terminal error construction is exempt
			}
		}
	}

	// Implicit interface boxing at the call boundary.
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= sig.Params().Len()-1 {
			if call.Ellipsis.IsValid() {
				break // x... passes the slice through, no boxing
			}
			pt = sig.Params().At(sig.Params().Len() - 1).Type()
			if sl, ok := pt.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		} else if i < sig.Params().Len() {
			pt = sig.Params().At(i).Type()
		}
		at := info.Types[arg].Type
		if pt != nil && isInterface(pt) && at != nil && !isInterface(at) {
			report(call, "argument boxed into interface parameter")
			return
		}
	}
}

// reusedDestination reports whether an append destination is a struct
// field or a parameter: both are buffers that amortize to zero
// allocations across calls.
func reusedDestination(info *types.Info, dst ast.Expr, params map[types.Object]bool) bool {
	switch e := ast.Unparen(dst).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return true
		}
	case *ast.Ident:
		if obj := info.ObjectOf(e); obj != nil && params[obj] {
			return true
		}
	}
	return false
}

func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func stringBytes(to, from types.Type) bool {
	return (isString(to) && isByteSlice(from)) || (isByteSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

package doccomment_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/doccomment"
)

func TestDocComment(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), doccomment.Analyzer, "doccomment")
}

// Package doccomment implements the rtlint analyzer that requires doc
// comments on the exported surface of the repo's service-facing
// packages.
//
// The service (internal/service), the solver API (internal/solver) and
// the durable store (internal/store) are the packages embedders and
// wire clients program against: their exported identifiers ARE the
// contract docs/API.md describes.  An undocumented exported identifier
// there is a contract nobody wrote down — it drifts silently, and the
// documentation-coverage tests cannot catch what was never stated.
//
// The analyzer flags every exported function, method (of an exported
// receiver type), type, constant and variable in those packages that
// carries no doc comment.  Grouped const/var declarations satisfy the
// requirement with one comment on the group; test files are exempt
// (they export nothing clients see).  Unlike the other rtlint
// analyzers there is no waiver marker: the fix is always to write the
// sentence.
package doccomment

import (
	"go/ast"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the doccomment analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "doccomment",
	Doc: "exported identifiers of the service-facing packages must have doc comments\n\n" +
		"internal/service, internal/solver, internal/store, internal/cluster\n" +
		"and the root facade are the embedder- and wire-facing contract; an\n" +
		"undocumented export there is an unwritten contract.",
	Run: run,
}

// packages scopes the analyzer: only the service-facing surface is
// held to the requirement (import paths normalized, so test variants
// inherit their package's scope).
var packages = map[string]bool{
	"repro/internal/service": true,
	"repro/internal/solver":  true,
	"repro/internal/store":   true,
	// The cluster layer is wire-facing the same way the service is: its
	// exports define the peer protocol semantics.
	"repro/internal/cluster": true,
	// The root facade is the library contract external callers import;
	// with the PR 1 deprecated aliases retired, every remaining export
	// is surface worth a sentence.
	"repro": true,

	// Golden-test twin, so the corpus exercises the real scope check.
	"rtlinttest/doccomment": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !packages[pass.PkgPath()] {
		return nil, nil
	}
	for _, file := range pass.Files {
		if name := pass.Fset.Position(file.Pos()).Filename; strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFunc(pass, d)
			case *ast.GenDecl:
				checkGen(pass, d)
			}
		}
	}
	return nil, nil
}

// checkFunc flags an undocumented exported function or method.  Methods
// only count when their receiver's base type is exported too: an
// exported method on an unexported type is not client-reachable surface.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || fd.Doc != nil {
		return
	}
	kind := "function"
	if fd.Recv != nil {
		base := receiverBase(fd.Recv)
		if base == "" || !ast.IsExported(base) {
			return
		}
		kind = "method " + base + "."
	}
	if kind == "function" {
		pass.Reportf(fd.Name.Pos(), "exported function "+fd.Name.Name+" has no doc comment")
		return
	}
	pass.Reportf(fd.Name.Pos(), "exported "+kind+fd.Name.Name+" has no doc comment")
}

// checkGen flags undocumented exported types, constants and variables.
// A doc comment on the grouped declaration covers every spec inside it.
func checkGen(pass *analysis.Pass, gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && gd.Doc == nil && s.Doc == nil {
				pass.Reportf(s.Name.Pos(), "exported type "+s.Name.Name+" has no doc comment")
			}
		case *ast.ValueSpec:
			if gd.Doc != nil || s.Doc != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					pass.Reportf(name.Pos(), "exported "+kindOf(gd)+" "+name.Name+" has no doc comment")
				}
			}
		}
	}
}

// receiverBase returns the name of the receiver's base type.
func receiverBase(recv *ast.FieldList) string {
	if len(recv.List) != 1 {
		return ""
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if ident, ok := t.(*ast.Ident); ok {
		return ident.Name
	}
	return ""
}

// kindOf names a GenDecl's token for diagnostics.
func kindOf(gd *ast.GenDecl) string {
	return gd.Tok.String() // "const" or "var"
}

// Package doccomment is the golden corpus for the doccomment analyzer:
// exported identifiers with and without doc comments, grouped
// declarations covered by one comment, methods on exported and
// unexported receivers, and unexported identifiers that never count.
package doccomment

// Documented is a documented exported type.
type Documented struct{}

type Orphan struct{} // want `exported type Orphan has no doc comment`

// Describe is a documented exported method.
func (Documented) Describe() string { return "ok" }

func (Documented) Mystery() {} // want `exported method Documented\.Mystery has no doc comment`

// hidden methods never count, exported name or not.
type hidden struct{}

// Reached satisfies some interface; the type itself is not surface.
func (hidden) Reached() {}

func (hidden) Unreached() {} // exported method, unexported receiver: exempt

// Answer is a documented exported function.
func Answer() int { return 42 }

func Question() {} // want `exported function Question has no doc comment`

// Grouped constants share one doc comment for the block.
const (
	GroupedA = iota
	GroupedB
)

const Bare = 7 // want `exported const Bare has no doc comment`

// MaxThings caps things.
var MaxThings = 10

var Stray int // want `exported var Stray has no doc comment`

var quiet int // unexported: exempt

func internal() {} // unexported: exempt

var _ = quiet
var _ = internal

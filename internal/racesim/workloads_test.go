package racesim

import (
	"testing"

	"repro/internal/core"
)

// TestWithReducersOnZMatchesPerCell cross-validates the batched Z-reducer
// attachment against the generic per-cell transform: identical cell
// counts and identical simulated finish times for both variants.
func TestWithReducersOnZMatchesPerCell(t *testing.T) {
	for _, variant := range []BinaryVariant{SelfParent, FullTree} {
		for _, n := range []int{2, 4} {
			for h := 1; h <= 3; h++ {
				mm := ParallelMM(n)
				batched, extra, err := mm.WithReducersOnZ(h, variant)
				if err != nil {
					t.Fatal(err)
				}
				perCell := mm.Trace
				before := perCell.NumCells
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						perCell, err = WithBinaryReducer(perCell, mm.ZCell(i, j), h, variant)
						if err != nil {
							t.Fatal(err)
						}
					}
				}
				if extra != perCell.NumCells-before {
					t.Fatalf("variant %d n=%d h=%d: extra %d vs %d",
						variant, n, h, extra, perCell.NumCells-before)
				}
				rb, err := Simulate(batched, 0)
				if err != nil {
					t.Fatal(err)
				}
				rp, err := Simulate(perCell, 0)
				if err != nil {
					t.Fatal(err)
				}
				if rb.FinishTime != rp.FinishTime {
					t.Fatalf("variant %d n=%d h=%d: batched %d vs per-cell %d",
						variant, n, h, rb.FinishTime, rp.FinishTime)
				}
			}
		}
	}
}

// TestMMRaceInstanceObservation11 ties the workload to the formal model:
// the simulated multiply never exceeds the race DAG's makespan.
func TestMMRaceInstanceObservation11(t *testing.T) {
	mm := ParallelMM(4)
	res, err := Simulate(mm.Trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	vi, err := mm.RaceInstance(core.NoReducer)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := vi.Makespan(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinishTime > ms {
		t.Fatalf("simulated %d > makespan %d", res.FinishTime, ms)
	}
	if res.FinishTime != 4 {
		t.Fatalf("simulated %d; want n = 4", res.FinishTime)
	}
}

func TestWithReducersOnZValidation(t *testing.T) {
	mm := ParallelMM(2)
	if _, _, err := mm.WithReducersOnZ(-1, SelfParent); err == nil {
		t.Fatal("want error for negative height")
	}
	if _, _, err := mm.WithReducersOnZ(1, BinaryVariant(9)); err == nil {
		t.Fatal("want error for unknown variant")
	}
	same, extra, err := mm.WithReducersOnZ(0, SelfParent)
	if err != nil || extra != 0 || len(same.Updates) != len(mm.Updates) {
		t.Fatalf("h=0 should copy: %v %d", err, extra)
	}
}

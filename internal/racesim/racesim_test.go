package racesim

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
)

func simulate(t *testing.T, tr *Trace, procs int) *SimResult {
	t.Helper()
	res, err := Simulate(tr, procs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSimulateSerialCell(t *testing.T) {
	// n updates to one cell serialize: finish time n.
	for _, n := range []int{1, 5, 17} {
		res := simulate(t, SingleCell(n), 0)
		if res.FinishTime != int64(n) {
			t.Fatalf("n=%d: finish = %d; want %d", n, res.FinishTime, n)
		}
		if res.CellFinal[0] != int64(n) {
			t.Fatalf("n=%d: cell final = %d", n, res.CellFinal[0])
		}
	}
}

func TestSimulateChain(t *testing.T) {
	// c0 <- const, c1 <- c0, c2 <- c1: strictly serial, 3 time units.
	tr := &Trace{NumCells: 3, Updates: []Update{
		{Dst: 0},
		{Dst: 1, Srcs: []int{0}},
		{Dst: 2, Srcs: []int{1}},
	}}
	res := simulate(t, tr, 0)
	if res.FinishTime != 3 {
		t.Fatalf("finish = %d; want 3", res.FinishTime)
	}
}

func TestSimulateDeadlock(t *testing.T) {
	tr := &Trace{NumCells: 2, Updates: []Update{
		{Dst: 0, Srcs: []int{1}},
		{Dst: 1, Srcs: []int{0}},
	}}
	if _, err := Simulate(tr, 0); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v; want ErrDeadlock", err)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(&Trace{NumCells: 1, Updates: []Update{{Dst: 5}}}, 0); err == nil {
		t.Fatal("want error for out-of-range dst")
	}
	if _, err := Simulate(&Trace{NumCells: 1, Updates: []Update{{Dst: 0, Srcs: []int{7}}}}, 0); err == nil {
		t.Fatal("want error for out-of-range src")
	}
}

func TestSimulateBoundedProcs(t *testing.T) {
	// k independent single-update cells: P procs finish in ceil(k/P).
	k := 10
	tr := &Trace{NumCells: k}
	for c := 0; c < k; c++ {
		tr.Updates = append(tr.Updates, Update{Dst: c})
	}
	for procs, want := range map[int]int64{1: 10, 2: 5, 3: 4, 10: 1, 0: 1} {
		res := simulate(t, tr, procs)
		if res.FinishTime != want {
			t.Fatalf("procs=%d: finish = %d; want %d", procs, res.FinishTime, want)
		}
	}
}

// TestReducerFormula verifies the Section 1 claim: a self-parent binary
// reducer of height h applies n updates in ceil(n/2^h) + h + 1 time.
func TestReducerFormula(t *testing.T) {
	for _, n := range []int{8, 9, 64, 100, 1000} {
		for h := 1; h <= 5; h++ {
			tr, err := WithBinaryReducer(SingleCell(n), 0, h, SelfParent)
			if err != nil {
				t.Fatal(err)
			}
			res := simulate(t, tr, 0)
			leaves := int64(1) << uint(h)
			want := (int64(n)+leaves-1)/leaves + int64(h) + 1
			if res.CellFinal[0] != want {
				t.Fatalf("n=%d h=%d: finish = %d; want %d", n, h, res.CellFinal[0], want)
			}
			// Space accounting: 2^h extra cells.
			if got := tr.NumCells - 1; got != int(leaves) {
				t.Fatalf("n=%d h=%d: extra space = %d; want %d", n, h, got, leaves)
			}
		}
	}
}

// TestReducerSpeedupNearlyLinear checks the Section 1 observation that for
// large n the reducer speedup is almost linear in the space used.
func TestReducerSpeedupNearlyLinear(t *testing.T) {
	n := 4096
	base := simulate(t, SingleCell(n), 0).FinishTime
	for h := 1; h <= 6; h++ {
		tr, err := WithBinaryReducer(SingleCell(n), 0, h, SelfParent)
		if err != nil {
			t.Fatal(err)
		}
		res := simulate(t, tr, 0)
		speedup := float64(base) / float64(res.FinishTime)
		space := float64(int64(1) << uint(h))
		if speedup < 0.8*space {
			t.Fatalf("h=%d: speedup %.2f far below space %v", h, speedup, space)
		}
	}
}

func TestFullTreeVariant(t *testing.T) {
	for _, n := range []int{16, 100} {
		for h := 1; h <= 4; h++ {
			tr, err := WithBinaryReducer(SingleCell(n), 0, h, FullTree)
			if err != nil {
				t.Fatal(err)
			}
			res := simulate(t, tr, 0)
			leaves := int64(1) << uint(h)
			lo := (int64(n)+leaves-1)/leaves + int64(h) + 1
			hi := (int64(n)+leaves-1)/leaves + 2*int64(h)
			if res.CellFinal[0] < lo || res.CellFinal[0] > hi {
				t.Fatalf("n=%d h=%d: finish = %d; want within [%d, %d]",
					n, h, res.CellFinal[0], lo, hi)
			}
			// Space accounting: 2^(h+1)-2 extra cells.
			if got, want := tr.NumCells-1, int(2*leaves-2); got != want {
				t.Fatalf("n=%d h=%d: extra space = %d; want %d", n, h, got, want)
			}
		}
	}
}

func TestReducerWithEnoughProcsMatchesUnbounded(t *testing.T) {
	n := 256
	for h := 1; h <= 4; h++ {
		tr, err := WithBinaryReducer(SingleCell(n), 0, h, SelfParent)
		if err != nil {
			t.Fatal(err)
		}
		unbounded := simulate(t, tr, 0).FinishTime
		bounded := simulate(t, tr, 1<<uint(h)).FinishTime
		if bounded != unbounded {
			t.Fatalf("h=%d: %d procs give %d; unbounded gives %d", h, 1<<uint(h), bounded, unbounded)
		}
	}
}

func TestKWaySplit(t *testing.T) {
	// k-way split: n updates over k cells then k root updates:
	// ceil(n/k) + k when the root's updates pipeline behind the slowest
	// leaf.  (Equation 2's duration.)
	for _, n := range []int{100, 37} {
		for _, k := range []int{2, 5, 10} {
			tr, err := WithKWaySplit(SingleCell(n), 0, k)
			if err != nil {
				t.Fatal(err)
			}
			res := simulate(t, tr, 0)
			want := (int64(n)+int64(k)-1)/int64(k) + int64(k)
			// The DES can beat the closed form slightly when leaves finish
			// staggered and root updates pipeline early.
			if res.CellFinal[0] > want || res.CellFinal[0] < want/2 {
				t.Fatalf("n=%d k=%d: finish = %d; want about %d", n, k, res.CellFinal[0], want)
			}
			if got := tr.NumCells - 1; got != k {
				t.Fatalf("space = %d; want %d", got, k)
			}
		}
	}
}

func TestKWayAndHeightZeroNoops(t *testing.T) {
	tr := SingleCell(5)
	same, err := WithKWaySplit(tr, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if same.NumCells != 1 || len(same.Updates) != 5 {
		t.Fatal("k=1 should be a no-op copy")
	}
	same, err = WithBinaryReducer(tr, 0, 0, SelfParent)
	if err != nil {
		t.Fatal(err)
	}
	if same.NumCells != 1 || len(same.Updates) != 5 {
		t.Fatal("h=0 should be a no-op copy")
	}
	if _, err := WithBinaryReducer(tr, 9, 1, SelfParent); err == nil {
		t.Fatal("want error for missing cell")
	}
	if _, err := WithBinaryReducer(tr, 0, -1, SelfParent); err == nil {
		t.Fatal("want error for negative height")
	}
	if _, err := WithKWaySplit(tr, 9, 2); err == nil {
		t.Fatal("want error for missing cell")
	}
}

// TestSimulateMatchesEarliestFinish cross-checks the DES against the
// closed-form recurrence in core for single-source traces.
func TestSimulateMatchesEarliestFinish(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 30; trial++ {
		tr := randomSingleSrcTrace(rng)
		res, err := Simulate(tr, 0)
		if err != nil {
			continue // random trace may be cyclic; skip
		}
		vi, err := tr.RaceInstance(core.NoReducer)
		if err != nil {
			t.Fatal(err)
		}
		ef, err := vi.EarliestFinish()
		if err != nil {
			t.Fatal(err)
		}
		if ef != res.FinishTime {
			t.Fatalf("trial %d: EarliestFinish %d != simulated %d", trial, ef, res.FinishTime)
		}
		// Observation 1.1: simulated time <= DAG makespan.
		ms, err := vi.Makespan(nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.FinishTime > ms {
			t.Fatalf("trial %d: simulated %d > makespan %d", trial, res.FinishTime, ms)
		}
	}
}

// randomSingleSrcTrace builds an acyclic-by-construction trace where each
// update's source is a strictly lower cell (or a constant).
func randomSingleSrcTrace(rng *rand.Rand) *Trace {
	n := 3 + rng.Intn(5)
	tr := &Trace{NumCells: n}
	for i := 0; i < 3*n; i++ {
		dst := 1 + rng.Intn(n-1)
		if rng.Intn(3) == 0 {
			tr.Updates = append(tr.Updates, Update{Dst: dst})
		} else {
			tr.Updates = append(tr.Updates, Update{Dst: dst, Srcs: []int{rng.Intn(dst)}})
		}
	}
	return tr
}

func TestParallelMMBaseline(t *testing.T) {
	// Figure 3: without reducers every Z cell serializes n updates, so the
	// whole multiply takes exactly n time on unbounded processors.
	for _, n := range []int{2, 4, 8} {
		m := ParallelMM(n)
		res := simulate(t, m.Trace, 0)
		if res.FinishTime != int64(n) {
			t.Fatalf("n=%d: finish = %d; want %d", n, res.FinishTime, n)
		}
		if len(m.Updates) != n*n*n {
			t.Fatalf("n=%d: %d updates; want n^3", n, len(m.Updates))
		}
	}
}

func TestParallelMMWithReducers(t *testing.T) {
	// With height-h reducers on every Z cell the multiply takes
	// ceil(n/2^h) + h + 1 (all cells are independent), using n^2 * 2^h
	// extra space.
	n := 16
	m := ParallelMM(n)
	for h := 1; h <= 4; h++ {
		tr, extra, err := m.WithReducersOnZ(h, SelfParent)
		if err != nil {
			t.Fatal(err)
		}
		res := simulate(t, tr, 0)
		leaves := int64(1) << uint(h)
		want := (int64(n)+leaves-1)/leaves + int64(h) + 1
		if res.FinishTime != want {
			t.Fatalf("h=%d: finish = %d; want %d", h, res.FinishTime, want)
		}
		if extra != n*n*int(leaves) {
			t.Fatalf("h=%d: extra space = %d; want %d", h, extra, n*n*int(leaves))
		}
	}
}

func TestRaceOutcomesFigure1(t *testing.T) {
	unlocked := RaceOutcomes(false)
	if !unlocked[1] || !unlocked[2] || len(unlocked) != 2 {
		t.Fatalf("unlocked outcomes = %v; want {1, 2}", unlocked)
	}
	locked := RaceOutcomes(true)
	if !locked[2] || len(locked) != 1 {
		t.Fatalf("locked outcomes = %v; want {2}", locked)
	}
}

func TestFigure4Makespan(t *testing.T) {
	vi := Figure4()
	m, err := vi.Makespan(nil)
	if err != nil {
		t.Fatal(err)
	}
	if m != 11 {
		t.Fatalf("Figure 4 makespan = %d; want 11", m)
	}
	// The stated critical path s->a->b->c->d->t sums to 11.
	nodes := Figure4Layout()
	works := []int64{vi.Work(nodes.A), vi.Work(nodes.B), vi.Work(nodes.C), vi.Work(nodes.D), vi.Work(nodes.T)}
	var sum int64
	for _, w := range works {
		sum += w
	}
	if sum != 11 {
		t.Fatalf("path works sum to %d; want 11 (works %v)", sum, works)
	}
}

func TestFigure5SupernodeDropsMakespanTo10(t *testing.T) {
	vi, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	m, err := vi.Makespan(nil)
	if err != nil {
		t.Fatal(err)
	}
	if m != 10 {
		t.Fatalf("Figure 5 makespan = %d; want 10", m)
	}
	// Two units of extra space were added (the two leaves c1, c2).
	if got := vi.G.NumNodes() - Figure4().G.NumNodes(); got != 2 {
		t.Fatalf("extra vertices = %d; want 2", got)
	}
}

func TestSupernodeValidation(t *testing.T) {
	vi := Figure4()
	if _, err := SupernodeBinary(vi, -1, 1); err == nil {
		t.Fatal("want error for bad vertex")
	}
	if _, err := SupernodeBinary(vi, 0, 0); err == nil {
		t.Fatal("want error for height 0")
	}
}

func TestRaceInstanceShape(t *testing.T) {
	tr := &Trace{NumCells: 3, Updates: []Update{
		{Dst: 1, Srcs: []int{0}},
		{Dst: 1, Srcs: []int{0}},
		{Dst: 2, Srcs: []int{1}},
	}}
	vi, err := tr.RaceInstance(core.NoReducer)
	if err != nil {
		t.Fatal(err)
	}
	// Cells 0..2 plus virtual source and sink.
	if vi.G.NumNodes() != 5 {
		t.Fatalf("nodes = %d; want 5", vi.G.NumNodes())
	}
	if vi.Work(1) != 2 || vi.Work(2) != 1 || vi.Work(0) != 0 {
		t.Fatalf("works = %d %d %d", vi.Work(0), vi.Work(1), vi.Work(2))
	}
	if _, err := tr.RaceInstance(core.ReducerKind(42)); err == nil {
		t.Fatal("want error for unknown kind")
	}
}

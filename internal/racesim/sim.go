package racesim

import (
	"container/heap"
	"errors"
	"fmt"
)

// SimResult reports one simulated execution.
type SimResult struct {
	// FinishTime is when the last update completes.
	FinishTime int64
	// CellFinal[c] is the time cell c became final (all its updates
	// applied); cells with no updates are final at 0.
	CellFinal []int64
	// Applied counts executed updates (always len(tr.Updates) on success).
	Applied int
}

// ErrDeadlock is returned when the trace has cyclic read-write
// dependencies (the paper's model explicitly excludes these).
var ErrDeadlock = errors.New("racesim: cyclic read-write dependencies, updates can never run")

// event orders ready updates by (ready time, update index).
type event struct {
	ready int64
	idx   int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].ready != h[j].ready {
		return h[i].ready < h[j].ready
	}
	return h[i].idx < h[j].idx
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h *eventHeap) push(e event) { heap.Push(h, e) }
func (h *eventHeap) pop() event   { return heap.Pop(h).(event) }

type int64Heap []int64

func (h int64Heap) Len() int           { return len(h) }
func (h int64Heap) Less(i, j int) bool { return h[i] < h[j] }
func (h int64Heap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *int64Heap) Push(x any)        { *h = append(*h, x.(int64)) }
func (h *int64Heap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// Simulate executes the trace on the paper's machine model: each update
// occupies its destination cell's lock for exactly one time unit, updates
// wait until all their source cells are final, and at most procs updates
// run concurrently (procs <= 0 means unbounded processors).
//
// With unbounded processors the simulation is exact and deterministic.
// With bounded processors it is a deterministic greedy list schedule in
// ready-time order (a valid execution; an upper bound on the optimum).
func Simulate(tr *Trace, procs int) (*SimResult, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	n := tr.NumCells
	pending := make([]int, n)
	waiting := make([][]int, n) // cell -> updates waiting on it as a source
	remaining := make([]int, len(tr.Updates))
	for i, u := range tr.Updates {
		pending[u.Dst]++
		seen := make(map[int]bool, len(u.Srcs))
		for _, s := range u.Srcs {
			if seen[s] {
				continue // duplicate sources wait once
			}
			seen[s] = true
			waiting[s] = append(waiting[s], i)
			remaining[i]++
		}
	}

	final := make([]int64, n)
	readyAt := make([]int64, len(tr.Updates))
	enqueued := make([]bool, len(tr.Updates))
	var ready eventHeap

	finalize := func(c int, t int64) {
		final[c] = t
		for _, ui := range waiting[c] {
			if readyAt[ui] < t {
				readyAt[ui] = t
			}
			remaining[ui]--
			if remaining[ui] == 0 && !enqueued[ui] {
				enqueued[ui] = true
				ready.push(event{ready: readyAt[ui], idx: ui})
			}
		}
	}
	for c := 0; c < n; c++ {
		if pending[c] == 0 {
			finalize(c, 0)
		}
	}
	for i := range tr.Updates {
		if remaining[i] == 0 && !enqueued[i] {
			enqueued[i] = true
			ready.push(event{ready: 0, idx: i})
		}
	}

	cellFree := make([]int64, n)
	var procFree int64Heap
	if procs > 0 {
		procFree = make(int64Heap, procs)
		heap.Init(&procFree)
	}

	res := &SimResult{CellFinal: final}
	for ready.Len() > 0 {
		ev := ready.pop()
		u := tr.Updates[ev.idx]
		start := ev.ready
		if cellFree[u.Dst] > start {
			start = cellFree[u.Dst]
		}
		if procs > 0 {
			if procFree[0] > start {
				start = procFree[0]
			}
			procFree[0] = start + 1
			heap.Fix(&procFree, 0)
		}
		fin := start + 1
		cellFree[u.Dst] = fin
		if fin > res.FinishTime {
			res.FinishTime = fin
		}
		res.Applied++
		pending[u.Dst]--
		if pending[u.Dst] == 0 {
			finalize(u.Dst, fin)
		}
	}
	if res.Applied != len(tr.Updates) {
		return nil, fmt.Errorf("%w (%d of %d updates ran)", ErrDeadlock, res.Applied, len(tr.Updates))
	}
	return res, nil
}

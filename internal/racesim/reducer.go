package racesim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/duration"
)

// BinaryVariant selects which binary-reducer construction to use.
type BinaryVariant int

// Binary reducer variants (both from Section 1 / Figure 2).
const (
	// SelfParent is the space-efficient variant: only the 2^h leaves are
	// extra cells; when a node finishes before its sibling it becomes its
	// own parent and the sibling updates it.  Uses 2^h extra space and
	// applies n updates in ceil(n/2^h) + h + 1 time - the numbers behind
	// Equation 3.
	SelfParent BinaryVariant = iota
	// FullTree materializes the whole binary tree: 2^(h+1) - 2 extra
	// cells, each internal node receiving one update per child.  Simpler,
	// hungrier, and slightly slower; kept for the ablation benchmark.
	FullTree
)

// WithBinaryReducer returns a copy of the trace in which the updates
// targeting cell gets funneled through a recursive binary reducer of
// height h (Figure 2).  h = 0 returns the trace unchanged.
func WithBinaryReducer(tr *Trace, cell, h int, variant BinaryVariant) (*Trace, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if cell < 0 || cell >= tr.NumCells {
		return nil, fmt.Errorf("racesim: reducer on missing cell %d", cell)
	}
	if h < 0 {
		return nil, fmt.Errorf("racesim: negative reducer height %d", h)
	}
	if h == 0 {
		cp := &Trace{NumCells: tr.NumCells, Updates: append([]Update(nil), tr.Updates...)}
		return cp, nil
	}
	leaves := 1 << uint(h)
	out := &Trace{NumCells: tr.NumCells}

	switch variant {
	case SelfParent:
		// Leaves are cells [base, base+leaves); updates to cell are dealt
		// round-robin among them; level j merges leaf base+i+2^(j-1) into
		// leaf base+i for i = 0 mod 2^j; the surviving leaf updates cell.
		base := out.NumCells
		out.NumCells += leaves
		i := 0
		for _, u := range tr.Updates {
			if u.Dst == cell {
				out.Updates = append(out.Updates, Update{Dst: base + i%leaves, Srcs: u.Srcs})
				i++
			} else {
				out.Updates = append(out.Updates, u)
			}
		}
		for j := 1; j <= h; j++ {
			stepSize := 1 << uint(j)
			for i := 0; i+stepSize/2 < leaves; i += stepSize {
				out.Updates = append(out.Updates, Update{
					Dst:  base + i,
					Srcs: []int{base + i + stepSize/2},
				})
			}
		}
		out.Updates = append(out.Updates, Update{Dst: cell, Srcs: []int{base}})
	case FullTree:
		// Tree nodes: cell is the root; internal levels 1..h hold
		// 2, 4, ..., 2^h cells; each node updates its parent once.
		levels := make([][]int, h+1)
		levels[0] = []int{cell}
		for j := 1; j <= h; j++ {
			width := 1 << uint(j)
			levels[j] = make([]int, width)
			for i := range levels[j] {
				levels[j][i] = out.NumCells
				out.NumCells++
			}
		}
		leafCells := levels[h]
		i := 0
		for _, u := range tr.Updates {
			if u.Dst == cell {
				out.Updates = append(out.Updates, Update{Dst: leafCells[i%leaves], Srcs: u.Srcs})
				i++
			} else {
				out.Updates = append(out.Updates, u)
			}
		}
		for j := h; j >= 1; j-- {
			for i, c := range levels[j] {
				out.Updates = append(out.Updates, Update{Dst: levels[j-1][i/2], Srcs: []int{c}})
			}
		}
	default:
		return nil, fmt.Errorf("racesim: unknown binary variant %d", variant)
	}
	return out, nil
}

// WithKWaySplit funnels the updates of cell through a k-way split reducer
// (Section 2): k extra cells absorb the updates round-robin, then each
// updates cell once.  k <= 1 returns the trace unchanged.
func WithKWaySplit(tr *Trace, cell, k int) (*Trace, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if cell < 0 || cell >= tr.NumCells {
		return nil, fmt.Errorf("racesim: reducer on missing cell %d", cell)
	}
	if k <= 1 {
		cp := &Trace{NumCells: tr.NumCells, Updates: append([]Update(nil), tr.Updates...)}
		return cp, nil
	}
	out := &Trace{NumCells: tr.NumCells + k}
	base := tr.NumCells
	i := 0
	for _, u := range tr.Updates {
		if u.Dst == cell {
			out.Updates = append(out.Updates, Update{Dst: base + i%k, Srcs: u.Srcs})
			i++
		} else {
			out.Updates = append(out.Updates, u)
		}
	}
	for j := 0; j < k; j++ {
		out.Updates = append(out.Updates, Update{Dst: cell, Srcs: []int{base + j}})
	}
	return out, nil
}

// SupernodeBinary rewrites a vertex-job race instance, replacing vertex v
// by the Figure 5 supernode: a full binary reducer of height h whose
// leaves absorb v's incoming arcs round-robin and whose root is v.  Every
// new vertex's work is its in-degree, like every other vertex of D(P).
func SupernodeBinary(vi *core.VertexInstance, v, h int) (*core.VertexInstance, error) {
	if v < 0 || v >= vi.G.NumNodes() {
		return nil, fmt.Errorf("racesim: supernode on missing vertex %d", v)
	}
	if h < 1 {
		return nil, fmt.Errorf("racesim: supernode height %d < 1", h)
	}
	old := vi.G
	g := dag.New()
	for i := 0; i < old.NumNodes(); i++ {
		g.AddNode(old.Name(i))
	}
	// Build the tree below v: levels[0] = {v}, level j has 2^j new nodes.
	levels := make([][]int, h+1)
	levels[0] = []int{v}
	for j := 1; j <= h; j++ {
		width := 1 << uint(j)
		levels[j] = make([]int, width)
		for i := range levels[j] {
			levels[j][i] = g.AddNode(fmt.Sprintf("%s_%d_%d", old.Name(v), j, i))
		}
	}
	leaves := levels[h]
	dealt := 0
	for e := 0; e < old.NumEdges(); e++ {
		ed := old.Edge(e)
		if ed.To == v {
			g.AddEdge(ed.From, leaves[dealt%len(leaves)])
			dealt++
		} else {
			g.AddEdge(ed.From, ed.To)
		}
	}
	for j := h; j >= 1; j-- {
		for i, c := range levels[j] {
			g.AddEdge(c, levels[j-1][i/2])
		}
	}
	fns := make([]duration.Func, g.NumNodes())
	for i := range fns {
		fns[i] = duration.Constant(int64(g.InDegree(i)))
	}
	// Preserve the source's (zero) work convention.
	return core.NewVertexInstance(g, fns)
}

package racesim

import (
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/duration"
)

// Figure4 reconstructs the running example of Figure 4: a race DAG whose
// vertex works are their in-degrees, with makespan 11 achieved by the path
// s -> a -> b -> c -> d -> t.  (The paper gives the figure only as a
// drawing; this construction reproduces its stated properties exactly:
// makespan 11 on that path, dropping to 10 when a height-1 reducer is
// placed on c as in Figure 5.)
//
// Node ordering: s, a, b, c, d, t, then five helper cells h1..h5 that give
// c its in-degree of 6.
func Figure4() *core.VertexInstance {
	g := dag.New()
	s := g.AddNode("s")
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	d := g.AddNode("d")
	t := g.AddNode("t")
	g.AddEdge(s, a) // a: work 1
	g.AddEdge(s, b)
	g.AddEdge(a, b) // b: work 2
	g.AddEdge(b, c)
	for i := 0; i < 5; i++ {
		h := g.AddNode("h")
		g.AddEdge(s, h)
		g.AddEdge(h, c) // c: work 6
	}
	g.AddEdge(c, d) // d: work 1
	g.AddEdge(d, t) // t: work 1
	fns := make([]duration.Func, g.NumNodes())
	for v := range fns {
		fns[v] = duration.Constant(int64(g.InDegree(v)))
	}
	vi, err := core.NewVertexInstance(g, fns)
	if err != nil {
		panic(err) // correct by construction
	}
	return vi
}

// Figure4Nodes names the interesting vertices of Figure4's instance.
type Figure4Nodes struct{ S, A, B, C, D, T int }

// Figure4Layout returns the vertex IDs used by Figure4.
func Figure4Layout() Figure4Nodes {
	return Figure4Nodes{S: 0, A: 1, B: 2, C: 3, D: 4, T: 5}
}

// Figure5 applies the height-1 supernode of Figure 5 to Figure 4's vertex
// c, dropping the makespan from 11 to 10 with 2 units of extra space; the
// critical path becomes s -> a -> b -> c1 -> c -> d -> t.
func Figure5() (*core.VertexInstance, error) {
	return SupernodeBinary(Figure4(), Figure4Layout().C, 1)
}

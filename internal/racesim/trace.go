// Package racesim grounds the paper's motivation: it simulates
// shared-memory programs whose only expensive operation is an associative,
// commutative update of a memory cell (Section 1 of Das et al., SPAA 2019).
//
// It provides the cost model the paper assumes - every update takes one
// time unit, every cell has a lock and a wait queue, everything else is
// free - as a discrete-event simulator; the reducer constructions of
// Figure 2 (recursive binary, in both the naive full-tree and the
// space-efficient self-parent variants) and the k-way split; extraction of
// the race DAG D(P) from a trace; and the worked examples of Figures 1-5.
package racesim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/duration"
)

// Update is one atomic read-modify-write: Dst is combined (via an
// associative, commutative operator) with the final values of Srcs.  Srcs
// may be empty for updates by constants.
type Update struct {
	Dst  int
	Srcs []int
}

// Trace is a program reduced to its update operations over NumCells memory
// cells.  Updates to the same cell may run in any order (the operator is
// associative and commutative); an update waits until all its source cells
// are final.
type Trace struct {
	NumCells int
	Updates  []Update
}

// Validate checks cell indices.
func (tr *Trace) Validate() error {
	if tr.NumCells < 0 {
		return fmt.Errorf("racesim: negative cell count %d", tr.NumCells)
	}
	for i, u := range tr.Updates {
		if u.Dst < 0 || u.Dst >= tr.NumCells {
			return fmt.Errorf("racesim: update %d writes cell %d of %d", i, u.Dst, tr.NumCells)
		}
		for _, s := range u.Srcs {
			if s < 0 || s >= tr.NumCells {
				return fmt.Errorf("racesim: update %d reads cell %d of %d", i, s, tr.NumCells)
			}
		}
	}
	return nil
}

// UpdateCounts returns, per cell, the number of updates targeting it (the
// work w_x of Section 1).
func (tr *Trace) UpdateCounts() []int64 {
	w := make([]int64, tr.NumCells)
	for _, u := range tr.Updates {
		w[u.Dst]++
	}
	return w
}

// RaceInstance extracts the race DAG D(P) as a vertex-job instance: cells
// become vertices, every (update, source) pair becomes an arc, and each
// cell's duration function is the chosen reducer class applied to its
// update count.  A virtual source and sink with zero work tie the DAG to a
// single entry and exit, matching the paper's convention that all extra
// space starts at the source.
//
// For single-source updates this is exactly the paper's D(P) with
// w_x = d_in(x).  For multi-source updates (e.g. Parallel-MM reads two
// cells per update) the work stays the update count while the in-degree
// counts (update, source) pairs; the trace simulator remains the ground
// truth for execution time in that case.
func (tr *Trace) RaceInstance(kind core.ReducerKind) (*core.VertexInstance, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	g := dag.New()
	for c := 0; c < tr.NumCells; c++ {
		g.AddNode(fmt.Sprintf("c%d", c))
	}
	s := g.AddNode("S")
	t := g.AddNode("T")
	counts := tr.UpdateCounts()
	for _, u := range tr.Updates {
		if len(u.Srcs) == 0 {
			g.AddEdge(s, u.Dst)
			continue
		}
		for _, src := range u.Srcs {
			g.AddEdge(src, u.Dst)
		}
	}
	for c := 0; c < tr.NumCells; c++ {
		if g.InDegree(c) == 0 {
			g.AddEdge(s, c)
		}
		if g.OutDegree(c) == 0 {
			g.AddEdge(c, t)
		}
	}
	fns := make([]duration.Func, g.NumNodes())
	for c := 0; c < tr.NumCells; c++ {
		w := counts[c]
		switch kind {
		case core.NoReducer:
			fns[c] = duration.Constant(w)
		case core.BinaryReducer:
			fns[c] = duration.NewRecursiveBinary(w)
		case core.KWayReducer:
			fns[c] = duration.NewKWay(w)
		default:
			return nil, fmt.Errorf("racesim: unknown reducer kind %d", kind)
		}
	}
	fns[s] = duration.Constant(0)
	fns[t] = duration.Constant(0)
	return core.NewVertexInstance(g, fns)
}

package racesim

import "fmt"

// SingleCell returns a trace of n updates to one cell from constants: the
// baseline workload of Figure 2 (left).
func SingleCell(n int) *Trace {
	tr := &Trace{NumCells: 1}
	for i := 0; i < n; i++ {
		tr.Updates = append(tr.Updates, Update{Dst: 0})
	}
	return tr
}

// MMTrace holds the Parallel-MM trace of Figure 3 together with the cell
// numbering, so callers can attach reducers to the Z cells.
type MMTrace struct {
	*Trace
	N int
}

// XCell, YCell and ZCell return cell IDs of the three matrices.
func (m *MMTrace) XCell(i, k int) int { return i*m.N + k }
func (m *MMTrace) YCell(k, j int) int { return m.N*m.N + k*m.N + j }
func (m *MMTrace) ZCell(i, j int) int { return 2*m.N*m.N + i*m.N + j }

// ParallelMM builds the update trace of the Parallel-MM code in Figure 3
// multiplying two n x n matrices: for all i, j, k the update
// Z[i][j] += X[i][k] * Y[k][j].  X and Y cells receive no updates (they
// are inputs), so every Z[i][j] serializes its n updates unless a reducer
// is attached.
func ParallelMM(n int) *MMTrace {
	m := &MMTrace{Trace: &Trace{NumCells: 3 * n * n}, N: n}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				m.Updates = append(m.Updates, Update{
					Dst:  m.ZCell(i, j),
					Srcs: []int{m.XCell(i, k), m.YCell(k, j)},
				})
			}
		}
	}
	return m
}

// WithReducersOnZ attaches a binary reducer of height h to every Z cell
// and returns the combined trace plus the extra space used.  All n^2
// reducers are attached in one pass (the per-cell WithBinaryReducer would
// copy the n^3-update trace quadratically often).
func (m *MMTrace) WithReducersOnZ(h int, variant BinaryVariant) (*Trace, int, error) {
	if h < 0 {
		return nil, 0, fmt.Errorf("racesim: negative reducer height %d", h)
	}
	if h == 0 {
		cp := &Trace{NumCells: m.NumCells, Updates: append([]Update(nil), m.Updates...)}
		return cp, 0, nil
	}
	leaves := 1 << uint(h)
	out := &Trace{NumCells: m.NumCells}
	nz := m.N * m.N
	zBase := 2 * m.N * m.N
	// Allocate each Z cell's leaf block contiguously.
	leafBase := make([]int, nz)
	for z := 0; z < nz; z++ {
		leafBase[z] = out.NumCells
		switch variant {
		case SelfParent:
			out.NumCells += leaves
		case FullTree:
			out.NumCells += 2*leaves - 2
		default:
			return nil, 0, fmt.Errorf("racesim: unknown binary variant %d", variant)
		}
	}
	dealt := make([]int, nz)
	for _, u := range m.Updates {
		z := u.Dst - zBase
		if z < 0 {
			out.Updates = append(out.Updates, u)
			continue
		}
		out.Updates = append(out.Updates, Update{Dst: leafBase[z] + dealt[z]%leaves, Srcs: u.Srcs})
		dealt[z]++
	}
	for z := 0; z < nz; z++ {
		base := leafBase[z]
		cell := zBase + z
		switch variant {
		case SelfParent:
			for j := 1; j <= h; j++ {
				stepSize := 1 << uint(j)
				for i := 0; i+stepSize/2 < leaves; i += stepSize {
					out.Updates = append(out.Updates, Update{Dst: base + i, Srcs: []int{base + i + stepSize/2}})
				}
			}
			out.Updates = append(out.Updates, Update{Dst: cell, Srcs: []int{base}})
		case FullTree:
			// Cells base..base+leaves-1 are the leaves; the internal
			// levels follow, ending with the two children of the root.
			level := make([]int, leaves)
			for i := range level {
				level[i] = base + i
			}
			next := base + leaves
			for len(level) > 2 {
				parents := make([]int, len(level)/2)
				for i := range parents {
					parents[i] = next
					next++
					out.Updates = append(out.Updates, Update{Dst: parents[i], Srcs: []int{level[2*i]}})
					out.Updates = append(out.Updates, Update{Dst: parents[i], Srcs: []int{level[2*i+1]}})
				}
				level = parents
			}
			out.Updates = append(out.Updates, Update{Dst: cell, Srcs: []int{level[0]}})
			if len(level) > 1 {
				out.Updates = append(out.Updates, Update{Dst: cell, Srcs: []int{level[1]}})
			}
		}
	}
	extra := out.NumCells - m.NumCells
	return out, extra, nil
}

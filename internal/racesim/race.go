package racesim

// This file reproduces Figure 1: two logically parallel threads increment
// a shared variable x through a local register (r = x; r = r + 1; x = r).
// Without mutual exclusion the interleaving decides the outcome; the
// figure's point is that anything other than serial execution loses an
// increment.

// incrementThread is the three-instruction program of Figure 1.
type incrementThread struct {
	pc  int
	reg int
}

// step executes one instruction against the shared variable, returning its
// new value.
func (th *incrementThread) step(x int) int {
	switch th.pc {
	case 0:
		th.reg = x // r = x
	case 1:
		th.reg++ // r = r + 1
	case 2:
		x = th.reg // x = r
	}
	th.pc++
	return x
}

// RaceOutcomes enumerates every interleaving of two increment threads and
// returns the set of final values of x (initially 0).  When locked is
// true each thread's three instructions run atomically, modelling the
// mutex fix; the only outcome is then 2.  When false, the data race also
// allows 1 - a lost update.
func RaceOutcomes(locked bool) map[int]bool {
	outcomes := make(map[int]bool)
	if locked {
		// Two serializations, both yielding 2.
		for order := 0; order < 2; order++ {
			x := 0
			a, b := &incrementThread{}, &incrementThread{}
			first, second := a, b
			if order == 1 {
				first, second = b, a
			}
			for i := 0; i < 3; i++ {
				x = first.step(x)
			}
			for i := 0; i < 3; i++ {
				x = second.step(x)
			}
			outcomes[x] = true
		}
		return outcomes
	}
	var rec func(x int, a, b incrementThread)
	rec = func(x int, a, b incrementThread) {
		if a.pc == 3 && b.pc == 3 {
			outcomes[x] = true
			return
		}
		if a.pc < 3 {
			na := a
			rec(na.step(x), na, b)
		}
		if b.pc < 3 {
			nb := b
			rec(nb.step(x), a, nb)
		}
	}
	rec(0, incrementThread{}, incrementThread{})
	return outcomes
}

// Command largescale demonstrates the scale tier end to end: it generates
// a general layered DAG with over 50,000 arcs — far beyond what the exact
// search or the dense LP can touch — solves it through the auto router
// (which dispatches to the frankwolfe envelope relaxation), and prints
// the certified quality of the answer.
//
//	go run ./examples/largescale
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/scenario"
	"repro/internal/solver"
)

func main() {
	log.SetFlags(0)

	// ~53k arcs: 250 layers, width 100, 100 extra cross-layer arcs per
	// layer, up to 4 breakpoints per job.
	start := time.Now()
	inst := scenario.NewGen(1).StepInstance(250, 100, 100, 4, 40, 5)
	fmt.Printf("generated: %d nodes, %d arcs in %v\n",
		inst.G.NumNodes(), inst.G.NumEdges(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("zero-flow makespan: %d\n\n", inst.ZeroFlowMakespan())

	for _, budget := range []int64{100, 500, 2000} {
		rep, err := solver.Solve(context.Background(), "auto", inst, solver.WithBudget(budget))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("budget %5d: makespan %5d using %4d units in %7v\n",
			budget, rep.Sol.Makespan, rep.Sol.Value, rep.Wall.Round(time.Millisecond))
		fmt.Printf("             certified: optimum >= %.0f, so this answer is within %.1f%% of it\n",
			rep.LPLowerBound, (rep.ApproxRatioUpperBound-1)*100)
		fmt.Printf("             routing: %s\n\n", rep.Routing)
	}
}

// Matmul reproduces the Figure 3 discussion: Parallel-MM on n x n
// matrices serializes n updates per output cell; attaching binary
// reducers of height h to every Z cell trades n^2 * 2^h extra space for a
// ceil(n/2^h) + h + 1 running time.
//
//	go run ./examples/matmul
package main

import (
	"context"
	"fmt"
	"log"

	rtt "repro"
)

func main() {
	const n = 64
	mm := rtt.ParallelMM(n)
	base, err := rtt.Simulate(mm.Trace, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Parallel-MM, n = %d (%d updates)\n", n, len(mm.Updates))
	fmt.Printf("%-8s %-12s %-10s %-10s\n", "height", "extra space", "time", "speedup")
	fmt.Printf("%-8d %-12d %-10d %-10.2f\n", 0, 0, base.FinishTime, 1.0)
	for h := 1; h <= 6; h++ {
		tr, extra, err := mm.WithReducersOnZ(h, rtt.SelfParent)
		if err != nil {
			log.Fatal(err)
		}
		res, err := rtt.Simulate(tr, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %-12d %-10d %-10.2f\n",
			h, extra, res.FinishTime, float64(base.FinishTime)/float64(res.FinishTime))
	}

	// The same tradeoff through the optimization lens: the race DAG of a
	// single output cell's dot product (one Z[i][j] of the n = 64
	// multiply) with a recursive binary duration function, solved by the
	// improved bi-criteria algorithm at a few budgets.
	dot := &rtt.Trace{NumCells: 2*n + 1}
	z := 2 * n
	for k := 0; k < n; k++ {
		dot.Updates = append(dot.Updates, rtt.Update{Dst: z, Srcs: []int{k, n + k}})
	}
	vi, err := dot.RaceInstance(rtt.BinaryReducer)
	if err != nil {
		log.Fatal(err)
	}
	af, err := vi.ToArcForm()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimization view (one dot-product cell, binary reducer durations):\n")
	fmt.Printf("%-8s %-10s %-12s\n", "budget", "makespan", "LP bound")
	ctx := context.Background()
	for _, budget := range []int64{0, 2, 8, 32} {
		rep, err := rtt.Solve(ctx, "binarybi", af.Inst, rtt.WithBudget(budget))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %-10d %-12.1f\n", budget, rep.Sol.Makespan, rep.LowerBound)
	}

	// The same instance through the portfolio solver: its duration
	// functions are recursive binary, and auto says so.
	rep, err := rtt.Solve(ctx, "auto", af.Inst, rtt.WithBudget(8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auto(budget 8): makespan %d via %q in %v\n", rep.Sol.Makespan, rep.Routing, rep.Wall)
}

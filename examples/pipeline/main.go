// Pipeline solves a series-parallel workload exactly with the Section 3.4
// dynamic program and shows the full space-time tradeoff curve, comparing
// against the LP-based bi-criteria algorithm on the same instance.  Both
// run through the solver registry; the auto solver recognizes the DAG as
// series-parallel and routes to the exact DP on its own.
//
//	go run ./examples/pipeline
package main

import (
	"context"
	"fmt"
	"log"

	rtt "repro"
)

func main() {
	// A three-stage pipeline; each stage fans out into parallel workers
	// with k-way-splitting jobs of different base costs.
	stage := func(costs ...int64) *rtt.SPTree {
		t := rtt.SPLeaf(rtt.NewKWay(costs[0]))
		for _, c := range costs[1:] {
			t = rtt.SPParallel(t, rtt.SPLeaf(rtt.NewKWay(c)))
		}
		return t
	}
	tree := rtt.SPSeries(stage(100, 80), rtt.SPSeries(stage(60, 60, 60), stage(120)))

	inst, leafArc, err := tree.ToInstance()
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	const budget = 24
	fmt.Println("series-parallel pipeline: exact space-time tradeoff (Section 3.4 DP)")
	fmt.Printf("%-8s %-12s %-22s\n", "budget", "makespan", "bi-criteria makespan")
	for _, l := range []int64{0, 2, 4, 8, 12, 16, 24} {
		auto, err := rtt.Solve(ctx, "auto", inst, rtt.WithBudget(l))
		if err != nil {
			log.Fatal(err)
		}
		if l == 0 {
			fmt.Printf("(auto routing: %s)\n", auto.Routing)
		}
		bi, err := rtt.Solve(ctx, "bicriteria", inst, rtt.WithBudget(l), rtt.WithAlpha(0.5))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %-12d %d (using %d units)\n", l, auto.Sol.Makespan, bi.Sol.Makespan, bi.Sol.Value)
	}

	// The raw DP tables are still available for allocation extraction.
	tables, err := rtt.SPSolve(tree, budget)
	if err != nil {
		log.Fatal(err)
	}
	alloc, err := tables.Allocation(budget)
	if err != nil {
		log.Fatal(err)
	}
	flow, err := tables.Flow(inst, leafArc, budget)
	if err != nil {
		log.Fatal(err)
	}
	sol, err := inst.NewSolution(flow)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nat budget %d: %d leaves allocated, witness flow value %d, makespan %d\n",
		budget, len(alloc), sol.Value, sol.Makespan)

	// Round-trip: the materialized DAG is recognized as series-parallel.
	if _, ok := rtt.SPRecognize(inst); !ok {
		log.Fatal("instance should be series-parallel")
	}
	fmt.Println("instance recognized as two-terminal series-parallel")

	// The minimum-resource direction through the registry: the spdp
	// solver finds the cheapest budget reaching the target makespan.
	rep, err := rtt.Solve(ctx, "spdp", inst, rtt.WithTarget(150))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reaching makespan 150 needs %d units (makespan %d)\n", rep.Sol.Value, rep.Sol.Makespan)
}
